#!/bin/sh
# store_gate.sh — the fleet-scale storage gate: proves the daemon's
# chunk-dedup store end to end against a live `doubleplay serve`.
#
#   1. Two same-workload, different-seed recordings land in the store and
#      share chunks: on-disk bytes < raw sum, dedup_saved_bytes > 0.
#   2. Recordings served back through the chunked reader are
#      byte-identical to their advertised sha256 digest, and epoch-range
#      extraction over HTTP matches offline `doubleplay log extract`.
#   3. Replay-by-id reproduces the recorded final hash from the chunked
#      artifact.
#   4. Pinning protects a recording through a retention GC that reclaims
#      the other one; shared chunks survive because the pinned manifest
#      still references them.
#   5. After SIGTERM drain, offline `doubleplay store fsck` walks the
#      swept store clean and `store stats` still shows the dedup.
#
# Run from the repo root (verify.sh and the CI serve-store job do).
set -e
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
srv_pid=""
trap 'kill "${srv_pid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/doubleplay" ./cmd/doubleplay

"$tmp/doubleplay" serve -listen 127.0.0.1:0 -data "$tmp/dpdata" \
    -addr-file "$tmp/addr" -pool 2 >"$tmp/serve.log" 2>&1 &
srv_pid=$!
for i in $(seq 1 100); do [ -s "$tmp/addr" ] && break; sleep 0.1; done
addr=$(cat "$tmp/addr")
[ -n "$addr" ] || { echo "store gate: daemon never bound" >&2; cat "$tmp/serve.log" >&2; exit 1; }

# JSON field extraction without jq: string fields and bare numbers.
field() { grep -o "\"$1\": \"[^\"]*\"" | head -1 | cut -d'"' -f4; }
nfield() { grep -o "\"$1\": [0-9][0-9.]*" | head -1 | awk '{print $2}'; }

wait_done() { # wait_done <job-id>
    st=queued
    for i in $(seq 1 600); do
        st=$(curl -fsS "http://$addr/jobs/$1" | field state)
        case "$st" in done|failed|canceled) break;; esac
        sleep 0.1
    done
    if [ "$st" != done ]; then
        echo "store gate: job $1 ended $st" >&2
        curl -fsS "http://$addr/jobs/$1" >&2 || true
        cat "$tmp/serve.log" >&2
        exit 1
    fi
}

# Two recordings of the same workload under different seeds: the seeds
# perturb schedules and boundary hashes, but the syscall-result and
# sync-order groups repeat — the redundancy the chunk store exists for.
ida=$(curl -fsS -X POST "http://$addr/jobs" \
    -d '{"kind":"record","workload":"kvdb","workers":2,"seed":11}' | field id)
idb=$(curl -fsS -X POST "http://$addr/jobs" \
    -d '{"kind":"record","workload":"kvdb","workers":2,"seed":12}' | field id)
[ -n "$ida" ] && [ -n "$idb" ] || { echo "store gate: submission failed" >&2; exit 1; }
wait_done "$ida"
wait_done "$idb"

# Recordings fetch byte-exactly: the body reassembled from chunks must
# hash to the digest the daemon advertises.
curl -fsS -D "$tmp/ha" "http://$addr/jobs/$ida/recording" -o "$tmp/a.dplog"
curl -fsS -D "$tmp/hb" "http://$addr/jobs/$idb/recording" -o "$tmp/b.dplog"
dig_a=$(tr -d '\r' <"$tmp/ha" | awk -F': ' 'tolower($1)=="x-recording-digest"{print $2}')
sum_a="sha256-$(sha256sum "$tmp/a.dplog" | cut -d' ' -f1)"
if [ -z "$dig_a" ] || [ "$sum_a" != "$dig_a" ]; then
    echo "store gate: served recording hashes to $sum_a, daemon advertised '$dig_a'" >&2
    exit 1
fi

# The store dedups across the two seeds.
curl -fsS "http://$addr/admin/store" -o "$tmp/stats.json"
logical=$(nfield logical_bytes <"$tmp/stats.json")
unique=$(nfield unique_raw_bytes <"$tmp/stats.json")
saved=$(nfield dedup_saved_bytes <"$tmp/stats.json")
raw_sum=$(( $(wc -c <"$tmp/a.dplog") + $(wc -c <"$tmp/b.dplog") ))
[ "$logical" -eq "$raw_sum" ] || {
    echo "store gate: logical_bytes $logical != downloaded sum $raw_sum" >&2; exit 1; }
[ -n "$saved" ] && [ "$saved" -gt 0 ] || {
    echo "store gate: no chunk sharing across seeds (dedup_saved_bytes=$saved)" >&2
    cat "$tmp/stats.json" >&2; exit 1; }
[ "$unique" -lt "$logical" ] || {
    echo "store gate: unique bytes $unique not below logical $logical" >&2; exit 1; }

# Epoch-range extraction through the chunked reader must match offline
# extraction from the downloaded artifact, byte for byte.
curl -fsS "http://$addr/recordings/$ida/epochs/1..2" -o "$tmp/sub_http.dplog"
"$tmp/doubleplay" log extract -log "$tmp/a.dplog" -epochs 1..2 -o "$tmp/sub_cli.dplog" >/dev/null
cmp -s "$tmp/sub_http.dplog" "$tmp/sub_cli.dplog" || {
    echo "store gate: HTTP epoch range differs from offline log extract" >&2; exit 1; }

# Replay-by-id reads the recording through the chunk store and must
# reproduce the recorded final hash.
rec_hash=$(curl -fsS "http://$addr/jobs/$ida" | field final_hash)
rid=$(curl -fsS -X POST "http://$addr/jobs" \
    -d "{\"kind\":\"replay\",\"recording_job\":\"$ida\",\"mode\":\"sequential\"}" | field id)
wait_done "$rid"
rep_hash=$(curl -fsS "http://$addr/jobs/$rid" | field final_hash)
if [ -z "$rec_hash" ] || [ "$rep_hash" != "$rec_hash" ]; then
    echo "store gate: replay-by-id hash $rep_hash != recorded $rec_hash" >&2; exit 1
fi

# Pin A, then age everything out: the pinned recording and every chunk
# it references survive; B's manifest and unshared chunks are reclaimed.
curl -fsS -X POST "http://$addr/jobs/$ida/pin" >/dev/null
curl -fsS -X POST "http://$addr/admin/gc" -d '{"max_age_ms": 1}' -o "$tmp/gc.json"
[ "$(nfield manifests_removed <"$tmp/gc.json")" = 1 ] || {
    echo "store gate: gc did not reclaim exactly the unpinned recording" >&2
    cat "$tmp/gc.json" >&2; exit 1; }
code_b=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/jobs/$idb/recording")
[ "$code_b" = 404 ] || {
    echo "store gate: collected recording still served ($code_b)" >&2; exit 1; }
curl -fsS "http://$addr/jobs/$ida/recording" -o "$tmp/a_after_gc.dplog"
cmp -s "$tmp/a.dplog" "$tmp/a_after_gc.dplog" || {
    echo "store gate: pinned recording damaged by gc" >&2; exit 1; }

# The survivor still replays by id after the sweep.
rid2=$(curl -fsS -X POST "http://$addr/jobs" \
    -d "{\"kind\":\"replay\",\"recording_job\":\"$ida\",\"mode\":\"sequential\"}" | field id)
wait_done "$rid2"
rep2=$(curl -fsS "http://$addr/jobs/$rid2" | field final_hash)
[ "$rep2" = "$rec_hash" ] || {
    echo "store gate: post-gc replay hash $rep2 != $rec_hash" >&2; exit 1; }

# Drain and run the offline tools over the swept store.
kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""

"$tmp/doubleplay" store fsck -data "$tmp/dpdata" >"$tmp/fsck.out" || {
    echo "store gate: fsck failed on the post-gc store" >&2
    cat "$tmp/fsck.out" >&2; exit 1; }
grep -q "fsck: ok" "$tmp/fsck.out" || {
    echo "store gate: fsck did not report ok" >&2; cat "$tmp/fsck.out" >&2; exit 1; }
"$tmp/doubleplay" store stats -data "$tmp/dpdata" -json >"$tmp/offline.json"
[ "$(nfield manifests <"$tmp/offline.json")" = 1 ] || {
    echo "store gate: offline stats disagree about survivors" >&2
    cat "$tmp/offline.json" >&2; exit 1; }
# A dry-run unbounded gc over the clean store reclaims nothing.
"$tmp/doubleplay" store gc -data "$tmp/dpdata" -dry-run -json >"$tmp/gc2.json"
[ "$(nfield manifests_removed <"$tmp/gc2.json")" = 0 ] || {
    echo "store gate: orphans left behind after the online sweep" >&2
    cat "$tmp/gc2.json" >&2; exit 1; }

echo "store gate: all checks passed"
