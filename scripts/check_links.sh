#!/bin/sh
# scripts/check_links.sh — verify every relative markdown link resolves.
#
# Scans all committed *.md files for inline links/images `[text](target)`
# and fails if a repo-relative target does not exist. Skipped targets:
# absolute URLs (http/https/mailto), pure #anchors, and ../../* paths,
# which are GitHub-web-relative (the CI badge) rather than files in the
# repo. Fragments are stripped before the existence check, so
# `DESIGN.md#section` validates the file only.
set -e
cd "$(dirname "$0")/.."

fail=0
for f in $(git ls-files -c -o --exclude-standard '*.md'); do
	dir=$(dirname "$f")
	for target in $(grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//'); do
		case "$target" in
		http://* | https://* | mailto:* | '#'* | ../../*) continue ;;
		esac
		path="${target%%#*}"
		[ -n "$path" ] || continue
		if [ ! -e "$dir/$path" ]; then
			echo "$f: broken link -> $target" >&2
			fail=1
		fi
	done
done
[ "$fail" -eq 0 ] || exit 1
echo "check_links.sh: all relative markdown links resolve"
