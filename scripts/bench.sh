#!/bin/sh
# scripts/bench.sh — run the benchmark suite and publish its results.
#
#   scripts/bench.sh              # bench once, refresh BENCH_*.json
#   COUNT=5 scripts/bench.sh      # more samples for benchstat
#   BENCH=VerifySkip scripts/bench.sh   # subset by benchmark name regexp
#   scripts/bench.sh baseline     # also refresh bench/baseline.txt
#   scripts/bench.sh check        # also fail if BENCH_*.json drifted
#
# Artifacts:
#
#   BENCH_<name>.json   committed — the deterministic simulator metrics
#                       each benchmark reports (cycle-derived, so the
#                       values are bit-identical on any host; only ns/op
#                       varies with the machine, and it is excluded)
#   bench/baseline.txt  committed — raw `go test -bench` text from a
#                       reference run, the benchstat comparison base
#   bench/current.txt   this run's raw text (not committed)
#
# benchstat is optional: when it is on PATH the script compares
# bench/baseline.txt against the fresh run, otherwise it prints how to
# get it. Nothing is installed automatically — CI installs benchstat
# itself; a developer machine runs fine without it.
set -e
cd "$(dirname "$0")/.."

mode="${1:-run}"
case "$mode" in
run | baseline | check) ;;
*)
	echo "usage: scripts/bench.sh [baseline|check]" >&2
	exit 2
	;;
esac

COUNT="${COUNT:-3}"
PATTERN="${BENCH:-.}"

mkdir -p bench
echo "== go test -bench=$PATTERN -count=$COUNT (benchtime=1x)"
go test -run='^$' -bench="$PATTERN" -benchtime=1x -count="$COUNT" -timeout 60m . | tee bench/current.txt

# Fold each benchmark's reported metrics (averaged over -count runs,
# though the simulator makes every run identical) into BENCH_<name>.json.
awk '
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    for (i = 3; i + 1 <= NF; i += 2) {
        u = $(i + 1)
        if (u == "ns/op" || u == "B/op" || u == "allocs/op") continue
        k = name SUBSEP u
        if (!(k in sum)) order[name] = (order[name] == "" ? u : order[name] "\t" u)
        sum[k] += $i; cnt[k]++
    }
    runs[name]++
}
END {
    for (name in runs) {
        f = "BENCH_" tolower(name) ".json"
        printf "{\n  \"benchmark\": \"%s\",\n  \"metrics\": {", name > f
        n = split(order[name], us, "\t")
        for (j = 1; j <= n; j++) {
            u = us[j]; k = name SUBSEP u
            printf "%s\n    \"%s\": %.6g", (j > 1 ? "," : ""), u, sum[k] / cnt[k] > f
        }
        print "\n  }\n}" > f
        close(f)
        print "  -> " f
    }
}' bench/current.txt

if [ "$mode" = baseline ]; then
	cp bench/current.txt bench/baseline.txt
	echo "refreshed bench/baseline.txt"
fi

if command -v benchstat >/dev/null 2>&1; then
	echo "== benchstat (committed baseline vs this run)"
	benchstat bench/baseline.txt bench/current.txt
else
	echo "benchstat not found; skipping the timing comparison" >&2
	echo "(go install golang.org/x/perf/cmd/benchstat@latest)" >&2
fi

if [ "$mode" = check ]; then
	echo "== deterministic metric gate (BENCH_*.json must match the committed values)"
	if ! git diff --exit-code -- 'BENCH_*.json'; then
		echo "bench.sh: benchmark metrics drifted from the committed BENCH_*.json" >&2
		echo "re-run scripts/bench.sh and commit the refreshed artifacts" >&2
		exit 1
	fi
	if [ -n "$(git ls-files --others --exclude-standard -- 'BENCH_*.json')" ]; then
		echo "bench.sh: new BENCH_*.json artifacts are not committed:" >&2
		git ls-files --others --exclude-standard -- 'BENCH_*.json' >&2
		exit 1
	fi
fi
