package doubleplay_test

import (
	"bytes"
	"testing"

	"doubleplay"
)

func TestWorkloadRegistry(t *testing.T) {
	names := doubleplay.Workloads()
	if len(names) < 10 {
		t.Fatalf("only %d workloads registered", len(names))
	}
	for _, want := range []string{"pbzip", "webserve", "fft", "racey"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("workload %s missing from %v", want, names)
		}
	}
	info := doubleplay.DescribeWorkload("racey")
	if info == nil || !info.Racy || info.Desc == "" {
		t.Fatalf("DescribeWorkload(racey) = %+v", info)
	}
	if doubleplay.DescribeWorkload("nope") != nil || doubleplay.BuildWorkload("nope", doubleplay.WorkloadParams{}) != nil {
		t.Fatal("unknown workload not rejected")
	}
}

func TestPublicRecordReplayRoundTrip(t *testing.T) {
	bt := doubleplay.BuildWorkload("kvdb", doubleplay.WorkloadParams{Workers: 2, Seed: 4})
	res, err := doubleplay.Record(bt.Prog, bt.World, doubleplay.RecordOptions{
		Workers: 2, SpareCPUs: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := doubleplay.SaveRecording(&buf, res.Recording); err != nil {
		t.Fatal(err)
	}
	rec, err := doubleplay.LoadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}

	seq, err := doubleplay.ReplaySequential(bt.Prog, rec)
	if err != nil {
		t.Fatal(err)
	}
	if seq.FinalHash != res.FinalHash {
		t.Fatal("round-tripped recording replays differently")
	}
	par, err := doubleplay.ReplayParallel(bt.Prog, res.Recording, res.Boundaries, 2)
	if err != nil {
		t.Fatal(err)
	}
	if par.Epochs != seq.Epochs {
		t.Fatal("replay modes disagree on epoch count")
	}
}

func TestPublicNativeBaseline(t *testing.T) {
	bt := doubleplay.BuildWorkload("fft", doubleplay.WorkloadParams{Workers: 2, Seed: 4})
	nat, err := doubleplay.RunNative(bt.Prog, bt.World, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nat.Cycles <= 0 || len(nat.Faults) != 0 {
		t.Fatalf("native: %+v", nat)
	}
}

func TestPublicFindRaces(t *testing.T) {
	bt := doubleplay.BuildWorkload("webserve-racy", doubleplay.WorkloadParams{Workers: 3, Seed: 4})
	races, err := doubleplay.FindRaces(bt.Prog, bt.World)
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 1 {
		t.Fatalf("webserve-racy has exactly one racy cell; got %v", races)
	}

	clean := doubleplay.BuildWorkload("webserve", doubleplay.WorkloadParams{Workers: 3, Seed: 4})
	races, err = doubleplay.FindRaces(clean.Prog, clean.World)
	if err != nil {
		t.Fatal(err)
	}
	if len(races) != 0 {
		t.Fatalf("false positives on webserve: %v", races)
	}
}

func TestBuildOwnProgramThroughFacade(t *testing.T) {
	b := doubleplay.NewProgram("tiny")
	f := b.Func("main", 0)
	r := f.Reg()
	f.Movi(r, 21)
	f.Addi(r, r, 21)
	f.Halt(r)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := doubleplay.Record(prog, doubleplay.NewWorld(1), doubleplay.RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doubleplay.ReplaySequential(prog, res.Recording); err != nil {
		t.Fatal(err)
	}
	last := res.Boundaries[len(res.Boundaries)-1]
	if got := last.CP.Threads[0].ExitVal; got != 42 {
		t.Fatalf("exit = %d, want 42", got)
	}
}
