package doubleplay_test

import (
	"testing"

	"doubleplay"
)

// TestVetCoversDynamicRaces checks the contract that makes the static
// screen a useful pre-filter for the dynamic detector: every address
// FindRaces implicates on a racy workload lies inside some candidate
// Vet reported, and a clean workload draws no candidates at all.
func TestVetCoversDynamicRaces(t *testing.T) {
	for _, name := range []string{"racey", "webserve-racy"} {
		bt := doubleplay.BuildWorkload(name, doubleplay.WorkloadParams{Workers: 2, Seed: 3})
		rep := doubleplay.Vet(bt.Prog)
		if len(rep.Races()) == 0 {
			t.Fatalf("%s: no race candidates: %v", name, rep.List)
		}
		for _, addr := range bt.RacyAddrs {
			if !rep.Covers(addr) {
				t.Errorf("%s: known racy cell %d not covered", name, addr)
			}
		}
		races, err := doubleplay.FindRaces(bt.Prog, bt.World)
		if err != nil {
			t.Fatal(err)
		}
		if len(races) == 0 {
			t.Fatalf("%s: dynamic detector found nothing to cross-check", name)
		}
		for _, r := range races {
			if !rep.Covers(r.Addr) {
				t.Errorf("%s: dynamic race on %d not covered by the static screen", name, r.Addr)
			}
		}
	}

	clean := doubleplay.BuildWorkload("webserve", doubleplay.WorkloadParams{Workers: 2, Seed: 3})
	rep := doubleplay.Vet(clean.Prog)
	if n := len(rep.Races()); n != 0 {
		t.Fatalf("webserve: %d false candidates: %v", n, rep.Races())
	}
	if rep.Errors() != 0 {
		t.Fatalf("webserve: error findings: %v", rep.List)
	}
}
