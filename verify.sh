#!/bin/sh
# verify.sh — the repo's full local gate: formatting, vet, build, tests,
# and the static screen over every builtin workload (dpvet exits non-zero
# on error findings or any disagreement with the suite's Racy metadata).
set -e
cd "$(dirname "$0")"

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build + test"
go build ./...
go test ./...

echo "== dpvet (static screen, all builtin workloads)"
go run ./cmd/dpvet -q

echo "== benchmark guard (golden cycle counts, nil-sink and traced)"
go test ./internal/core/ -run 'TestGoldenCyclesUnchanged|TestTracingDoesNotPerturbCycles' -count=1

echo "verify.sh: all checks passed"
