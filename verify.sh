#!/bin/sh
# verify.sh — the repo's full local gate: formatting, vet, build, tests,
# and the static screen over every builtin workload (dpvet exits non-zero
# on error findings or any disagreement with the suite's Racy metadata).
set -e
cd "$(dirname "$0")"

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build + test"
go build ./...
go test ./...

echo "== dpvet (static screen, all builtin workloads)"
go run ./cmd/dpvet -q

echo "== benchmark guard (golden cycle counts, nil-sink and traced)"
go test ./internal/core/ -run 'TestGoldenCyclesUnchanged|TestTracingDoesNotPerturbCycles' -count=1

echo "== baseline guard (traced baselines bit-identical, streamed = buffered)"
go test ./internal/baseline/ -run 'TestCrewTracingBitIdentical|TestUniprocessorTracingBitIdentical' -count=1
go test ./internal/core/ -run 'TestStreamedRecordingMatchesBuffered' -count=1

echo "== observability gate (streamed trace -> dptrace, prometheus lint)"
obs=$(mktemp -d)
trap 'rm -rf "$obs"' EXIT
go run ./cmd/doubleplay record -w racey -workers 2 -seed 11 \
    -trace "$obs/a.json" -prom "$obs/m.prom" >/dev/null
go run ./cmd/dptrace stats "$obs/a.json" >/dev/null
go run ./cmd/dptrace promlint "$obs/m.prom" >/dev/null
# Same seed: the diff must report agreement (exit 0).
go run ./cmd/doubleplay record -w racey -workers 2 -seed 11 -trace "$obs/a2.json" >/dev/null
go run ./cmd/dptrace diff "$obs/a.json" "$obs/a2.json" >/dev/null
# Different seed on a racy workload: the diff must find a divergent epoch
# (exit 3).
go run ./cmd/doubleplay record -w racey -workers 2 -seed 12 -trace "$obs/b.json" >/dev/null
if go run ./cmd/dptrace diff "$obs/a.json" "$obs/b.json" >/dev/null 2>&1; then
    echo "dptrace diff failed to flag divergent seeds" >&2
    exit 1
fi

echo "verify.sh: all checks passed"
