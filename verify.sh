#!/bin/sh
# verify.sh — the repo's full local gate: formatting, vet, build, tests,
# and the static screen over every builtin workload (dpvet exits non-zero
# on error findings or any disagreement with the suite's Racy metadata).
set -e
cd "$(dirname "$0")"

echo "== gofmt"
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build + test"
go build ./...
go test ./...

echo "== dpvet (static screen, all builtin workloads)"
go run ./cmd/dpvet -q

echo "== benchmark guard (golden cycle counts, nil-sink and traced)"
go test ./internal/core/ -run 'TestGoldenCyclesUnchanged|TestTracingDoesNotPerturbCycles' -count=1

echo "== baseline guard (traced baselines bit-identical, streamed = buffered)"
go test ./internal/baseline/ -run 'TestCrewTracingBitIdentical|TestUniprocessorTracingBitIdentical' -count=1
go test ./internal/core/ -run 'TestStreamedRecordingMatchesBuffered' -count=1

echo "== observability gate (streamed trace -> dptrace, prometheus lint)"
obs=$(mktemp -d)
trap 'kill "${srv_pid:-}" 2>/dev/null || true; rm -rf "$obs"' EXIT
go run ./cmd/doubleplay record -w racey -workers 2 -seed 11 \
    -trace "$obs/a.json" -prom "$obs/m.prom" >/dev/null
go run ./cmd/dptrace stats "$obs/a.json" >/dev/null
go run ./cmd/dptrace promlint "$obs/m.prom" >/dev/null
# Same seed: the diff must report agreement (exit 0).
go run ./cmd/doubleplay record -w racey -workers 2 -seed 11 -trace "$obs/a2.json" >/dev/null
go run ./cmd/dptrace diff "$obs/a.json" "$obs/a2.json" >/dev/null
# Different seed on a racy workload: the diff must find a divergent epoch
# (exit 3).
go run ./cmd/doubleplay record -w racey -workers 2 -seed 12 -trace "$obs/b.json" >/dev/null
if go run ./cmd/dptrace diff "$obs/a.json" "$obs/b.json" >/dev/null 2>&1; then
    echo "dptrace diff failed to flag divergent seeds" >&2
    exit 1
fi

echo "== adaptive gate (controller recordings replay bit-identically)"
# A filling pipeline: pbzip with 4 workers starting from one active slot
# forces the controller to grow. Keep the log, the trace, and the stats.
go run ./cmd/doubleplay record -w pbzip -workers 4 -spares 1 \
    -adaptive -min-spares 1 -max-spares 4 -seed 11 \
    -o "$obs/ad.dplog" -trace "$obs/ad.json" >"$obs/ad.out"
grep -q "controller:" "$obs/ad.out" || {
    echo "adaptive: controller never fired on a filling pipeline" >&2; exit 1; }
# The recording must replay from the log alone, every boundary hash
# verified (replay exits 1 on any mismatch).
go run ./cmd/doubleplay replay -w pbzip -workers 4 -log "$obs/ad.dplog" >/dev/null
# Same seed and bounds: a second adaptive recording must diff clean
# (exit 0) — controller decisions are deterministic.
go run ./cmd/doubleplay record -w pbzip -workers 4 -spares 1 \
    -adaptive -min-spares 1 -max-spares 4 -seed 11 -trace "$obs/ad2.json" >/dev/null
go run ./cmd/dptrace diff "$obs/ad.json" "$obs/ad2.json" >/dev/null
# A pinned controller (min = max = spares) must reproduce the fixed-spares
# timeline the observability gate recorded.
go run ./cmd/doubleplay record -w racey -workers 2 \
    -adaptive -min-spares 2 -max-spares 2 -seed 11 -trace "$obs/pin.json" >/dev/null
go run ./cmd/dptrace diff "$obs/pin.json" "$obs/a.json" >/dev/null
# dptrace lag must narrate the controller's decisions from the trace.
go run ./cmd/dptrace lag "$obs/ad.json" | grep -q "controller: bounds" || {
    echo "adaptive: dptrace lag missing controller narration" >&2; exit 1; }

echo "== certification gate (static race-freedom proof, verify-skip soundness)"
# The certifier must classify every builtin workload, and must never mark
# a Racy workload race-free (dpvet certify exits 1 on any such
# disagreement with the suite's ground-truth metadata).
go run ./cmd/dpvet certify >/dev/null
# A certified recording skips every epoch's verification pass...
go run ./cmd/doubleplay record -w sigping -workers 2 -seed 11 \
    -verify-policy certified -o "$obs/cert.dplog" >"$obs/cert.out"
grep -q "verification skipped" "$obs/cert.out" || {
    echo "certify: sigping kept verification under -verify-policy certified" >&2; exit 1; }
# ...and must still replay to the exact final state the fully-verified
# recording of the same seed reaches.
go run ./cmd/doubleplay record -w sigping -workers 2 -seed 11 \
    -o "$obs/full.dplog" >/dev/null
cert_hash=$(go run ./cmd/doubleplay replay -w sigping -workers 2 -log "$obs/cert.dplog" |
    grep -o 'final hash [0-9a-f]*')
full_hash=$(go run ./cmd/doubleplay replay -w sigping -workers 2 -log "$obs/full.dplog" |
    grep -o 'final hash [0-9a-f]*')
if [ -z "$cert_hash" ] || [ "$cert_hash" != "$full_hash" ]; then
    echo "certify: certified replay diverged from the verified recording ('$cert_hash' vs '$full_hash')" >&2
    exit 1
fi
# A possibly-racy workload must fall back to full verification.
go run ./cmd/doubleplay record -w racey -workers 2 -seed 11 \
    -verify-policy certified >"$obs/racy.out"
grep -q "full verification kept" "$obs/racy.out" || {
    echo "certify: racey skipped verification — soundness bug" >&2; exit 1; }

echo "== profiling gate (record/replay guest profiles bit-identical, flame renders)"
# Recording with -guest-profile and replaying the log with -guest-profile
# must produce byte-identical pprof artifacts — the profiler's whole
# contract is that the profile is a pure function of the recorded
# instruction streams.
go run ./cmd/doubleplay record -w racey -workers 2 -seed 11 \
    -guest-profile "$obs/rec.pb" -o "$obs/prof.dplog" >/dev/null
go run ./cmd/doubleplay replay -w racey -workers 2 -log "$obs/prof.dplog" \
    -guest-profile "$obs/rep.pb" >/dev/null
cmp -s "$obs/rec.pb" "$obs/rep.pb" || {
    echo "profile: replay profile differs from record profile" >&2; exit 1; }
# verify runs the same check itself, against every replay strategy.
go run ./cmd/doubleplay verify -w fft -workers 2 -parallel \
    -guest-profile "$obs/v.pb" | grep -q "guest profile:     OK" || {
    echo "profile: verify did not report the profile self-check" >&2; exit 1; }
# Certified recordings profile the thread-parallel execution itself;
# replay must still regenerate that profile exactly.
go run ./cmd/doubleplay record -w sigping -workers 2 -seed 11 \
    -verify-policy certified -guest-profile "$obs/certrec.pb" \
    -o "$obs/certprof.dplog" >/dev/null
go run ./cmd/doubleplay replay -w sigping -workers 2 -log "$obs/certprof.dplog" \
    -guest-profile "$obs/certrep.pb" >/dev/null
cmp -s "$obs/certrec.pb" "$obs/certrep.pb" || {
    echo "profile: certified recording's profile not regenerated by replay" >&2; exit 1; }
# dptrace flame renders both views from the same artifact.
go run ./cmd/dptrace flame -top 5 "$obs/rec.pb" | grep -q "function" || {
    echo "profile: dptrace flame top table missing" >&2; exit 1; }
go run ./cmd/dptrace flame -folded "$obs/rec.pb" | grep -q "main" || {
    echo "profile: dptrace flame folded stacks missing" >&2; exit 1; }

echo "== log-format gate (sectioned v6: inspect, extract, upgrade, doc links)"
# A freshly recorded artifact must inspect as a seekable v6 log with an
# intact index and no damaged section bodies.
go run ./cmd/doubleplay log inspect -log "$obs/full.dplog" >"$obs/li.out"
grep -q "dplog v6" "$obs/li.out" || {
    echo "log inspect: recording is not a v6 log" >&2; exit 1; }
grep -Eq "sections: +[1-9]" "$obs/li.out" || {
    echo "log inspect: no sections reported" >&2; exit 1; }
if grep -q "ERROR" "$obs/li.out"; then
    echo "log inspect: damaged section bodies" >&2; cat "$obs/li.out" >&2; exit 1
fi
# The section table ends with a compressed/raw totals row.
grep -Eq "total +[0-9]+ +[0-9]+ +[0-9]+\.[0-9]+" "$obs/li.out" || {
    echo "log inspect: totals row missing from the section table" >&2; exit 1; }
# -epoch narrows the output to one section's frame + boundary info.
go run ./cmd/doubleplay log inspect -log "$obs/full.dplog" -epoch 1 >"$obs/li1.out"
grep -q "boundary: start" "$obs/li1.out" || {
    echo "log inspect -epoch: boundary info missing" >&2; exit 1; }
if grep -q "total" "$obs/li1.out"; then
    echo "log inspect -epoch: still dumps the totals table" >&2; exit 1
fi
# Extracting an epoch range must yield a standalone 2-section log.
go run ./cmd/doubleplay log extract -log "$obs/full.dplog" -epochs 1..2 -o "$obs/sub.dplog" >/dev/null
go run ./cmd/doubleplay log inspect -log "$obs/sub.dplog" | grep -Eq "sections: +2" || {
    echo "log extract: subset does not hold exactly 2 sections" >&2; exit 1; }
# A legacy v5 fixture must upgrade in place to v6.
cp internal/dplog/testdata/v5.dplog "$obs/legacy.dplog"
go run ./cmd/doubleplay log upgrade -log "$obs/legacy.dplog" >/dev/null
go run ./cmd/doubleplay log inspect -log "$obs/legacy.dplog" | grep -q "dplog v6" || {
    echo "log upgrade: legacy log did not migrate to v6" >&2; exit 1; }
# Every relative link in the documentation must resolve.
./scripts/check_links.sh >/dev/null

echo "== debug gate (time-travel debugger: bisect pins the divergent epoch)"
go build -o "$obs/dpdebug" ./cmd/dpdebug
# Two recordings of the racy workload under different seeds start from
# the identical state; the seeds only jitter the recorded schedules, so
# the races resolve differently and the executions drift apart at a
# fixed, known epoch. Recording is fully deterministic — the answer is
# pinned, not flaky.
go run ./cmd/doubleplay record -w racey -workers 2 -seed 1 -o "$obs/ra.dplog" >/dev/null
go run ./cmd/doubleplay record -w racey -workers 2 -seed 4 -o "$obs/rb.dplog" >/dev/null
bst=0
"$obs/dpdebug" bisect -a "$obs/ra.dplog" -b "$obs/rb.dplog" >"$obs/bi.out" || bst=$?
[ "$bst" -eq 3 ] || {
    echo "dpdebug bisect: exit $bst, want 3 (divergence found)" >&2
    cat "$obs/bi.out" >&2; exit 1; }
grep -q "first divergent boundary: epoch 1 " "$obs/bi.out" || {
    echo "dpdebug bisect: first divergent epoch is not the known epoch 1" >&2
    cat "$obs/bi.out" >&2; exit 1; }
# The answer must be byte-identical whichever byte path backs the
# sessions: seeking the v6 log vs decoding the whole recording.
"$obs/dpdebug" bisect -a "$obs/ra.dplog" -b "$obs/rb.dplog" -json >"$obs/bi1.json" || true
"$obs/dpdebug" bisect -a "$obs/ra.dplog" -b "$obs/rb.dplog" -json -decode >"$obs/bi2.json" || true
cmp -s "$obs/bi1.json" "$obs/bi2.json" || {
    echo "dpdebug bisect: reader-backed and decoded sessions disagree" >&2; exit 1; }
# A recording against itself never diverges (exit 0).
"$obs/dpdebug" bisect -a "$obs/ra.dplog" -b "$obs/ra.dplog" >/dev/null || {
    echo "dpdebug bisect: self-bisect reported divergence" >&2; exit 1; }
# The repl steps, reverse-steps, and stops on a data watchpoint.
printf 'run 1\nstep 3\nrstep 2\nwatch 0x100001\ncontinue\nquit\n' |
    "$obs/dpdebug" repl -log "$obs/ra.dplog" 2>/dev/null >"$obs/repl.out"
grep -q "at epoch 1 step 0 " "$obs/repl.out" || {
    echo "dpdebug repl: run-to-epoch did not land on the boundary" >&2; exit 1; }
grep -q "watch hit \[0x100001\]" "$obs/repl.out" || {
    echo "dpdebug repl: continue did not stop on the watchpoint" >&2; exit 1; }

echo "== serve gate (job daemon: record + replay-by-id over HTTP)"
go build -o "$obs/doubleplay" ./cmd/doubleplay
go build -o "$obs/dptrace" ./cmd/dptrace
"$obs/doubleplay" serve -listen 127.0.0.1:0 -data "$obs/dpdata" \
    -addr-file "$obs/addr" -pool 2 >"$obs/serve.log" 2>&1 &
srv_pid=$!
for i in $(seq 1 100); do [ -s "$obs/addr" ] && break; sleep 0.1; done
addr=$(cat "$obs/addr")

# JSON field extraction without jq.
field() { grep -o "\"$1\": \"[^\"]*\"" | head -1 | cut -d'"' -f4; }

# Submit the same recording the observability gate made via the CLI.
id=$(curl -fsS -X POST "http://$addr/jobs" \
    -d '{"kind":"record","workload":"racey","workers":2,"seed":11}' | field id)
[ -n "$id" ] || { echo "serve: submission returned no job id" >&2; exit 1; }
state=queued
for i in $(seq 1 300); do
    state=$(curl -fsS "http://$addr/jobs/$id" | field state)
    case "$state" in done|failed|canceled) break;; esac
    sleep 0.1
done
if [ "$state" != done ]; then
    echo "serve: record job ended $state" >&2; cat "$obs/serve.log" >&2; exit 1
fi
rec_hash=$(curl -fsS "http://$addr/jobs/$id" | field final_hash)

# Replay the stored recording by id, epoch-parallel; the hash must match.
rid=$(curl -fsS -X POST "http://$addr/jobs" \
    -d "{\"kind\":\"replay\",\"recording_job\":\"$id\",\"mode\":\"parallel\"}" | field id)
state=queued
for i in $(seq 1 300); do
    state=$(curl -fsS "http://$addr/jobs/$rid" | field state)
    case "$state" in done|failed|canceled) break;; esac
    sleep 0.1
done
rep_hash=$(curl -fsS "http://$addr/jobs/$rid" | field final_hash)
if [ "$state" != done ] || [ -z "$rec_hash" ] || [ "$rep_hash" != "$rec_hash" ]; then
    echo "serve: replay-by-id ended $state (hash $rep_hash vs $rec_hash)" >&2; exit 1
fi

# The served trace must agree with the CLI trace of the same seed.
curl -fsS "http://$addr/jobs/$id/trace" -o "$obs/served.json"
"$obs/dptrace" diff "$obs/served.json" "$obs/a.json" >/dev/null

# The daemon's /metrics must lint clean.
curl -fsS "http://$addr/metrics" -o "$obs/serve.prom"
"$obs/dptrace" promlint "$obs/serve.prom" >/dev/null

# SIGTERM must drain cleanly: exit 0 with artifacts flushed.
kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""

echo "== store gate (chunk dedup, pinning, retention gc, offline fsck)"
./scripts/store_gate.sh

echo "verify.sh: all checks passed"
