// Splashlab: run scientific kernels under a recording-parameter study —
// epoch length against overhead — reproducing in miniature the trade-off
// the paper's epoch-length discussion describes: short epochs pay
// checkpoint and pipeline-fill costs, long epochs pay drain latency (the
// last epoch's serialized execution), with a broad sweet spot between.
package main

import (
	"fmt"
	"log"

	"doubleplay"
)

func main() {
	const workers = 4
	kernels := []string{"fft", "ocean", "radix"}
	epochLens := []int64{6_250, 12_500, 25_000, 50_000, 100_000, 200_000}

	fmt.Printf("%-8s", "epoch")
	for _, k := range kernels {
		fmt.Printf("  %8s", k)
	}
	fmt.Println()

	nativeCycles := map[string]int64{}
	for _, k := range kernels {
		bt := doubleplay.BuildWorkload(k, doubleplay.WorkloadParams{Workers: workers, Seed: 5})
		nat, err := doubleplay.RunNative(bt.Prog, bt.World, workers, 5)
		if err != nil {
			log.Fatal(err)
		}
		nativeCycles[k] = nat.Cycles
	}

	for _, el := range epochLens {
		fmt.Printf("%-8d", el)
		for _, k := range kernels {
			bt := doubleplay.BuildWorkload(k, doubleplay.WorkloadParams{Workers: workers, Seed: 5})
			res, err := doubleplay.Record(bt.Prog, bt.World, doubleplay.RecordOptions{
				Workers:     workers,
				SpareCPUs:   workers,
				EpochCycles: el,
				Seed:        5,
			})
			if err != nil {
				log.Fatal(err)
			}
			over := (float64(res.Stats.CompletionCycles)/float64(nativeCycles[k]) - 1) * 100
			fmt.Printf("  %7.1f%%", over)
		}
		fmt.Println()
	}

	fmt.Println("\ncolumns are recording overhead vs native; note the U-shape:")
	fmt.Println("tiny epochs pay per-checkpoint costs, huge epochs pay pipeline drain.")
}
