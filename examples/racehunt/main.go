// Racehunt: demonstrate what happens when the recorded program has real
// data races. The thread-parallel and epoch-parallel executions disagree at
// epoch boundaries; DoublePlay detects each divergence, performs forward
// recovery (the epoch-parallel state becomes the truth), and the final log
// still replays deterministically. The happens-before detector then names
// the racing addresses — the debugging workflow the paper motivates.
package main

import (
	"fmt"
	"log"

	"doubleplay"
)

func main() {
	const workers = 4

	fmt.Println("=== recording a racy program across 8 seeds ===")
	totalDiv, totalEpochs := 0, 0
	for seed := int64(1); seed <= 8; seed++ {
		bt := doubleplay.BuildWorkload("racey", doubleplay.WorkloadParams{
			Workers: workers,
			Seed:    seed,
		})
		res, err := doubleplay.Record(bt.Prog, bt.World, doubleplay.RecordOptions{
			Workers:   workers,
			SpareCPUs: workers,
			Seed:      seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		totalDiv += s.Divergences
		totalEpochs += s.Epochs

		// The acid test: even after divergences and recoveries, the log
		// must replay to exactly the recorded final state.
		if _, err := doubleplay.ReplaySequential(bt.Prog, res.Recording); err != nil {
			log.Fatalf("seed %d: replay failed: %v", seed, err)
		}
		fmt.Printf("seed %d: %2d epochs, %d divergences (%d adopted, %d re-run), "+
			"%d cycles squashed — replay OK\n",
			seed, s.Epochs, s.Divergences, s.HashRecoveries, s.RerunRecoveries, s.SquashedCycles)
		for _, d := range res.Divergences {
			if d.Kind == "state" && len(d.Pages) > 0 {
				fmt.Printf("        forensics: epoch %d states disagree on memory page(s) %v\n",
					d.Epoch, d.Pages)
			}
		}
	}
	fmt.Printf("\ntotal: %d divergences over %d epochs, every recording replayed exactly\n\n",
		totalDiv, totalEpochs)

	fmt.Println("=== attributing the divergences: happens-before race detection ===")
	bt := doubleplay.BuildWorkload("racey", doubleplay.WorkloadParams{Workers: workers, Seed: 1})
	races, err := doubleplay.FindRaces(bt.Prog, bt.World)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d racy addresses found; first few:\n", len(races))
	for i, r := range races {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(races)-8)
			break
		}
		fmt.Printf("  %s\n", r)
	}

	fmt.Println("\n=== contrast: a race-free server shows zero divergences ===")
	bt = doubleplay.BuildWorkload("webserve", doubleplay.WorkloadParams{Workers: workers, Seed: 1})
	res, err := doubleplay.Record(bt.Prog, bt.World, doubleplay.RecordOptions{
		Workers: workers, SpareCPUs: workers, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("webserve: %d epochs, %d divergences\n", res.Stats.Epochs, res.Stats.Divergences)
	races, err = doubleplay.FindRaces(bt.Prog,
		doubleplay.BuildWorkload("webserve", doubleplay.WorkloadParams{Workers: workers, Seed: 1}).World)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("webserve: %d racy addresses (lock-protected stats, atomic work queues)\n", len(races))
}
