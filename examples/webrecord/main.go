// Webrecord: record a multithreaded web server under scripted client load,
// save the recording to disk, reload it, and replay it — the always-on
// production recording scenario from the paper's introduction. The replay
// log contains only timeslice schedules and syscall results, yet it
// reproduces the server's entire execution bit-exactly, including request
// interleaving across worker threads.
package main

import (
	"bytes"
	"fmt"
	"log"

	"doubleplay"
)

func main() {
	const workers = 4

	// The builtin "webserve" workload: a worker-pool server, a virtual
	// filesystem of documents, and scripted clients arriving over time.
	bt := doubleplay.BuildWorkload("webserve", doubleplay.WorkloadParams{
		Workers: workers,
		Seed:    2026,
	})
	info := doubleplay.DescribeWorkload("webserve")
	fmt.Printf("workload: %s — %s\n\n", info.Name, info.Desc)

	res, err := doubleplay.Record(bt.Prog, bt.World, doubleplay.RecordOptions{
		Workers:   workers,
		SpareCPUs: workers,
		Seed:      2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Stats
	fmt.Printf("recorded %d epochs over %d instructions\n", s.Epochs, s.Retired)
	fmt.Printf("  %d syscalls (accepts, recvs, file reads, sends) captured\n", s.Syscalls)
	fmt.Printf("  %d lock-order events enforced during epoch-parallel execution\n", s.SyncEvents)
	fmt.Printf("  completion: %d cycles; divergences: %d\n\n", s.CompletionCycles, s.Divergences)

	// Persist and reload the log, as a production recorder would.
	var buf bytes.Buffer
	if err := doubleplay.SaveRecording(&buf, res.Recording); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized replay log: %d bytes (%.1f bytes per request served)\n",
		buf.Len(), float64(buf.Len())/480)
	rec, err := doubleplay.LoadRecording(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the reloaded log against a freshly built program image. No
	// simulated OS, no clients — every input comes from the log.
	rep, err := doubleplay.ReplaySequential(bt.Prog, rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplayed %d epochs: final state hash %016x matches the recording\n",
		rep.Epochs, rep.FinalHash)

	// And the fast path: all epochs replayed concurrently on host cores.
	par, err := doubleplay.ReplayParallel(bt.Prog, res.Recording, res.Boundaries, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch-parallel replay finishes in %d simulated cycles (sequential: %d)\n",
		par.Cycles, rep.Cycles)
}
