// Quickstart: author a small multithreaded guest program against the
// public API, record it with uniparallelism, and replay it twice — once
// sequentially, once epoch-parallel — verifying that both reproduce the
// recorded execution exactly.
package main

import (
	"fmt"
	"log"

	"doubleplay"
	"doubleplay/internal/simos"
)

// buildProgram constructs a guest with worker threads that cooperatively
// sum the squares 1..n, claiming chunks of the range from an atomic counter
// and flushing a local accumulator under a lock once per chunk. (Batching
// matters under DoublePlay just as it does on real hardware: every
// interleaved lock or atomic operation forces the epoch-parallel execution
// to switch threads to honour the recorded order, so a program that
// synchronises every few instructions records slowly — and one that
// batches records at a few percent overhead.)
func buildProgram(workers, n int) (*doubleplay.Program, int64) {
	const chunk = 512
	b := doubleplay.NewProgram("sum-squares")
	next := b.Words(1) // work counter: next value to square
	total := b.Words(0)
	okCell := b.Words(0)

	w := b.Func("worker", 1)
	{
		chunkR := w.Const(chunk)
		lk := w.Const(9)
		one := w.Const(1)
		nextA := w.Const(next)
		totalA := w.Const(total)
		v, end, sq, c, t, local := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()

		loop, done := w.NewLabel(), w.NewLabel()
		w.Label(loop)
		w.Fadd(v, nextA, chunkR) // claim [v, v+chunk) atomically
		w.Slei(c, v, int64(n))
		w.Jz(c, done)
		w.Add(end, v, chunkR)
		w.Slei(c, end, int64(n))
		w.IfZ(c, func() { w.Movi(end, int64(n)+1) })
		w.Movi(local, 0)
		w.While(func() doubleplay.Reg { w.Slt(c, v, end); return c }, func() {
			w.Mul(sq, v, v)
			w.Add(local, local, sq)
			w.Addi(v, v, 1)
		})
		w.LockR(lk)
		w.Ld(t, totalA, 0)
		w.Add(t, t, local)
		w.St(totalA, 0, t)
		w.UnlockR(lk)
		// Tell the world about our progress once per chunk.
		w.Sys(simos.SysPrint, nextA, one)
		w.Jump(loop)
		w.Label(done)
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		tids := m.Regs(workers)
		zero := m.Const(0)
		for k := 0; k < workers; k++ {
			m.Spawn(tids[k], "worker", zero)
		}
		for k := 0; k < workers; k++ {
			m.Join(tids[k])
		}
		want := int64(n) * int64(n+1) * int64(2*n+1) / 6
		got, ok := m.Reg(), m.Reg()
		totalA := m.Const(total)
		m.Ld(got, totalA, 0)
		m.Seqi(ok, got, want)
		okA := m.Const(okCell)
		m.St(okA, 0, ok)
		m.HaltImm(0)
	}
	b.SetEntry("main")
	return b.MustBuild(), okCell
}

func main() {
	// Big enough to span tens of epochs — uniparallelism's overhead is a
	// steady-state property, so very short programs see mostly pipeline
	// fill and drain.
	const workers, n = 3, 300000
	prog, okCell := buildProgram(workers, n)

	// Native baseline: how long does the program take with no recording?
	nat, err := doubleplay.RunNative(prog, doubleplay.NewWorld(1), workers, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native:   %8d cycles, %d instructions\n", nat.Cycles, nat.Retired)

	// Uniparallel recording with spare cores.
	res, err := doubleplay.Record(prog, doubleplay.NewWorld(1), doubleplay.RecordOptions{
		Workers:   workers,
		SpareCPUs: workers,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Stats
	fmt.Printf("recorded: %8d cycles (%.1f%% overhead), %d epochs, %d bytes of replay log\n",
		s.CompletionCycles,
		(float64(s.CompletionCycles)/float64(nat.Cycles)-1)*100,
		s.Epochs, s.ReplayBytes)

	// The guest's own verdict, read from the final checkpoint.
	last := res.Boundaries[len(res.Boundaries)-1]
	fmt.Printf("guest self-check: %v (ok cell = %d)\n",
		last.CP.MemSnap.Peek(okCell) == 1, last.CP.MemSnap.Peek(okCell))

	// Replay the log both ways.
	seq, err := doubleplay.ReplaySequential(prog, res.Recording)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential replay:     %8d cycles, final hash %016x\n", seq.Cycles, seq.FinalHash)

	par, err := doubleplay.ReplayParallel(prog, res.Recording, res.Boundaries, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch-parallel replay: %8d cycles — same execution, %dx fewer wall cycles\n",
		par.Cycles, seq.Cycles/max(par.Cycles, 1))
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
