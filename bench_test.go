// Benchmarks that regenerate the paper's tables and figures, one per
// artifact (see DESIGN.md's per-experiment index). Each benchmark runs the
// corresponding experiment over the full evaluation suite and reports the
// figure's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. cmd/dpbench prints the same results as
// human-readable tables.
package doubleplay_test

import (
	"testing"

	"doubleplay/internal/exp"
)

func benchCfg() exp.Config { return exp.Config{Seed: 11} }

// BenchmarkTable1Characteristics regenerates T1: per-workload instruction,
// sync-op, syscall, and page counts.
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Table1(benchCfg())
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		var instrs int64
		for _, r := range rows {
			instrs += r.Retired
		}
		b.ReportMetric(float64(instrs)/float64(len(rows)), "instrs/workload")
	}
}

// BenchmarkFigOverheadSpare2 regenerates F1 — the paper's headline: with
// spare cores and 2 worker threads, logging overhead averages ~15%.
func BenchmarkFigOverheadSpare2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Overhead(benchCfg(), 2, 2)
		b.ReportMetric(exp.MeanOverhead(rows)*100, "overhead_%")
	}
}

// BenchmarkFigOverheadSpare4 regenerates F2 — with 4 worker threads the
// paper reports ~28% average logging overhead.
func BenchmarkFigOverheadSpare4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Overhead(benchCfg(), 4, 4)
		b.ReportMetric(exp.MeanOverhead(rows)*100, "overhead_%")
	}
}

// BenchmarkFigOverheadUtilized regenerates F3: with no spare cores both
// executions share the worker cores and overhead approaches 2x.
func BenchmarkFigOverheadUtilized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows2 := exp.Overhead(benchCfg(), 2, 0)
		rows4 := exp.Overhead(benchCfg(), 4, 0)
		b.ReportMetric(exp.MeanOverhead(rows2)*100, "overhead2_%")
		b.ReportMetric(exp.MeanOverhead(rows4)*100, "overhead4_%")
	}
}

// BenchmarkTableLogSize regenerates T2: replay-log bytes per million guest
// instructions, DoublePlay vs CREW page-ownership logging, plus the v6
// on-disk container: compressed file bytes per million instructions and
// the read locality of the section index (bytes touched seeking the last
// epoch vs decoding every epoch).
func BenchmarkTableLogSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.LogSize(benchCfg())
		var dp, crew, comp float64
		var seek, scan int64
		for _, r := range rows {
			dp += r.DPPerM
			crew += r.CrewPerM
			comp += float64(r.CompBytes) / (float64(r.Retired) / 1e6)
			seek += r.SeekBytes
			scan += r.ScanBytes
		}
		b.ReportMetric(dp/float64(len(rows)), "dp_B/Minstr")
		b.ReportMetric(crew/float64(len(rows)), "crew_B/Minstr")
		b.ReportMetric(comp/float64(len(rows)), "file_B/Minstr")
		b.ReportMetric(float64(seek)/float64(len(rows)), "seek_B")
		b.ReportMetric(float64(scan)/float64(len(rows)), "scan_B")
	}
}

// BenchmarkFigReplaySpeed regenerates F4: sequential replay costs ~W× while
// epoch-parallel replay is near-native.
func BenchmarkFigReplaySpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.ReplaySpeed(benchCfg(), 4)
		var seq, par float64
		for _, r := range rows {
			seq += r.SeqRatio
			par += r.ParRatio
		}
		b.ReportMetric(seq/float64(len(rows)), "seq_x")
		b.ReportMetric(par/float64(len(rows)), "par_x")
	}
}

// BenchmarkFigEpochSweep regenerates F5: overhead against epoch length —
// the U-shaped trade-off between checkpoint cost and pipeline drain.
func BenchmarkFigEpochSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.EpochSweep(benchCfg())
		best, worst := rows[0].Overhead, rows[0].Overhead
		for _, r := range rows {
			if r.Overhead < best {
				best = r.Overhead
			}
			if r.Overhead > worst {
				worst = r.Overhead
			}
		}
		b.ReportMetric(best*100, "best_%")
		b.ReportMetric(worst*100, "worst_%")
	}
}

// BenchmarkTableDivergence regenerates T3: divergence rates, forward
// recoveries, and replay fidelity on racy programs.
func BenchmarkTableDivergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Divergence(benchCfg(), 6)
		var div, epochs, replays, seeds int
		for _, r := range rows {
			div += r.Divergences
			epochs += r.Epochs
			replays += r.ReplaysOK
			seeds += r.Seeds
		}
		if replays != seeds {
			b.Fatalf("replay fidelity broken: %d/%d", replays, seeds)
		}
		b.ReportMetric(float64(div), "divergences")
		b.ReportMetric(float64(div)/float64(epochs)*100, "diverged_epochs_%")
	}
}

// BenchmarkFigSpareCores regenerates F6: overhead as spare cores vary —
// sharp improvement until spares reach the worker count, flat beyond.
func BenchmarkFigSpareCores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.SpareSweep(benchCfg())
		var at4, at8 float64
		n4, n8 := 0, 0
		for _, r := range rows {
			switch r.Spares {
			case 4:
				at4 += r.Overhead
				n4++
			case 8:
				at8 += r.Overhead
				n8++
			}
		}
		b.ReportMetric(at4/float64(n4)*100, "spares4_%")
		b.ReportMetric(at8/float64(n8)*100, "spares8_%")
	}
}

// BenchmarkTableUniprocessorBaseline regenerates T4: classic uniprocessor
// record/replay slows W-thread programs ~W×; DoublePlay does not.
func BenchmarkTableUniprocessorBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.UniBaseline(benchCfg(), 4)
		var uni, dp float64
		for _, r := range rows {
			uni += r.UniSlowdown
			dp += r.DPOverhead
		}
		b.ReportMetric(uni/float64(len(rows)), "uni_slowdown_x")
		b.ReportMetric(dp/float64(len(rows))*100, "dp_overhead_%")
	}
}

// BenchmarkAblationAdaptiveEpochs contrasts fixed against growing epoch
// lengths: early divergence-detection latency shrinks 4x while steady-state
// overhead stays close to the fixed configuration.
func BenchmarkAblationAdaptiveEpochs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Adaptive(benchCfg())
		var fixed, grown float64
		for _, r := range rows {
			fixed += r.FixedOverhead
			grown += r.GrownOverhead
		}
		b.ReportMetric(fixed/float64(len(rows))*100, "fixed_%")
		b.ReportMetric(grown/float64(len(rows))*100, "adaptive_%")
	}
}

// BenchmarkExtensionSparseReplay studies the checkpoint-memory vs
// replay-parallelism trade-off of segment-parallel replay.
func BenchmarkExtensionSparseReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.SparseReplay(benchCfg())
		var fullPages, thinPages int64
		for _, r := range rows {
			switch r.Stride {
			case 1:
				fullPages += r.KeptPages
			case 8:
				thinPages += r.KeptPages
			}
		}
		b.ReportMetric(float64(fullPages), "pages_stride1")
		b.ReportMetric(float64(thinPages), "pages_stride8")
	}
}

// BenchmarkAblationSyncEnforcement regenerates the DESIGN.md ablation:
// divergence counts with the sync-order gate disabled.
func BenchmarkAblationSyncEnforcement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.Ablation(benchCfg())
		withGate, noGate := 0, 0
		for _, r := range rows {
			withGate += r.DivWithGate
			noGate += r.DivNoGate
		}
		if withGate != 0 {
			b.Fatalf("race-free suite diverged with the gate: %d", withGate)
		}
		b.ReportMetric(float64(noGate), "divergences_without_gate")
	}
}

// BenchmarkExtensionVerifySkip regenerates the certified verify-skip
// study: with 2 worker threads and 2 spares, workloads whose static
// certificate proves race-freedom skip the epoch-parallel verification
// pass entirely. The metrics report the mean recording overhead across
// the suite under each policy, plus the overhead of the certified
// workload set alone — the population the optimisation actually helps.
func BenchmarkExtensionVerifySkip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := exp.VerifySkip(benchCfg(), 2, 2)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
		var alwaysSum, certSum float64
		var skipAlways, skipCert float64
		skipped := 0
		for _, r := range rows {
			alwaysSum += r.AlwaysOver
			certSum += r.CertOver
			if r.Skipped > 0 {
				skipAlways += r.AlwaysOver
				skipCert += r.CertOver
				skipped++
			}
		}
		n := float64(len(rows))
		b.ReportMetric(alwaysSum/n*100, "always_%")
		b.ReportMetric(certSum/n*100, "certified_%")
		if skipped == 0 {
			b.Fatal("no workload certified race-free — the verify-skip path never ran")
		}
		b.ReportMetric(skipAlways/float64(skipped)*100, "skip_always_%")
		b.ReportMetric(skipCert/float64(skipped)*100, "skip_certified_%")
	}
}
