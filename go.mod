module doubleplay

go 1.22
