// Reader-based replay: the same strategies as replay.go, but fed by a
// seekable dplog.Reader instead of a fully decoded recording. Each epoch's
// section is decoded on demand, which is what the sectioned v6 log format
// exists for — a segment-parallel replay decodes its own sections
// concurrently, and a single-epoch replay touches exactly one section.

package replay

import (
	"context"
	"fmt"

	"doubleplay/internal/dplog"
	"doubleplay/internal/epoch"
	"doubleplay/internal/profile"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
)

// Source abstracts where a replay strategy reads its per-epoch logs
// from: a decoded *dplog.Recording (free access) or a *dplog.Reader
// (per-section decode on demand). Epochs are addressed by position in
// recording order; for a full log, position and epoch id coincide.
// Every strategy in this package — and the debug session built on top of
// it — runs against this one interface, so "which bytes back the log"
// can never change what a replay computes.
type Source interface {
	NumEpochs() int
	EpochAt(i int) (*dplog.EpochLog, error)
	Program() string
	Quantum() int64
	FinalHash() uint64
}

// FromRecording adapts a fully decoded recording as a Source.
func FromRecording(rec *dplog.Recording) Source { return recSource{rec} }

// FromReader adapts a seekable log reader as a Source.
func FromReader(rd *dplog.Reader) Source { return readerSource{rd} }

// recSource adapts a fully decoded recording.
type recSource struct{ rec *dplog.Recording }

func (s recSource) NumEpochs() int                         { return len(s.rec.Epochs) }
func (s recSource) EpochAt(i int) (*dplog.EpochLog, error) { return s.rec.Epochs[i], nil }
func (s recSource) Program() string                        { return s.rec.Program }
func (s recSource) Quantum() int64                         { return s.rec.Quantum }
func (s recSource) FinalHash() uint64                      { return s.rec.FinalHash }

// readerSource adapts a seekable log reader. dplog.Reader is safe for
// concurrent use, so segment workers can decode their sections in
// parallel.
type readerSource struct{ rd *dplog.Reader }

func (s readerSource) NumEpochs() int                         { return s.rd.NumSections() }
func (s readerSource) EpochAt(i int) (*dplog.EpochLog, error) { return s.rd.EpochAt(i) }
func (s readerSource) Program() string                        { return s.rd.Header().Program }
func (s readerSource) Quantum() int64                         { return s.rd.Header().Quantum }
func (s readerSource) FinalHash() uint64                      { return s.rd.Header().FinalHash }

// SequentialReader is SequentialCtx reading epochs straight from a
// seekable log: each section is decoded right before it is replayed, so
// peak memory holds one epoch's log instead of the whole recording.
func SequentialReader(ctx context.Context, prog *vm.Program, rd *dplog.Reader, costs *vm.CostModel, sink trace.Recorder) (*Result, error) {
	return sequentialSrc(ctx, prog, readerSource{rd}, costs, sink, nil)
}

// SequentialReaderProfiled is SequentialReader with a guest profile (see
// SequentialProfiled). A nil prof disables profiling.
func SequentialReaderProfiled(ctx context.Context, prog *vm.Program, rd *dplog.Reader, costs *vm.CostModel, sink trace.Recorder, prof *profile.Profile) (*Result, error) {
	return sequentialSrc(ctx, prog, readerSource{rd}, costs, sink, prof)
}

// CheckpointsReader is Checkpoints reading epochs straight from a
// seekable log, decoding each section as its epoch is reached.
func CheckpointsReader(ctx context.Context, prog *vm.Program, rd *dplog.Reader, costs *vm.CostModel) ([]*epoch.Boundary, error) {
	return CheckpointsFrom(ctx, prog, readerSource{rd}, costs)
}

// ParallelSparseReader is ParallelSparseCtx reading epochs straight from
// a seekable log: every segment decodes only its own sections, and the
// segments do so concurrently instead of waiting for one sequential
// decode of the entire file.
func ParallelSparseReader(ctx context.Context, prog *vm.Program, rd *dplog.Reader, sparse []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder) (*Result, error) {
	return parallelSparseSrc(ctx, prog, readerSource{rd}, sparse, cpus, costs, sink, nil)
}

// ParallelSparseReaderProfiled is ParallelSparseReader with a guest
// profile (see ParallelSparseProfiled). A nil prof disables profiling.
func ParallelSparseReaderProfiled(ctx context.Context, prog *vm.Program, rd *dplog.Reader, sparse []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder, prof *profile.Profile) (*Result, error) {
	return parallelSparseSrc(ctx, prog, readerSource{rd}, sparse, cpus, costs, sink, prof)
}

// OneEpoch replays a single epoch from its start boundary and verifies
// its recorded end hash. Combined with dplog.Reader.Seek (or the serve
// API's epoch-range endpoint), this is O(epoch) work for O(epoch) data:
// nothing before or after the requested epoch is decoded or executed.
func OneEpoch(prog *vm.Program, b *epoch.Boundary, ep *dplog.EpochLog, quantum int64, costs *vm.CostModel) (*Result, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	if b.Hash != ep.StartHash {
		return nil, fmt.Errorf("replay: epoch %d: checkpoint hash %016x != recorded start %016x",
			ep.Index, b.Hash, ep.StartHash)
	}
	m := b.CP.Restore(prog, nil, costs)
	c, err := runEpoch(m, ep, costs, quantum, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Cycles: c, FinalHash: m.StateHash(), Epochs: 1}, nil
}
