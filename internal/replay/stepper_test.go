package replay_test

import (
	"testing"

	"doubleplay/internal/core"
	"doubleplay/internal/replay"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

// TestStepperMatchesSequential steps entire recordings one instruction
// at a time and checks the unrolled execution lands on exactly the
// state and cost the batch replay computes.
func TestStepperMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"kvdb", 2}, {"racey", 2}, {"fft", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			prog, res := recordWorkload(t, tc.name, tc.workers)
			rec := res.Recording
			seq, err := replay.Sequential(prog, rec, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			m := vm.NewMachine(prog, nil, nil)
			var cycles int64
			var steps uint64
			for _, ep := range rec.Epochs {
				st, err := replay.NewStepper(m, ep, rec.Quantum, nil)
				if err != nil {
					t.Fatalf("epoch %d: %v", ep.Index, err)
				}
				for !st.Done() {
					if _, err := st.Step(); err != nil {
						t.Fatalf("epoch %d step %d: %v", ep.Index, st.Steps(), err)
					}
				}
				cycles += st.Cycles()
				steps += st.Steps()
			}
			if h := m.StateHash(); h != rec.FinalHash {
				t.Fatalf("stepped final hash %016x != recorded %016x", h, rec.FinalHash)
			}
			if cycles != seq.Cycles {
				t.Fatalf("stepped cycles %d != sequential replay %d", cycles, seq.Cycles)
			}
			if steps == 0 {
				t.Fatal("no instructions stepped")
			}
		})
	}
}

// TestStepperMatchesOneEpoch checks per-epoch equivalence from restored
// boundaries: stepping an epoch equals replaying it wholesale.
func TestStepperMatchesOneEpoch(t *testing.T) {
	prog, res := recordWorkload(t, "radix", 2)
	rec := res.Recording
	bs, err := replay.Checkpoints(nil, prog, rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range rec.Epochs {
		one, err := replay.OneEpoch(prog, bs[i], ep, rec.Quantum, nil)
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		m := bs[i].CP.Restore(prog, nil, nil)
		st, err := replay.NewStepper(m, ep, rec.Quantum, nil)
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		for !st.Done() {
			if _, err := st.Step(); err != nil {
				t.Fatalf("epoch %d step %d: %v", i, st.Steps(), err)
			}
		}
		if st.Cycles() != one.Cycles {
			t.Fatalf("epoch %d: stepped cycles %d != OneEpoch %d", i, st.Cycles(), one.Cycles)
		}
		if h := m.StateHash(); h != one.FinalHash {
			t.Fatalf("epoch %d: stepped hash %016x != OneEpoch %016x", i, h, one.FinalHash)
		}
	}
}

// TestStepperCertified steps a certified recording (no timeslice
// schedules — free-run under the sync-order gate) to the same end.
func TestStepperCertified(t *testing.T) {
	wl := workloads.Get("sigping")
	if wl == nil {
		t.Fatal("no sigping workload")
	}
	bt := wl.Build(workloads.Params{Workers: 2, Seed: 17})
	policy, err := core.ParseVerifyPolicy("certified")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Record(bt.Prog, bt.World, core.Options{
		Workers: 2, SpareCPUs: 2, Seed: 17, VerifyPolicy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recording
	certified := false
	for _, ep := range rec.Epochs {
		certified = certified || ep.Certified
	}
	if !certified {
		t.Skip("recording has no certified epochs")
	}
	seq, err := replay.Sequential(bt.Prog, rec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(bt.Prog, nil, nil)
	var cycles int64
	for _, ep := range rec.Epochs {
		st, err := replay.NewStepper(m, ep, rec.Quantum, nil)
		if err != nil {
			t.Fatalf("epoch %d: %v", ep.Index, err)
		}
		for !st.Done() {
			if _, err := st.Step(); err != nil {
				t.Fatalf("epoch %d step %d: %v", ep.Index, st.Steps(), err)
			}
		}
		cycles += st.Cycles()
	}
	if h := m.StateHash(); h != rec.FinalHash {
		t.Fatalf("stepped final hash %016x != recorded %016x", h, rec.FinalHash)
	}
	if cycles != seq.Cycles {
		t.Fatalf("stepped cycles %d != sequential replay %d", cycles, seq.Cycles)
	}
}
