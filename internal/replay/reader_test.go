package replay_test

import (
	"testing"

	"doubleplay/internal/dplog"
	"doubleplay/internal/replay"
)

// TestReaderReplayMatchesRecording pins that the Reader-backed replay
// paths agree with the decoded-recording paths on the same log bytes.
func TestReaderReplayMatchesRecording(t *testing.T) {
	prog, res := recordWorkload(t, "kvdb", 2)
	data := dplog.MarshalBytes(res.Recording)
	rd, err := dplog.OpenReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := replay.Sequential(prog, res.Recording, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaReader, err := replay.SequentialReader(nil, prog, rd, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaReader.FinalHash != seq.FinalHash || viaReader.Cycles != seq.Cycles || viaReader.Epochs != seq.Epochs {
		t.Fatalf("reader replay diverged: %+v vs %+v", viaReader, seq)
	}

	bounds, err := replay.CheckpointsReader(nil, prog, rd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != len(res.Recording.Epochs)+1 {
		t.Fatalf("CheckpointsReader returned %d boundaries for %d epochs", len(bounds), len(res.Recording.Epochs))
	}
	sparse := replay.Thin(bounds[:len(bounds)-1], 2)
	par, err := replay.ParallelSparseReader(nil, prog, rd, sparse, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if par.FinalHash != seq.FinalHash {
		t.Fatal("sparse reader replay disagrees with sequential")
	}
}

// TestOneEpochReplaysSingleSection is the acceptance path for random
// access: seek one epoch's section out of the log, replay just that
// epoch from its boundary checkpoint, and verify it reaches the next
// boundary's state.
func TestOneEpochReplaysSingleSection(t *testing.T) {
	prog, res := recordWorkload(t, "radix", 4)
	data := dplog.MarshalBytes(res.Recording)
	rd, err := dplog.OpenReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumSections() < 2 {
		t.Skip("workload produced fewer than 2 epochs")
	}
	n := rd.NumSections() - 1 // last epoch: sequential decode would pay for all the others
	ep, err := rd.Seek(n)
	if err != nil {
		t.Fatal(err)
	}
	one, err := replay.OneEpoch(prog, res.Boundaries[n], ep, res.Recording.Quantum, nil)
	if err != nil {
		t.Fatal(err)
	}
	if one.Epochs != 1 || one.FinalHash != ep.EndHash {
		t.Fatalf("OneEpoch: %+v, want end hash %016x", one, ep.EndHash)
	}
	// A wrong boundary is rejected up front.
	if _, err := replay.OneEpoch(prog, res.Boundaries[0], ep, res.Recording.Quantum, nil); err == nil {
		t.Fatal("OneEpoch accepted a mismatched boundary")
	}
}
