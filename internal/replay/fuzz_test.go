package replay_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doubleplay/internal/core"
	"doubleplay/internal/dplog"
	"doubleplay/internal/replay"
	"doubleplay/internal/workloads"
)

// mutate applies one random perturbation to a recording and reports what it
// changed (for diagnostics). It returns false if it found nothing to change.
func mutate(rng *rand.Rand, rec *dplog.Recording) (string, bool) {
	if len(rec.Epochs) == 0 {
		return "", false
	}
	ep := rec.Epochs[rng.Intn(len(rec.Epochs))]
	switch rng.Intn(6) {
	case 0: // perturb a slice length
		if len(ep.Schedule) == 0 {
			return "", false
		}
		i := rng.Intn(len(ep.Schedule))
		ep.Schedule[i].N += uint64(1 + rng.Intn(3))
		return "slice-length", true
	case 1: // retarget a slice to another thread
		if len(ep.Schedule) < 2 || len(ep.Targets) < 2 {
			return "", false
		}
		i := rng.Intn(len(ep.Schedule))
		ep.Schedule[i].Tid = (ep.Schedule[i].Tid + 1) % len(ep.Targets)
		return "slice-tid", true
	case 2: // corrupt a syscall result value
		if len(ep.Syscalls) == 0 {
			return "", false
		}
		ep.Syscalls[rng.Intn(len(ep.Syscalls))].Ret += 1
		return "syscall-ret", true
	case 3: // drop a syscall record
		if len(ep.Syscalls) == 0 {
			return "", false
		}
		i := rng.Intn(len(ep.Syscalls))
		ep.Syscalls = append(ep.Syscalls[:i], ep.Syscalls[i+1:]...)
		return "syscall-drop", true
	case 4: // shift a thread's epoch target
		if len(ep.Targets) == 0 {
			return "", false
		}
		i := rng.Intn(len(ep.Targets))
		ep.Targets[i] += uint64(1 + rng.Intn(2))
		return "target", true
	case 5: // shift a signal's delivery point
		if len(ep.Signals) == 0 {
			return "", false
		}
		ep.Signals[rng.Intn(len(ep.Signals))].Retired += 1
		return "signal-point", true
	}
	return "", false
}

// TestQuickMutatedLogsNeverReplayWrong is the failure-injection property:
// after a random corruption, sequential replay must either reject the log
// or — when the mutation happens to be behaviourally neutral — reproduce
// the recorded final hash. It must never silently produce a different
// execution that passes verification (verification includes per-epoch and
// final hashes, so this is really testing that those checks are airtight).
func TestQuickMutatedLogsNeverReplayWrong(t *testing.T) {
	workloadNames := []string{"kvdb", "sigping", "pfscan"}
	base := make(map[string]struct {
		prog *dplogProg
		data []byte
	})
	for _, name := range workloadNames {
		wl := workloads.Get(name)
		bt := wl.Build(workloads.Params{Workers: 3, Seed: 29})
		res, err := core.Record(bt.Prog, bt.World, core.Options{
			Workers: 3, SpareCPUs: 3, Seed: 29,
		})
		if err != nil {
			t.Fatal(err)
		}
		base[name] = struct {
			prog *dplogProg
			data []byte
		}{&dplogProg{prog: bt}, dplog.MarshalBytes(res.Recording)}
	}

	f := func(seed int64, pick uint8) bool {
		name := workloadNames[int(pick)%len(workloadNames)]
		b := base[name]
		rec, err := dplog.UnmarshalBytes(b.data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		kind, ok := mutate(rng, rec)
		if !ok {
			return true // nothing mutated; vacuous
		}
		rep, err := replay.Sequential(b.prog.prog.Prog, rec, nil, nil)
		if err != nil {
			return true // corruption detected: the desired common case
		}
		if rep.FinalHash != rec.FinalHash {
			t.Logf("%s mutation %q: replay 'succeeded' with a different hash", name, kind)
			return false
		}
		return true // behaviourally neutral mutation
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// dplogProg pairs a built workload for reuse across mutations.
type dplogProg struct{ prog *workloads.Built }
