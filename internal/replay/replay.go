// Package replay reproduces recorded executions. Because every epoch of
// the logged execution ran on a single simulated CPU, replaying it needs
// only the timeslice schedule and the recorded syscall results — and
// because epochs start from retained checkpoints, they can be replayed
// concurrently on real host cores (epoch-parallel replay), which is how
// DoublePlay makes replay as scalable as recording.
//
// This package owns replay scheduling and verification: the sequential,
// epoch-parallel, and sparse segment-parallel strategies, the greedy
// makespan model that prices the parallel ones, and the boundary-hash
// checks that prove a replay reproduced the recording. Each entry point
// accepts an optional trace.Sink and narrates its timeline as
// "replay.epoch"/"replay.segment" spans with nested per-timeslice detail
// (see docs/OBSERVABILITY.md).
package replay

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"doubleplay/internal/dplog"
	"doubleplay/internal/epoch"
	"doubleplay/internal/profile"
	"doubleplay/internal/sched"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
)

// ErrCertViolated reports a certified epoch that failed to reproduce its
// recorded end state. Certified epochs were committed without the
// epoch-parallel verification pass on the strength of a race-free static
// certificate, so any failure here is not an ordinary replay divergence —
// it is a soundness bug in the certificate and must be treated as fatal.
var ErrCertViolated = errors.New("replay: certified epoch violated its race-freedom certificate")

// Result reports a completed replay.
type Result struct {
	// Cycles is the modelled completion time: total serialized cycles for
	// sequential replay, pipeline makespan for parallel replay.
	Cycles    int64
	FinalHash uint64
	Epochs    int
}

// epochCost returns the modelled duration of replaying one epoch.
func epochCost(uniCycles int64, injected int, costs *vm.CostModel) int64 {
	return uniCycles + int64(injected)*costs.InjectSysEvent
}

// runEpoch replays one epoch on machine m (already positioned at the
// epoch's start state) and verifies its end hash. When buf is non-nil the
// uniprocessor scheduler traces each followed timeslice into it with
// epoch-local timestamps. Certified epochs carry no timeslice schedule
// and dispatch to the sync-order free run instead; quantum is the
// recording's scheduling quantum for that path (zero = default).
func runEpoch(m *vm.Machine, ep *dplog.EpochLog, costs *vm.CostModel, quantum int64, buf *trace.Sink) (int64, error) {
	if ep.Certified {
		return runCertifiedEpoch(m, ep, costs, quantum, buf)
	}
	inj := epoch.NewInjectOS(ep.Syscalls)
	m.OS = inj
	sigs := epoch.NewInjectSignals(ep.Signals)
	m.Hooks.PendingSignal = sigs.Pending
	uni := sched.NewUni(m)
	uni.Follow = ep.Schedule
	uni.Targets = ep.Targets
	uni.Trace = buf
	if err := uni.Run(); err != nil {
		return 0, fmt.Errorf("replay: epoch %d: %w", ep.Index, err)
	}
	if r := inj.Remaining(); r != 0 {
		return 0, fmt.Errorf("replay: epoch %d: %d recorded syscalls never issued", ep.Index, r)
	}
	if r := sigs.Remaining(); r != 0 {
		return 0, fmt.Errorf("replay: epoch %d: %d recorded signals never delivered", ep.Index, r)
	}
	if h := m.StateHash(); h != ep.EndHash {
		return 0, fmt.Errorf("replay: epoch %d: end state hash %016x != recorded %016x",
			ep.Index, h, ep.EndHash)
	}
	return epochCost(uni.Cycles, inj.Injected, costs), nil
}

// runCertifiedEpoch replays a certified epoch: no timeslice schedule was
// ever produced, so the threads free-run timesliced under the recorded
// sync-order gate, exactly like the epoch-parallel logging run the
// recorder skipped. The certificate asserts any sync-order-respecting
// execution reaches the recorded end state, so every cross-check failure
// wraps ErrCertViolated rather than reporting a divergence.
func runCertifiedEpoch(m *vm.Machine, ep *dplog.EpochLog, costs *vm.CostModel, quantum int64, buf *trace.Sink) (int64, error) {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: epoch %d: %s", ErrCertViolated, ep.Index, fmt.Sprintf(format, args...))
	}
	inj := epoch.NewInjectOS(ep.Syscalls)
	m.OS = inj
	sigs := epoch.NewInjectSignals(ep.Signals)
	m.Hooks.PendingSignal = sigs.Pending
	gate := epoch.NewGate(ep.SyncOrder)
	m.Hooks.MayAcquire = gate.MayAcquire
	m.Hooks.OnSync = gate.OnSync
	// Sequential and segment replay reuse the machine for the following
	// epochs, which must not run against this epoch's gate.
	defer func() {
		m.Hooks.MayAcquire = nil
		m.Hooks.OnSync = nil
	}()
	uni := sched.NewUni(m)
	if quantum > 0 {
		uni.Quantum = quantum
	}
	uni.Targets = ep.Targets
	uni.Trace = buf
	if err := uni.Run(); err != nil {
		return 0, fail("%v", err)
	}
	if r := gate.Remaining(); r != 0 {
		return 0, fail("%d recorded sync ops never performed", r)
	}
	if gateErr := gate.Err(); gateErr != "" {
		return 0, fail("%s", gateErr)
	}
	if r := inj.Remaining(); r != 0 {
		return 0, fail("%d recorded syscalls never issued", r)
	}
	if r := sigs.Remaining(); r != 0 {
		return 0, fail("%d recorded signals never delivered", r)
	}
	if h := m.StateHash(); h != ep.EndHash {
		return 0, fail("end state hash %016x != recorded %016x", h, ep.EndHash)
	}
	return epochCost(uni.Cycles, inj.Injected, costs) + int64(gate.Used())*costs.EnforceSyncEvent, nil
}

// runEpochPhase is runEpoch under the dp.phase=replay pprof label, so host
// CPU profiles of a replaying process attribute the work to the replay
// phase (the label is free when no host profile is active).
func runEpochPhase(ctx context.Context, m *vm.Machine, ep *dplog.EpochLog, costs *vm.CostModel, quantum int64, buf *trace.Sink) (c int64, err error) {
	profile.WithPhase(ctx, "replay", func() { c, err = runEpoch(m, ep, costs, quantum, buf) })
	return c, err
}

// ctxErr reports a context's error once it is done; a nil context never
// cancels. Replay checks it at epoch boundaries, mirroring the recorder's
// cancellation points (core.Options.Context).
func ctxErr(ctx context.Context, epoch int) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("replay: canceled at epoch %d: %w", epoch, err)
	}
	return nil
}

// Sequential replays the recording epoch by epoch on one simulated CPU,
// starting from program reset. It verifies every epoch boundary hash and
// the final hash. A non-nil sink receives one "replay.epoch" span per
// epoch with the followed timeslices nested inside.
func Sequential(prog *vm.Program, rec *dplog.Recording, costs *vm.CostModel, sink trace.Recorder) (*Result, error) {
	return SequentialCtx(nil, prog, rec, costs, sink)
}

// SequentialCtx is Sequential with cooperative cancellation: the context
// is checked before each epoch, so a canceled or deadline-expired context
// ends the replay with the context's error wrapped. A nil context never
// cancels.
func SequentialCtx(ctx context.Context, prog *vm.Program, rec *dplog.Recording, costs *vm.CostModel, sink trace.Recorder) (*Result, error) {
	return sequentialSrc(ctx, prog, recSource{rec}, costs, sink, nil)
}

// SequentialProfiled is SequentialCtx with a guest profile: every retired
// instruction of the replayed execution is attributed into prof, which ends
// up bit-identical to the profile the recorder gathered for the same log
// (see internal/profile). A nil prof disables profiling.
func SequentialProfiled(ctx context.Context, prog *vm.Program, rec *dplog.Recording, costs *vm.CostModel, sink trace.Recorder, prof *profile.Profile) (*Result, error) {
	return sequentialSrc(ctx, prog, recSource{rec}, costs, sink, prof)
}

// sequentialSrc is the sequential strategy over any epoch source: a fully
// decoded recording or a seekable log reader.
func sequentialSrc(ctx context.Context, prog *vm.Program, src Source, costs *vm.CostModel, sink trace.Recorder, prof *profile.Profile) (*Result, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	var pid int64
	if trace.Enabled(sink) {
		pid = sink.AllocPid("replay " + src.Program() + " (sequential)")
		sink.NameThread(pid, 0, "epochs")
	}
	m := vm.NewMachine(prog, nil, costs)
	var gp *profile.Profiler
	if prof != nil {
		gp = profile.New(prog)
		gp.Attach(m)
	}
	res := &Result{}
	for i, n := 0, src.NumEpochs(); i < n; i++ {
		ep, err := src.EpochAt(i)
		if err != nil {
			return nil, err
		}
		if err := ctxErr(ctx, ep.Index); err != nil {
			return nil, err
		}
		if h := m.StateHash(); h != ep.StartHash {
			return nil, fmt.Errorf("replay: epoch %d: start state hash %016x != recorded %016x",
				ep.Index, h, ep.StartHash)
		}
		var buf *trace.Sink
		if trace.Enabled(sink) {
			buf = trace.NewSink()
		}
		c, err := runEpochPhase(ctx, m, ep, costs, src.Quantum(), buf)
		if err != nil {
			return nil, err
		}
		if trace.Enabled(sink) {
			sink.Span("replay.epoch", res.Cycles, c, pid, 0, map[string]any{
				"epoch": ep.Index, "slices": len(ep.Schedule), "syscalls": len(ep.Syscalls),
			})
			sink.Splice(buf, res.Cycles, pid, 0)
		}
		res.Cycles += c
		res.Epochs++
	}
	res.FinalHash = m.StateHash()
	if want := src.FinalHash(); res.FinalHash != want {
		return nil, fmt.Errorf("replay: final hash %016x != recorded %016x", res.FinalHash, want)
	}
	if gp != nil {
		prof.Merge(gp.Snapshot())
	}
	return res, nil
}

// Parallel replays every epoch concurrently from the retained epoch-start
// checkpoints, using real host goroutines — the epochs are independent
// machines sharing pages copy-on-write. The modelled wall time is the
// makespan of packing epoch durations onto cpus cores. A non-nil sink
// receives one "replay.epoch" span per epoch at its packed position, on a
// track per modelled core.
func Parallel(prog *vm.Program, rec *dplog.Recording, boundaries []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder) (*Result, error) {
	return ParallelCtx(nil, prog, rec, boundaries, cpus, costs, sink)
}

// ParallelCtx is Parallel with cooperative cancellation: each epoch's
// worker checks the context before restoring its checkpoint, so a
// canceled context stops the fan-out promptly. A nil context never
// cancels.
func ParallelCtx(ctx context.Context, prog *vm.Program, rec *dplog.Recording, boundaries []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder) (*Result, error) {
	return parallelCtx(ctx, prog, rec, boundaries, cpus, costs, sink, nil)
}

// ParallelProfiled is ParallelCtx with a guest profile: each epoch worker
// profiles its own machine and the per-epoch profiles are merged into prof
// after the fan-out completes. Merging is commutative over canonical stack
// keys, so the result is byte-identical to the sequential strategy's
// profile no matter how the epochs interleave. A nil prof disables
// profiling.
func ParallelProfiled(ctx context.Context, prog *vm.Program, rec *dplog.Recording, boundaries []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder, prof *profile.Profile) (*Result, error) {
	return parallelCtx(ctx, prog, rec, boundaries, cpus, costs, sink, prof)
}

func parallelCtx(ctx context.Context, prog *vm.Program, rec *dplog.Recording, boundaries []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder, prof *profile.Profile) (*Result, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	if cpus < 1 {
		cpus = 1
	}
	if len(boundaries) != len(rec.Epochs)+1 {
		return nil, fmt.Errorf("replay: %d boundaries for %d epochs", len(boundaries), len(rec.Epochs))
	}

	durs := make([]int64, len(rec.Epochs))
	errs := make([]error, len(rec.Epochs))
	bufs := make([]*trace.Sink, len(rec.Epochs))
	profs := make([]*profile.Profile, len(rec.Epochs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cpus)
	for i, ep := range rec.Epochs {
		if boundaries[i].Hash != ep.StartHash {
			return nil, fmt.Errorf("replay: epoch %d: checkpoint hash %016x != recorded start %016x",
				ep.Index, boundaries[i].Hash, ep.StartHash)
		}
		if trace.Enabled(sink) {
			bufs[i] = trace.NewSink()
		}
		wg.Add(1)
		go func(i int, ep *dplog.EpochLog) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if errs[i] = ctxErr(ctx, ep.Index); errs[i] != nil {
				return
			}
			m := boundaries[i].CP.Restore(prog, nil, costs)
			var gp *profile.Profiler
			if prof != nil {
				gp = profile.New(prog)
				gp.Attach(m)
			}
			durs[i], errs[i] = runEpochPhase(ctx, m, ep, costs, rec.Quantum, bufs[i])
			if gp != nil && errs[i] == nil {
				profs[i] = gp.Snapshot()
			}
		}(i, ep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if prof != nil {
		for _, p := range profs {
			prof.Merge(p)
		}
	}

	slots, wall := pack(durs, cpus)
	if trace.Enabled(sink) {
		pid := sink.AllocPid("replay " + rec.Program + " (epoch-parallel)")
		for c := 0; c < cpus; c++ {
			sink.NameThread(pid, int64(c), fmt.Sprintf("core %d", c))
		}
		for i, ep := range rec.Epochs {
			s := slots[i]
			sink.Span("replay.epoch", s.start, s.fin-s.start, pid, int64(s.core),
				map[string]any{"epoch": ep.Index, "slices": len(ep.Schedule)})
			sink.Splice(bufs[i], s.start, pid, int64(s.core))
		}
	}

	return &Result{Cycles: wall, FinalHash: rec.FinalHash, Epochs: len(rec.Epochs)}, nil
}

// packSlot is one duration's placement in the greedy packing.
type packSlot struct {
	core       int
	start, fin int64
}

// pack places durations greedily onto cpus cores in index order, returning
// each placement and the makespan.
func pack(durs []int64, cpus int) ([]packSlot, int64) {
	free := make([]int64, cpus)
	slots := make([]packSlot, len(durs))
	var wall int64
	for i, d := range durs {
		c := 0
		for j := 1; j < cpus; j++ {
			if free[j] < free[c] {
				c = j
			}
		}
		slots[i] = packSlot{core: c, start: free[c], fin: free[c] + d}
		free[c] += d
		if free[c] > wall {
			wall = free[c]
		}
	}
	return slots, wall
}

// ParallelSparse replays from a thinned set of retained checkpoints:
// each retained boundary anchors a segment of consecutive epochs replayed
// sequentially, and segments run concurrently. This trades replay
// parallelism for checkpoint memory — with stride k, only 1/k of the
// epoch-start checkpoints need to be kept.
//
// The sparse slice must be ordered by Boundary.Index, start at epoch 0, and
// its boundaries must be epoch boundaries of rec (core.Result.ThinBoundaries
// produces a valid set). A non-nil sink receives one "replay.segment" span
// per segment at its packed position, with the segment's "replay.epoch"
// spans and timeslices nested inside.
func ParallelSparse(prog *vm.Program, rec *dplog.Recording, sparse []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder) (*Result, error) {
	return ParallelSparseCtx(nil, prog, rec, sparse, cpus, costs, sink)
}

// ParallelSparseCtx is ParallelSparse with cooperative cancellation,
// checked before each epoch within every segment. A nil context never
// cancels.
func ParallelSparseCtx(ctx context.Context, prog *vm.Program, rec *dplog.Recording, sparse []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder) (*Result, error) {
	return parallelSparseSrc(ctx, prog, recSource{rec}, sparse, cpus, costs, sink, nil)
}

// ParallelSparseProfiled is ParallelSparseCtx with a guest profile: each
// segment worker profiles its own machine and the per-segment profiles are
// merged into prof after the fan-out completes. A nil prof disables
// profiling.
func ParallelSparseProfiled(ctx context.Context, prog *vm.Program, rec *dplog.Recording, sparse []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder, prof *profile.Profile) (*Result, error) {
	return parallelSparseSrc(ctx, prog, recSource{rec}, sparse, cpus, costs, sink, prof)
}

// parallelSparseSrc is the sparse segment-parallel strategy over any
// epoch source. Segments fetch their epochs one at a time, so over a
// seekable log reader each segment decodes only its own sections — and
// does so concurrently with the other segments, instead of one up-front
// sequential decode of the whole file.
func parallelSparseSrc(ctx context.Context, prog *vm.Program, src Source, sparse []*epoch.Boundary, cpus int, costs *vm.CostModel, sink trace.Recorder, prof *profile.Profile) (*Result, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	if cpus < 1 {
		cpus = 1
	}
	if len(sparse) == 0 || sparse[0].Index != 0 {
		return nil, fmt.Errorf("replay: sparse boundaries must start at epoch 0")
	}

	n := src.NumEpochs()
	// Segment k covers epochs [sparse[k].Index, end_k) where end_k is the
	// next boundary's index (or the end of the recording).
	type segment struct {
		start  *epoch.Boundary
		lo, hi int // epoch positions [lo, hi)
	}
	var segs []segment
	for k, b := range sparse {
		end := n
		if k+1 < len(sparse) {
			end = sparse[k+1].Index
		}
		if b.Index > end || end > n {
			return nil, fmt.Errorf("replay: sparse boundary %d covers invalid range [%d,%d)", k, b.Index, end)
		}
		if b.Index == end {
			continue // trailing boundary
		}
		first, err := src.EpochAt(b.Index)
		if err != nil {
			return nil, err
		}
		if b.Hash != first.StartHash {
			return nil, fmt.Errorf("replay: boundary for epoch %d has hash %016x, recording says %016x",
				b.Index, b.Hash, first.StartHash)
		}
		segs = append(segs, segment{start: b, lo: b.Index, hi: end})
	}

	durs := make([]int64, len(segs))
	errs := make([]error, len(segs))
	bufs := make([]*trace.Sink, len(segs))
	profs := make([]*profile.Profile, len(segs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cpus)
	for i, sg := range segs {
		if trace.Enabled(sink) {
			bufs[i] = trace.NewSink()
		}
		wg.Add(1)
		go func(i int, sg segment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			segbuf := bufs[i]
			m := sg.start.CP.Restore(prog, nil, costs)
			var gp *profile.Profiler
			if prof != nil {
				gp = profile.New(prog)
				gp.Attach(m)
			}
			for pos := sg.lo; pos < sg.hi; pos++ {
				ep, err := src.EpochAt(pos)
				if err != nil {
					errs[i] = err
					return
				}
				if errs[i] = ctxErr(ctx, ep.Index); errs[i] != nil {
					return
				}
				if h := m.StateHash(); h != ep.StartHash {
					errs[i] = fmt.Errorf("replay: epoch %d: segment state %016x != recorded start %016x",
						ep.Index, h, ep.StartHash)
					return
				}
				var epb *trace.Sink
				if segbuf.Enabled() {
					epb = trace.NewSink()
				}
				c, err := runEpochPhase(ctx, m, ep, costs, src.Quantum(), epb)
				if err != nil {
					errs[i] = err
					return
				}
				if segbuf.Enabled() {
					segbuf.Span("replay.epoch", durs[i], c, 0, 0,
						map[string]any{"epoch": ep.Index, "slices": len(ep.Schedule)})
					segbuf.Splice(epb, durs[i], 0, 0)
				}
				durs[i] += c
			}
			if gp != nil {
				profs[i] = gp.Snapshot()
			}
		}(i, sg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if prof != nil {
		for _, p := range profs {
			prof.Merge(p)
		}
	}

	slots, wall := pack(durs, cpus)
	if trace.Enabled(sink) {
		pid := sink.AllocPid("replay " + src.Program() + " (sparse segments)")
		for c := 0; c < cpus; c++ {
			sink.NameThread(pid, int64(c), fmt.Sprintf("core %d", c))
		}
		for i, sg := range segs {
			s := slots[i]
			sink.Span("replay.segment", s.start, s.fin-s.start, pid, int64(s.core),
				map[string]any{"start_epoch": sg.start.Index, "epochs": sg.hi - sg.lo})
			sink.Splice(bufs[i], s.start, pid, int64(s.core))
		}
	}
	return &Result{Cycles: wall, FinalHash: src.FinalHash(), Epochs: n}, nil
}

// Checkpoints reconstructs the epoch-start boundaries of a recording by
// replaying it sequentially and capturing a machine checkpoint at each
// epoch start. It returns len(rec.Epochs)+1 boundaries (one per epoch
// start plus the final state), verifying every start hash along the way,
// so the result is valid input for [Parallel] and — thinned with [Thin] —
// [ParallelSparse].
//
// This is what lets a recording artifact loaded from disk be replayed in
// parallel: the original recording process held the checkpoints in
// memory, but a stored dplog carries only the logs, and one sequential
// pass rebuilds the rest. The boundaries' World is nil — parallel replay
// injects recorded syscall results and never consults a simulated OS.
func Checkpoints(ctx context.Context, prog *vm.Program, rec *dplog.Recording, costs *vm.CostModel) ([]*epoch.Boundary, error) {
	return CheckpointsFrom(ctx, prog, recSource{rec}, costs)
}

// CheckpointsFrom is the boundary-reconstruction pass over any epoch
// source — the single implementation behind Checkpoints and
// CheckpointsReader, and the one the debug session uses to materialize
// its seek targets.
func CheckpointsFrom(ctx context.Context, prog *vm.Program, src Source, costs *vm.CostModel) ([]*epoch.Boundary, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	m := vm.NewMachine(prog, nil, costs)
	n := src.NumEpochs()
	out := make([]*epoch.Boundary, 0, n+1)
	var cycles int64
	for i := 0; i < n; i++ {
		ep, err := src.EpochAt(i)
		if err != nil {
			return nil, err
		}
		if err := ctxErr(ctx, ep.Index); err != nil {
			return nil, err
		}
		if h := m.StateHash(); h != ep.StartHash {
			return nil, fmt.Errorf("replay: checkpoints: epoch %d start hash %016x != recorded %016x",
				ep.Index, h, ep.StartHash)
		}
		out = append(out, &epoch.Boundary{
			Index:       ep.Index,
			Cycle:       cycles,
			CP:          m.Checkpoint(),
			Hash:        ep.StartHash,
			MappedPages: m.Mem.PageCount(),
		})
		c, err := runEpoch(m, ep, costs, src.Quantum(), nil)
		if err != nil {
			return nil, err
		}
		cycles += c
	}
	if h, want := m.StateHash(), src.FinalHash(); h != want {
		return nil, fmt.Errorf("replay: checkpoints: final hash %016x != recorded %016x", h, want)
	}
	out = append(out, &epoch.Boundary{
		Index:       n,
		Cycle:       cycles,
		CP:          m.Checkpoint(),
		Hash:        src.FinalHash(),
		MappedPages: m.Mem.PageCount(),
	})
	return out, nil
}

// RunOneEpoch replays one epoch on m, which must hold the epoch's start
// state, and verifies the recorded end hash. It is runEpoch exported for
// the debug session's checkpoint materialization: restore a boundary,
// run whole epochs at full speed, and only fall back to instruction
// stepping (the Stepper) inside the epoch of interest.
func RunOneEpoch(m *vm.Machine, ep *dplog.EpochLog, quantum int64, costs *vm.CostModel) (int64, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	return runEpoch(m, ep, costs, quantum, nil)
}

// Thin returns every stride-th boundary, always keeping the first and
// last — the same thinning core.Result.ThinBoundaries applies to live
// checkpoints, usable on the reconstructed set from [Checkpoints].
func Thin(bs []*epoch.Boundary, stride int) []*epoch.Boundary {
	if stride <= 1 {
		return bs
	}
	var out []*epoch.Boundary
	for i, b := range bs {
		if i%stride == 0 || i == len(bs)-1 {
			out = append(out, b)
		}
	}
	return out
}
