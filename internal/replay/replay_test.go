package replay_test

import (
	"strings"
	"testing"

	"doubleplay/internal/core"
	"doubleplay/internal/dplog"
	"doubleplay/internal/replay"
	"doubleplay/internal/simos"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

// recordWorkload produces a recording of a builtin workload.
func recordWorkload(t *testing.T, name string, workers int) (*vm.Program, *core.Result) {
	t.Helper()
	wl := workloads.Get(name)
	if wl == nil {
		t.Fatalf("no workload %s", name)
	}
	bt := wl.Build(workloads.Params{Workers: workers, Seed: 17})
	res, err := core.Record(bt.Prog, bt.World, core.Options{
		Workers: workers, SpareCPUs: workers, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bt.Prog, res
}

func TestSequentialVerifiesEveryBoundary(t *testing.T) {
	prog, res := recordWorkload(t, "kvdb", 2)
	rep, err := replay.Sequential(prog, res.Recording, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != len(res.Recording.Epochs) {
		t.Fatalf("replayed %d of %d epochs", rep.Epochs, len(res.Recording.Epochs))
	}
	if rep.FinalHash != res.FinalHash {
		t.Fatal("final hash mismatch")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	prog, res := recordWorkload(t, "radix", 4)
	seq, err := replay.Sequential(prog, res.Recording, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := replay.Parallel(prog, res.Recording, res.Boundaries, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if par.FinalHash != seq.FinalHash {
		t.Fatal("parallel and sequential replay disagree")
	}
	if par.Cycles >= seq.Cycles {
		t.Fatalf("parallel replay not faster: %d vs %d", par.Cycles, seq.Cycles)
	}
}

func TestCorruptedScheduleRejected(t *testing.T) {
	prog, res := recordWorkload(t, "kvdb", 2)
	rec := res.Recording
	// Find an epoch with a schedule and perturb one slice.
	for _, ep := range rec.Epochs {
		if len(ep.Schedule) > 1 {
			ep.Schedule[0].N += 2
			break
		}
	}
	if _, err := replay.Sequential(prog, rec, nil, nil); err == nil {
		t.Fatal("corrupted schedule replayed cleanly")
	}
}

func TestCorruptedSyscallResultRejected(t *testing.T) {
	// pfscan counts words equal to 42; toggling one input word across that
	// boundary changes the match count, so the replayed state must differ.
	prog, res := recordWorkload(t, "pfscan", 2)
	rec := res.Recording
	found := false
	for _, ep := range rec.Epochs {
		for i := range ep.Syscalls {
			if len(ep.Syscalls[i].Writes) > 0 && len(ep.Syscalls[i].Writes[0].Data) > 0 {
				d := ep.Syscalls[i].Writes[0].Data
				if d[0] == 42 {
					d[0] = 0
				} else {
					d[0] = 42
				}
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no syscall input data recorded")
	}
	if _, err := replay.Sequential(prog, rec, nil, nil); err == nil {
		t.Fatal("corrupted input data replayed cleanly")
	}
}

func TestCorruptedFinalHashRejected(t *testing.T) {
	prog, res := recordWorkload(t, "kvdb", 2)
	res.Recording.FinalHash ^= 1
	_, err := replay.Sequential(prog, res.Recording, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "final hash") {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelBoundaryCountMismatch(t *testing.T) {
	prog, res := recordWorkload(t, "kvdb", 2)
	_, err := replay.Parallel(prog, res.Recording, res.Boundaries[:1], 2, nil, nil)
	if err == nil {
		t.Fatal("boundary count mismatch accepted")
	}
}

func TestReplayRoundTripsThroughCodec(t *testing.T) {
	prog, res := recordWorkload(t, "webserve", 2)
	data := dplog.MarshalBytes(res.Recording)
	rec, err := dplog.UnmarshalBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replay.Sequential(prog, rec, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalHash != res.FinalHash {
		t.Fatal("decoded recording replays differently")
	}
}

func TestWrongProgramRejected(t *testing.T) {
	_, res := recordWorkload(t, "kvdb", 2)
	other := workloads.Get("fft").Build(workloads.Params{Workers: 2, Seed: 17})
	if _, err := replay.Sequential(other.Prog, res.Recording, nil, nil); err == nil {
		t.Fatal("recording replayed against the wrong program")
	}
	_ = simos.NewWorld // keep import for symmetry with other tests
}
