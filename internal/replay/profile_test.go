package replay_test

import (
	"bytes"
	"testing"

	"doubleplay/internal/core"
	"doubleplay/internal/dplog"
	"doubleplay/internal/profile"
	"doubleplay/internal/replay"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

// recordWorkloadProfiled is recordWorkload with guest profiling turned on;
// it returns the profile the recorder gathered alongside the recording.
func recordWorkloadProfiled(t *testing.T, name string, workers int) (*vm.Program, *core.Result, *profile.Profile) {
	t.Helper()
	wl := workloads.Get(name)
	if wl == nil {
		t.Fatalf("no workload %s", name)
	}
	bt := wl.Build(workloads.Params{Workers: workers, Seed: 17})
	prof := profile.NewProfile("")
	res, err := core.Record(bt.Prog, bt.World, core.Options{
		Workers: workers, SpareCPUs: workers, Seed: 17, Profile: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	return bt.Prog, res, prof
}

// TestGuestProfileRecordReplayIdentity is the headline determinism claim:
// for every builtin workload, sequential replay of the recording regenerates
// the record-time guest profile byte for byte.
func TestGuestProfileRecordReplayIdentity(t *testing.T) {
	for _, workers := range []int{2, 4} {
		for _, name := range workloads.Names() {
			name, workers := name, workers
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				prog, res, recProf := recordWorkloadProfiled(t, name, workers)
				if recProf.NumSamples() == 0 {
					t.Fatal("record profile is empty")
				}
				repProf := profile.NewProfile("")
				if _, err := replay.SequentialProfiled(nil, prog, res.Recording, nil, nil, repProf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(recProf.MarshalPprof(), repProf.MarshalPprof()) {
					t.Fatalf("%s/%dw: replay profile differs from record profile", name, workers)
				}
			})
		}
	}
}

// TestGuestProfileStrategyIndependence checks that every replay strategy —
// sequential, epoch-parallel, segment-parallel over thinned checkpoints, and
// the reader-backed variants over a marshalled log — produces the same bytes.
// Parallel strategies merge per-epoch profiles in nondeterministic completion
// order, so this also exercises the canonical (order-free) pprof encoding.
func TestGuestProfileStrategyIndependence(t *testing.T) {
	prog, res, recProf := recordWorkloadProfiled(t, "radix", 4)
	want := recProf.MarshalPprof()

	rd, err := dplog.OpenReaderBytes(dplog.MarshalBytes(res.Recording))
	if err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		name string
		run  func(p *profile.Profile) error
	}{
		{"sequential", func(p *profile.Profile) error {
			_, err := replay.SequentialProfiled(nil, prog, res.Recording, nil, nil, p)
			return err
		}},
		{"parallel", func(p *profile.Profile) error {
			_, err := replay.ParallelProfiled(nil, prog, res.Recording, res.Boundaries, 4, nil, nil, p)
			return err
		}},
		{"sparse", func(p *profile.Profile) error {
			_, err := replay.ParallelSparseProfiled(nil, prog, res.Recording, res.ThinBoundaries(2), 4, nil, nil, p)
			return err
		}},
		{"reader-sequential", func(p *profile.Profile) error {
			_, err := replay.SequentialReaderProfiled(nil, prog, rd, nil, nil, p)
			return err
		}},
		{"reader-sparse", func(p *profile.Profile) error {
			_, err := replay.ParallelSparseReaderProfiled(nil, prog, rd, res.ThinBoundaries(2), 4, nil, nil, p)
			return err
		}},
	}
	for _, r := range runs {
		p := profile.NewProfile("")
		if err := r.run(p); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if !bytes.Equal(want, p.MarshalPprof()) {
			t.Fatalf("%s: profile differs from record profile", r.name)
		}
	}
}

// TestGuestProfileCertifiedRecording: under the certified verify-skip policy
// the profile is gathered from the thread-parallel execution itself, which is
// the execution the log describes — replay must still regenerate it exactly.
func TestGuestProfileCertifiedRecording(t *testing.T) {
	for _, name := range []string{"sigping", "pfscan"} {
		wl := workloads.Get(name)
		bt := wl.Build(workloads.Params{Workers: 2, Seed: 17})
		recProf := profile.NewProfile("")
		res, err := core.Record(bt.Prog, bt.World, core.Options{
			Workers: 2, SpareCPUs: 2, Seed: 17,
			VerifyPolicy: core.VerifyCertified, Profile: recProf,
		})
		if err != nil {
			t.Fatal(err)
		}
		repProf := profile.NewProfile("")
		if _, err := replay.SequentialProfiled(nil, bt.Prog, res.Recording, nil, nil, repProf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(recProf.MarshalPprof(), repProf.MarshalPprof()) {
			t.Fatalf("%s: certified-recording profile differs from replay profile", name)
		}
	}
}

// TestGuestProfileAccountsAllCycles: the profile's cycle total equals the
// cycles the replay itself retired, so nothing is dropped or double-counted.
func TestGuestProfileTotalsMatchReplay(t *testing.T) {
	prog, res, recProf := recordWorkloadProfiled(t, "fft", 2)
	repProf := profile.NewProfile("")
	if _, err := replay.SequentialProfiled(nil, prog, res.Recording, nil, nil, repProf); err != nil {
		t.Fatal(err)
	}
	if recProf.TotalCycles() != repProf.TotalCycles() {
		t.Fatalf("cycle totals differ: record %d, replay %d", recProf.TotalCycles(), repProf.TotalCycles())
	}
	if recProf.TotalInstrs() != repProf.TotalInstrs() {
		t.Fatalf("instruction totals differ: record %d, replay %d", recProf.TotalInstrs(), repProf.TotalInstrs())
	}
	if recProf.TotalCycles() <= 0 || recProf.TotalInstrs() <= 0 {
		t.Fatalf("empty totals: %d cycles, %d instrs", recProf.TotalCycles(), recProf.TotalInstrs())
	}
}
