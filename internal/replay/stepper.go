// Resumable single-epoch execution: the Stepper replays one epoch one
// retired guest instruction at a time, pausing between instructions with
// the machine in a fully inspectable state. It is runEpoch unrolled into
// an iterator — same injectors, same scheduler decisions, same cycle
// accounting — so a fully stepped epoch lands on exactly the state and
// cost runEpoch computes. The debug session (internal/debug) is built on
// it: every stop point a debugger can reach is "boundary checkpoint +
// k Stepper.Step calls", which is what makes positions comparable across
// replay strategies.

package replay

import (
	"fmt"

	"doubleplay/internal/dplog"
	"doubleplay/internal/epoch"
	"doubleplay/internal/sched"
	"doubleplay/internal/vm"
)

// StepEvent describes one retired guest instruction.
type StepEvent struct {
	Tid int
	// PC is the program counter the instruction retired at; for an
	// asynchronous signal delivery, the pc it interrupted.
	PC int
	// Signal marks the event as a signal delivery rather than the
	// instruction at PC executing.
	Signal bool
	// Cost is the instruction's modelled cycle charge.
	Cost int64
}

// Stepper executes one epoch instruction by instruction. Scheduled
// (non-certified) epochs follow the recorded timeslice schedule exactly
// as sched.Uni.runFollow does; certified epochs free-run round-robin
// under the recorded sync-order gate exactly as the certified replay
// path does. The epoch's end-state verification (remaining injections,
// end hash, certificate checks) runs inside the Step call that retires
// the final instruction, so a Stepper that reports Done has proved the
// epoch reproduced the recording.
type Stepper struct {
	m       *vm.Machine
	ep      *dplog.EpochLog
	costs   *vm.CostModel
	inj     *epoch.InjectOS
	sigs    *epoch.InjectSignals
	gate    *epoch.Gate // non-nil iff the epoch is certified
	quantum int64

	// follow-mode cursor: position in ep.Schedule and retirements within
	// the current slice.
	si        int
	sliceDone uint64

	// free-mode cursor: round-robin position, current thread (-1 between
	// slices), and retirements within the current slice.
	cursor       int
	curTid       int
	sliceRetired int64

	steps  uint64
	cycles int64
	done   bool
	err    error
}

// NewStepper prepares m — which must hold ep's start state — for stepped
// execution of ep. It wires the epoch's syscall and signal injectors
// (and, for certified epochs, the sync-order gate) into the machine,
// replacing whatever a previous epoch's Stepper installed. quantum is
// the recording's scheduling quantum (zero = default), used only by the
// certified free-run path. An epoch that is already complete (empty
// schedule, all targets met at entry) is verified immediately; the error
// is that verification's outcome.
func NewStepper(m *vm.Machine, ep *dplog.EpochLog, quantum int64, costs *vm.CostModel) (*Stepper, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	s := &Stepper{m: m, ep: ep, costs: costs, quantum: quantum, curTid: -1}
	s.inj = epoch.NewInjectOS(ep.Syscalls)
	m.OS = s.inj
	s.sigs = epoch.NewInjectSignals(ep.Signals)
	m.Hooks.PendingSignal = s.sigs.Pending
	m.Hooks.MayAcquire = nil
	m.Hooks.OnSync = nil
	if ep.Certified {
		s.gate = epoch.NewGate(ep.SyncOrder)
		m.Hooks.MayAcquire = s.gate.MayAcquire
		m.Hooks.OnSync = s.gate.OnSync
		if s.quantum <= 0 {
			s.quantum = sched.DefaultQuantum
		}
		// The epoch may hold no work at all; detect it the way runFree
		// would, before the first Step call.
		if met, err := s.targetsMet(); err != nil {
			return nil, s.fail(err)
		} else if met {
			if err := s.finish(); err != nil {
				return nil, err
			}
		}
	} else if len(ep.Schedule) == 0 {
		if err := s.finish(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Done reports whether the epoch has fully (and verifiably) replayed.
func (s *Stepper) Done() bool { return s.done }

// Err returns the sticky failure, if any.
func (s *Stepper) Err() error { return s.err }

// Steps returns the number of instructions retired so far. Signal
// deliveries count: they retire, exactly as in the recorded schedule.
func (s *Stepper) Steps() uint64 { return s.steps }

// Epoch returns the epoch log being stepped.
func (s *Stepper) Epoch() *dplog.EpochLog { return s.ep }

// Cycles returns the epoch cost consumed so far, on the same scale as
// runEpoch's return: scheduler cycles plus the per-injection and (for
// certified epochs) per-gate-op surcharges. When Done, this equals what
// runEpoch would have returned for the whole epoch.
func (s *Stepper) Cycles() int64 {
	c := s.cycles + int64(s.inj.Injected)*s.costs.InjectSysEvent
	if s.gate != nil {
		c += int64(s.gate.Used()) * s.costs.EnforceSyncEvent
	}
	return c
}

// NextTid reports which thread the scheduler will run next, when known.
func (s *Stepper) NextTid() (int, bool) {
	if s.done || s.err != nil {
		return 0, false
	}
	if s.gate == nil {
		if s.si >= len(s.ep.Schedule) {
			return 0, false
		}
		return s.ep.Schedule[s.si].Tid, true
	}
	if s.curTid >= 0 {
		t := s.m.Threads[s.curTid]
		if s.sliceRetired < s.quantum && t.Status.Live() && !t.Status.Blocked() && s.belowTarget(t) {
			return s.curTid, true
		}
	}
	// Peek the round-robin pick without consuming the cursor.
	threads := s.m.Threads
	n := len(threads)
	for k := 0; k < n; k++ {
		t := threads[(s.cursor+k)%n]
		if t.Status == vm.Runnable && s.belowTarget(t) {
			return t.ID, true
		}
	}
	return 0, false
}

// Step retires exactly one guest instruction and returns what retired.
// Calling Step on a Done or failed Stepper returns an error.
func (s *Stepper) Step() (StepEvent, error) {
	if s.err != nil {
		return StepEvent{}, s.err
	}
	if s.done {
		return StepEvent{}, fmt.Errorf("replay: epoch %d already complete", s.ep.Index)
	}
	if s.gate != nil {
		return s.stepFree()
	}
	return s.stepFollow()
}

// fail records a sticky error, wrapped the way runEpoch or
// runCertifiedEpoch would report it.
func (s *Stepper) fail(err error) error {
	if s.gate != nil {
		s.err = fmt.Errorf("%w: epoch %d: %v", ErrCertViolated, s.ep.Index, err)
	} else {
		s.err = fmt.Errorf("replay: epoch %d: %w", s.ep.Index, err)
	}
	return s.err
}

// stepFollow advances replay mode by one retirement, mirroring
// sched.Uni.runFollow: within a slice the named thread must retire; a
// completed slice charges the context switch; exhausting the schedule
// triggers end-of-epoch verification.
func (s *Stepper) stepFollow() (StepEvent, error) {
	sl := s.ep.Schedule[s.si]
	if sl.Tid < 0 || sl.Tid >= len(s.m.Threads) {
		return StepEvent{}, s.fail(fmt.Errorf("%w: slice %d names unknown thread %d", sched.ErrDiverged, s.si, sl.Tid))
	}
	t := s.m.Threads[sl.Tid]
	for {
		if !t.Status.Live() {
			return StepEvent{}, s.fail(fmt.Errorf("%w: slice %d: thread %d dead after %d/%d",
				sched.ErrDiverged, s.si, sl.Tid, s.sliceDone, sl.N))
		}
		if t.Status.Blocked() {
			return StepEvent{}, s.fail(fmt.Errorf("%w: slice %d: thread %d blocked (%s) after %d/%d",
				sched.ErrDiverged, s.si, sl.Tid, t.Status, s.sliceDone, sl.N))
		}
		before := t.Retired
		sig0 := t.SigRetired
		pc0 := t.PC
		s.m.Now = s.cycles
		res := s.m.Step(t)
		if s.m.Diverged != "" {
			return StepEvent{}, s.fail(fmt.Errorf("%w: %s", sched.ErrDiverged, s.m.Diverged))
		}
		if !res.Retired {
			continue // re-attempt resolved by barrier/lock side effects
		}
		s.cycles += res.Cost
		s.sliceDone += t.Retired - before
		s.steps++
		ev := StepEvent{Tid: t.ID, PC: pc0, Signal: t.SigRetired != sig0, Cost: res.Cost}
		if s.sliceDone >= sl.N {
			if s.sliceDone != sl.N {
				return ev, s.fail(fmt.Errorf("%w: slice %d: thread %d retired %d, slice says %d",
					sched.ErrDiverged, s.si, sl.Tid, s.sliceDone, sl.N))
			}
			s.si++
			s.sliceDone = 0
			s.cycles += s.m.Cost.TimesliceSwitch
			if s.si == len(s.ep.Schedule) {
				if err := s.finish(); err != nil {
					return ev, err
				}
			}
		}
		return ev, nil
	}
}

// stepFree advances a certified epoch by one retirement, mirroring
// sched.Uni.runFree/runSlice: round-robin slices bounded by the quantum,
// with the context switch charged when a slice starts.
func (s *Stepper) stepFree() (StepEvent, error) {
	for {
		if s.curTid < 0 {
			t := s.pickNext()
			if t == nil {
				// Injected syscalls never block, so there is no blocked-sys
				// state to poll out of: a stuck free run diverged.
				return StepEvent{}, s.fail(fmt.Errorf("%w: no runnable thread before targets met\n%s",
					sched.ErrDiverged, s.m.DescribeState()))
			}
			s.curTid = t.ID
			s.sliceRetired = 0
			s.cycles += s.m.Cost.TimesliceSwitch
		}
		t := s.m.Threads[s.curTid]
		if s.sliceRetired >= s.quantum || !t.Status.Live() || t.Status.Blocked() ||
			!s.belowTarget(t) {
			if err := s.endSlice(); err != nil {
				return StepEvent{}, err
			}
			if s.done {
				return StepEvent{}, fmt.Errorf("replay: epoch %d already complete", s.ep.Index)
			}
			continue
		}
		sig0 := t.SigRetired
		pc0 := t.PC
		s.m.Now = s.cycles
		res := s.m.Step(t)
		if s.m.Diverged != "" {
			return StepEvent{}, s.fail(fmt.Errorf("%w: %s", sched.ErrDiverged, s.m.Diverged))
		}
		if !res.Retired {
			// A failed attempt (lock contention, gate hold) ends the slice,
			// exactly as runSlice breaks out.
			if err := s.endSlice(); err != nil {
				return StepEvent{}, err
			}
			continue
		}
		s.cycles += res.Cost
		s.sliceRetired++
		s.steps++
		ev := StepEvent{Tid: t.ID, PC: pc0, Signal: t.SigRetired != sig0, Cost: res.Cost}
		// If that retirement completed the epoch, verify now so Done flips
		// inside this call — the caller must not need a failing extra Step
		// to learn the epoch ended.
		if !s.belowTarget(t) {
			if met, err := s.targetsMet(); err != nil {
				return ev, s.fail(err)
			} else if met {
				if err := s.finish(); err != nil {
					return ev, err
				}
			}
		}
		return ev, nil
	}
}

// endSlice closes the current free-run slice and, when all targets are
// met, completes the epoch.
func (s *Stepper) endSlice() error {
	s.curTid = -1
	met, err := s.targetsMet()
	if err != nil {
		return s.fail(err)
	}
	if met && !s.done {
		return s.finish()
	}
	return nil
}

// belowTarget mirrors sched.Uni.belowTarget over the epoch's targets.
func (s *Stepper) belowTarget(t *vm.Thread) bool {
	if !t.Status.Live() {
		return false
	}
	if t.ID >= len(s.ep.Targets) {
		return false
	}
	return t.Retired < s.ep.Targets[t.ID]
}

// targetsMet mirrors sched.Uni.targetsMet over the epoch's targets.
func (s *Stepper) targetsMet() (bool, error) {
	for _, t := range s.m.Threads {
		if t.ID >= len(s.ep.Targets) {
			return false, fmt.Errorf("%w: thread %d not present in recording", sched.ErrDiverged, t.ID)
		}
		want := s.ep.Targets[t.ID]
		switch {
		case t.Retired == want:
		case t.Retired < want:
			if !t.Status.Live() {
				return false, fmt.Errorf("%w: thread %d died at %d retired, target %d",
					sched.ErrDiverged, t.ID, t.Retired, want)
			}
			return false, nil
		default:
			return false, fmt.Errorf("%w: thread %d overshot target %d (retired %d)",
				sched.ErrDiverged, t.ID, want, t.Retired)
		}
	}
	return true, nil
}

// pickNext mirrors sched.Uni.pickNext: round-robin scan for a runnable
// thread below target, advancing the cursor past the pick.
func (s *Stepper) pickNext() *vm.Thread {
	threads := s.m.Threads
	n := len(threads)
	for k := 0; k < n; k++ {
		t := threads[(s.cursor+k)%n]
		if t.Status == vm.Runnable && s.belowTarget(t) {
			s.cursor = (s.cursor + k + 1) % n
			return t
		}
	}
	return nil
}

// finish runs runEpoch's end-of-epoch cross-checks (plus the certified
// path's gate checks) and detaches the gate hooks, leaving the machine
// ready for the next epoch's Stepper.
func (s *Stepper) finish() error {
	if s.gate == nil {
		// Follow mode reaches finish only after the schedule is consumed;
		// the recorded targets must be met exactly.
		met, err := s.targetsMet()
		if err != nil {
			return s.fail(err)
		}
		if !met {
			return s.fail(sched.ErrLogExhausted)
		}
	} else {
		if r := s.gate.Remaining(); r != 0 {
			return s.fail(fmt.Errorf("%d recorded sync ops never performed", r))
		}
		if gateErr := s.gate.Err(); gateErr != "" {
			return s.fail(fmt.Errorf("%s", gateErr))
		}
		s.m.Hooks.MayAcquire = nil
		s.m.Hooks.OnSync = nil
	}
	if r := s.inj.Remaining(); r != 0 {
		return s.fail(fmt.Errorf("%d recorded syscalls never issued", r))
	}
	if r := s.sigs.Remaining(); r != 0 {
		return s.fail(fmt.Errorf("%d recorded signals never delivered", r))
	}
	if h := s.m.StateHash(); h != s.ep.EndHash {
		return s.fail(fmt.Errorf("end state hash %016x != recorded %016x", h, s.ep.EndHash))
	}
	s.done = true
	return nil
}
