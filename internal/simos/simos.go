// Package simos is the simulated operating system beneath the guest: a
// virtual filesystem, a virtual network with scripted clients, a clock, a
// PRNG, and a heap allocator, all exposed through the VM's syscall
// interface.
//
// Two properties matter for DoublePlay. First, every syscall result is a
// value plus a set of guest-memory writes, so the recorder can log it and
// the replayer can inject it without the OS present. Second, the entire
// mutable world is snapshotable (Clone), which is how the simulator models
// the paper's input-buffering and deferred output commit: on forward
// recovery the world rolls back with the checkpoint, and externally visible
// output is an append-only hash that commits per epoch.
package simos

import (
	"fmt"

	"doubleplay/internal/vm"
)

// Word aliases the guest word type.
type Word = vm.Word

// Syscall numbers.
const (
	SysPrint    Word = 1  // (addr, n) -> n; hashes n words into the output commit
	SysAlloc    Word = 2  // (nwords) -> addr; bump allocation
	SysTime     Word = 3  // () -> current simulated cycle
	SysRand     Word = 4  // () -> pseudorandom non-negative word
	SysOpen     Word = 5  // (nameAddr, nameLen) -> fd, or -1
	SysRead     Word = 6  // (fd, bufAddr, n) -> words read (0 at EOF)
	SysWrite    Word = 7  // (fd, bufAddr, n) -> n; hashes into the output commit
	SysClose    Word = 8  // (fd) -> 0
	SysFileSize Word = 9  // (fd) -> size in words
	SysListen   Word = 10 // () -> listener fd
	SysAccept   Word = 11 // (lfd) -> conn fd; blocks until a client arrives; -1 when script exhausted
	SysRecv     Word = 12 // (cfd, bufAddr, max) -> words received; blocks; 0 at connection EOF
	SysSend     Word = 13 // (cfd, addr, n) -> n; hashes into the output commit
	SysFetch    Word = 14 // (off, n, bufAddr) -> words fetched from the remote source after latency
	SysFetchLen Word = 15 // () -> remote source length in words
	SysYield    Word = 16 // () -> 0; scheduling hint, no effect on state
)

// File is an immutable virtual file. Contents never change after setup, so
// world snapshots share them.
type File struct {
	Name string
	Data []Word
}

// Request is one scripted client request on a connection: Data becomes
// available to SysRecv at cycle AvailAt.
type Request struct {
	AvailAt int64
	Data    []Word
}

// ConnScript is an immutable scripted inbound connection.
type ConnScript struct {
	ArriveAt int64
	Requests []Request
}

// connState is the mutable per-connection cursor.
type connState struct {
	script  *ConnScript
	reqIdx  int
	readPos int
	open    bool
}

func (c *connState) clone() *connState {
	d := *c
	return &d
}

// fdState is one open file descriptor.
type fdState struct {
	file *File
	pos  int
	open bool
}

// World is the complete simulated environment. Immutable parts (file
// contents, connection scripts, the fetch source) are shared across clones;
// mutable parts are deep-copied, so Clone is cheap and epoch rollback is
// exact.
type World struct {
	// Immutable after setup.
	files     map[string]*File
	scripts   []*ConnScript
	fetchSrc  []Word
	fetchLat  int64
	sigScript map[int][]SignalSpec

	// Mutable execution state.
	fds          []fdState
	conns        []*connState
	accepted     int // number of scripts already accepted
	brk          Word
	rng          uint64
	outHash      uint64
	outWords     int64
	pendingFetch map[int]int64 // tid -> cycle at which its fetch completes
	sigCursor    map[int]int   // tid -> next undelivered signal
}

// SignalSpec schedules one asynchronous signal: Sig becomes deliverable to
// its thread once simulated time reaches At.
type SignalSpec struct {
	At  int64
	Sig Word
}

// HeapBase is where SysAlloc allocations start; workloads place static data
// well below it.
const HeapBase Word = 1 << 30

// NewWorld returns an empty world with the given PRNG seed.
func NewWorld(seed int64) *World {
	return &World{
		files:        make(map[string]*File),
		sigScript:    make(map[int][]SignalSpec),
		brk:          HeapBase,
		rng:          uint64(seed)*2862933555777941757 + 3037000493,
		pendingFetch: make(map[int]int64),
		sigCursor:    make(map[int]int),
	}
}

// AddSignal schedules sig for delivery to thread tid once time reaches at.
// Signals for the same thread must be added in ascending time order.
func (w *World) AddSignal(at int64, tid int, sig Word) {
	w.sigScript[tid] = append(w.sigScript[tid], SignalSpec{At: at, Sig: sig})
}

// NextSignal pops the next deliverable signal for tid at time now, if any.
// The cursor is mutable world state, so epoch rollback re-delivers exactly
// the signals the adopted execution had not yet consumed.
func (w *World) NextSignal(tid int, now int64) (Word, bool) {
	q := w.sigScript[tid]
	c := w.sigCursor[tid]
	if c < len(q) && q[c].At <= now {
		w.sigCursor[tid] = c + 1
		return q[c].Sig, true
	}
	return 0, false
}

// SignalCount reports the total scripted signals.
func (w *World) SignalCount() int {
	n := 0
	for _, q := range w.sigScript {
		n += len(q)
	}
	return n
}

// AddFile registers an immutable file.
func (w *World) AddFile(name string, data []Word) {
	w.files[name] = &File{Name: name, Data: data}
}

// FileNames returns the registered file names in insertion-independent
// sorted-free form; intended for tests. (Callers needing order should track
// names themselves.)
func (w *World) FileCount() int { return len(w.files) }

// AddConn schedules an inbound connection for the listener.
func (w *World) AddConn(arriveAt int64, reqs []Request) {
	w.scripts = append(w.scripts, &ConnScript{ArriveAt: arriveAt, Requests: reqs})
}

// SetFetchSource installs the remote resource SysFetch serves, with a fixed
// per-request latency in cycles.
func (w *World) SetFetchSource(data []Word, latency int64) {
	w.fetchSrc = data
	w.fetchLat = latency
}

// Clone deep-copies the mutable state, sharing immutable blobs.
func (w *World) Clone() *World {
	c := &World{
		files:     w.files,
		scripts:   w.scripts,
		fetchSrc:  w.fetchSrc,
		fetchLat:  w.fetchLat,
		sigScript: w.sigScript,

		fds:          append([]fdState(nil), w.fds...),
		conns:        make([]*connState, len(w.conns)),
		accepted:     w.accepted,
		brk:          w.brk,
		rng:          w.rng,
		outHash:      w.outHash,
		outWords:     w.outWords,
		pendingFetch: make(map[int]int64, len(w.pendingFetch)),
		sigCursor:    make(map[int]int, len(w.sigCursor)),
	}
	for i, cs := range w.conns {
		c.conns[i] = cs.clone()
	}
	for k, v := range w.pendingFetch {
		c.pendingFetch[k] = v
	}
	for k, v := range w.sigCursor {
		c.sigCursor[k] = v
	}
	return c
}

// OutputHash returns the running hash of all externally committed output
// (prints, file writes, sends) — the replay fidelity check for output.
func (w *World) OutputHash() uint64 { return w.outHash }

// OutputWords returns the number of words committed externally.
func (w *World) OutputWords() int64 { return w.outWords }

func (w *World) commit(words []Word) {
	for _, v := range words {
		w.outHash ^= (w.outHash << 7) ^ (w.outHash >> 9) ^ (uint64(v) * 0x9e3779b97f4a7c15)
		w.outHash *= 0x2545f4914f6cdd1d
		w.outWords++
	}
}

func (w *World) nextRand() Word {
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	return Word(w.rng >> 1)
}

// OS adapts a World to the VM's syscall interface.
type OS struct {
	W *World
}

// NewOS wraps a world.
func NewOS(w *World) *OS { return &OS{W: w} }

// Syscall implements vm.SyscallHandler.
func (o *OS) Syscall(m *vm.Machine, t *vm.Thread, num Word, args [6]Word) vm.SysResult {
	w := o.W
	switch num {
	case SysPrint, SysWrite, SysSend:
		// All three are output commits; SysWrite/SysSend take (sink, addr, n)
		// and SysPrint takes (addr, n).
		var addr, n Word
		if num == SysPrint {
			addr, n = args[0], args[1]
		} else {
			addr, n = args[1], args[2]
		}
		if n < 0 || n > 1<<24 {
			return vm.SysResult{Fault: fmt.Sprintf("output syscall with bad length %d", n)}
		}
		words := make([]Word, n)
		for i := range words {
			words[i] = m.Mem.Load(addr + Word(i))
		}
		w.commit(words)
		return vm.SysResult{Ret: n, Cost: n} // cost: copying n words out

	case SysAlloc:
		n := args[0]
		if n < 0 || n > 1<<26 {
			return vm.SysResult{Fault: fmt.Sprintf("alloc of %d words", n)}
		}
		addr := w.brk
		w.brk += n
		return vm.SysResult{Ret: addr}

	case SysTime:
		return vm.SysResult{Ret: m.Now}

	case SysRand:
		return vm.SysResult{Ret: w.nextRand()}

	case SysYield:
		return vm.SysResult{Ret: 0}

	case SysOpen:
		nameAddr, nameLen := args[0], args[1]
		if nameLen < 0 || nameLen > 4096 {
			return vm.SysResult{Fault: fmt.Sprintf("open with name length %d", nameLen)}
		}
		name := decodeString(m, nameAddr, nameLen)
		f, ok := w.files[name]
		if !ok {
			return vm.SysResult{Ret: -1}
		}
		w.fds = append(w.fds, fdState{file: f, open: true})
		return vm.SysResult{Ret: Word(len(w.fds) - 1)}

	case SysRead:
		fd, bufAddr, n := args[0], args[1], args[2]
		s, err := w.fd(fd)
		if err != "" {
			return vm.SysResult{Fault: err}
		}
		if n < 0 {
			return vm.SysResult{Fault: "read with negative length"}
		}
		avail := len(s.file.Data) - s.pos
		if avail <= 0 {
			return vm.SysResult{Ret: 0}
		}
		if int(n) < avail {
			avail = int(n)
		}
		data := append([]Word(nil), s.file.Data[s.pos:s.pos+avail]...)
		s.pos += avail
		return vm.SysResult{
			Ret:    Word(avail),
			Writes: []vm.MemWrite{{Addr: bufAddr, Data: data}},
		}

	case SysClose:
		s, err := w.fd(args[0])
		if err != "" {
			return vm.SysResult{Fault: err}
		}
		s.open = false
		return vm.SysResult{Ret: 0}

	case SysFileSize:
		s, err := w.fd(args[0])
		if err != "" {
			return vm.SysResult{Fault: err}
		}
		return vm.SysResult{Ret: Word(len(s.file.Data))}

	case SysListen:
		return vm.SysResult{Ret: 0}

	case SysAccept:
		if w.accepted >= len(w.scripts) {
			return vm.SysResult{Ret: -1} // script exhausted: no more clients ever
		}
		next := w.scripts[w.accepted]
		if next.ArriveAt > m.Now {
			return vm.SysResult{Block: true}
		}
		w.conns = append(w.conns, &connState{script: next, open: true})
		w.accepted++
		return vm.SysResult{Ret: Word(len(w.conns) - 1)}

	case SysRecv:
		cfd, bufAddr, max := args[0], args[1], args[2]
		c, err := w.conn(cfd)
		if err != "" {
			return vm.SysResult{Fault: err}
		}
		if max <= 0 {
			return vm.SysResult{Fault: "recv with non-positive max"}
		}
		if c.reqIdx >= len(c.script.Requests) {
			return vm.SysResult{Ret: 0} // connection EOF
		}
		req := &c.script.Requests[c.reqIdx]
		if req.AvailAt > m.Now {
			return vm.SysResult{Block: true}
		}
		remain := len(req.Data) - c.readPos
		n := int(max)
		if remain < n {
			n = remain
		}
		data := append([]Word(nil), req.Data[c.readPos:c.readPos+n]...)
		c.readPos += n
		if c.readPos == len(req.Data) {
			c.reqIdx++
			c.readPos = 0
		}
		return vm.SysResult{
			Ret:    Word(n),
			Writes: []vm.MemWrite{{Addr: bufAddr, Data: data}},
		}

	case SysFetch:
		off, n, bufAddr := args[0], args[1], args[2]
		if off < 0 || n < 0 || off > Word(len(w.fetchSrc)) {
			return vm.SysResult{Fault: fmt.Sprintf("fetch out of range: off=%d n=%d", off, n)}
		}
		ready, pending := w.pendingFetch[t.ID]
		if !pending {
			w.pendingFetch[t.ID] = m.Now + w.fetchLat
			return vm.SysResult{Block: true}
		}
		if m.Now < ready {
			return vm.SysResult{Block: true}
		}
		delete(w.pendingFetch, t.ID)
		end := off + n
		if end > Word(len(w.fetchSrc)) {
			end = Word(len(w.fetchSrc))
		}
		data := append([]Word(nil), w.fetchSrc[off:end]...)
		return vm.SysResult{
			Ret:    Word(len(data)),
			Writes: []vm.MemWrite{{Addr: bufAddr, Data: data}},
		}

	case SysFetchLen:
		return vm.SysResult{Ret: Word(len(w.fetchSrc))}

	default:
		return vm.SysResult{Fault: fmt.Sprintf("unknown syscall %d", num)}
	}
}

func (w *World) fd(fd Word) (*fdState, string) {
	if fd < 0 || fd >= Word(len(w.fds)) {
		return nil, fmt.Sprintf("bad fd %d", fd)
	}
	s := &w.fds[fd]
	if !s.open {
		return nil, fmt.Sprintf("fd %d is closed", fd)
	}
	return s, ""
}

func (w *World) conn(cfd Word) (*connState, string) {
	if cfd < 0 || cfd >= Word(len(w.conns)) {
		return nil, fmt.Sprintf("bad connection fd %d", cfd)
	}
	c := w.conns[cfd]
	if !c.open {
		return nil, fmt.Sprintf("connection %d is closed", cfd)
	}
	return c, ""
}

// decodeString reads a guest string stored one character per word.
func decodeString(m *vm.Machine, addr, n Word) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(m.Mem.Load(addr + Word(i)))
	}
	return string(b)
}

// EncodeString converts a host string to guest words (one char per word),
// for building data segments and requests.
func EncodeString(s string) []Word {
	out := make([]Word, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = Word(s[i])
	}
	return out
}
