package simos_test

import (
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/sched"
	"doubleplay/internal/simos"
	"doubleplay/internal/vm"
)

// runWith executes a single-threaded program against a world and returns
// the machine.
func runWith(t *testing.T, w *simos.World, build func(f *asm.Func, b *asm.Builder)) *vm.Machine {
	t.Helper()
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	build(f, b)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(prog, simos.NewOS(w), nil)
	u := sched.NewUni(m)
	if err := u.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFileOpenReadCloseEOF(t *testing.T) {
	w := simos.NewWorld(1)
	w.AddFile("data", []vm.Word{10, 20, 30, 40, 50})
	m := runWith(t, w, func(f *asm.Func, b *asm.Builder) {
		nameAddr, nameLen := b.Str("data")
		na, nl := f.Const(nameAddr), f.Const(nameLen)
		fd, buf, n, sum, i, v, c := f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()
		two := f.Const(2)
		f.Sys(simos.SysOpen, na, nl)
		f.Mov(fd, asm.RetReg)
		f.Sys(simos.SysFileSize, fd)
		f.Mov(sum, asm.RetReg) // 5
		f.Sys(simos.SysAlloc, two)
		f.Mov(buf, asm.RetReg)
		// Read in chunks of 2 until EOF, summing contents.
		f.While(func() asm.Reg {
			f.Sys(simos.SysRead, fd, buf, two)
			f.Mov(n, asm.RetReg)
			f.Snei(c, n, 0)
			return c
		}, func() {
			f.Movi(i, 0)
			f.ForLt(i, n, func() {
				f.Ldx(v, buf, i)
				f.Add(sum, sum, v)
			})
		})
		f.Sys(simos.SysClose, fd)
		f.Halt(sum) // 5 + 150
	})
	if got := m.Threads[0].ExitVal; got != 155 {
		t.Fatalf("got %d, want 155", got)
	}
}

func TestOpenMissingFileReturnsMinusOne(t *testing.T) {
	w := simos.NewWorld(1)
	m := runWith(t, w, func(f *asm.Func, b *asm.Builder) {
		nameAddr, nameLen := b.Str("ghost")
		na, nl := f.Const(nameAddr), f.Const(nameLen)
		f.Sys(simos.SysOpen, na, nl)
		f.Halt(asm.RetReg)
	})
	if got := m.Threads[0].ExitVal; got != -1 {
		t.Fatalf("got %d, want -1", got)
	}
}

func TestUseClosedFdFaults(t *testing.T) {
	w := simos.NewWorld(1)
	w.AddFile("f", []vm.Word{1})
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	nameAddr, nameLen := b.Str("f")
	na, nl := f.Const(nameAddr), f.Const(nameLen)
	fd := f.Reg()
	f.Sys(simos.SysOpen, na, nl)
	f.Mov(fd, asm.RetReg)
	f.Sys(simos.SysClose, fd)
	f.Sys(simos.SysFileSize, fd)
	f.HaltImm(0)
	m := vm.NewMachine(b.MustBuild(), simos.NewOS(w), nil)
	u := sched.NewUni(m)
	if err := u.Run(); err != nil {
		t.Fatal(err)
	}
	if m.FaultCount() != 1 {
		t.Fatal("use of closed fd did not fault")
	}
}

func TestAllocBumpsAndIsDisjoint(t *testing.T) {
	w := simos.NewWorld(1)
	m := runWith(t, w, func(f *asm.Func, b *asm.Builder) {
		n := f.Const(10)
		a1, a2, d := f.Reg(), f.Reg(), f.Reg()
		f.Sys(simos.SysAlloc, n)
		f.Mov(a1, asm.RetReg)
		f.Sys(simos.SysAlloc, n)
		f.Mov(a2, asm.RetReg)
		f.Sub(d, a2, a1)
		f.Halt(d)
	})
	if got := m.Threads[0].ExitVal; got != 10 {
		t.Fatalf("alloc gap = %d, want 10", got)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	get := func(seed int64) vm.Word {
		m := runWith(t, simos.NewWorld(seed), func(f *asm.Func, b *asm.Builder) {
			f.Sys(simos.SysRand)
			f.Halt(asm.RetReg)
		})
		return m.Threads[0].ExitVal
	}
	if get(5) != get(5) {
		t.Fatal("same seed, different rand")
	}
	if get(5) == get(6) {
		t.Fatal("different seeds agree (suspicious)")
	}
}

func TestAcceptRecvScriptedClients(t *testing.T) {
	w := simos.NewWorld(1)
	w.AddConn(100, []simos.Request{
		{AvailAt: 100, Data: []vm.Word{7, 8}},
		{AvailAt: 300, Data: []vm.Word{9}},
	})
	m := runWith(t, w, func(f *asm.Func, b *asm.Builder) {
		lfd := f.Const(0)
		buf := f.Reg()
		four := f.Const(4)
		cfd, n, sum, i, v, c := f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()
		f.Sys(simos.SysAlloc, four)
		f.Mov(buf, asm.RetReg)
		f.Sys(simos.SysListen)
		f.Sys(simos.SysAccept, lfd)
		f.Mov(cfd, asm.RetReg)
		f.Movi(sum, 0)
		f.While(func() asm.Reg {
			f.Sys(simos.SysRecv, cfd, buf, four)
			f.Mov(n, asm.RetReg)
			f.Snei(c, n, 0)
			return c
		}, func() {
			f.Movi(i, 0)
			f.ForLt(i, n, func() {
				f.Ldx(v, buf, i)
				f.Add(sum, sum, v)
			})
		})
		// Accept again: script exhausted -> -1.
		f.Sys(simos.SysAccept, lfd)
		f.Add(sum, sum, asm.RetReg)
		f.Halt(sum) // 7+8+9-1 = 23
	})
	if got := m.Threads[0].ExitVal; got != 23 {
		t.Fatalf("got %d, want 23", got)
	}
}

func TestFetchRespectsLatencyAndBounds(t *testing.T) {
	w := simos.NewWorld(1)
	w.SetFetchSource([]vm.Word{1, 2, 3, 4, 5, 6}, 500)
	m := runWith(t, w, func(f *asm.Func, b *asm.Builder) {
		buf := f.Reg()
		ten := f.Const(10)
		off, n, got := f.Reg(), f.Reg(), f.Reg()
		f.Sys(simos.SysAlloc, ten)
		f.Mov(buf, asm.RetReg)
		f.Sys(simos.SysFetchLen)
		f.Mov(got, asm.RetReg) // 6
		f.Movi(off, 4)
		f.Movi(n, 10) // over-long request is truncated
		f.Sys(simos.SysFetch, off, n, buf)
		f.Add(got, got, asm.RetReg) // +2
		v := f.Reg()
		f.Ld(v, buf, 0)
		f.Add(got, got, v) // +5
		f.Ld(v, buf, 1)
		f.Add(got, got, v) // +6
		f.Halt(got)        // 19
	})
	if got := m.Threads[0].ExitVal; got != 19 {
		t.Fatalf("got %d, want 19", got)
	}
}

func TestOutputHashTracksCommits(t *testing.T) {
	w := simos.NewWorld(1)
	if w.OutputHash() != 0 || w.OutputWords() != 0 {
		t.Fatal("fresh world has output")
	}
	runWith(t, w, func(f *asm.Func, b *asm.Builder) {
		addr := b.Words(11, 22, 33)
		a := f.Const(addr)
		n := f.Const(3)
		f.Sys(simos.SysPrint, a, n)
		f.HaltImm(0)
	})
	if w.OutputWords() != 3 || w.OutputHash() == 0 {
		t.Fatalf("output: %d words, hash %x", w.OutputWords(), w.OutputHash())
	}

	// Same output -> same hash; different output -> different hash.
	w2 := simos.NewWorld(1)
	runWith(t, w2, func(f *asm.Func, b *asm.Builder) {
		addr := b.Words(11, 22, 33)
		a := f.Const(addr)
		n := f.Const(3)
		f.Sys(simos.SysPrint, a, n)
		f.HaltImm(0)
	})
	if w2.OutputHash() != w.OutputHash() {
		t.Fatal("identical output hashed differently")
	}
	w3 := simos.NewWorld(1)
	runWith(t, w3, func(f *asm.Func, b *asm.Builder) {
		addr := b.Words(11, 22, 34)
		a := f.Const(addr)
		n := f.Const(3)
		f.Sys(simos.SysPrint, a, n)
		f.HaltImm(0)
	})
	if w3.OutputHash() == w.OutputHash() {
		t.Fatal("different output hashed equal")
	}
}

func TestCloneIsolatesMutableState(t *testing.T) {
	w := simos.NewWorld(1)
	w.AddFile("f", []vm.Word{1, 2, 3})
	w.AddConn(0, []simos.Request{{AvailAt: 0, Data: []vm.Word{5}}})

	clone := w.Clone()

	// Drive the original: open the file, read a word, accept the client.
	runWith(t, w, func(f *asm.Func, b *asm.Builder) {
		nameAddr, nameLen := b.Str("f")
		na, nl := f.Const(nameAddr), f.Const(nameLen)
		one := f.Const(1)
		lfd := f.Const(0)
		buf, fd := f.Reg(), f.Reg()
		f.Sys(simos.SysAlloc, one)
		f.Mov(buf, asm.RetReg)
		f.Sys(simos.SysOpen, na, nl)
		f.Mov(fd, asm.RetReg)
		f.Sys(simos.SysRead, fd, buf, one)
		f.Sys(simos.SysAccept, lfd)
		f.Sys(simos.SysPrint, buf, one)
		f.HaltImm(0)
	})
	if w.OutputWords() == 0 {
		t.Fatal("original world unchanged")
	}

	// The clone still sees a fresh world: accept works, no output.
	if clone.OutputWords() != 0 {
		t.Fatal("clone observed the original's output")
	}
	m := runWith(t, clone, func(f *asm.Func, b *asm.Builder) {
		lfd := f.Const(0)
		f.Sys(simos.SysAccept, lfd)
		f.Halt(asm.RetReg)
	})
	if got := m.Threads[0].ExitVal; got != 0 {
		t.Fatalf("clone accept = %d, want fresh fd 0", got)
	}
}

func TestEncodeString(t *testing.T) {
	ws := simos.EncodeString("ab")
	if len(ws) != 2 || ws[0] != 'a' || ws[1] != 'b' {
		t.Fatalf("EncodeString = %v", ws)
	}
}

func TestUnknownSyscallFaults(t *testing.T) {
	w := simos.NewWorld(1)
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	f.Sys(9999)
	f.HaltImm(0)
	m := vm.NewMachine(b.MustBuild(), simos.NewOS(w), nil)
	u := sched.NewUni(m)
	if err := u.Run(); err != nil {
		t.Fatal(err)
	}
	if m.FaultCount() != 1 {
		t.Fatal("unknown syscall did not fault")
	}
}
