package store

// Retention: a mark-and-sweep collector over recording references.
//
// Mark starts from jobs' recording.ref files. A pinned job is always
// live; unpinned jobs die by age (ref older than Policy.MaxAge) and by
// size budget (newest first until Policy.MaxBytes of logical recording
// bytes are retained). Live refs mark their manifest (or whole blob) and
// every chunk the manifest names.
//
// Sweep deletes in reference order — refs, then manifests, then chunks,
// then blobs — the mirror image of PutRecording's chunks-before-manifest
// ordering. A crash mid-GC can therefore strand an orphan (collected by
// the next cycle) but never leave a ref or manifest pointing at deleted
// data.

import (
	"fmt"
	"os"
	"sort"
	"time"
)

// Policy tunes a GC cycle. The zero value collects only unreferenced
// data (orphaned manifests, chunks, and blobs).
type Policy struct {
	// MaxAge expires unpinned recordings whose ref is older; zero keeps
	// every referenced recording regardless of age.
	MaxAge time.Duration
	// MaxBytes bounds the total logical bytes of retained unpinned
	// recordings, evicting oldest-first; zero means unbounded.
	MaxBytes int64
	// DryRun computes the full report without deleting anything.
	DryRun bool
}

// GCReport summarizes one collection cycle.
type GCReport struct {
	DryRun           bool  `json:"dry_run,omitempty"`
	Jobs             int   `json:"jobs"`
	Pinned           int   `json:"pinned"`
	LiveRecordings   int   `json:"live_recordings"`
	RefsRemoved      int   `json:"refs_removed"`
	ManifestsRemoved int   `json:"manifests_removed"`
	ChunksRemoved    int   `json:"chunks_removed"`
	BlobsRemoved     int   `json:"blobs_removed"`
	BytesReclaimed   int64 `json:"bytes_reclaimed"`
}

// refState is one job's retention input.
type refState struct {
	job     string
	digest  string
	pinned  bool
	modTime time.Time
	logical int64 // reassembled recording size
}

// GC runs one mark-and-sweep cycle under the store mutex, so no
// concurrent put or pin races the sweep.
func (s *Store) GC(pol Policy) (GCReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publishStats()
	rep := GCReport{DryRun: pol.DryRun}

	ids, err := s.jobIDs()
	if err != nil {
		return rep, err
	}
	var refs []refState
	for _, id := range ids {
		rep.Jobs++
		d := s.RecordingRef(id)
		if d == "" {
			continue
		}
		st := refState{job: id, digest: d, pinned: s.Pinned(id)}
		if st.pinned {
			rep.Pinned++
		}
		if info, err := os.Stat(s.JobArtifact(id, "recording.ref")); err == nil {
			st.modTime = info.ModTime()
		}
		if man, err := s.loadManifest(d); err == nil {
			st.logical = man.Total
		} else if info, err := os.Stat(s.BlobPath(d)); err == nil {
			st.logical = info.Size()
		}
		refs = append(refs, st)
	}

	// Retention decisions: pins always live, then age, then size budget
	// (newest unpinned recordings first).
	now := time.Now()
	live := make([]refState, 0, len(refs))
	var dead []refState
	var unpinned []refState
	for _, r := range refs {
		switch {
		case r.pinned:
			live = append(live, r)
		case pol.MaxAge > 0 && now.Sub(r.modTime) > pol.MaxAge:
			dead = append(dead, r)
		default:
			unpinned = append(unpinned, r)
		}
	}
	if pol.MaxBytes > 0 {
		sort.Slice(unpinned, func(i, j int) bool { return unpinned[i].modTime.After(unpinned[j].modTime) })
		var budget int64
		for _, r := range live {
			budget += r.logical
		}
		for _, r := range unpinned {
			if budget+r.logical > pol.MaxBytes {
				dead = append(dead, r)
				continue
			}
			budget += r.logical
			live = append(live, r)
		}
	} else {
		live = append(live, unpinned...)
	}

	// Mark live manifests, chunks, and blobs.
	liveManifests := map[string]bool{}
	liveChunks := map[string]bool{}
	liveBlobs := map[string]bool{}
	for _, r := range live {
		if man, err := s.loadManifest(r.digest); err == nil {
			liveManifests[r.digest] = true
			for _, c := range man.Chunks {
				liveChunks[c.Digest] = true
			}
		} else {
			liveBlobs[r.digest] = true
		}
	}
	rep.LiveRecordings = len(live)

	if s.sweepHook != nil {
		s.sweepHook()
	}

	// Sweep: refs first, then manifests, then chunks, then blobs.
	remove := func(path string, size int64, n *int) {
		if pol.DryRun {
			*n++
			rep.BytesReclaimed += size
			return
		}
		if err := os.Remove(path); err == nil {
			*n++
			rep.BytesReclaimed += size
		}
	}
	for _, r := range dead {
		path := s.JobArtifact(r.job, "recording.ref")
		if info, err := os.Stat(path); err == nil {
			remove(path, info.Size(), &rep.RefsRemoved)
		}
	}
	err = s.walkDigests("manifests", func(digest, path string, size int64) error {
		if !liveManifests[digest] {
			remove(path, size, &rep.ManifestsRemoved)
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("store: gc: %w", err)
	}
	err = s.walkDigests("chunks", func(digest, path string, size int64) error {
		if !liveChunks[digest] {
			remove(path, size, &rep.ChunksRemoved)
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("store: gc: %w", err)
	}
	err = s.walkDigests("blobs", func(digest, path string, size int64) error {
		if !liveBlobs[digest] {
			remove(path, size, &rep.BlobsRemoved)
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("store: gc: %w", err)
	}
	return rep, nil
}

// ---- fsck ----

// FsckReport is the integrity check's verdict. Errors are real damage
// (missing chunks, digest mismatches, undecodable manifests, dangling
// refs); orphans are unreferenced-but-intact files a GC cycle reclaims.
type FsckReport struct {
	Manifests       int      `json:"manifests"`
	Chunks          int      `json:"chunks"`
	Blobs           int      `json:"blobs"`
	Refs            int      `json:"refs"`
	OrphanManifests int      `json:"orphan_manifests"`
	OrphanChunks    int      `json:"orphan_chunks"`
	OrphanBlobs     int      `json:"orphan_blobs"`
	Errors          []string `json:"errors,omitempty"`
}

// OK reports whether the store is intact.
func (r *FsckReport) OK() bool { return len(r.Errors) == 0 }

const maxFsckErrors = 64

func (r *FsckReport) errorf(format string, args ...any) {
	if len(r.Errors) < maxFsckErrors {
		r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
	}
}

// Fsck verifies the store exhaustively: every manifest decodes, names
// only existing chunks whose content matches their digest, and
// reassembles to the recording digest it is stored under; every blob
// matches its digest; every job ref resolves. Damage is reported, never
// panicked on. Orphans are counted but are not errors.
func (s *Store) Fsck() (*FsckReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &FsckReport{}

	refdManifests := map[string]bool{}
	refdChunks := map[string]bool{}
	refdBlobs := map[string]bool{}
	ids, err := s.jobIDs()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		d := s.RecordingRef(id)
		if d == "" {
			continue
		}
		rep.Refs++
		if _, err := os.Stat(s.shardPath("manifests", d)); err == nil {
			refdManifests[d] = true
		} else if _, err := os.Stat(s.BlobPath(d)); err == nil {
			refdBlobs[d] = true
		} else {
			rep.errorf("job %s: ref %s resolves to no manifest or blob", id, d)
		}
	}

	err = s.walkDigests("manifests", func(digest, path string, size int64) error {
		rep.Manifests++
		if !refdManifests[digest] {
			rep.OrphanManifests++
		}
		data, err := os.ReadFile(path)
		if err != nil {
			rep.errorf("manifest %s: %v", digest, err)
			return nil
		}
		man, err := DecodeManifest(data)
		if err != nil {
			rep.errorf("manifest %s: %v", digest, err)
			return nil
		}
		sum := newDigester()
		for i, c := range man.Chunks {
			refdChunks[c.Digest] = true
			raw, err := s.readChunk(c.Digest)
			if err != nil {
				rep.errorf("manifest %s: chunk %d: missing or unreadable %s", digest, i, c.Digest)
				continue
			}
			if int64(len(raw)) != c.Len {
				rep.errorf("manifest %s: chunk %d (%s): %d bytes, manifest declares %d", digest, i, c.Digest, len(raw), c.Len)
				continue
			}
			if Digest(raw) != c.Digest {
				rep.errorf("chunk %s: content does not match its digest", c.Digest)
				continue
			}
			sum.Write(raw)
		}
		if got := sum.digest(); got != digest {
			rep.errorf("manifest %s: reassembles to %s", digest, got)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: fsck: %w", err)
	}

	err = s.walkDigests("chunks", func(digest, path string, size int64) error {
		rep.Chunks++
		if !refdChunks[digest] {
			rep.OrphanChunks++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: fsck: %w", err)
	}

	err = s.walkDigests("blobs", func(digest, path string, size int64) error {
		rep.Blobs++
		if !refdBlobs[digest] {
			rep.OrphanBlobs++
		}
		data, err := os.ReadFile(path)
		if err != nil {
			rep.errorf("blob %s: %v", digest, err)
			return nil
		}
		if Digest(data) != digest {
			rep.errorf("blob %s: content does not match its digest", digest)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: fsck: %w", err)
	}
	return rep, nil
}

// ---- stats ----

// StatsReport is the store's dedup accounting. LogicalBytes is what the
// stored recordings would occupy reassembled; UniqueRawBytes is the raw
// size of the distinct chunks actually referenced; StoredBytes is the
// bytes on disk (chunks at rest may additionally be compressed).
type StatsReport struct {
	Chunks          int     `json:"chunks"`
	Manifests       int     `json:"manifests"`
	Blobs           int     `json:"blobs"`
	LogicalBytes    int64   `json:"logical_bytes"`
	UniqueRawBytes  int64   `json:"unique_raw_bytes"`
	StoredBytes     int64   `json:"stored_bytes"`
	DedupSavedBytes int64   `json:"dedup_saved_bytes"`
	DedupRatio      float64 `json:"dedup_ratio"`
}

// Stats walks the store and computes the dedup accounting.
func (s *Store) Stats() (*StatsReport, error) {
	rep := &StatsReport{}
	uniq := map[string]int64{}
	err := s.walkDigests("manifests", func(digest, path string, size int64) error {
		rep.Manifests++
		rep.StoredBytes += size
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		man, err := DecodeManifest(data)
		if err != nil {
			return nil
		}
		rep.LogicalBytes += man.Total
		for _, c := range man.Chunks {
			uniq[c.Digest] = c.Len
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: stats: %w", err)
	}
	for _, n := range uniq {
		rep.UniqueRawBytes += n
	}
	err = s.walkDigests("chunks", func(digest, path string, size int64) error {
		rep.Chunks++
		rep.StoredBytes += size
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: stats: %w", err)
	}
	err = s.walkDigests("blobs", func(digest, path string, size int64) error {
		rep.Blobs++
		rep.StoredBytes += size
		rep.LogicalBytes += size
		rep.UniqueRawBytes += size
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: stats: %w", err)
	}
	rep.DedupSavedBytes = rep.LogicalBytes - rep.UniqueRawBytes
	rep.DedupRatio = 1
	if rep.UniqueRawBytes > 0 {
		rep.DedupRatio = float64(rep.LogicalBytes) / float64(rep.UniqueRawBytes)
	}
	return rep, nil
}
