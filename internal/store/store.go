// Package store is the daemon's storage tier: a sharded, chunk-level
// deduplicating artifact store for recordings, with retention/GC,
// job-level pinning, and integrity checking (fsck).
//
// Layout on disk:
//
//	<root>/blobs/<aa>/sha256-<hex>     whole artifacts, content-addressed
//	<root>/chunks/<aa>/sha256-<hex>    dedup chunks (1 flag byte + payload,
//	                                   optionally DEFLATE at rest; the
//	                                   digest addresses the *raw* bytes)
//	<root>/manifests/<aa>/sha256-<hex> chunk manifests, named by the digest
//	                                   of the recording they reassemble
//	<root>/jobs/<id>/...               per-job artifacts
//	<root>/jobs/<id>/recording.ref     digest of the job's recording
//	<root>/jobs/<id>/pinned            pin marker (protects from GC)
//
// The two-hex-character shard directory (the first byte of the digest)
// keeps any single directory from accumulating millions of entries; a
// flat pre-sharding layout migrates transparently at Open.
//
// PutRecording splits a v6 recording on its section and intra-section
// group boundaries (dplog.Reader.Chunks), stores each span
// content-addressed, and writes a manifest — so same-program/
// different-seed runs share their program-driven syscall and sync-order
// bytes. Crash-safe ordering: chunks are durable before the manifest
// that names them, and GC removes refs before manifests before chunks,
// so an interrupted operation can strand an orphan (reclaimed by the
// next GC) but never a dangling reference.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"doubleplay/internal/dplog"
	"doubleplay/internal/trace"
)

// Store is the artifact store handle. All mutating operations and GC
// serialize on an internal mutex, so a sweep never races a concurrent
// put or pin.
type Store struct {
	root string
	reg  *trace.Registry

	mu sync.Mutex

	// sweepHook, when set by tests, runs between the mark and sweep
	// phases of GC (with the store mutex held).
	sweepHook func()
}

// Open creates (if needed) and opens the artifact layout under root,
// migrating any flat pre-sharding blobs into their shard directories.
// reg, when non-nil, receives the store.* gauges.
func Open(root string, reg *trace.Registry) (*Store, error) {
	for _, dir := range []string{root, filepath.Join(root, "blobs"), filepath.Join(root, "chunks"),
		filepath.Join(root, "manifests"), filepath.Join(root, "jobs")} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{root: root, reg: reg}
	if err := s.migrateFlat(); err != nil {
		return nil, err
	}
	s.publishStats()
	return s, nil
}

// Root returns the store's base directory.
func (s *Store) Root() string { return s.root }

// migrateFlat moves pre-sharding `blobs/sha256-<hex>` files into their
// shard directories. Idempotent; a partially migrated store finishes on
// the next Open.
func (s *Store) migrateFlat() error {
	dir := filepath.Join(s.root, "blobs")
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !validDigest(e.Name()) {
			continue
		}
		dst := s.shardPath("blobs", e.Name())
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return fmt.Errorf("store: migrate: %w", err)
		}
		if err := os.Rename(filepath.Join(dir, e.Name()), dst); err != nil {
			return fmt.Errorf("store: migrate: %w", err)
		}
	}
	return nil
}

// Digest computes the content address of a byte string.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256-" + hex.EncodeToString(sum[:])
}

// digester streams bytes into a content address (fsck reassembly).
type digester struct{ h hash.Hash }

func newDigester() *digester                    { return &digester{h: sha256.New()} }
func (d *digester) Write(p []byte) (int, error) { return d.h.Write(p) }
func (d *digester) digest() string              { return "sha256-" + hex.EncodeToString(d.h.Sum(nil)) }

// validDigest guards digests read back from refs and directory listings
// before they are used as path components.
func validDigest(d string) bool {
	rest, ok := strings.CutPrefix(d, "sha256-")
	if !ok || len(rest) != 64 {
		return false
	}
	_, err := hex.DecodeString(rest)
	return err == nil
}

// shardPath maps a digest into a namespace ("blobs", "chunks",
// "manifests"): <root>/<ns>/<first hex byte>/<digest>.
func (s *Store) shardPath(ns, digest string) string {
	return filepath.Join(s.root, ns, digest[len("sha256-"):len("sha256-")+2], digest)
}

// BlobPath maps a digest to its (sharded) whole-blob path.
func (s *Store) BlobPath(digest string) string { return s.shardPath("blobs", digest) }

// writeFileAtomic lands data at path via a temp file in the same
// directory and a rename. Rename-over semantics make concurrent writers
// of the same content-addressed path safe: whichever rename lands last
// wins, and both wrote identical bytes.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// PutBlob stores data as one whole content-addressed blob. Existing
// blobs short-circuit (content addressing makes the write a no-op), and
// the slow path renames over the destination, so concurrent puts of the
// same digest are safe: they race only on which identical file lands.
func (s *Store) PutBlob(data []byte) (digest string, err error) {
	digest = Digest(data)
	path := s.BlobPath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, nil
	}
	if err := writeFileAtomic(path, data); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	return digest, nil
}

// ReadBlob loads a whole blob by digest.
func (s *Store) ReadBlob(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("store: invalid digest %q", digest)
	}
	return os.ReadFile(s.BlobPath(digest))
}

// putChunk stores one raw chunk content-addressed, DEFLATE-compressed at
// rest when that shrinks it. It reports whether a new file was created.
func (s *Store) putChunk(raw []byte) (digest string, created bool, err error) {
	digest = Digest(raw)
	path := s.shardPath("chunks", digest)
	if _, err := os.Stat(path); err == nil {
		return digest, false, nil
	}
	if err := writeFileAtomic(path, encodeChunk(raw)); err != nil {
		return "", false, fmt.Errorf("store: chunk: %w", err)
	}
	return digest, true, nil
}

// readChunk loads and decodes one chunk's raw bytes.
func (s *Store) readChunk(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("store: invalid chunk digest %q", digest)
	}
	data, err := os.ReadFile(s.shardPath("chunks", digest))
	if err != nil {
		return nil, err
	}
	return decodeChunk(data)
}

// PutRecording stores an encoded recording with chunk-level dedup: the
// artifact is split on its dplog section and group boundaries, each span
// stored content-addressed, and a manifest written under the recording's
// own digest. Artifacts that expose no chunkable layout (legacy formats)
// fall back to one whole blob under the same digest, so RecordingRef
// resolution is uniform. Chunks land before the manifest that references
// them — a crash strands orphan chunks, never a dangling manifest.
func (s *Store) PutRecording(data []byte) (digest string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.publishStats()
	digest = Digest(data)
	if _, err := os.Stat(s.shardPath("manifests", digest)); err == nil {
		return digest, nil
	}
	rd, err := dplog.OpenReaderBytes(data)
	if err != nil {
		return s.PutBlob(data)
	}
	chunks, err := rd.Chunks()
	if err != nil {
		return s.PutBlob(data)
	}
	man := &Manifest{Total: int64(len(data))}
	for _, c := range chunks {
		cd, _, err := s.putChunk(data[c.Offset : c.Offset+c.Len])
		if err != nil {
			return "", err
		}
		man.Chunks = append(man.Chunks, ManifestChunk{Digest: cd, Len: c.Len, Kind: uint8(c.Kind)})
	}
	if err := writeFileAtomic(s.shardPath("manifests", digest), man.Encode()); err != nil {
		return "", fmt.Errorf("store: manifest: %w", err)
	}
	return digest, nil
}

// loadManifest reads and decodes the manifest stored under digest.
func (s *Store) loadManifest(digest string) (*Manifest, error) {
	data, err := os.ReadFile(s.shardPath("manifests", digest))
	if err != nil {
		return nil, err
	}
	man, err := DecodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("store: manifest %s: %w", digest, err)
	}
	return man, nil
}

// HasRecording reports whether digest resolves to a stored recording
// (chunked or whole-blob).
func (s *Store) HasRecording(digest string) bool {
	if !validDigest(digest) {
		return false
	}
	if _, err := os.Stat(s.shardPath("manifests", digest)); err == nil {
		return true
	}
	_, err := os.Stat(s.BlobPath(digest))
	return err == nil
}

// ---- job artifacts ----

// JobDir creates (if needed) and returns a job's artifact directory.
func (s *Store) JobDir(id string) (string, error) {
	dir := filepath.Join(s.root, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	return dir, nil
}

// JobArtifact returns the path of a named artifact in a job's directory
// (without creating anything).
func (s *Store) JobArtifact(id, name string) string {
	return filepath.Join(s.root, "jobs", id, name)
}

// WriteJobArtifact writes one artifact into a job's directory.
func (s *Store) WriteJobArtifact(id, name string, data []byte) error {
	dir, err := s.JobDir(id)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}

// SetRecordingRef records which stored recording a job produced.
func (s *Store) SetRecordingRef(id, digest string) error {
	return s.WriteJobArtifact(id, "recording.ref", []byte(digest+"\n"))
}

// RecordingRef resolves a job's recording digest, or "" when the job has
// no stored recording.
func (s *Store) RecordingRef(id string) string {
	data, err := os.ReadFile(s.JobArtifact(id, "recording.ref"))
	if err != nil {
		return ""
	}
	d := strings.TrimSpace(string(data))
	if !validDigest(d) {
		return ""
	}
	return d
}

// ReadRecording loads the complete recording bytes a job produced.
// Prefer OpenRecordingByJob for large artifacts — this materializes the
// whole recording in memory.
func (s *Store) ReadRecording(id string) ([]byte, error) {
	h, err := s.OpenRecordingByJob(id)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	data := make([]byte, h.Size())
	if _, err := h.ReadAt(data, 0); err != nil {
		return nil, err
	}
	return data, nil
}

// Pin protects a job's recording (and every chunk it references) from
// GC until Unpin.
func (s *Store) Pin(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.WriteJobArtifact(id, "pinned", []byte("pinned\n"))
}

// Unpin removes a job's pin; missing pins are a no-op.
func (s *Store) Unpin(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.JobArtifact(id, "pinned"))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Pinned reports whether a job is pinned.
func (s *Store) Pinned(id string) bool {
	_, err := os.Stat(s.JobArtifact(id, "pinned"))
	return err == nil
}

// jobIDs lists the ids with artifact directories.
func (s *Store) jobIDs() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ids := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	return ids, nil
}

// walkDigests visits every content-addressed file under a namespace,
// tolerating both sharded and flat layouts.
func (s *Store) walkDigests(ns string, fn func(digest, path string, size int64) error) error {
	base := filepath.Join(s.root, ns)
	ents, err := os.ReadDir(base)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	visit := func(dir string, e os.DirEntry) error {
		if !validDigest(e.Name()) {
			return nil
		}
		info, err := e.Info()
		if err != nil {
			return err
		}
		return fn(e.Name(), filepath.Join(dir, e.Name()), info.Size())
	}
	for _, e := range ents {
		if !e.IsDir() {
			if err := visit(base, e); err != nil {
				return err
			}
			continue
		}
		sub, err := os.ReadDir(filepath.Join(base, e.Name()))
		if err != nil {
			return err
		}
		for _, se := range sub {
			if se.IsDir() {
				continue
			}
			if err := visit(filepath.Join(base, e.Name()), se); err != nil {
				return err
			}
		}
	}
	return nil
}

// publishStats recomputes the store gauges and reports them into the
// registry. Callers hold s.mu or are single-threaded (Open).
func (s *Store) publishStats() {
	if s.reg == nil {
		return
	}
	st, err := s.Stats()
	if err != nil {
		return
	}
	s.reg.Set("store.chunks", float64(st.Chunks))
	s.reg.Set("store.manifests", float64(st.Manifests))
	s.reg.Set("store.blobs", float64(st.Blobs))
	s.reg.Set("store.logical_bytes", float64(st.LogicalBytes))
	s.reg.Set("store.stored_bytes", float64(st.StoredBytes))
	s.reg.Set("store.dedup_ratio", st.DedupRatio)
}
