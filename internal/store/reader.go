package store

// Handle is the lazy, strided read path over a stored recording: an
// io.ReaderAt that reassembles bytes on demand from the chunk store (or
// serves them straight from a whole-blob file), so replay-by-id and
// epoch-range extraction never materialize a whole recording in the
// heap. dplog.OpenReader composes directly on top of it.

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// handleCacheBytes bounds the decoded chunks a Handle keeps in memory.
// Sequential reads touch each chunk once; seeky readers (the dplog
// section index, epoch-range extraction) revisit a few hot chunks.
const handleCacheBytes = 4 << 20

// Handle reads a stored recording lazily. It is safe for concurrent use.
type Handle struct {
	size int64

	// Whole-blob path: pread straight from the file, no cache.
	f *os.File

	// Chunked path: spans resolved through the manifest, decoded chunks
	// cached under a byte budget.
	st     *Store
	chunks []ManifestChunk
	starts []int64 // cumulative start offset of each chunk

	mu         sync.Mutex
	cache      map[int][]byte
	cacheOrder []int
	cacheSize  int64
}

// OpenRecording opens the recording stored under digest for random
// access, resolving a chunk manifest when one exists and falling back to
// the whole-blob layout otherwise. Close the handle when done.
func (s *Store) OpenRecording(digest string) (*Handle, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("store: invalid digest %q", digest)
	}
	if man, err := s.loadManifest(digest); err == nil {
		h := &Handle{size: man.Total, st: s, chunks: man.Chunks, cache: map[int][]byte{}}
		h.starts = make([]int64, len(man.Chunks))
		var off int64
		for i, c := range man.Chunks {
			h.starts[i] = off
			off += c.Len
		}
		return h, nil
	}
	f, err := os.Open(s.BlobPath(digest))
	if err != nil {
		return nil, fmt.Errorf("store: no recording stored under %s", digest)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Handle{size: info.Size(), f: f}, nil
}

// OpenRecordingByJob opens the recording a job produced.
func (s *Store) OpenRecordingByJob(id string) (*Handle, error) {
	d := s.RecordingRef(id)
	if d == "" {
		return nil, fmt.Errorf("store: job %s has no stored recording", id)
	}
	return s.OpenRecording(d)
}

// Size returns the recording's byte length.
func (h *Handle) Size() int64 { return h.size }

// Close releases the handle's resources.
func (h *Handle) Close() error {
	if h.f != nil {
		return h.f.Close()
	}
	h.mu.Lock()
	h.cache, h.cacheOrder, h.cacheSize = nil, nil, 0
	h.mu.Unlock()
	return nil
}

// ReadAt implements io.ReaderAt over the reassembled recording bytes.
func (h *Handle) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("store: negative read offset %d", off)
	}
	if off >= h.size {
		return 0, io.EOF
	}
	if max := h.size - off; int64(len(p)) > max {
		p = p[:max]
		n, err := h.readAt(p, off)
		if err == nil {
			err = io.EOF
		}
		return n, err
	}
	return h.readAt(p, off)
}

func (h *Handle) readAt(p []byte, off int64) (int, error) {
	if h.f != nil {
		return h.f.ReadAt(p, off)
	}
	total := 0
	// First chunk whose span contains off.
	i := sort.Search(len(h.starts), func(i int) bool { return h.starts[i] > off }) - 1
	for total < len(p) {
		if i >= len(h.chunks) {
			return total, io.ErrUnexpectedEOF
		}
		raw, err := h.chunk(i)
		if err != nil {
			return total, err
		}
		rel := off + int64(total) - h.starts[i]
		n := copy(p[total:], raw[rel:])
		total += n
		i++
	}
	return total, nil
}

// chunk returns chunk i's decoded bytes, consulting and maintaining the
// handle cache.
func (h *Handle) chunk(i int) ([]byte, error) {
	h.mu.Lock()
	if raw, ok := h.cache[i]; ok {
		h.mu.Unlock()
		return raw, nil
	}
	h.mu.Unlock()
	c := h.chunks[i]
	raw, err := h.st.readChunk(c.Digest)
	if err != nil {
		return nil, fmt.Errorf("store: chunk %d (%s): %w", i, c.Digest, err)
	}
	if int64(len(raw)) != c.Len {
		return nil, fmt.Errorf("store: chunk %d (%s) has %d bytes, manifest declares %d", i, c.Digest, len(raw), c.Len)
	}
	h.mu.Lock()
	if _, ok := h.cache[i]; h.cache != nil && !ok {
		h.cache[i] = raw
		h.cacheOrder = append(h.cacheOrder, i)
		h.cacheSize += int64(len(raw))
		for h.cacheSize > handleCacheBytes && len(h.cacheOrder) > 1 {
			old := h.cacheOrder[0]
			h.cacheOrder = h.cacheOrder[1:]
			h.cacheSize -= int64(len(h.cache[old]))
			delete(h.cache, old)
		}
	}
	h.mu.Unlock()
	return raw, nil
}
