package store_test

import (
	"bytes"
	"testing"

	"doubleplay/internal/store"
)

// FuzzManifest feeds arbitrary bytes to the DPMF decoder. The decoder
// must never panic, and anything it accepts must survive a semantic
// round trip: decode → encode → decode yields the same manifest. (Byte
// identity is not required — non-canonical varints decode fine but
// re-encode canonically.)
func FuzzManifest(f *testing.F) {
	m := &store.Manifest{Total: 60}
	m.Chunks = []store.ManifestChunk{
		{Digest: store.Digest([]byte("x")), Len: 25, Kind: 2},
		{Digest: store.Digest([]byte("y")), Len: 35, Kind: 4},
	}
	f.Add(m.Encode())
	f.Add([]byte{})
	f.Add([]byte("DPMF"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := store.DecodeManifest(data)
		if err != nil {
			return
		}
		re := got.Encode()
		got2, err := store.DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest failed to decode: %v", err)
		}
		if got.Total != got2.Total || len(got.Chunks) != len(got2.Chunks) {
			t.Fatalf("round trip changed manifest: %+v vs %+v", got, got2)
		}
		for i := range got.Chunks {
			if got.Chunks[i] != got2.Chunks[i] {
				t.Fatalf("chunk %d changed: %+v vs %+v", i, got.Chunks[i], got2.Chunks[i])
			}
		}
	})
}
