package store

// The chunk manifest is the store's binary description of how to
// reassemble a recording from content-addressed chunks. The codec
// follows the repo's dplog idiom — magic, varints, length-implicit
// offsets, CRC-32 tail — and is deliberately tiny: chunk offsets are
// cumulative, so each entry carries only its length, kind, and raw
// digest.
//
//	"DPMF"                        magic (4 bytes)
//	u version                     currently 1
//	u total                       reassembled recording size in bytes
//	u count                       number of chunks
//	count × { u len, u kind, 32-byte sha256 }
//	u32 LE CRC-32 (IEEE)          over everything before it

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	manifestMagic   = "DPMF"
	manifestVersion = 1

	// maxManifestChunks bounds the entry count against hostile input.
	maxManifestChunks = 1 << 22
	// maxChunkLen bounds a single chunk span.
	maxChunkLen = 1 << 30
)

// ErrBadManifest reports bytes that do not decode as a chunk manifest.
var ErrBadManifest = errors.New("store: bad manifest")

// ManifestChunk is one chunk reference: Len bytes of the recording,
// stored under Digest (the address of the raw span bytes). Kind echoes
// dplog.ChunkKind for stats and fsck narration.
type ManifestChunk struct {
	Digest string
	Len    int64
	Kind   uint8
}

// Manifest describes one recording as an ordered chunk list. Offsets are
// implicit: chunk i starts at the sum of the lengths before it.
type Manifest struct {
	Total  int64
	Chunks []ManifestChunk
}

// Encode renders the manifest in the DPMF binary layout.
func (m *Manifest) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteString(manifestMagic)
	var tmp [binary.MaxVarintLen64]byte
	u := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	u(manifestVersion)
	u(uint64(m.Total))
	u(uint64(len(m.Chunks)))
	for _, c := range m.Chunks {
		u(uint64(c.Len))
		u(uint64(c.Kind))
		raw, _ := hex.DecodeString(c.Digest[len("sha256-"):])
		buf.Write(raw)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(crc[:])
	return buf.Bytes()
}

// DecodeManifest parses and validates a DPMF manifest: magic, version,
// bounds, digest shape, length consistency, and the CRC tail. It never
// panics on corrupt input (fuzzed).
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) < len(manifestMagic)+4 || string(data[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrBadManifest)
	}
	r := bytes.NewReader(body[len(manifestMagic):])
	u := func() (uint64, error) { return binary.ReadUvarint(r) }
	ver, err := u()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadManifest)
	}
	if ver != manifestVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadManifest, ver)
	}
	total, err := u()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadManifest)
	}
	count, err := u()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadManifest)
	}
	if count > maxManifestChunks {
		return nil, fmt.Errorf("%w: %d chunks too many", ErrBadManifest, count)
	}
	m := &Manifest{Total: int64(total)}
	var sum int64
	for i := uint64(0); i < count; i++ {
		n, err := u()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated", ErrBadManifest)
		}
		if n == 0 || n > maxChunkLen {
			return nil, fmt.Errorf("%w: chunk length %d", ErrBadManifest, n)
		}
		kind, err := u()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated", ErrBadManifest)
		}
		if kind > 255 {
			return nil, fmt.Errorf("%w: chunk kind %d", ErrBadManifest, kind)
		}
		var raw [32]byte
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated digest", ErrBadManifest)
		}
		m.Chunks = append(m.Chunks, ManifestChunk{
			Digest: "sha256-" + hex.EncodeToString(raw[:]),
			Len:    int64(n),
			Kind:   uint8(kind),
		})
		sum += int64(n)
		if sum > int64(total) {
			return nil, fmt.Errorf("%w: chunk lengths exceed total %d", ErrBadManifest, total)
		}
	}
	if sum != int64(total) {
		return nil, fmt.Errorf("%w: chunk lengths sum to %d, total declares %d", ErrBadManifest, sum, total)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadManifest, r.Len())
	}
	return m, nil
}

// ---- chunk file encoding ----

// Chunk files carry a 1-byte at-rest encoding flag before the payload:
// 0 = raw, 1 = DEFLATE. The digest in the file name always addresses the
// raw bytes, so at-rest compression never affects identity.
const (
	chunkRaw     = 0
	chunkDeflate = 1
)

// encodeChunk renders a chunk file, compressing at rest when it shrinks.
func encodeChunk(raw []byte) []byte {
	if z := deflateBytes(raw); z != nil {
		return append([]byte{chunkDeflate}, z...)
	}
	return append([]byte{chunkRaw}, raw...)
}

// decodeChunk recovers a chunk's raw bytes from its file encoding.
func decodeChunk(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("store: empty chunk file")
	}
	switch data[0] {
	case chunkRaw:
		return data[1:], nil
	case chunkDeflate:
		return inflateBytes(data[1:])
	}
	return nil, fmt.Errorf("store: unknown chunk encoding %d", data[0])
}

// deflateBytes compresses b at the default level, returning nil when
// compression would not shrink it.
func deflateBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil
	}
	if _, err := zw.Write(b); err != nil {
		return nil
	}
	if err := zw.Close(); err != nil {
		return nil
	}
	if buf.Len() >= len(b) {
		return nil
	}
	return buf.Bytes()
}

// inflateBytes decompresses a chunk payload, bounded by the maximum
// chunk length.
func inflateBytes(b []byte) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(b))
	defer zr.Close()
	out, err := io.ReadAll(io.LimitReader(zr, maxChunkLen+1))
	if err != nil {
		return nil, fmt.Errorf("store: inflate chunk: %w", err)
	}
	if len(out) > maxChunkLen {
		return nil, fmt.Errorf("store: inflated chunk too large")
	}
	return out, nil
}
