package store

// SetSweepHook installs a test hook that runs between GC's mark and
// sweep phases, with the store mutex held.
func (s *Store) SetSweepHook(f func()) { s.sweepHook = f }
