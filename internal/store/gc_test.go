package store_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"doubleplay/internal/store"
)

// put stores a recording under a job ref and returns its digest.
func put(t *testing.T, s *store.Store, job string, data []byte) string {
	t.Helper()
	d, err := s.PutRecording(data)
	if err != nil {
		t.Fatalf("PutRecording: %v", err)
	}
	if err := s.SetRecordingRef(job, d); err != nil {
		t.Fatalf("SetRecordingRef: %v", err)
	}
	return d
}

func TestGCKeepsLiveSharedChunksReclaimsOrphans(t *testing.T) {
	s := open(t)
	a := encode(testRecording(1, 6))
	b := encode(testRecording(2, 6))
	da := put(t, s, "jobA", a)
	db := put(t, s, "jobB", b)

	// Age out jobB only.
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(s.JobArtifact("jobB", "recording.ref"), old, old); err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC(store.Policy{MaxAge: time.Hour})
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if rep.LiveRecordings != 1 || rep.ManifestsRemoved != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.ChunksRemoved == 0 {
		t.Fatal("expected jobB's unshared chunks to be reclaimed")
	}
	if rep.BytesReclaimed <= 0 {
		t.Fatalf("BytesReclaimed = %d", rep.BytesReclaimed)
	}
	// jobA fully intact; jobB gone.
	back, err := s.ReadRecording("jobA")
	if err != nil || !bytes.Equal(back, a) {
		t.Fatalf("jobA recording damaged by GC: %v", err)
	}
	if s.HasRecording(db) {
		t.Fatal("jobB recording survived GC")
	}
	if !s.HasRecording(da) {
		t.Fatal("jobA recording missing")
	}
	fsck, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !fsck.OK() {
		t.Fatalf("fsck after GC: %+v", fsck)
	}
	if fsck.OrphanChunks != 0 {
		t.Fatalf("fsck found %d orphan chunks after sweep", fsck.OrphanChunks)
	}
}

func TestGCPinnedSurvivesAgePolicy(t *testing.T) {
	s := open(t)
	a := encode(testRecording(1, 4))
	put(t, s, "jobA", a)
	if err := s.Pin("jobA"); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(s.JobArtifact("jobA", "recording.ref"), old, old); err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC(store.Policy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pinned != 1 || rep.LiveRecordings != 1 || rep.ManifestsRemoved != 0 {
		t.Fatalf("pinned recording was collected: %+v", rep)
	}
	back, err := s.ReadRecording("jobA")
	if err != nil || !bytes.Equal(back, a) {
		t.Fatalf("pinned recording unreadable: %v", err)
	}
	// Unpin, then the same policy collects it.
	if err := s.Unpin("jobA"); err != nil {
		t.Fatal(err)
	}
	rep, err = s.GC(store.Policy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ManifestsRemoved != 1 {
		t.Fatalf("unpinned aged recording not collected: %+v", rep)
	}
}

func TestGCSizeBudgetKeepsNewest(t *testing.T) {
	s := open(t)
	var data [3][]byte
	for i := range data {
		data[i] = encode(testRecording(uint64(10+i), 4))
		put(t, s, jobName(i), data[i])
		// Distinct mtimes, oldest first.
		ts := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(s.JobArtifact(jobName(i), "recording.ref"), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	// Budget fits roughly one recording: newest survives, older two go.
	rep, err := s.GC(store.Policy{MaxBytes: int64(len(data[2]) + 100)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveRecordings != 1 || rep.ManifestsRemoved != 2 {
		t.Fatalf("size budget: %+v", rep)
	}
	if back, err := s.ReadRecording(jobName(2)); err != nil || !bytes.Equal(back, data[2]) {
		t.Fatalf("newest recording lost: %v", err)
	}
	if _, err := s.ReadRecording(jobName(0)); err == nil {
		t.Fatal("oldest recording survived size budget")
	}
}

func jobName(i int) string { return string(rune('a'+i)) + "-job" }

func TestGCDryRunRemovesNothing(t *testing.T) {
	s := open(t)
	a := encode(testRecording(1, 4))
	put(t, s, "jobA", a)
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(s.JobArtifact("jobA", "recording.ref"), old, old); err != nil {
		t.Fatal(err)
	}
	rep, err := s.GC(store.Policy{MaxAge: time.Hour, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DryRun || rep.ManifestsRemoved != 1 {
		t.Fatalf("dry run report: %+v", rep)
	}
	if back, err := s.ReadRecording("jobA"); err != nil || !bytes.Equal(back, a) {
		t.Fatalf("dry run deleted data: %v", err)
	}
}

// TestPinDuringSweep races a Pin against a running GC: the pin blocks on
// the store mutex until the sweep finishes, so the GC outcome is decided
// by the mark phase alone and the store stays consistent either way.
func TestPinDuringSweep(t *testing.T) {
	s := open(t)
	put(t, s, "jobA", encode(testRecording(1, 4)))
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(s.JobArtifact("jobA", "recording.ref"), old, old); err != nil {
		t.Fatal(err)
	}
	pinned := make(chan error, 1)
	s.SetSweepHook(func() {
		go func() { pinned <- s.Pin("jobA") }()
		// Give the pin goroutine time to block on the mutex.
		time.Sleep(20 * time.Millisecond)
	})
	rep, err := s.GC(store.Policy{MaxAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-pinned; err != nil {
		t.Fatalf("Pin during sweep: %v", err)
	}
	if rep.ManifestsRemoved != 1 {
		t.Fatalf("aged recording not collected: %+v", rep)
	}
	// The late pin landed on a now-recording-less job. That is harmless:
	// fsck stays clean and a second GC does not crash.
	fsck, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !fsck.OK() {
		t.Fatalf("fsck after pin-during-sweep: %+v", fsck)
	}
	if _, err := s.GC(store.Policy{MaxAge: time.Hour}); err != nil {
		t.Fatalf("second GC: %v", err)
	}
}

func TestFsckReportsMissingChunk(t *testing.T) {
	s := open(t)
	d := put(t, s, "jobA", encode(testRecording(1, 4)))
	// Delete one chunk file out from under the manifest.
	var victim string
	err := filepath.WalkDir(filepath.Join(s.Root(), "chunks"), func(path string, de os.DirEntry, err error) error {
		if err == nil && !de.IsDir() && victim == "" {
			victim = path
		}
		return err
	})
	if err != nil || victim == "" {
		t.Fatalf("no chunk files found: %v", err)
	}
	if err := os.Remove(victim); err != nil {
		t.Fatal(err)
	}
	fsck, err := s.Fsck()
	if err != nil {
		t.Fatalf("Fsck returned hard error: %v", err)
	}
	if fsck.OK() {
		t.Fatal("fsck passed with a missing chunk")
	}
	found := false
	for _, e := range fsck.Errors {
		if strings.Contains(e, "sha256-") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck errors name no digest: %v", fsck.Errors)
	}
	// Reading through the damaged manifest fails cleanly, no panic.
	if _, err := s.ReadRecording("jobA"); err == nil {
		t.Fatal("read through missing chunk succeeded")
	}
	_ = d
}

func TestFsckDetectsCorruptChunk(t *testing.T) {
	s := open(t)
	put(t, s, "jobA", encode(testRecording(1, 4)))
	var victim string
	err := filepath.WalkDir(filepath.Join(s.Root(), "chunks"), func(path string, de os.DirEntry, err error) error {
		if err == nil && !de.IsDir() && victim == "" {
			victim = path
		}
		return err
	})
	if err != nil || victim == "" {
		t.Fatal("no chunk files")
	}
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fsck, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if fsck.OK() {
		t.Fatal("fsck passed with a corrupt chunk")
	}
}

func TestStatsCleanStore(t *testing.T) {
	s := open(t)
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks != 0 || st.LogicalBytes != 0 || st.DedupRatio != 1 {
		t.Fatalf("empty store stats: %+v", st)
	}
}
