package store_test

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"doubleplay/internal/dplog"
	"doubleplay/internal/store"
	"doubleplay/internal/vm"
)

func open(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// testRecording builds a deterministic recording whose syscall groups
// are sizeable and identical across "seeds" while the boundary hashes
// and schedules differ — the shape chunk dedup exists for.
func testRecording(seed uint64, epochs int) *dplog.Recording {
	rec := &dplog.Recording{
		Program: "storetest", Workers: 2, Seed: int64(seed),
		FinalHash: 0xabc ^ seed, OutputHash: 0xdef, Quantum: 250,
	}
	for i := 0; i < epochs; i++ {
		ep := &dplog.EpochLog{
			Index:      i,
			StartHash:  seed*1000 + uint64(i),
			EndHash:    seed*1000 + uint64(i) + 1,
			CommitHash: seed*2000 + uint64(i),
			Targets:    []uint64{uint64(250 * (i + 1))},
			Schedule:   []dplog.Slice{{Tid: int(seed) % 2, N: 100 + uint64(i)}, {Tid: 1, N: 150}},
		}
		for k := 0; k < 8; k++ {
			sys := dplog.SyscallRecord{Tid: k % 2, Num: int64(7 + i), Ret: int64(k)}
			sys.Args = [6]vm.Word{1, 2, 3, int64(i), int64(k), 6}
			sys.Writes = []vm.MemWrite{{Addr: int64(4096 + 8*k), Data: []vm.Word{int64(i), int64(k), 3}}}
			ep.Syscalls = append(ep.Syscalls, sys)
		}
		for k := 0; k < 6; k++ {
			ep.SyncOrder = append(ep.SyncOrder, dplog.SyncRecord{Tid: k % 2, Kind: vm.ObjLock, ID: int64(9 + i)})
		}
		rec.Epochs = append(rec.Epochs, ep)
	}
	return rec
}

func encode(rec *dplog.Recording) []byte {
	return dplog.MarshalBytesWith(rec, dplog.EncodeOptions{Compress: false})
}

func TestBlobRoundTripSharded(t *testing.T) {
	s := open(t)
	data := []byte("hello artifact store")
	d, err := s.PutBlob(data)
	if err != nil {
		t.Fatalf("PutBlob: %v", err)
	}
	got, err := s.ReadBlob(d)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadBlob: %q, %v", got, err)
	}
	// The blob must live in its shard directory: blobs/<aa>/sha256-aa...
	shard := d[len("sha256-") : len("sha256-")+2]
	want := filepath.Join(s.Root(), "blobs", shard, d)
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("blob not at sharded path %s: %v", want, err)
	}
	// Idempotent re-put.
	if d2, err := s.PutBlob(data); err != nil || d2 != d {
		t.Fatalf("re-put: %s, %v", d2, err)
	}
	if _, err := s.ReadBlob("sha256-zz"); err == nil {
		t.Fatal("ReadBlob accepted an invalid digest")
	}
}

func TestFlatLayoutMigration(t *testing.T) {
	root := t.TempDir()
	// Seed a pre-sharding layout by hand: blobs/sha256-<hex> at top level.
	data := []byte("legacy layout blob")
	d := store.Digest(data)
	if err := os.MkdirAll(filepath.Join(root, "blobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "blobs", d), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(root, nil)
	if err != nil {
		t.Fatalf("Open over flat layout: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "blobs", d)); !os.IsNotExist(err) {
		t.Fatalf("flat blob still present after migration (err=%v)", err)
	}
	got, err := s.ReadBlob(d)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("migrated blob unreadable: %q, %v", got, err)
	}
}

// TestParallelPutBlob exercises the Stat-then-write race: many
// goroutines putting the same content must all succeed and leave one
// intact blob (rename-over semantics).
func TestParallelPutBlob(t *testing.T) {
	s := open(t)
	data := bytes.Repeat([]byte("same content every writer "), 64)
	want := store.Digest(data)
	const writers = 16
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := s.PutBlob(data)
			if err != nil {
				errs <- err
				return
			}
			if d != want {
				errs <- fmt.Errorf("digest %s, want %s", d, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("parallel PutBlob: %v", err)
	}
	got, err := s.ReadBlob(want)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("blob damaged after parallel puts: %v", err)
	}
}

func TestPutRecordingDedupsAcrossSeeds(t *testing.T) {
	s := open(t)
	a := encode(testRecording(1, 6))
	b := encode(testRecording(2, 6))
	da, err := s.PutRecording(a)
	if err != nil {
		t.Fatalf("PutRecording a: %v", err)
	}
	db, err := s.PutRecording(b)
	if err != nil {
		t.Fatalf("PutRecording b: %v", err)
	}
	if da == db {
		t.Fatal("different recordings got one digest")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Manifests != 2 {
		t.Fatalf("manifests = %d, want 2", st.Manifests)
	}
	if st.LogicalBytes != int64(len(a)+len(b)) {
		t.Fatalf("logical bytes = %d, want %d", st.LogicalBytes, len(a)+len(b))
	}
	if st.DedupSavedBytes <= 0 {
		t.Fatalf("same-workload different-seed recordings shared nothing (saved=%d, unique=%d)",
			st.DedupSavedBytes, st.UniqueRawBytes)
	}
	if st.DedupRatio <= 1 {
		t.Fatalf("dedup ratio %v, want > 1", st.DedupRatio)
	}
	// Idempotent re-put takes the manifest fast path.
	if d2, err := s.PutRecording(a); err != nil || d2 != da {
		t.Fatalf("re-put: %s, %v", d2, err)
	}
}

func TestOpenRecordingReassemblesExactly(t *testing.T) {
	s := open(t)
	data := encode(testRecording(7, 5))
	d, err := s.PutRecording(data)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.OpenRecording(d)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", h.Size(), len(data))
	}
	// Full sequential read.
	got := make([]byte, len(data))
	if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatalf("ReadAt full: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled recording differs from the original")
	}
	// Strided reads at awkward offsets, spanning chunk boundaries.
	for _, tc := range []struct{ off, n int }{
		{0, 1}, {1, 7}, {len(data) / 3, 1000}, {len(data) - 5, 5}, {len(data) / 2, len(data) / 2},
	} {
		n := tc.n
		if tc.off+n > len(data) {
			n = len(data) - tc.off
		}
		buf := make([]byte, n)
		if _, err := h.ReadAt(buf, int64(tc.off)); err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(buf, data[tc.off:tc.off+n]) {
			t.Fatalf("ReadAt(%d,%d) returned wrong bytes", tc.off, tc.n)
		}
	}
	// Past-the-end read.
	if _, err := h.ReadAt(make([]byte, 4), int64(len(data))); err != io.EOF {
		t.Fatalf("read past end: err = %v, want EOF", err)
	}
	// The chunked handle composes with the dplog reader: every epoch
	// decodes identically to the in-memory path.
	rd, err := dplog.OpenReader(h, h.Size())
	if err != nil {
		t.Fatalf("OpenReader over handle: %v", err)
	}
	mem, err := dplog.OpenReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumSections() != mem.NumSections() {
		t.Fatalf("sections %d vs %d", rd.NumSections(), mem.NumSections())
	}
	var a, b bytes.Buffer
	if err := rd.WriteRange(&a, 1, 3); err != nil {
		t.Fatalf("WriteRange over handle: %v", err)
	}
	if err := mem.WriteRange(&b, 1, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("epoch-range extraction through the chunked handle differs from the in-memory path")
	}
}

func TestOpenRecordingWholeBlobFallback(t *testing.T) {
	s := open(t)
	// A legacy (v5) artifact exposes no chunk layout; PutRecording must
	// fall back to one whole blob, and OpenRecording must serve it.
	rec := testRecording(3, 2)
	data := dplog.MarshalBytes(rec)
	trunc := data[:len(data)-3] // corrupt: not even a readable v6 log
	d, err := s.PutRecording(trunc)
	if err != nil {
		t.Fatalf("PutRecording fallback: %v", err)
	}
	h, err := s.OpenRecording(d)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	got := make([]byte, h.Size())
	if _, err := h.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, trunc) {
		t.Fatal("whole-blob handle returned wrong bytes")
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Blobs != 1 || st.Manifests != 0 {
		t.Fatalf("fallback stored blobs=%d manifests=%d, want 1/0", st.Blobs, st.Manifests)
	}
}

func TestRecordingRefRoundTrip(t *testing.T) {
	s := open(t)
	data := encode(testRecording(4, 3))
	d, err := s.PutRecording(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRecordingRef("job1", d); err != nil {
		t.Fatal(err)
	}
	if got := s.RecordingRef("job1"); got != d {
		t.Fatalf("RecordingRef = %q, want %q", got, d)
	}
	back, err := s.ReadRecording("job1")
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("ReadRecording: %v", err)
	}
	if s.RecordingRef("nope") != "" {
		t.Fatal("ref for unknown job")
	}
	if !s.HasRecording(d) {
		t.Fatal("HasRecording(d) = false")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &store.Manifest{Total: 100}
	m.Chunks = []store.ManifestChunk{
		{Digest: store.Digest([]byte("a")), Len: 30, Kind: 1},
		{Digest: store.Digest([]byte("b")), Len: 50, Kind: 2},
		{Digest: store.Digest([]byte("a")), Len: 20, Kind: 3},
	}
	enc := m.Encode()
	got, err := store.DecodeManifest(enc)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got.Total != m.Total || len(got.Chunks) != len(m.Chunks) {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range m.Chunks {
		if got.Chunks[i] != m.Chunks[i] {
			t.Fatalf("chunk %d: %+v != %+v", i, got.Chunks[i], m.Chunks[i])
		}
	}
	// Corruptions must fail cleanly, never panic.
	for _, mut := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"magic", append([]byte("XXXX"), enc[4:]...)},
		{"truncated", enc[:len(enc)-6]},
		{"bitflip", flip(enc, len(enc)/2)},
		{"crc", flip(enc, len(enc)-1)},
	} {
		if _, err := store.DecodeManifest(mut.data); err == nil {
			t.Fatalf("%s: corrupt manifest decoded", mut.name)
		}
	}
}

func flip(b []byte, i int) []byte {
	out := bytes.Clone(b)
	out[i] ^= 0x40
	return out
}
