package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroReads(t *testing.T) {
	m := New()
	for _, addr := range []Word{0, 1, PageWords - 1, PageWords, 1 << 30, -5} {
		if got := m.Load(addr); got != 0 {
			t.Fatalf("Load(%d) = %d on empty memory", addr, got)
		}
	}
	if m.PageCount() != 0 {
		t.Fatalf("empty memory has %d pages", m.PageCount())
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	m := New()
	m.Store(7, 42)
	m.Store(PageWords+3, -9)
	m.Store(7, 43)
	if got := m.Load(7); got != 43 {
		t.Fatalf("Load(7) = %d, want 43", got)
	}
	if got := m.Load(PageWords + 3); got != -9 {
		t.Fatalf("Load = %d, want -9", got)
	}
	if m.PageCount() != 2 {
		t.Fatalf("pages = %d, want 2", m.PageCount())
	}
}

func TestZeroStoreStaysSparse(t *testing.T) {
	m := New()
	for i := Word(0); i < 10*PageWords; i += PageWords {
		m.Store(i, 0)
	}
	if m.PageCount() != 0 {
		t.Fatalf("zero stores materialised %d pages", m.PageCount())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := New()
	m.Store(5, 1)
	m.Store(PageWords+5, 2)
	snap := m.Snapshot()
	m.Store(5, 100)
	m.Store(2*PageWords, 3)
	if got := snap.Peek(5); got != 1 {
		t.Fatalf("snapshot saw later write: %d", got)
	}
	if got := snap.Peek(2 * PageWords); got != 0 {
		t.Fatalf("snapshot saw page created later: %d", got)
	}
	if got := m.Load(5); got != 100 {
		t.Fatalf("memory lost its write: %d", got)
	}
	// Restore gives the snapshot contents back.
	r := snap.Restore()
	if got := r.Load(5); got != 1 {
		t.Fatalf("restore Load(5) = %d, want 1", got)
	}
	// Writes to the restored memory do not leak anywhere.
	r.Store(5, 77)
	if snap.Peek(5) != 1 || m.Load(5) != 100 {
		t.Fatal("restored memory write leaked into snapshot or original")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New()
	m.Store(1, 10)
	c := m.Clone()
	c.Store(1, 20)
	m.Store(2, 30)
	if m.Load(1) != 10 || c.Load(1) != 20 || c.Load(2) != 0 {
		t.Fatal("clone and original are entangled")
	}
}

func TestHashSemanticEquality(t *testing.T) {
	a, b := New(), New()
	a.Store(3, 9)
	a.Store(PageWords*7, 5)
	b.Store(PageWords*7, 5)
	b.Store(3, 9)
	if a.Hash() != b.Hash() {
		t.Fatal("same contents, different hashes")
	}
	// A page written then zeroed hashes like an untouched page.
	c := New()
	c.Store(3, 9)
	c.Store(PageWords*7, 5)
	c.Store(PageWords*3, 1)
	c.Store(PageWords*3, 0)
	if c.Hash() != a.Hash() {
		t.Fatal("explicitly-zeroed page changed the hash")
	}
	b.Store(4, 1)
	if a.Hash() == b.Hash() {
		t.Fatal("different contents, same hash")
	}
}

func TestSnapshotHashMatchesMemory(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.Store(Word(i*37), Word(i))
	}
	snap := m.Snapshot()
	if snap.Hash() != m.Hash() {
		t.Fatal("snapshot hash differs from memory hash at capture")
	}
	m.Store(0, 999)
	if snap.Hash() == m.Hash() {
		t.Fatal("hashes still equal after divergence")
	}
}

func TestCopyOnWriteStats(t *testing.T) {
	m := New()
	m.Store(0, 1)
	m.ResetStats()
	snap := m.Snapshot()
	m.Store(1, 2) // same page, shared -> copy
	st := m.Stats()
	if st.PagesCopied != 1 {
		t.Fatalf("PagesCopied = %d, want 1", st.PagesCopied)
	}
	m.Store(2, 3) // now private, no copy
	if m.Stats().PagesCopied != 1 {
		t.Fatal("second write to private page copied again")
	}
	snap.Release()
}

func TestReleaseAllowsInPlaceWrites(t *testing.T) {
	m := New()
	m.Store(0, 1)
	snap := m.Snapshot()
	snap.Release()
	m.ResetStats()
	m.Store(1, 2)
	if m.Stats().PagesCopied != 0 {
		t.Fatal("write after release still copied the page")
	}
}

func TestRestoreAfterReleasePanics(t *testing.T) {
	m := New()
	m.Store(0, 1)
	snap := m.Snapshot()
	snap.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Restore on released snapshot did not panic")
		}
	}()
	snap.Restore()
}

func TestDiffPages(t *testing.T) {
	a, b := New(), New()
	a.Store(0, 1)
	b.Store(0, 1)
	if d := a.DiffPages(b); len(d) != 0 {
		t.Fatalf("equal memories diff: %v", d)
	}
	b.Store(PageWords*5, 7)
	d := a.DiffPages(b)
	if len(d) != 1 || d[0] != 5 {
		t.Fatalf("diff = %v, want [5]", d)
	}
	a.Store(1, 2)
	if d := a.DiffPages(b); len(d) != 2 {
		t.Fatalf("diff = %v, want two pages", d)
	}
}

func TestStoreRangeLoadRange(t *testing.T) {
	m := New()
	vals := []Word{1, 2, 3, 4, 5}
	m.StoreRange(PageWords-2, vals) // crosses a page boundary
	got := m.LoadRange(PageWords-2, 5)
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("LoadRange[%d] = %d, want %d", i, got[i], v)
		}
	}
}

// TestQuickMemoryVsModel drives random operations against both the paged
// memory and a plain map, checking every read and the final hash-equality
// property between two independently built instances.
func TestQuickMemoryVsModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		model := make(map[Word]Word)
		var snaps []*Snapshot
		var snapModels []map[Word]Word
		for op := 0; op < 500; op++ {
			addr := Word(rng.Intn(4 * PageWords))
			switch rng.Intn(5) {
			case 0, 1, 2:
				v := Word(rng.Intn(100) - 50)
				m.Store(addr, v)
				model[addr] = v
			case 3:
				if m.Load(addr) != model[addr] {
					return false
				}
			case 4:
				if len(snaps) < 4 {
					snaps = append(snaps, m.Snapshot())
					sm := make(map[Word]Word, len(model))
					for k, v := range model {
						sm[k] = v
					}
					snapModels = append(snapModels, sm)
				}
			}
		}
		for i, s := range snaps {
			for k, v := range snapModels[i] {
				if s.Peek(k) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHashAgreement builds the same contents along two different write
// paths and requires equal hashes.
func TestQuickHashAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		writes := make(map[Word]Word)
		for i := 0; i < 200; i++ {
			writes[Word(rng.Intn(3*PageWords))] = Word(rng.Int63())
		}
		a, b := New(), New()
		for k, v := range writes {
			a.Store(k, v)
		}
		// b takes a noisy path: scribble then fix up.
		for k := range writes {
			b.Store(k, 123456)
		}
		b.Store(2*PageWords+1, 42)
		for k, v := range writes {
			b.Store(k, v)
		}
		if _, scribbled := writes[2*PageWords+1]; !scribbled {
			b.Store(2*PageWords+1, 0)
		}
		return a.Hash() == b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStore(b *testing.B) {
	m := New()
	for i := 0; i < b.N; i++ {
		m.Store(Word(i&0xffff), Word(i))
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	m := New()
	for i := 0; i < 64*PageWords; i += 17 {
		m.Store(Word(i), Word(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.Snapshot()
		r := s.Restore()
		r.Store(0, Word(i))
		s.Release()
	}
}

func BenchmarkHashCached(b *testing.B) {
	m := New()
	for i := 0; i < 64*PageWords; i += 3 {
		m.Store(Word(i), Word(i))
	}
	m.Hash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Store(5, Word(i)) // dirty one page
		_ = m.Hash()
	}
}
