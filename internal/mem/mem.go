// Package mem implements the paged, copy-on-write guest memory that backs
// every execution in the DoublePlay simulator.
//
// Memory is word-addressed (one 64-bit word per address) and sparsely paged:
// a page that has never been written reads as zero and occupies no storage.
// Snapshots are O(pages) reference bumps; the first write to a shared page
// after a snapshot copies that page (copy-on-write). This mirrors the
// fork-based checkpointing the original DoublePlay kernel used: taking a
// checkpoint is cheap, and the cost of a checkpoint is paid lazily by
// whichever execution writes first.
//
// Per-page content hashes are cached so that comparing two memory images —
// the divergence check DoublePlay performs at every epoch boundary — costs
// O(pages written since the hash was last computed), not O(address space).
package mem

import (
	"fmt"
	"sync/atomic"
)

// PageShift determines the page size: 1<<PageShift words per page.
const PageShift = 10

// PageWords is the number of 64-bit words in one page.
const PageWords = 1 << PageShift

// pageMask extracts the in-page offset from an address.
const pageMask = PageWords - 1

// Word is the unit of guest memory and guest arithmetic.
type Word = int64

// page is a refcounted block of guest words. A page with refs > 1 is shared
// between memories/snapshots and must be copied before being written.
type page struct {
	refs   atomic.Int32
	data   [PageWords]Word
	hash   uint64 // cached content hash; valid iff hashOK
	hashOK bool
}

func newPage() *page {
	p := &page{}
	p.refs.Store(1)
	return p
}

// clone returns a private copy of p with refs == 1.
func (p *page) clone() *page {
	c := &page{data: p.data, hash: p.hash, hashOK: p.hashOK}
	c.refs.Store(1)
	return c
}

// contentHash returns the FNV-1a hash of the page body, caching the result.
// Only the owner of a writable memory calls this, so the cache fields need
// no synchronisation beyond the sharing discipline (shared pages are
// immutable, and their cached hash was computed before they became shared or
// is recomputed identically by each sharer).
func (p *page) contentHash() uint64 {
	if p.hashOK {
		return p.hash
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, w := range p.data {
		x := uint64(w)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	p.hash = h
	p.hashOK = true
	return h
}

// zeroPageHash is the content hash of an all-zero page, used to canonicalise
// hashes so that an explicitly-zeroed page and a never-touched page produce
// identical memory hashes.
var zeroPageHash = func() uint64 {
	return newPage().contentHash()
}()

// Stats counts copy-on-write activity, which the cost model charges as
// checkpoint overhead.
type Stats struct {
	PagesCopied int64 // pages duplicated by copy-on-write
	PagesNew    int64 // pages materialised by a first write
	Loads       int64
	Stores      int64
}

// Memory is a writable guest address space.
//
// A Memory is not safe for concurrent mutation; each simulated execution owns
// exactly one. Distinct Memory values may share pages through snapshots, and
// the copy-on-write protocol makes concurrent use of *different* memories
// that share pages safe (shared pages are read-only by construction).
type Memory struct {
	pages map[Word]*page
	stats Stats

	// lastIdx/lastPage cache the most recently touched page: guest access
	// streams are heavily page-local, so most Load/Store calls skip the map
	// lookup. The cache always equals m.pages[lastIdx] — writablePage
	// refreshes it whenever a copy-on-write clone replaces the mapping.
	lastIdx  Word
	lastPage *page
}

// New returns an empty memory in which every address reads zero.
func New() *Memory {
	return &Memory{pages: make(map[Word]*page)}
}

// Load returns the word at addr.
func (m *Memory) Load(addr Word) Word {
	m.stats.Loads++
	idx := addr >> PageShift
	if p := m.lastPage; p != nil && m.lastIdx == idx {
		return p.data[addr&pageMask]
	}
	p, ok := m.pages[idx]
	if !ok {
		return 0
	}
	m.lastIdx, m.lastPage = idx, p
	return p.data[addr&pageMask]
}

// Peek returns the word at addr without counting a load; used by inspection
// and comparison code paths that should not perturb statistics.
func (m *Memory) Peek(addr Word) Word {
	p, ok := m.pages[addr>>PageShift]
	if !ok {
		return 0
	}
	return p.data[addr&pageMask]
}

// writablePage returns the page containing addr, materialising or privatising
// it as needed so the caller may write to it.
func (m *Memory) writablePage(idx Word) *page {
	p := m.lastPage
	if p == nil || m.lastIdx != idx {
		var ok bool
		p, ok = m.pages[idx]
		if !ok {
			p = newPage()
			m.pages[idx] = p
			m.stats.PagesNew++
		}
	}
	if p.refs.Load() > 1 {
		c := p.clone()
		p.refs.Add(-1)
		m.pages[idx] = c
		m.stats.PagesCopied++
		p = c
	}
	m.lastIdx, m.lastPage = idx, p
	return p
}

// Store writes val at addr, copying the containing page first if it is
// shared with a snapshot. Writing zero to an unmaterialised page is a no-op,
// so zero-filled data segments stay sparse.
func (m *Memory) Store(addr Word, val Word) {
	m.stats.Stores++
	idx := addr >> PageShift
	if m.lastPage == nil || m.lastIdx != idx {
		if _, ok := m.pages[idx]; !ok && val == 0 {
			return
		}
	}
	p := m.writablePage(idx)
	off := addr & pageMask
	if p.data[off] == val {
		return
	}
	p.data[off] = val
	p.hashOK = false
}

// StoreRange writes vals at consecutive addresses starting at addr.
func (m *Memory) StoreRange(addr Word, vals []Word) {
	for i, v := range vals {
		m.Store(addr+Word(i), v)
	}
}

// LoadRange reads n consecutive words starting at addr.
func (m *Memory) LoadRange(addr Word, n int) []Word {
	out := make([]Word, n)
	for i := range out {
		out[i] = m.Load(addr + Word(i))
	}
	return out
}

// Stats returns accumulated access and copy-on-write counters.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the counters; the cost model does this at epoch
// boundaries to charge copy-on-write traffic to the correct epoch.
func (m *Memory) ResetStats() { m.stats = Stats{} }

// PageCount reports the number of materialised pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// Hash returns an order-independent hash of the full memory image.
// Semantically equal memories (same value at every address) hash equally
// regardless of paging history: all-zero pages contribute nothing.
func (m *Memory) Hash() uint64 {
	var h uint64
	for idx, p := range m.pages {
		ch := p.contentHash()
		if ch == zeroPageHash {
			continue
		}
		h ^= mix(uint64(idx), ch)
	}
	return h
}

// mix combines a page index with its content hash into a single word with
// good avalanche behaviour, so that xor-combining across pages is safe.
func mix(idx, content uint64) uint64 {
	x := idx*0x9e3779b97f4a7c15 ^ content
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Snapshot freezes the current contents. The snapshot shares pages with m;
// subsequent writes to m copy pages lazily and never disturb the snapshot.
func (m *Memory) Snapshot() *Snapshot {
	pages := make(map[Word]*page, len(m.pages))
	for idx, p := range m.pages {
		p.refs.Add(1)
		pages[idx] = p
	}
	return &Snapshot{pages: pages}
}

// Clone returns an independent writable memory with the same contents,
// sharing pages copy-on-write with m.
func (m *Memory) Clone() *Memory {
	pages := make(map[Word]*page, len(m.pages))
	for idx, p := range m.pages {
		p.refs.Add(1)
		pages[idx] = p
	}
	return &Memory{pages: pages}
}

// DiffPages returns the indices of pages whose content differs between m and
// other, including pages present in only one of them (unless all-zero).
// Used by divergence diagnostics to report *where* two executions differ.
func (m *Memory) DiffPages(other *Memory) []Word {
	var out []Word
	seen := make(map[Word]bool)
	for idx, p := range m.pages {
		seen[idx] = true
		q, ok := other.pages[idx]
		if ok {
			if p == q || p.contentHash() == q.contentHash() {
				continue
			}
			out = append(out, idx)
			continue
		}
		if p.contentHash() != zeroPageHash {
			out = append(out, idx)
		}
	}
	for idx, q := range other.pages {
		if seen[idx] {
			continue
		}
		if q.contentHash() != zeroPageHash {
			out = append(out, idx)
		}
	}
	return out
}

// Snapshot is an immutable memory image. It can be rehydrated into a
// writable Memory in O(pages) without copying page bodies.
type Snapshot struct {
	pages    map[Word]*page
	released bool
}

// Restore returns a writable memory whose initial contents equal the
// snapshot. Pages are shared copy-on-write.
func (s *Snapshot) Restore() *Memory {
	if s.released {
		panic("mem: Restore on released snapshot")
	}
	pages := make(map[Word]*page, len(s.pages))
	for idx, p := range s.pages {
		p.refs.Add(1)
		pages[idx] = p
	}
	return &Memory{pages: pages}
}

// Hash returns the order-independent content hash of the snapshot.
func (s *Snapshot) Hash() uint64 {
	var h uint64
	for idx, p := range s.pages {
		ch := p.contentHash()
		if ch == zeroPageHash {
			continue
		}
		h ^= mix(uint64(idx), ch)
	}
	return h
}

// Peek reads a word from the snapshot.
func (s *Snapshot) Peek(addr Word) Word {
	p, ok := s.pages[addr>>PageShift]
	if !ok {
		return 0
	}
	return p.data[addr&pageMask]
}

// PageCount reports the number of pages retained by the snapshot.
func (s *Snapshot) PageCount() int { return len(s.pages) }

// Release drops the snapshot's page references so future writes by sharers
// need not copy. Using the snapshot after Release panics.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	for _, p := range s.pages {
		p.refs.Add(-1)
	}
	s.pages = nil
}

// String summarises the snapshot for debugging.
func (s *Snapshot) String() string {
	if s.released {
		return "Snapshot(released)"
	}
	return fmt.Sprintf("Snapshot(%d pages, hash=%016x)", len(s.pages), s.Hash())
}
