package exp

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg restricts experiments to a two-workload subset so the harness
// logic is exercised end to end without running the full evaluation.
func quickCfg() Config {
	return Config{Seed: 13, Workloads: []string{"kvdb", "radix"}}
}

func TestOverheadRowsSane(t *testing.T) {
	rows := Overhead(quickCfg(), 2, 2)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NativeCyc <= 0 || r.RecordCyc <= r.NativeCyc {
			t.Fatalf("implausible row: %+v", r)
		}
		if r.Overhead < 0 || r.Overhead > 3 {
			t.Fatalf("overhead out of band: %+v", r)
		}
		if r.Divergences != 0 {
			t.Fatalf("race-free workload diverged: %+v", r)
		}
	}
	if m := MeanOverhead(rows); m <= 0 || m > 3 {
		t.Fatalf("mean overhead %f", m)
	}
}

func TestUtilizedCostsMoreThanSpare(t *testing.T) {
	cfg := quickCfg()
	spare := MeanOverhead(Overhead(cfg, 2, 2))
	util := MeanOverhead(Overhead(cfg, 2, 0))
	if util <= spare {
		t.Fatalf("utilized (%f) not costlier than spare (%f)", util, spare)
	}
	// The utilized configuration runs both executions on the same cores:
	// expect roughly a doubling.
	if util < 0.5 || util > 2.0 {
		t.Fatalf("utilized overhead %f outside the ~2x band", util)
	}
}

func TestFourThreadsCostMoreThanTwo(t *testing.T) {
	cfg := quickCfg()
	two := MeanOverhead(Overhead(cfg, 2, 2))
	four := MeanOverhead(Overhead(cfg, 4, 4))
	if four <= two {
		t.Fatalf("4-thread overhead (%f) not above 2-thread (%f)", four, two)
	}
}

func TestLogSizeRowsSane(t *testing.T) {
	rows := LogSize(quickCfg())
	for _, r := range rows {
		if r.DPBytes <= 0 || r.CrewBytes <= 0 || r.UniBytes <= 0 {
			t.Fatalf("empty logs: %+v", r)
		}
		// DoublePlay's log never exceeds CREW's (which needs order + input).
		if r.DPBytes > r.CrewBytes {
			t.Fatalf("dp log larger than crew: %+v", r)
		}
		// Per-section compression never grows the file (sections keep the
		// smaller encoding), and seeking one epoch must touch no more of
		// the file than decoding every epoch does.
		if r.CompBytes <= 0 || r.CompBytes > r.SectBytes {
			t.Fatalf("compressed file larger than raw: %+v", r)
		}
		if r.SeekBytes <= 0 || r.SeekBytes > r.ScanBytes {
			t.Fatalf("seek touched more bytes than a full scan: %+v", r)
		}
	}
}

func TestReplaySpeedShape(t *testing.T) {
	rows := ReplaySpeed(quickCfg(), 4)
	for _, r := range rows {
		if r.SeqRatio < 1.5 {
			t.Fatalf("sequential replay implausibly fast for a compute workload: %+v", r)
		}
		if r.ParRatio > r.SeqRatio {
			t.Fatalf("parallel replay slower than sequential: %+v", r)
		}
		if r.ParRatio > 1.6 {
			t.Fatalf("epoch-parallel replay should be near-native: %+v", r)
		}
	}
}

func TestDivergenceExperimentRecovers(t *testing.T) {
	cfg := Config{Seed: 13}
	rows := Divergence(cfg, 3)
	if len(rows) != len(RacySet) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ReplaysOK != r.Seeds {
			t.Fatalf("not every recording replayed: %+v", r)
		}
		if r.RacyAddrs == 0 {
			t.Fatalf("race detector found nothing on %s", r.Workload)
		}
	}
}

func TestSpareSweepMonotoneAboveW(t *testing.T) {
	cfg := Config{Seed: 13}
	rows := SpareSweep(cfg)
	byWl := map[string]map[int]float64{}
	for _, r := range rows {
		if byWl[r.Workload] == nil {
			byWl[r.Workload] = map[int]float64{}
		}
		byWl[r.Workload][r.Spares] = r.Overhead
	}
	for wl, pts := range byWl {
		// With spares >= workers (4), adding more spares must not help.
		if pts[8] > pts[4]+0.02 {
			t.Fatalf("%s: overhead grew past saturation: %v", wl, pts)
		}
		// Fewer spares than workers must hurt.
		if pts[2] <= pts[4] {
			t.Fatalf("%s: starved pipeline not slower: %v", wl, pts)
		}
	}
}

func TestAblationShowsGateValue(t *testing.T) {
	cfg := Config{Seed: 13, Workloads: []string{"kvdb", "fft"}}
	rows := Ablation(cfg)
	var kvdb, fft AblationRow
	for _, r := range rows {
		switch r.Workload {
		case "kvdb":
			kvdb = r
		case "fft":
			fft = r
		}
	}
	if kvdb.DivWithGate != 0 {
		t.Fatalf("kvdb diverged with the gate: %+v", kvdb)
	}
	if kvdb.DivNoGate == 0 {
		t.Fatalf("kvdb (lock-striped) should diverge without the gate: %+v", kvdb)
	}
	if fft.DivNoGate != 0 {
		t.Fatalf("fft (barrier-only) should not need the gate: %+v", fft)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	cfg := quickCfg()
	var buf bytes.Buffer
	RenderOverhead(&buf, cfg, 2, 2, "F1 test")
	RenderLogSize(&buf, cfg)
	out := buf.String()
	for _, want := range []string{"F1 test", "AVERAGE", "kvdb", "radix", "dp bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "Title", []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := buf.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "333") {
		t.Fatalf("table output:\n%s", out)
	}
}

func TestVerifySkipStudy(t *testing.T) {
	cfg := Config{Seed: 13, Workloads: []string{"sigping", "racey", "kvdb"}}
	rows := VerifySkip(cfg, 2, 2)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]VerifySkipRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		// VerifySkip itself panics on the soundness cross-checks; here we
		// check the reported numbers are coherent.
		if r.Skipped != 0 && r.Skipped != r.Epochs {
			t.Fatalf("partial skip is impossible by construction: %+v", r)
		}
		if r.Skipped == 0 && r.CertCyc != r.AlwaysCyc {
			t.Fatalf("fallback changed the recording cost: %+v", r)
		}
	}
	sp := byName["sigping"]
	if sp.CertStatus != "race-free" || sp.Skipped != sp.Epochs || sp.Epochs == 0 {
		t.Fatalf("sigping not certified: %+v", sp)
	}
	if sp.CertCyc >= sp.AlwaysCyc {
		t.Fatalf("certified sigping shows no overhead win: %+v", sp)
	}
	if r := byName["racey"]; r.CertStatus != "possibly-racy" || r.Skipped != 0 {
		t.Fatalf("racey mis-certified: %+v", r)
	}
	if r := byName["kvdb"]; r.CertStatus != "incomplete" || r.Skipped != 0 {
		t.Fatalf("kvdb mis-certified: %+v", r)
	}

	var buf bytes.Buffer
	RenderVerifySkip(&buf, cfg, 2, 2)
	if !strings.Contains(buf.String(), "certified verify-skip") {
		t.Fatal("render missing title")
	}
}
