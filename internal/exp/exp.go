// Package exp implements the evaluation harness: one runner per table or
// figure in the paper, each returning structured rows and able to render
// itself as a text table. cmd/dpbench and the repository benchmarks are
// thin wrappers over this package; EXPERIMENTS.md records its output.
package exp

import (
	"fmt"
	"io"
	"strings"

	"doubleplay/internal/core"
	"doubleplay/internal/profile"
	"doubleplay/internal/simos"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

// Config holds the knobs shared by every experiment.
type Config struct {
	Seed        int64
	Scale       int
	EpochCycles int64
	Costs       *vm.CostModel

	// Adaptive enables the in-recorder spare-slot controller for every
	// recording an experiment performs (dpbench -adaptive), bounded to
	// [AdaptiveMinSpares, AdaptiveMaxSpares] active slots (core defaults
	// apply when zero).
	Adaptive          bool
	AdaptiveMinSpares int
	AdaptiveMaxSpares int

	// VerifyPolicy selects the recorder's epoch verification policy for
	// every recording an experiment performs (dpbench -verify-policy).
	// The VerifySkip experiment ignores it and compares both policies.
	VerifyPolicy core.VerifyPolicy

	// Workloads, when non-empty, overrides the default benchmark list
	// (EvalSet) for every experiment — used by quick runs and tests.
	Workloads []string

	// Trace, when non-nil, receives the full timeline of every recording
	// and replay an experiment performs (dpbench -trace). Tracing is purely
	// observational: experiment numbers are identical with or without it.
	// Both the buffered Sink and the streaming StreamSink work here.
	Trace trace.Recorder

	// Metrics, when non-nil, aggregates per-run counters and distributions
	// across every recording an experiment performs (dpbench -metrics).
	Metrics *trace.Registry

	// Profile, when non-nil, accumulates the deterministic guest profile
	// of every recording an experiment performs (dpbench -guest-profile).
	// Profiling is observational: experiment numbers are unchanged.
	Profile *profile.Profile
}

// evalSet returns the benchmark list this configuration selects.
func (c Config) evalSet() []string {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return EvalSet
}

func (c Config) norm() Config {
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.EpochCycles <= 0 {
		c.EpochCycles = core.DefaultEpochCycles
	}
	return c
}

// EvalSet is the benchmark list used by the overhead/log/replay
// experiments: the paper's client, server, and scientific programs.
var EvalSet = []string{"pbzip", "pfscan", "aget", "webserve", "kvdb", "fft", "lu", "radix", "ocean", "water"}

// RacySet is the list used by the divergence experiments.
var RacySet = []string{"racey", "webserve-racy"}

// build constructs a fresh instance of a named workload.
func build(name string, workers int, cfg Config) (*workloads.Workload, *workloads.Built) {
	wl := workloads.Get(name)
	if wl == nil {
		panic("exp: unknown workload " + name)
	}
	return wl, wl.Build(workloads.Params{Workers: workers, Scale: cfg.Scale, Seed: cfg.Seed})
}

// native measures the plain parallel execution of a fresh instance.
func native(name string, workers int, cfg Config) *core.NativeResult {
	_, bt := build(name, workers, cfg)
	res, err := core.RunNative(bt.Prog, bt.World, workers, cfg.Seed, cfg.Costs)
	if err != nil {
		panic(fmt.Sprintf("exp: native %s: %v", name, err))
	}
	return res
}

// record runs DoublePlay recording on a fresh instance.
func record(name string, workers, spares int, cfg Config) (*core.Result, *workloads.Built) {
	_, bt := build(name, workers, cfg)
	res, err := core.Record(bt.Prog, bt.World, core.Options{
		Workers:           workers,
		RecordCPUs:        workers,
		SpareCPUs:         spares,
		EpochCycles:       cfg.EpochCycles,
		Seed:              cfg.Seed,
		Costs:             cfg.Costs,
		Adaptive:          cfg.Adaptive,
		AdaptiveMinSpares: cfg.AdaptiveMinSpares,
		AdaptiveMaxSpares: cfg.AdaptiveMaxSpares,
		VerifyPolicy:      cfg.VerifyPolicy,
		Trace:             cfg.Trace,
		Metrics:           cfg.Metrics,
		Profile:           cfg.Profile,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: record %s: %v", name, err))
	}
	return res, bt
}

// osFor wraps a built workload's world in the syscall handler.
func osFor(bt *workloads.Built) vm.SyscallHandler { return simos.NewOS(bt.World) }

// coreRecordNoGate records with sync-order enforcement disabled and returns
// the divergence count (the ablation configuration).
func coreRecordNoGate(bt *workloads.Built, workers int, cfg Config) (int, error) {
	res, err := core.Record(bt.Prog, bt.World, core.Options{
		Workers:                workers,
		RecordCPUs:             workers,
		SpareCPUs:              workers,
		EpochCycles:            cfg.EpochCycles,
		Seed:                   cfg.Seed,
		Costs:                  cfg.Costs,
		DisableSyncEnforcement: true,
	})
	if err != nil {
		return 0, err
	}
	return res.Stats.Divergences, nil
}

// pct formats a ratio-1 as a percentage.
func pct(over float64) string { return fmt.Sprintf("%.1f%%", over*100) }

// ratio formats a ratio with two decimals and an x suffix.
func ratio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// Table renders rows as an aligned text table.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// mean returns the arithmetic mean.
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}
