package exp

import (
	"bytes"
	"fmt"
	"io"

	"doubleplay/internal/baseline"
	"doubleplay/internal/core"
	"doubleplay/internal/dplog"
	"doubleplay/internal/race"
	"doubleplay/internal/replay"
	"doubleplay/internal/sched"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

// --- T1: benchmark characteristics -------------------------------------------

// CharRow describes one workload's execution profile (Table 1).
type CharRow struct {
	Workload  string
	Kind      string
	Workers   int
	Retired   int64
	SyncOps   int
	Syscalls  int
	Pages     int
	Epochs    int
	NativeCyc int64
}

// Table1 profiles every evaluation workload.
func Table1(cfg Config) []CharRow {
	cfg = cfg.norm()
	var rows []CharRow
	for _, name := range cfg.evalSet() {
		wl := workloads.Get(name)
		for _, workers := range []int{2, 4} {
			nat := native(name, workers, cfg)
			res, _ := record(name, workers, workers, cfg)
			last := res.Boundaries[len(res.Boundaries)-1]
			rows = append(rows, CharRow{
				Workload:  name,
				Kind:      wl.Kind,
				Workers:   workers,
				Retired:   res.Stats.Retired,
				SyncOps:   res.Stats.SyncEvents,
				Syscalls:  res.Stats.Syscalls,
				Pages:     last.MappedPages,
				Epochs:    res.Stats.Epochs,
				NativeCyc: nat.Cycles,
			})
		}
	}
	return rows
}

// RenderTable1 runs and prints T1.
func RenderTable1(w io.Writer, cfg Config) {
	rows := Table1(cfg)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, r.Kind, fmt.Sprint(r.Workers), fmt.Sprint(r.Retired),
			fmt.Sprint(r.SyncOps), fmt.Sprint(r.Syscalls), fmt.Sprint(r.Pages),
			fmt.Sprint(r.Epochs), fmt.Sprint(r.NativeCyc)}
	}
	Table(w, "T1: benchmark characteristics",
		[]string{"workload", "kind", "threads", "instrs", "sync ops", "syscalls", "pages", "epochs", "native cyc"}, out)
}

// --- F1/F2/F3: logging overhead ----------------------------------------------

// OverheadRow is one bar of the logging-overhead figures.
type OverheadRow struct {
	Workload    string
	Workers     int
	Spares      int
	NativeCyc   int64
	RecordCyc   int64 // uniparallel completion time
	Overhead    float64
	Divergences int
}

// Overhead measures recording overhead for every evaluation workload at the
// given worker count with the given spare cores (F1: workers=2, F2:
// workers=4; F3 uses spares=0).
func Overhead(cfg Config, workers, spares int) []OverheadRow {
	cfg = cfg.norm()
	var rows []OverheadRow
	for _, name := range cfg.evalSet() {
		nat := native(name, workers, cfg)
		res, _ := record(name, workers, spares, cfg)
		rows = append(rows, OverheadRow{
			Workload:    name,
			Workers:     workers,
			Spares:      spares,
			NativeCyc:   nat.Cycles,
			RecordCyc:   res.Stats.CompletionCycles,
			Overhead:    float64(res.Stats.CompletionCycles)/float64(nat.Cycles) - 1,
			Divergences: res.Stats.Divergences,
		})
	}
	return rows
}

// MeanOverhead averages the overhead column.
func MeanOverhead(rows []OverheadRow) float64 {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = r.Overhead
	}
	return mean(vals)
}

// RenderOverhead prints an overhead figure.
func RenderOverhead(w io.Writer, cfg Config, workers, spares int, title string) {
	rows := Overhead(cfg, workers, spares)
	out := make([][]string, 0, len(rows)+1)
	for _, r := range rows {
		out = append(out, []string{r.Workload, fmt.Sprint(r.Workers), fmt.Sprint(r.Spares),
			fmt.Sprint(r.NativeCyc), fmt.Sprint(r.RecordCyc), pct(r.Overhead), fmt.Sprint(r.Divergences)})
	}
	out = append(out, []string{"AVERAGE", "", "", "", "", pct(MeanOverhead(rows)), ""})
	Table(w, title,
		[]string{"workload", "threads", "spares", "native cyc", "record cyc", "overhead", "divergences"}, out)
}

// --- T2: log sizes -------------------------------------------------------------

// LogSizeRow compares DoublePlay's replay log with the CREW ownership log,
// and measures the v6 on-disk container: sectioned size with and without
// per-section compression, plus the read locality the section index buys
// (bytes touched seeking one epoch vs scanning all of them).
type LogSizeRow struct {
	Workload  string
	Retired   int64
	DPBytes   int
	DPPerM    float64 // bytes per million instructions
	CrewBytes int
	CrewPerM  float64
	CrewTrans int64
	UniBytes  int

	SectBytes int   // v6 sectioned file, raw sections
	CompBytes int   // v6 sectioned file, per-section flate (the on-disk default)
	SeekBytes int64 // bytes touched: open + seek the last epoch
	ScanBytes int64 // bytes touched: open + decode every epoch in order
}

// countingAt counts the bytes fetched through an io.ReaderAt.
type countingAt struct {
	r io.ReaderAt
	n int64
}

func (c *countingAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := c.r.ReadAt(p, off)
	c.n += int64(n)
	return n, err
}

// seekCost opens an encoded log over byte-counting readers and reports
// the bytes touched by (a) seeking straight to the last epoch and (b)
// decoding every epoch in order through the same reader API.
func seekCost(name string, data []byte) (seek, scan int64) {
	open := func() (*countingAt, *dplog.Reader) {
		cr := &countingAt{r: bytes.NewReader(data)}
		rd, err := dplog.OpenReader(cr, int64(len(data)))
		if err != nil {
			panic(fmt.Sprintf("exp: open log %s: %v", name, err))
		}
		return cr, rd
	}
	cr, rd := open()
	if _, err := rd.Seek(rd.NumSections() - 1); err != nil {
		panic(fmt.Sprintf("exp: seek %s: %v", name, err))
	}
	seek = cr.n
	cr, rd = open()
	for i := 0; i < rd.NumSections(); i++ {
		if _, err := rd.EpochAt(i); err != nil {
			panic(fmt.Sprintf("exp: scan %s: %v", name, err))
		}
	}
	return seek, cr.n
}

// LogSize measures log sizes at 4 worker threads.
func LogSize(cfg Config) []LogSizeRow {
	cfg = cfg.norm()
	const workers = 4
	var rows []LogSizeRow
	for _, name := range cfg.evalSet() {
		res, _ := record(name, workers, workers, cfg)
		_, bt := build(name, workers, cfg)
		crew, err := baseline.RunCREW(bt.Prog, bt.World, workers, cfg.Seed, cfg.Costs, cfg.Trace)
		if err != nil {
			panic(fmt.Sprintf("exp: crew %s: %v", name, err))
		}
		_, bt2 := build(name, workers, cfg)
		uni, err := baseline.RunUniprocessor(bt2.Prog, bt2.World, cfg.Costs, cfg.Trace)
		if err != nil {
			panic(fmt.Sprintf("exp: uni %s: %v", name, err))
		}
		raw := dplog.MarshalBytesWith(res.Recording, dplog.EncodeOptions{})
		comp := dplog.MarshalBytes(res.Recording)
		seekB, scanB := seekCost(name, comp)
		m := float64(res.Stats.Retired) / 1e6
		rows = append(rows, LogSizeRow{
			Workload:  name,
			Retired:   res.Stats.Retired,
			DPBytes:   res.Stats.ReplayBytes,
			DPPerM:    float64(res.Stats.ReplayBytes) / m,
			CrewBytes: crew.LogBytes,
			CrewPerM:  float64(crew.LogBytes) / m,
			CrewTrans: crew.Transitions,
			UniBytes:  uni.LogBytes,
			SectBytes: len(raw),
			CompBytes: len(comp),
			SeekBytes: seekB,
			ScanBytes: scanB,
		})
	}
	return rows
}

// RenderLogSize prints T2.
func RenderLogSize(w io.Writer, cfg Config) {
	rows := LogSize(cfg)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.Retired), fmt.Sprint(r.DPBytes),
			fmt.Sprintf("%.0f", r.DPPerM), fmt.Sprint(r.CrewBytes), fmt.Sprintf("%.0f", r.CrewPerM),
			fmt.Sprint(r.CrewTrans), fmt.Sprint(r.UniBytes),
			fmt.Sprint(r.SectBytes), fmt.Sprint(r.CompBytes),
			fmt.Sprint(r.SeekBytes), fmt.Sprint(r.ScanBytes)}
	}
	Table(w, "T2: log size, DoublePlay vs CREW order logging (4 threads)",
		[]string{"workload", "instrs", "dp bytes", "dp B/Minstr", "crew bytes", "crew B/Minstr",
			"crew faults", "uni bytes", "v6 raw", "v6 file", "seek B", "scan B"}, out)
}

// --- F4: replay speed -----------------------------------------------------------

// ReplayRow is one bar of the replay-speed figure.
type ReplayRow struct {
	Workload  string
	Workers   int
	NativeCyc int64
	SeqCyc    int64
	ParCyc    int64
	SeqRatio  float64
	ParRatio  float64
}

// ReplaySpeed measures sequential vs epoch-parallel replay time.
func ReplaySpeed(cfg Config, workers int) []ReplayRow {
	cfg = cfg.norm()
	var rows []ReplayRow
	for _, name := range cfg.evalSet() {
		nat := native(name, workers, cfg)
		res, bt := record(name, workers, workers, cfg)
		seq, err := replay.Sequential(bt.Prog, res.Recording, cfg.Costs, cfg.Trace)
		if err != nil {
			panic(fmt.Sprintf("exp: seq replay %s: %v", name, err))
		}
		par, err := replay.Parallel(bt.Prog, res.Recording, res.Boundaries, workers, cfg.Costs, cfg.Trace)
		if err != nil {
			panic(fmt.Sprintf("exp: par replay %s: %v", name, err))
		}
		rows = append(rows, ReplayRow{
			Workload:  name,
			Workers:   workers,
			NativeCyc: nat.Cycles,
			SeqCyc:    seq.Cycles,
			ParCyc:    par.Cycles,
			SeqRatio:  float64(seq.Cycles) / float64(nat.Cycles),
			ParRatio:  float64(par.Cycles) / float64(nat.Cycles),
		})
	}
	return rows
}

// RenderReplaySpeed prints F4.
func RenderReplaySpeed(w io.Writer, cfg Config, workers int) {
	rows := ReplaySpeed(cfg, workers)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.Workers), fmt.Sprint(r.NativeCyc),
			fmt.Sprint(r.SeqCyc), ratio(r.SeqRatio), fmt.Sprint(r.ParCyc), ratio(r.ParRatio)}
	}
	Table(w, fmt.Sprintf("F4: replay time normalized to native (%d threads)", workers),
		[]string{"workload", "threads", "native cyc", "seq cyc", "seq/native", "par cyc", "par/native"}, out)
}

// --- F5: epoch-length sensitivity -----------------------------------------------

// EpochSweepRow is one point of the epoch-length sweep.
type EpochSweepRow struct {
	Workload    string
	EpochCycles int64
	Overhead    float64
	Epochs      int
	Divergences int
}

// EpochSweepLens are the swept epoch lengths.
var EpochSweepLens = []int64{12_500, 25_000, 50_000, 100_000, 200_000, 400_000}

// EpochSweepSet is the workload subset used for the sweep.
var EpochSweepSet = []string{"pbzip", "ocean", "webserve"}

// EpochSweep measures overhead as a function of epoch length (4 threads).
func EpochSweep(cfg Config) []EpochSweepRow {
	cfg = cfg.norm()
	const workers = 4
	var rows []EpochSweepRow
	for _, name := range EpochSweepSet {
		nat := native(name, workers, cfg)
		for _, el := range EpochSweepLens {
			c := cfg
			c.EpochCycles = el
			res, _ := record(name, workers, workers, c)
			rows = append(rows, EpochSweepRow{
				Workload:    name,
				EpochCycles: el,
				Overhead:    float64(res.Stats.CompletionCycles)/float64(nat.Cycles) - 1,
				Epochs:      res.Stats.Epochs,
				Divergences: res.Stats.Divergences,
			})
		}
	}
	return rows
}

// RenderEpochSweep prints F5.
func RenderEpochSweep(w io.Writer, cfg Config) {
	rows := EpochSweep(cfg)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.EpochCycles), fmt.Sprint(r.Epochs),
			pct(r.Overhead), fmt.Sprint(r.Divergences)}
	}
	Table(w, "F5: overhead vs epoch length (4 threads)",
		[]string{"workload", "epoch cycles", "epochs", "overhead", "divergences"}, out)
}

// --- T3: divergence and forward recovery ----------------------------------------

// DivergenceRow summarises racy-workload behaviour across seeds.
type DivergenceRow struct {
	Workload        string
	Seeds           int
	Epochs          int
	Divergences     int
	HashRecoveries  int
	RerunRecoveries int
	ReplaysOK       int
	RacyAddrs       int // distinct racy addresses the HB detector reports
	SquashedCyc     int64
}

// Divergence records each racy workload under many seeds, verifying that
// every recovered log still replays, and runs the happens-before detector
// to attribute the divergences to data races.
func Divergence(cfg Config, seeds int) []DivergenceRow {
	cfg = cfg.norm()
	if seeds <= 0 {
		seeds = 12
	}
	const workers = 4
	var rows []DivergenceRow
	for _, name := range RacySet {
		row := DivergenceRow{Workload: name, Seeds: seeds}
		for s := 0; s < seeds; s++ {
			c := cfg
			c.Seed = cfg.Seed + int64(s)*101
			res, bt := record(name, workers, workers, c)
			row.Epochs += res.Stats.Epochs
			row.Divergences += res.Stats.Divergences
			row.HashRecoveries += res.Stats.HashRecoveries
			row.RerunRecoveries += res.Stats.RerunRecoveries
			row.SquashedCyc += res.Stats.SquashedCycles
			if _, err := replay.Sequential(bt.Prog, res.Recording, cfg.Costs, cfg.Trace); err == nil {
				row.ReplaysOK++
			}
		}
		// Race attribution: one uniprocessor run under the detector.
		wl := workloads.Get(name)
		bt := wl.Build(workloads.Params{Workers: workers, Scale: cfg.Scale, Seed: cfg.Seed})
		det := race.NewDetector(0)
		m := vm.NewMachine(bt.Prog, osFor(bt), cfg.Costs)
		m.Hooks.OnSync = det.OnSync
		m.Hooks.OnMemAccess = det.OnMemAccess
		uni := sched.NewUni(m)
		if err := uni.Run(); err == nil {
			row.RacyAddrs = det.Count()
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderDivergence prints T3.
func RenderDivergence(w io.Writer, cfg Config, seeds int) {
	rows := Divergence(cfg, seeds)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.Seeds), fmt.Sprint(r.Epochs),
			fmt.Sprint(r.Divergences), fmt.Sprint(r.HashRecoveries), fmt.Sprint(r.RerunRecoveries),
			fmt.Sprintf("%d/%d", r.ReplaysOK, r.Seeds), fmt.Sprint(r.RacyAddrs), fmt.Sprint(r.SquashedCyc)}
	}
	Table(w, "T3: divergence and forward recovery on racy programs (4 threads)",
		[]string{"workload", "seeds", "epochs", "divergences", "adopt-recov", "rerun-recov", "replays ok", "racy addrs", "squashed cyc"}, out)
}

// --- F6: spare-core sweep ---------------------------------------------------------

// SpareRow is one point of the spare-core scalability figure.
type SpareRow struct {
	Workload string
	Spares   int
	Overhead float64
}

// SpareSweepSet is the workload subset for the spare-core sweep.
var SpareSweepSet = []string{"pbzip", "fft", "kvdb"}

// SpareSweep measures overhead vs available spare cores (4 threads).
func SpareSweep(cfg Config) []SpareRow {
	cfg = cfg.norm()
	const workers = 4
	var rows []SpareRow
	for _, name := range SpareSweepSet {
		nat := native(name, workers, cfg)
		for _, spares := range []int{0, 1, 2, 3, 4, 6, 8} {
			res, _ := record(name, workers, spares, cfg)
			rows = append(rows, SpareRow{
				Workload: name,
				Spares:   spares,
				Overhead: float64(res.Stats.CompletionCycles)/float64(nat.Cycles) - 1,
			})
		}
	}
	return rows
}

// RenderSpareSweep prints F6.
func RenderSpareSweep(w io.Writer, cfg Config) {
	rows := SpareSweep(cfg)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.Spares), pct(r.Overhead)}
	}
	Table(w, "F6: overhead vs spare cores (4 threads)",
		[]string{"workload", "spares", "overhead"}, out)
}

// --- T4: uniprocessor baseline ------------------------------------------------------

// UniRow compares DoublePlay against classic uniprocessor record/replay.
type UniRow struct {
	Workload    string
	Workers     int
	NativeCyc   int64
	UniCyc      int64
	UniSlowdown float64
	DPCyc       int64
	DPOverhead  float64
}

// UniBaseline measures the uniprocessor baseline slowdown (T4).
func UniBaseline(cfg Config, workers int) []UniRow {
	cfg = cfg.norm()
	var rows []UniRow
	for _, name := range cfg.evalSet() {
		nat := native(name, workers, cfg)
		_, bt := build(name, workers, cfg)
		uni, err := baseline.RunUniprocessor(bt.Prog, bt.World, cfg.Costs, cfg.Trace)
		if err != nil {
			panic(fmt.Sprintf("exp: uni %s: %v", name, err))
		}
		res, _ := record(name, workers, workers, cfg)
		rows = append(rows, UniRow{
			Workload:    name,
			Workers:     workers,
			NativeCyc:   nat.Cycles,
			UniCyc:      uni.Cycles,
			UniSlowdown: float64(uni.Cycles) / float64(nat.Cycles),
			DPCyc:       res.Stats.CompletionCycles,
			DPOverhead:  float64(res.Stats.CompletionCycles)/float64(nat.Cycles) - 1,
		})
	}
	return rows
}

// RenderUniBaseline prints T4.
func RenderUniBaseline(w io.Writer, cfg Config, workers int) {
	rows := UniBaseline(cfg, workers)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.Workers), fmt.Sprint(r.NativeCyc),
			fmt.Sprint(r.UniCyc), ratio(r.UniSlowdown), fmt.Sprint(r.DPCyc), pct(r.DPOverhead)}
	}
	Table(w, fmt.Sprintf("T4: uniprocessor R/R baseline vs DoublePlay (%d threads)", workers),
		[]string{"workload", "threads", "native cyc", "uni cyc", "uni slowdown", "dp cyc", "dp overhead"}, out)
}

// --- Ablation: sync-order enforcement ------------------------------------------------

// AblationRow compares divergence counts with and without the gate.
type AblationRow struct {
	Workload    string
	DivWithGate int
	DivNoGate   int
}

// Ablation disables sync-order enforcement during epoch-parallel runs: any
// lock-acquisition race then surfaces as a divergence, demonstrating why
// the gate is load-bearing (DESIGN.md decision 1).
func Ablation(cfg Config) []AblationRow {
	cfg = cfg.norm()
	const workers = 4
	var rows []AblationRow
	for _, name := range cfg.evalSet() {
		res, _ := record(name, workers, workers, cfg)
		_, bt := build(name, workers, cfg)
		noGate, err := coreRecordNoGate(bt, workers, cfg)
		if err != nil {
			panic(fmt.Sprintf("exp: ablation %s: %v", name, err))
		}
		rows = append(rows, AblationRow{
			Workload:    name,
			DivWithGate: res.Stats.Divergences,
			DivNoGate:   noGate,
		})
	}
	return rows
}

// --- Ablation: adaptive epoch growth -------------------------------------------

// AdaptiveRow compares fixed against growing epoch lengths.
type AdaptiveRow struct {
	Workload      string
	FixedEpochs   int
	FixedOverhead float64
	GrownEpochs   int
	GrownOverhead float64
	FirstEpochCyc int64 // divergence-detection latency bound early in the run
}

// AdaptiveSet is the workload subset for the adaptive-epoch ablation.
var AdaptiveSet = []string{"pbzip", "ocean", "webserve"}

// Adaptive contrasts fixed 25k-cycle epochs against epochs that start at
// 6.25k cycles and grow 1.5x per verified epoch: early divergences are
// caught fast, while steady-state overhead stays close to the fixed
// configuration (DESIGN.md decision follow-up).
func Adaptive(cfg Config) []AdaptiveRow {
	cfg = cfg.norm()
	const workers = 4
	set := AdaptiveSet
	if len(cfg.Workloads) > 0 {
		set = cfg.Workloads
	}
	var rows []AdaptiveRow
	for _, name := range set {
		nat := native(name, workers, cfg)
		fixed, _ := record(name, workers, workers, cfg)

		// Start at a quarter of the steady-state epoch length and grow back
		// up to it: early epochs bound divergence-detection latency 4x
		// tighter, while the pipeline drain (set by the final epoch's
		// length) matches the fixed configuration.
		_, bt := build(name, workers, cfg)
		grown, err := core.Record(bt.Prog, bt.World, core.Options{
			Workers:        workers,
			RecordCPUs:     workers,
			SpareCPUs:      workers,
			EpochCycles:    cfg.EpochCycles / 4,
			EpochGrowth:    1.5,
			EpochCyclesMax: cfg.EpochCycles,
			Seed:           cfg.Seed,
			Costs:          cfg.Costs,
		})
		if err != nil {
			panic(fmt.Sprintf("exp: adaptive %s: %v", name, err))
		}
		rows = append(rows, AdaptiveRow{
			Workload:      name,
			FixedEpochs:   fixed.Stats.Epochs,
			FixedOverhead: float64(fixed.Stats.CompletionCycles)/float64(nat.Cycles) - 1,
			GrownEpochs:   grown.Stats.Epochs,
			GrownOverhead: float64(grown.Stats.CompletionCycles)/float64(nat.Cycles) - 1,
			FirstEpochCyc: cfg.EpochCycles / 4,
		})
	}
	return rows
}

// RenderAdaptive prints the adaptive-epoch ablation.
func RenderAdaptive(w io.Writer, cfg Config) {
	rows := Adaptive(cfg)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.FixedEpochs), pct(r.FixedOverhead),
			fmt.Sprint(r.GrownEpochs), pct(r.GrownOverhead), fmt.Sprint(r.FirstEpochCyc)}
	}
	Table(w, "Ablation: fixed vs adaptive (growing) epoch length (4 threads)",
		[]string{"workload", "fixed epochs", "fixed overhead", "grown epochs", "grown overhead", "first epoch cyc"}, out)
}

// --- Extension study: adaptive spare-slot controller ---------------------------

// AdaptiveSpareRow compares a fixed spare count against the feedback
// controller for one workload: the controller starts at one active slot,
// bounded [1, workers], and should land between the two pins.
type AdaptiveSpareRow struct {
	Workload     string
	FixedLowOver float64 // pinned at 1 spare
	AdaptOver    float64 // controller, starting at 1
	FixedHiOver  float64 // pinned at workers spares
	Grows        int
	Shrinks      int
	FinalActive  int
}

// AdaptiveSpares measures the controller against the two pins it moves
// between (4 threads).
func AdaptiveSpares(cfg Config) []AdaptiveSpareRow {
	cfg = cfg.norm()
	const workers = 4
	set := SpareSweepSet
	if len(cfg.Workloads) > 0 {
		set = cfg.Workloads
	}
	fixed := cfg
	fixed.Adaptive = false
	adapt := cfg
	adapt.Adaptive = true
	adapt.AdaptiveMinSpares = 1
	adapt.AdaptiveMaxSpares = workers
	var rows []AdaptiveSpareRow
	for _, name := range set {
		nat := native(name, workers, cfg)
		over := func(res *core.Result) float64 {
			return float64(res.Stats.CompletionCycles)/float64(nat.Cycles) - 1
		}
		lo, _ := record(name, workers, 1, fixed)
		hi, _ := record(name, workers, workers, fixed)
		ad, _ := record(name, workers, 1, adapt)
		rows = append(rows, AdaptiveSpareRow{
			Workload:     name,
			FixedLowOver: over(lo),
			AdaptOver:    over(ad),
			FixedHiOver:  over(hi),
			Grows:        ad.Stats.SpareGrows,
			Shrinks:      ad.Stats.SpareShrinks,
			FinalActive:  ad.Stats.ActiveSpares,
		})
	}
	return rows
}

// RenderAdaptiveSpares prints the controller study.
func RenderAdaptiveSpares(w io.Writer, cfg Config) {
	rows := AdaptiveSpares(cfg)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, pct(r.FixedLowOver), pct(r.AdaptOver), pct(r.FixedHiOver),
			fmt.Sprint(r.Grows), fmt.Sprint(r.Shrinks), fmt.Sprint(r.FinalActive)}
	}
	Table(w, "Extension: adaptive spare-slot controller (4 threads, start 1, bounds [1,4])",
		[]string{"workload", "pinned@1", "adaptive", "pinned@4", "grows", "shrinks", "final"}, out)
}

// --- Extension study: sparse checkpoints vs replay speed ------------------------

// SparseReplayRow is one point of the checkpoint-memory/replay-speed
// trade-off study.
type SparseReplayRow struct {
	Workload  string
	Stride    int
	Kept      int   // checkpoints retained
	KeptPages int64 // Σ mapped pages across retained checkpoints
	ReplayCyc int64 // modelled segment-parallel replay time on 4 cores
}

// SparseReplaySet is the workload subset for the sparse-replay study.
var SparseReplaySet = []string{"ocean", "pbzip"}

// SparseReplay measures, for several thinning strides, how much checkpoint
// state must be retained and how long segment-parallel replay takes.
func SparseReplay(cfg Config) []SparseReplayRow {
	cfg = cfg.norm()
	const workers = 4
	set := SparseReplaySet
	if len(cfg.Workloads) > 0 {
		set = cfg.Workloads
	}
	var rows []SparseReplayRow
	for _, name := range set {
		res, bt := record(name, workers, workers, cfg)
		for _, stride := range []int{1, 2, 4, 8, 1 << 20} {
			sparse := res.ThinBoundaries(stride)
			rep, err := replay.ParallelSparse(bt.Prog, res.Recording, sparse, workers, cfg.Costs, cfg.Trace)
			if err != nil {
				panic(fmt.Sprintf("exp: sparse replay %s stride %d: %v", name, stride, err))
			}
			var pages int64
			for _, b := range sparse {
				pages += int64(b.MappedPages)
			}
			label := stride
			if stride > len(res.Boundaries) {
				label = len(res.Boundaries) // "keep only endpoints"
			}
			rows = append(rows, SparseReplayRow{
				Workload:  name,
				Stride:    label,
				Kept:      len(sparse),
				KeptPages: pages,
				ReplayCyc: rep.Cycles,
			})
		}
	}
	return rows
}

// RenderSparseReplay prints the sparse-replay study.
func RenderSparseReplay(w io.Writer, cfg Config) {
	rows := SparseReplay(cfg)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.Stride), fmt.Sprint(r.Kept),
			fmt.Sprint(r.KeptPages), fmt.Sprint(r.ReplayCyc)}
	}
	Table(w, "Extension: checkpoint retention vs segment-parallel replay speed (4 cores)",
		[]string{"workload", "stride", "checkpoints", "retained pages", "replay cyc"}, out)
}

// RenderAblation prints the ablation table.
func RenderAblation(w io.Writer, cfg Config) {
	rows := Ablation(cfg)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, fmt.Sprint(r.DivWithGate), fmt.Sprint(r.DivNoGate)}
	}
	Table(w, "Ablation: divergences with vs without sync-order enforcement (4 threads)",
		[]string{"workload", "with gate", "without gate"}, out)
}

// --- Extension: certified verify-skip ----------------------------------------

// VerifySkipRow compares one workload's recording overhead under full
// verification vs the certified skip, alongside its certificate status.
type VerifySkipRow struct {
	Workload   string
	CertStatus string
	Skipped    int // epochs committed without the epoch-parallel pass
	Epochs     int
	NativeCyc  int64
	AlwaysCyc  int64 // completion, VerifyAlways
	CertCyc    int64 // completion, VerifyCertified (== AlwaysCyc on fallback)
	AlwaysOver float64
	CertOver   float64
}

// VerifySkip runs every workload — the evaluation set, the racy set, and
// sigping — under both verification policies and reports the certificate
// decision and the overhead each policy pays. It also enforces the
// soundness cross-checks end to end: a workload with known races must
// never skip verification, and a certified recording must replay
// sequentially to the same final state as its fully verified twin.
func VerifySkip(cfg Config, workers, spares int) []VerifySkipRow {
	cfg = cfg.norm()
	cfg.VerifyPolicy = core.VerifyAlways
	names := cfg.Workloads
	if len(names) == 0 {
		names = append(append(append([]string{}, EvalSet...), RacySet...), "sigping")
	}
	var rows []VerifySkipRow
	for _, name := range names {
		wl, _ := build(name, workers, cfg)
		nat := native(name, workers, cfg)
		always, _ := record(name, workers, spares, cfg)
		ccfg := cfg
		ccfg.VerifyPolicy = core.VerifyCertified
		cert, cbt := record(name, workers, spares, ccfg)
		st := cert.Stats
		if wl.Racy && workers >= 2 && st.VerifySkipped > 0 {
			panic(fmt.Sprintf("exp: %s is marked racy but skipped verification — soundness bug", name))
		}
		if st.VerifySkipped > 0 {
			seq, err := replay.Sequential(cbt.Prog, cert.Recording, nil, nil)
			if err != nil {
				panic(fmt.Sprintf("exp: replaying certified %s: %v", name, err))
			}
			if seq.FinalHash != always.FinalHash {
				panic(fmt.Sprintf("exp: certified %s replayed to a different state than its verified twin", name))
			}
		}
		rows = append(rows, VerifySkipRow{
			Workload:   name,
			CertStatus: st.CertStatus,
			Skipped:    st.VerifySkipped,
			Epochs:     st.Epochs,
			NativeCyc:  nat.Cycles,
			AlwaysCyc:  always.Stats.CompletionCycles,
			CertCyc:    st.CompletionCycles,
			AlwaysOver: float64(always.Stats.CompletionCycles)/float64(nat.Cycles) - 1,
			CertOver:   float64(st.CompletionCycles)/float64(nat.Cycles) - 1,
		})
	}
	return rows
}

// RenderVerifySkip prints the certified verify-skip study.
func RenderVerifySkip(w io.Writer, cfg Config, workers, spares int) {
	rows := VerifySkip(cfg, workers, spares)
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Workload, r.CertStatus,
			fmt.Sprintf("%d/%d", r.Skipped, r.Epochs),
			fmt.Sprint(r.NativeCyc), fmt.Sprint(r.AlwaysCyc), fmt.Sprint(r.CertCyc),
			pct(r.AlwaysOver), pct(r.CertOver)}
	}
	Table(w, fmt.Sprintf("Extension: certified verify-skip (%d threads, %d spares)", workers, spares),
		[]string{"workload", "certificate", "skipped", "native cyc", "always cyc", "certified cyc",
			"overhead always", "overhead certified"}, out)
}
