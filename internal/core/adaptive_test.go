package core

import (
	"reflect"
	"testing"

	"doubleplay/internal/replay"
	"doubleplay/internal/trace"
	"doubleplay/internal/workloads"
)

// --- Hysteresis rule on synthetic lag series ---------------------------------

// TestControllerGrowsOnFill feeds a saturated, monotonically filling
// pipeline: positive lag slope with every epoch waiting for a slot.
func TestControllerGrowsOnFill(t *testing.T) {
	c := NewController(1, 4, 1)
	for i := 0; i < 40; i++ {
		c.Observe(i, int64(5000*(i+1)), true, 25000)
	}
	if c.Active() != 4 {
		t.Errorf("active = %d after a sustained fill, want the Max of 4", c.Active())
	}
	if c.Grows() != 3 || c.Shrinks() != 0 {
		t.Errorf("decisions = %d grows %d shrinks, want 3 grows 0 shrinks", c.Grows(), c.Shrinks())
	}
}

// TestControllerShrinksOnDrain feeds a drained pipeline: every epoch finds
// a free slot and lag stays within one epoch length.
func TestControllerShrinksOnDrain(t *testing.T) {
	c := NewController(1, 4, 4)
	for i := 0; i < 40; i++ {
		c.Observe(i, 1000, false, 25000)
	}
	if c.Active() != 1 {
		t.Errorf("active = %d after a sustained drain, want the Min of 1", c.Active())
	}
	if c.Shrinks() != 3 || c.Grows() != 0 {
		t.Errorf("decisions = %d grows %d shrinks, want 0 grows 3 shrinks", c.Grows(), c.Shrinks())
	}
}

// TestControllerClamps pins the [Min, Max] bounds: a controller already at
// a bound holds there no matter how loud the signal.
func TestControllerClamps(t *testing.T) {
	hi := NewController(2, 3, 3)
	for i := 0; i < 40; i++ {
		hi.Observe(i, int64(5000*(i+1)), true, 25000)
	}
	if hi.Active() != 3 || hi.Grows() != 0 {
		t.Errorf("at Max: active = %d grows = %d, want 3 and 0", hi.Active(), hi.Grows())
	}
	lo := NewController(2, 3, 2)
	for i := 0; i < 40; i++ {
		lo.Observe(i, 0, false, 25000)
	}
	if lo.Active() != 2 || lo.Shrinks() != 0 {
		t.Errorf("at Min: active = %d shrinks = %d, want 2 and 0", lo.Active(), lo.Shrinks())
	}
}

// TestControllerHoldsOnMixedSignal checks both halves of the hysteresis
// gate: a rising slope without saturation must not grow, and a saturated
// pipeline whose lag is flat must not grow either (it is keeping up at
// full occupancy — exactly where it should sit).
func TestControllerHoldsOnMixedSignal(t *testing.T) {
	c := NewController(1, 4, 2)
	for i := 0; i < 40; i++ {
		c.Observe(i, int64(5000*(i+1)), i%2 == 0, 25000)
	}
	if c.Grows() != 0 {
		t.Errorf("rising slope without saturation grew %d times", c.Grows())
	}
	c = NewController(1, 4, 2)
	for i := 0; i < 40; i++ {
		c.Observe(i, 40000, true, 25000)
	}
	if c.Grows() != 0 {
		t.Errorf("flat lag at full occupancy grew %d times", c.Grows())
	}
	// Saturated with large flat lag must not shrink either.
	if c.Shrinks() != 0 {
		t.Errorf("saturated pipeline shrank %d times", c.Shrinks())
	}
}

// TestControllerCooldown checks the quiet period: after a decision the
// controller refills a full window before it can act again, so back-to-back
// boundaries cannot cause back-to-back decisions.
func TestControllerCooldown(t *testing.T) {
	c := NewController(1, 8, 1)
	decisions := make([]int, 0, 4)
	for i := 0; i < 20; i++ {
		if d := c.Observe(i, int64(5000*(i+1)), true, 25000); d != 0 {
			decisions = append(decisions, i)
		}
	}
	for j := 1; j < len(decisions); j++ {
		if gap := decisions[j] - decisions[j-1]; gap < c.Window {
			t.Errorf("decisions at epochs %d and %d are %d apart, want >= window %d",
				decisions[j-1], decisions[j], gap, c.Window)
		}
	}
	if len(decisions) == 0 {
		t.Fatal("sustained fill caused no decisions")
	}
}

// --- Adaptive recordings through the real recorder ---------------------------

func adaptiveRecord(t *testing.T, name string, workers, spares, min, max int, sink trace.Recorder) (*Result, *workloads.Built) {
	t.Helper()
	wl := workloads.Get(name)
	if wl == nil {
		t.Fatalf("unknown workload %s", name)
	}
	bt := wl.Build(workloads.Params{Workers: workers, Scale: 1, Seed: 11})
	res, err := Record(bt.Prog, bt.World, Options{
		Workers: workers, RecordCPUs: workers, SpareCPUs: spares,
		Adaptive: true, AdaptiveMinSpares: min, AdaptiveMaxSpares: max,
		Seed: 11, Trace: sink,
	})
	if err != nil {
		t.Fatalf("adaptive record %s/%d: %v", name, workers, err)
	}
	return res, bt
}

// TestAdaptivePinnedMatchesFixed is the satellite guard: with Min == Max ==
// SpareCPUs the controller can never fire, and the recording — stats,
// hashes, and replay — must be bit-identical to the fixed-spares run of
// the same seed.
func TestAdaptivePinnedMatchesFixed(t *testing.T) {
	for _, name := range []string{"pbzip", "racey"} {
		fixed := goldenRecord(t, goldenRun{name: name, workers: 2}, nil, nil)
		pinned, bt := adaptiveRecord(t, name, 2, 2, 2, 2, nil)
		if pinned.Stats.SpareGrows != 0 || pinned.Stats.SpareShrinks != 0 {
			t.Fatalf("%s: pinned controller fired (%d grows, %d shrinks)",
				name, pinned.Stats.SpareGrows, pinned.Stats.SpareShrinks)
		}
		if !reflect.DeepEqual(fixed.Stats, pinned.Stats) {
			t.Errorf("%s: pinned adaptive stats differ from fixed:\nfixed  %+v\npinned %+v",
				name, fixed.Stats, pinned.Stats)
		}
		if fixed.FinalHash != pinned.FinalHash || fixed.OutputHash != pinned.OutputHash {
			t.Errorf("%s: pinned adaptive hashes differ from fixed", name)
		}
		rep, err := replay.Sequential(bt.Prog, pinned.Recording, nil, nil)
		if err != nil {
			t.Fatalf("%s: pinned adaptive replay: %v", name, err)
		}
		if rep.FinalHash != fixed.FinalHash {
			t.Errorf("%s: pinned adaptive replay hash %016x, fixed recording %016x",
				name, rep.FinalHash, fixed.FinalHash)
		}
	}
}

// TestAdaptiveGrowsUnderFill starts pbzip (4 workers) with a single active
// slot: the 1-spare pipeline fills (verification retires ~3x slower than
// boundaries arrive), so the controller must grow, and the adaptive run
// must complete earlier than the pinned 1-spare run.
func TestAdaptiveGrowsUnderFill(t *testing.T) {
	wl := workloads.Get("pbzip")
	bt := wl.Build(workloads.Params{Workers: 4, Scale: 1, Seed: 11})
	pinned, err := Record(bt.Prog, bt.World, Options{
		Workers: 4, RecordCPUs: 4, SpareCPUs: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewSink()
	res, _ := adaptiveRecord(t, "pbzip", 4, 1, 1, 4, sink)
	if res.Stats.SpareGrows == 0 {
		t.Fatal("controller never grew on a filling pipeline")
	}
	if res.Stats.ActiveSpares <= 1 {
		t.Errorf("ActiveSpares = %d at completion, want > 1", res.Stats.ActiveSpares)
	}
	if res.Stats.CompletionCycles >= pinned.Stats.CompletionCycles {
		t.Errorf("adaptive completion %d not better than pinned 1-spare %d",
			res.Stats.CompletionCycles, pinned.Stats.CompletionCycles)
	}
	// The controller narrates every decision: one ctl.enable, one ctl.grow
	// per grow decision, and a ctl.active sample per decision plus the
	// initial one.
	evs := sink.Events()
	if n := countEvents(evs, "ctl.enable", trace.PhaseInstant); n != 1 {
		t.Errorf("ctl.enable instants = %d, want 1", n)
	}
	if n := countEvents(evs, "ctl.grow", trace.PhaseInstant); n != res.Stats.SpareGrows {
		t.Errorf("ctl.grow instants = %d, Stats.SpareGrows = %d", n, res.Stats.SpareGrows)
	}
	if n := countEvents(evs, "ctl.shrink", trace.PhaseInstant); n != res.Stats.SpareShrinks {
		t.Errorf("ctl.shrink instants = %d, Stats.SpareShrinks = %d", n, res.Stats.SpareShrinks)
	}
	wantSamples := 1 + res.Stats.SpareGrows + res.Stats.SpareShrinks
	if n := countEvents(evs, "ctl.active", trace.PhaseCounter); n != wantSamples {
		t.Errorf("ctl.active samples = %d, want %d", n, wantSamples)
	}
}

// TestAdaptiveRecordingReplaysBitIdentically is the acceptance property:
// whatever the controller does — including on racy workloads that diverge
// and recover — the recording that comes out replays from the log alone
// with every boundary hash verified.
func TestAdaptiveRecordingReplaysBitIdentically(t *testing.T) {
	cases := []struct {
		name    string
		workers int
	}{
		{"pbzip", 4}, {"racey", 2}, {"webserve-racy", 4}, {"kvdb", 2},
	}
	for _, tc := range cases {
		res, bt := adaptiveRecord(t, tc.name, tc.workers, 1, 1, tc.workers, nil)
		rep, err := replay.Sequential(bt.Prog, res.Recording, nil, nil)
		if err != nil {
			t.Errorf("%s/%d: adaptive recording failed to replay: %v", tc.name, tc.workers, err)
			continue
		}
		if rep.FinalHash != res.FinalHash {
			t.Errorf("%s/%d: replay hash %016x, recording %016x",
				tc.name, tc.workers, rep.FinalHash, res.FinalHash)
		}
		if rep.Epochs != res.Stats.Epochs {
			t.Errorf("%s/%d: replayed %d epochs, recorded %d", tc.name, tc.workers, rep.Epochs, res.Stats.Epochs)
		}
	}
}

// TestAdaptiveRecordingIsDeterministic re-records the same workload, seed,
// and bounds and requires bit-identical stats and hashes — the property
// the verify.sh adaptive gate checks end to end through dptrace diff.
func TestAdaptiveRecordingIsDeterministic(t *testing.T) {
	a, _ := adaptiveRecord(t, "pbzip", 4, 1, 1, 4, nil)
	b, _ := adaptiveRecord(t, "pbzip", 4, 1, 1, 4, nil)
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("adaptive stats differ across identical runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.FinalHash != b.FinalHash || a.OutputHash != b.OutputHash {
		t.Error("adaptive hashes differ across identical runs")
	}
}
