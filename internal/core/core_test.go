package core

import (
	"testing"
	"testing/quick"

	"doubleplay/internal/replay"
	"doubleplay/internal/simos"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.RecordCPUs != 2 || o.EpochCycles != DefaultEpochCycles || o.Quantum <= 0 || o.Costs == nil || o.MaxEpochs <= 0 {
		t.Fatalf("defaults: %+v", o)
	}
	o = Options{Workers: 4}.withDefaults()
	if o.RecordCPUs != 5 {
		t.Fatalf("RecordCPUs = %d, want workers+1", o.RecordCPUs)
	}
}

func TestPipelineSpareScheduling(t *testing.T) {
	p := newPipeline(2, 4)
	// Epoch 0: checkpoint 0 at t=0, checkpoint 1 at t=100, runs 300 cycles.
	f0 := p.schedule(0, 100, 300)
	if f0.finish != 300 || f0.slot != 0 || f0.start != 0 {
		t.Fatalf("f0 = %+v, want finish 300 on slot 0 from 0", f0)
	}
	// Epoch 1: starts at its checkpoint (t=100) on the second spare core.
	f1 := p.schedule(100, 200, 300)
	if f1.finish != 400 || f1.slot != 1 || f1.start != 100 {
		t.Fatalf("f1 = %+v, want finish 400 on slot 1 from 100", f1)
	}
	// Epoch 2: both cores busy until 300; starts there.
	f2 := p.schedule(200, 300, 300)
	if f2.finish != 600 || f2.start != 300 {
		t.Fatalf("f2 = %+v, want finish 600 from 300", f2)
	}
	// An epoch cannot commit before its end checkpoint exists.
	f3 := p.schedule(300, 5000, 10)
	if f3.finish != 5000 {
		t.Fatalf("f3 = %+v, want finish 5000 (end-checkpoint bound)", f3)
	}
	if got := p.completion(450); got != 5000 {
		t.Fatalf("completion = %d", got)
	}
}

func TestPipelineUtilizedDisplacement(t *testing.T) {
	p := newPipeline(0, 4)
	p.schedule(0, 100, 400)
	p.schedule(100, 200, 400)
	// Total epoch work 800 over 4 cores displaces 200 cycles.
	if got := p.completion(1000); got != 1200 {
		t.Fatalf("utilized completion = %d, want 1200", got)
	}
}

func TestRecordProducesChainedEpochs(t *testing.T) {
	prog, _ := lockedCounterProg(2, 500)
	res, err := Record(prog, simos.NewWorld(3), Options{
		Workers: 2, SpareCPUs: 2, EpochCycles: 3000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recording
	if len(res.Boundaries) != len(rec.Epochs)+1 {
		t.Fatalf("%d boundaries for %d epochs", len(res.Boundaries), len(rec.Epochs))
	}
	for i, ep := range rec.Epochs {
		if ep.StartHash != res.Boundaries[i].Hash {
			t.Fatalf("epoch %d start hash does not match its boundary", i)
		}
		if ep.EndHash != res.Boundaries[i+1].Hash {
			t.Fatalf("epoch %d end hash does not match the next boundary", i)
		}
		// Targets must be monotone across epochs for every thread.
		if i > 0 {
			prev := rec.Epochs[i-1].Targets
			for tid := range prev {
				if tid < len(ep.Targets) && ep.Targets[tid] < prev[tid] {
					t.Fatalf("epoch %d target regressed for tid %d", i, tid)
				}
			}
		}
	}
	if rec.FinalHash != res.Boundaries[len(res.Boundaries)-1].Hash {
		t.Fatal("final hash is not the last boundary hash")
	}
	if res.Stats.CompletionCycles < res.Stats.ThreadParallelCycles {
		t.Fatal("completion earlier than thread-parallel finish")
	}
}

func TestUtilizedModeRecordsAndReplays(t *testing.T) {
	prog, ok := mixedProg(2, 150)
	res := recordAndCheck(t, prog, ok, Options{Workers: 2, SpareCPUs: 0, EpochCycles: 4000, Seed: 5})
	if _, err := replay.Sequential(prog, res.Recording, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Utilized completion must include displaced epoch work.
	if res.Stats.CompletionCycles <= res.Stats.ThreadParallelCycles {
		t.Fatal("utilized mode shows no displacement")
	}
}

func TestDisableSyncEnforcementCausesDivergences(t *testing.T) {
	// A lock-contended program under the ablation: lock-order races surface
	// as divergences, yet forward recovery still yields a valid recording.
	prog, _ := lockedCounterProg(3, 400)
	div := 0
	for seed := int64(0); seed < 4; seed++ {
		res, err := Record(prog, simos.NewWorld(seed), Options{
			Workers: 3, SpareCPUs: 3, EpochCycles: 2500, Seed: seed,
			DisableSyncEnforcement: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		div += res.Stats.Divergences
		if _, err := replay.Sequential(prog, res.Recording, nil, nil); err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
	}
	if div == 0 {
		t.Fatal("no divergences without the gate on a lock-contended program")
	}
}

func TestMaxEpochsGuards(t *testing.T) {
	prog, _ := lockedCounterProg(2, 5000)
	_, err := Record(prog, simos.NewWorld(1), Options{
		Workers: 2, SpareCPUs: 2, EpochCycles: 1000, Seed: 1, MaxEpochs: 3,
	})
	if err == nil {
		t.Fatal("MaxEpochs not enforced")
	}
}

func TestRecordingMetadata(t *testing.T) {
	prog, _ := lockedCounterProg(2, 100)
	res, err := Record(prog, simos.NewWorld(9), Options{Workers: 2, SpareCPUs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recording
	if rec.Program != prog.Name || rec.Workers != 2 || rec.Seed != 9 {
		t.Fatalf("metadata: %+v", rec)
	}
	if res.Stats.ReplayBytes <= 0 || res.Stats.FullBytes < res.Stats.ReplayBytes {
		t.Fatalf("sizes: %+v", res.Stats)
	}
	if res.Stats.FileBytes <= 0 {
		t.Fatalf("file bytes: %+v", res.Stats)
	}
}

// TestQuickRecordReplayRandomPrograms is the central property test: for
// randomly sized race-free programs under random seeds, recording never
// diverges and both replay modes reproduce the recording.
func TestQuickRecordReplayRandomPrograms(t *testing.T) {
	f := func(seed int64, w8, iters16 uint8) bool {
		workers := 2 + int(w8)%3
		iters := 100 + int(iters16)*4
		prog, okCell := mixedProg(workers, iters)
		res, err := Record(prog, simos.NewWorld(seed), Options{
			Workers: workers, SpareCPUs: workers, EpochCycles: 3000, Seed: seed,
		})
		if err != nil {
			t.Logf("record: %v", err)
			return false
		}
		if res.Stats.Divergences != 0 || res.Stats.GuestFaults != 0 {
			t.Logf("divergences=%d faults=%d", res.Stats.Divergences, res.Stats.GuestFaults)
			return false
		}
		last := res.Boundaries[len(res.Boundaries)-1]
		if last.CP.MemSnap.Peek(okCell) != 1 {
			t.Log("self-check failed")
			return false
		}
		if _, err := replay.Sequential(prog, res.Recording, nil, nil); err != nil {
			t.Logf("seq replay: %v", err)
			return false
		}
		if _, err := replay.Parallel(prog, res.Recording, res.Boundaries, workers, nil, nil); err != nil {
			t.Logf("par replay: %v", err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
