package core

// This file implements adaptive spare-core allocation: a feedback
// controller that grows and shrinks the epoch-parallel pipeline's active
// slot count at run time from the live commit-lag signal, instead of
// pinning the pipeline at Options.SpareCPUs for the whole recording.
//
// The controller consumes exactly the quantities `dptrace lag` computes
// offline from a finished trace — per-epoch commit lag (commit cycle −
// boundary cycle) and slot occupancy (did this epoch's verification wait
// for a core?) — but samples them online, at the epoch boundary where the
// pipeline model places each epoch's commit. Decisions are made only at
// epoch boundaries, from simulated quantities only, so adaptive
// recordings are exactly as deterministic as fixed-spares ones: the same
// program, seed, and options always yield a bit-identical recording, and
// the recording replays from the log alone like any other.
//
// The policy is a hysteresis rule over a sliding window of samples:
//
//   - GROW (+1 slot) when the lag slope over the window is positive and
//     every epoch in the window had to wait for a free slot — the
//     pipeline is saturated and falling behind boundary arrival.
//   - SHRINK (−1 slot) when no epoch in the window waited and the
//     worst-case lag stayed within one epoch length — the pipeline is
//     drained and has at least one slot of slack.
//   - Otherwise HOLD. A full quiet window must elapse after every
//     decision (the cooldown) before the next one, so the controller
//     never oscillates on the transient the previous decision caused.
//
// Active slots never leave [Min, Max]. Parking a slot lets work already
// scheduled on it finish; unparking one models acquiring a core *now* —
// the slot cannot have been free in the past.

// defaultCtlWindow is the sample window (and cooldown) of the hysteresis
// rule: long enough to see a trend, short enough to react within a few
// epochs of a phase change.
const defaultCtlWindow = 4

// ctlSample is one epoch-boundary observation.
type ctlSample struct {
	epoch  int
	lag    int64
	waited bool
}

// Controller is the adaptive spare-core policy. Construct with
// NewController; feed one Observe per epoch boundary. The zero value is
// not ready to use.
type Controller struct {
	// Min and Max bound the active slot count; decisions clamp to them.
	Min, Max int
	// Window is how many epoch-boundary samples a decision looks at.
	Window int
	// Cooldown is how many boundaries the controller holds after acting,
	// in addition to refilling the window from scratch.
	Cooldown int

	active  int
	cool    int
	samples []ctlSample
	grows   int
	shrinks int
}

// NewController returns a controller bounded to [min, max] starting at
// initial active slots (clamped). min is raised to 1: the adaptive
// pipeline always has at least one dedicated slot — the utilized
// (0-spare) configuration has no slots to park or unpark.
func NewController(min, max, initial int) *Controller {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if initial < min {
		initial = min
	}
	if initial > max {
		initial = max
	}
	return &Controller{
		Min: min, Max: max,
		Window: defaultCtlWindow, Cooldown: defaultCtlWindow,
		active: initial,
	}
}

// Active returns the current active slot count.
func (c *Controller) Active() int { return c.active }

// Grows returns how many grow decisions the controller has made.
func (c *Controller) Grows() int { return c.grows }

// Shrinks returns how many shrink decisions the controller has made.
func (c *Controller) Shrinks() int { return c.shrinks }

// lagSlope fits lag = a + b*epoch by least squares over the window and
// returns b — the same statistic `dptrace lag` reports per recording.
func (c *Controller) lagSlope() float64 {
	n := float64(len(c.samples))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, s := range c.samples {
		x, y := float64(s.epoch), float64(s.lag)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Observe feeds one epoch boundary's sample — the epoch index, its commit
// lag in cycles, and whether its verification waited for a free slot —
// and returns the decision it caused: +1 grow, −1 shrink, 0 hold.
// epochCycles scales the drain test (a lag within one epoch length is
// "keeping up"); non-positive values select DefaultEpochCycles.
func (c *Controller) Observe(epoch int, lag int64, waited bool, epochCycles int64) int {
	if epochCycles <= 0 {
		epochCycles = DefaultEpochCycles
	}
	c.samples = append(c.samples, ctlSample{epoch: epoch, lag: lag, waited: waited})
	if c.Window < 1 {
		c.Window = defaultCtlWindow
	}
	if len(c.samples) > c.Window {
		c.samples = c.samples[1:]
	}
	if c.cool > 0 {
		c.cool--
		return 0
	}
	if len(c.samples) < c.Window {
		return 0
	}
	saturated, idle := true, true
	var maxLag int64
	for _, s := range c.samples {
		if s.waited {
			idle = false
		} else {
			saturated = false
		}
		if s.lag > maxLag {
			maxLag = s.lag
		}
	}
	switch {
	case saturated && c.lagSlope() > 0 && c.active < c.Max:
		c.active++
		c.grows++
		c.decided()
		return 1
	case idle && maxLag <= epochCycles && c.active > c.Min:
		c.active--
		c.shrinks++
		c.decided()
		return -1
	}
	return 0
}

// decided starts the post-decision quiet period: the window refills from
// scratch and the cooldown must elapse, so the next decision sees only
// epochs scheduled under the new slot count.
func (c *Controller) decided() {
	c.cool = c.Cooldown
	c.samples = c.samples[:0]
}
