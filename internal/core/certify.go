package core

import (
	"fmt"

	"doubleplay/internal/analyze"
	"doubleplay/internal/vm"
)

// VerifyPolicy selects how Record validates epochs.
type VerifyPolicy int

const (
	// VerifyAlways runs the epoch-parallel verification pass for every
	// epoch, exactly as in the paper. The default.
	VerifyAlways VerifyPolicy = iota

	// VerifyCertified consults the guest's static race-freedom certificate
	// (analyze.Run) before recording. When the certificate proves the
	// program race-free, every epoch commits directly from the logged
	// thread-parallel execution — no epoch-parallel pass, no comparison,
	// near-zero verification overhead — and the epoch is marked Certified
	// in the log so replay free-runs it under the recorded sync order.
	//
	// The skip is sound only because the certificate asserts that every
	// sync-order-respecting execution reaches the same boundary states;
	// replaying a certified epoch re-derives the state and treats any
	// mismatch as a fatal soundness bug (replay.ErrCertViolated), never as
	// an ordinary divergence.
	//
	// When the certificate is possibly-racy or incomplete, or the run
	// needs the epoch-parallel pass anyway (DetectRaces, or
	// DisableSyncEnforcement voiding the gate the certificate assumes),
	// recording silently falls back to full verification and reports why
	// in Stats.VerifyFallback. A certified run also ignores Adaptive —
	// there is no verification pipeline for the controller to pace.
	VerifyCertified
)

func (p VerifyPolicy) String() string {
	switch p {
	case VerifyAlways:
		return "always"
	case VerifyCertified:
		return "certified"
	}
	return fmt.Sprintf("verify-policy(%d)", int(p))
}

// ParseVerifyPolicy maps the CLI/server spelling of a policy ("always",
// "certified"; "" means always) to its value.
func ParseVerifyPolicy(s string) (VerifyPolicy, error) {
	switch s {
	case "", "always":
		return VerifyAlways, nil
	case "certified":
		return VerifyCertified, nil
	}
	return VerifyAlways, fmt.Errorf("core: unknown verify policy %q (want always or certified)", s)
}

// Certify runs the static analyzer over prog and returns its
// race-freedom certificate — the exact decision input Record uses under
// VerifyCertified.
func Certify(prog *vm.Program) *analyze.Certificate {
	return analyze.Run(prog).Cert
}
