package core

import (
	"bytes"
	"testing"

	"doubleplay/internal/replay"
	"doubleplay/internal/trace"
	"doubleplay/internal/workloads"
)

// goldenRun pins the recorder's cycle accounting: CompletionCycles and
// Epochs for every benchmark at the evaluation configuration (seed 11,
// scale 1, spares = workers, default epoch length), captured before the
// observability layer existed. Tracing is purely observational, so these
// values must stay bit-identical with a nil sink AND with a live one; a
// diff here means an instrumentation change perturbed the timing model.
type goldenRun struct {
	name    string
	workers int
	cycles  int64
	epochs  int
}

var goldenRuns = []goldenRun{
	{"pbzip", 2, 1150271, 40}, {"pfscan", 2, 950090, 34}, {"aget", 2, 916647, 33},
	{"webserve", 2, 966839, 33}, {"kvdb", 2, 394579, 14}, {"fft", 2, 465567, 17},
	{"lu", 2, 640074, 24}, {"radix", 2, 679484, 25}, {"ocean", 2, 898567, 33},
	{"water", 2, 668800, 25}, {"racey", 2, 212463, 3}, {"webserve-racy", 2, 968262, 33},
	{"pbzip", 4, 630663, 21}, {"pfscan", 4, 537210, 17}, {"aget", 4, 851737, 31},
	{"webserve", 4, 573796, 17}, {"kvdb", 4, 270276, 8}, {"fft", 4, 283256, 9},
	{"lu", 4, 390784, 13}, {"radix", 4, 423217, 14}, {"ocean", 4, 507423, 18},
	{"water", 4, 390561, 13}, {"racey", 4, 573123, 3}, {"webserve-racy", 4, 713069, 17},
}

func goldenRecord(t *testing.T, g goldenRun, sink *trace.Sink, reg *trace.Registry) *Result {
	t.Helper()
	wl := workloads.Get(g.name)
	if wl == nil {
		t.Fatalf("unknown workload %s", g.name)
	}
	bt := wl.Build(workloads.Params{Workers: g.workers, Scale: 1, Seed: 11})
	res, err := Record(bt.Prog, bt.World, Options{
		Workers: g.workers, RecordCPUs: g.workers, SpareCPUs: g.workers,
		Seed: 11, Trace: sink, Metrics: reg,
	})
	if err != nil {
		t.Fatalf("record %s/%d: %v", g.name, g.workers, err)
	}
	return res
}

// TestGoldenCyclesUnchanged is the benchmark guard: recording with no sink
// must reproduce the pre-observability cycle counts exactly.
func TestGoldenCyclesUnchanged(t *testing.T) {
	runs := goldenRuns
	if testing.Short() {
		runs = runs[:4]
	}
	for _, g := range runs {
		res := goldenRecord(t, g, nil, nil)
		if res.Stats.CompletionCycles != g.cycles || res.Stats.Epochs != g.epochs {
			t.Errorf("%s/%d: got %d cycles %d epochs, golden %d cycles %d epochs",
				g.name, g.workers, res.Stats.CompletionCycles, res.Stats.Epochs, g.cycles, g.epochs)
		}
	}
}

// TestTracingDoesNotPerturbCycles asserts the stronger property: even with
// a live sink and registry attached, every simulated clock is untouched.
func TestTracingDoesNotPerturbCycles(t *testing.T) {
	runs := goldenRuns
	if testing.Short() {
		runs = runs[:4]
	}
	for _, g := range runs {
		sink := trace.NewSink()
		res := goldenRecord(t, g, sink, trace.NewRegistry())
		if res.Stats.CompletionCycles != g.cycles || res.Stats.Epochs != g.epochs {
			t.Errorf("%s/%d traced: got %d cycles %d epochs, golden %d cycles %d epochs",
				g.name, g.workers, res.Stats.CompletionCycles, res.Stats.Epochs, g.cycles, g.epochs)
		}
		if sink.Len() == 0 {
			t.Errorf("%s/%d traced: sink stayed empty", g.name, g.workers)
		}
	}
}

// countEvents tallies events by (name, phase).
func countEvents(evs []trace.Event, name string, ph byte) int {
	n := 0
	for _, ev := range evs {
		if ev.Name == name && ev.Ph == ph {
			n++
		}
	}
	return n
}

// TestTraceConsistentWithStats records a divergence-free workload and
// checks the event stream against the recorder's own accounting.
func TestTraceConsistentWithStats(t *testing.T) {
	g := goldenRun{name: "pbzip", workers: 2}
	sink := trace.NewSink()
	res := goldenRecord(t, g, sink, nil)
	s := res.Stats
	if s.Divergences != 0 {
		t.Fatalf("pbzip diverged (%d); the exact-count assertions below assume a clean run", s.Divergences)
	}
	evs := sink.Events()

	// One "epoch" span per recorded epoch, one commit each, and the initial
	// checkpoint plus one per boundary.
	if n := countEvents(evs, "epoch", trace.PhaseComplete); n != s.Epochs {
		t.Errorf("epoch spans = %d, Stats.Epochs = %d", n, s.Epochs)
	}
	if n := countEvents(evs, "epoch.verify", trace.PhaseComplete); n != s.Epochs {
		t.Errorf("epoch.verify spans = %d, Stats.Epochs = %d", n, s.Epochs)
	}
	if n := countEvents(evs, "epoch.commit", trace.PhaseInstant); n != s.Epochs {
		t.Errorf("epoch.commit instants = %d, Stats.Epochs = %d", n, s.Epochs)
	}
	if n := countEvents(evs, "checkpoint.create", trace.PhaseInstant); n != s.Epochs+1 {
		t.Errorf("checkpoint.create instants = %d, want epochs+1 = %d", n, s.Epochs+1)
	}
	// On a divergence-free run nothing is squashed, so the guest-side
	// instants match the log counts exactly.
	if n := countEvents(evs, "syscall", trace.PhaseInstant); n != s.Syscalls {
		t.Errorf("syscall instants = %d, Stats.Syscalls = %d", n, s.Syscalls)
	}
	if n := countEvents(evs, "sync", trace.PhaseInstant); n != s.SyncEvents {
		t.Errorf("sync instants = %d, Stats.SyncEvents = %d", n, s.SyncEvents)
	}
	if n := countEvents(evs, "signal", trace.PhaseInstant); n != s.Signals {
		t.Errorf("signal instants = %d, Stats.Signals = %d", n, s.Signals)
	}
	if n := countEvents(evs, "divergence", trace.PhaseInstant); n != 0 {
		t.Errorf("divergence instants = %d on a clean run", n)
	}
	if n := countEvents(evs, "record.done", trace.PhaseInstant); n != 1 {
		t.Errorf("record.done instants = %d", n)
	}

	// The epoch timeline on the recorder track must be monotone and dense:
	// epoch i+1 starts exactly where epoch i ends.
	var prevEnd int64
	for _, ev := range evs {
		if ev.Name != "epoch" || ev.Ph != trace.PhaseComplete {
			continue
		}
		if ev.Ts != prevEnd {
			t.Fatalf("epoch span at %d does not abut previous end %d", ev.Ts, prevEnd)
		}
		if ev.Dur <= 0 {
			t.Fatalf("epoch span at %d has dur %d", ev.Ts, ev.Dur)
		}
		prevEnd = ev.Ts + ev.Dur
	}
	// The last boundary is taken at the minimum CPU clock, while the wall
	// time is the maximum, so the final span may stop a few cycles short.
	if prevEnd > s.ThreadParallelCycles {
		t.Errorf("epoch spans end at %d, past the thread-parallel wall time %d", prevEnd, s.ThreadParallelCycles)
	}

	// The JSON export round-trips every event.
	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(evs) {
		t.Errorf("JSON round trip: %d events, emitted %d", len(parsed), len(evs))
	}
}

// TestTraceRecordsDivergences records a racy workload and checks that each
// divergence and its forward recovery shows up on the timeline.
func TestTraceRecordsDivergences(t *testing.T) {
	g := goldenRun{name: "racey", workers: 2}
	sink := trace.NewSink()
	res := goldenRecord(t, g, sink, nil)
	s := res.Stats
	if s.Divergences == 0 {
		t.Fatal("racey did not diverge; the recovery-tracing assertions need one")
	}
	evs := sink.Events()
	if n := countEvents(evs, "divergence", trace.PhaseInstant); n != s.Divergences {
		t.Errorf("divergence instants = %d, Stats.Divergences = %d", n, s.Divergences)
	}
	adopts := countEvents(evs, "recovery.adopt", trace.PhaseInstant)
	reruns := countEvents(evs, "recovery.rerun", trace.PhaseComplete)
	if adopts != s.HashRecoveries || reruns != s.RerunRecoveries {
		t.Errorf("recoveries: adopt %d/%d, rerun %d/%d",
			adopts, s.HashRecoveries, reruns, s.RerunRecoveries)
	}
	if n := countEvents(evs, "epoch", trace.PhaseComplete); n != s.Epochs {
		t.Errorf("epoch spans = %d, Stats.Epochs = %d", n, s.Epochs)
	}
}

// TestReplayTraceMatchesEpochs checks that a traced sequential replay
// narrates exactly the recording's epochs, back to back.
func TestReplayTraceMatchesEpochs(t *testing.T) {
	g := goldenRun{name: "fft", workers: 2}
	res := goldenRecord(t, g, nil, nil)
	wl := workloads.Get(g.name)
	bt := wl.Build(workloads.Params{Workers: g.workers, Scale: 1, Seed: 11})

	sink := trace.NewSink()
	rep, err := replay.Sequential(bt.Prog, res.Recording, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	evs := sink.Events()
	if n := countEvents(evs, "replay.epoch", trace.PhaseComplete); n != rep.Epochs {
		t.Errorf("replay.epoch spans = %d, replayed %d epochs", n, rep.Epochs)
	}
	var prevEnd int64
	for _, ev := range evs {
		if ev.Name != "replay.epoch" {
			continue
		}
		if ev.Ts != prevEnd {
			t.Fatalf("replay.epoch at %d does not abut previous end %d", ev.Ts, prevEnd)
		}
		prevEnd = ev.Ts + ev.Dur
	}
	if prevEnd != rep.Cycles {
		t.Errorf("replay.epoch spans end at %d, replay took %d", prevEnd, rep.Cycles)
	}

	// Parallel replay: one span per epoch, makespan equals the last span end.
	psink := trace.NewSink()
	par, err := replay.Parallel(bt.Prog, res.Recording, res.Boundaries, g.workers, nil, psink)
	if err != nil {
		t.Fatal(err)
	}
	var maxEnd int64
	n := 0
	for _, ev := range psink.Events() {
		if ev.Name != "replay.epoch" || ev.Ph != trace.PhaseComplete {
			continue
		}
		n++
		if end := ev.Ts + ev.Dur; end > maxEnd {
			maxEnd = end
		}
	}
	if n != par.Epochs {
		t.Errorf("parallel replay.epoch spans = %d, want %d", n, par.Epochs)
	}
	if maxEnd != par.Cycles {
		t.Errorf("parallel spans end at %d, makespan %d", maxEnd, par.Cycles)
	}
}
