package core

import (
	"testing"

	"doubleplay/internal/replay"
	"doubleplay/internal/simos"
	"doubleplay/internal/workloads"
)

func TestDetectRacesDuringRecording(t *testing.T) {
	wl := workloads.Get("webserve-racy")
	bt := wl.Build(workloads.Params{Workers: 4, Seed: 6})
	res, err := Record(bt.Prog, bt.World, Options{
		Workers: 4, SpareCPUs: 4, Seed: 6, DetectRaces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 1 {
		t.Fatalf("webserve-racy has one racy cell; detector found %v", res.Races)
	}

	clean := workloads.Get("kvdb").Build(workloads.Params{Workers: 4, Seed: 6})
	res, err = Record(clean.Prog, clean.World, Options{
		Workers: 4, SpareCPUs: 4, Seed: 6, DetectRaces: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Races) != 0 {
		t.Fatalf("false positives on kvdb during recording: %v", res.Races)
	}
}

func TestDetectRacesOffByDefault(t *testing.T) {
	prog := racyProg(2, 100)
	res, err := Record(prog, simos.NewWorld(1), Options{Workers: 2, SpareCPUs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Races != nil {
		t.Fatal("races reported without DetectRaces")
	}
}

func TestCommitHashChainsMonotonically(t *testing.T) {
	wl := workloads.Get("webserve")
	bt := wl.Build(workloads.Params{Workers: 2, Seed: 6})
	res, err := Record(bt.Prog, bt.World, Options{Workers: 2, SpareCPUs: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// The final epoch's commit hash is the recording's output hash, and
	// commit hashes change across epochs as the server emits responses.
	eps := res.Recording.Epochs
	if eps[len(eps)-1].CommitHash != res.OutputHash {
		t.Fatal("final commit hash != recording output hash")
	}
	changes := 0
	for i := 1; i < len(eps); i++ {
		if eps[i].CommitHash != eps[i-1].CommitHash {
			changes++
		}
	}
	if changes == 0 {
		t.Fatal("output commit never advanced across epochs")
	}
}

func TestThinBoundariesAndSparseReplay(t *testing.T) {
	wl := workloads.Get("ocean")
	bt := wl.Build(workloads.Params{Workers: 2, Seed: 6})
	res, err := Record(bt.Prog, bt.World, Options{Workers: 2, SpareCPUs: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	full := len(res.Boundaries)
	if full < 8 {
		t.Fatalf("too few epochs (%d) for a meaningful thinning test", full-1)
	}
	for _, stride := range []int{1, 2, 4, full} {
		sparse := res.ThinBoundaries(stride)
		if stride > 1 && len(sparse) >= full {
			t.Fatalf("stride %d did not thin (%d of %d)", stride, len(sparse), full)
		}
		rep, err := replay.ParallelSparse(bt.Prog, res.Recording, sparse, 4, nil, nil)
		if err != nil {
			t.Fatalf("stride %d: %v", stride, err)
		}
		if rep.Epochs != len(res.Recording.Epochs) {
			t.Fatalf("stride %d replayed %d epochs", stride, rep.Epochs)
		}
	}
	// Coarser thinning means longer (less parallel) modelled replay.
	fine, _ := replay.ParallelSparse(bt.Prog, res.Recording, res.ThinBoundaries(1), 4, nil, nil)
	coarse, _ := replay.ParallelSparse(bt.Prog, res.Recording, res.ThinBoundaries(full), 4, nil, nil)
	if coarse.Cycles < fine.Cycles {
		t.Fatalf("single-segment replay (%d) faster than fully parallel (%d)", coarse.Cycles, fine.Cycles)
	}
}

func TestSparseReplayRejectsBadBoundarySets(t *testing.T) {
	wl := workloads.Get("kvdb")
	bt := wl.Build(workloads.Params{Workers: 2, Seed: 6})
	res, err := Record(bt.Prog, bt.World, Options{Workers: 2, SpareCPUs: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Missing epoch 0.
	if _, err := replay.ParallelSparse(bt.Prog, res.Recording, res.Boundaries[1:], 2, nil, nil); err == nil {
		t.Fatal("sparse set without epoch 0 accepted")
	}
	// Empty set.
	if _, err := replay.ParallelSparse(bt.Prog, res.Recording, nil, 2, nil, nil); err == nil {
		t.Fatal("empty sparse set accepted")
	}
}

func TestAdaptiveEpochGrowth(t *testing.T) {
	wl := workloads.Get("ocean")
	bt := wl.Build(workloads.Params{Workers: 2, Seed: 6})
	fixed, err := Record(bt.Prog, bt.World, Options{
		Workers: 2, SpareCPUs: 2, Seed: 6, EpochCycles: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	bt = wl.Build(workloads.Params{Workers: 2, Seed: 6})
	grown, err := Record(bt.Prog, bt.World, Options{
		Workers: 2, SpareCPUs: 2, Seed: 6,
		EpochCycles: 5000, EpochGrowth: 1.5, EpochCyclesMax: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Stats.Epochs >= fixed.Stats.Epochs {
		t.Fatalf("growth did not reduce epoch count: %d vs %d",
			grown.Stats.Epochs, fixed.Stats.Epochs)
	}
	// The recording must still replay and self-check.
	if _, err := replay.Sequential(bt.Prog, grown.Recording, nil, nil); err != nil {
		t.Fatal(err)
	}
	last := grown.Boundaries[len(grown.Boundaries)-1]
	if err := bt.CheckOK(last.CP.MemSnap.Peek); err != nil {
		t.Fatal(err)
	}
	// Boundary spacing must actually grow.
	bs := grown.Boundaries
	first := bs[1].Cycle - bs[0].Cycle
	widest := int64(0)
	for i := 1; i < len(bs); i++ {
		if d := bs[i].Cycle - bs[i-1].Cycle; d > widest {
			widest = d
		}
	}
	if widest < 2*first {
		t.Fatalf("epoch spacing never grew: first %d, widest %d", first, widest)
	}
}

func TestAdaptiveGrowthResetsOnDivergence(t *testing.T) {
	prog := racyProg(3, 2000)
	res, err := Record(prog, simos.NewWorld(4), Options{
		Workers: 3, SpareCPUs: 3, Seed: 4,
		EpochCycles: 2000, EpochGrowth: 2.0, EpochCyclesMax: 64_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replay.Sequential(prog, res.Recording, nil, nil); err != nil {
		t.Fatalf("replay after %d divergences: %v", res.Stats.Divergences, err)
	}
}

func TestDivergenceForensics(t *testing.T) {
	prog := racyProg(4, 500)
	found := false
	for seed := int64(0); seed < 6 && !found; seed++ {
		res, err := Record(prog, simos.NewWorld(seed), Options{
			Workers: 4, SpareCPUs: 4, EpochCycles: 3000, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Divergences) != res.Stats.Divergences {
			t.Fatalf("forensics count %d != stat %d", len(res.Divergences), res.Stats.Divergences)
		}
		for _, d := range res.Divergences {
			if d.Kind != "state" && d.Kind != "input" {
				t.Fatalf("bad kind %q", d.Kind)
			}
			if d.Kind == "state" {
				found = true
				if len(d.Pages) == 0 {
					t.Fatal("state divergence with no differing pages")
				}
			}
		}
	}
	if !found {
		t.Log("note: no state divergence observed across seeds")
	}
}

func TestReleaseCheckpoints(t *testing.T) {
	prog, _ := lockedCounterProg(2, 200)
	res, err := Record(prog, simos.NewWorld(2), Options{Workers: 2, SpareCPUs: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res.ReleaseCheckpoints()
	if res.Boundaries != nil {
		t.Fatal("boundaries not cleared")
	}
	// Sequential replay needs no checkpoints and must still work.
	if _, err := replay.Sequential(prog, res.Recording, nil, nil); err != nil {
		t.Fatal(err)
	}
}
