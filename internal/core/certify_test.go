package core

import (
	"bytes"
	"errors"
	"testing"

	"doubleplay/internal/dplog"
	"doubleplay/internal/replay"
	"doubleplay/internal/simos"
)

func TestParseVerifyPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want VerifyPolicy
	}{
		{"", VerifyAlways},
		{"always", VerifyAlways},
		{"certified", VerifyCertified},
	} {
		got, err := ParseVerifyPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseVerifyPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseVerifyPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if VerifyAlways.String() != "always" || VerifyCertified.String() != "certified" {
		t.Fatal("String() spellings drifted from ParseVerifyPolicy")
	}
}

// TestCertifiedRecordSkipsVerification is the headline property: a
// race-free program under VerifyCertified commits every epoch without the
// epoch-parallel pass, and the certified recording replays to the same
// final state as a fully verified recording of the same seed.
func TestCertifiedRecordSkipsVerification(t *testing.T) {
	prog, ok := lockedCounterProg(3, 300)
	base := Options{Workers: 3, SpareCPUs: 4, EpochCycles: 3000, Seed: 42}

	always := recordAndCheck(t, prog, ok, base)

	opt := base
	opt.VerifyPolicy = VerifyCertified
	cert := recordAndCheck(t, prog, ok, opt)

	st := cert.Stats
	if st.CertStatus != "race-free" || st.VerifyFallback != "" {
		t.Fatalf("cert status %q fallback %q", st.CertStatus, st.VerifyFallback)
	}
	if cert.Certificate == nil || !cert.Certificate.RaceFree() {
		t.Fatalf("Result.Certificate = %v", cert.Certificate)
	}
	if st.VerifySkipped == 0 || st.VerifySkipped != st.Epochs {
		t.Fatalf("VerifySkipped = %d of %d epochs", st.VerifySkipped, st.Epochs)
	}
	if st.Divergences != 0 || st.Slices != 0 || st.EpochSerialCycles != 0 {
		t.Fatalf("certified run did verification work: %+v", st)
	}
	for i, ep := range cert.Recording.Epochs {
		if !ep.Certified || ep.Schedule != nil {
			t.Fatalf("epoch %d: certified=%v schedule=%v", i, ep.Certified, ep.Schedule)
		}
	}
	// No pipeline occupancy: recording completes with the guest.
	if st.CompletionCycles != st.ThreadParallelCycles {
		t.Fatalf("completion %d != thread-parallel %d", st.CompletionCycles, st.ThreadParallelCycles)
	}
	if st.CompletionCycles >= always.Stats.CompletionCycles {
		t.Fatalf("no overhead win: certified %d vs always %d",
			st.CompletionCycles, always.Stats.CompletionCycles)
	}

	// Same guest, same seed: both recordings must describe the same
	// execution, and the certified one must replay to it bit-identically.
	if cert.FinalHash != always.FinalHash || cert.OutputHash != always.OutputHash {
		t.Fatal("certified recording describes a different execution")
	}
	seq, err := replay.Sequential(prog, cert.Recording, nil, nil)
	if err != nil {
		t.Fatalf("Sequential replay of certified recording: %v", err)
	}
	if seq.FinalHash != always.FinalHash {
		t.Fatal("certified replay diverged from the verified recording")
	}
	par, err := replay.Parallel(prog, cert.Recording, cert.Boundaries, 4, nil, nil)
	if err != nil {
		t.Fatalf("Parallel replay of certified recording: %v", err)
	}
	if par.FinalHash != always.FinalHash {
		t.Fatal("parallel certified replay diverged")
	}
}

// TestCertifiedFallsBackOnRacy: a possibly-racy certificate must leave the
// recording byte-identical to a VerifyAlways run — the skip never engages.
func TestCertifiedFallsBackOnRacy(t *testing.T) {
	prog := racyProg(3, 400)
	base := Options{Workers: 3, SpareCPUs: 4, EpochCycles: 2500, Seed: 1}

	always, err := Record(prog, simos.NewWorld(base.Seed), base)
	if err != nil {
		t.Fatal(err)
	}
	opt := base
	opt.VerifyPolicy = VerifyCertified
	res, err := Record(prog, simos.NewWorld(base.Seed), opt)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.VerifySkipped != 0 {
		t.Fatalf("skipped verification of a racy program %d times", st.VerifySkipped)
	}
	if st.CertStatus != "possibly-racy" || st.VerifyFallback == "" {
		t.Fatalf("cert status %q fallback %q", st.CertStatus, st.VerifyFallback)
	}
	if !bytes.Equal(dplog.MarshalBytes(res.Recording), dplog.MarshalBytes(always.Recording)) {
		t.Fatal("fallback recording differs from VerifyAlways")
	}
}

// TestCertifiedFallbackOnAblations: options that need the epoch-parallel
// pass override even a race-free certificate.
func TestCertifiedFallbackOnAblations(t *testing.T) {
	prog, ok := lockedCounterProg(2, 150)
	for _, tc := range []struct {
		name string
		mod  func(*Options)
	}{
		{"detect-races", func(o *Options) { o.DetectRaces = true }},
		{"no-enforcement", func(o *Options) { o.DisableSyncEnforcement = true }},
	} {
		opt := Options{Workers: 2, SpareCPUs: 2, EpochCycles: 3000, Seed: 9, VerifyPolicy: VerifyCertified}
		tc.mod(&opt)
		res, err := Record(prog, simos.NewWorld(opt.Seed), opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Stats.VerifySkipped != 0 || res.Stats.VerifyFallback == "" {
			t.Fatalf("%s: skipped=%d fallback=%q",
				tc.name, res.Stats.VerifySkipped, res.Stats.VerifyFallback)
		}
		if res.Stats.CertStatus != "race-free" {
			t.Fatalf("%s: cert status %q", tc.name, res.Stats.CertStatus)
		}
	}
	_ = ok
}

// TestCertViolationIsFatal: corrupting a certified epoch's end hash must
// surface as ErrCertViolated, not as a recoverable divergence.
func TestCertViolationIsFatal(t *testing.T) {
	prog, ok := lockedCounterProg(2, 200)
	opt := Options{Workers: 2, SpareCPUs: 2, EpochCycles: 3000, Seed: 4, VerifyPolicy: VerifyCertified}
	res := recordAndCheck(t, prog, ok, opt)
	if res.Stats.VerifySkipped == 0 {
		t.Skip("program not certified; nothing to corrupt")
	}
	res.Recording.Epochs[0].EndHash ^= 0xdead
	_, err := replay.Sequential(prog, res.Recording, nil, nil)
	if !errors.Is(err, replay.ErrCertViolated) {
		t.Fatalf("err = %v, want ErrCertViolated", err)
	}
}

// TestCertifiedAdaptiveIgnored: the controller has nothing to pace in a
// certified run and must stay disabled.
func TestCertifiedAdaptiveIgnored(t *testing.T) {
	prog, ok := lockedCounterProg(2, 200)
	opt := Options{
		Workers: 2, SpareCPUs: 3, EpochCycles: 3000, Seed: 8,
		VerifyPolicy: VerifyCertified, Adaptive: true,
	}
	res := recordAndCheck(t, prog, ok, opt)
	if res.Stats.VerifySkipped != res.Stats.Epochs {
		t.Fatalf("skip not taken under Adaptive: %+v", res.Stats)
	}
	if res.Stats.SpareGrows != 0 || res.Stats.SpareShrinks != 0 {
		t.Fatalf("controller acted in a certified run: %+v", res.Stats)
	}
}
