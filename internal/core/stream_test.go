package core

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"doubleplay/internal/trace"
	"doubleplay/internal/workloads"
)

// canonicalize renders parsed events as sorted strings for multiset
// comparison (arg numerics normalized to their JSON float64 form).
func canonicalize(evs []trace.Event) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		keys := make([]string, 0, len(ev.Args))
		for k := range ev.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		fmt.Fprintf(&b, "%s|%c|%d|%d|%d|%d", ev.Name, ev.Ph, ev.Ts, ev.Dur, ev.Pid, ev.Tid)
		for _, k := range keys {
			fmt.Fprintf(&b, "|%s=%v", k, ev.Args[k])
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

func recordStreamed(t *testing.T, g goldenRun, window int) (*Result, []trace.Event, *trace.StreamSink) {
	t.Helper()
	wl := workloads.Get(g.name)
	if wl == nil {
		t.Fatalf("unknown workload %s", g.name)
	}
	bt := wl.Build(workloads.Params{Workers: g.workers, Scale: 1, Seed: 11})
	var out bytes.Buffer
	stream := trace.NewStreamSink(&out, window)
	res, err := Record(bt.Prog, bt.World, Options{
		Workers: g.workers, RecordCPUs: g.workers, SpareCPUs: g.workers,
		Seed: 11, Trace: stream,
	})
	if err != nil {
		t.Fatalf("record %s/%d: %v", g.name, g.workers, err)
	}
	if err := stream.Close(); err != nil {
		t.Fatalf("close stream: %v", err)
	}
	evs, err := trace.ParseJSON(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("streamed trace does not parse: %v", err)
	}
	return res, evs, stream
}

// TestStreamedRecordingMatchesBuffered is the tentpole acceptance test:
// recording through a StreamSink with a small reorder window (a) keeps the
// live buffer within the window, (b) leaves the recording's Stats
// bit-identical to a buffered-sink run, and (c) streams a file that parses
// into exactly the event multiset the buffered Sink collected.
func TestStreamedRecordingMatchesBuffered(t *testing.T) {
	const window = 64
	for _, g := range []goldenRun{{"pbzip", 2, 1150271, 40}, {"racey", 2, 212463, 3}} {
		sink := trace.NewSink()
		bufRes := goldenRecord(t, g, sink, nil)
		strRes, streamed, stream := recordStreamed(t, g, window)

		if got := stream.MaxBuffered(); got > window {
			t.Errorf("%s/%d: live buffer reached %d events, window %d", g.name, g.workers, got, window)
		}
		if bufRes.Stats != strRes.Stats {
			t.Errorf("%s/%d: streamed recording perturbed Stats:\nbuffered %+v\nstreamed %+v",
				g.name, g.workers, bufRes.Stats, strRes.Stats)
		}
		if stream.Written() != sink.Len() {
			t.Errorf("%s/%d: streamed %d events, buffered %d", g.name, g.workers, stream.Written(), sink.Len())
		}

		// Normalize the buffered side through the same JSON round trip.
		var buf bytes.Buffer
		if err := sink.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		buffered, err := trace.ParseJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, want := canonicalize(streamed), canonicalize(buffered)
		if len(got) != len(want) {
			t.Fatalf("%s/%d: %d streamed vs %d buffered events", g.name, g.workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s/%d: event multiset diverges:\n  stream: %s\n  buffer: %s",
					g.name, g.workers, got[i], want[i])
			}
		}
	}
}

// TestMetricsScrapeDuringRecording serves the registry over HTTP and
// scrapes it concurrently while recordings run, checking the exporter is
// safe against a live registry and always yields parseable output.
func TestMetricsScrapeDuringRecording(t *testing.T) {
	reg := trace.NewRegistry()
	srv, err := trace.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var stop atomic.Bool
	scrapes := make(chan error, 1)
	go func() {
		var firstErr error
		for !stop.Load() {
			resp, err := http.Get("http://" + srv.Addr + "/metrics")
			if err != nil {
				firstErr = err
				break
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				firstErr = err
				break
			}
			if resp.StatusCode != http.StatusOK {
				firstErr = fmt.Errorf("scrape status %d", resp.StatusCode)
				break
			}
			_ = body
		}
		scrapes <- firstErr
	}()

	for _, g := range []goldenRun{{"kvdb", 2, 394579, 14}, {"racey", 2, 212463, 3}} {
		res := goldenRecord(t, g, nil, reg)
		if res.Stats.CompletionCycles != g.cycles {
			t.Errorf("%s/%d: cycles %d, want %d (scraping must not perturb recording)",
				g.name, g.workers, res.Stats.CompletionCycles, g.cycles)
		}
	}
	stop.Store(true)
	if err := <-scrapes; err != nil {
		t.Fatalf("concurrent scrape failed: %v", err)
	}

	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "doubleplay_record_epochs") {
		t.Fatalf("final scrape missing epoch counters:\n%.500s", body)
	}
}
