package core

import (
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/replay"
	"doubleplay/internal/simos"
	"doubleplay/internal/vm"
)

// lockedCounterProg builds a race-free program: workers of which each
// increments a shared counter iters times under a lock, and main verifies
// the total.
func lockedCounterProg(workers, iters int) (*vm.Program, vm.Word) {
	b := asm.NewBuilder("locked-counter")
	counter := b.Words(0)
	okCell := b.Words(0)

	w := b.Func("worker", 1)
	{
		i := w.Reg()
		lk := w.Const(7)
		base := w.Const(counter)
		tmp := w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, vm.Word(iters), func() {
			w.LockR(lk)
			w.Ld(tmp, base, 0)
			w.Addi(tmp, tmp, 1)
			w.St(base, 0, tmp)
			w.UnlockR(lk)
		})
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		tids := m.Regs(workers)
		zero := m.Const(0)
		for k := 0; k < workers; k++ {
			m.Spawn(tids[k], "worker", zero)
		}
		for k := 0; k < workers; k++ {
			m.Join(tids[k])
		}
		got := m.Reg()
		base := m.Const(counter)
		m.Ld(got, base, 0)
		ok := m.Reg()
		m.Seqi(ok, got, vm.Word(workers*iters))
		okBase := m.Const(okCell)
		m.St(okBase, 0, ok)
		m.HaltImm(0)
	}
	b.SetEntry("main")
	return b.MustBuild(), okCell
}

// mixedProg exercises atomics, barriers, syscalls (alloc/time/rand/print)
// and per-thread work, race-free.
func mixedProg(workers, iters int) (*vm.Program, vm.Word) {
	b := asm.NewBuilder("mixed")
	next := b.Words(0)
	sum := b.Words(0)
	okCell := b.Words(0)
	results := b.Zeros(workers + 1)

	w := b.Func("worker", 1)
	{
		idx := w.Arg(0)
		i := w.Reg()
		acc := w.Reg()
		one := w.Const(1)
		nextA := w.Const(next)
		bar := w.Const(99)
		nthreads := w.Const(vm.Word(workers))
		got := w.Reg()
		w.Movi(acc, 0)
		w.Movi(i, 0)
		w.ForLtImm(i, vm.Word(iters), func() {
			w.Fadd(got, nextA, one)
			w.Add(acc, acc, got)
			// A syscall sprinkled in: ask for the time, discard it.
			w.Sys(simos.SysTime)
		})
		resBase := w.Const(results)
		w.Stx(resBase, idx, acc)
		w.Barrier(bar, nthreads)
		sumA := w.Const(sum)
		w.Fadd(got, sumA, acc)
		w.Halt(acc)
	}

	m := b.Func("main", 0)
	{
		tids := m.Regs(workers)
		arg := m.Reg()
		for k := 0; k < workers; k++ {
			m.Movi(arg, vm.Word(k))
			m.Spawn(tids[k], "worker", arg)
		}
		for k := 0; k < workers; k++ {
			m.Join(tids[k])
		}
		got := m.Reg()
		sumA := m.Const(sum)
		m.Ld(got, sumA, 0)
		// Every Fadd ticket 0..workers*iters-1 summed exactly once.
		n := vm.Word(workers * iters)
		ok := m.Reg()
		m.Seqi(ok, got, n*(n-1)/2)
		okA := m.Const(okCell)
		m.St(okA, 0, ok)
		// Commit something external.
		addr := m.Const(sum)
		cnt := m.Const(1)
		m.Sys(simos.SysPrint, addr, cnt)
		m.HaltImm(0)
	}
	b.SetEntry("main")
	return b.MustBuild(), okCell
}

// racyProg increments a counter without a lock: divergences expected.
func racyProg(workers, iters int) *vm.Program {
	b := asm.NewBuilder("racy")
	counter := b.Words(0)
	w := b.Func("worker", 1)
	{
		i := w.Reg()
		base := w.Const(counter)
		tmp := w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, vm.Word(iters), func() {
			w.Ld(tmp, base, 0)
			w.Addi(tmp, tmp, 1)
			w.St(base, 0, tmp)
		})
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	{
		tids := m.Regs(workers)
		zero := m.Const(0)
		for k := 0; k < workers; k++ {
			m.Spawn(tids[k], "worker", zero)
		}
		for k := 0; k < workers; k++ {
			m.Join(tids[k])
		}
		m.HaltImm(0)
	}
	b.SetEntry("main")
	return b.MustBuild()
}

func recordAndCheck(t *testing.T, prog *vm.Program, okCell vm.Word, opt Options) *Result {
	t.Helper()
	res, err := Record(prog, simos.NewWorld(opt.Seed), opt)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if res.Stats.GuestFaults != 0 {
		t.Fatalf("guest faults during recording: %d", res.Stats.GuestFaults)
	}
	if okCell != 0 {
		last := res.Boundaries[len(res.Boundaries)-1]
		if got := last.CP.MemSnap.Peek(okCell); got != 1 {
			t.Fatalf("guest self-check failed: ok cell = %d", got)
		}
	}
	return res
}

func TestRecordReplayLockedCounter(t *testing.T) {
	prog, ok := lockedCounterProg(3, 300)
	res := recordAndCheck(t, prog, ok, Options{Workers: 3, SpareCPUs: 4, EpochCycles: 3000, Seed: 42})
	if res.Stats.Epochs == 0 {
		t.Fatal("no epochs recorded")
	}

	seq, err := replay.Sequential(prog, res.Recording, nil, nil)
	if err != nil {
		t.Fatalf("Sequential replay: %v", err)
	}
	if seq.FinalHash != res.FinalHash {
		t.Fatalf("sequential replay hash mismatch")
	}

	par, err := replay.Parallel(prog, res.Recording, res.Boundaries, 4, nil, nil)
	if err != nil {
		t.Fatalf("Parallel replay: %v", err)
	}
	if par.Epochs != res.Stats.Epochs {
		t.Fatalf("parallel replay epochs = %d, want %d", par.Epochs, res.Stats.Epochs)
	}
}

func TestRecordReplayMixed(t *testing.T) {
	prog, ok := mixedProg(4, 200)
	res := recordAndCheck(t, prog, ok, Options{Workers: 4, SpareCPUs: 8, EpochCycles: 4000, Seed: 7})
	if res.Stats.Syscalls == 0 {
		t.Fatal("expected recorded syscalls")
	}
	if _, err := replay.Sequential(prog, res.Recording, nil, nil); err != nil {
		t.Fatalf("Sequential replay: %v", err)
	}
}

func TestRacyProgramRecoversAndReplays(t *testing.T) {
	prog := racyProg(3, 400)
	diverged := false
	for seed := int64(0); seed < 6; seed++ {
		res, err := Record(prog, simos.NewWorld(seed), Options{
			Workers: 3, SpareCPUs: 4, EpochCycles: 2500, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: Record: %v", seed, err)
		}
		if res.Stats.Divergences > 0 {
			diverged = true
		}
		// Regardless of divergences, the log must replay exactly.
		if _, err := replay.Sequential(prog, res.Recording, nil, nil); err != nil {
			t.Fatalf("seed %d: Sequential replay after %d divergences: %v",
				seed, res.Stats.Divergences, err)
		}
		if _, err := replay.Parallel(prog, res.Recording, res.Boundaries, 4, nil, nil); err != nil {
			t.Fatalf("seed %d: Parallel replay after %d divergences: %v",
				seed, res.Stats.Divergences, err)
		}
	}
	if !diverged {
		t.Log("note: no divergence observed across seeds (racy outcomes aligned)")
	}
}

func TestNativeMatchesSelfCheck(t *testing.T) {
	prog, ok := lockedCounterProg(2, 200)
	nat, err := RunNative(prog, simos.NewWorld(1), 3, 1, nil)
	if err != nil {
		t.Fatalf("RunNative: %v", err)
	}
	if len(nat.Faults) != 0 {
		t.Fatalf("faults: %v", nat.Faults)
	}
	_ = ok
	if nat.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
}
