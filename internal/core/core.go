// Package core implements DoublePlay's primary contribution: uniparallel
// recording. A thread-parallel execution of the guest runs across multiple
// simulated CPUs generating epoch checkpoints, while an epoch-parallel
// execution re-runs each epoch with all threads timesliced on one CPU,
// constrained by the recorded synchronisation order and fed the recorded
// syscall results. The epoch-parallel execution is the one that is logged
// — its log is just the timeslice schedule plus syscalls — and the one that
// replay reproduces. When a data race makes the two executions disagree at
// an epoch boundary, forward recovery adopts the epoch-parallel state as
// the truth and resumes the thread-parallel run from it.
//
// This package owns the recording control loop and everything only it can
// know: epoch boundary placement, the verification pipeline's timing model
// ([Options.SpareCPUs], or the adaptive spare-core controller behind
// [Options.Adaptive] — see adaptive.go), divergence detection and both
// forward-recovery strategies, and the per-run aggregates in [Stats]. When [Options.Trace]
// or [Options.Metrics] is set, the recorder additionally narrates the run
// — epoch/verify/commit spans, checkpoint and divergence events, log-append
// instants — without perturbing a single simulated cycle (see
// internal/trace and docs/OBSERVABILITY.md).
package core

import (
	"context"
	"errors"
	"fmt"

	"doubleplay/internal/analyze"
	"doubleplay/internal/dplog"
	"doubleplay/internal/epoch"
	"doubleplay/internal/profile"
	"doubleplay/internal/race"
	"doubleplay/internal/sched"
	"doubleplay/internal/simos"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
)

// DefaultEpochCycles is the default epoch length in simulated cycles,
// chosen so the evaluation workloads span tens of epochs — the regime the
// paper's steady-state pipeline numbers describe.
const DefaultEpochCycles = 25_000

// Options configure a recording run.
type Options struct {
	// RecordCPUs is the number of cores the thread-parallel execution uses;
	// it defaults to the guest's worker count + 1 when Workers is set, or 2.
	RecordCPUs int

	// SpareCPUs is the number of additional cores available to the
	// epoch-parallel pipeline. Zero selects the "utilized" configuration:
	// both executions time-share the record CPUs. With Adaptive set it is
	// the controller's starting point, clamped into
	// [AdaptiveMinSpares, AdaptiveMaxSpares].
	SpareCPUs int

	// Adaptive replaces the fixed SpareCPUs pipeline with a feedback
	// controller that grows and shrinks the active slot count at epoch
	// boundaries from the live commit-lag signal (see adaptive.go). The
	// controller only consumes simulated quantities and only acts at
	// epoch boundaries, so adaptive recordings stay deterministic and
	// replay bit-identically from the log alone.
	Adaptive bool

	// AdaptiveMinSpares and AdaptiveMaxSpares bound the controller.
	// Defaults: min 1; max SpareCPUs (or min, when larger).
	AdaptiveMinSpares int
	AdaptiveMaxSpares int

	// Workers documents the guest's worker thread count for reporting.
	Workers int

	// EpochCycles is the epoch length in simulated cycles.
	EpochCycles int64

	// EpochGrowth, when > 1, grows the epoch length geometrically after
	// every verified epoch, up to EpochCyclesMax. Short early epochs bound
	// divergence-detection latency while the program is young; long steady
	// -state epochs amortise checkpoint costs. A divergence resets the
	// length to EpochCycles.
	EpochGrowth    float64
	EpochCyclesMax int64

	// Quantum is the uniprocessor timeslice in retired instructions.
	Quantum int64

	// Seed drives all simulated timing nondeterminism.
	Seed int64

	// Costs overrides the cost model; nil selects vm.DefaultCosts.
	Costs *vm.CostModel

	// DisableSyncEnforcement turns off the sync-order gate during
	// epoch-parallel runs (ablation: every lock race becomes a divergence).
	DisableSyncEnforcement bool

	// DetectRaces attaches a happens-before detector to the epoch-parallel
	// executions. Races are reported in Result.Races. The detector observes
	// the verified (logged) execution stream; epochs replaced by re-run
	// recovery are not instrumented.
	DetectRaces bool

	// VerifyPolicy selects whether the epoch-parallel verification pass may
	// be skipped on the strength of a static race-freedom certificate. See
	// the VerifyCertified docs for the exact soundness and fallback rules.
	// The zero value, VerifyAlways, is the paper's behaviour.
	VerifyPolicy VerifyPolicy

	// MaxEpochs bounds the recording as a safety net.
	MaxEpochs int

	// Context, when non-nil, cancels the recording cooperatively: the
	// control loop checks it at every epoch boundary and returns
	// [ErrCanceled] (wrapping ctx.Err()) once it is done. Epoch
	// boundaries are the natural cancellation points — simulated state is
	// never left half-committed — so cancellation latency is bounded by
	// one epoch's host execution time.
	Context context.Context

	// Trace, when set, receives the recording's event timeline:
	// epoch/verify/commit spans, checkpoint create/restore, divergences and
	// recoveries, per-append syscall/sync/signal instants, and pipeline
	// slot occupancy. Both the buffered trace.Sink and the incremental
	// trace.StreamSink satisfy the interface. Tracing is observational
	// only — it never changes any simulated clock, so all Stats are
	// bit-identical with and without it. docs/OBSERVABILITY.md documents
	// every event.
	Trace trace.Recorder

	// Metrics, when non-nil, aggregates counters, gauges, and histograms
	// about the recording, labelled by workload (and epoch for per-epoch
	// series).
	Metrics *trace.Registry

	// Profile, when non-nil, accumulates a deterministic guest profile of
	// the logged execution: retired cycles attributed to guest call stacks,
	// derived purely from the retired-instruction streams the log captures.
	// Replaying the recording with any replay strategy regenerates the
	// exact same profile (see internal/profile). Like Trace, profiling is
	// observational only: no simulated quantity changes.
	Profile *profile.Profile
}

func (o Options) withDefaults() Options {
	if o.RecordCPUs <= 0 {
		if o.Workers > 0 {
			o.RecordCPUs = o.Workers + 1
		} else {
			o.RecordCPUs = 2
		}
	}
	if o.EpochCycles <= 0 {
		o.EpochCycles = DefaultEpochCycles
	}
	if o.EpochGrowth < 1 {
		o.EpochGrowth = 1
	}
	if o.EpochCyclesMax <= 0 {
		o.EpochCyclesMax = 16 * o.EpochCycles
	}
	if o.Quantum <= 0 {
		o.Quantum = sched.DefaultQuantum
	}
	if o.Costs == nil {
		o.Costs = vm.DefaultCosts()
	}
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 1 << 16
	}
	if o.Adaptive {
		if o.AdaptiveMinSpares <= 0 {
			o.AdaptiveMinSpares = 1
		}
		if o.AdaptiveMaxSpares <= 0 {
			o.AdaptiveMaxSpares = o.SpareCPUs
		}
		if o.AdaptiveMaxSpares < o.AdaptiveMinSpares {
			o.AdaptiveMaxSpares = o.AdaptiveMinSpares
		}
	}
	return o
}

// Stats aggregates everything the evaluation reports about one recording.
type Stats struct {
	Epochs      int
	Retired     int64 // guest instructions retired by the thread-parallel run
	SyncEvents  int   // gated sync operations logged
	Syscalls    int   // syscalls logged
	Signals     int   // asynchronous deliveries logged
	Slices      int   // timeslices in the replay schedule
	GuestFaults int

	Divergences     int // epochs whose executions disagreed
	HashRecoveries  int // recovered by adopting the epoch-parallel state
	RerunRecoveries int // recovered by re-running the epoch uniprocessor
	SquashedCycles  int64

	// SpareGrows and SpareShrinks count the adaptive controller's
	// decisions; ActiveSpares is the slot count at completion (equal to
	// SpareCPUs on fixed-spares runs, 0 in the utilized configuration).
	SpareGrows   int
	SpareShrinks int
	ActiveSpares int

	CheckpointPages int64 // Σ mapped pages over all checkpoints
	CowPages        int64 // pages copied by checkpoint copy-on-write

	// ThreadParallelCycles is when the thread-parallel run finished;
	// CompletionCycles is when the last epoch was verified and logged —
	// the time at which recording is complete and output commits.
	ThreadParallelCycles int64
	CompletionCycles     int64
	EpochSerialCycles    int64 // Σ epoch-parallel execution durations

	ReplayBytes int // encoded size of the replay log
	FullBytes   int // including the transient sync-order log
	FileBytes   int // actual on-disk dplog v6 size (sectioned, compressed)

	// VerifySkipped counts epochs committed directly from the logged
	// thread-parallel execution under VerifyCertified. Either zero or
	// equal to Epochs: the skip decision is made once, before recording.
	VerifySkipped int

	// CertStatus is the static certificate's classification when
	// VerifyCertified was requested ("race-free", "possibly-racy",
	// "incomplete"); empty under VerifyAlways.
	CertStatus string

	// VerifyFallback explains why a VerifyCertified run verified every
	// epoch anyway; empty when the skip was taken or never requested.
	VerifyFallback string
}

// Result is a completed recording.
type Result struct {
	Recording  *dplog.Recording
	Boundaries []*epoch.Boundary // epoch-start checkpoints, for parallel replay
	Stats      Stats
	FinalHash  uint64
	OutputHash uint64

	// Races holds the happens-before reports when Options.DetectRaces was
	// set.
	Races []race.Report

	// Divergences details every epoch whose executions disagreed.
	Divergences []DivergenceInfo

	// Certificate is the static race-freedom certificate consulted when
	// Options.VerifyPolicy was VerifyCertified; nil under VerifyAlways.
	Certificate *analyze.Certificate
}

// DivergenceInfo is the forensic record of one divergence.
type DivergenceInfo struct {
	Epoch int
	// Kind is "state" (end hashes differed; epoch-parallel state adopted)
	// or "input" (syscall/sync mismatch; epoch re-executed).
	Kind string
	// Reason carries the detector's message for input divergences.
	Reason string
	// Pages lists the memory pages on which the two executions disagreed
	// (state divergences only) — the hint a developer chases with the race
	// detector.
	Pages []vm.Word
}

// ReleaseCheckpoints drops the retained epoch-start checkpoints' hold on
// shared memory pages. Call it when parallel replay is no longer needed;
// the Recording itself remains valid for sequential replay.
func (r *Result) ReleaseCheckpoints() {
	for _, b := range r.Boundaries {
		b.CP.Release()
	}
	r.Boundaries = nil
}

// ThinBoundaries returns every stride-th boundary (always including the
// first and last), for memory-bounded segment-parallel replay via
// replay.ParallelSparse. The returned boundaries keep their epoch indices.
func (r *Result) ThinBoundaries(stride int) []*epoch.Boundary {
	if stride <= 1 {
		return r.Boundaries
	}
	var out []*epoch.Boundary
	for i, b := range r.Boundaries {
		if i%stride == 0 || i == len(r.Boundaries)-1 {
			out = append(out, b)
		}
	}
	return out
}

// recordOS wraps the simulated OS and appends every retired syscall to the
// current epoch's log, emitting a "syscall" trace instant per append when a
// sink is attached.
type recordOS struct {
	inner vm.SyscallHandler
	cur   *[]dplog.SyscallRecord
	tr    trace.Recorder
	trPid int64
}

func (r *recordOS) Syscall(m *vm.Machine, t *vm.Thread, num vm.Word, args [6]vm.Word) vm.SysResult {
	res := r.inner.Syscall(m, t, num, args)
	if !res.Block && res.Fault == "" {
		*r.cur = append(*r.cur, dplog.SyscallRecord{
			Tid: t.ID, Num: num, Args: args, Ret: res.Ret, Writes: res.Writes,
		})
		if trace.Enabled(r.tr) {
			r.tr.Instant("syscall", m.Now, r.trPid, int64(t.ID), map[string]any{"num": num})
		}
	}
	return res
}

// sysLogCost prices recording a batch of syscall records: a flat append
// plus a fraction of the input data copied into the log buffer.
func sysLogCost(recs []dplog.SyscallRecord, c *vm.CostModel) int64 {
	var cost int64
	for i := range recs {
		cost += c.SysLogEvent
		for _, w := range recs[i].Writes {
			cost += int64(len(w.Data)) / 8
		}
	}
	return cost
}

// pipeline models when each epoch's epoch-parallel execution runs and
// finishes, given the spare cores available. With spare cores it is an
// event-driven machine: an epoch starts when its start checkpoint exists
// and a spare core frees up, and cannot commit before its end checkpoint
// exists. With no spare cores ("utilized"), epoch work displaces
// thread-parallel work on the same cores.
//
// Slots beyond active are parked: they take no new work, but work already
// scheduled on them still finishes. The adaptive controller parks and
// unparks slots at epoch boundaries via setActive; fixed-spares pipelines
// keep active == len(spares) for the whole run.
type pipeline struct {
	spares     []int64
	active     int
	recordCPUs int
	busy       int64
	lastFinish int64
}

func newPipeline(spare, recordCPUs int) *pipeline {
	p := &pipeline{recordCPUs: recordCPUs}
	if spare > 0 {
		p.spares = make([]int64, spare)
		p.active = spare
	}
	return p
}

// newAdaptivePipeline allocates maxSlots slots with only the first active
// ones initially unparked.
func newAdaptivePipeline(maxSlots, active, recordCPUs int) *pipeline {
	return &pipeline{
		spares:     make([]int64, maxSlots),
		active:     active,
		recordCPUs: recordCPUs,
	}
}

// setActive parks or unparks slots at simulated cycle now. An unparked
// slot models a core acquired at the decision point: it cannot have been
// free before now, so its free-time is raised to now.
func (p *pipeline) setActive(n int, now int64) {
	if n < 1 {
		n = 1
	}
	if n > len(p.spares) {
		n = len(p.spares)
	}
	for i := p.active; i < n; i++ {
		if p.spares[i] < now {
			p.spares[i] = now
		}
	}
	p.active = n
}

// placement reports where the pipeline ran one epoch's verification: on
// which spare core (slot, -1 in the utilized configuration), over which
// simulated interval, and whether it had to wait for a core — the
// occupancy-saturation signal the adaptive controller consumes. finish is
// the epoch's commit point.
type placement struct {
	slot          int
	start, finish int64
	waited        bool
}

func (p *pipeline) schedule(startReady, checkReady, dur int64) placement {
	if p.active > 0 {
		c := 0
		for i := 1; i < p.active; i++ {
			if p.spares[i] < p.spares[c] {
				c = i
			}
		}
		start := p.spares[c]
		waited := start > startReady
		if start < startReady {
			start = startReady
		}
		fin := start + dur
		if fin < checkReady {
			fin = checkReady
		}
		p.spares[c] = fin
		if fin > p.lastFinish {
			p.lastFinish = fin
		}
		return placement{slot: c, start: start, finish: fin, waited: waited}
	}
	start := checkReady + p.busy/int64(p.recordCPUs)
	p.busy += dur
	fin := checkReady + p.busy/int64(p.recordCPUs)
	if fin > p.lastFinish {
		p.lastFinish = fin
	}
	return placement{slot: -1, start: start, finish: fin}
}

// slotTid maps a pipeline slot to its trace track id within the record
// process: tid 0 is the epoch/recovery track, spare slot s is tid 1+s, and
// the utilized configuration's smeared epoch work shares tid 1.
func slotTid(slot int) int64 {
	if slot < 0 {
		return 1
	}
	return int64(1 + slot)
}

func (p *pipeline) completion(tpFinish int64) int64 {
	fin := tpFinish
	if len(p.spares) == 0 {
		fin += p.busy / int64(p.recordCPUs)
	}
	if p.lastFinish > fin {
		fin = p.lastFinish
	}
	return fin
}

// Record performs a uniparallel recording of prog against world. The world
// is mutated; pass a freshly built one.
func Record(prog *vm.Program, world *simos.World, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	costs := opt.Costs

	// Normalize the recorder so every tr.Enabled() below is safe: a nil
	// interface becomes the canonical disabled sink (a typed-nil *Sink,
	// whose methods are nil-safe no-ops).
	tr := opt.Trace
	if tr == nil {
		tr = (*trace.Sink)(nil)
	}
	reg := opt.Metrics
	var wl string // workload label for metrics
	if reg != nil {
		wl = trace.Label("workload", prog.Name)
	}
	// Static race-freedom certification. Under VerifyCertified a race-free
	// certificate lets every epoch commit directly from the logged
	// thread-parallel execution; any other status — or an option that needs
	// the epoch-parallel pass regardless — falls back to full verification
	// with the reason recorded in Stats.VerifyFallback.
	var cert *analyze.Certificate
	certified := false
	fallback := ""
	if opt.VerifyPolicy == VerifyCertified {
		cert = analyze.Run(prog).Cert
		switch {
		case opt.DetectRaces:
			fallback = "race detection requires the epoch-parallel pass"
		case opt.DisableSyncEnforcement:
			fallback = "sync-order enforcement disabled; the certificate assumes the gate"
		case !cert.RaceFree():
			fallback = fmt.Sprintf("certificate is %s, not race-free", cert.Status)
		default:
			certified = true
		}
	}
	// The adaptive controller replaces the fixed slot count: SpareCPUs
	// becomes the starting point, and the pipeline gets MaxSpares slots of
	// which only the controller's active count take work. A certified run
	// has no verification pipeline to pace, so the controller stays off.
	var ctl *Controller
	slots := opt.SpareCPUs
	if opt.Adaptive && !certified {
		ctl = NewController(opt.AdaptiveMinSpares, opt.AdaptiveMaxSpares, opt.SpareCPUs)
		slots = opt.AdaptiveMaxSpares
	}
	var pidRec, pidGuest int64
	if tr.Enabled() {
		pidRec = tr.AllocPid("record " + prog.Name)
		pidGuest = tr.AllocPid("guest " + prog.Name + " (thread-parallel)")
		tr.NameThread(pidRec, 0, "epochs + recovery")
		if slots > 0 {
			for s := 0; s < slots; s++ {
				tr.NameThread(pidRec, int64(1+s), fmt.Sprintf("pipeline slot %d", s))
			}
		} else {
			tr.NameThread(pidRec, 1, "epoch work (shared cores)")
		}
		if ctl != nil {
			tr.Instant("ctl.enable", 0, pidRec, 0, map[string]any{
				"min": ctl.Min, "max": ctl.Max, "active": ctl.Active(),
			})
			tr.Counter("ctl.active", 0, pidRec, int64(ctl.Active()))
		}
		if cert != nil {
			tr.Instant("certify", 0, pidRec, 0, map[string]any{
				"status": string(cert.Status), "skip": certified, "fallback": fallback,
			})
		}
	}

	var curSys []dplog.SyscallRecord
	var curSync []dplog.SyncRecord
	var curSigs []dplog.SignalRecord

	liveWorld := world
	ros := &recordOS{inner: simos.NewOS(liveWorld), cur: &curSys, tr: tr, trPid: pidGuest}

	var m *vm.Machine
	syncHook := func(ev vm.SyncEvent) {
		if ev.Gated() {
			curSync = append(curSync, dplog.SyncRecord{Tid: ev.Tid, Kind: ev.Obj.Kind, ID: ev.Obj.ID})
			if tr.Enabled() {
				tr.Instant("sync", m.Now, pidGuest, int64(ev.Tid),
					map[string]any{"kind": ev.Obj.Kind.String(), "id": ev.Obj.ID})
			}
		}
	}

	m = vm.NewMachine(prog, ros, costs)
	m.Hooks.OnSync = syncHook
	// Signal deliveries come from the world's script and are logged with
	// the exact retired-instruction position they interrupted.
	sigHook := func(t *vm.Thread) (vm.Word, bool) {
		sig, ok := liveWorld.NextSignal(t.ID, m.Now)
		if ok {
			curSigs = append(curSigs, dplog.SignalRecord{Tid: t.ID, Retired: t.Retired, Sig: sig})
			if tr.Enabled() {
				tr.Instant("signal", m.Now, pidGuest, int64(t.ID),
					map[string]any{"sig": sig, "retired": t.Retired})
			}
		}
		return sig, ok
	}
	m.Hooks.PendingSignal = sigHook
	// Certified recordings log the thread-parallel execution itself, so the
	// guest profile is gathered there; otherwise it comes from the
	// epoch-parallel runs below — the execution the log actually describes
	// and replay reproduces.
	var liveProf *profile.Profiler
	if opt.Profile != nil && certified {
		liveProf = profile.New(prog)
		liveProf.Attach(m)
	}
	par := sched.NewParallel(m, opt.RecordCPUs, opt.Seed)
	par.Trace = tr
	par.TracePid = pidGuest

	boundaries := []*epoch.Boundary{epoch.Capture(0, 0, m, liveWorld)}
	if tr.Enabled() {
		tr.Instant("checkpoint.create", 0, pidRec, 0,
			map[string]any{"epoch": 0, "pages": boundaries[0].MappedPages})
	}
	rec := &dplog.Recording{Program: prog.Name, Workers: opt.Workers, Seed: opt.Seed, Quantum: opt.Quantum}
	pl := newPipeline(opt.SpareCPUs, opt.RecordCPUs)
	if ctl != nil {
		pl = newAdaptivePipeline(slots, ctl.Active(), opt.RecordCPUs)
	}
	var stats Stats
	if cert != nil {
		stats.CertStatus = string(cert.Status)
		stats.VerifyFallback = fallback
	}
	var det *race.Detector
	if opt.DetectRaces {
		det = race.NewDetector(0)
	}
	var divInfo []DivergenceInfo

	epochLen := opt.EpochCycles
	for !m.Done() {
		if opt.Context != nil {
			if err := opt.Context.Err(); err != nil {
				return nil, fmt.Errorf("%w after %d epochs: %w", ErrCanceled, len(rec.Epochs), err)
			}
		}
		if len(boundaries) > opt.MaxEpochs {
			return nil, fmt.Errorf("core: exceeded %d epochs; runaway guest?", opt.MaxEpochs)
		}
		// Thread-parallel execution of one epoch.
		next := boundaries[len(boundaries)-1].Cycle + epochLen
		var runErr error
		profile.WithPhase(opt.Context, "record", func() { runErr = par.RunUntil(next) })
		if runErr != nil {
			return nil, fmt.Errorf("core: thread-parallel run failed: %w", runErr)
		}

		// Charge the record-time costs this epoch accrued: log appends,
		// copy-on-write traffic behind the last checkpoint, and the
		// checkpoint we are about to take.
		cow := m.Mem.Stats().PagesCopied
		m.Mem.ResetStats()
		mapped := int64(m.Mem.PageCount())
		par.AddCost(int64(len(curSync)+len(curSigs))*costs.SyncLogEvent +
			sysLogCost(curSys, costs) +
			costs.CheckpointBase + costs.CheckpointPage*mapped +
			cow*costs.CowCopyPage)
		stats.CheckpointPages += mapped
		stats.CowPages += cow

		b := epoch.Capture(len(boundaries), par.Now(), m, liveWorld)
		boundaries = append(boundaries, b)
		i := len(boundaries) - 2
		start := boundaries[i]

		ep := &dplog.EpochLog{
			Index:     i,
			Targets:   b.Targets(),
			SyncOrder: curSync,
			Syscalls:  curSys,
			Signals:   curSigs,
			StartHash: start.Hash,
		}
		stats.SyncEvents += len(curSync)
		stats.Syscalls += len(curSys)
		stats.Signals += len(curSigs)
		curSync = nil
		curSys = nil
		curSigs = nil

		if tr.Enabled() {
			// The thread-parallel execution of epoch i, and the log-append
			// running totals at its boundary. The epoch span count always
			// equals Stats.Epochs: every loop iteration logs exactly one.
			tr.Span("epoch", start.Cycle, b.Cycle-start.Cycle, pidRec, 0, map[string]any{
				"epoch": i, "syscalls": len(ep.Syscalls), "syncops": len(ep.SyncOrder),
				"signals": len(ep.Signals),
			})
			tr.Instant("checkpoint.create", b.Cycle, pidRec, 0,
				map[string]any{"epoch": i + 1, "pages": mapped, "cow_pages": cow})
			tr.Counter("log.syscalls", b.Cycle, pidRec, int64(stats.Syscalls))
			tr.Counter("log.syncops", b.Cycle, pidRec, int64(stats.SyncEvents))
			tr.Counter("log.signals", b.Cycle, pidRec, int64(stats.Signals))
			tr.Counter("mem.pages", b.Cycle, pidRec, mapped)
		}

		if certified {
			// Certified commit: the certificate proves every
			// sync-order-respecting execution reaches this boundary state, so
			// the logged thread-parallel execution IS the verified execution.
			// No epoch-parallel pass, no comparison, no pipeline occupancy —
			// the epoch commits at its own boundary, and replay free-runs it
			// under the SyncOrder gate (any mismatch there is a soundness
			// bug, surfaced as replay.ErrCertViolated, never a divergence).
			ep.EndHash = b.Hash
			ep.Certified = true
			ep.CommitHash = b.World.OutputHash()
			rec.Epochs = append(rec.Epochs, ep)
			stats.VerifySkipped++
			if tr.Enabled() {
				tr.Instant("epoch.verify.skipped", b.Cycle, pidRec, 0,
					map[string]any{"epoch": i, "cert": string(cert.Status)})
				tr.Instant("epoch.commit", b.Cycle, pidRec, 0,
					map[string]any{"epoch": i, "lag": int64(0)})
			}
			if reg != nil {
				reg.Add("record.verify_skipped", 1, wl)
				reg.Observe("epoch.syscalls", int64(len(ep.Syscalls)), wl)
				reg.Observe("epoch.syncops", int64(len(ep.SyncOrder)), wl)
				reg.Observe("checkpoint.pages", mapped, wl)
				reg.Add("record.cow_pages", cow, wl)
			}
			if opt.EpochGrowth > 1 {
				grown := int64(float64(epochLen) * opt.EpochGrowth)
				if grown > opt.EpochCyclesMax {
					grown = opt.EpochCyclesMax
				}
				epochLen = grown
			}
			continue
		}

		// Epoch-parallel execution of epoch i, constrained and injected.
		// With tracing on, its timeslices accumulate in a buffer with
		// epoch-local timestamps, spliced below once the pipeline places
		// the epoch in simulated time.
		var epbuf *trace.Sink
		if tr.Enabled() {
			epbuf = trace.NewSink()
		}
		spec := epoch.RunSpec{
			Prog:               prog,
			Start:              start,
			Targets:            ep.Targets,
			SyncOrder:          ep.SyncOrder,
			Syscalls:           ep.Syscalls,
			Signals:            ep.Signals,
			Quantum:            opt.Quantum,
			Costs:              costs,
			DisableEnforcement: opt.DisableSyncEnforcement,
			Trace:              epbuf,
		}
		if det != nil {
			spec.OnSync = det.OnSync
			spec.OnMemAccess = det.OnMemAccess
		}
		var epProf *profile.Profiler
		if opt.Profile != nil {
			epProf = profile.New(prog)
			spec.Profile = epProf
		}
		var res *epoch.RunResult
		var err error
		profile.WithPhase(opt.Context, "verify", func() { res, err = epoch.Run(spec) })
		compareCost := costs.ComparePage * mapped
		dur := res.Cycles + compareCost
		stats.EpochSerialCycles += dur

		ep.CommitHash = b.World.OutputHash()

		// pm and commitCyc survive the switch for the adaptive controller:
		// every path schedules the epoch through the pipeline and commits
		// it at some cycle, and the controller samples that commit's lag.
		var pm placement
		var commitCyc int64
		switch {
		case err == nil && res.EndHash == b.Hash:
			// Verified: the epoch-parallel execution reached the same state.
			ep.EndHash = b.Hash
			ep.Schedule = res.Schedule
			rec.Epochs = append(rec.Epochs, ep)
			if epProf != nil {
				opt.Profile.Merge(epProf.Snapshot())
			}
			pm = pl.schedule(start.Cycle, b.Cycle, dur)
			commitCyc = pm.finish
			traceVerify(tr, pidRec, pm, epbuf, i, dur, true)
			if tr.Enabled() {
				tr.Instant("epoch.commit", pm.finish, pidRec, slotTid(pm.slot),
					map[string]any{"epoch": i, "lag": pm.finish - b.Cycle})
			}
			if opt.EpochGrowth > 1 {
				grown := int64(float64(epochLen) * opt.EpochGrowth)
				if grown > opt.EpochCyclesMax {
					grown = opt.EpochCyclesMax
				}
				epochLen = grown
			}

		case err == nil:
			// A data race made the epoch-parallel run reach a different —
			// but equally valid — state. Both runs consumed identical
			// inputs (injection verified that), so the world snapshot at
			// the boundary is still correct; only the architectural state
			// is replaced. Forward recovery: adopt, squash, resume.
			stats.Divergences++
			stats.HashRecoveries++
			pages := res.M.Mem.DiffPages(b.CP.MemSnap.Restore())
			divInfo = append(divInfo, DivergenceInfo{
				Epoch: i,
				Kind:  "state",
				Pages: pages,
			})
			ep.EndHash = res.EndHash
			ep.Schedule = res.Schedule
			rec.Epochs = append(rec.Epochs, ep)
			if epProf != nil {
				// The epoch-parallel run is the one the log describes, so
				// its profile stands even though it diverged from the
				// thread-parallel states.
				opt.Profile.Merge(epProf.Snapshot())
			}
			pm = pl.schedule(start.Cycle, b.Cycle, dur)
			detect := pm.finish
			commitCyc = detect
			stats.SquashedCycles += maxi64(0, detect-b.Cycle)
			nb := &epoch.Boundary{
				Index:       b.Index,
				Cycle:       detect,
				CP:          res.M.Checkpoint(),
				World:       b.World,
				Hash:        res.EndHash,
				MappedPages: res.M.Mem.PageCount(),
			}
			boundaries[len(boundaries)-1] = nb
			traceVerify(tr, pidRec, pm, epbuf, i, dur, false)
			if tr.Enabled() {
				tr.Instant("divergence", detect, pidRec, 0,
					map[string]any{"epoch": i, "kind": "state", "pages": len(pages)})
				tr.Instant("recovery.adopt", detect, pidRec, 0, map[string]any{"epoch": i})
				tr.Instant("epoch.commit", detect, pidRec, slotTid(pm.slot),
					map[string]any{"epoch": i, "lag": detect - b.Cycle})
				tr.Instant("checkpoint.create", detect, pidRec, 0,
					map[string]any{"epoch": nb.Index, "pages": nb.MappedPages, "reason": "recovery.adopt"})
				tr.Instant("checkpoint.restore", detect, pidRec, 0,
					map[string]any{"epoch": nb.Index, "reason": "recovery.adopt"})
			}
			m, par = resumeFrom(prog, nb, ros, syncHook, sigHook, costs, opt, detect, len(boundaries), pidGuest)
			liveWorld = currentWorld(ros)
			epochLen = opt.EpochCycles // divergence: back to short epochs

		case epoch.IsDivergence(err):
			// The epoch-parallel run departed before the boundary (syscall
			// or sync-order mismatch). Roll the world back to the epoch
			// start — the simulator analogue of the paper's buffered-input
			// redelivery — and re-execute the epoch uniprocessor against
			// the real OS. That free run becomes the epoch's log and its
			// end state becomes the truth.
			stats.Divergences++
			stats.RerunRecoveries++
			divInfo = append(divInfo, DivergenceInfo{Epoch: i, Kind: "input", Reason: err.Error()})
			quota := sumTargets(ep.Targets) - sumRetired(start.CP)
			var rrbuf *trace.Sink
			if tr.Enabled() {
				rrbuf = trace.NewSink()
			}
			reb, rr, rerr := rerunEpoch(prog, start, quota, costs, opt, rrbuf)
			if rerr != nil {
				return nil, fmt.Errorf("core: forward recovery of epoch %d failed: %w", i, rerr)
			}
			rcycles := rr.cycles
			ep.Targets = reb.Targets()
			ep.SyncOrder = nil
			ep.Syscalls = rr.sys
			ep.Signals = rr.sigs
			ep.Schedule = rr.sched
			ep.EndHash = reb.Hash
			ep.CommitHash = reb.World.OutputHash()
			rec.Epochs = append(rec.Epochs, ep)
			pm = pl.schedule(start.Cycle, b.Cycle, dur)
			detect := pm.finish + rcycles
			commitCyc = detect
			stats.SquashedCycles += maxi64(0, detect-b.Cycle)
			stats.EpochSerialCycles += rcycles
			reb.Cycle = detect
			boundaries[len(boundaries)-1] = reb
			traceVerify(tr, pidRec, pm, epbuf, i, dur, false)
			if tr.Enabled() {
				tr.Instant("divergence", pm.finish, pidRec, 0,
					map[string]any{"epoch": i, "kind": "input", "reason": err.Error()})
				tr.Instant("checkpoint.restore", pm.finish, pidRec, 0,
					map[string]any{"epoch": i, "reason": "recovery.rerun"})
				tr.Span("recovery.rerun", pm.finish, rcycles, pidRec, 0, map[string]any{"epoch": i})
				tr.Splice(rrbuf, pm.finish, pidRec, 0)
				tr.Instant("checkpoint.create", detect, pidRec, 0,
					map[string]any{"epoch": reb.Index, "pages": reb.MappedPages, "reason": "recovery.rerun"})
				tr.Instant("epoch.commit", detect, pidRec, 0,
					map[string]any{"epoch": i, "lag": detect - b.Cycle})
				tr.Instant("checkpoint.restore", detect, pidRec, 0,
					map[string]any{"epoch": reb.Index, "reason": "resume"})
			}
			m, par = resumeFrom(prog, reb, ros, syncHook, sigHook, costs, opt, detect, len(boundaries), pidGuest)
			liveWorld = currentWorld(ros)
			epochLen = opt.EpochCycles // divergence: back to short epochs

		default:
			return nil, fmt.Errorf("core: epoch %d verification failed: %w", i, err)
		}

		if ctl != nil {
			// One sample per epoch boundary: the commit lag the pipeline
			// model assigned this epoch, and whether it waited for a slot.
			// A decision parks or unparks slots before the next epoch is
			// scheduled; the unparked core is only available from here on.
			lag := commitCyc - b.Cycle
			if dec := ctl.Observe(i, lag, pm.waited, opt.EpochCycles); dec != 0 {
				pl.setActive(ctl.Active(), commitCyc)
				if tr.Enabled() {
					name := "ctl.grow"
					if dec < 0 {
						name = "ctl.shrink"
					}
					tr.Instant(name, commitCyc, pidRec, 0, map[string]any{
						"epoch": i, "active": ctl.Active(), "lag": lag,
					})
					tr.Counter("ctl.active", commitCyc, pidRec, int64(ctl.Active()))
				}
				if reg != nil {
					if dec > 0 {
						reg.Add("ctl.grows", 1, wl)
					} else {
						reg.Add("ctl.shrinks", 1, wl)
					}
					reg.Set("ctl.active_spares", float64(ctl.Active()), wl)
				}
			}
		}

		if reg != nil {
			reg.Observe("epoch.cycles", dur, wl)
			reg.Observe("epoch.syscalls", int64(len(ep.Syscalls)), wl)
			reg.Observe("epoch.syncops", int64(len(ep.SyncOrder)), wl)
			reg.Observe("checkpoint.pages", mapped, wl)
			reg.Add("record.cow_pages", cow, wl)
			reg.Set("epoch.duration_cycles", float64(dur), wl, trace.Label("epoch", i))
		}
	}

	if liveProf != nil {
		opt.Profile.Merge(liveProf.Snapshot())
	}
	last := boundaries[len(boundaries)-1]
	rec.FinalHash = last.Hash
	rec.OutputHash = last.World.OutputHash()

	stats.Epochs = len(rec.Epochs)
	stats.Retired = totalRetired(last.CP)
	stats.Slices = rec.Slices()
	stats.Syscalls = rec.SyscallCount()
	stats.SyncEvents = rec.SyncOps()
	stats.Signals = rec.SignalCount()
	stats.GuestFaults = m.FaultCount()
	stats.ThreadParallelCycles = par.WallTime()
	stats.CompletionCycles = pl.completion(par.WallTime())
	profile.WithPhase(opt.Context, "commit", func() {
		stats.ReplayBytes = rec.ReplaySize()
		stats.FullBytes = rec.FullSize()
		stats.FileBytes = len(dplog.MarshalBytes(rec))
	})
	stats.ActiveSpares = opt.SpareCPUs
	if ctl != nil {
		stats.ActiveSpares = ctl.Active()
		stats.SpareGrows = ctl.Grows()
		stats.SpareShrinks = ctl.Shrinks()
	}

	if tr.Enabled() {
		tr.Instant("record.done", stats.CompletionCycles, pidRec, 0, map[string]any{
			"epochs": stats.Epochs, "divergences": stats.Divergences,
			"syscalls": stats.Syscalls, "replay_bytes": stats.ReplayBytes,
		})
	}
	if reg != nil {
		reg.Add("record.runs", 1, wl)
		reg.Add("record.epochs", int64(stats.Epochs), wl)
		reg.Add("record.divergences", int64(stats.Divergences), wl)
		reg.Add("record.syscalls", int64(stats.Syscalls), wl)
		reg.Add("record.syncops", int64(stats.SyncEvents), wl)
		reg.Add("record.signals", int64(stats.Signals), wl)
		reg.Set("record.completion_cycles", float64(stats.CompletionCycles), wl)
		reg.Set("record.thread_parallel_cycles", float64(stats.ThreadParallelCycles), wl)
		reg.Set("record.replay_bytes", float64(stats.ReplayBytes), wl)
		reg.Set("record.file_bytes", float64(stats.FileBytes), wl)
		if ctl != nil {
			reg.Set("ctl.active_spares", float64(ctl.Active()), wl)
		}
	}

	out := &Result{
		Recording:  rec,
		Boundaries: boundaries,
		Stats:      stats,
		FinalHash:  rec.FinalHash,
		OutputHash: rec.OutputHash,
	}
	if det != nil {
		out.Races = det.Races()
	}
	out.Divergences = divInfo
	out.Certificate = cert
	return out, nil
}

// traceVerify emits one epoch's "epoch.verify" pipeline span and splices
// the epoch-parallel run's buffered timeslices at the span's start. The
// splice is skipped in the utilized configuration (slot -1), whose epoch
// work is smeared across the record CPUs rather than run contiguously.
func traceVerify(tr trace.Recorder, pidRec int64, pm placement, epbuf *trace.Sink, ep int, dur int64, verified bool) {
	if !trace.Enabled(tr) {
		return
	}
	tid := slotTid(pm.slot)
	tr.Span("epoch.verify", pm.start, pm.finish-pm.start, pidRec, tid, map[string]any{
		"epoch": ep, "slot": pm.slot, "cycles": dur, "verified": verified,
	})
	if pm.slot >= 0 {
		tr.Splice(epbuf, pm.start, pidRec, tid)
	}
}

// resumeFrom rebuilds the thread-parallel machine and scheduler from an
// adopted boundary; the live world becomes a clone of the boundary's.
func resumeFrom(prog *vm.Program, b *epoch.Boundary, ros *recordOS,
	syncHook func(vm.SyncEvent), sigHook func(*vm.Thread) (vm.Word, bool),
	costs *vm.CostModel, opt Options, clock int64, salt int, tracePid int64) (*vm.Machine, *sched.Parallel) {
	w := b.World.Clone()
	ros.inner = simos.NewOS(w)
	m := b.CP.Restore(prog, ros, costs)
	m.Hooks.OnSync = syncHook
	m.Hooks.PendingSignal = sigHook
	par := sched.NewParallel(m, opt.RecordCPUs, opt.Seed+int64(salt)*7919)
	par.Trace = opt.Trace
	par.TracePid = tracePid
	par.SetBaseClock(clock)
	return m, par
}

// currentWorld digs the live world back out of the record wrapper.
func currentWorld(ros *recordOS) *simos.World {
	return ros.inner.(*simos.OS).W
}

// rerunResult bundles the logs a recovery re-execution produced.
type rerunResult struct {
	sched  []dplog.Slice
	sys    []dplog.SyscallRecord
	sigs   []dplog.SignalRecord
	cycles int64
}

// rerunEpoch performs the re-execution half of forward recovery: a free
// uniprocessor run of roughly one epoch's worth of instructions from the
// boundary, against a rolled-back world, with its schedule, syscalls, and
// signal deliveries recorded. When buf is non-nil the re-execution's
// timeslices and log appends are traced into it with run-local timestamps;
// the caller splices them under the "recovery.rerun" span.
func rerunEpoch(prog *vm.Program, start *epoch.Boundary, quota uint64,
	costs *vm.CostModel, opt Options, buf *trace.Sink) (*epoch.Boundary, *rerunResult, error) {
	w := start.World.Clone()
	rr := &rerunResult{}
	ros := &recordOS{inner: simos.NewOS(w), cur: &rr.sys, tr: buf}
	m := start.CP.Restore(prog, ros, costs)
	// The re-execution replaces the squashed epoch in the log, so it is the
	// run the guest profile must describe (the squashed epoch-parallel
	// attempt's profile is discarded by the caller).
	var prof *profile.Profiler
	if opt.Profile != nil {
		prof = profile.New(prog)
		prof.Attach(m)
	}
	m.Hooks.PendingSignal = func(t *vm.Thread) (vm.Word, bool) {
		sig, ok := w.NextSignal(t.ID, m.Now)
		if ok {
			rr.sigs = append(rr.sigs, dplog.SignalRecord{Tid: t.ID, Retired: t.Retired, Sig: sig})
			if buf.Enabled() {
				buf.Instant("signal", m.Now, 0, int64(t.ID), map[string]any{"sig": sig, "retired": t.Retired})
			}
		}
		return sig, ok
	}
	uni := sched.NewUni(m)
	uni.Quantum = opt.Quantum
	uni.LogSchedule = true
	uni.Trace = buf
	if quota == 0 {
		quota = 1
	}
	uni.TotalBudget = quota
	if err := uni.Run(); err != nil && !m.Done() {
		return nil, nil, err
	}
	rr.sched = uni.Log
	rr.cycles = uni.Cycles
	if prof != nil {
		opt.Profile.Merge(prof.Snapshot())
	}
	b := epoch.Capture(start.Index+1, 0, m, w)
	return b, rr, nil
}

func sumTargets(ts []uint64) uint64 {
	var n uint64
	for _, t := range ts {
		n += t
	}
	return n
}

func sumRetired(cp *vm.Checkpoint) uint64 {
	var n uint64
	for _, t := range cp.Threads {
		n += t.Retired
	}
	return n
}

func totalRetired(cp *vm.Checkpoint) int64 {
	return int64(sumRetired(cp))
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// NativeResult reports a plain parallel execution with no recording.
type NativeResult struct {
	Cycles     int64
	Retired    int64
	FinalHash  uint64
	OutputHash uint64
	Faults     []string
}

// RunNative executes prog against world on cpus cores with no DoublePlay
// machinery — the baseline denominator for every overhead figure.
func RunNative(prog *vm.Program, world *simos.World, cpus int, seed int64, costs *vm.CostModel) (*NativeResult, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	m := vm.NewMachine(prog, simos.NewOS(world), costs)
	par := sched.NewParallel(m, cpus, seed)
	if err := par.Run(); err != nil {
		return nil, err
	}
	return &NativeResult{
		Cycles:     par.WallTime(),
		Retired:    par.Retired(),
		FinalHash:  m.StateHash(),
		OutputHash: world.OutputHash(),
		Faults:     m.Faults(),
	}, nil
}

// ErrTooManyEpochs is returned when MaxEpochs is exceeded.
var ErrTooManyEpochs = errors.New("core: too many epochs")

// ErrCanceled is returned when Options.Context ends a recording at an
// epoch boundary. errors.Is also matches the context's own error
// (context.Canceled or context.DeadlineExceeded), which is how callers
// distinguish an explicit cancel from a timeout.
var ErrCanceled = errors.New("core: recording canceled")
