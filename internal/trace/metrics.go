package trace

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Registry aggregates named metrics across runs: monotone counters, last-
// value gauges, and power-of-two-bucket histograms. Metrics are keyed by
// name plus free-form "k=v" labels — the recorder labels everything with
// the workload, and per-epoch series additionally with the epoch index —
// so one registry can hold a whole benchmark sweep. A nil *Registry
// disables collection: every method is a no-op. Registries are safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Histogram),
	}
}

// Label formats one "k=v" label.
func Label(k string, v any) string { return fmt.Sprintf("%s=%v", k, v) }

// metricKey is the canonical series key: name{label1,label2,...}.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + strings.Join(labels, ",") + "}"
}

// Add increments a counter.
func (r *Registry) Add(name string, delta int64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[metricKey(name, labels)] += delta
	r.mu.Unlock()
}

// Set records the current value of a gauge.
func (r *Registry) Set(name string, v float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[metricKey(name, labels)] = v
	r.mu.Unlock()
}

// Observe adds one sample to a histogram. Negative samples clamp to 0.
func (r *Registry) Observe(name string, v int64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	k := metricKey(name, labels)
	h := r.hists[k]
	if h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Counter returns a counter's current value (0 if never incremented).
func (r *Registry) Counter(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[metricKey(name, labels)]
}

// Gauge returns a gauge's last value (0 if never set).
func (r *Registry) Gauge(name string, labels ...string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[metricKey(name, labels)]
}

// Hist returns a snapshot of a histogram, or nil if it has no samples.
func (r *Registry) Hist(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[metricKey(name, labels)]
	if h == nil {
		return nil
	}
	cp := *h
	return &cp
}

// Histogram buckets samples by bit length: bucket i holds samples v with
// bits.Len64(v) == i, i.e. exponentially wider buckets. Quantiles are
// therefore approximate (bucket upper bound), which is enough to read off
// epoch-duration spread without storing samples.
type Histogram struct {
	Count, Sum int64
	Min, Max   int64
	Buckets    [65]int64
}

func (h *Histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(uint64(v))]++
}

// Quantile returns an upper bound on the q-quantile sample. The edges are
// exact rather than bucket bounds: an empty histogram returns 0, q <= 0
// returns Min, and q >= 1 returns Max (out-of-range q clamps to [0, 1]).
// Interior quantiles return the containing bucket's upper bound, clamped
// into [Min, Max].
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := int64(q * float64(h.Count-1))
	var seen int64
	for i, n := range h.Buckets {
		seen += n
		if seen > rank {
			// Bucket i holds samples with bit length i: upper bound 2^i - 1
			// (bucket 0 holds only zeros).
			ub := int64(1)<<uint(i) - 1
			if ub > h.Max {
				ub = h.Max
			}
			if ub < h.Min {
				ub = h.Min
			}
			return ub
		}
	}
	return h.Max
}

// Mean returns the arithmetic mean of the samples.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// sortedKeys returns the keys of m in sorted order. Both Render and
// WritePrometheus iterate through it, so the two formats share one
// deterministic ordering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Render writes every metric, sorted by kind then key, as aligned text.
// The ordering is deterministic: series are sorted by their full
// name{labels} key within each kind (counters, then gauges, then
// histograms).
func (r *Registry) Render(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedKeys(r.counters) {
		fmt.Fprintf(w, "counter  %-56s %d\n", k, r.counters[k])
	}
	for _, k := range sortedKeys(r.gauges) {
		fmt.Fprintf(w, "gauge    %-56s %g\n", k, r.gauges[k])
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		fmt.Fprintf(w, "hist     %-56s count=%d sum=%d min=%d mean=%.0f p50<=%d p90<=%d max=%d\n",
			k, h.Count, h.Sum, h.Min, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Max)
	}
}
