package trace

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sampleRegistry builds a registry exercising every metric kind, labeled
// and unlabeled.
func sampleRegistry() *Registry {
	r := NewRegistry()
	r.Add("epochs", 3, Label("workload", "pbzip"))
	r.Add("epochs", 2, Label("workload", "fft"))
	r.Add("record.divergences", 1)
	r.Set("overhead.pct", 12.5, Label("workload", "pbzip"))
	r.Observe("epoch.cycles", 100, Label("workload", "pbzip"))
	r.Observe("epoch.cycles", 900, Label("workload", "pbzip"))
	r.Observe("epoch.cycles", 30000, Label("workload", "pbzip"))
	return r
}

// TestRenderGolden pins Render's exact deterministic output.
func TestRenderGolden(t *testing.T) {
	const want = `counter  epochs{workload=fft}                                     2
counter  epochs{workload=pbzip}                                   3
counter  record.divergences                                       1
gauge    overhead.pct{workload=pbzip}                             12.5
hist     epoch.cycles{workload=pbzip}                             count=3 sum=31000 min=100 mean=10333 p50<=1023 p90<=1023 max=30000
`
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		sampleRegistry().Render(&buf)
		if got := buf.String(); got != want {
			t.Fatalf("run %d: Render output changed:\n--- got ---\n%s--- want ---\n%s", i, got, want)
		}
	}
}

// TestWritePrometheusGolden pins the exposition output: sorted, typed, with
// cumulative histogram buckets.
func TestWritePrometheusGolden(t *testing.T) {
	const want = `# TYPE doubleplay_epochs counter
doubleplay_epochs{workload="fft"} 2
doubleplay_epochs{workload="pbzip"} 3
# TYPE doubleplay_record_divergences counter
doubleplay_record_divergences 1
# TYPE doubleplay_overhead_pct gauge
doubleplay_overhead_pct{workload="pbzip"} 12.5
# TYPE doubleplay_epoch_cycles histogram
doubleplay_epoch_cycles_bucket{workload="pbzip",le="0"} 0
doubleplay_epoch_cycles_bucket{workload="pbzip",le="1"} 0
doubleplay_epoch_cycles_bucket{workload="pbzip",le="3"} 0
doubleplay_epoch_cycles_bucket{workload="pbzip",le="7"} 0
doubleplay_epoch_cycles_bucket{workload="pbzip",le="15"} 0
doubleplay_epoch_cycles_bucket{workload="pbzip",le="31"} 0
doubleplay_epoch_cycles_bucket{workload="pbzip",le="63"} 0
doubleplay_epoch_cycles_bucket{workload="pbzip",le="127"} 1
doubleplay_epoch_cycles_bucket{workload="pbzip",le="255"} 1
doubleplay_epoch_cycles_bucket{workload="pbzip",le="511"} 1
doubleplay_epoch_cycles_bucket{workload="pbzip",le="1023"} 2
doubleplay_epoch_cycles_bucket{workload="pbzip",le="2047"} 2
doubleplay_epoch_cycles_bucket{workload="pbzip",le="4095"} 2
doubleplay_epoch_cycles_bucket{workload="pbzip",le="8191"} 2
doubleplay_epoch_cycles_bucket{workload="pbzip",le="16383"} 2
doubleplay_epoch_cycles_bucket{workload="pbzip",le="32767"} 3
doubleplay_epoch_cycles_bucket{workload="pbzip",le="+Inf"} 3
doubleplay_epoch_cycles_sum{workload="pbzip"} 31000
doubleplay_epoch_cycles_count{workload="pbzip"} 3
`
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := sampleRegistry().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if got := buf.String(); got != want {
			t.Fatalf("run %d: WritePrometheus output changed:\n--- got ---\n%s--- want ---\n%s", i, got, want)
		}
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, buf.String())
	}
	if err := NewRegistry().WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("empty registry: err=%v out=%q", err, buf.String())
	}
}

// TestWritePrometheusKindCollision: a name used for two kinds must not emit
// two TYPE lines for the same metric name.
func TestWritePrometheusKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Add("both", 1)
	r.Set("both", 2.0)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE doubleplay_both counter"); n != 1 {
		t.Fatalf("counter TYPE count = %d\n%s", n, out)
	}
	if !strings.Contains(out, "# TYPE doubleplay_both_gauge gauge") {
		t.Fatalf("gauge not disambiguated:\n%s", out)
	}
}

func TestPromEscaping(t *testing.T) {
	r := NewRegistry()
	r.Add("weird.name-x", 1, Label("work load", `va"lue\`))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `doubleplay_weird_name_x{work_load="va\"lue\\"} 1`) {
		t.Fatalf("escaping wrong:\n%s", out)
	}
}

func TestQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %d", got)
	}
	empty := &Histogram{}
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d", got)
	}
	h := &Histogram{}
	for _, v := range []int64{5, 100, 1000, 7000} {
		h.observe(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 5}, {-1, 5}, // q <= 0 is the exact minimum
		{1, 7000}, {2, 7000}, // q >= 1 is the exact maximum
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%g) = %d, want %d", c.q, got, c.want)
		}
	}
	// Interior quantiles stay within [Min, Max].
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := h.Quantile(q)
		if got < h.Min || got > h.Max {
			t.Fatalf("Quantile(%g) = %d outside [%d, %d]", q, got, h.Min, h.Max)
		}
	}
	// Monotone in q.
	prev := int64(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone at q=%g: %d < %d", q, got, prev)
		}
		prev = got
	}
	// Single-sample histogram: every quantile is that sample.
	one := &Histogram{}
	one.observe(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := one.Quantile(q); got != 42 {
			t.Fatalf("single-sample Quantile(%g) = %d", q, got)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := sampleRegistry()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "# TYPE doubleplay_epochs counter") {
		t.Fatalf("body missing TYPE line:\n%s", body)
	}
}

func TestServeMetrics(t *testing.T) {
	reg := sampleRegistry()
	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for path, want := range map[string]string{
		"/healthz": "ok\n",
		"/metrics": "doubleplay_epochs",
	} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), want) {
			t.Fatalf("GET %s = %q, want substring %q", path, body, want)
		}
	}
}
