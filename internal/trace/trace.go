// Package trace is the recording-observability layer: a low-overhead event
// sink that the recorder, the epoch runner, the schedulers, and replay feed
// with timestamped events (epoch spans, checkpoint operations, divergences,
// log appends, pipeline-slot occupancy, replay segments), plus an
// aggregating metrics registry of counters, gauges, and histograms.
//
// Timestamps are simulated cycles, never host time, so a trace is exactly
// reproducible for a given workload, seed, and configuration — and
// collecting one cannot perturb the cycle accounting the evaluation
// reports. A nil *Sink is valid everywhere and disables collection: every
// method is a nil-safe no-op, and hot paths guard argument construction
// behind Enabled() so the disabled path allocates nothing.
//
// Traces export as Chrome trace_event JSON — buffered ([Sink.WriteJSON])
// or incrementally with a bounded reorder window ([StreamSink]) — and load
// directly into Perfetto (https://ui.perfetto.dev) or chrome://tracing; one
// trace microsecond equals one simulated cycle. Both sinks implement
// [Recorder], the interface the instrumented subsystems accept. The
// metrics [Registry] renders as aligned text ([Registry.Render]) or the
// Prometheus text format ([Registry.WritePrometheus], servable over HTTP
// via [Registry.Handler]/[ServeMetrics]). The full event schema is
// documented in docs/OBSERVABILITY.md.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event phases, following the Chrome trace_event format.
const (
	PhaseComplete = 'X' // a span: Ts..Ts+Dur
	PhaseInstant  = 'i' // a point in time
	PhaseCounter  = 'C' // a sampled counter value
	PhaseMeta     = 'M' // process/thread naming metadata
)

// Event is one trace record. Ts and Dur are simulated cycles. Pid and Tid
// select the track: Pid groups related tracks into a named process (one per
// recording or replay run), Tid is one horizontal track within it.
type Event struct {
	Name string
	Ph   byte
	Ts   int64
	Dur  int64 // PhaseComplete only
	Pid  int64
	Tid  int64
	Args map[string]any
}

// Recorder is the event-collection interface shared by the buffered [Sink]
// and the incremental [StreamSink]. Everything that narrates a timeline —
// the recorder, the schedulers, replay, the baselines — takes a Recorder,
// so a run can either accumulate its trace in memory or stream it to disk
// with a bounded buffer.
//
// Splice deliberately takes a concrete *Sink: child buffers are always
// small epoch-local accumulators, and only the top-level destination
// varies.
type Recorder interface {
	// Enabled reports whether events are being collected; hot paths check
	// it before building argument maps.
	Enabled() bool
	// Emit appends one event verbatim.
	Emit(ev Event)
	// Span emits a complete event covering [ts, ts+dur).
	Span(name string, ts, dur, pid, tid int64, args map[string]any)
	// Instant emits a point event at ts.
	Instant(name string, ts, pid, tid int64, args map[string]any)
	// Counter emits a sampled counter value.
	Counter(name string, ts, pid int64, value int64)
	// AllocPid reserves a fresh process id and names its track group.
	AllocPid(name string) int64
	// NameThread names one track within a process.
	NameThread(pid, tid int64, name string)
	// Splice appends a child buffer's events, shifted by shift cycles and
	// re-homed onto (pid, tid); see [Sink.Splice] for the exact semantics.
	Splice(child *Sink, shift, pid, tid int64)
}

// Enabled reports whether r is a live recorder. Unlike calling r.Enabled()
// directly it tolerates both a nil interface value and a typed-nil
// implementation, so callers holding a Recorder field that may never have
// been set can guard hot paths safely.
func Enabled(r Recorder) bool { return r != nil && r.Enabled() }

// Sink collects events. The zero value is NOT ready to use; call NewSink.
// A nil *Sink is the disabled sink: every method no-ops and Enabled
// reports false. Sinks are safe for concurrent use.
type Sink struct {
	mu      sync.Mutex
	events  []Event
	nextPid int64
}

// NewSink returns an empty, enabled sink. NewSink is also how buffers for
// [Sink.Splice] are made: a child sink accumulates events with local
// timestamps, and Splice re-stamps them onto a parent track.
func NewSink() *Sink { return &Sink{nextPid: 1} }

// Enabled reports whether events are being collected. Hot paths must check
// it before building argument maps, so the nil sink costs no allocation.
func (s *Sink) Enabled() bool { return s != nil }

// Emit appends one event verbatim.
func (s *Sink) Emit(ev Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Span emits a complete event covering [ts, ts+dur).
func (s *Sink) Span(name string, ts, dur, pid, tid int64, args map[string]any) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: name, Ph: PhaseComplete, Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Instant emits a point event at ts.
func (s *Sink) Instant(name string, ts, pid, tid int64, args map[string]any) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: name, Ph: PhaseInstant, Ts: ts, Pid: pid, Tid: tid, Args: args})
}

// Counter emits a sampled counter value; viewers render the series named
// name as a step function over time.
func (s *Sink) Counter(name string, ts, pid int64, value int64) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: name, Ph: PhaseCounter, Ts: ts, Pid: pid, Args: map[string]any{"value": value}})
}

// AllocPid reserves a fresh process id and names its track group. Distinct
// recordings or replays sharing one sink call AllocPid so their timelines
// render as separate named processes.
func (s *Sink) AllocPid(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	pid := s.nextPid
	s.nextPid++
	s.events = append(s.events, Event{
		Name: "process_name", Ph: PhaseMeta, Pid: pid, Args: map[string]any{"name": name},
	})
	s.mu.Unlock()
	return pid
}

// NameThread names one track within a process.
func (s *Sink) NameThread(pid, tid int64, name string) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: "thread_name", Ph: PhaseMeta, Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Splice appends every event of child, shifting timestamps by shift cycles
// and re-homing them onto (pid, tid). It is how epoch-local activity —
// whose global position is only known once the pipeline places the epoch —
// lands at its true simulated time: run the epoch against a child sink,
// then splice at the pipeline-assigned start. Counter and meta events keep
// their own pid/tid semantics and are shifted but not re-homed to the tid.
func (s *Sink) Splice(child *Sink, shift, pid, tid int64) {
	if s == nil || child == nil {
		return
	}
	child.mu.Lock()
	evs := make([]Event, len(child.events))
	copy(evs, child.events)
	child.mu.Unlock()
	s.mu.Lock()
	for _, ev := range evs {
		ev.Ts += shift
		ev.Pid = pid
		if ev.Ph != PhaseCounter && ev.Ph != PhaseMeta {
			ev.Tid = tid
		}
		s.events = append(s.events, ev)
	}
	s.mu.Unlock()
}

// Len returns the number of collected events.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Events returns a snapshot of the collected events in emission order.
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// jsonEvent is the wire form of one Chrome trace_event record.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// jsonTrace is the container object Perfetto and chrome://tracing load.
type jsonTrace struct {
	TraceEvents     []jsonEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// toJSONEvent converts one event to its wire form.
func toJSONEvent(ev Event) jsonEvent {
	je := jsonEvent{Name: ev.Name, Ph: string(ev.Ph), Ts: ev.Ts, Pid: ev.Pid, Tid: ev.Tid, Args: ev.Args}
	if ev.Ph == PhaseComplete {
		d := ev.Dur
		je.Dur = &d
	}
	if ev.Ph == PhaseInstant {
		je.S = "t" // thread-scoped instant
	}
	return je
}

// WriteJSON writes the trace in Chrome trace_event JSON object format.
// Event order is emission order; the format does not require sorting.
func (s *Sink) WriteJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	s.mu.Lock()
	evs := make([]jsonEvent, len(s.events))
	for i, ev := range s.events {
		evs[i] = toJSONEvent(ev)
	}
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(jsonTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// ParseJSON reads a trace written by WriteJSON back into events, preserving
// order. It exists for tests and offline tooling; numeric args come back as
// float64 per encoding/json.
func ParseJSON(r io.Reader) ([]Event, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	out := make([]Event, len(jt.TraceEvents))
	for i, je := range jt.TraceEvents {
		if len(je.Ph) != 1 {
			return nil, fmt.Errorf("trace: event %d has invalid phase %q", i, je.Ph)
		}
		ev := Event{Name: je.Name, Ph: je.Ph[0], Ts: je.Ts, Pid: je.Pid, Tid: je.Tid, Args: je.Args}
		if je.Dur != nil {
			ev.Dur = *je.Dur
		}
		out[i] = ev
	}
	return out, nil
}
