package trace

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// canonEvents renders events as sorted canonical strings for multiset
// comparison, normalizing arg numeric types through the JSON round trip.
func canonEvents(t *testing.T, evs []Event) []string {
	t.Helper()
	var buf bytes.Buffer
	s := NewSink()
	for _, ev := range evs {
		s.Emit(ev)
	}
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(parsed))
	for i, ev := range parsed {
		keys := make([]string, 0, len(ev.Args))
		for k := range ev.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		fmt.Fprintf(&b, "%s|%c|%d|%d|%d|%d", ev.Name, ev.Ph, ev.Ts, ev.Dur, ev.Pid, ev.Tid)
		for _, k := range keys {
			fmt.Fprintf(&b, "|%s=%v", k, ev.Args[k])
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

// lcg is a tiny deterministic generator for shuffled timestamps.
func lcg(state *uint64) uint64 {
	*state = *state*6364136223846793005 + 1442695040888963407
	return *state >> 33
}

func TestStreamSinkNilSafe(t *testing.T) {
	var s *StreamSink
	if s.Enabled() {
		t.Fatal("nil StreamSink reports enabled")
	}
	s.Emit(Event{Name: "x"})
	s.Span("a", 0, 1, 1, 1, nil)
	s.Instant("b", 0, 1, 1, nil)
	s.Counter("c", 0, 1, 2)
	s.NameThread(1, 1, "t")
	s.Splice(NewSink(), 0, 1, 1)
	if pid := s.AllocPid("p"); pid != 0 {
		t.Fatalf("nil AllocPid = %d", pid)
	}
	if s.Written() != 0 || s.MaxBuffered() != 0 || s.Err() != nil {
		t.Fatal("nil accessors not zero")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSinkBoundedAndMultisetEqual is the tentpole guarantee: with a
// small reorder window and heavily out-of-order emission, the live buffer
// never exceeds the window and the streamed file parses back into exactly
// the event multiset a buffered Sink collects for the same emission.
func TestStreamSinkBoundedAndMultisetEqual(t *testing.T) {
	const window = 8
	const n = 500
	var out bytes.Buffer
	stream := NewStreamSink(&out, window)
	buffered := NewSink()

	state := uint64(42)
	var evs []Event
	for i := 0; i < n; i++ {
		ts := int64(lcg(&state) % 10000) // wildly out of order
		switch i % 3 {
		case 0:
			evs = append(evs, Event{Name: "span", Ph: PhaseComplete, Ts: ts, Dur: 5,
				Pid: 1, Tid: int64(i % 4), Args: map[string]any{"i": i}})
		case 1:
			evs = append(evs, Event{Name: "inst", Ph: PhaseInstant, Ts: ts, Pid: 1, Tid: 0})
		case 2:
			evs = append(evs, Event{Name: "ctr", Ph: PhaseCounter, Ts: ts, Pid: 1,
				Args: map[string]any{"value": int64(i)}})
		}
	}
	for _, ev := range evs {
		stream.Emit(ev)
		buffered.Emit(ev)
	}
	if got := stream.MaxBuffered(); got > window {
		t.Fatalf("live buffer reached %d events, window is %d", got, window)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if stream.Written() != n {
		t.Fatalf("written %d of %d events", stream.Written(), n)
	}

	parsed, err := ParseJSON(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("streamed output does not parse: %v", err)
	}
	got := canonEvents(t, parsed)
	want := canonEvents(t, buffered.Events())
	if len(got) != len(want) {
		t.Fatalf("streamed %d events, buffered %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event multiset mismatch at %d:\n  stream: %s\n  buffer: %s", i, got[i], want[i])
		}
	}
}

// TestStreamSinkSortsWithinWindow checks the reorder window does its job:
// emission that is out of order by less than the window streams out fully
// time-sorted.
func TestStreamSinkSortsWithinWindow(t *testing.T) {
	var out bytes.Buffer
	stream := NewStreamSink(&out, 16)
	// Pairs arrive swapped: (10, 0), (30, 20), ... — disorder distance 1.
	for i := 0; i < 50; i++ {
		base := int64(i * 20)
		stream.Instant("b", base+10, 1, 0, nil)
		stream.Instant("a", base, 1, 0, nil)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSON(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(parsed); i++ {
		if parsed[i].Ts < parsed[i-1].Ts {
			t.Fatalf("event %d at ts %d precedes predecessor at %d", i, parsed[i].Ts, parsed[i-1].Ts)
		}
	}
}

// TestStreamSinkSpliceMatchesSink pins Splice semantics against the
// buffered implementation: identical shift, re-homing, and counter/meta
// exemption.
func TestStreamSinkSpliceMatchesSink(t *testing.T) {
	child := NewSink()
	child.Span("slice", 0, 100, 0, 0, map[string]any{"tid": 1})
	child.Instant("sync", 50, 0, 3, nil)
	child.Counter("log.bytes", 75, 0, 1234)
	child.NameThread(0, 0, "w")

	var out bytes.Buffer
	stream := NewStreamSink(&out, 4)
	stream.Splice(child, 1000, 7, 9)
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSON(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	buffered := NewSink()
	buffered.Splice(child, 1000, 7, 9)

	got := canonEvents(t, parsed)
	want := canonEvents(t, buffered.Events())
	if len(got) != len(want) {
		t.Fatalf("stream spliced %d events, sink %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("splice mismatch:\n  stream: %s\n  buffer: %s", got[i], want[i])
		}
	}
}

func TestStreamSinkCloseIdempotentAndRejects(t *testing.T) {
	var out bytes.Buffer
	stream := NewStreamSink(&out, 4)
	stream.Instant("x", 1, 1, 0, nil)
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	first := out.String()
	if err := stream.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if out.String() != first {
		t.Fatal("second Close wrote more output")
	}
	stream.Instant("y", 2, 1, 0, nil)
	if stream.Err() == nil {
		t.Fatal("emit after Close not reported")
	}
	if _, err := ParseJSON(strings.NewReader(first)); err != nil {
		t.Fatalf("closed output does not parse: %v", err)
	}
}

func TestStreamSinkEmptyCloseParses(t *testing.T) {
	var out bytes.Buffer
	stream := NewStreamSink(&out, 4)
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseJSON(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("empty stream parsed into %d events", len(evs))
	}
}

func TestStreamSinkAllocPid(t *testing.T) {
	var out bytes.Buffer
	stream := NewStreamSink(&out, 4)
	p1 := stream.AllocPid("first")
	p2 := stream.AllocPid("second")
	if p1 == p2 || p1 == 0 || p2 == 0 {
		t.Fatalf("AllocPid returned %d then %d", p1, p2)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSON(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	names := map[int64]string{}
	for _, ev := range parsed {
		if ev.Name == "process_name" {
			names[ev.Pid], _ = ev.Args["name"].(string)
		}
	}
	if names[p1] != "first" || names[p2] != "second" {
		t.Fatalf("process names %v", names)
	}
}

func TestStreamSinkDownsampleSpans(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamSink(&buf, 4)
	s.Downsample(100, 0)
	s.Span("short", 0, 10, 1, 0, nil)  // dropped
	s.Span("long", 0, 100, 1, 0, nil)  // kept (>= threshold)
	s.Span("short2", 5, 99, 1, 0, nil) // dropped
	s.Instant("mark", 7, 1, 0, nil)    // instants always pass
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	evs, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]int)
	for _, ev := range evs {
		names[ev.Name]++
	}
	if names["short"] != 0 || names["short2"] != 0 {
		t.Fatalf("dropped spans present: %v", names)
	}
	if names["long"] != 1 || names["mark"] != 1 {
		t.Fatalf("kept events missing: %v", names)
	}
	if got := s.Written(); got != len(evs) {
		t.Fatalf("Written() = %d, parsed %d", got, len(evs))
	}
}

func TestStreamSinkDownsampleCounters(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamSink(&buf, 4)
	s.Downsample(0, 3)
	for i := 0; i < 10; i++ {
		s.Counter("log.syscalls", int64(i), 1, int64(i))
	}
	for i := 0; i < 2; i++ {
		s.Counter("mem.pages", int64(i), 1, int64(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var sys, mem []int64
	for _, ev := range evs {
		switch ev.Name {
		case "log.syscalls":
			sys = append(sys, ev.Ts)
		case "mem.pages":
			mem = append(mem, ev.Ts)
		}
	}
	// Stride 3 keeps samples 0, 3, 6, 9 of the first series and sample 0
	// of the second — every series keeps its first sample.
	if want := []int64{0, 3, 6, 9}; fmt.Sprint(sys) != fmt.Sprint(want) {
		t.Fatalf("log.syscalls samples = %v, want %v", sys, want)
	}
	if want := []int64{0}; fmt.Sprint(mem) != fmt.Sprint(want) {
		t.Fatalf("mem.pages samples = %v, want %v", mem, want)
	}
	if got := s.Dropped(); got != 6+1 {
		t.Fatalf("Dropped() = %d, want 7", got)
	}
}

func TestStreamSinkDownsampleOffIsLossless(t *testing.T) {
	var a, b bytes.Buffer
	plain := NewStreamSink(&a, 8)
	ds := NewStreamSink(&b, 8)
	ds.Downsample(0, 0) // thresholds off: must be byte-identical
	for i := 0; i < 50; i++ {
		plain.Span("s", int64(i), int64(i%5), 1, 0, nil)
		ds.Span("s", int64(i), int64(i%5), 1, 0, nil)
		plain.Counter("c", int64(i), 1, int64(i))
		ds.Counter("c", int64(i), 1, int64(i))
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("disabled downsampling changed the stream")
	}
	if ds.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0", ds.Dropped())
	}
}
