package trace

import (
	"net"
	"net/http"
)

// promContentType is the Prometheus text exposition format content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler that serves the registry in Prometheus
// text format. Mount it at /metrics; the registry's own mutex makes
// concurrent scrapes during a live recording safe.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		r.WritePrometheus(w)
	})
}

// MetricsServer is a running /metrics endpoint started by ServeMetrics.
type MetricsServer struct {
	Addr string // the bound address, useful with ":0"
	srv  *http.Server
}

// Close shuts the server down immediately.
func (m *MetricsServer) Close() error {
	if m == nil {
		return nil
	}
	return m.srv.Close()
}

// ServeMetrics binds addr and serves the registry at /metrics plus a
// trivial /healthz, in a background goroutine, while a recording runs in
// the foreground. It returns once the listener is bound, so a scraper can
// connect immediately; call Close when the run is over.
func ServeMetrics(addr string, reg *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &MetricsServer{Addr: ln.Addr().String(), srv: srv}, nil
}
