package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// DefaultStreamWindow is the default reorder-window size, in events, of a
// [StreamSink]. It is sized to cover the largest burst of out-of-order
// emission the recorder produces (one epoch's spliced timeslice buffer plus
// the boundary events around it) while keeping resident memory trivial.
const DefaultStreamWindow = 256

// StreamSink is a [Recorder] that writes Chrome trace_event JSON to an
// io.Writer incrementally instead of buffering the whole recording. At most
// window events are resident at any time: events enter a reorder window
// ordered by timestamp, and once the window is full the oldest event is
// flushed to the writer. The window absorbs the recorder's local
// out-of-order emission — spliced epoch buffers, counters sampled at
// boundaries — so the streamed file is approximately time-sorted; events
// arriving more than a window late are still written (the trace_event
// format does not require global ordering), just out of order.
//
// The streamed output round-trips through [ParseJSON] into exactly the
// event multiset a buffered [Sink] would have collected for the same run.
//
// A nil *StreamSink is the disabled sink, like a nil *Sink: every method
// no-ops and Enabled reports false. StreamSinks are safe for concurrent
// use. Call [StreamSink.Close] to drain the window and complete the JSON
// document; the underlying writer is not closed.
type StreamSink struct {
	mu      sync.Mutex
	w       *bufio.Writer
	window  int
	heap    []streamEntry // min-heap on (Ts, seq)
	seq     uint64
	nextPid int64
	started bool
	closed  bool
	written int
	maxLive int
	err     error

	// Downsampling state; zero values mean lossless (see Downsample).
	minSpanDur    int64
	counterStride int
	counterSeen   map[counterKey]int
	dropped       int
}

// counterKey identifies one counter series for stride thinning: counters
// are per (process, name) step functions.
type counterKey struct {
	pid  int64
	name string
}

// streamEntry pairs an event with its emission sequence number, which
// breaks timestamp ties so equal-time events flush in emission order.
type streamEntry struct {
	ev  Event
	seq uint64
}

// NewStreamSink returns a streaming sink writing to w with the given
// reorder-window size; window <= 0 selects DefaultStreamWindow. Output is
// buffered; Close (or Flush) pushes it to w.
func NewStreamSink(w io.Writer, window int) *StreamSink {
	if window <= 0 {
		window = DefaultStreamWindow
	}
	return &StreamSink{w: bufio.NewWriter(w), window: window, nextPid: 1}
}

// Enabled reports whether events are being collected.
func (s *StreamSink) Enabled() bool { return s != nil }

// Emit appends one event; it may flush the oldest buffered event to the
// underlying writer.
func (s *StreamSink) Emit(ev Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.emitLocked(ev)
	s.mu.Unlock()
}

// Downsample enables lossy compaction of the stream, for traces that
// must stay Perfetto-friendly at large scale: complete (span) events
// shorter than minSpanDur cycles are dropped, and each counter series
// keeps only every counterStride-th sample (the first sample of every
// series is always kept, so each step function still starts at its true
// origin). Instants and metadata always pass through — divergences,
// checkpoints, and commits are exactly the events a compacted trace
// exists to show. Dropped events are counted in [StreamSink.Dropped].
//
// minSpanDur <= 0 keeps every span; counterStride <= 1 keeps every
// counter sample. Call before emitting; downsampling an in-flight stream
// only affects subsequent events.
func (s *StreamSink) Downsample(minSpanDur int64, counterStride int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.minSpanDur = minSpanDur
	s.counterStride = counterStride
	if counterStride > 1 && s.counterSeen == nil {
		s.counterSeen = make(map[counterKey]int)
	}
	s.mu.Unlock()
}

// Dropped returns how many events downsampling has discarded so far.
func (s *StreamSink) Dropped() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// keepLocked applies the downsampling policy to one event.
func (s *StreamSink) keepLocked(ev Event) bool {
	switch ev.Ph {
	case PhaseComplete:
		if s.minSpanDur > 0 && ev.Dur < s.minSpanDur {
			s.dropped++
			return false
		}
	case PhaseCounter:
		if s.counterStride > 1 {
			k := counterKey{pid: ev.Pid, name: ev.Name}
			n := s.counterSeen[k]
			s.counterSeen[k] = n + 1
			if n%s.counterStride != 0 {
				s.dropped++
				return false
			}
		}
	}
	return true
}

// emitLocked inserts ev into the reorder window, flushing the oldest
// events first so the live buffer never exceeds the window size.
func (s *StreamSink) emitLocked(ev Event) {
	if s.closed {
		if s.err == nil {
			s.err = fmt.Errorf("trace: emit on closed StreamSink")
		}
		return
	}
	if !s.keepLocked(ev) {
		return
	}
	for len(s.heap) >= s.window {
		s.popWriteLocked()
	}
	s.heap = append(s.heap, streamEntry{ev: ev, seq: s.seq})
	s.seq++
	s.upLocked(len(s.heap) - 1)
	if len(s.heap) > s.maxLive {
		s.maxLive = len(s.heap)
	}
}

// less orders the reorder window by timestamp, then emission order.
func (s *StreamSink) less(i, j int) bool {
	a, b := s.heap[i], s.heap[j]
	if a.ev.Ts != b.ev.Ts {
		return a.ev.Ts < b.ev.Ts
	}
	return a.seq < b.seq
}

func (s *StreamSink) upLocked(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			return
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *StreamSink) downLocked(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s.heap) && s.less(l, m) {
			m = l
		}
		if r < len(s.heap) && s.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}

// popWriteLocked writes the oldest buffered event to the stream.
func (s *StreamSink) popWriteLocked() {
	ev := s.heap[0].ev
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		s.downLocked(0)
	}
	s.writeLocked(ev)
}

// writeLocked appends one event to the JSON stream, emitting the document
// header before the first. Write errors are sticky; see Err.
func (s *StreamSink) writeLocked(ev Event) {
	if s.err != nil {
		s.written++ // keep the count honest even after an error
		return
	}
	if !s.started {
		if _, err := s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
			s.err = err
			s.written++
			return
		}
		s.started = true
	} else {
		if err := s.w.WriteByte(','); err != nil {
			s.err = err
			s.written++
			return
		}
	}
	b, err := json.Marshal(toJSONEvent(ev))
	if err == nil {
		_, err = s.w.Write(b)
	}
	if err != nil {
		s.err = err
	}
	s.written++
}

// Span emits a complete event covering [ts, ts+dur).
func (s *StreamSink) Span(name string, ts, dur, pid, tid int64, args map[string]any) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: name, Ph: PhaseComplete, Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Instant emits a point event at ts.
func (s *StreamSink) Instant(name string, ts, pid, tid int64, args map[string]any) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: name, Ph: PhaseInstant, Ts: ts, Pid: pid, Tid: tid, Args: args})
}

// Counter emits a sampled counter value.
func (s *StreamSink) Counter(name string, ts, pid int64, value int64) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: name, Ph: PhaseCounter, Ts: ts, Pid: pid, Args: map[string]any{"value": value}})
}

// AllocPid reserves a fresh process id and names its track group.
func (s *StreamSink) AllocPid(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	pid := s.nextPid
	s.nextPid++
	s.emitLocked(Event{Name: "process_name", Ph: PhaseMeta, Pid: pid, Args: map[string]any{"name": name}})
	s.mu.Unlock()
	return pid
}

// NameThread names one track within a process.
func (s *StreamSink) NameThread(pid, tid int64, name string) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: "thread_name", Ph: PhaseMeta, Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Splice streams every event of child, shifted by shift cycles and re-homed
// onto (pid, tid) with the same semantics as [Sink.Splice]. The child's
// events pass through the reorder window one by one, so splicing never
// enlarges the live buffer beyond the window.
func (s *StreamSink) Splice(child *Sink, shift, pid, tid int64) {
	if s == nil || child == nil {
		return
	}
	evs := child.Events()
	s.mu.Lock()
	for _, ev := range evs {
		ev.Ts += shift
		ev.Pid = pid
		if ev.Ph != PhaseCounter && ev.Ph != PhaseMeta {
			ev.Tid = tid
		}
		s.emitLocked(ev)
	}
	s.mu.Unlock()
}

// Written returns the number of events written to the stream so far (it
// trails emission by up to the window size until Close).
func (s *StreamSink) Written() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// MaxBuffered returns the high-water mark of the reorder window — the
// guarantee tests pin: it never exceeds the configured window size.
func (s *StreamSink) MaxBuffered() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxLive
}

// Err returns the first write or usage error, if any.
func (s *StreamSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Flush drains buffered output (not the reorder window) to the underlying
// writer.
func (s *StreamSink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.w.Flush()
	}
	return s.err
}

// Close drains the reorder window, completes the JSON document, and
// flushes. The sink rejects further events; the underlying writer is left
// open. Close is idempotent.
func (s *StreamSink) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.err
	}
	for len(s.heap) > 0 {
		s.popWriteLocked()
	}
	if s.err == nil {
		if !s.started {
			_, s.err = s.w.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
			s.started = s.err == nil
		}
	}
	if s.err == nil {
		_, s.err = s.w.WriteString("]}\n")
	}
	if ferr := s.w.Flush(); s.err == nil {
		s.err = ferr
	}
	s.closed = true
	return s.err
}
