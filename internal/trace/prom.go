package trace

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// PromNamespace prefixes every exported Prometheus metric name.
const PromNamespace = "doubleplay"

// promSeries is one registry key decomposed for the text format.
type promSeries struct {
	key    string // original registry key, for value lookup
	labels string // rendered {k="v",...} suffix, "" when unlabeled
}

// promName sanitizes a dotted internal metric name into a legal Prometheus
// metric name under the doubleplay namespace: "record.cow_pages" becomes
// "doubleplay_record_cow_pages".
func promName(name string) string {
	var b strings.Builder
	b.WriteString(PromNamespace)
	b.WriteByte('_')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelName sanitizes a label key.
func promLabelName(k string) string {
	var b strings.Builder
	for i := 0; i < len(k); i++ {
		c := k[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promSplit decomposes a registry key "name{k=v,k=v}" into the sanitized
// metric name and rendered label suffix.
func promSplit(key string) (name, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return promName(key), ""
	}
	name = promName(key[:i])
	inner := strings.TrimSuffix(key[i+1:], "}")
	parts := strings.Split(inner, ",")
	rendered := make([]string, 0, len(parts))
	for _, p := range parts {
		if p == "" {
			continue
		}
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			k, v = p, ""
		}
		rendered = append(rendered, fmt.Sprintf(`%s="%s"`, promLabelName(k), promEscape(v)))
	}
	if len(rendered) == 0 {
		return name, ""
	}
	return name, "{" + strings.Join(rendered, ",") + "}"
}

// groupSeries buckets sorted registry keys by sanitized metric name,
// preserving the shared sorted-key order within each name and returning
// the names sorted.
func groupSeries(keys []string) (names []string, byName map[string][]promSeries) {
	byName = make(map[string][]promSeries)
	for _, k := range keys {
		name, labels := promSplit(k)
		if _, seen := byName[name]; !seen {
			names = append(names, name)
		}
		byName[name] = append(byName[name], promSeries{key: k, labels: labels})
	}
	sort.Strings(names)
	return names, byName
}

// labelJoin merges a series' label suffix with one extra label (used for
// histogram le labels).
func labelJoin(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges export directly; histograms
// export cumulative _bucket series with power-of-two le bounds plus _sum
// and _count. Output ordering is deterministic and shares Render's sorted
// ordering: kinds in counter/gauge/histogram order, metric names sorted,
// and series within a name sorted by their full registry key.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	// A metric name may only carry one type. Internal names are unique per
	// kind by convention; if a name is nonetheless reused across kinds, the
	// later kind gets a disambiguating suffix so the output always parses.
	used := make(map[string]bool)
	claim := func(name, suffix string) string {
		if used[name] {
			name += suffix
		}
		used[name] = true
		return name
	}

	names, byName := groupSeries(sortedKeys(r.counters))
	for _, name := range names {
		out := claim(name, "_counter")
		pf("# TYPE %s counter\n", out)
		for _, s := range byName[name] {
			pf("%s%s %d\n", out, s.labels, r.counters[s.key])
		}
	}

	names, byName = groupSeries(sortedKeys(r.gauges))
	for _, name := range names {
		out := claim(name, "_gauge")
		pf("# TYPE %s gauge\n", out)
		for _, s := range byName[name] {
			pf("%s%s %g\n", out, s.labels, r.gauges[s.key])
		}
	}

	names, byName = groupSeries(sortedKeys(r.hists))
	for _, name := range names {
		out := claim(name, "_histogram")
		pf("# TYPE %s histogram\n", out)
		for _, s := range byName[name] {
			h := r.hists[s.key]
			top := bits.Len64(uint64(h.Max))
			var cum int64
			for i := 0; i <= top && i < len(h.Buckets); i++ {
				cum += h.Buckets[i]
				ub := int64(1)<<uint(i) - 1
				pf("%s_bucket%s %d\n", out, labelJoin(s.labels, fmt.Sprintf("le=%q", fmt.Sprint(ub))), cum)
			}
			pf("%s_bucket%s %d\n", out, labelJoin(s.labels, `le="+Inf"`), h.Count)
			pf("%s_sum%s %d\n", out, s.labels, h.Sum)
			pf("%s_count%s %d\n", out, s.labels, h.Count)
		}
	}
	return err
}
