package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilSinkIsSafeAndFree(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	// Every method must be a no-op on nil.
	s.Emit(Event{Name: "x"})
	s.Span("a", 0, 1, 0, 0, nil)
	s.Instant("b", 0, 0, 0, nil)
	s.Counter("c", 0, 0, 1)
	s.NameThread(0, 0, "t")
	s.Splice(NewSink(), 0, 0, 0)
	if s.AllocPid("p") != 0 || s.Len() != 0 || s.Events() != nil {
		t.Fatal("nil sink leaked state")
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if evs, err := ParseJSON(&buf); err != nil || len(evs) != 0 {
		t.Fatalf("nil sink JSON: %v, %d events", err, len(evs))
	}
	// The disabled hot path must not allocate: this is the invariant that
	// lets every scheduler call site run untraced at zero cost.
	allocs := testing.AllocsPerRun(100, func() {
		if s.Enabled() {
			s.Span("slice", 0, 1, 0, 0, map[string]any{"tid": 1})
		}
	})
	if allocs != 0 {
		t.Fatalf("nil sink allocates %.0f per op", allocs)
	}
}

func TestJSONRoundTripPreservesOrderAndFields(t *testing.T) {
	s := NewSink()
	pid := s.AllocPid("record test")
	if pid != 1 {
		t.Fatalf("first pid = %d", pid)
	}
	s.NameThread(pid, 0, "epochs")
	s.Span("epoch", 100, 50, pid, 0, map[string]any{"epoch": 0})
	s.Instant("divergence", 125, pid, 0, map[string]any{"kind": "state"})
	s.Counter("log.syscalls", 150, pid, 7)
	s.Span("epoch", 150, 60, pid, 0, map[string]any{"epoch": 1})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	got, err := ParseJSON(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	want := s.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Ph != want[i].Ph ||
			got[i].Ts != want[i].Ts || got[i].Dur != want[i].Dur ||
			got[i].Pid != want[i].Pid || got[i].Tid != want[i].Tid {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// Span durations and instant scope must survive the wire format.
	if got[2].Dur != 50 {
		t.Fatalf("span dur = %d", got[2].Dur)
	}
	if !strings.Contains(wire, `"s":"t"`) {
		t.Fatal("instant lost its thread scope")
	}
	if !strings.Contains(wire, `"displayTimeUnit":"ms"`) {
		t.Fatal("missing displayTimeUnit")
	}
}

func TestSpliceShiftsAndRehomes(t *testing.T) {
	child := NewSink()
	child.Span("slice", 10, 5, 0, 0, map[string]any{"tid": 2})
	child.Instant("signal", 12, 0, 0, nil)
	child.Counter("n", 14, 0, 3)

	parent := NewSink()
	pid := parent.AllocPid("p")
	parent.Splice(child, 1000, pid, 7)

	evs := parent.Events()[1:] // skip the process_name meta
	if evs[0].Ts != 1010 || evs[0].Pid != pid || evs[0].Tid != 7 {
		t.Fatalf("spliced span: %+v", evs[0])
	}
	if evs[1].Ts != 1012 || evs[1].Tid != 7 {
		t.Fatalf("spliced instant: %+v", evs[1])
	}
	// Counters shift in time but keep their own track semantics.
	if evs[2].Ts != 1014 || evs[2].Tid != 0 {
		t.Fatalf("spliced counter: %+v", evs[2])
	}
}

func TestRegistryAggregates(t *testing.T) {
	r := NewRegistry()
	wl := Label("workload", "pbzip")
	r.Add("record.epochs", 40, wl)
	r.Add("record.epochs", 2, wl)
	r.Set("record.completion_cycles", 1150271, wl)
	for _, v := range []int64{100, 200, 400, 800} {
		r.Observe("epoch.cycles", v, wl)
	}
	if got := r.Counter("record.epochs", wl); got != 42 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Gauge("record.completion_cycles", wl); got != 1150271 {
		t.Fatalf("gauge = %g", got)
	}
	h := r.Hist("epoch.cycles", wl)
	if h == nil || h.Count != 4 || h.Sum != 1500 || h.Min != 100 || h.Max != 800 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Mean() != 375 {
		t.Fatalf("mean = %g", h.Mean())
	}
	if q := h.Quantile(1); q != 800 {
		t.Fatalf("p100 = %d", q)
	}
	if q := h.Quantile(0); q < 100 || q > 127 {
		t.Fatalf("p0 = %d, want bucket bound of 100", q)
	}

	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"counter  record.epochs{workload=pbzip}",
		"gauge    record.completion_cycles{workload=pbzip}",
		"hist     epoch.cycles{workload=pbzip}",
		"count=4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add("a", 1)
	r.Set("b", 2)
	r.Observe("c", 3)
	if r.Counter("a") != 0 || r.Gauge("b") != 0 || r.Hist("c") != nil {
		t.Fatal("nil registry leaked state")
	}
	r.Render(&bytes.Buffer{})
}
