package vm_test

import (
	"errors"
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/vm"
)

func buildTwoFuncs(t *testing.T) *vm.Program {
	t.Helper()
	b := asm.NewBuilder("t")
	f1 := b.Func("alpha", 0)
	f1.RetImm(0)
	f2 := b.Func("beta", 0)
	r := f2.Reg()
	f2.Movi(r, 7)
	f2.Halt(r)
	b.SetEntry("beta")
	return b.MustBuild()
}

func TestValidateAcceptsBuilderOutput(t *testing.T) {
	if err := buildTwoFuncs(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	good := buildTwoFuncs(t)
	cases := []struct {
		name string
		mut  func(p *vm.Program)
	}{
		{"empty code", func(p *vm.Program) { p.Code = nil }},
		{"no functions", func(p *vm.Program) { p.Funcs = nil }},
		{"entry below range", func(p *vm.Program) { p.Entry = -1 }},
		{"entry above range", func(p *vm.Program) { p.Entry = len(p.Funcs) }},
		{"function entry out of code", func(p *vm.Program) { p.Funcs[1].Entry = len(p.Code) }},
		{"negative function entry", func(p *vm.Program) { p.Funcs[0].Entry = -1 }},
		{"too many args", func(p *vm.Program) { p.Funcs[0].NArgs = vm.MaxArgs + 1 }},
		{"negative args", func(p *vm.Program) { p.Funcs[0].NArgs = -1 }},
		{"negative data base", func(p *vm.Program) { p.DataBase = -5; p.Data = []vm.Word{1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := *good
			p.Funcs = append([]vm.FuncInfo(nil), good.Funcs...)
			tc.mut(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("validate accepted a malformed program")
			}
			if !errors.Is(err, vm.ErrInvalidProgram) {
				t.Fatalf("error %v does not wrap ErrInvalidProgram", err)
			}
		})
	}
	var nilProg *vm.Program
	if err := nilProg.Validate(); !errors.Is(err, vm.ErrInvalidProgram) {
		t.Fatalf("nil program: got %v", err)
	}
}

func TestNewMachineRejectsInvalidProgram(t *testing.T) {
	p := buildTwoFuncs(t)
	p.Entry = len(p.Funcs) // corrupt after build
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewMachine accepted an invalid program")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, vm.ErrInvalidProgram) {
			t.Fatalf("panic value %v is not an ErrInvalidProgram error", r)
		}
	}()
	vm.NewMachine(p, nil, nil)
}

// FuncAt must treat a function's span as ending at the next function's
// entry and reject out-of-range pcs entirely.
func TestFuncAtBounds(t *testing.T) {
	p := buildTwoFuncs(t)
	if fi := p.FuncAt(-1); fi != nil {
		t.Fatalf("FuncAt(-1) = %v, want nil", fi)
	}
	if fi := p.FuncAt(len(p.Code)); fi != nil {
		t.Fatalf("FuncAt(len) = %v, want nil", fi)
	}
	alphaEnd := p.Funcs[1].Entry
	for pc := 0; pc < len(p.Code); pc++ {
		want := "alpha"
		if pc >= alphaEnd {
			want = "beta"
		}
		fi := p.FuncAt(pc)
		if fi == nil || fi.Name != want {
			t.Fatalf("FuncAt(%d) = %v, want %s", pc, fi, want)
		}
	}
}
