package vm

import (
	"errors"
	"fmt"
)

// ErrInvalidProgram is wrapped by every error returned from
// Program.Validate, so callers can classify load-time rejection with
// errors.Is regardless of which structural check failed.
var ErrInvalidProgram = errors.New("vm: invalid program")

// Validate performs the cheap structural checks a program must pass before
// it can run at all: a non-empty code segment, an entry function, every
// function entry inside the code segment, sane arities, and a sane data
// segment. It is called by NewMachine so malformed images are rejected
// up front with a named error instead of surfacing later as a runtime
// guest fault at some unrelated pc. Deeper checks (branch targets, lock
// balance, dataflow) live in internal/analyze.
func (p *Program) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidProgram, fmt.Sprintf(format, args...))
	}
	if p == nil {
		return fail("nil program")
	}
	if len(p.Code) == 0 {
		return fail("program %q has an empty code segment", p.Name)
	}
	if len(p.Funcs) == 0 {
		return fail("program %q has no functions", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fail("program %q entry index %d outside function table [0,%d)", p.Name, p.Entry, len(p.Funcs))
	}
	for i, f := range p.Funcs {
		if f.Entry < 0 || f.Entry >= len(p.Code) {
			return fail("program %q function %d (%q) entry %d outside code [0,%d)", p.Name, i, f.Name, f.Entry, len(p.Code))
		}
		if f.NArgs < 0 || f.NArgs > MaxArgs {
			return fail("program %q function %d (%q) declares %d args; max %d", p.Name, i, f.Name, f.NArgs, MaxArgs)
		}
	}
	if p.DataBase < 0 {
		return fail("program %q has negative data base %d", p.Name, p.DataBase)
	}
	if n := Word(len(p.Data)); n > 0 && p.DataBase+n < p.DataBase {
		return fail("program %q data segment [%d, +%d words) wraps the address space", p.Name, p.DataBase, n)
	}
	return nil
}
