package vm

import "fmt"

// Status describes what a thread is doing. Every Blocked* status means the
// thread's PC still points at the instruction that could not retire; the
// instruction re-executes when the thread is next scheduled. Because blocked
// instructions have not retired, blocked-ness is derived state: checkpoints
// restore every live thread as Runnable and the blocking condition is
// re-discovered on the next step. This is what makes mid-epoch checkpoints
// exact without snapshotting wait queues.
type Status uint8

const (
	Runnable Status = iota
	BlockedLock
	BlockedBarrier
	BlockedJoin
	BlockedSys
	BlockedOrder // held back by sync-order enforcement during epoch-parallel runs
	Exited
	Faulted
)

var statusNames = [...]string{
	Runnable: "runnable", BlockedLock: "blocked-lock", BlockedBarrier: "blocked-barrier",
	BlockedJoin: "blocked-join", BlockedSys: "blocked-sys", BlockedOrder: "blocked-order",
	Exited: "exited", Faulted: "faulted",
}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Blocked reports whether the status is any of the waiting states.
func (s Status) Blocked() bool {
	switch s {
	case BlockedLock, BlockedBarrier, BlockedJoin, BlockedSys, BlockedOrder:
		return true
	}
	return false
}

// Live reports whether the thread can still make progress eventually.
func (s Status) Live() bool { return s != Exited && s != Faulted }

// Frame is a saved caller context pushed by CALL, or an interrupted context
// pushed by asynchronous signal delivery. Returning from a signal frame
// restores the interrupted register file exactly (no r0 result).
type Frame struct {
	RetPC  int
	Regs   [NumRegs]Word
	Signal bool
}

// Thread is one guest thread. All fields are plain values so a deep copy of
// the struct (plus the frame slice) is a complete checkpoint of the thread.
type Thread struct {
	ID     int
	PC     int
	Regs   [NumRegs]Word
	Frames []Frame
	Status Status

	// Retired counts retired instructions. Epoch boundaries are expressed
	// as per-thread retired-instruction targets: "run thread T until it has
	// retired N instructions" identifies the same program point in any
	// execution that read the same values, which is what lets the
	// epoch-parallel run stop exactly where the thread-parallel run did.
	Retired uint64

	// SyncRetired and SysRetired count retired synchronisation operations
	// and syscalls; they index this thread's cursor into the sync-order and
	// syscall logs.
	SyncRetired uint64
	SysRetired  uint64

	ExitVal Word
	Fault   string

	// SigHandler is the function index invoked on signal delivery, or -1.
	// Architectural state: set by OpSigH, inherited across SPAWN.
	SigHandler int

	// SigRetired counts delivered signals; it indexes this thread's cursor
	// into the signal log.
	SigRetired uint64

	// waitObj records what a blocked thread is waiting for (lock id,
	// barrier id, or tid for join). Derived state: not checkpointed.
	waitObj Word
}

// clone returns an independent deep copy of the thread.
func (t *Thread) clone() *Thread {
	c := *t
	c.Frames = make([]Frame, len(t.Frames))
	copy(c.Frames, t.Frames)
	return &c
}

// stateHash folds the thread's architectural state (registers, PC, frames,
// retirement counters, liveness) into h. Blocked statuses hash identically
// to Runnable because the blocking instruction has not retired.
func (t *Thread) stateHash(h uint64) uint64 {
	h = mix64(h, uint64(t.ID))
	h = mix64(h, uint64(t.PC))
	h = mix64(h, uint64(t.Retired))
	for _, r := range t.Regs {
		h = mix64(h, uint64(r))
	}
	for _, f := range t.Frames {
		h = mix64(h, uint64(f.RetPC))
		if f.Signal {
			h = mix64(h, 0x5160)
		}
		for _, r := range f.Regs {
			h = mix64(h, uint64(r))
		}
	}
	h = mix64(h, uint64(t.SigHandler+1))
	h = mix64(h, t.SigRetired)
	switch t.Status {
	case Exited:
		h = mix64(h, 0xE^uint64(t.ExitVal))
	case Faulted:
		h = mix64(h, 0xF)
	default:
		h = mix64(h, 0x1)
	}
	return h
}

// mix64 is a splitmix64-style combiner used for state hashing.
func mix64(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}
