package vm_test

import (
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/vm"
)

// sigAt delivers the given signals at exact retired counts of thread 0.
func sigAt(deliveries map[uint64]vm.Word) func(t *vm.Thread) (vm.Word, bool) {
	return func(t *vm.Thread) (vm.Word, bool) {
		if sig, ok := deliveries[t.Retired]; ok && t.ID == 0 {
			delete(deliveries, t.Retired)
			return sig, true
		}
		return 0, false
	}
}

// buildSignalProg: main installs a handler that adds the signal into a
// cell, then runs a counting loop; exit value is loop count * 1000 + cell.
func buildSignalProg(withHandler bool, iters int64) (*asm.Builder, vm.Word) {
	b := asm.NewBuilder("sig")
	cell := b.Words(0)
	h := b.Func("handler", 1)
	{
		sig := h.Arg(0)
		base, t := h.Const(cell), h.Reg()
		h.Ld(t, base, 0)
		h.Add(t, t, sig)
		h.St(base, 0, t)
		h.RetImm(0)
	}
	m := b.Func("main", 0)
	{
		if withHandler {
			m.SigHandler("handler")
		}
		i := m.Reg()
		m.Movi(i, 0)
		m.ForLtImm(i, iters, func() {})
		got, base := m.Reg(), m.Const(cell)
		m.Ld(got, base, 0)
		m.Muli(i, i, 1000)
		m.Add(got, got, i)
		m.Halt(got)
	}
	b.SetEntry("main")
	return b, cell
}

func runToEnd(t *testing.T, m *vm.Machine) {
	t.Helper()
	for steps := 0; !m.Done(); steps++ {
		if steps > 1_000_000 {
			t.Fatal("livelock")
		}
		for _, th := range m.Threads {
			if th.Status.Live() {
				m.Step(th)
			}
		}
	}
	if m.FaultCount() != 0 {
		t.Fatalf("faults: %v", m.Faults())
	}
}

func TestSignalHandlerRunsAndStatePreserved(t *testing.T) {
	b, _ := buildSignalProg(true, 50)
	prog := b.MustBuild()
	m := vm.NewMachine(prog, nil, nil)
	m.Hooks.PendingSignal = sigAt(map[uint64]vm.Word{20: 7, 60: 11})
	runToEnd(t, m)
	// Loop must complete exactly (i == 50) and the handler billed 7+11.
	if got := m.Threads[0].ExitVal; got != 50*1000+18 {
		t.Fatalf("exit = %d, want 50018", got)
	}
}

func TestSignalWithoutHandlerAbsorbedButRetired(t *testing.T) {
	b, _ := buildSignalProg(false, 50)
	prog := b.MustBuild()
	m := vm.NewMachine(prog, nil, nil)
	m.Hooks.PendingSignal = sigAt(map[uint64]vm.Word{20: 7})
	runToEnd(t, m)
	if got := m.Threads[0].ExitVal; got != 50*1000 {
		t.Fatalf("exit = %d, want 50000", got)
	}
	// The absorbed delivery still occupies one retirement slot.
	bb, _ := buildSignalProg(false, 50)
	m2 := vm.NewMachine(bb.MustBuild(), nil, nil)
	runToEnd(t, m2)
	if m.Threads[0].Retired != m2.Threads[0].Retired+1 {
		t.Fatalf("delivery not retired: %d vs %d", m.Threads[0].Retired, m2.Threads[0].Retired)
	}
	if m.Threads[0].SigRetired != 1 {
		t.Fatalf("SigRetired = %d", m.Threads[0].SigRetired)
	}
}

func TestSignalPreservesR0AcrossHandler(t *testing.T) {
	// r0 (the call-result register) must survive a signal even though the
	// handler itself returns through RET.
	b := asm.NewBuilder("r0")
	h := b.Func("handler", 1)
	h.RetImm(999) // tries to clobber r0 via its return value
	m := b.Func("main", 0)
	{
		m.SigHandler("handler")
		i := m.Reg()
		m.Movi(i, 0)
		// Put a sentinel in r0 via a call.
		m.ForLtImm(i, 30, func() {})
		m.Halt(asm.RetReg)
	}
	b.SetEntry("main")
	prog := b.MustBuild()
	mach := vm.NewMachine(prog, nil, nil)
	// Seed r0 by hand after handler installation, then interrupt.
	mach.Threads[0].Regs[0] = 4242
	mach.Hooks.PendingSignal = sigAt(map[uint64]vm.Word{10: 5})
	runToEnd(t, mach)
	if got := mach.Threads[0].ExitVal; got != 4242 {
		t.Fatalf("r0 across signal = %d, want 4242", got)
	}
}

func TestSignalHandlerInheritedBySpawn(t *testing.T) {
	b := asm.NewBuilder("inherit")
	cell := b.Words(0)
	h := b.Func("handler", 1)
	{
		sig := h.Arg(0)
		base, t0 := h.Const(cell), h.Reg()
		h.Ld(t0, base, 0)
		h.Add(t0, t0, sig)
		h.St(base, 0, t0)
		h.RetImm(0)
	}
	w := b.Func("worker", 1)
	{
		i := w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, 100, func() {})
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	{
		m.SigHandler("handler")
		t1, a := m.Reg(), m.Reg()
		m.Movi(a, 0)
		m.Spawn(t1, "worker", a)
		m.Join(t1)
		got, base := m.Reg(), m.Const(cell)
		m.Ld(got, base, 0)
		m.Halt(got)
	}
	b.SetEntry("main")
	prog := b.MustBuild()
	mach := vm.NewMachine(prog, nil, nil)
	mach.Hooks.PendingSignal = func(t *vm.Thread) (vm.Word, bool) {
		if t.ID == 1 && t.Retired == 40 {
			return 13, true
		}
		return 0, false
	}
	runToEnd(t, mach)
	if got := mach.Threads[0].ExitVal; got != 13 {
		t.Fatalf("child did not inherit handler: cell = %d", got)
	}
}

func TestSignalDuringBlockedLockDeliversFirst(t *testing.T) {
	// Thread blocked on a lock receives a signal, runs the handler, and
	// then resumes waiting; when the lock frees it proceeds normally.
	b := asm.NewBuilder("blocked")
	cell := b.Words(0)
	h := b.Func("handler", 1)
	{
		base, t0 := h.Const(cell), h.Reg()
		h.Ld(t0, base, 0)
		h.Addi(t0, t0, 100)
		h.St(base, 0, t0)
		h.RetImm(0)
	}
	w := b.Func("worker", 1)
	{
		w.SigHandler("handler")
		lk := w.Const(4)
		w.LockR(lk)
		w.UnlockR(lk)
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	{
		lk, t1, a, i := m.Const(4), m.Reg(), m.Reg(), m.Reg()
		m.LockR(lk)
		m.Movi(a, 0)
		m.Spawn(t1, "worker", a)
		m.Movi(i, 0)
		m.ForLtImm(i, 200, func() {}) // hold the lock a while
		m.UnlockR(lk)
		m.Join(t1)
		got, base := m.Reg(), m.Const(cell)
		m.Ld(got, base, 0)
		m.Halt(got)
	}
	b.SetEntry("main")
	prog := b.MustBuild()
	mach := vm.NewMachine(prog, nil, nil)
	delivered := false
	mach.Hooks.PendingSignal = func(t *vm.Thread) (vm.Word, bool) {
		// Fire once, at the worker's first step after its handler setup.
		if t.ID == 1 && t.Retired >= 2 && !delivered {
			delivered = true
			return 1, true
		}
		return 0, false
	}
	runToEnd(t, mach)
	if !delivered {
		t.Fatal("signal never delivered")
	}
	if got := mach.Threads[0].ExitVal; got != 100 {
		t.Fatalf("cell = %d, want 100", got)
	}
}

func TestCheckpointMidHandlerRestoresExactly(t *testing.T) {
	// Checkpoint while a thread is inside a signal handler: the signal
	// frame (including the interrupted registers) is architectural state
	// and must survive restore bit-exactly.
	b, _ := buildSignalProg(true, 200)
	prog := b.MustBuild()
	m := vm.NewMachine(prog, nil, nil)
	m.Hooks.PendingSignal = sigAt(map[uint64]vm.Word{50: 7})
	// Step until the handler is entered (frame depth 1 with Signal bit).
	entered := false
	for steps := 0; steps < 200 && !entered; steps++ {
		m.Step(m.Threads[0])
		for _, f := range m.Threads[0].Frames {
			if f.Signal {
				entered = true
			}
		}
	}
	if !entered {
		t.Fatal("handler never entered")
	}
	cp := m.Checkpoint()
	r := cp.Restore(prog, nil, nil)
	if r.StateHash() != m.StateHash() {
		t.Fatal("restore changed state mid-handler")
	}
	finish := func(mm *vm.Machine) vm.Word {
		for !mm.Done() {
			mm.Step(mm.Threads[0])
		}
		return mm.Threads[0].ExitVal
	}
	a, bb := finish(m), finish(r)
	if a != bb || a != 200*1000+7 {
		t.Fatalf("post-restore divergence: %d vs %d (want 200007)", a, bb)
	}
}

func TestSigHandlerBadFunctionFaults(t *testing.T) {
	prog := &vm.Program{
		Name:  "bad",
		Funcs: []vm.FuncInfo{{Name: "main", Entry: 0}},
		Code: []vm.Instr{
			{Op: vm.OpSigH, Imm: 99},
			{Op: vm.OpHalt},
		},
	}
	m := vm.NewMachine(prog, nil, nil)
	m.Step(m.Threads[0])
	if m.FaultCount() != 1 {
		t.Fatal("bad handler index did not fault")
	}
}
