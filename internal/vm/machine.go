package vm

import (
	"fmt"
	"sort"

	"doubleplay/internal/mem"
)

// ObjKind classifies synchronisation objects for ordering and logging.
type ObjKind uint8

const (
	ObjLock    ObjKind = iota // mutex, identified by guest word
	ObjAtomic                 // atomic memory word, identified by address
	ObjSpawn                  // the global thread-creation order
	ObjBarrier                // barrier, identified by guest word
)

var objKindNames = [...]string{ObjLock: "lock", ObjAtomic: "atomic", ObjSpawn: "spawn", ObjBarrier: "barrier"}

func (k ObjKind) String() string {
	if int(k) < len(objKindNames) {
		return objKindNames[k]
	}
	return fmt.Sprintf("objkind(%d)", uint8(k))
}

// SyncObj identifies one synchronisation object.
type SyncObj struct {
	Kind ObjKind
	ID   Word
}

func (o SyncObj) String() string { return fmt.Sprintf("%s:%d", o.Kind, o.ID) }

// SyncKind classifies synchronisation events.
type SyncKind uint8

const (
	SyncAcquire   SyncKind = iota // lock acquired
	SyncRelease                   // lock released
	SyncAtomic                    // CAS or fetch-add retired
	SyncSpawn                     // thread created (Child = new tid)
	SyncBarArrive                 // barrier arrival retired (Child = generation awaited)
	SyncBarPass                   // barrier wait retired (Child = generation passed)
	SyncExit                      // thread exited
	SyncJoin                      // join retired (Child = joined tid)
)

var syncKindNames = [...]string{
	SyncAcquire: "acquire", SyncRelease: "release", SyncAtomic: "atomic",
	SyncSpawn: "spawn", SyncBarArrive: "bar-arrive", SyncBarPass: "bar-pass",
	SyncExit: "exit", SyncJoin: "join",
}

func (k SyncKind) String() string {
	if int(k) < len(syncKindNames) {
		return syncKindNames[k]
	}
	return fmt.Sprintf("synckind(%d)", uint8(k))
}

// SyncEvent reports one retired synchronisation operation.
type SyncEvent struct {
	Tid   int
	Obj   SyncObj
	Kind  SyncKind
	Child int // spawned/joined tid, or barrier generation
}

// Gated reports whether events of this kind are subject to sync-order
// enforcement during epoch-parallel execution. Acquire order, atomic-op
// order, and spawn order fully determine inter-thread communication through
// synchronisation; releases, barriers, exits and joins order themselves.
func (e SyncEvent) Gated() bool {
	switch e.Kind {
	case SyncAcquire, SyncAtomic, SyncSpawn:
		return true
	}
	return false
}

// MemWrite is a block of guest memory written by a syscall; recorded in the
// syscall log so replay can reproduce input data without re-executing the
// simulated OS.
type MemWrite struct {
	Addr Word
	Data []Word
}

// SysResult is the outcome of a syscall attempt.
type SysResult struct {
	Ret    Word
	Block  bool       // retry later; nothing retired
	Writes []MemWrite // applied to guest memory on retire
	Fault  string     // non-empty: guest fault (bad syscall, bad args)
	Cost   Word       // extra cycles beyond the base syscall cost (data movement)
}

// SyscallHandler services guest syscalls. During recording this is the
// simulated OS wrapped in a logger; during epoch-parallel execution and
// replay it is an injector that feeds back logged results.
type SyscallHandler interface {
	Syscall(m *Machine, t *Thread, num Word, args [6]Word) SysResult
}

// Hooks observe and constrain execution. All fields may be nil.
type Hooks struct {
	// MayAcquire gates order-enforced sync operations (see SyncEvent.Gated).
	// Returning false blocks the thread until a later retry succeeds.
	MayAcquire func(obj SyncObj, tid int) bool
	// OnSync observes every retired synchronisation event.
	OnSync func(ev SyncEvent)
	// OnMemAccess observes every data (non-atomic) guest memory access and
	// every syscall write. Atomic operations are reported as sync events
	// instead.
	OnMemAccess func(tid int, addr Word, write bool)
	// OnMemWrite observes every guest memory write with its old and new
	// values — data stores, atomic read-modify-writes (cas/fadd), and
	// syscall result writes — just before the store lands. Unlike
	// OnMemAccess it covers atomics, which is what data watchpoints need:
	// the debug layer attaches here to stop when a watched word changes.
	// Nil-checked at every site so the non-debug hot path pays one branch.
	OnMemWrite func(tid int, addr, old, val Word)
	// PendingSignal is consulted before each instruction of a live thread;
	// returning (sig, true) delivers sig at that exact point. Delivery is a
	// retiring event, so a signal's position is fully identified by the
	// thread's retired-instruction count — which is how the log pinpoints
	// asynchronous delivery for replay.
	PendingSignal func(t *Thread) (Word, bool)
	// OnRetire observes every retired instruction: pc is the program
	// counter the instruction retired at (for a delivered signal, the pc it
	// interrupted) and cost is the instruction's static per-opcode charge
	// (Sync for signal delivery). The static charge — rather than the
	// dynamic StepResult cost — keeps the stream a pure function of the
	// retired-instruction sequence, identical between live and injected
	// execution; profilers depend on that.
	OnRetire func(t *Thread, pc int, cost int64)
}

// StepResult reports the outcome of executing one instruction attempt.
type StepResult struct {
	Retired bool
	Cost    int64
}

// Machine is a complete guest machine: program, memory, threads, locks, and
// syscall environment. A Machine is driven by a scheduler that decides which
// thread attempts the next instruction; the Machine itself is strictly
// single-goroutine.
type Machine struct {
	Prog    *Program
	Mem     *mem.Memory
	Threads []*Thread
	Locks   map[Word]int // lock id -> holder tid; absent means free
	OS      SyscallHandler
	Hooks   Hooks
	Cost    *CostModel

	// Now is the current simulated cycle, maintained by the scheduler so
	// the simulated OS can time-stamp world events.
	Now int64

	// Diverged is set by an injection handler or enforcement layer when the
	// execution departs from the recorded one; the epoch runner checks it
	// after every step.
	Diverged string

	// Barriers is architectural state: per-barrier arrival count and
	// release generation. It is checkpointed and hashed.
	Barriers map[Word]*BarrierState

	nextTID    int
	liveCount  int
	faultCount int

	// costTab is Cost.instrCost flattened per opcode; built once per
	// machine so the step hot path indexes instead of switching.
	costTab [256]int64
}

// BarrierState is one barrier's architectural state.
type BarrierState struct {
	Gen     Word // completed release generations
	Arrived Word // arrivals in the current generation
}

// NewMachine builds a machine at the program's entry point with a single
// runnable thread (tid 0). The program must pass Validate; a malformed
// image panics with an error wrapping ErrInvalidProgram rather than
// surfacing later as a guest fault at some unrelated pc.
func NewMachine(prog *Program, os SyscallHandler, cost *CostModel) *Machine {
	if err := prog.Validate(); err != nil {
		panic(err)
	}
	if cost == nil {
		cost = DefaultCosts()
	}
	m := &Machine{
		Prog:     prog,
		Mem:      mem.New(),
		Locks:    make(map[Word]int),
		OS:       os,
		Cost:     cost,
		Barriers: make(map[Word]*BarrierState),
	}
	m.costTab = cost.table()
	m.Mem.StoreRange(prog.DataBase, prog.Data)
	m.Mem.ResetStats()
	main := &Thread{ID: 0, PC: prog.Funcs[prog.Entry].Entry, SigHandler: -1}
	m.Threads = []*Thread{main}
	m.nextTID = 1
	m.liveCount = 1
	return m
}

// LiveCount reports the number of threads that are neither exited nor
// faulted.
func (m *Machine) LiveCount() int { return m.liveCount }

// FaultCount reports the number of faulted threads.
func (m *Machine) FaultCount() int { return m.faultCount }

// Done reports whether every thread has terminated.
func (m *Machine) Done() bool { return m.liveCount == 0 }

// Thread returns the thread with the given id, or nil.
func (m *Machine) Thread(tid int) *Thread {
	if tid < 0 || tid >= len(m.Threads) {
		return nil
	}
	return m.Threads[tid]
}

// Faults returns the fault messages of all faulted threads.
func (m *Machine) Faults() []string {
	var out []string
	for _, t := range m.Threads {
		if t.Status == Faulted {
			out = append(out, fmt.Sprintf("tid %d @pc %d: %s", t.ID, t.PC, t.Fault))
		}
	}
	return out
}

func (m *Machine) fault(t *Thread, msg string) {
	t.Status = Faulted
	t.Fault = msg
	m.liveCount--
	m.faultCount++
	m.wakeJoiners(t.ID)
}

// wake transitions every live thread blocked on (status, obj) back to
// Runnable so it re-attempts its instruction when next scheduled.
func (m *Machine) wake(status Status, obj Word) {
	for _, t := range m.Threads {
		if t.Status == status && t.waitObj == obj {
			t.Status = Runnable
		}
	}
}

func (m *Machine) wakeJoiners(tid int) { m.wake(BlockedJoin, Word(tid)) }

// wakeOrderBlocked releases every thread held back by sync-order
// enforcement; called after each retired sync event so gated threads
// re-poll the gate.
func (m *Machine) wakeOrderBlocked() {
	for _, t := range m.Threads {
		if t.Status == BlockedOrder {
			t.Status = Runnable
		}
	}
}

func (m *Machine) emitSync(ev SyncEvent) {
	if m.Hooks.OnSync != nil {
		m.Hooks.OnSync(ev)
	}
	m.wakeOrderBlocked()
}

// mayAcquire consults the enforcement gate; on refusal the thread blocks.
func (m *Machine) mayAcquire(t *Thread, obj SyncObj) bool {
	if m.Hooks.MayAcquire == nil {
		return true
	}
	if m.Hooks.MayAcquire(obj, t.ID) {
		return true
	}
	t.Status = BlockedOrder
	t.waitObj = 0
	return false
}

func (m *Machine) memLoad(t *Thread, addr Word) Word {
	if m.Hooks.OnMemAccess != nil {
		m.Hooks.OnMemAccess(t.ID, addr, false)
	}
	return m.Mem.Load(addr)
}

func (m *Machine) memStore(t *Thread, addr, val Word) {
	if m.Hooks.OnMemAccess != nil {
		m.Hooks.OnMemAccess(t.ID, addr, true)
	}
	if m.Hooks.OnMemWrite != nil {
		m.Hooks.OnMemWrite(t.ID, addr, m.Mem.Peek(addr), val)
	}
	m.Mem.Store(addr, val)
}

// Step makes thread t attempt its current instruction. Blocked threads
// re-attempt and either proceed or remain blocked; the scheduler charges
// cost only for retired instructions.
func (m *Machine) Step(t *Thread) StepResult {
	if m.Hooks.OnRetire == nil {
		return m.step(t)
	}
	pc0, sig0 := t.PC, t.SigRetired
	res := m.step(t)
	if res.Retired {
		// pc0 indexes valid code: an out-of-range pc faults without
		// retiring, so Retired implies the fetch at pc0 succeeded.
		cost := m.costTab[m.Prog.Code[pc0].Op]
		if t.SigRetired != sig0 {
			cost = m.Cost.Sync // signal delivery, not the instruction at pc0
		}
		m.Hooks.OnRetire(t, pc0, cost)
	}
	return res
}

func (m *Machine) step(t *Thread) StepResult {
	if !t.Status.Live() {
		panic(fmt.Sprintf("vm: Step on dead thread %d (%s)", t.ID, t.Status))
	}
	if t.PC < 0 || t.PC >= len(m.Prog.Code) {
		m.fault(t, fmt.Sprintf("pc out of range: %d", t.PC))
		return StepResult{}
	}
	if m.Hooks.PendingSignal != nil {
		if sig, ok := m.Hooks.PendingSignal(t); ok {
			return m.deliverSignal(t, sig)
		}
	}
	in := m.Prog.Code[t.PC]
	cost := m.costTab[in.Op]
	r := &t.Regs

	retire := func() StepResult {
		t.PC++
		t.Retired++
		t.Status = Runnable
		return StepResult{Retired: true, Cost: cost}
	}
	retireSync := func(ev SyncEvent) StepResult {
		res := retire()
		t.SyncRetired++
		m.emitSync(ev)
		return res
	}

	switch in.Op {
	case OpNop:
		return retire()
	case OpMovi:
		r[in.A] = in.Imm
		return retire()
	case OpMov:
		r[in.A] = r[in.B]
		return retire()
	case OpAdd:
		r[in.A] = r[in.B] + r[in.C]
		return retire()
	case OpSub:
		r[in.A] = r[in.B] - r[in.C]
		return retire()
	case OpMul:
		r[in.A] = r[in.B] * r[in.C]
		return retire()
	case OpDiv:
		if r[in.C] == 0 {
			m.fault(t, "divide by zero")
			return StepResult{}
		}
		r[in.A] = r[in.B] / r[in.C]
		return retire()
	case OpMod:
		if r[in.C] == 0 {
			m.fault(t, "modulo by zero")
			return StepResult{}
		}
		r[in.A] = r[in.B] % r[in.C]
		return retire()
	case OpAnd:
		r[in.A] = r[in.B] & r[in.C]
		return retire()
	case OpOr:
		r[in.A] = r[in.B] | r[in.C]
		return retire()
	case OpXor:
		r[in.A] = r[in.B] ^ r[in.C]
		return retire()
	case OpShl:
		r[in.A] = r[in.B] << (uint64(r[in.C]) & 63)
		return retire()
	case OpShr:
		r[in.A] = r[in.B] >> (uint64(r[in.C]) & 63)
		return retire()
	case OpAddi:
		r[in.A] = r[in.B] + in.Imm
		return retire()
	case OpMuli:
		r[in.A] = r[in.B] * in.Imm
		return retire()
	case OpDivi:
		if in.Imm == 0 {
			m.fault(t, "divide by zero immediate")
			return StepResult{}
		}
		r[in.A] = r[in.B] / in.Imm
		return retire()
	case OpModi:
		if in.Imm == 0 {
			m.fault(t, "modulo by zero immediate")
			return StepResult{}
		}
		r[in.A] = r[in.B] % in.Imm
		return retire()
	case OpAndi:
		r[in.A] = r[in.B] & in.Imm
		return retire()
	case OpOri:
		r[in.A] = r[in.B] | in.Imm
		return retire()
	case OpXori:
		r[in.A] = r[in.B] ^ in.Imm
		return retire()
	case OpShli:
		r[in.A] = r[in.B] << (uint64(in.Imm) & 63)
		return retire()
	case OpShri:
		r[in.A] = r[in.B] >> (uint64(in.Imm) & 63)
		return retire()
	case OpNeg:
		r[in.A] = -r[in.B]
		return retire()
	case OpNot:
		r[in.A] = ^r[in.B]
		return retire()
	case OpSlt:
		r[in.A] = b2w(r[in.B] < r[in.C])
		return retire()
	case OpSle:
		r[in.A] = b2w(r[in.B] <= r[in.C])
		return retire()
	case OpSeq:
		r[in.A] = b2w(r[in.B] == r[in.C])
		return retire()
	case OpSne:
		r[in.A] = b2w(r[in.B] != r[in.C])
		return retire()
	case OpSlti:
		r[in.A] = b2w(r[in.B] < in.Imm)
		return retire()
	case OpSlei:
		r[in.A] = b2w(r[in.B] <= in.Imm)
		return retire()
	case OpSeqi:
		r[in.A] = b2w(r[in.B] == in.Imm)
		return retire()
	case OpSnei:
		r[in.A] = b2w(r[in.B] != in.Imm)
		return retire()

	case OpJmp:
		t.PC = int(in.Imm)
		t.Retired++
		return StepResult{Retired: true, Cost: cost}
	case OpJz:
		if r[in.A] == 0 {
			t.PC = int(in.Imm)
		} else {
			t.PC++
		}
		t.Retired++
		return StepResult{Retired: true, Cost: cost}
	case OpJnz:
		if r[in.A] != 0 {
			t.PC = int(in.Imm)
		} else {
			t.PC++
		}
		t.Retired++
		return StepResult{Retired: true, Cost: cost}

	case OpCall:
		fn := int(in.Imm)
		if fn < 0 || fn >= len(m.Prog.Funcs) {
			m.fault(t, fmt.Sprintf("call to bad function %d", fn))
			return StepResult{}
		}
		if len(t.Frames) >= 512 {
			m.fault(t, "call stack overflow")
			return StepResult{}
		}
		t.Frames = append(t.Frames, Frame{RetPC: t.PC + 1, Regs: t.Regs})
		var fresh [NumRegs]Word
		copy(fresh[1:1+MaxArgs], t.Regs[ArgStageBase:ArgStageBase+MaxArgs])
		t.Regs = fresh
		t.PC = m.Prog.Funcs[fn].Entry
		t.Retired++
		return StepResult{Retired: true, Cost: cost}
	case OpRet:
		if len(t.Frames) == 0 {
			m.fault(t, "return with empty call stack")
			return StepResult{}
		}
		ret := r[in.A]
		f := t.Frames[len(t.Frames)-1]
		t.Frames = t.Frames[:len(t.Frames)-1]
		t.Regs = f.Regs
		if !f.Signal {
			t.Regs[0] = ret // a signal return restores r0 untouched
		}
		t.PC = f.RetPC
		t.Retired++
		return StepResult{Retired: true, Cost: cost}

	case OpLd:
		r[in.A] = m.memLoad(t, r[in.B]+in.Imm)
		return retire()
	case OpSt:
		m.memStore(t, r[in.B]+in.Imm, r[in.A])
		return retire()
	case OpLdx:
		r[in.A] = m.memLoad(t, r[in.B]+r[in.C])
		return retire()
	case OpStx:
		m.memStore(t, r[in.B]+r[in.C], r[in.A])
		return retire()

	case OpLock:
		id := r[in.A]
		holder, held := m.Locks[id]
		if held {
			if holder == t.ID {
				m.fault(t, fmt.Sprintf("recursive lock %d", id))
				return StepResult{}
			}
			t.Status = BlockedLock
			t.waitObj = id
			return StepResult{}
		}
		obj := SyncObj{ObjLock, id}
		if !m.mayAcquire(t, obj) {
			return StepResult{}
		}
		m.Locks[id] = t.ID
		return retireSync(SyncEvent{Tid: t.ID, Obj: obj, Kind: SyncAcquire})
	case OpUnlock:
		id := r[in.A]
		holder, held := m.Locks[id]
		if !held || holder != t.ID {
			m.fault(t, fmt.Sprintf("unlock of lock %d not held by tid %d", id, t.ID))
			return StepResult{}
		}
		delete(m.Locks, id)
		res := retireSync(SyncEvent{Tid: t.ID, Obj: SyncObj{ObjLock, id}, Kind: SyncRelease})
		m.wake(BlockedLock, id)
		return res
	case OpBarArrive:
		id, count := r[in.B], r[in.C]
		if count <= 0 {
			m.fault(t, fmt.Sprintf("barrier %d with count %d", id, count))
			return StepResult{}
		}
		b := m.Barriers[id]
		if b == nil {
			b = &BarrierState{}
			m.Barriers[id] = b
		}
		r[in.A] = b.Gen + 1
		b.Arrived++
		if b.Arrived >= count {
			b.Arrived = 0
			b.Gen++
			m.wake(BlockedBarrier, id)
		}
		return retireSync(SyncEvent{Tid: t.ID, Obj: SyncObj{ObjBarrier, id}, Kind: SyncBarArrive, Child: int(r[in.A])})
	case OpBarWait:
		id, want := r[in.B], r[in.A]
		b := m.Barriers[id]
		if b == nil || b.Gen < want {
			t.Status = BlockedBarrier
			t.waitObj = id
			return StepResult{}
		}
		return retireSync(SyncEvent{Tid: t.ID, Obj: SyncObj{ObjBarrier, id}, Kind: SyncBarPass, Child: int(want)})
	case OpCas:
		addr := r[in.B]
		obj := SyncObj{ObjAtomic, addr}
		if !m.mayAcquire(t, obj) {
			return StepResult{}
		}
		if m.Mem.Load(addr) == r[in.C] {
			if m.Hooks.OnMemWrite != nil {
				m.Hooks.OnMemWrite(t.ID, addr, r[in.C], r[in.D])
			}
			m.Mem.Store(addr, r[in.D])
			r[in.A] = 1
		} else {
			r[in.A] = 0
		}
		return retireSync(SyncEvent{Tid: t.ID, Obj: obj, Kind: SyncAtomic})
	case OpFadd:
		addr := r[in.B]
		obj := SyncObj{ObjAtomic, addr}
		if !m.mayAcquire(t, obj) {
			return StepResult{}
		}
		old := m.Mem.Load(addr)
		if m.Hooks.OnMemWrite != nil {
			m.Hooks.OnMemWrite(t.ID, addr, old, old+r[in.C])
		}
		m.Mem.Store(addr, old+r[in.C])
		r[in.A] = old
		return retireSync(SyncEvent{Tid: t.ID, Obj: obj, Kind: SyncAtomic})

	case OpSpawn:
		fn := int(in.Imm)
		if fn < 0 || fn >= len(m.Prog.Funcs) {
			m.fault(t, fmt.Sprintf("spawn of bad function %d", fn))
			return StepResult{}
		}
		obj := SyncObj{ObjSpawn, 0}
		if !m.mayAcquire(t, obj) {
			return StepResult{}
		}
		child := &Thread{ID: m.nextTID, PC: m.Prog.Funcs[fn].Entry, SigHandler: t.SigHandler}
		child.Regs[1] = r[in.B]
		m.nextTID++
		m.Threads = append(m.Threads, child)
		m.liveCount++
		r[in.A] = Word(child.ID)
		return retireSync(SyncEvent{Tid: t.ID, Obj: obj, Kind: SyncSpawn, Child: child.ID})
	case OpJoin:
		tid := int(r[in.A])
		child := m.Thread(tid)
		if child == nil || child == t {
			m.fault(t, fmt.Sprintf("join on bad tid %d", tid))
			return StepResult{}
		}
		switch child.Status {
		case Exited:
			r[in.A] = child.ExitVal
			return retireSync(SyncEvent{Tid: t.ID, Obj: SyncObj{ObjSpawn, 0}, Kind: SyncJoin, Child: tid})
		case Faulted:
			m.fault(t, fmt.Sprintf("join on faulted tid %d: %s", tid, child.Fault))
			return StepResult{}
		default:
			t.Status = BlockedJoin
			t.waitObj = Word(tid)
			return StepResult{}
		}

	case OpSys:
		var args [6]Word
		copy(args[:], r[ArgStageBase:ArgStageBase+MaxArgs])
		res := m.OS.Syscall(m, t, in.Imm, args)
		if res.Fault != "" {
			m.fault(t, res.Fault)
			return StepResult{}
		}
		if res.Block {
			t.Status = BlockedSys
			t.waitObj = 0
			return StepResult{}
		}
		cost += res.Cost
		for _, w := range res.Writes {
			cost += int64(len(w.Data)) // data movement into guest memory
			for i, v := range w.Data {
				m.memStore(t, w.Addr+Word(i), v)
			}
		}
		r[0] = res.Ret
		t.PC++
		t.Retired++
		t.SysRetired++
		t.Status = Runnable
		return StepResult{Retired: true, Cost: cost}
	case OpTid:
		r[in.A] = Word(t.ID)
		return retire()
	case OpSigH:
		fn := int(in.Imm)
		if fn < 0 || fn >= len(m.Prog.Funcs) {
			m.fault(t, fmt.Sprintf("sig.handler with bad function %d", fn))
			return StepResult{}
		}
		t.SigHandler = fn
		return retire()
	case OpHalt:
		t.ExitVal = r[in.A]
		t.Status = Exited
		t.Retired++
		m.liveCount--
		m.emitSync(SyncEvent{Tid: t.ID, Obj: SyncObj{ObjSpawn, 0}, Kind: SyncExit})
		m.wakeJoiners(t.ID)
		return StepResult{Retired: true, Cost: cost}
	default:
		m.fault(t, fmt.Sprintf("illegal opcode %d", in.Op))
		return StepResult{}
	}
}

// deliverSignal interrupts t at its current point: the context is pushed
// as a signal frame and control transfers to the handler with the signal
// number as its argument. Delivery retires (like an implicit instruction),
// so it occupies one position in the thread's retired-instruction stream
// and appears in timeslice accounting. A thread with no handler absorbs
// the signal (still retiring the delivery, so record and replay agree).
func (m *Machine) deliverSignal(t *Thread, sig Word) StepResult {
	t.Retired++
	t.SigRetired++
	if t.SigHandler < 0 {
		return StepResult{Retired: true, Cost: m.Cost.Sync}
	}
	if len(t.Frames) >= 512 {
		m.fault(t, "signal delivery overflowed the call stack")
		return StepResult{}
	}
	t.Frames = append(t.Frames, Frame{RetPC: t.PC, Regs: t.Regs, Signal: true})
	var fresh [NumRegs]Word
	fresh[1] = sig
	t.Regs = fresh
	t.PC = m.Prog.Funcs[t.SigHandler].Entry
	t.Status = Runnable
	return StepResult{Retired: true, Cost: m.Cost.Sync}
}

func b2w(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Checkpointing

// Checkpoint is a complete architectural snapshot of a machine: memory
// image, thread states, lock ownership, and barrier state. Wait queues and
// blocked statuses are deliberately absent — they are derived state that
// re-materialises when restored threads re-attempt their un-retired
// instructions.
type Checkpoint struct {
	MemSnap  *mem.Snapshot
	Threads  []*Thread
	Locks    map[Word]int
	Barriers map[Word]BarrierState
	NextTID  int
}

// Checkpoint captures the machine's architectural state. The machine
// remains usable; future writes copy pages lazily.
func (m *Machine) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		MemSnap:  m.Mem.Snapshot(),
		Threads:  make([]*Thread, len(m.Threads)),
		Locks:    make(map[Word]int, len(m.Locks)),
		Barriers: make(map[Word]BarrierState, len(m.Barriers)),
		NextTID:  m.nextTID,
	}
	for i, t := range m.Threads {
		c := t.clone()
		if c.Status.Blocked() {
			c.Status = Runnable
		}
		c.waitObj = 0
		cp.Threads[i] = c
	}
	for k, v := range m.Locks {
		cp.Locks[k] = v
	}
	for k, v := range m.Barriers {
		cp.Barriers[k] = *v
	}
	return cp
}

// Release drops the checkpoint's hold on shared memory pages.
func (cp *Checkpoint) Release() { cp.MemSnap.Release() }

// Hash returns the architectural state hash of the checkpoint; two
// executions are considered identical at a boundary iff their hashes match.
func (cp *Checkpoint) Hash() uint64 {
	return stateHash(cp.MemSnap.Hash(), cp.Threads, cp.Locks, cp.Barriers, cp.NextTID)
}

// LiveThreads reports how many checkpointed threads are live.
func (cp *Checkpoint) LiveThreads() int {
	n := 0
	for _, t := range cp.Threads {
		if t.Status.Live() {
			n++
		}
	}
	return n
}

// Restore builds a fresh machine from the checkpoint. The new machine
// shares memory pages copy-on-write with the checkpoint and any other
// machine restored from it, so concurrent epoch executions are independent.
func (cp *Checkpoint) Restore(prog *Program, os SyscallHandler, cost *CostModel) *Machine {
	if cost == nil {
		cost = DefaultCosts()
	}
	m := &Machine{
		Prog:     prog,
		Mem:      cp.MemSnap.Restore(),
		Threads:  make([]*Thread, len(cp.Threads)),
		Locks:    make(map[Word]int, len(cp.Locks)),
		Barriers: make(map[Word]*BarrierState, len(cp.Barriers)),
		OS:       os,
		Cost:     cost,
		nextTID:  cp.NextTID,
	}
	m.costTab = cost.table()
	for i, t := range cp.Threads {
		c := t.clone()
		m.Threads[i] = c
		if c.Status.Live() {
			m.liveCount++
		}
		if c.Status == Faulted {
			m.faultCount++
		}
	}
	for k, v := range cp.Locks {
		m.Locks[k] = v
	}
	for k, v := range cp.Barriers {
		b := v
		m.Barriers[k] = &b
	}
	m.Mem.ResetStats()
	return m
}

// StateHash returns the machine's current architectural state hash.
func (m *Machine) StateHash() uint64 {
	bars := make(map[Word]BarrierState, len(m.Barriers))
	for k, v := range m.Barriers {
		bars[k] = *v
	}
	return stateHash(m.Mem.Hash(), m.Threads, m.Locks, bars, m.nextTID)
}

func stateHash(memHash uint64, threads []*Thread, locks map[Word]int, barriers map[Word]BarrierState, nextTID int) uint64 {
	h := memHash
	h = mix64(h, uint64(nextTID))
	h = mix64(h, uint64(len(threads)))
	for _, t := range threads {
		h = t.stateHash(h)
	}
	// Map iteration order is randomised; fold in sorted order.
	ids := make([]Word, 0, len(locks))
	for id := range locks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		h = mix64(h, uint64(id)*0x9e37+uint64(locks[id])+1)
	}
	ids = ids[:0]
	for id := range barriers {
		b := barriers[id]
		if b.Gen == 0 && b.Arrived == 0 {
			continue // untouched barriers hash like absent ones
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b := barriers[id]
		h = mix64(h, uint64(id)*0x517c+uint64(b.Gen)*31+uint64(b.Arrived)+3)
	}
	return h
}

// DescribeState summarises thread states for diagnostics.
func (m *Machine) DescribeState() string {
	s := ""
	for _, t := range m.Threads {
		s += fmt.Sprintf("tid %d: pc=%d retired=%d %s", t.ID, t.PC, t.Retired, t.Status)
		if t.Status.Blocked() {
			s += fmt.Sprintf(" wait=%d", t.waitObj)
		}
		if t.Fault != "" {
			s += " fault=" + t.Fault
		}
		s += "\n"
	}
	return s
}
