// Package vm implements the deterministic multiprocessor substrate that
// DoublePlay records and replays: a register-based bytecode machine with
// threads, shared word-addressed memory, locks, barriers, atomics, and a
// pluggable syscall layer.
//
// The VM stands in for the paper's real x86 SMP hardware plus kernel
// support. Everything the original system needed from the kernel — precise
// control over which thread runs each instruction, snapshotable thread
// state, syscall interception — is available here by construction, which is
// what makes deterministic uniparallel record/replay implementable in pure
// Go despite the Go runtime's nondeterministic goroutine scheduling.
package vm

import "fmt"

// Word is the unit of guest arithmetic and guest memory.
type Word = int64

// NumRegs is the size of each thread's register file. r0 holds function
// results; callees receive arguments in r1..r6, passed by the caller
// through the staging registers r58..r63 so that CALL and SYS never clobber
// the caller's own registers.
const NumRegs = 64

// ArgStageBase is the first staging register: CALL copies
// r[ArgStageBase..ArgStageBase+5] into the callee's r1..r6, and SYS reads
// its arguments from the same window.
const ArgStageBase = 58

// MaxArgs is the argument limit for CALL and SYS.
const MaxArgs = 6

// Opcode enumerates the instruction set.
type Opcode uint8

const (
	OpNop Opcode = iota

	// Data movement.
	OpMovi // rA = Imm
	OpMov  // rA = rB

	// Register-register arithmetic: rA = rB op rC.
	OpAdd
	OpSub
	OpMul
	OpDiv // guest fault on divide by zero
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic shift right

	// Register-immediate arithmetic: rA = rB op Imm.
	OpAddi
	OpMuli
	OpDivi
	OpModi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri

	// Unary: rA = op rB.
	OpNeg
	OpNot

	// Comparisons (1 or 0 into rA).
	OpSlt  // rA = rB <  rC
	OpSle  // rA = rB <= rC
	OpSeq  // rA = rB == rC
	OpSne  // rA = rB != rC
	OpSlti // rA = rB <  Imm
	OpSlei // rA = rB <= Imm
	OpSeqi // rA = rB == Imm
	OpSnei // rA = rB != Imm

	// Control flow.
	OpJmp  // pc = Imm
	OpJz   // if rA == 0 { pc = Imm }
	OpJnz  // if rA != 0 { pc = Imm }
	OpCall // call Funcs[Imm]; caller r1..r8 become callee args
	OpRet  // return rA to caller's r0

	// Memory.
	OpLd  // rA = mem[rB + Imm]
	OpSt  // mem[rB + Imm] = rA
	OpLdx // rA = mem[rB + rC]
	OpStx // mem[rB + rC] = rA

	// Synchronisation. Lock/barrier IDs and atomic addresses are guest
	// words; every retired operation is reported as a SyncEvent.
	//
	// Barriers are two instructions so that arrival is a *retiring*
	// operation and barrier state (arrival count, generation) is
	// architectural: OpBarArrive records the arrival — and releases the
	// generation if it is the last — then OpBarWait blocks until the
	// generation in rD is reached. This keeps mid-barrier checkpoints exact
	// and makes arrivals visible to the timeslice schedule log.
	OpLock      // acquire lock r[A]
	OpUnlock    // release lock r[A]
	OpBarArrive // rA = generation to wait for; barrier id r[B], count r[C]
	OpBarWait   // block until barrier r[B]'s generation reaches r[A]
	OpCas       // rA = (mem[rB] == rC ? (mem[rB] = rD; 1) : 0), atomic
	OpFadd      // rA = mem[rB]; mem[rB] += rC, atomic

	// Threads.
	OpSpawn // rA = new tid running Funcs[Imm] with child r1 = rB
	OpJoin  // block until thread r[A] exits; rA = its exit value

	// Environment.
	OpSys  // syscall Imm; args from the staging registers; result in r0
	OpTid  // rA = current thread id
	OpSigH // install Funcs[Imm] as this thread's signal handler
	OpHalt // thread exits with value rA
)

var opNames = [...]string{
	OpNop: "nop", OpMovi: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddi: "addi", OpMuli: "muli", OpDivi: "divi", OpModi: "modi",
	OpAndi: "andi", OpOri: "ori", OpXori: "xori", OpShli: "shli", OpShri: "shri",
	OpNeg: "neg", OpNot: "not",
	OpSlt: "slt", OpSle: "sle", OpSeq: "seq", OpSne: "sne",
	OpSlti: "slti", OpSlei: "slei", OpSeqi: "seqi", OpSnei: "snei",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz", OpCall: "call", OpRet: "ret",
	OpLd: "ld", OpSt: "st", OpLdx: "ldx", OpStx: "stx",
	OpLock: "lock", OpUnlock: "unlock", OpBarArrive: "bar.arrive", OpBarWait: "bar.wait",
	OpCas: "cas", OpFadd: "fadd",
	OpSpawn: "spawn", OpJoin: "join",
	OpSys: "sys", OpTid: "tid", OpSigH: "sig.handler", OpHalt: "halt",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Instr is one decoded instruction. A, B, C, D index registers; Imm is an
// immediate operand, branch target, function index, or syscall number
// depending on the opcode.
type Instr struct {
	Op         Opcode
	A, B, C, D uint8
	Imm        Word
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpRet:
		if in.Op == OpNop {
			return "nop"
		}
		return fmt.Sprintf("%s r%d", in.Op, in.A)
	case OpMovi, OpSlti, OpSlei, OpSeqi, OpSnei:
		if in.Op == OpMovi {
			return fmt.Sprintf("movi r%d, %d", in.A, in.Imm)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.A, in.B, in.Imm)
	case OpAddi, OpMuli, OpDivi, OpModi, OpAndi, OpOri, OpXori, OpShli, OpShri:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.A, in.B, in.Imm)
	case OpMov, OpNeg, OpNot:
		return fmt.Sprintf("%s r%d, r%d", in.Op, in.A, in.B)
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Imm)
	case OpJz, OpJnz:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.A, in.Imm)
	case OpCall:
		return fmt.Sprintf("call fn%d", in.Imm)
	case OpLd:
		return fmt.Sprintf("ld r%d, [r%d%+d]", in.A, in.B, in.Imm)
	case OpSt:
		return fmt.Sprintf("st [r%d%+d], r%d", in.B, in.Imm, in.A)
	case OpLdx:
		return fmt.Sprintf("ldx r%d, [r%d+r%d]", in.A, in.B, in.C)
	case OpStx:
		return fmt.Sprintf("stx [r%d+r%d], r%d", in.B, in.C, in.A)
	case OpLock, OpUnlock, OpTid:
		return fmt.Sprintf("%s r%d", in.Op, in.A)
	case OpBarArrive:
		return fmt.Sprintf("bar.arrive r%d, id=r%d, n=r%d", in.A, in.B, in.C)
	case OpBarWait:
		return fmt.Sprintf("bar.wait r%d, id=r%d", in.A, in.B)
	case OpCas:
		return fmt.Sprintf("cas r%d, [r%d], r%d, r%d", in.A, in.B, in.C, in.D)
	case OpFadd:
		return fmt.Sprintf("fadd r%d, [r%d], r%d", in.A, in.B, in.C)
	case OpSpawn:
		return fmt.Sprintf("spawn r%d, fn%d, r%d", in.A, in.Imm, in.B)
	case OpJoin:
		return fmt.Sprintf("join r%d", in.A)
	case OpSys:
		return fmt.Sprintf("sys %d", in.Imm)
	case OpSigH:
		return fmt.Sprintf("sig.handler fn%d", in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	}
}

// FuncInfo describes one guest function.
type FuncInfo struct {
	Name  string
	Entry int // index into Program.Code
	NArgs int
}

// Program is an executable guest image: code, function table, and an
// initial data segment loaded at DataBase when a machine is reset.
type Program struct {
	Name     string
	Code     []Instr
	Funcs    []FuncInfo
	Entry    int // index into Funcs of the main function
	Data     []Word
	DataBase Word
}

// FuncByName returns the index of the named function, or -1.
func (p *Program) FuncByName(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FuncAt returns the function whose body contains code index pc, for
// diagnostics. A function's body extends from its entry up to (but not
// including) the next function's entry, or the end of the code segment for
// the last function. Returns nil if pc falls outside every body.
func (p *Program) FuncAt(pc int) *FuncInfo {
	if pc < 0 || pc >= len(p.Code) {
		return nil
	}
	var best *FuncInfo
	for i := range p.Funcs {
		f := &p.Funcs[i]
		if f.Entry <= pc && (best == nil || f.Entry > best.Entry) {
			best = f
		}
	}
	if best == nil {
		return nil
	}
	end := len(p.Code)
	for i := range p.Funcs {
		if e := p.Funcs[i].Entry; e > best.Entry && e < end {
			end = e
		}
	}
	if pc >= end {
		return nil
	}
	return best
}
