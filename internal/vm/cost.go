package vm

// CostModel assigns simulated-cycle costs to guest operations and to the
// record-time work DoublePlay adds (log writes, checkpoints, state
// comparison). Overheads reported by the experiment harness emerge from
// these charges plus pipeline structure; they are knobs of the simulated
// hardware, not of the algorithm.
type CostModel struct {
	// Per-instruction execution costs.
	Instr int64 // plain ALU / control instruction
	Mem   int64 // load/store
	Sync  int64 // lock, unlock, barrier, atomic
	Spawn int64 // thread creation
	Sys   int64 // syscall dispatch

	// Record-time costs charged by the DoublePlay runtime.
	SyncLogEvent     int64 // appending one sync-order record (thread-parallel run)
	SysLogEvent      int64 // recording one syscall result + its memory writes
	SchedLogEvent    int64 // appending one timeslice record (epoch-parallel run)
	TimesliceSwitch  int64 // context switch on the uniprocessor (both runs pay this)
	CheckpointBase   int64 // fixed cost of taking a checkpoint (fork + bookkeeping)
	CheckpointPage   int64 // per-mapped-page cost of a checkpoint (page-table copy)
	CowCopyPage      int64 // copying one page on first write after a checkpoint
	ComparePage      int64 // comparing one page at epoch commit
	InjectSysEvent   int64 // injecting one logged syscall during epoch-parallel/replay runs
	EnforceSyncEvent int64 // consulting the sync-order gate at one sync operation
}

// DefaultCosts returns the cost model used throughout the evaluation. The
// ratios are modelled on the paper's testbed: syscalls cost tens of cycles
// of kernel entry/exit, checkpoints cost a fork (microseconds, amortised
// over epochs of tens of thousands of instructions), and log appends are a
// few cycles of buffered writes.
func DefaultCosts() *CostModel {
	return &CostModel{
		Instr: 1,
		Mem:   2,
		Sync:  8,
		Spawn: 400,
		Sys:   80,

		SyncLogEvent:     6,
		SysLogEvent:      16,
		SchedLogEvent:    30,
		TimesliceSwitch:  120,
		CheckpointBase:   2000,
		CheckpointPage:   8,
		CowCopyPage:      60,
		ComparePage:      8,
		InjectSysEvent:   30,
		EnforceSyncEvent: 4,
	}
}

// table flattens instrCost into a dense per-opcode array so the
// interpreter loop indexes instead of re-running the switch per retire.
func (c *CostModel) table() [256]int64 {
	var tab [256]int64
	for op := 0; op < len(tab); op++ {
		tab[op] = c.instrCost(Opcode(op))
	}
	return tab
}

// instrCost returns the execution cost of one instruction.
func (c *CostModel) instrCost(op Opcode) int64 {
	switch op {
	case OpLd, OpSt, OpLdx, OpStx:
		return c.Mem
	case OpLock, OpUnlock, OpBarArrive, OpBarWait, OpCas, OpFadd:
		return c.Sync
	case OpSpawn, OpJoin:
		return c.Spawn
	case OpSys:
		return c.Sys
	default:
		return c.Instr
	}
}
