package vm_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"doubleplay/internal/asm"
	"doubleplay/internal/vm"
)

// run drives a machine round-robin until every thread terminates, failing
// the test on deadlock/livelock. Blocked threads are re-attempted every
// round, matching the schedulers' retry semantics.
func run(t *testing.T, m *vm.Machine) {
	t.Helper()
	idle := 0
	for steps := 0; !m.Done(); steps++ {
		if steps > 5_000_000 {
			t.Fatalf("livelock:\n%s", m.DescribeState())
		}
		progressed := false
		for _, th := range m.Threads {
			if th.Status.Live() {
				if res := m.Step(th); res.Retired {
					progressed = true
				}
			}
		}
		if progressed {
			idle = 0
			continue
		}
		idle++
		if idle > 16 && !m.Done() {
			t.Fatalf("deadlock:\n%s", m.DescribeState())
		}
	}
}

// exec builds and runs a single-function program, returning the machine.
func exec(t *testing.T, build func(f *asm.Func)) *vm.Machine {
	t.Helper()
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	build(f)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(prog, nil, nil)
	run(t, m)
	return m
}

func TestArithmeticOpsMatchGo(t *testing.T) {
	type binOp struct {
		name string
		emit func(f *asm.Func, d, a, b asm.Reg)
		eval func(a, b int64) int64
	}
	ops := []binOp{
		{"add", (*asm.Func).Add, func(a, b int64) int64 { return a + b }},
		{"sub", (*asm.Func).Sub, func(a, b int64) int64 { return a - b }},
		{"mul", (*asm.Func).Mul, func(a, b int64) int64 { return a * b }},
		{"and", (*asm.Func).And, func(a, b int64) int64 { return a & b }},
		{"or", (*asm.Func).Or, func(a, b int64) int64 { return a | b }},
		{"xor", (*asm.Func).Xor, func(a, b int64) int64 { return a ^ b }},
		{"slt", (*asm.Func).Slt, func(a, b int64) int64 { return b2i(a < b) }},
		{"sle", (*asm.Func).Sle, func(a, b int64) int64 { return b2i(a <= b) }},
		{"seq", (*asm.Func).Seq, func(a, b int64) int64 { return b2i(a == b) }},
		{"sne", (*asm.Func).Sne, func(a, b int64) int64 { return b2i(a != b) }},
	}
	rng := rand.New(rand.NewSource(1))
	for _, op := range ops {
		op := op
		t.Run(op.name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				a, b := rng.Int63()-rng.Int63(), rng.Int63()-rng.Int63()
				m := exec(t, func(f *asm.Func) {
					ra, rb, rd := f.Reg(), f.Reg(), f.Reg()
					f.Movi(ra, a)
					f.Movi(rb, b)
					op.emit(f, rd, ra, rb)
					f.Halt(rd)
				})
				if got := m.Threads[0].ExitVal; got != op.eval(a, b) {
					t.Fatalf("%s(%d,%d) = %d, want %d", op.name, a, b, got, op.eval(a, b))
				}
			}
		})
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func TestDivModSemantics(t *testing.T) {
	m := exec(t, func(f *asm.Func) {
		a, b, d, e := f.Reg(), f.Reg(), f.Reg(), f.Reg()
		f.Movi(a, -17)
		f.Movi(b, 5)
		f.Div(d, a, b)
		f.Mod(e, a, b)
		f.Mul(d, d, b)
		f.Add(d, d, e) // d/b*b + d%b == d
		f.Halt(d)
	})
	if got := m.Threads[0].ExitVal; got != -17 {
		t.Fatalf("div/mod identity broken: %d", got)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	m := exec(t, func(f *asm.Func) {
		a, z, d := f.Reg(), f.Reg(), f.Reg()
		f.Movi(a, 5)
		f.Movi(z, 0)
		f.Div(d, a, z)
		f.Halt(d)
	})
	if m.FaultCount() != 1 {
		t.Fatalf("expected divide fault, got %d faults", m.FaultCount())
	}
	if !strings.Contains(m.Faults()[0], "divide") {
		t.Fatalf("fault message: %v", m.Faults())
	}
}

func TestShiftsAndImmediates(t *testing.T) {
	m := exec(t, func(f *asm.Func) {
		a, d := f.Reg(), f.Reg()
		f.Movi(a, -64)
		f.Shri(d, a, 3) // arithmetic: -8
		f.Addi(d, d, 8) // 0
		f.Shli(a, a, 1) // -128
		f.Sub(d, d, a)  // 128
		f.Modi(d, d, 100)
		f.Muli(d, d, 3)
		f.Halt(d) // (128 % 100) * 3 = 84
	})
	if got := m.Threads[0].ExitVal; got != 84 {
		t.Fatalf("got %d, want 84", got)
	}
}

func TestCallRetConvention(t *testing.T) {
	b := asm.NewBuilder("t")
	callee := b.Func("addmul", 3)
	{
		x, y, z := callee.Arg(0), callee.Arg(1), callee.Arg(2)
		r := callee.Reg()
		callee.Mul(r, x, y)
		callee.Add(r, r, z)
		callee.Ret(r)
	}
	main := b.Func("main", 0)
	{
		a, bb, c, keep := main.Reg(), main.Reg(), main.Reg(), main.Reg()
		main.Movi(a, 6)
		main.Movi(bb, 7)
		main.Movi(c, 8)
		main.Movi(keep, 1000)
		main.Call("addmul", a, bb, c)
		// Callers' registers — including keep — must survive the call.
		main.Add(keep, keep, asm.RetReg)
		main.Halt(keep) // 1000 + 6*7+8 = 1050
	}
	b.SetEntry("main")
	m := vm.NewMachine(b.MustBuild(), nil, nil)
	run(t, m)
	if got := m.Threads[0].ExitVal; got != 1050 {
		t.Fatalf("call result %d, want 1050", got)
	}
}

func TestNestedCallsPreserveArguments(t *testing.T) {
	// g(x) calls h(x+1); g must still see its own x afterwards — this is
	// the regression test for the staging-register ABI.
	b := asm.NewBuilder("t")
	h := b.Func("h", 1)
	{
		x := h.Arg(0)
		h.Addi(x, x, 100)
		h.Ret(x)
	}
	g := b.Func("g", 1)
	{
		x, t1 := g.Arg(0), g.Reg()
		g.Addi(t1, x, 1)
		g.Call("h", t1)
		g.Add(t1, asm.RetReg, x) // x must be intact here
		g.Ret(t1)
	}
	main := b.Func("main", 0)
	{
		a := main.Reg()
		main.Movi(a, 5)
		main.Call("g", a)
		main.Halt(asm.RetReg) // h(6)=106; 106+5 = 111
	}
	b.SetEntry("main")
	m := vm.NewMachine(b.MustBuild(), nil, nil)
	run(t, m)
	if got := m.Threads[0].ExitVal; got != 111 {
		t.Fatalf("got %d, want 111", got)
	}
}

func TestCallStackOverflowFaults(t *testing.T) {
	b := asm.NewBuilder("t")
	rec := b.Func("rec", 0)
	rec.Call("rec")
	rec.RetImm(0)
	main := b.Func("main", 0)
	main.Call("rec")
	main.HaltImm(0)
	b.SetEntry("main")
	m := vm.NewMachine(b.MustBuild(), nil, nil)
	run(t, m)
	if m.FaultCount() != 1 || !strings.Contains(m.Faults()[0], "overflow") {
		t.Fatalf("expected stack overflow fault: %v", m.Faults())
	}
}

func TestSpawnJoinExitValues(t *testing.T) {
	b := asm.NewBuilder("t")
	w := b.Func("child", 1)
	{
		x := w.Arg(0)
		w.Muli(x, x, 10)
		w.Halt(x)
	}
	main := b.Func("main", 0)
	{
		t1, t2, a := main.Reg(), main.Reg(), main.Reg()
		main.Movi(a, 3)
		main.Spawn(t1, "child", a)
		main.Movi(a, 4)
		main.Spawn(t2, "child", a)
		main.Join(t2)
		main.Mov(a, t2) // 40
		main.Join(t1)
		main.Add(a, a, t1) // 40+30
		main.Halt(a)
	}
	b.SetEntry("main")
	m := vm.NewMachine(b.MustBuild(), nil, nil)
	run(t, m)
	if got := m.Threads[0].ExitVal; got != 70 {
		t.Fatalf("got %d, want 70", got)
	}
	if len(m.Threads) != 3 {
		t.Fatalf("threads = %d", len(m.Threads))
	}
}

func TestJoinBadTidFaults(t *testing.T) {
	m := exec(t, func(f *asm.Func) {
		r := f.Reg()
		f.Movi(r, 99)
		f.Join(r)
		f.HaltImm(0)
	})
	if m.FaultCount() != 1 {
		t.Fatal("join on bad tid did not fault")
	}
}

func TestJoinFaultedChildPropagates(t *testing.T) {
	b := asm.NewBuilder("t")
	w := b.Func("child", 1)
	{
		z, d := w.Reg(), w.Reg()
		w.Movi(z, 0)
		w.Div(d, z, z)
		w.Halt(d)
	}
	main := b.Func("main", 0)
	{
		t1, a := main.Reg(), main.Reg()
		main.Movi(a, 0)
		main.Spawn(t1, "child", a)
		main.Join(t1)
		main.HaltImm(0)
	}
	b.SetEntry("main")
	m := vm.NewMachine(b.MustBuild(), nil, nil)
	run(t, m)
	if m.FaultCount() != 2 {
		t.Fatalf("faults = %d, want child + joiner", m.FaultCount())
	}
}

func TestLockMutualExclusionAndFaults(t *testing.T) {
	// Two threads increment under a lock; the VM-level test only checks
	// fault-freedom and the final count under round-robin scheduling.
	b := asm.NewBuilder("t")
	cell := b.Words(0)
	w := b.Func("child", 1)
	{
		lk, base, v, i := w.Const(1), w.Const(cell), w.Reg(), w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, 50, func() {
			w.LockR(lk)
			w.Ld(v, base, 0)
			w.Addi(v, v, 1)
			w.St(base, 0, v)
			w.UnlockR(lk)
		})
		w.HaltImm(0)
	}
	main := b.Func("main", 0)
	{
		t1, t2, a := main.Reg(), main.Reg(), main.Reg()
		main.Movi(a, 0)
		main.Spawn(t1, "child", a)
		main.Spawn(t2, "child", a)
		main.Join(t1)
		main.Join(t2)
		got, base := main.Reg(), main.Const(cell)
		main.Ld(got, base, 0)
		main.Halt(got)
	}
	b.SetEntry("main")
	m := vm.NewMachine(b.MustBuild(), nil, nil)
	run(t, m)
	if got := m.Threads[0].ExitVal; got != 100 {
		t.Fatalf("locked count = %d, want 100", got)
	}
}

func TestUnlockNotHeldFaults(t *testing.T) {
	m := exec(t, func(f *asm.Func) {
		lk := f.Const(7)
		f.UnlockR(lk)
		f.HaltImm(0)
	})
	if m.FaultCount() != 1 || !strings.Contains(m.Faults()[0], "unlock") {
		t.Fatalf("faults: %v", m.Faults())
	}
}

func TestRecursiveLockFaults(t *testing.T) {
	m := exec(t, func(f *asm.Func) {
		lk := f.Const(7)
		f.LockR(lk)
		f.LockR(lk)
		f.HaltImm(0)
	})
	if m.FaultCount() != 1 || !strings.Contains(m.Faults()[0], "recursive") {
		t.Fatalf("faults: %v", m.Faults())
	}
}

func TestCasFadd(t *testing.T) {
	b := asm.NewBuilder("t")
	cell := b.Words(5)
	main := b.Func("main", 0)
	{
		addr, old, niu, ok, sum := main.Const(cell), main.Reg(), main.Reg(), main.Reg(), main.Reg()
		main.Movi(old, 5)
		main.Movi(niu, 9)
		main.Cas(ok, addr, old, niu) // succeeds: cell=9, ok=1
		main.Mov(sum, ok)
		main.Cas(ok, addr, old, niu) // fails: cell!=5, ok=0
		main.Add(sum, sum, ok)
		delta, got := main.Reg(), main.Reg()
		main.Movi(delta, 11)
		main.Fadd(got, addr, delta) // got=9, cell=20
		main.Add(sum, sum, got)
		main.Ld(got, addr, 0)
		main.Add(sum, sum, got) // 1+0+9+20 = 30
		main.Halt(sum)
	}
	b.SetEntry("main")
	m := vm.NewMachine(b.MustBuild(), nil, nil)
	run(t, m)
	if got := m.Threads[0].ExitVal; got != 30 {
		t.Fatalf("got %d, want 30", got)
	}
}

func TestBarrierGenerations(t *testing.T) {
	// Three threads pass the same barrier 5 times; a shared counter must
	// show phase separation: after each barrier, the counter is a multiple
	// of 3 from every thread's perspective.
	b := asm.NewBuilder("t")
	cell := b.Words(0)
	fail := b.Words(0)
	w := b.Func("child", 1)
	{
		bar, n, base, failA := w.Const(9), w.Const(3), w.Const(cell), w.Const(fail)
		one := w.Const(1)
		v, c, i, got := w.Reg(), w.Reg(), w.Reg(), w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, 5, func() {
			w.Fadd(v, base, one)
			w.Barrier(bar, n)
			w.Ld(got, base, 0)
			w.Modi(c, got, 3)
			w.IfNz(c, func() { w.St(failA, 0, one) })
		})
		w.HaltImm(0)
	}
	main := b.Func("main", 0)
	{
		ts := main.Regs(3)
		a := main.Reg()
		main.Movi(a, 0)
		for i := 0; i < 3; i++ {
			main.Spawn(ts[i], "child", a)
		}
		for i := 0; i < 3; i++ {
			main.Join(ts[i])
		}
		got, failA := main.Reg(), main.Const(fail)
		main.Ld(got, failA, 0)
		main.Halt(got)
	}
	b.SetEntry("main")
	m := vm.NewMachine(b.MustBuild(), nil, nil)
	run(t, m)
	if got := m.Threads[0].ExitVal; got != 0 {
		t.Fatal("barrier phase separation violated")
	}
}

// fixedOS returns canned syscall results for testing the OpSys path.
type fixedOS struct {
	blockFirst int
	calls      int
}

func (o *fixedOS) Syscall(m *vm.Machine, th *vm.Thread, num vm.Word, args [6]vm.Word) vm.SysResult {
	o.calls++
	if o.blockFirst > 0 {
		o.blockFirst--
		return vm.SysResult{Block: true}
	}
	return vm.SysResult{
		Ret:    args[0] + args[1],
		Writes: []vm.MemWrite{{Addr: 500, Data: []vm.Word{num, args[0]}}},
	}
}

func TestSyscallResultAndWrites(t *testing.T) {
	b := asm.NewBuilder("t")
	main := b.Func("main", 0)
	{
		a, bb := main.Reg(), main.Reg()
		main.Movi(a, 30)
		main.Movi(bb, 12)
		main.Sys(77, a, bb)
		got, addr := main.Reg(), main.Reg()
		main.Movi(addr, 500)
		main.Ld(got, addr, 0)          // num = 77
		main.Add(got, got, asm.RetReg) // + 42
		main.Ld(addr, addr, 1)         // args[0] = 30
		main.Add(got, got, addr)       // 149
		main.Halt(got)
	}
	b.SetEntry("main")
	os := &fixedOS{blockFirst: 3}
	m := vm.NewMachine(b.MustBuild(), os, nil)
	run(t, m)
	if got := m.Threads[0].ExitVal; got != 149 {
		t.Fatalf("got %d, want 149", got)
	}
	if os.calls != 4 { // 3 blocked attempts + 1 success
		t.Fatalf("syscall attempts = %d, want 4", os.calls)
	}
	// A blocked attempt must not retire.
	if m.Threads[0].SysRetired != 1 {
		t.Fatalf("SysRetired = %d, want 1", m.Threads[0].SysRetired)
	}
}

func TestCheckpointRestoreDeterminism(t *testing.T) {
	b := asm.NewBuilder("t")
	cell := b.Words(0)
	w := b.Func("child", 1)
	{
		base, v, i := w.Const(cell), w.Reg(), w.Reg()
		one := w.Const(1)
		w.Movi(i, 0)
		w.ForLtImm(i, 200, func() {
			w.Fadd(v, base, one)
		})
		w.Halt(v)
	}
	main := b.Func("main", 0)
	{
		t1, t2, a := main.Reg(), main.Reg(), main.Reg()
		main.Movi(a, 0)
		main.Spawn(t1, "child", a)
		main.Spawn(t2, "child", a)
		main.Join(t1)
		main.Join(t2)
		main.HaltImm(0)
	}
	b.SetEntry("main")
	prog := b.MustBuild()

	m := vm.NewMachine(prog, nil, nil)
	// Run part way deterministically.
	for i := 0; i < 300; i++ {
		for _, th := range m.Threads {
			if th.Status == vm.Runnable {
				m.Step(th)
			}
		}
	}
	cp := m.Checkpoint()
	if cp.Hash() != m.StateHash() {
		t.Fatal("checkpoint hash differs from live machine hash")
	}

	// Finish the original and a restored copy with identical schedules.
	r := cp.Restore(prog, nil, nil)
	finish := func(mm *vm.Machine) uint64 {
		for steps := 0; !mm.Done(); steps++ {
			if steps > 1_000_000 {
				t.Fatal("livelock")
			}
			for _, th := range mm.Threads {
				if th.Status.Live() {
					mm.Step(th)
				}
			}
		}
		return mm.StateHash()
	}
	if h1, h2 := finish(m), finish(r); h1 != h2 {
		t.Fatalf("restored machine diverged: %016x vs %016x", h1, h2)
	}
}

func TestCheckpointNormalizesBlockedThreads(t *testing.T) {
	// A thread blocked on a lock checkpoints as Runnable at the same PC and
	// hashes identically to an un-attempted thread at that PC.
	b := asm.NewBuilder("t")
	w := b.Func("child", 1)
	{
		lk := w.Const(3)
		w.LockR(lk)
		w.UnlockR(lk)
		w.HaltImm(0)
	}
	main := b.Func("main", 0)
	{
		lk, t1, a := main.Const(3), main.Reg(), main.Reg()
		main.LockR(lk)
		main.Movi(a, 0)
		main.Spawn(t1, "child", a)
		main.Join(t1)
		main.HaltImm(0)
	}
	b.SetEntry("main")
	prog := b.MustBuild()
	m := vm.NewMachine(prog, nil, nil)
	// Step main until it holds the lock and has spawned; step child until
	// it blocks.
	for i := 0; i < 10; i++ {
		for _, th := range m.Threads {
			if th.Status.Live() && !th.Status.Blocked() {
				m.Step(th)
			}
		}
	}
	child := m.Threads[1]
	for child.Status == vm.Runnable {
		m.Step(child)
	}
	if child.Status != vm.BlockedLock {
		t.Fatalf("child status = %v, want blocked-lock", child.Status)
	}
	hBlocked := m.StateHash()
	cp := m.Checkpoint()
	if cp.Threads[1].Status != vm.Runnable {
		t.Fatal("checkpoint did not normalise blocked thread")
	}
	if cp.Hash() != hBlocked {
		t.Fatal("blocked-ness leaked into the state hash")
	}
}

func TestQuickImmediateOpsMatchGo(t *testing.T) {
	f := func(a int64, imm int64) bool {
		if imm == 0 {
			imm = 1
		}
		b := asm.NewBuilder("q")
		main := b.Func("main", 0)
		ra, rd, acc := main.Reg(), main.Reg(), main.Reg()
		main.Movi(ra, a)
		main.Addi(rd, ra, imm)
		main.Mov(acc, rd)
		main.Xori(rd, ra, imm)
		main.Add(acc, acc, rd)
		main.Andi(rd, ra, imm)
		main.Add(acc, acc, rd)
		main.Ori(rd, ra, imm)
		main.Add(acc, acc, rd)
		main.Modi(rd, ra, imm)
		main.Add(acc, acc, rd)
		main.Halt(acc)
		b.SetEntry("main")
		m := vm.NewMachine(b.MustBuild(), nil, nil)
		for !m.Done() {
			m.Step(m.Threads[0])
		}
		want := (a + imm) + (a ^ imm) + (a & imm) + (a | imm) + (a % imm)
		return m.Threads[0].ExitVal == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeAndInstrStrings(t *testing.T) {
	for op := vm.OpNop; op <= vm.OpHalt; op++ {
		if s := op.String(); strings.HasPrefix(s, "op(") {
			t.Fatalf("opcode %d has no name", op)
		}
	}
	in := vm.Instr{Op: vm.OpLd, A: 1, B: 2, Imm: -3}
	if got := in.String(); got != "ld r1, [r2-3]" {
		t.Fatalf("instr string = %q", got)
	}
}

func TestProgramLookups(t *testing.T) {
	b := asm.NewBuilder("t")
	f1 := b.Func("alpha", 0)
	f1.RetImm(0)
	f2 := b.Func("beta", 0)
	f2.HaltImm(0)
	b.SetEntry("beta")
	prog := b.MustBuild()
	if prog.FuncByName("alpha") != 0 || prog.FuncByName("beta") != 1 || prog.FuncByName("x") != -1 {
		t.Fatal("FuncByName broken")
	}
	if fi := prog.FuncAt(prog.Funcs[1].Entry); fi == nil || fi.Name != "beta" {
		t.Fatal("FuncAt broken")
	}
}
