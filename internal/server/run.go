package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"doubleplay/internal/core"
	"doubleplay/internal/debug"
	"doubleplay/internal/dplog"
	"doubleplay/internal/epoch"
	"doubleplay/internal/profile"
	"doubleplay/internal/replay"
	"doubleplay/internal/trace"
	"doubleplay/internal/workloads"
)

// jobTrace is the per-job streamed trace: every job narrates its timeline
// into trace.json in its artifact directory through a bounded-window
// StreamSink, exactly the file `doubleplay record -trace` would produce.
type jobTrace struct {
	f    *os.File
	sink *trace.StreamSink
}

// openJobTrace creates a job's trace stream, honouring the spec's window
// and downsampling settings.
func (s *Server) openJobTrace(id string, sp Spec) (*jobTrace, error) {
	dir, err := s.store.JobDir(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Create(dir + "/trace.json")
	if err != nil {
		return nil, err
	}
	sink := trace.NewStreamSink(f, sp.TraceWindow)
	if sp.TraceMinSpan > 0 || sp.TraceCounterStride > 1 {
		sink.Downsample(sp.TraceMinSpan, sp.TraceCounterStride)
	}
	return &jobTrace{f: f, sink: sink}, nil
}

// close finishes the trace document and reports stream totals into the
// summary. Artifacts must be complete before the job turns terminal, so
// runJob calls this on every path.
func (t *jobTrace) close(sum *ResultSummary) error {
	if t == nil {
		return nil
	}
	err := t.sink.Close()
	if sum != nil {
		sum.TraceEvents = t.sink.Written()
		sum.TraceDrops = t.sink.Dropped()
	}
	if cerr := t.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// buildWorkload instantiates the spec's benchmark.
func buildWorkload(sp Spec) (*workloads.Built, error) {
	wl := workloads.Get(sp.Workload)
	if wl == nil {
		return nil, fmt.Errorf("unknown workload %q", sp.Workload)
	}
	return wl.Build(workloads.Params{Workers: sp.Workers, Scale: sp.Scale, Seed: sp.Seed}), nil
}

// writeStats stores the job's stats.json artifact.
func (s *Server) writeStats(id string, v any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return err
	}
	return s.store.WriteJobArtifact(id, "stats.json", buf.Bytes())
}

// writeProfile stores a job's guest profile as the profile.pb artifact and
// records its stack count in the summary.
func (s *Server) writeProfile(id string, prof *profile.Profile, sum *ResultSummary) error {
	if prof == nil {
		return nil
	}
	if sum != nil {
		sum.GuestStacks = prof.NumSamples()
	}
	return s.store.WriteJobArtifact(id, "profile.pb", prof.MarshalPprof())
}

// record runs the recording half shared by record and verify jobs,
// stores the recording blob, and fills the summary. When the spec asks for
// a guest profile, the recording's profile is returned for the caller to
// store (verify jobs first compare it against the replay's).
func (s *Server) record(ctx context.Context, id string, sp Spec, sink trace.Recorder, sum *ResultSummary) (*core.Result, *workloads.Built, *profile.Profile, error) {
	bt, err := buildWorkload(sp)
	if err != nil {
		return nil, nil, nil, err
	}
	policy, err := core.ParseVerifyPolicy(sp.VerifyPolicy)
	if err != nil {
		return nil, nil, nil, err
	}
	var gprof *profile.Profile
	if sp.GuestProfile {
		gprof = profile.NewProfile("")
	}
	res, err := core.Record(bt.Prog, bt.World, core.Options{
		Workers:           sp.Workers,
		RecordCPUs:        sp.Workers,
		SpareCPUs:         sp.Spares,
		EpochCycles:       sp.EpochCycles,
		EpochGrowth:       sp.Growth,
		Seed:              sp.Seed,
		VerifyPolicy:      policy,
		DetectRaces:       sp.DetectRaces,
		Adaptive:          sp.Adaptive,
		AdaptiveMinSpares: sp.MinSpares,
		AdaptiveMaxSpares: sp.MaxSpares,
		Trace:             sink,
		Metrics:           s.reg,
		Context:           ctx,
		Profile:           gprof,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// Marshal without whole-section compression: the chunk store splits
	// recordings on section-group boundaries and deduplicates the groups
	// that repeat across same-workload runs (syscall results, sync
	// order), which only line up byte-for-byte in the uncompressed form.
	// Chunks are compressed at rest instead, so the dedup wins stack
	// with, rather than fight, the compression wins.
	digest, err := s.store.PutRecording(dplog.MarshalBytesWith(res.Recording, dplog.EncodeOptions{Compress: false}))
	if err != nil {
		return nil, nil, nil, err
	}
	if err := s.store.SetRecordingRef(id, digest); err != nil {
		return nil, nil, nil, err
	}
	sum.Recording = digest
	sum.Epochs = res.Stats.Epochs
	sum.Cycles = res.Stats.CompletionCycles
	sum.FinalHash = fmt.Sprintf("%016x", res.FinalHash)
	sum.Divergences = res.Stats.Divergences
	sum.ReplayBytes = res.Stats.ReplayBytes
	sum.Races = len(res.Races)
	sum.CertStatus = res.Stats.CertStatus
	sum.VerifySkipped = res.Stats.VerifySkipped
	return res, bt, gprof, nil
}

// loadRecording resolves a replay job's source recording as a seekable
// log reader over the store's lazy handle — chunked artifacts
// reassemble strided reads on demand rather than materializing the
// whole log — and defaults the spec's workload parameters from its
// header so a minimal {"kind":"replay","recording_job":...} body
// replays faithfully. The returned closer releases the handle; callers
// must keep it open for as long as the reader is in use.
func (s *Server) loadRecording(sp *Spec) (*dplog.Reader, io.Closer, error) {
	src, ok := s.getJob(sp.RecordingJob)
	if !ok {
		return nil, nil, fmt.Errorf("recording_job %q is not a known job", sp.RecordingJob)
	}
	srcState, srcScale := s.jobStateScale(src)
	if srcState != StateDone {
		return nil, nil, fmt.Errorf("recording_job %s is %s, not done — submit replays after the recording finishes", sp.RecordingJob, srcState)
	}
	hd, err := s.store.OpenRecordingByJob(sp.RecordingJob)
	if err != nil {
		return nil, nil, err
	}
	rd, err := dplog.OpenReader(hd, hd.Size())
	if err != nil {
		hd.Close()
		return nil, nil, fmt.Errorf("corrupt recording artifact for job %s: %w", sp.RecordingJob, err)
	}
	h := rd.Header()
	if sp.Workload == "" {
		sp.Workload = h.Program
	}
	if h.Workers > 0 {
		sp.Workers = h.Workers
	}
	if h.Seed != 0 {
		sp.Seed = h.Seed
	}
	if srcScale > 0 {
		sp.Scale = srcScale
	}
	return rd, hd, nil
}

// replayJob replays a stored recording in the requested mode, seeking
// epoch sections straight out of the artifact. Parallel and sparse modes
// first rebuild the epoch-start checkpoints from the log
// (replay.CheckpointsReader) — the artifact carries only the logs.
func (s *Server) replayJob(ctx context.Context, id string, sp *Spec, sink trace.Recorder, sum *ResultSummary) error {
	rd, closer, err := s.loadRecording(sp)
	if err != nil {
		return err
	}
	defer closer.Close()
	bt, err := buildWorkload(*sp)
	if err != nil {
		return err
	}
	var gprof *profile.Profile
	if sp.GuestProfile {
		gprof = profile.NewProfile("")
	}
	var rep *replay.Result
	switch sp.Mode {
	case ModeSequential:
		rep, err = replay.SequentialReaderProfiled(ctx, bt.Prog, rd, nil, sink, gprof)
	case ModeParallel, ModeSparse:
		var bs []*epoch.Boundary
		bs, err = replay.CheckpointsReader(ctx, bt.Prog, rd, nil)
		if err != nil {
			break
		}
		if sp.Mode == ModeSparse {
			rep, err = replay.ParallelSparseReaderProfiled(ctx, bt.Prog, rd, replay.Thin(bs, sp.Stride), sp.Workers, nil, sink, gprof)
		} else {
			// Full epoch-parallel replay touches every epoch at once
			// anyway, so decode the whole log for it.
			var rec *dplog.Recording
			if rec, err = rd.Recording(); err != nil {
				break
			}
			rep, err = replay.ParallelProfiled(ctx, bt.Prog, rec, bs, sp.Workers, nil, sink, gprof)
		}
	default:
		return fmt.Errorf("unknown replay mode %q", sp.Mode)
	}
	if err != nil {
		return err
	}
	if err := s.writeProfile(id, gprof, sum); err != nil {
		return err
	}
	sum.Epochs = rep.Epochs
	sum.Cycles = rep.Cycles
	sum.FinalHash = fmt.Sprintf("%016x", rep.FinalHash)
	return s.writeStats(id, rep)
}

// debugSession opens a time-travel session over one referenced
// recording, defaulting the given spec copy's workload parameters from
// that recording's header (each recording carries its own seed). The
// returned closer releases the underlying store handle and must stay
// open for the session's lifetime.
func (s *Server) debugSession(ctx context.Context, sp *Spec) (*debug.Session, io.Closer, error) {
	rd, closer, err := s.loadRecording(sp)
	if err != nil {
		return nil, nil, err
	}
	bt, err := buildWorkload(*sp)
	if err != nil {
		closer.Close()
		return nil, nil, err
	}
	sess, err := debug.New(bt.Prog, replay.FromReader(rd), nil)
	if err != nil {
		closer.Close()
		return nil, nil, fmt.Errorf("recording of job %s: %w", sp.RecordingJob, err)
	}
	sess.SetContext(ctx)
	return sess, closer, nil
}

// debugDiffJob runs divergence forensics over two stored recordings:
// bisect for the first divergent epoch boundary (or diff the one the
// spec names) and store the word-level state diff as diff.json.
func (s *Server) debugDiffJob(ctx context.Context, id string, sp *Spec, sum *ResultSummary) error {
	sa, ca, err := s.debugSession(ctx, sp)
	if err != nil {
		return err
	}
	defer ca.Close()
	spB := *sp
	spB.RecordingJob = sp.RecordingJobB
	sb, cb, err := s.debugSession(ctx, &spB)
	if err != nil {
		return err
	}
	defer cb.Close()
	var res *debug.BisectResult
	if sp.Epoch > 0 {
		d, derr := debug.DiffAt(sa, sb, sp.Epoch)
		if derr != nil {
			return derr
		}
		res = &debug.BisectResult{
			Diverged: !d.Equal, Epoch: d.Epoch,
			EpochsA: sa.NumEpochs(), EpochsB: sb.NumEpochs(),
			HashA: d.HashA, HashB: d.HashB, Diff: d,
		}
	} else if res, err = debug.Bisect(sa, sb); err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	if err := s.store.WriteJobArtifact(id, "diff.json", buf.Bytes()); err != nil {
		return err
	}
	sum.Epochs = sa.NumEpochs()
	if fh, herr := sa.BoundaryHash(sa.NumEpochs()); herr == nil {
		sum.FinalHash = fmt.Sprintf("%016x", fh)
	}
	if res.Diverged {
		e := res.Epoch
		sum.FirstDivergence = &e
		sum.Divergences = 1
	}
	return s.writeStats(id, res)
}

// verifyJob is the in-memory round trip: record, replay sequentially
// (and in parallel when mode asks), and run the guest self-check.
func (s *Server) verifyJob(ctx context.Context, id string, sp Spec, sink trace.Recorder, sum *ResultSummary) error {
	res, bt, gprof, err := s.record(ctx, id, sp, sink, sum)
	if err != nil {
		return err
	}
	defer res.ReleaseCheckpoints()
	var repProf *profile.Profile
	if gprof != nil {
		repProf = profile.NewProfile("")
	}
	if _, err := replay.SequentialProfiled(ctx, bt.Prog, res.Recording, nil, sink, repProf); err != nil {
		return fmt.Errorf("sequential replay: %w", err)
	}
	if gprof != nil && !bytes.Equal(gprof.MarshalPprof(), repProf.MarshalPprof()) {
		return fmt.Errorf("guest profile: replay profile differs from record profile")
	}
	if sp.Mode == ModeParallel {
		if _, err := replay.ParallelCtx(ctx, bt.Prog, res.Recording, res.Boundaries, sp.Workers, nil, sink); err != nil {
			return fmt.Errorf("parallel replay: %w", err)
		}
	}
	last := res.Boundaries[len(res.Boundaries)-1]
	if err := bt.CheckOK(last.CP.MemSnap.Peek); err != nil {
		return fmt.Errorf("guest self-check: %w", err)
	}
	if err := s.writeProfile(id, gprof, sum); err != nil {
		return err
	}
	return s.writeStats(id, res.Stats)
}

// runJob executes one job end to end on a private copy of its spec: open
// the trace stream, dispatch on kind, flush artifacts. It returns the
// possibly-defaulted spec for republication and the job's terminal error
// (nil for done). Artifact flushing happens on every path, so even failed
// and canceled jobs leave a parseable trace behind.
func (s *Server) runJob(ctx context.Context, id string, sp Spec, sum *ResultSummary) (Spec, error) {
	jt, err := s.openJobTrace(id, sp)
	if err != nil {
		return sp, err
	}
	switch sp.Kind {
	case KindRecord:
		res, _, gprof, rerr := s.record(ctx, id, sp, jt.sink, sum)
		if rerr == nil {
			res.ReleaseCheckpoints()
			rerr = s.writeProfile(id, gprof, sum)
		}
		if rerr == nil {
			rerr = s.writeStats(id, res.Stats)
		}
		err = rerr
	case KindReplay:
		err = s.replayJob(ctx, id, &sp, jt.sink, sum)
	case KindVerify:
		err = s.verifyJob(ctx, id, sp, jt.sink, sum)
	case KindDebugDiff:
		err = s.debugDiffJob(ctx, id, &sp, sum)
	default:
		err = fmt.Errorf("unknown job kind %q", sp.Kind)
	}
	if cerr := jt.close(sum); err == nil && cerr != nil {
		err = fmt.Errorf("flushing trace: %w", cerr)
	}
	return sp, err
}
