package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"time"

	"doubleplay/internal/store"
	"doubleplay/internal/trace"
)

// ErrDraining is returned by Submit once Shutdown has begun; the HTTP
// layer translates it into 503 Service Unavailable.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// Config tunes the daemon.
type Config struct {
	// DataDir roots the artifact store (blobs + per-job directories).
	DataDir string

	// Workers is the worker-pool size — how many jobs run concurrently.
	Workers int

	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 429.
	QueueDepth int

	// JobTimeout bounds each job's host execution time unless its spec
	// sets timeout_ms. Zero means no default timeout.
	JobTimeout time.Duration

	// DrainTimeout is how long Shutdown waits for in-flight jobs to finish
	// before canceling them.
	DrainTimeout time.Duration

	// Registry receives queue, pool, and per-run metrics; nil allocates a
	// private one.
	Registry *trace.Registry

	// EnablePprof mounts net/http/pprof under /debug/pprof on the API
	// handler (doubleplay serve -pprof). Off by default: the profiling
	// endpoints expose host internals and cost CPU when scraped, so they
	// are strictly opt-in.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = trace.NewRegistry()
	}
	return c
}

// Server is the record/replay job daemon: a bounded queue feeding a fixed
// worker pool, an artifact store, and the HTTP API over both.
type Server struct {
	cfg   Config
	store *store.Store
	queue *Queue
	reg   *trace.Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // submission order, for GET /jobs
	seq      int
	busy     int
	draining bool

	wg sync.WaitGroup // worker goroutines
}

// New builds a Server; call Start to launch its worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	st, err := store.Open(cfg.DataDir, cfg.Registry)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: st,
		queue: NewQueue(cfg.QueueDepth),
		reg:   cfg.Registry,
		jobs:  make(map[string]*Job),
	}
	s.publishQueueGauges()
	s.reg.Set("serve.workers_busy", 0)
	s.reg.Set("serve.workers_total", float64(cfg.Workers))
	return s, nil
}

// Store exposes the artifact store (tests and the CLI peek at it).
func (s *Server) Store() *store.Store { return s.store }

// publishQueueGauges republishes the total and per-lane queue depths.
func (s *Server) publishQueueGauges() {
	s.reg.Set("serve.queue_depth", float64(s.queue.Len()))
	for _, lane := range []string{LaneInteractive, LaneBatch} {
		s.reg.Set("queue.lane_depth", float64(s.queue.LaneLen(lane)), trace.Label("lane", lane))
	}
}

// Registry exposes the metrics registry the daemon reports into.
func (s *Server) Registry() *trace.Registry { return s.reg }

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker()
		}()
	}
}

// jobID derives a short stable id from the spec and submission sequence.
func jobID(sp Spec, seq int) string {
	b, _ := json.Marshal(sp)
	sum := sha256.Sum256(append(b, byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24)))
	return hex.EncodeToString(sum[:8])
}

// Submit validates, registers, and enqueues a job.
func (s *Server) Submit(sp Spec) (Info, error) {
	sp.Normalize()
	if err := sp.Validate(func(id string) bool {
		_, ok := s.getJob(id)
		return ok
	}); err != nil {
		return Info{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Info{}, ErrDraining
	}
	s.seq++
	j := &Job{
		ID:      jobID(sp, s.seq),
		Seq:     s.seq,
		Spec:    sp,
		State:   StateQueued,
		Created: time.Now(),
	}
	if err := s.queue.Push(j); err != nil {
		s.reg.Add("serve.jobs_rejected", 1)
		return Info{}, err
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.reg.Add("serve.jobs_submitted", 1, trace.Label("kind", string(sp.Kind)))
	s.publishQueueGauges()
	s.stateGaugesLocked()
	return j.info(), nil
}

// getJob looks a job up by id.
func (s *Server) getJob(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// jobStateScale snapshots the fields loadRecording needs from a source
// job without holding the lock across the whole replay setup.
func (s *Server) jobStateScale(j *Job) (State, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.State, j.Spec.Scale
}

// jobInfo snapshots a job's API view.
func (s *Server) jobInfo(j *Job) Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.info()
}

// jobState reads a job's current state.
func (s *Server) jobState(j *Job) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.State
}

// stateGaugesLocked republishes the jobs-by-state gauges; the caller
// holds s.mu.
func (s *Server) stateGaugesLocked() {
	counts := map[State]int{}
	for _, j := range s.jobs {
		counts[j.State]++
	}
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		s.reg.Set("serve.jobs", float64(counts[st]), trace.Label("state", string(st)))
	}
}

// worker is one pool goroutine: pop, run, publish, repeat until the
// queue closes.
func (s *Server) worker() {
	for {
		j, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.publishQueueGauges()

		s.mu.Lock()
		if j.State != StateQueued { // canceled while queued
			s.mu.Unlock()
			continue
		}
		j.State = StateRunning
		j.Started = time.Now()
		sp := j.Spec
		timeout := time.Duration(sp.TimeoutMS) * time.Millisecond
		if timeout <= 0 {
			timeout = s.cfg.JobTimeout
		}
		ctx, cancel := context.WithCancel(context.Background())
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(context.Background(), timeout)
		}
		j.cancel = cancel
		s.busy++
		s.reg.Set("serve.workers_busy", float64(s.busy))
		s.stateGaugesLocked()
		s.mu.Unlock()

		sum := &ResultSummary{}
		spOut, err := s.runJob(ctx, j.ID, sp, sum)
		cancel()
		s.finish(j, spOut, sum, err, ctx)
	}
}

// finish moves a job to its terminal state, publishes the (possibly
// defaulted) spec and result, writes the job.json manifest, and updates
// the pool metrics.
func (s *Server) finish(j *Job, sp Spec, sum *ResultSummary, err error, ctx context.Context) {
	s.mu.Lock()
	j.Spec = sp
	j.Finished = time.Now()
	j.Result = sum
	switch {
	case err == nil:
		j.State = StateDone
	case j.cancelRequested:
		j.State = StateCanceled
		j.Error = shortErr(err)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		j.State = StateFailed
		j.Error = fmt.Sprintf("timed out: %s", shortErr(err))
	default:
		j.State = StateFailed
		j.Error = shortErr(err)
	}
	s.busy--
	s.reg.Set("serve.workers_busy", float64(s.busy))
	s.stateGaugesLocked()
	kind := trace.Label("kind", string(j.Spec.Kind))
	s.reg.Add("serve.jobs_completed", 1, trace.Label("outcome", string(j.State)))
	s.reg.Observe("serve.job_queue_ms", j.Started.Sub(j.Created).Milliseconds(), kind)
	s.reg.Observe("serve.job_run_ms", j.Finished.Sub(j.Started).Milliseconds(), kind)
	info := j.info()
	s.mu.Unlock()

	if b, merr := json.MarshalIndent(info, "", "  "); merr == nil {
		_ = s.store.WriteJobArtifact(j.ID, "job.json", b)
	}
}

// Cancel cancels a job: a queued job is removed from the queue and turns
// canceled immediately; a running job gets its context canceled and turns
// canceled when the worker observes it (at the next epoch boundary).
// Canceling a terminal job is a no-op. The bool reports whether the job
// exists.
func (s *Server) Cancel(id string) (Info, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Info{}, false
	}
	switch j.State {
	case StateQueued:
		if s.queue.Remove(id) {
			j.State = StateCanceled
			j.Finished = time.Now()
			j.Error = "canceled before start"
			s.publishQueueGauges()
			s.reg.Add("serve.jobs_completed", 1, trace.Label("outcome", string(StateCanceled)))
			s.stateGaugesLocked()
			info := j.info()
			s.mu.Unlock()
			if b, err := json.MarshalIndent(info, "", "  "); err == nil {
				_ = s.store.WriteJobArtifact(j.ID, "job.json", b)
			}
			return info, true
		}
		// A worker grabbed it between our state read and the Remove; fall
		// through to the running path.
		fallthrough
	case StateRunning:
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	info := j.info()
	s.mu.Unlock()
	return info, true
}

// Shutdown drains the daemon: stop accepting submissions, cancel
// everything still queued, let running jobs finish within
// Config.DrainTimeout (or ctx, whichever ends first), then cancel
// stragglers and wait for the pool to exit. Artifacts of every started
// job are flushed before Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.queue.Close()
	dropped := s.queue.Drain()
	s.mu.Lock()
	for _, j := range dropped {
		if j.State == StateQueued {
			j.State = StateCanceled
			j.Finished = time.Now()
			j.Error = "server draining"
			s.reg.Add("serve.jobs_completed", 1, trace.Label("outcome", string(StateCanceled)))
		}
	}
	s.publishQueueGauges()
	s.stateGaugesLocked()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var timer <-chan time.Time
	if s.cfg.DrainTimeout > 0 {
		t := time.NewTimer(s.cfg.DrainTimeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-done:
		return nil
	case <-timer:
	case <-ctx.Done():
	}

	// Grace expired: cancel in-flight jobs. Cancellation is cooperative
	// at epoch boundaries, so the workers exit promptly.
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.State == StateRunning && j.cancel != nil {
			j.cancelRequested = true
			j.cancel()
		}
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// ---- HTTP API ----

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs                submit (202; 400 invalid, 429 full, 503 draining)
//	GET    /jobs                list all jobs, submission order
//	GET    /jobs/{id}           one job
//	DELETE /jobs/{id}           cancel (202 while in flight, 200 if terminal)
//	GET    /jobs/{id}/trace     streamed Chrome trace (409 until terminal)
//	GET    /jobs/{id}/stats     stats artifact
//	GET    /jobs/{id}/recording stored recording (dplog binary)
//	GET    /jobs/{id}/profile   guest pprof profile (jobs submitted with
//	                            guest_profile; 409 until terminal)
//	GET    /jobs/{id}/diff      state-diff artifact of a debug_diff job
//	                            (409 until terminal, 404 for other kinds)
//	POST   /jobs/{id}/pin       pin the job's recording against GC
//	DELETE /jobs/{id}/pin       remove the pin
//	GET    /recordings/{id}/epochs/{range}
//	                            standalone dplog holding epochs n or n..m
//	                            (400 bad range, 404 no job/recording,
//	                            416 epochs outside the log)
//	GET    /admin/store         storage-tier stats (chunks, dedup ratio)
//	POST   /admin/gc            run retention GC; body {"max_age_ms":..,
//	                            "max_bytes":.., "dry_run":..}, returns the
//	                            GC report
//	GET    /metrics             Prometheus text format
//	GET    /healthz             liveness + drain state
//
// With Config.EnablePprof, net/http/pprof is additionally mounted under
// /debug/pprof for host-side profiling of the daemon itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /jobs/{id}/recording", s.handleRecording)
	mux.HandleFunc("GET /jobs/{id}/profile", s.handleProfile)
	mux.HandleFunc("GET /jobs/{id}/diff", s.handleDiff)
	mux.HandleFunc("POST /jobs/{id}/pin", s.handlePin)
	mux.HandleFunc("DELETE /jobs/{id}/pin", s.handleUnpin)
	mux.HandleFunc("GET /recordings/{id}/epochs/{range}", s.handleEpochRange)
	mux.HandleFunc("GET /admin/store", s.handleStoreStats)
	mux.HandleFunc("POST /admin/gc", s.handleGC)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", httppprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	info, err := s.Submit(sp)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, info)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueClosed):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]Info, 0, len(s.order))
	for _, j := range s.order {
		infos = append(infos, j.info())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": infos})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.jobInfo(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	code := http.StatusAccepted
	if info.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, info)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if st := s.jobState(j); !st.Terminal() {
		writeErr(w, http.StatusConflict, "job %s is %s; the trace streams until the job finishes", j.ID, st)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, s.store.JobArtifact(j.ID, "trace.json"))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, s.store.JobArtifact(j.ID, "stats.json"))
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if st := s.jobState(j); !st.Terminal() {
		writeErr(w, http.StatusConflict, "job %s is %s; the profile is written when the job finishes", j.ID, st)
		return
	}
	if !j.Spec.GuestProfile {
		writeErr(w, http.StatusNotFound, "job %s was not submitted with guest_profile", j.ID)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, s.store.JobArtifact(j.ID, "profile.pb"))
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if j.Spec.Kind != KindDebugDiff {
		writeErr(w, http.StatusNotFound, "job %s is a %s job, not debug_diff", j.ID, j.Spec.Kind)
		return
	}
	if st := s.jobState(j); !st.Terminal() {
		writeErr(w, http.StatusConflict, "job %s is %s; the diff is written when the job finishes", j.ID, st)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, s.store.JobArtifact(j.ID, "diff.json"))
}

func (s *Server) handleRecording(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	// Stream through the store's lazy handle: chunked recordings
	// reassemble on the fly instead of materializing in the heap.
	h, err := s.store.OpenRecordingByJob(j.ID)
	if err != nil {
		writeErr(w, http.StatusNotFound, "job %s has no stored recording (state %s)", j.ID, s.jobState(j))
		return
	}
	defer h.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(h.Size()))
	w.Header().Set("X-Recording-Digest", s.store.RecordingRef(j.ID))
	_, _ = io.Copy(w, io.NewSectionReader(h, 0, h.Size()))
}

// handlePin marks a job's recording as protected from retention GC.
// Pinning is durable (a marker in the job's artifact directory) and
// idempotent.
func (s *Server) handlePin(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if err := s.store.Pin(j.ID); err != nil {
		writeErr(w, http.StatusInternalServerError, "pinning job %s: %v", j.ID, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "pinned": true})
}

func (s *Server) handleUnpin(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if err := s.store.Unpin(j.ID); err != nil {
		writeErr(w, http.StatusInternalServerError, "unpinning job %s: %v", j.ID, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "pinned": false})
}

func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.store.Stats()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "store stats: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// gcRequest is the POST /admin/gc body; zero fields mean "no limit"
// (only orphans are swept), dry_run previews without deleting.
type gcRequest struct {
	MaxAgeMS int64 `json:"max_age_ms"`
	MaxBytes int64 `json:"max_bytes"`
	DryRun   bool  `json:"dry_run"`
}

func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	var req gcRequest
	if r.Body != nil && r.ContentLength != 0 {
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid gc request: %v", err)
			return
		}
	}
	if req.MaxAgeMS < 0 || req.MaxBytes < 0 {
		writeErr(w, http.StatusBadRequest, "max_age_ms and max_bytes must be >= 0")
		return
	}
	rep, err := s.store.GC(store.Policy{
		MaxAge:   time.Duration(req.MaxAgeMS) * time.Millisecond,
		MaxBytes: req.MaxBytes,
		DryRun:   req.DryRun,
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "gc: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	n := len(s.jobs)
	busy := s.busy
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"jobs":        n,
		"workers":     s.cfg.Workers,
		"busy":        busy,
		"queue_depth": s.queue.Len(),
	})
}
