package server_test

// Queue tests. The artifact-store tests live with the store itself in
// internal/store; these cover the daemon's two-lane priority queue.

import (
	"testing"
	"time"

	"doubleplay/internal/server"
)

// job builds a queued job in the given priority lane (empty means the
// interactive default lane).
func job(id, priority string) *server.Job {
	return &server.Job{ID: id, Spec: server.Spec{Priority: priority}}
}

func TestQueueFIFOWithinLaneAndBounds(t *testing.T) {
	q := server.NewQueue(2)
	if err := q.Push(job("a", server.LaneBatch)); err != nil {
		t.Fatalf("Push a: %v", err)
	}
	if err := q.Push(job("b", server.LaneBatch)); err != nil {
		t.Fatalf("Push b: %v", err)
	}
	// The bound covers both lanes together.
	if err := q.Push(job("c", server.LaneInteractive)); err != server.ErrQueueFull {
		t.Fatalf("Push over capacity: %v, want ErrQueueFull", err)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if j, ok := q.Pop(); !ok || j.ID != "a" {
		t.Fatalf("Pop = %v %v, want a", j, ok)
	}
	if j, ok := q.Pop(); !ok || j.ID != "b" {
		t.Fatalf("Pop = %v %v, want b", j, ok)
	}
}

func TestQueueInteractiveOvertakesBatch(t *testing.T) {
	q := server.NewQueue(8)
	q.Push(job("batch1", server.LaneBatch))
	q.Push(job("batch2", server.LaneBatch))
	q.Push(job("int1", server.LaneInteractive))
	q.Push(job("int2", server.LaneInteractive))
	if q.LaneLen(server.LaneInteractive) != 2 || q.LaneLen(server.LaneBatch) != 2 {
		t.Fatalf("lane depths %d/%d", q.LaneLen(server.LaneInteractive), q.LaneLen(server.LaneBatch))
	}
	// Interactive jobs pop first despite arriving later; each lane stays
	// FIFO.
	want := []string{"int1", "int2", "batch1", "batch2"}
	for _, id := range want {
		j, ok := q.Pop()
		if !ok || j.ID != id {
			t.Fatalf("Pop = %v %v, want %s", j, ok, id)
		}
	}
}

func TestQueueStarvationBound(t *testing.T) {
	q := server.NewQueue(64)
	q.Push(job("batch", server.LaneBatch))
	for i := 0; i < 10; i++ {
		q.Push(job("int", server.LaneInteractive))
	}
	// With batch work waiting, at most starvationBound (4) interactive
	// jobs run before the batch job gets a turn.
	batchAt := -1
	for i := 0; i < 11; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatalf("queue drained early at %d", i)
		}
		if j.ID == "batch" {
			batchAt = i
			break
		}
	}
	if batchAt < 0 || batchAt > 4 {
		t.Fatalf("batch job popped at position %d, want within the starvation bound of 4", batchAt)
	}
}

func TestQueueRemoveAcrossLanesAndClose(t *testing.T) {
	q := server.NewQueue(8)
	q.Push(job("a", server.LaneInteractive))
	q.Push(job("b", server.LaneBatch))
	if !q.Remove("a") || !q.Remove("b") {
		t.Fatalf("Remove across lanes failed")
	}
	if q.Remove("a") {
		t.Fatalf("Remove(a) twice = true")
	}

	// A Pop blocked on an empty queue wakes when the queue closes.
	q2 := server.NewQueue(4)
	done := make(chan bool, 1)
	go func() {
		_, ok := q2.Pop()
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	q2.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatalf("Pop on closed empty queue returned ok")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Pop did not wake on Close")
	}
	if err := q2.Push(job("x", "")); err != server.ErrQueueClosed {
		t.Fatalf("Push after Close: %v, want ErrQueueClosed", err)
	}

	// Drain hands back what never ran, from both lanes.
	q3 := server.NewQueue(8)
	q3.Push(job("i", server.LaneInteractive))
	q3.Push(job("b", server.LaneBatch))
	q3.Close()
	left := q3.Drain()
	if len(left) != 2 {
		t.Fatalf("Drain = %v", left)
	}
	if q3.Len() != 0 {
		t.Fatalf("Len after Drain = %d", q3.Len())
	}
}
