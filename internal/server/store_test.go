package server_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"doubleplay/internal/server"
)

func TestStoreBlobRoundTrip(t *testing.T) {
	st, err := server.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	data := []byte("the quick brown fox")
	d1, err := st.PutBlob(data)
	if err != nil {
		t.Fatalf("PutBlob: %v", err)
	}
	if d1 != server.Digest(data) {
		t.Fatalf("PutBlob digest %s != Digest %s", d1, server.Digest(data))
	}
	// Re-putting identical content dedups onto the same blob.
	d2, err := st.PutBlob(append([]byte(nil), data...))
	if err != nil || d2 != d1 {
		t.Fatalf("dedup PutBlob: %s, %v", d2, err)
	}
	got, err := st.ReadBlob(d1)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadBlob: %q, %v", got, err)
	}
	entries, err := os.ReadDir(filepath.Join(st.Root(), "blobs"))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("blobs dir has %d entries, want 1 (no temp litter, deduped)", len(entries))
	}
	// Digests are validated before touching the filesystem.
	if _, err := st.ReadBlob("../../etc/passwd"); err == nil {
		t.Fatalf("ReadBlob accepted a path-traversal digest")
	}
	if _, err := st.ReadBlob("sha256-zz"); err == nil {
		t.Fatalf("ReadBlob accepted a malformed digest")
	}
}

func TestStoreRecordingRef(t *testing.T) {
	st, err := server.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if ref := st.RecordingRef("nope"); ref != "" {
		t.Fatalf("RecordingRef of unknown job = %q", ref)
	}
	data := []byte("recording bytes")
	d, err := st.PutBlob(data)
	if err != nil {
		t.Fatalf("PutBlob: %v", err)
	}
	if err := st.SetRecordingRef("job1", d); err != nil {
		t.Fatalf("SetRecordingRef: %v", err)
	}
	if got := st.RecordingRef("job1"); got != d {
		t.Fatalf("RecordingRef = %q, want %q", got, d)
	}
	back, err := st.ReadRecording("job1")
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("ReadRecording: %q, %v", back, err)
	}
}

func TestQueueFIFOAndBounds(t *testing.T) {
	q := server.NewQueue(2)
	a, b := &server.Job{ID: "a"}, &server.Job{ID: "b"}
	if err := q.Push(a); err != nil {
		t.Fatalf("Push a: %v", err)
	}
	if err := q.Push(b); err != nil {
		t.Fatalf("Push b: %v", err)
	}
	if err := q.Push(&server.Job{ID: "c"}); err != server.ErrQueueFull {
		t.Fatalf("Push over capacity: %v, want ErrQueueFull", err)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if j, ok := q.Pop(); !ok || j.ID != "a" {
		t.Fatalf("Pop = %v %v, want a", j, ok)
	}
	if j, ok := q.Pop(); !ok || j.ID != "b" {
		t.Fatalf("Pop = %v %v, want b", j, ok)
	}
}

func TestQueueRemoveAndClose(t *testing.T) {
	q := server.NewQueue(4)
	q.Push(&server.Job{ID: "a"})
	q.Push(&server.Job{ID: "b"})
	if !q.Remove("a") {
		t.Fatalf("Remove(a) = false")
	}
	if q.Remove("a") {
		t.Fatalf("Remove(a) twice = true")
	}

	// A Pop blocked on an empty queue wakes when the queue closes.
	q2 := server.NewQueue(4)
	done := make(chan bool, 1)
	go func() {
		_, ok := q2.Pop()
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	q2.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatalf("Pop on closed empty queue returned ok")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Pop did not wake on Close")
	}
	if err := q2.Push(&server.Job{ID: "x"}); err != server.ErrQueueClosed {
		t.Fatalf("Push after Close: %v, want ErrQueueClosed", err)
	}

	// Drain hands back what never ran.
	q.Close()
	left := q.Drain()
	if len(left) != 1 || left[0].ID != "b" {
		t.Fatalf("Drain = %v", left)
	}
}
