package server

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by Push when the queue is at capacity; the
// HTTP layer translates it into 429 Too Many Requests.
var ErrQueueFull = errors.New("server: job queue full")

// ErrQueueClosed is returned by Push once the daemon is draining.
var ErrQueueClosed = errors.New("server: job queue closed")

// Priority lane names. Interactive jobs (replay-by-id, debug sessions —
// someone is waiting on the result) overtake batch jobs (recording
// campaigns) at the queue head; within a lane order stays FIFO.
const (
	LaneInteractive = "interactive"
	LaneBatch       = "batch"
)

// laneIndex maps a normalized Spec.Priority to its lane slot.
func laneIndex(priority string) int {
	if priority == LaneBatch {
		return 1
	}
	return 0
}

// starvationBound caps how many consecutive interactive jobs may
// overtake a waiting batch job. After this many interactive pops in a
// row with batch work queued, the next Pop takes from the batch lane,
// so batch progress is delayed by at most starvationBound interactive
// jobs per worker slot.
const starvationBound = 4

// Queue is a bounded two-lane priority queue of jobs feeding the worker
// pool. Push rejects instead of blocking — backpressure is the point —
// while Pop blocks until a job arrives or the queue closes. Pop prefers
// the interactive lane but is starvation-bounded (see starvationBound);
// each lane is FIFO. Closing wakes every waiting worker; jobs still
// queued at close time are returned by Drain so the server can mark
// them canceled.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	lanes  [2][]*Job // [interactive, batch]
	max    int       // bound on total queued jobs across lanes
	closed bool

	// interactiveStreak counts consecutive interactive pops made while
	// batch work was waiting; it resets whenever a batch job is popped
	// or the batch lane is empty.
	interactiveStreak int
}

// NewQueue returns an empty queue holding at most max jobs in total;
// max <= 0 selects an effectively unbounded queue.
func NewQueue(max int) *Queue {
	if max <= 0 {
		max = 1 << 30
	}
	q := &Queue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends a job to its priority lane, failing fast when full or
// closed.
func (q *Queue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.lanes[0])+len(q.lanes[1]) >= q.max {
		return ErrQueueFull
	}
	i := laneIndex(j.Spec.Priority)
	q.lanes[i] = append(q.lanes[i], j)
	q.cond.Signal()
	return nil
}

// Pop removes the next job, blocking until one is available. ok is
// false once the queue is closed and empty.
func (q *Queue) Pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.lanes[0]) == 0 && len(q.lanes[1]) == 0 && !q.closed {
		q.cond.Wait()
	}
	switch {
	case len(q.lanes[0]) == 0 && len(q.lanes[1]) == 0:
		return nil, false
	case len(q.lanes[0]) == 0:
		j = q.popLane(1)
	case len(q.lanes[1]) == 0:
		j = q.popLane(0)
		q.interactiveStreak = 0 // no batch work was waiting
	case q.interactiveStreak >= starvationBound:
		j = q.popLane(1)
	default:
		j = q.popLane(0)
		q.interactiveStreak++
	}
	return j, true
}

// popLane removes the head of lane i; the caller holds q.mu and has
// checked the lane is non-empty.
func (q *Queue) popLane(i int) *Job {
	j := q.lanes[i][0]
	q.lanes[i] = q.lanes[i][1:]
	if i == 1 {
		q.interactiveStreak = 0
	}
	return j
}

// Remove deletes a queued job by id from whichever lane holds it
// (cancellation before a worker takes it), reporting whether it was
// present.
func (q *Queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for l := range q.lanes {
		for i, j := range q.lanes[l] {
			if j.ID == id {
				q.lanes[l] = append(q.lanes[l][:i], q.lanes[l][i+1:]...)
				return true
			}
		}
	}
	return false
}

// Len returns the current queue depth across both lanes.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.lanes[0]) + len(q.lanes[1])
}

// LaneLen returns one lane's depth; lane is LaneInteractive or
// LaneBatch.
func (q *Queue) LaneLen(lane string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.lanes[laneIndex(lane)])
}

// Close stops the queue: subsequent Push fails, and blocked Pops return
// once the remaining items are consumed. Close is idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Drain removes and returns every queued job from both lanes — used at
// shutdown to mark never-started jobs canceled. Callers should Close
// first so no worker races the drain.
func (q *Queue) Drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := append(q.lanes[0], q.lanes[1]...)
	q.lanes[0], q.lanes[1] = nil, nil
	return out
}
