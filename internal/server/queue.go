package server

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by Push when the queue is at capacity; the
// HTTP layer translates it into 429 Too Many Requests.
var ErrQueueFull = errors.New("server: job queue full")

// ErrQueueClosed is returned by Push once the daemon is draining.
var ErrQueueClosed = errors.New("server: job queue closed")

// Queue is a bounded FIFO of jobs feeding the worker pool. Push rejects
// instead of blocking — backpressure is the point — while Pop blocks
// until a job arrives or the queue closes. Closing wakes every waiting
// worker; jobs still queued at close time are returned by Drain so the
// server can mark them canceled.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job
	max    int
	closed bool
}

// NewQueue returns an empty queue holding at most max jobs; max <= 0
// selects an effectively unbounded queue.
func NewQueue(max int) *Queue {
	if max <= 0 {
		max = 1 << 30
	}
	q := &Queue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends a job, failing fast when full or closed.
func (q *Queue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.items) >= q.max {
		return ErrQueueFull
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// Pop removes the oldest job, blocking until one is available. ok is
// false once the queue is closed and empty.
func (q *Queue) Pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j = q.items[0]
	q.items = q.items[1:]
	return j, true
}

// Remove deletes a queued job by id (cancellation before a worker takes
// it), reporting whether it was present.
func (q *Queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// Len returns the current queue depth.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Close stops the queue: subsequent Push fails, and blocked Pops return
// once the remaining items are consumed. Close is idempotent.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Drain removes and returns every queued job — used at shutdown to mark
// never-started jobs canceled. Callers should Close first so no worker
// races the drain.
func (q *Queue) Drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.items
	q.items = nil
	return out
}
