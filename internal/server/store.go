package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is the daemon's artifact layout on disk:
//
//	<root>/blobs/sha256-<hex>     content-addressed immutable blobs
//	<root>/jobs/<id>/trace.json   per-job streamed Chrome trace
//	<root>/jobs/<id>/stats.json   per-job final stats
//	<root>/jobs/<id>/job.json     job manifest (spec + outcome)
//	<root>/jobs/<id>/recording.ref  digest of the recording blob
//
// Recordings are stored once by content digest — two record jobs with the
// same workload, seed, and configuration produce byte-identical dplogs
// and share one blob — while job directories hold the per-run artifacts
// and a reference to the blob. Blob writes go through a temp file and
// rename, so a blob path either doesn't exist or holds complete content.
type Store struct {
	root string
}

// OpenStore creates (if needed) and opens the artifact layout under root.
func OpenStore(root string) (*Store, error) {
	for _, dir := range []string{root, filepath.Join(root, "blobs"), filepath.Join(root, "jobs")} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: store: %w", err)
		}
	}
	return &Store{root: root}, nil
}

// Root returns the store's base directory.
func (st *Store) Root() string { return st.root }

// Digest computes the content address of a blob.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256-" + hex.EncodeToString(sum[:])
}

// validDigest guards digests read back from ref files before they are
// used as path components.
func validDigest(d string) bool {
	rest, ok := strings.CutPrefix(d, "sha256-")
	if !ok || len(rest) != 64 {
		return false
	}
	_, err := hex.DecodeString(rest)
	return err == nil
}

// BlobPath maps a digest to its path.
func (st *Store) BlobPath(digest string) string {
	return filepath.Join(st.root, "blobs", digest)
}

// PutBlob stores data by content address, deduplicating: if the blob
// already exists the write is skipped entirely.
func (st *Store) PutBlob(data []byte) (digest string, err error) {
	digest = Digest(data)
	path := st.BlobPath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, nil
	}
	tmp, err := os.CreateTemp(filepath.Join(st.root, "blobs"), ".tmp-*")
	if err != nil {
		return "", fmt.Errorf("server: store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("server: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("server: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("server: store: %w", err)
	}
	return digest, nil
}

// ReadBlob loads a blob by digest.
func (st *Store) ReadBlob(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("server: store: invalid digest %q", digest)
	}
	return os.ReadFile(st.BlobPath(digest))
}

// JobDir creates (if needed) and returns a job's artifact directory.
func (st *Store) JobDir(id string) (string, error) {
	dir := filepath.Join(st.root, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("server: store: %w", err)
	}
	return dir, nil
}

// JobArtifact returns the path of a named artifact in a job's directory
// (without creating anything).
func (st *Store) JobArtifact(id, name string) string {
	return filepath.Join(st.root, "jobs", id, name)
}

// WriteJobArtifact writes one artifact into a job's directory.
func (st *Store) WriteJobArtifact(id, name string, data []byte) error {
	dir, err := st.JobDir(id)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), data, 0o644)
}

// SetRecordingRef records which blob holds a job's recording.
func (st *Store) SetRecordingRef(id, digest string) error {
	return st.WriteJobArtifact(id, "recording.ref", []byte(digest+"\n"))
}

// RecordingRef resolves a job's recording digest, or "" when the job has
// no stored recording.
func (st *Store) RecordingRef(id string) string {
	data, err := os.ReadFile(st.JobArtifact(id, "recording.ref"))
	if err != nil {
		return ""
	}
	d := strings.TrimSpace(string(data))
	if !validDigest(d) {
		return ""
	}
	return d
}

// ReadRecording loads the recording bytes a job produced.
func (st *Store) ReadRecording(id string) ([]byte, error) {
	d := st.RecordingRef(id)
	if d == "" {
		return nil, fmt.Errorf("server: job %s has no stored recording", id)
	}
	return st.ReadBlob(d)
}
