package server_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"doubleplay/internal/profile"
	"doubleplay/internal/server"
)

// fetchProfile downloads a job's guest-profile artifact.
func fetchProfile(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/profile")
	if err != nil {
		t.Fatalf("GET profile: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET profile: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET profile: %v", err)
	}
	return data
}

func TestGuestProfileArtifactLifecycle(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8})

	// A profiled record job: the artifact appears only once the job is
	// terminal — before that the endpoint tells the client to come back.
	spec := slowSpec()
	spec["guest_profile"] = true
	recID := submit(t, ts, spec)
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+recID+"/profile", nil); code != http.StatusConflict {
		t.Fatalf("GET profile before terminal: %d, want 409", code)
	}
	recInfo := waitDone(t, ts, recID)

	links, _ := recInfo["links"].(map[string]any)
	if links == nil || links["profile"] == nil {
		t.Fatalf("profiled job advertises no profile link: %v", recInfo)
	}
	res := recInfo["result"].(map[string]any)
	if n, _ := res["guest_stacks"].(float64); n <= 0 {
		t.Fatalf("result guest_stacks = %v, want > 0", res["guest_stacks"])
	}

	recData := fetchProfile(t, ts, recID)
	recProf, err := profile.ParsePprof(recData)
	if err != nil {
		t.Fatalf("served profile does not parse: %v", err)
	}
	if recProf.NumSamples() == 0 || recProf.TotalCycles() <= 0 {
		t.Fatalf("served profile is empty: %d stacks, %d cycles",
			recProf.NumSamples(), recProf.TotalCycles())
	}

	// Replaying the stored recording with profiling regenerates the
	// record-time profile byte for byte, in every replay mode.
	for _, mode := range []map[string]any{
		{"mode": "sequential"},
		{"mode": "parallel"},
		{"mode": "sparse", "stride": 4},
	} {
		spec := map[string]any{"kind": "replay", "recording_job": recID, "guest_profile": true}
		for k, v := range mode {
			spec[k] = v
		}
		repID := submit(t, ts, spec)
		waitDone(t, ts, repID)
		if repData := fetchProfile(t, ts, repID); !bytes.Equal(repData, recData) {
			t.Fatalf("replay %v profile differs from record profile", mode)
		}
	}
}

func TestGuestProfileVerifyJobChecksIdentity(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	id := submit(t, ts, map[string]any{
		"kind": "verify", "workload": "fft", "workers": 2,
		"mode": "parallel", "guest_profile": true,
	})
	v := waitDone(t, ts, id) // fails if replay profile != record profile
	res := v["result"].(map[string]any)
	if n, _ := res["guest_stacks"].(float64); n <= 0 {
		t.Fatalf("verify result guest_stacks = %v, want > 0", res["guest_stacks"])
	}
	prof, err := profile.ParsePprof(fetchProfile(t, ts, id))
	if err != nil {
		t.Fatalf("verify profile does not parse: %v", err)
	}
	if prof.Name != "fft" {
		t.Fatalf("profile program = %q, want fft", prof.Name)
	}
}

func TestGuestProfileAbsentWithoutFlag(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	id := submit(t, ts, fastSpec())
	v := waitDone(t, ts, id)
	if links, _ := v["links"].(map[string]any); links["profile"] != nil {
		t.Fatalf("unprofiled job advertises a profile link: %v", links)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/profile", nil); code != http.StatusNotFound {
		t.Fatalf("GET profile for unprofiled job: %d, want 404", code)
	}
}

func TestPprofEndpointsGatedByConfig(t *testing.T) {
	// Off by default: the debug surface must not exist.
	_, off := newTestServer(t, server.Config{Workers: 1})
	for _, p := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(off.URL + p)
		if err != nil {
			t.Fatalf("GET %s: %v", p, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without -pprof: %d, want 404", p, resp.StatusCode)
		}
	}

	// Opt-in: the standard pprof index and heap profile respond.
	_, on := newTestServer(t, server.Config{Workers: 1, EnablePprof: true})
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index: status %d, body %q", resp.StatusCode, body)
	}
	resp, err = http.Get(on.URL + "/debug/pprof/heap")
	if err != nil {
		t.Fatalf("GET heap profile: %v", err)
	}
	heap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(heap) == 0 {
		t.Fatalf("heap profile: status %d, %d bytes", resp.StatusCode, len(heap))
	}
}
