package server_test

// End-to-end coverage of the storage-tier API surface: chunk dedup
// across same-workload recordings, pinning, retention GC, and the
// store-stats endpoint.

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"doubleplay/internal/server"
	"doubleplay/internal/store"
)

func getRecording(t *testing.T, url string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, data, resp.Header.Get("X-Recording-Digest")
}

func TestStorageTierPinGCAndStats(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8})

	// Two recordings of the same workload at different seeds share
	// chunks in the store.
	specB := fastSpec()
	specB["seed"] = 12
	idA := submit(t, ts, fastSpec())
	idB := submit(t, ts, specB)
	waitDone(t, ts, idA)
	waitDone(t, ts, idB)

	codeA, dataA, digA := getRecording(t, ts.URL+"/jobs/"+idA+"/recording")
	codeB, dataB, _ := getRecording(t, ts.URL+"/jobs/"+idB+"/recording")
	if codeA != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("GET recordings: %d, %d", codeA, codeB)
	}
	if store.Digest(dataA) != digA {
		t.Fatalf("recording A bytes do not hash to the advertised digest")
	}

	code, stats := doJSON(t, "GET", ts.URL+"/admin/store", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /admin/store: %d %v", code, stats)
	}
	logical := int64(stats["logical_bytes"].(float64))
	unique := int64(stats["unique_raw_bytes"].(float64))
	if logical != int64(len(dataA)+len(dataB)) {
		t.Fatalf("logical_bytes = %d, want %d", logical, len(dataA)+len(dataB))
	}
	if unique >= logical {
		t.Fatalf("no dedup across seeds: unique %d >= logical %d", unique, logical)
	}

	// Pin A, then age everything out: A survives, B is collected.
	if code, v := doJSON(t, "POST", ts.URL+"/jobs/"+idA+"/pin", nil); code != http.StatusOK || v["pinned"] != true {
		t.Fatalf("POST pin: %d %v", code, v)
	}
	code, rep := doJSON(t, "POST", ts.URL+"/admin/gc", map[string]any{"max_age_ms": 1})
	if code != http.StatusOK {
		t.Fatalf("POST /admin/gc: %d %v", code, rep)
	}
	if rep["pinned"].(float64) != 1 || rep["manifests_removed"].(float64) != 1 {
		t.Fatalf("gc report: %v", rep)
	}
	codeA, againA, _ := getRecording(t, ts.URL+"/jobs/"+idA+"/recording")
	if codeA != http.StatusOK || !bytes.Equal(againA, dataA) {
		t.Fatalf("pinned recording damaged by GC (status %d)", codeA)
	}
	if codeB, _, _ := getRecording(t, ts.URL+"/jobs/"+idB+"/recording"); codeB != http.StatusNotFound {
		t.Fatalf("collected recording still served: %d", codeB)
	}

	// A survivor still replays by id after the sweep.
	repID := submit(t, ts, map[string]any{"kind": "replay", "recording_job": idA, "mode": "sequential"})
	waitDone(t, ts, repID)

	// Epoch-range extraction reads through the chunked handle.
	resp, err := http.Get(ts.URL + "/recordings/" + idA + "/epochs/0..1")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET epochs after GC: %v (status %v)", err, resp.Status)
	}
	resp.Body.Close()

	// Unpin, collect again: A goes too, and the store ends empty.
	if code, v := doJSON(t, "DELETE", ts.URL+"/jobs/"+idA+"/pin", nil); code != http.StatusOK || v["pinned"] != false {
		t.Fatalf("DELETE pin: %d %v", code, v)
	}
	if code, rep = doJSON(t, "POST", ts.URL+"/admin/gc", map[string]any{"max_age_ms": 1}); code != http.StatusOK {
		t.Fatalf("second gc: %d %v", code, rep)
	}
	code, stats = doJSON(t, "GET", ts.URL+"/admin/store", nil)
	if code != http.StatusOK || stats["chunks"].(float64) != 0 || stats["manifests"].(float64) != 0 {
		t.Fatalf("store not empty after full GC: %v", stats)
	}

	// Malformed GC requests are rejected.
	if code, _ := doJSON(t, "POST", ts.URL+"/admin/gc", map[string]any{"max_age_ms": -1}); code != http.StatusBadRequest {
		t.Fatalf("negative max_age_ms accepted: %d", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs/nope/pin", nil); code != http.StatusNotFound {
		t.Fatalf("pin of unknown job: %d", code)
	}
}
