package server_test

import (
	"io"
	"net/http"
	"testing"

	"doubleplay/internal/dplog"
	"doubleplay/internal/server"
)

// TestEpochRangeEndpoint pins the partial-fetch API: the endpoint ships a
// standalone dplog holding exactly the requested sections, byte-identical
// to the stored recording's.
func TestEpochRangeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	recID := submit(t, ts, fastSpec())
	waitDone(t, ts, recID)

	get := func(path string) (int, http.Header, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header, body
	}

	// The full artifact, for comparing section bytes.
	code, _, full := get("/jobs/" + recID + "/recording")
	if code != http.StatusOK {
		t.Fatalf("GET recording: %d", code)
	}
	src, err := dplog.OpenReaderBytes(full)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumSections() < 2 {
		t.Skipf("recording has only %d epochs", src.NumSections())
	}

	code, hdr, body := get("/recordings/" + recID + "/epochs/0..1")
	if code != http.StatusOK {
		t.Fatalf("GET epochs 0..1: %d (%s)", code, body)
	}
	if got := hdr.Get("X-Epoch-Range"); got != "0..1" {
		t.Fatalf("X-Epoch-Range = %q", got)
	}
	if got := hdr.Get("X-Epoch-Count"); got != "2" {
		t.Fatalf("X-Epoch-Count = %q", got)
	}
	sub, err := dplog.OpenReaderBytes(body)
	if err != nil {
		t.Fatalf("epoch-range response is not a readable dplog: %v", err)
	}
	if sub.Legacy() || sub.Recovered() || sub.NumSections() != 2 {
		t.Fatalf("subset: legacy=%v recovered=%v sections=%d", sub.Legacy(), sub.Recovered(), sub.NumSections())
	}
	for i := 0; i < 2; i++ {
		want, got := src.Sections()[i], sub.Sections()[i]
		if got.Epoch != want.Epoch || got.Stored != want.Stored || got.CRC != want.CRC || got.Flags != want.Flags {
			t.Fatalf("section %d differs from the stored recording: %+v vs %+v", i, got, want)
		}
		ep, err := sub.Seek(i)
		if err != nil {
			t.Fatal(err)
		}
		if ep.Index != i {
			t.Fatalf("subset epoch at %d has index %d", i, ep.Index)
		}
	}

	// A single-epoch request works too.
	code, _, body = get("/recordings/" + recID + "/epochs/1")
	if code != http.StatusOK {
		t.Fatalf("GET epochs/1: %d", code)
	}
	if one, err := dplog.OpenReaderBytes(body); err != nil || one.NumSections() != 1 {
		t.Fatalf("single-epoch response: sections=%v err=%v", one, err)
	}

	// Error paths: malformed range, out-of-bounds range, unknown job.
	if code, _, _ = get("/recordings/" + recID + "/epochs/x..y"); code != http.StatusBadRequest {
		t.Fatalf("malformed range: %d, want 400", code)
	}
	if code, _, _ = get("/recordings/" + recID + "/epochs/0..999999"); code != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("out-of-bounds range: %d, want 416", code)
	}
	if code, _, _ = get("/recordings/nope/epochs/0..1"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}
}
