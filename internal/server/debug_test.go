package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"doubleplay/internal/server"
)

// fetchDiff downloads and parses a debug_diff job's diff.json artifact.
func fetchDiff(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/diff")
	if err != nil {
		t.Fatalf("GET diff: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET diff: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET diff: %v", err)
	}
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("diff.json does not parse: %v", err)
	}
	return v
}

// TestDebugDiffJob drives the divergence-forensics job kind end to end:
// record the racy workload under two seeds, bisect for the first
// divergent epoch, re-diff that exact boundary, and check the
// no-divergence and wrong-kind paths.
func TestDebugDiffJob(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 16})

	// The racy workload ignores its seed when building, so both
	// recordings start from identical states; the seeds only jitter the
	// recorded schedules, which is exactly what makes the races resolve
	// differently.
	recA := submit(t, ts, map[string]any{"kind": "record", "workload": "racey", "workers": 2, "seed": 1})
	waitDone(t, ts, recA)
	recB := submit(t, ts, map[string]any{"kind": "record", "workload": "racey", "workers": 2, "seed": 4})
	waitDone(t, ts, recB)

	id := submit(t, ts, map[string]any{
		"kind": "debug_diff", "recording_job": recA, "recording_job_b": recB,
	})
	v := waitDone(t, ts, id)

	links, _ := v["links"].(map[string]any)
	if links["diff"] == nil {
		t.Fatalf("debug_diff job advertises no diff link: %v", links)
	}
	if links["recording"] != nil {
		t.Fatalf("debug_diff job advertises a recording link it has no artifact for: %v", links)
	}
	res, _ := v["result"].(map[string]any)
	if res == nil {
		t.Fatalf("no result in %v", v)
	}
	first, ok := res["first_divergence"].(float64)
	if !ok || first < 1 {
		t.Fatalf("first_divergence = %v, want >= 1 (racy recordings share their initial state)", res["first_divergence"])
	}

	d := fetchDiff(t, ts, id)
	if d["diverged"] != true {
		t.Fatalf("diff.json diverged = %v, want true", d["diverged"])
	}
	if e, _ := d["epoch"].(float64); e != first {
		t.Fatalf("diff.json epoch %v != summary first_divergence %v", e, first)
	}
	inner, _ := d["diff"].(map[string]any)
	if inner == nil || inner["equal"] != false {
		t.Fatalf("diff.json carries no state diff: %v", d)
	}
	if w, _ := inner["words_differ"].(float64); w < 1 {
		t.Fatalf("state diff names no differing words: %v", inner)
	}

	// Diff the named boundary directly: same verdict.
	idAt := submit(t, ts, map[string]any{
		"kind": "debug_diff", "recording_job": recA, "recording_job_b": recB,
		"epoch": int(first),
	})
	vAt := waitDone(t, ts, idAt)
	resAt, _ := vAt["result"].(map[string]any)
	if got, _ := resAt["first_divergence"].(float64); got != first {
		t.Fatalf("epoch-pinned diff first_divergence = %v, want %v", resAt["first_divergence"], first)
	}

	// A recording against itself never diverges.
	idSame := submit(t, ts, map[string]any{
		"kind": "debug_diff", "recording_job": recA, "recording_job_b": recA,
	})
	vSame := waitDone(t, ts, idSame)
	resSame, _ := vSame["result"].(map[string]any)
	if resSame["first_divergence"] != nil {
		t.Fatalf("self-diff reports divergence: %v", resSame)
	}
	if d := fetchDiff(t, ts, idSame); d["diverged"] != false {
		t.Fatalf("self-diff diff.json diverged = %v, want false", d["diverged"])
	}

	// The diff endpoint is specific to debug_diff jobs.
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+recA+"/diff", nil); code != http.StatusNotFound {
		t.Fatalf("GET diff for a record job: %d, want 404", code)
	}

	// Validation: both recording references are required.
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", map[string]any{
		"kind": "debug_diff", "recording_job": recA,
	}); code != http.StatusBadRequest {
		t.Fatalf("debug_diff without recording_job_b: %d, want 400", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", map[string]any{
		"kind": "debug_diff", "recording_job": recA, "recording_job_b": "nope",
	}); code != http.StatusBadRequest {
		t.Fatalf("debug_diff with unknown recording_job_b: %d, want 400", code)
	}
}
