package server

// The epoch-range endpoint: a remote replayer that wants epochs n..m of a
// stored recording should not have to download — or decode — the whole
// log. Because dplog v6 is sectioned behind an offset index, the server
// extracts exactly the requested sections (verbatim bytes for v6 logs)
// into a small standalone dplog and ships that. Legacy v4/v5 artifacts
// are upgraded transparently through the same path.

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"

	"doubleplay/internal/dplog"
)

func (s *Server) handleEpochRange(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	lo, hi, err := dplog.ParseEpochRange(r.PathValue("range"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad epoch range %q: %v", r.PathValue("range"), err)
		return
	}
	// Open through the store's lazy handle: only the requested sections'
	// chunks are read and reassembled, never the whole artifact.
	h, err := s.store.OpenRecordingByJob(j.ID)
	if err != nil {
		writeErr(w, http.StatusNotFound, "job %s has no stored recording (state %s)", j.ID, s.jobState(j))
		return
	}
	defer h.Close()
	rd, err := dplog.OpenReader(h, h.Size())
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "job %s: stored recording is unreadable: %v", j.ID, err)
		return
	}
	var buf bytes.Buffer
	if err := rd.WriteRange(&buf, lo, hi); err != nil {
		if errors.Is(err, dplog.ErrNoEpoch) {
			writeErr(w, http.StatusRequestedRangeNotSatisfiable,
				"job %s: %v (recording has %d epochs)", j.ID, err, rd.NumSections())
			return
		}
		writeErr(w, http.StatusInternalServerError, "job %s: extracting epochs %d..%d: %v", j.ID, lo, hi, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Recording-Digest", s.store.RecordingRef(j.ID))
	w.Header().Set("X-Epoch-Range", fmt.Sprintf("%d..%d", lo, hi))
	w.Header().Set("X-Epoch-Count", fmt.Sprintf("%d", hi-lo+1))
	_, _ = w.Write(buf.Bytes())
}
