// Package server is the long-running face of the reproduction: a
// job-oriented record/replay daemon (`doubleplay serve`). Clients submit
// record, replay, and verify jobs over a JSON HTTP API; jobs wait in a
// bounded FIFO queue, run on a fixed worker pool with per-job timeouts
// and cancellation threaded into core.Record and the replay strategies,
// and leave durable artifacts — the dplog-marshalled recording in a
// content-addressed blob store, a streamed Chrome trace, and a stats
// JSON — that later jobs can reference by id (replay-by-id). The daemon
// exposes queue, pool, and per-job metrics on a shared trace.Registry at
// /metrics and drains gracefully on shutdown.
//
// The shape follows what record/replay systems grow into in production:
// recordings are durable, shareable artifacts replayed later and
// elsewhere (rr's ecosystem), and many recordings run concurrently
// through one service. docs/SERVER.md documents the API schema, the job
// lifecycle, and the metrics series.
package server

import (
	"fmt"
	"strings"
	"time"

	"doubleplay/internal/core"
	"doubleplay/internal/workloads"
)

// Kind is a job's flavour.
type Kind string

const (
	// KindRecord performs a uniparallel recording and stores the
	// resulting replay log as a content-addressed artifact.
	KindRecord Kind = "record"
	// KindReplay replays a stored recording referenced by job id, in
	// sequential, parallel, or sparse mode.
	KindReplay Kind = "replay"
	// KindVerify records and then replays in memory, checking every
	// boundary hash and the guest self-check — the service form of
	// `doubleplay verify`.
	KindVerify Kind = "verify"
	// KindDebugDiff runs divergence forensics over two stored recordings
	// referenced by job id: bisect for the first epoch boundary at which
	// their states diverge (or diff one specific boundary) and store the
	// word-level state diff as the diff.json artifact — the service form
	// of `dpdebug bisect`/`dpdebug diff`.
	KindDebugDiff Kind = "debug_diff"
)

// State is a job's position in its lifecycle. Transitions are strictly
// queued -> running -> {done, failed, canceled}, or queued -> canceled
// when a job is canceled (or the daemon drains) before a worker picks it
// up.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ReplayMode selects a replay job's strategy.
const (
	ModeSequential = "sequential"
	ModeParallel   = "parallel"
	ModeSparse     = "sparse"
)

// Spec is the client-supplied description of a job — the JSON body of
// POST /jobs. Zero fields take server defaults (Normalize).
type Spec struct {
	Kind Kind `json:"kind"`

	// Workload names a builtin benchmark. Required for record and verify
	// jobs; replay jobs default it (and Workers, Scale, Seed) from the
	// referenced recording's header.
	Workload string `json:"workload,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Spares   int    `json:"spares,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	Seed     int64  `json:"seed,omitempty"`

	// EpochCycles and Growth tune the recorder (record/verify jobs).
	EpochCycles int64   `json:"epoch_cycles,omitempty"`
	Growth      float64 `json:"growth,omitempty"`
	DetectRaces bool    `json:"detect_races,omitempty"`

	// VerifyPolicy selects the recorder's epoch verification policy for
	// record/verify jobs: "" or "always" runs the epoch-parallel pass for
	// every epoch; "certified" skips it when the static race-freedom
	// certificate proves the workload safe (falling back to always
	// otherwise — the job's stats.json records the decision).
	VerifyPolicy string `json:"verify_policy,omitempty"`

	// Adaptive enables the recorder's spare-slot feedback controller
	// (record/verify jobs), bounded to [MinSpares, MaxSpares] active
	// slots and starting from Spares. Zero bounds take core defaults
	// (min 1, max Spares).
	Adaptive  bool `json:"adaptive,omitempty"`
	MinSpares int  `json:"min_spares,omitempty"`
	MaxSpares int  `json:"max_spares,omitempty"`

	// Mode selects the replay strategy for replay jobs (and, when set to
	// "parallel", adds a parallel replay to verify jobs). Stride thins
	// checkpoints for sparse replay.
	Mode   string `json:"mode,omitempty"`
	Stride int    `json:"stride,omitempty"`

	// RecordingJob references the record (or verify) job whose stored
	// recording a replay job reproduces. The referenced job must have
	// finished before the replay job runs. Debug-diff jobs compare it
	// against RecordingJobB.
	RecordingJob string `json:"recording_job,omitempty"`

	// RecordingJobB is the second recording of a debug_diff job; both
	// recordings must come from the same program build. Epoch selects one
	// boundary to diff (> 0); when zero the job bisects for the first
	// divergent boundary instead.
	RecordingJobB string `json:"recording_job_b,omitempty"`
	Epoch         int    `json:"epoch,omitempty"`

	// TimeoutMS bounds the job's host execution time; 0 uses the server
	// default. The timeout cancels the job cooperatively at the next
	// epoch boundary.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// TraceWindow overrides the streamed trace's reorder window;
	// TraceMinSpan/TraceCounterStride enable downsampling (see
	// trace.StreamSink.Downsample).
	TraceWindow        int   `json:"trace_window,omitempty"`
	TraceMinSpan       int64 `json:"trace_min_span,omitempty"`
	TraceCounterStride int   `json:"trace_counter_stride,omitempty"`

	// Priority selects the queue lane: "interactive" jobs overtake
	// "batch" jobs at the queue head (starvation-bounded; see
	// internal/server/queue.go). Empty defaults by kind — record jobs are
	// batch (campaign traffic), replay/verify/debug_diff jobs are
	// interactive (someone is waiting on the answer).
	Priority string `json:"priority,omitempty"`

	// GuestProfile asks the job to gather the deterministic guest cycle
	// profile (see internal/profile) and store it as the profile.pb
	// artifact, fetchable at GET /jobs/{id}/profile. Record and verify
	// jobs profile the recording; replay jobs profile the replayed
	// execution — for the same log the two artifacts are byte-identical,
	// and verify jobs check that property before turning done.
	GuestProfile bool `json:"guest_profile,omitempty"`
}

// Normalize fills defaults in place.
func (sp *Spec) Normalize() {
	if sp.Workers <= 0 {
		sp.Workers = 2
	}
	if sp.Spares <= 0 {
		sp.Spares = sp.Workers
	}
	if sp.Scale <= 0 {
		sp.Scale = 1
	}
	if sp.Seed == 0 {
		sp.Seed = 11
	}
	if sp.Growth < 1 {
		sp.Growth = 1
	}
	if sp.Mode == "" && (sp.Kind == KindReplay || sp.Kind == KindVerify) {
		sp.Mode = ModeSequential
	}
	if sp.Priority == "" {
		if sp.Kind == KindRecord {
			sp.Priority = LaneBatch
		} else {
			sp.Priority = LaneInteractive
		}
	}
}

// Validate rejects malformed specs at submission time. jobExists answers
// whether a referenced recording job is known (any state — completion is
// checked again when the replay actually runs).
func (sp *Spec) Validate(jobExists func(id string) bool) error {
	switch sp.Kind {
	case KindRecord, KindVerify:
		if sp.Workload == "" {
			return fmt.Errorf("%s job requires a workload", sp.Kind)
		}
		if workloads.Get(sp.Workload) == nil {
			return fmt.Errorf("unknown workload %q", sp.Workload)
		}
	case KindReplay:
		if sp.RecordingJob == "" {
			return fmt.Errorf("replay job requires recording_job (the id of a finished record job)")
		}
		if jobExists != nil && !jobExists(sp.RecordingJob) {
			return fmt.Errorf("recording_job %q is not a known job", sp.RecordingJob)
		}
		if sp.Workload != "" && workloads.Get(sp.Workload) == nil {
			return fmt.Errorf("unknown workload %q", sp.Workload)
		}
	case KindDebugDiff:
		if sp.RecordingJob == "" || sp.RecordingJobB == "" {
			return fmt.Errorf("debug_diff job requires recording_job and recording_job_b (ids of finished record jobs)")
		}
		if jobExists != nil && !jobExists(sp.RecordingJob) {
			return fmt.Errorf("recording_job %q is not a known job", sp.RecordingJob)
		}
		if jobExists != nil && !jobExists(sp.RecordingJobB) {
			return fmt.Errorf("recording_job_b %q is not a known job", sp.RecordingJobB)
		}
		if sp.Epoch < 0 {
			return fmt.Errorf("epoch must be >= 0 (0 bisects)")
		}
		if sp.Workload != "" && workloads.Get(sp.Workload) == nil {
			return fmt.Errorf("unknown workload %q", sp.Workload)
		}
	default:
		return fmt.Errorf("unknown job kind %q (want record, replay, verify, or debug_diff)", sp.Kind)
	}
	switch sp.Mode {
	case "", ModeSequential, ModeParallel, ModeSparse:
	default:
		return fmt.Errorf("unknown replay mode %q (want sequential, parallel, or sparse)", sp.Mode)
	}
	if sp.Mode == ModeSparse && sp.Stride < 2 {
		return fmt.Errorf("sparse replay requires stride >= 2")
	}
	if sp.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	if !sp.Adaptive && (sp.MinSpares != 0 || sp.MaxSpares != 0) {
		return fmt.Errorf("min_spares/max_spares require adaptive")
	}
	if sp.MinSpares < 0 || sp.MaxSpares < 0 {
		return fmt.Errorf("min_spares/max_spares must be >= 0")
	}
	if sp.MinSpares > 0 && sp.MaxSpares > 0 && sp.MaxSpares < sp.MinSpares {
		return fmt.Errorf("max_spares must be >= min_spares")
	}
	if _, err := core.ParseVerifyPolicy(sp.VerifyPolicy); err != nil {
		return fmt.Errorf("verify_policy %q: want always or certified", sp.VerifyPolicy)
	}
	switch sp.Priority {
	case "", LaneInteractive, LaneBatch:
	default:
		return fmt.Errorf("unknown priority %q (want interactive or batch)", sp.Priority)
	}
	return nil
}

// ResultSummary is the outcome a finished job reports inline (the full
// stats live in the stats.json artifact).
type ResultSummary struct {
	Epochs      int    `json:"epochs"`
	Cycles      int64  `json:"cycles"`
	FinalHash   string `json:"final_hash"`
	Divergences int    `json:"divergences,omitempty"`
	ReplayBytes int    `json:"replay_bytes,omitempty"`
	Races       int    `json:"races,omitempty"`
	Recording   string `json:"recording,omitempty"` // blob digest
	TraceEvents int    `json:"trace_events,omitempty"`
	TraceDrops  int    `json:"trace_dropped,omitempty"`

	// CertStatus and VerifySkipped report the certified verify-skip
	// decision for jobs submitted with verify_policy "certified".
	CertStatus    string `json:"cert_status,omitempty"`
	VerifySkipped int    `json:"verify_skipped,omitempty"`

	// GuestStacks counts the distinct call stacks in the guest profile of
	// a job submitted with guest_profile.
	GuestStacks int `json:"guest_stacks,omitempty"`

	// FirstDivergence is a debug_diff job's answer: the first epoch
	// boundary at which the two recordings' states differ (nil when the
	// recordings agree everywhere). The full state diff is in diff.json.
	FirstDivergence *int `json:"first_divergence,omitempty"`
}

// Job is one unit of work and its full lifecycle record. The server's
// mutex guards every mutable field.
type Job struct {
	ID       string
	Seq      int
	Spec     Spec
	State    State
	Error    string
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Result   *ResultSummary

	// cancel aborts the running job's context; cancelRequested
	// distinguishes an explicit DELETE from a timeout.
	cancel          func()
	cancelRequested bool
}

// Info is the JSON view of a job served by the API.
type Info struct {
	ID       string            `json:"id"`
	Kind     Kind              `json:"kind"`
	State    State             `json:"state"`
	Spec     Spec              `json:"spec"`
	Error    string            `json:"error,omitempty"`
	Created  time.Time         `json:"created"`
	Started  *time.Time        `json:"started,omitempty"`
	Finished *time.Time        `json:"finished,omitempty"`
	Result   *ResultSummary    `json:"result,omitempty"`
	Links    map[string]string `json:"links,omitempty"`
}

// info snapshots a job for the API; the caller holds the server mutex.
func (j *Job) info() Info {
	in := Info{
		ID:      j.ID,
		Kind:    j.Spec.Kind,
		State:   j.State,
		Spec:    j.Spec,
		Error:   j.Error,
		Created: j.Created,
	}
	if !j.Started.IsZero() {
		t := j.Started
		in.Started = &t
	}
	if !j.Finished.IsZero() {
		t := j.Finished
		in.Finished = &t
	}
	if j.Result != nil {
		r := *j.Result
		in.Result = &r
	}
	base := "/jobs/" + j.ID
	in.Links = map[string]string{"self": base, "trace": base + "/trace", "stats": base + "/stats"}
	if j.Spec.Kind != KindReplay && j.Spec.Kind != KindDebugDiff {
		in.Links["recording"] = base + "/recording"
		in.Links["pin"] = base + "/pin"
	}
	if j.Spec.Kind == KindDebugDiff {
		in.Links["diff"] = base + "/diff"
	}
	if j.Spec.GuestProfile {
		in.Links["profile"] = base + "/profile"
	}
	return in
}

// shortErr trims multi-line error text for the inline Error field.
func shortErr(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
