package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"doubleplay/internal/dplog"
	"doubleplay/internal/dptrace"
	"doubleplay/internal/server"
	"doubleplay/internal/store"
	"doubleplay/internal/trace"
)

// fastSpec is a record job that finishes in well under a second.
func fastSpec() map[string]any {
	return map[string]any{"kind": "record", "workload": "pbzip", "workers": 2, "seed": 11}
}

// slowSpec is a record job that takes a couple of seconds of host time
// with epoch boundaries every few hundred simulated cycles — thousands
// of cancellation points.
func slowSpec() map[string]any {
	return map[string]any{
		"kind": "record", "workload": "pbzip", "workers": 2, "seed": 11,
		"scale": 6, "epoch_cycles": 300,
	}
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read body: %v", method, url, err)
	}
	var v map[string]any
	if len(data) > 0 {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("%s %s: non-JSON body %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode, v
}

func submit(t *testing.T, ts *httptest.Server, spec map[string]any) string {
	t.Helper()
	code, v := doJSON(t, "POST", ts.URL+"/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit %v: got %d, body %v", spec, code, v)
	}
	id, _ := v["id"].(string)
	if id == "" {
		t.Fatalf("submit: no id in %v", v)
	}
	return id
}

// waitState polls a job until pred is satisfied or the deadline passes.
func waitState(t *testing.T, ts *httptest.Server, id string, pred func(state string) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, v := doJSON(t, "GET", ts.URL+"/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d %v", id, code, v)
		}
		if st, _ := v["state"].(string); pred(st) {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s: state predicate not reached in time", id)
	return nil
}

func terminal(st string) bool {
	return st == "done" || st == "failed" || st == "canceled"
}

func waitDone(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	v := waitState(t, ts, id, terminal)
	if st := v["state"]; st != "done" {
		t.Fatalf("job %s: state %v (error %v), want done", id, st, v["error"])
	}
	return v
}

func finalHash(t *testing.T, v map[string]any) string {
	t.Helper()
	res, _ := v["result"].(map[string]any)
	if res == nil {
		t.Fatalf("job info has no result: %v", v)
	}
	fh, _ := res["final_hash"].(string)
	if fh == "" || fh == strings.Repeat("0", 16) {
		t.Fatalf("job result has no final hash: %v", res)
	}
	return fh
}

// fetchTrace downloads and parses a terminal job's trace artifact.
func fetchTrace(t *testing.T, ts *httptest.Server, id string) []trace.Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d", resp.StatusCode)
	}
	evs, err := trace.ParseJSON(resp.Body)
	if err != nil {
		t.Fatalf("trace for %s does not parse: %v", id, err)
	}
	return evs
}

func TestEndToEndRecordThenReplayByID(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8})

	recID := submit(t, ts, fastSpec())
	recInfo := waitDone(t, ts, recID)
	recHash := finalHash(t, recInfo)
	res := recInfo["result"].(map[string]any)
	if res["epochs"].(float64) <= 0 {
		t.Fatalf("record result has no epochs: %v", res)
	}
	digest, _ := res["recording"].(string)
	if !strings.HasPrefix(digest, "sha256-") {
		t.Fatalf("record result digest = %q", digest)
	}

	// The stored recording round-trips through dplog and matches the
	// advertised digest.
	resp, err := http.Get(ts.URL + "/jobs/" + recID + "/recording")
	if err != nil {
		t.Fatalf("GET recording: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET recording: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Recording-Digest"); got != digest {
		t.Fatalf("digest header %q != result digest %q", got, digest)
	}
	if store.Digest(data) != digest {
		t.Fatalf("served recording bytes do not hash to %s", digest)
	}
	rec, err := dplog.Unmarshal(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("served recording does not unmarshal: %v", err)
	}
	if rec.Program != "pbzip" {
		t.Fatalf("recording program = %q", rec.Program)
	}

	// The trace artifact is a complete Chrome trace with epoch spans.
	evs := fetchTrace(t, ts, recID)
	spans := 0
	for _, ev := range evs {
		if ev.Name == "epoch" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatalf("record trace has no epoch spans (%d events)", len(evs))
	}

	// Replay the stored recording by job id in every mode; each must
	// reproduce the recorded final hash.
	for _, mode := range []map[string]any{
		{"mode": "sequential"},
		{"mode": "parallel"},
		{"mode": "sparse", "stride": 4},
	} {
		spec := map[string]any{"kind": "replay", "recording_job": recID}
		for k, v := range mode {
			spec[k] = v
		}
		repID := submit(t, ts, spec)
		repInfo := waitDone(t, ts, repID)
		if got := finalHash(t, repInfo); got != recHash {
			t.Fatalf("replay %v final hash %s != recorded %s", mode, got, recHash)
		}
		// Replay defaults its workload from the recording header.
		repSpec := repInfo["spec"].(map[string]any)
		if wl := repSpec["workload"]; wl != "pbzip" {
			t.Fatalf("replay spec workload = %v, want pbzip", wl)
		}
		if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+repID+"/stats", nil); code != http.StatusOK {
			t.Fatalf("GET stats for replay: %d", code)
		}
	}

	// GET /jobs lists all four in submission order.
	code, v := doJSON(t, "GET", ts.URL+"/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /jobs: %d", code)
	}
	jobs := v["jobs"].([]any)
	if len(jobs) != 4 {
		t.Fatalf("GET /jobs: %d jobs, want 4", len(jobs))
	}
	if first := jobs[0].(map[string]any); first["id"] != recID {
		t.Fatalf("GET /jobs order: first = %v, want %s", first["id"], recID)
	}
}

func TestVerifyJob(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	id := submit(t, ts, map[string]any{
		"kind": "verify", "workload": "fft", "workers": 2, "mode": "parallel",
	})
	v := waitDone(t, ts, id)
	finalHash(t, v)
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/stats", nil); code != http.StatusOK {
		t.Fatalf("GET stats: %d", code)
	}
}

func TestCertifiedVerifyPolicyJob(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})

	// sigping is certified race-free: the recorder must skip every epoch
	// and the stored recording must still replay by id.
	id := submit(t, ts, map[string]any{
		"kind": "record", "workload": "sigping", "workers": 2, "verify_policy": "certified",
	})
	v := waitDone(t, ts, id)
	res := v["result"].(map[string]any)
	if res["cert_status"] != "race-free" {
		t.Fatalf("cert_status = %v", res["cert_status"])
	}
	skipped, epochs := res["verify_skipped"].(float64), res["epochs"].(float64)
	if skipped == 0 || skipped != epochs {
		t.Fatalf("verify_skipped = %v of %v epochs", skipped, epochs)
	}
	rid := submit(t, ts, map[string]any{"kind": "replay", "recording_job": id})
	waitDone(t, ts, rid)

	// A racy workload under the same policy must fall back to full
	// verification.
	id = submit(t, ts, map[string]any{
		"kind": "record", "workload": "racey", "workers": 2, "verify_policy": "certified",
	})
	v = waitDone(t, ts, id)
	res = v["result"].(map[string]any)
	if res["cert_status"] != "possibly-racy" {
		t.Fatalf("racey cert_status = %v", res["cert_status"])
	}
	if _, ok := res["verify_skipped"]; ok {
		t.Fatalf("racey skipped verification: %v", res)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	cases := []map[string]any{
		{"kind": "record"},                                                    // no workload
		{"kind": "record", "workload": "nope"},                                // unknown workload
		{"kind": "replay"},                                                    // no recording_job
		{"kind": "replay", "recording_job": "absent"},                         // unknown job
		{"kind": "juggle", "workload": "pbzip"},                               // unknown kind
		{"kind": "record", "workload": "pbzip", "mode": "warp"},               // unknown mode
		{"kind": "record", "workload": "pbzip", "bogus_key": 1},               // unknown field
		{"kind": "record", "workload": "pbzip", "timeout_ms": -1},             // negative timeout
		{"kind": "record", "workload": "pbzip", "verify_policy": "sometimes"}, // unknown policy
	}
	for _, spec := range cases {
		if code, _ := doJSON(t, "POST", ts.URL+"/jobs", spec); code != http.StatusBadRequest {
			t.Errorf("submit %v: got %d, want 400", spec, code)
		}
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/absent", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job: got %d, want 404", code)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/jobs/absent", nil); code != http.StatusNotFound {
		t.Errorf("DELETE unknown job: got %d, want 404", code)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1})

	running := submit(t, ts, slowSpec())
	waitState(t, ts, running, func(st string) bool { return st == "running" })

	queued := submit(t, ts, fastSpec()) // fills the queue
	req, _ := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(mustJSON(t, fastSpec())))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("third submit: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}

	// Once the pool catches up, submissions are accepted again.
	waitDone(t, ts, running)
	waitDone(t, ts, queued)
	waitDone(t, ts, submit(t, ts, fastSpec()))
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	id := submit(t, ts, slowSpec())
	waitState(t, ts, id, func(st string) bool { return st == "running" })

	// While running, the trace is still streaming: 409.
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("GET trace while running: got %d, want 409", resp.StatusCode)
	}

	code, _ := doJSON(t, "DELETE", ts.URL+"/jobs/"+id, nil)
	if code != http.StatusAccepted {
		t.Fatalf("DELETE running job: got %d, want 202", code)
	}
	v := waitState(t, ts, id, terminal)
	if v["state"] != "canceled" {
		t.Fatalf("canceled job state = %v (error %v)", v["state"], v["error"])
	}
	// Cancellation is cooperative at epoch boundaries, and the trace is
	// flushed before the job turns terminal — it must parse.
	evs := fetchTrace(t, ts, id)
	if len(evs) == 0 {
		t.Fatalf("canceled job left an empty trace")
	}
	// Deleting a terminal job is an idempotent 200.
	if code, _ := doJSON(t, "DELETE", ts.URL+"/jobs/"+id, nil); code != http.StatusOK {
		t.Fatalf("DELETE terminal job: got %d, want 200", code)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	running := submit(t, ts, slowSpec())
	waitState(t, ts, running, func(st string) bool { return st == "running" })
	queued := submit(t, ts, fastSpec())

	code, v := doJSON(t, "DELETE", ts.URL+"/jobs/"+queued, nil)
	if code != http.StatusOK || v["state"] != "canceled" {
		t.Fatalf("DELETE queued job: got %d %v, want immediate canceled", code, v["state"])
	}
	doJSON(t, "DELETE", ts.URL+"/jobs/"+running, nil)
	waitState(t, ts, running, terminal)
}

func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	spec := slowSpec()
	spec["timeout_ms"] = 100
	id := submit(t, ts, spec)
	v := waitState(t, ts, id, terminal)
	if v["state"] != "failed" {
		t.Fatalf("timed-out job state = %v, want failed", v["state"])
	}
	if msg, _ := v["error"].(string); !strings.Contains(msg, "timed out") {
		t.Fatalf("timed-out job error = %q", msg)
	}
}

func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, server.Config{
		Workers: 1, QueueDepth: 4, DrainTimeout: 60 * time.Second,
	})
	running := submit(t, ts, slowSpec())
	waitState(t, ts, running, func(st string) bool { return st == "running" })
	queued := submit(t, ts, fastSpec())

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The in-flight job finished normally; the queued one was canceled
	// without ever starting; new submissions are refused.
	_, rv := doJSON(t, "GET", ts.URL+"/jobs/"+running, nil)
	if rv["state"] != "done" {
		t.Fatalf("in-flight job after drain: %v (error %v), want done", rv["state"], rv["error"])
	}
	_, qv := doJSON(t, "GET", ts.URL+"/jobs/"+queued, nil)
	if qv["state"] != "canceled" {
		t.Fatalf("queued job after drain: %v, want canceled", qv["state"])
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", fastSpec()); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: got %d, want 503", code)
	}
	// The finished job's artifacts survived the drain.
	fetchTrace(t, ts, running)
}

func TestDrainCancelsStragglers(t *testing.T) {
	s, ts := newTestServer(t, server.Config{
		Workers: 1, DrainTimeout: 50 * time.Millisecond,
	})
	id := submit(t, ts, slowSpec())
	waitState(t, ts, id, func(st string) bool { return st == "running" })

	start := time.Now()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("drain took %v — cancellation did not propagate", elapsed)
	}
	_, v := doJSON(t, "GET", ts.URL+"/jobs/"+id, nil)
	if v["state"] != "canceled" {
		t.Fatalf("straggler after short drain: %v, want canceled", v["state"])
	}
	fetchTrace(t, ts, id)
}

func TestMetricsConcurrentScrapes(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 2})
	id := submit(t, ts, slowSpec())

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("/metrics status %d", resp.StatusCode)
					return
				}
				if problems := dptrace.Promlint(string(body)); len(problems) > 0 {
					errs <- fmt.Errorf("promlint: %v", problems)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	waitDone(t, ts, id)

	// The scrape after completion carries the pool series.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("final scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"doubleplay_serve_jobs_submitted",
		"doubleplay_serve_jobs_completed",
		"doubleplay_serve_workers_busy",
		"doubleplay_serve_job_run_ms",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	code, v := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if code != http.StatusOK || v["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, v)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
