package asm

import (
	"fmt"
	"sort"
	"strings"

	"doubleplay/internal/vm"
)

// Disassemble renders a program as a human-readable listing with function
// headers, used by the CLI's disasm command and by debugging tests.
func Disassemble(p *vm.Program) string { return Listing(p, nil) }

// branchLabels assigns an "L<pc>" label to every in-range branch target.
func branchLabels(p *vm.Program) map[int]string {
	labels := make(map[int]string)
	for _, in := range p.Code {
		switch in.Op {
		case vm.OpJmp, vm.OpJz, vm.OpJnz:
			if t := int(in.Imm); t >= 0 && t < len(p.Code) {
				labels[t] = fmt.Sprintf("L%d", t)
			}
		}
	}
	return labels
}

// symInstr renders one instruction with branch targets as labels and
// call/spawn/handler targets by function name.
func symInstr(p *vm.Program, in vm.Instr, labels map[int]string) string {
	fname := func(idx vm.Word) string {
		if idx >= 0 && int(idx) < len(p.Funcs) {
			return p.Funcs[idx].Name
		}
		return fmt.Sprintf("fn%d!", idx)
	}
	target := func(t vm.Word) string {
		if l, ok := labels[int(t)]; ok {
			return l
		}
		return fmt.Sprintf("%d!", t)
	}
	switch in.Op {
	case vm.OpJmp:
		return "jmp " + target(in.Imm)
	case vm.OpJz, vm.OpJnz:
		return fmt.Sprintf("%s r%d, %s", in.Op, in.A, target(in.Imm))
	case vm.OpCall:
		return "call " + fname(in.Imm)
	case vm.OpSpawn:
		return fmt.Sprintf("spawn r%d, %s, r%d", in.A, fname(in.Imm), in.B)
	case vm.OpSigH:
		return "sig.handler " + fname(in.Imm)
	default:
		return in.String()
	}
}

// Listing renders a labeled full-program listing: function headers,
// "L<pc>:" labels at branch targets, symbolic branch/call/spawn operands,
// and optional per-pc annotation lines (rendered as trailing comments),
// as used by the dpvet CLI to show findings in context.
func Listing(p *vm.Program, notes map[int][]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %q: %d instructions, %d functions, %d data words @%d\n",
		p.Name, len(p.Code), len(p.Funcs), len(p.Data), p.DataBase)
	heads := make(map[int][]int)
	for i, f := range p.Funcs {
		heads[f.Entry] = append(heads[f.Entry], i)
	}
	labels := branchLabels(p)
	for pc, in := range p.Code {
		for _, fi := range heads[pc] {
			f := p.Funcs[fi]
			marker := ""
			if fi == p.Entry {
				marker = " (entry)"
			}
			fmt.Fprintf(&sb, "\n%s(%d args)%s:\n", f.Name, f.NArgs, marker)
		}
		if l, ok := labels[pc]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "%6d  %s\n", pc, symInstr(p, in, labels))
		for _, note := range notes[pc] {
			fmt.Fprintf(&sb, "        ; ^ %s\n", note)
		}
	}
	if len(notes) > 0 {
		// Notes outside the code range (program-level findings).
		var extra []int
		for pc := range notes {
			if pc < 0 || pc >= len(p.Code) {
				extra = append(extra, pc)
			}
		}
		sort.Ints(extra)
		for _, pc := range extra {
			for _, note := range notes[pc] {
				fmt.Fprintf(&sb, "; %s\n", note)
			}
		}
	}
	return sb.String()
}

// Context renders the instructions in a window of radius around pc, with
// a marker on pc itself — the disassembly context dpvet prints under
// each finding.
func Context(p *vm.Program, pc, radius int) string {
	if pc < 0 || pc >= len(p.Code) {
		return ""
	}
	lo, hi := pc-radius, pc+radius
	if lo < 0 {
		lo = 0
	}
	if hi >= len(p.Code) {
		hi = len(p.Code) - 1
	}
	if f := p.FuncAt(pc); f != nil && lo < f.Entry {
		lo = f.Entry
	}
	labels := branchLabels(p)
	var sb strings.Builder
	for i := lo; i <= hi; i++ {
		mark := "   "
		if i == pc {
			mark = "-> "
		}
		fmt.Fprintf(&sb, "    %s%5d  %s\n", mark, i, symInstr(p, p.Code[i], labels))
	}
	return sb.String()
}
