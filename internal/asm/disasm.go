package asm

import (
	"fmt"
	"strings"

	"doubleplay/internal/vm"
)

// Disassemble renders a program as a human-readable listing with function
// headers, used by the CLI's disasm command and by debugging tests.
func Disassemble(p *vm.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %q: %d instructions, %d functions, %d data words @%d\n",
		p.Name, len(p.Code), len(p.Funcs), len(p.Data), p.DataBase)
	// Map entry points to function indices for headers.
	heads := make(map[int][]int)
	for i, f := range p.Funcs {
		heads[f.Entry] = append(heads[f.Entry], i)
	}
	for pc, in := range p.Code {
		for _, fi := range heads[pc] {
			f := p.Funcs[fi]
			marker := ""
			if fi == p.Entry {
				marker = " (entry)"
			}
			fmt.Fprintf(&sb, "\n%s(%d args)%s:\n", f.Name, f.NArgs, marker)
		}
		fmt.Fprintf(&sb, "%6d  %s\n", pc, in)
	}
	return sb.String()
}
