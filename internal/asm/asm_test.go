package asm_test

import (
	"strings"
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/vm"
)

// runMain executes a built program's single thread to completion and
// returns its exit value.
func runMain(t *testing.T, b *asm.Builder) vm.Word {
	t.Helper()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(prog, nil, nil)
	for steps := 0; !m.Done(); steps++ {
		if steps > 1_000_000 {
			t.Fatalf("livelock:\n%s", m.DescribeState())
		}
		for _, th := range m.Threads {
			if th.Status.Live() {
				m.Step(th)
			}
		}
	}
	if m.FaultCount() != 0 {
		t.Fatalf("guest faults: %v", m.Faults())
	}
	return m.Threads[0].ExitVal
}

func TestWhileLoop(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	i, sum, c := f.Reg(), f.Reg(), f.Reg()
	f.Movi(i, 0)
	f.Movi(sum, 0)
	f.While(func() asm.Reg { f.Slti(c, i, 10); return c }, func() {
		f.Add(sum, sum, i)
		f.Addi(i, i, 1)
	})
	f.Halt(sum)
	if got := runMain(t, b); got != 45 {
		t.Fatalf("while sum = %d, want 45", got)
	}
}

func TestNestedForLoops(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	i, j, cnt := f.Reg(), f.Reg(), f.Reg()
	lim := f.Const(7)
	f.Movi(cnt, 0)
	f.Movi(i, 0)
	f.ForLt(i, lim, func() {
		f.Movi(j, 0)
		f.ForLtImm(j, 5, func() {
			f.Addi(cnt, cnt, 1)
		})
	})
	f.Halt(cnt)
	if got := runMain(t, b); got != 35 {
		t.Fatalf("nested loops = %d, want 35", got)
	}
}

func TestIfElseBothArms(t *testing.T) {
	for _, cond := range []vm.Word{0, 1} {
		b := asm.NewBuilder("t")
		f := b.Func("main", 0)
		c, out := f.Reg(), f.Reg()
		f.Movi(c, cond)
		f.IfElse(c,
			func() { f.Movi(out, 100) },
			func() { f.Movi(out, 200) },
		)
		f.Halt(out)
		want := vm.Word(200)
		if cond != 0 {
			want = 100
		}
		if got := runMain(t, b); got != want {
			t.Fatalf("IfElse(%d) = %d, want %d", cond, got, want)
		}
	}
}

func TestIfNzIfZ(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	c, out := f.Reg(), f.Reg()
	f.Movi(out, 0)
	f.Movi(c, 1)
	f.IfNz(c, func() { f.Addi(out, out, 1) })
	f.IfZ(c, func() { f.Addi(out, out, 10) })
	f.Movi(c, 0)
	f.IfNz(c, func() { f.Addi(out, out, 100) })
	f.IfZ(c, func() { f.Addi(out, out, 1000) })
	f.Halt(out)
	if got := runMain(t, b); got != 1001 {
		t.Fatalf("got %d, want 1001", got)
	}
}

func TestDataSegmentLayout(t *testing.T) {
	b := asm.NewBuilder("t")
	a1 := b.Words(10, 20, 30)
	a2 := b.Zeros(5)
	strAddr, strLen := b.Str("hi")
	if a2 != a1+3 || strAddr != a2+5 || strLen != 2 {
		t.Fatalf("layout: a1=%d a2=%d str=%d/%d", a1, a2, strAddr, strLen)
	}
	f := b.Func("main", 0)
	base, v, sum := f.Reg(), f.Reg(), f.Reg()
	f.Movi(base, a1)
	f.Ld(v, base, 1)
	f.Mov(sum, v) // 20
	f.Movi(base, strAddr)
	f.Ld(v, base, 0)
	f.Add(sum, sum, v) // + 'h' (104)
	f.Halt(sum)
	if got := runMain(t, b); got != 124 {
		t.Fatalf("got %d, want 124", got)
	}
	if b.DataLen() != 3+5+2 {
		t.Fatalf("DataLen = %d", b.DataLen())
	}
}

func TestBuildErrors(t *testing.T) {
	// Undefined label.
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	f.Jump("nowhere")
	f.HaltImm(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("err = %v", err)
	}

	// Undefined call target.
	b = asm.NewBuilder("t")
	f = b.Func("main", 0)
	f.Call("ghost")
	f.HaltImm(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("err = %v", err)
	}

	// Duplicate function.
	b = asm.NewBuilder("t")
	b.Func("main", 0).HaltImm(0)
	b.Func("main", 0).HaltImm(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Fatalf("err = %v", err)
	}

	// Duplicate label.
	b = asm.NewBuilder("t")
	f = b.Func("main", 0)
	f.Label("x")
	f.Label("x")
	f.HaltImm(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("err = %v", err)
	}

	// Bad entry.
	b = asm.NewBuilder("t")
	b.Func("main", 0).HaltImm(0)
	b.SetEntry("nope")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "entry function") {
		t.Fatalf("err = %v", err)
	}

	// Empty program.
	if _, err := asm.NewBuilder("t").Build(); err == nil {
		t.Fatal("empty program built")
	}

	// Too many args.
	b = asm.NewBuilder("t")
	b.Func("huge", 9).HaltImm(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterExhaustion(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	for i := 0; i < 80; i++ {
		f.Reg()
	}
	f.HaltImm(0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "out of registers") {
		t.Fatalf("err = %v", err)
	}
}

func TestArgOutOfRange(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main", 1)
	f.Arg(3)
	f.HaltImm(0)
	if _, err := b.Build(); err == nil {
		t.Fatal("Arg out of range not reported")
	}
}

func TestMultiFunctionLabelIsolation(t *testing.T) {
	// The same label name in two functions must not collide.
	b := asm.NewBuilder("t")
	g := b.Func("g", 0)
	g.Label("top")
	g.RetImm(7)
	f := b.Func("main", 0)
	f.Label("top")
	f.Call("g")
	f.Halt(asm.RetReg)
	b.SetEntry("main")
	if got := runMain(t, b); got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestDisassembleListsFunctions(t *testing.T) {
	b := asm.NewBuilder("prog")
	g := b.Func("helper", 2)
	g.RetImm(0)
	f := b.Func("main", 0)
	f.HaltImm(0)
	b.SetEntry("main")
	prog := b.MustBuild()
	dis := asm.Disassemble(prog)
	for _, want := range []string{"helper(2 args)", "main(0 args) (entry)", "halt", "ret"} {
		if !strings.Contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	f.Jump("missing")
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	b.MustBuild()
}

func TestConstAndRegs(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	rs := f.Regs(3)
	c := f.Const(5)
	f.Add(rs[0], c, c)
	f.Add(rs[1], rs[0], c)
	f.Add(rs[2], rs[1], rs[0])
	f.Halt(rs[2]) // 10+5+10 = 25
	if got := runMain(t, b); got != 25 {
		t.Fatalf("got %d, want 25", got)
	}
}
