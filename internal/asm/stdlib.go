package asm

// InstallStdlib defines the guest runtime library in b: a set of callable
// routines ("std.memcpy", "std.memset", "std.memcmp", "std.sum", "std.max",
// "std.fill_lcg", "std.checksum", "std.bsearch") that workloads and user
// programs can Call by name. Install it once, before Build; the routines
// are plain guest functions, so they are recorded, replayed, timesliced,
// and interrupted by signals like any other guest code.
func InstallStdlib(b *Builder) {
	// std.memcpy(dst, src, n): copies n words; returns dst.
	{
		f := b.Func("std.memcpy", 3)
		dst, src, n := f.Arg(0), f.Arg(1), f.Arg(2)
		i, v := f.Reg(), f.Reg()
		f.Movi(i, 0)
		f.ForLt(i, n, func() {
			f.Ldx(v, src, i)
			f.Stx(dst, i, v)
		})
		f.Ret(dst)
	}

	// std.memset(dst, val, n): stores val into n words; returns dst.
	{
		f := b.Func("std.memset", 3)
		dst, val, n := f.Arg(0), f.Arg(1), f.Arg(2)
		i := f.Reg()
		f.Movi(i, 0)
		f.ForLt(i, n, func() {
			f.Stx(dst, i, val)
		})
		f.Ret(dst)
	}

	// std.memcmp(a, b, n): returns the index of the first differing word,
	// or -1 if the ranges are equal.
	{
		f := b.Func("std.memcmp", 3)
		a, bb, n := f.Arg(0), f.Arg(1), f.Arg(2)
		i, x, y, c, out := f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()
		f.Movi(out, -1)
		f.Movi(i, 0)
		done := f.NewLabel()
		f.ForLt(i, n, func() {
			f.Ldx(x, a, i)
			f.Ldx(y, bb, i)
			f.Sne(c, x, y)
			f.IfNz(c, func() {
				f.Mov(out, i)
				f.Jump(done)
			})
		})
		f.Label(done)
		f.Ret(out)
	}

	// std.sum(base, n): returns the sum of n words.
	{
		f := b.Func("std.sum", 2)
		base, n := f.Arg(0), f.Arg(1)
		i, v, s := f.Reg(), f.Reg(), f.Reg()
		f.Movi(s, 0)
		f.Movi(i, 0)
		f.ForLt(i, n, func() {
			f.Ldx(v, base, i)
			f.Add(s, s, v)
		})
		f.Ret(s)
	}

	// std.max(base, n): returns the maximum of n words (n must be >= 1).
	{
		f := b.Func("std.max", 2)
		base, n := f.Arg(0), f.Arg(1)
		i, v, m, c := f.Reg(), f.Reg(), f.Reg(), f.Reg()
		f.Ld(m, base, 0)
		f.Movi(i, 1)
		f.ForLt(i, n, func() {
			f.Ldx(v, base, i)
			f.Slt(c, m, v)
			f.IfNz(c, func() { f.Mov(m, v) })
		})
		f.Ret(m)
	}

	// std.fill_lcg(base, n, seed): fills n words from a 64-bit LCG stream;
	// returns the final generator state, so calls can be chained.
	{
		f := b.Func("std.fill_lcg", 3)
		base, n, x := f.Arg(0), f.Arg(1), f.Arg(2)
		i, v := f.Reg(), f.Reg()
		f.Movi(i, 0)
		f.ForLt(i, n, func() {
			f.Muli(x, x, 6364136223846793005)
			f.Addi(x, x, 1442695040888963407)
			f.Shri(v, x, 17)
			f.Andi(v, v, (1<<40)-1)
			f.Stx(base, i, v)
		})
		f.Ret(x)
	}

	// std.checksum(base, n): order-dependent checksum of n words.
	{
		f := b.Func("std.checksum", 2)
		base, n := f.Arg(0), f.Arg(1)
		i, v, h, t := f.Reg(), f.Reg(), f.Reg(), f.Reg()
		f.Movi(h, 1469598103934665603)
		f.Movi(i, 0)
		f.ForLt(i, n, func() {
			f.Ldx(v, base, i)
			f.Xor(h, h, v)
			f.Muli(h, h, 1099511628211)
			f.Shri(t, h, 29)
			f.Xor(h, h, t)
		})
		f.Ret(h)
	}

	// std.bsearch(base, n, key): binary search over n ascending words;
	// returns an index holding key, or -1.
	{
		f := b.Func("std.bsearch", 3)
		base, n, key := f.Arg(0), f.Arg(1), f.Arg(2)
		lo, hi, mid, v, c, out := f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg(), f.Reg()
		f.Movi(out, -1)
		f.Movi(lo, 0)
		f.Mov(hi, n)
		done := f.NewLabel()
		f.While(func() Reg { f.Slt(c, lo, hi); return c }, func() {
			f.Add(mid, lo, hi)
			f.Shri(mid, mid, 1)
			f.Ldx(v, base, mid)
			f.Seq(c, v, key)
			f.IfNz(c, func() {
				f.Mov(out, mid)
				f.Jump(done)
			})
			f.Slt(c, v, key)
			f.IfElse(c,
				func() { f.Addi(lo, mid, 1) },
				func() { f.Mov(hi, mid) },
			)
		})
		f.Label(done)
		f.Ret(out)
	}
}

// Stdlib function name constants, for Call sites.
const (
	StdMemcpy   = "std.memcpy"
	StdMemset   = "std.memset"
	StdMemcmp   = "std.memcmp"
	StdSum      = "std.sum"
	StdMax      = "std.max"
	StdFillLCG  = "std.fill_lcg"
	StdChecksum = "std.checksum"
	StdBsearch  = "std.bsearch"
)
