package asm_test

import (
	"strings"
	"testing"

	"doubleplay/internal/asm"
)

func buildUnbalanced(verify bool) (*asm.Builder, error) {
	b := asm.NewBuilder("bad")
	b.SetVerify(verify)
	f := b.Func("main", 0)
	f.UnlockR(f.Const(3)) // released but never acquired: error-severity
	f.HaltImm(0)
	_, err := b.Build()
	return b, err
}

func TestBuilderVerifyRejectsErrors(t *testing.T) {
	if _, err := buildUnbalanced(false); err != nil {
		t.Fatalf("unverified build must succeed, got %v", err)
	}
	_, err := buildUnbalanced(true)
	if err == nil {
		t.Fatal("verified build accepted an unbalanced unlock")
	}
	if !strings.Contains(err.Error(), "verify") || !strings.Contains(err.Error(), "unbalanced-lock") {
		t.Fatalf("unhelpful verify error: %v", err)
	}
}

func TestBuilderVerifyAcceptsWarnings(t *testing.T) {
	b := asm.NewBuilder("warn")
	b.SetVerify(true)
	f := b.Func("main", 0)
	r := f.Reg()
	f.Movi(r, 1) // dead store: warning severity only
	f.Movi(r, 2)
	f.Halt(r)
	if _, err := b.Build(); err != nil {
		t.Fatalf("warnings must not fail a verified build: %v", err)
	}
}

func TestListingAndContext(t *testing.T) {
	b := asm.NewBuilder("t")
	f := b.Func("main", 0)
	i := f.Reg()
	f.Movi(i, 0)
	f.ForLtImm(i, 3, func() {})
	f.HaltImm(0)
	g := b.Func("helper", 1)
	g.RetImm(0)
	prog := b.MustBuild()

	lst := asm.Listing(prog, map[int][]string{1: {"loop head"}})
	for _, want := range []string{"main(0 args) (entry):", "helper(1 args):", "jmp L", "; ^ loop head", "halt"} {
		if !strings.Contains(lst, want) {
			t.Fatalf("listing lacks %q:\n%s", want, lst)
		}
	}
	if lst != asm.Listing(prog, map[int][]string{1: {"loop head"}}) {
		t.Fatal("listing not deterministic")
	}

	ctx := asm.Context(prog, 2, 1)
	if !strings.Contains(ctx, "-> ") {
		t.Fatalf("context lacks the pc marker:\n%s", ctx)
	}
	if got := strings.Count(ctx, "\n"); got > 3 {
		t.Fatalf("context radius 1 printed %d lines:\n%s", got, ctx)
	}
}
