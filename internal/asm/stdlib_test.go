package asm_test

import (
	"math/rand"
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/vm"
)

// stdProg builds a program with the stdlib installed and a main emitted by
// body; it returns main's exit value.
func stdProg(t *testing.T, data []vm.Word, body func(f *asm.Func, base asm.Reg)) vm.Word {
	t.Helper()
	b := asm.NewBuilder("std")
	addr := b.Words(data...)
	asm.InstallStdlib(b)
	f := b.Func("main", 0)
	base := f.Const(addr)
	body(f, base)
	b.SetEntry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := vm.NewMachine(prog, nil, nil)
	for steps := 0; !m.Done(); steps++ {
		if steps > 5_000_000 {
			t.Fatal("livelock")
		}
		m.Step(m.Threads[0])
	}
	if m.FaultCount() != 0 {
		t.Fatalf("faults: %v", m.Faults())
	}
	return m.Threads[0].ExitVal
}

func TestStdMemcpyMemcmp(t *testing.T) {
	got := stdProg(t, []vm.Word{5, 6, 7, 0, 0, 0}, func(f *asm.Func, base asm.Reg) {
		dst, n := f.Reg(), f.Const(3)
		f.Addi(dst, base, 3)
		f.Call(asm.StdMemcpy, dst, base, n)
		f.Call(asm.StdMemcmp, base, dst, n)
		f.Halt(asm.RetReg) // -1: equal
	})
	if got != -1 {
		t.Fatalf("memcmp after memcpy = %d, want -1", got)
	}

	got = stdProg(t, []vm.Word{5, 6, 7, 5, 9, 7}, func(f *asm.Func, base asm.Reg) {
		other, n := f.Reg(), f.Const(3)
		f.Addi(other, base, 3)
		f.Call(asm.StdMemcmp, base, other, n)
		f.Halt(asm.RetReg)
	})
	if got != 1 {
		t.Fatalf("memcmp first-diff index = %d, want 1", got)
	}
}

func TestStdMemsetSumMax(t *testing.T) {
	got := stdProg(t, make([]vm.Word, 10), func(f *asm.Func, base asm.Reg) {
		val, n := f.Const(7), f.Const(10)
		f.Call(asm.StdMemset, base, val, n)
		f.Call(asm.StdSum, base, n)
		sum := f.Reg()
		f.Mov(sum, asm.RetReg)
		f.Call(asm.StdMax, base, n)
		f.Add(sum, sum, asm.RetReg)
		f.Halt(sum) // 70 + 7
	})
	if got != 77 {
		t.Fatalf("memset/sum/max = %d, want 77", got)
	}
}

func TestStdFillLCGDeterministic(t *testing.T) {
	run := func() vm.Word {
		return stdProg(t, make([]vm.Word, 32), func(f *asm.Func, base asm.Reg) {
			n, seed := f.Const(32), f.Const(99)
			f.Call(asm.StdFillLCG, base, n, seed)
			f.Call(asm.StdChecksum, base, n)
			f.Halt(asm.RetReg)
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("fill_lcg not deterministic")
	}
	// Different seed, different contents.
	c := stdProg(t, make([]vm.Word, 32), func(f *asm.Func, base asm.Reg) {
		n, seed := f.Const(32), f.Const(100)
		f.Call(asm.StdFillLCG, base, n, seed)
		f.Call(asm.StdChecksum, base, n)
		f.Halt(asm.RetReg)
	})
	if a == c {
		t.Fatal("different seeds, same stream")
	}
}

func TestStdBsearchMatchesHost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]vm.Word, 40)
	v := vm.Word(0)
	for i := range data {
		v += vm.Word(1 + rng.Intn(5))
		data[i] = v
	}
	hostSearch := func(key vm.Word) vm.Word {
		for i, d := range data {
			if d == key {
				return vm.Word(i)
			}
		}
		return -1
	}
	for trial := 0; trial < 12; trial++ {
		key := data[rng.Intn(len(data))]
		if trial%3 == 0 {
			key++ // often absent
		}
		got := stdProg(t, data, func(f *asm.Func, base asm.Reg) {
			n, k := f.Const(vm.Word(len(data))), f.Const(key)
			f.Call(asm.StdBsearch, base, n, k)
			f.Halt(asm.RetReg)
		})
		want := hostSearch(key)
		// Any index holding the key is acceptable; with strictly
		// increasing data the index is unique, so compare directly.
		if got != want {
			t.Fatalf("bsearch(%d) = %d, want %d", key, got, want)
		}
	}
}

func TestStdChecksumOrderSensitive(t *testing.T) {
	a := stdProg(t, []vm.Word{1, 2, 3}, func(f *asm.Func, base asm.Reg) {
		n := f.Const(3)
		f.Call(asm.StdChecksum, base, n)
		f.Halt(asm.RetReg)
	})
	b := stdProg(t, []vm.Word{3, 2, 1}, func(f *asm.Func, base asm.Reg) {
		n := f.Const(3)
		f.Call(asm.StdChecksum, base, n)
		f.Halt(asm.RetReg)
	})
	if a == b {
		t.Fatal("checksum is order-insensitive")
	}
}
