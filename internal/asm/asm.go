// Package asm is the program builder for the simulator's ISA: a structured
// assembler with functions, labels, register allocation, data-segment
// layout, and control-flow helpers (While/ForLt/IfElse). All guest
// workloads in this repository are authored against this package and
// compiled to vm.Program images.
package asm

import (
	"fmt"

	"doubleplay/internal/analyze"
	"doubleplay/internal/vm"
)

// Word aliases the guest word type.
type Word = vm.Word

// Reg names a guest register. r0 is the call return value; a callee's
// arguments arrive in r1..r6; r9 and up are allocatable temporaries. The
// top registers stage call/syscall arguments: CALL and SYS read their
// arguments from r58..r63, so emitting a call never disturbs the caller's
// own registers (including its incoming arguments).
type Reg uint8

const (
	// RetReg receives function results.
	RetReg Reg = 0
	// firstTemp is the first allocatable register.
	firstTemp = 9
	// stageBase..stageBase+5 stage call/syscall arguments.
	stageBase = vm.ArgStageBase
)

// DefaultDataBase is where the data segment is loaded unless overridden.
const DefaultDataBase Word = 1 << 20

// Builder accumulates functions and data and produces a vm.Program.
type Builder struct {
	name     string
	funcs    []*Func
	byName   map[string]*Func
	data     []Word
	dataBase Word
	entry    string
	verify   bool
	errs     []error
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]*Func), dataBase: DefaultDataBase}
}

// SetEntry selects the main function by name; defaults to the first
// function defined.
func (b *Builder) SetEntry(name string) { b.entry = name }

// SetVerify opts the builder into static verification: Build runs the
// analyzer (internal/analyze) on the laid-out program and fails on any
// error-severity finding — out-of-function branches, unlock of a lock no
// path holds, falling off a function end, and the like. Warnings (race
// candidates, dead stores) never fail a build.
func (b *Builder) SetVerify(on bool) { b.verify = on }

// errf records a build error; Build reports the first one.
func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Words appends values to the data segment and returns their guest address.
func (b *Builder) Words(vals ...Word) Word {
	addr := b.dataBase + Word(len(b.data))
	b.data = append(b.data, vals...)
	return addr
}

// Zeros reserves n zeroed words in the data segment.
func (b *Builder) Zeros(n int) Word {
	addr := b.dataBase + Word(len(b.data))
	b.data = append(b.data, make([]Word, n)...)
	return addr
}

// Str stores a string one character per word and returns (address, length).
func (b *Builder) Str(s string) (Word, Word) {
	addr := b.dataBase + Word(len(b.data))
	for i := 0; i < len(s); i++ {
		b.data = append(b.data, Word(s[i]))
	}
	return addr, Word(len(s))
}

// DataLen returns the current data segment length in words.
func (b *Builder) DataLen() int { return len(b.data) }

// Func begins a function with nargs arguments (available as Arg(0..n-1)).
func (b *Builder) Func(name string, nargs int) *Func {
	if _, dup := b.byName[name]; dup {
		b.errf("asm: duplicate function %q", name)
	}
	if nargs > vm.MaxArgs {
		b.errf("asm: function %q has %d args; max %d", name, nargs, vm.MaxArgs)
	}
	f := &Func{
		b:       b,
		name:    name,
		nargs:   nargs,
		labels:  make(map[string]int),
		nextReg: firstTemp,
	}
	b.funcs = append(b.funcs, f)
	b.byName[name] = f
	return f
}

type labelFixup struct {
	idx   int // instruction index within the function
	label string
}

type callFixup struct {
	idx int
	fn  string
}

// Func is a function under construction.
type Func struct {
	b       *Builder
	name    string
	nargs   int
	code    []vm.Instr
	labels  map[string]int
	lfix    []labelFixup
	cfix    []callFixup
	nextReg int
	nlabels int
	closed  bool
}

// Name returns the function's name.
func (f *Func) Name() string { return f.name }

// Arg returns the register holding argument i.
func (f *Func) Arg(i int) Reg {
	if i < 0 || i >= f.nargs {
		f.b.errf("asm: %s: Arg(%d) of %d-arg function", f.name, i, f.nargs)
		return RetReg
	}
	return Reg(1 + i)
}

// Reg allocates a fresh temporary register.
func (f *Func) Reg() Reg {
	if f.nextReg >= stageBase {
		f.b.errf("asm: %s: out of registers", f.name)
		return Reg(stageBase - 1)
	}
	r := Reg(f.nextReg)
	f.nextReg++
	return r
}

// Regs allocates n fresh temporaries.
func (f *Func) Regs(n int) []Reg {
	out := make([]Reg, n)
	for i := range out {
		out[i] = f.Reg()
	}
	return out
}

// Const allocates a register and loads an immediate into it.
func (f *Func) Const(v Word) Reg {
	r := f.Reg()
	f.Movi(r, v)
	return r
}

func (f *Func) emit(in vm.Instr) int {
	f.code = append(f.code, in)
	return len(f.code) - 1
}

// Label defines a named position at the current point.
func (f *Func) Label(name string) {
	if _, dup := f.labels[name]; dup {
		f.b.errf("asm: %s: duplicate label %q", f.name, name)
	}
	f.labels[name] = len(f.code)
}

// NewLabel generates a unique label name without defining it.
func (f *Func) NewLabel() string {
	f.nlabels++
	return fmt.Sprintf(".L%d", f.nlabels)
}

// --- data movement and arithmetic -----------------------------------------

func (f *Func) Movi(d Reg, v Word) { f.emit(vm.Instr{Op: vm.OpMovi, A: uint8(d), Imm: v}) }
func (f *Func) Mov(d, s Reg)       { f.emit(vm.Instr{Op: vm.OpMov, A: uint8(d), B: uint8(s)}) }

func (f *Func) bin(op vm.Opcode, d, a, b Reg) {
	f.emit(vm.Instr{Op: op, A: uint8(d), B: uint8(a), C: uint8(b)})
}
func (f *Func) binImm(op vm.Opcode, d, a Reg, v Word) {
	f.emit(vm.Instr{Op: op, A: uint8(d), B: uint8(a), Imm: v})
}

func (f *Func) Add(d, a, b Reg) { f.bin(vm.OpAdd, d, a, b) }
func (f *Func) Sub(d, a, b Reg) { f.bin(vm.OpSub, d, a, b) }
func (f *Func) Mul(d, a, b Reg) { f.bin(vm.OpMul, d, a, b) }
func (f *Func) Div(d, a, b Reg) { f.bin(vm.OpDiv, d, a, b) }
func (f *Func) Mod(d, a, b Reg) { f.bin(vm.OpMod, d, a, b) }
func (f *Func) And(d, a, b Reg) { f.bin(vm.OpAnd, d, a, b) }
func (f *Func) Or(d, a, b Reg)  { f.bin(vm.OpOr, d, a, b) }
func (f *Func) Xor(d, a, b Reg) { f.bin(vm.OpXor, d, a, b) }
func (f *Func) Shl(d, a, b Reg) { f.bin(vm.OpShl, d, a, b) }
func (f *Func) Shr(d, a, b Reg) { f.bin(vm.OpShr, d, a, b) }

func (f *Func) Addi(d, a Reg, v Word) { f.binImm(vm.OpAddi, d, a, v) }
func (f *Func) Muli(d, a Reg, v Word) { f.binImm(vm.OpMuli, d, a, v) }
func (f *Func) Divi(d, a Reg, v Word) { f.binImm(vm.OpDivi, d, a, v) }
func (f *Func) Modi(d, a Reg, v Word) { f.binImm(vm.OpModi, d, a, v) }
func (f *Func) Andi(d, a Reg, v Word) { f.binImm(vm.OpAndi, d, a, v) }
func (f *Func) Ori(d, a Reg, v Word)  { f.binImm(vm.OpOri, d, a, v) }
func (f *Func) Xori(d, a Reg, v Word) { f.binImm(vm.OpXori, d, a, v) }
func (f *Func) Shli(d, a Reg, v Word) { f.binImm(vm.OpShli, d, a, v) }
func (f *Func) Shri(d, a Reg, v Word) { f.binImm(vm.OpShri, d, a, v) }

func (f *Func) Neg(d, a Reg) { f.emit(vm.Instr{Op: vm.OpNeg, A: uint8(d), B: uint8(a)}) }
func (f *Func) Not(d, a Reg) { f.emit(vm.Instr{Op: vm.OpNot, A: uint8(d), B: uint8(a)}) }

func (f *Func) Slt(d, a, b Reg) { f.bin(vm.OpSlt, d, a, b) }
func (f *Func) Sle(d, a, b Reg) { f.bin(vm.OpSle, d, a, b) }
func (f *Func) Seq(d, a, b Reg) { f.bin(vm.OpSeq, d, a, b) }
func (f *Func) Sne(d, a, b Reg) { f.bin(vm.OpSne, d, a, b) }

func (f *Func) Slti(d, a Reg, v Word) { f.binImm(vm.OpSlti, d, a, v) }
func (f *Func) Slei(d, a Reg, v Word) { f.binImm(vm.OpSlei, d, a, v) }
func (f *Func) Seqi(d, a Reg, v Word) { f.binImm(vm.OpSeqi, d, a, v) }
func (f *Func) Snei(d, a Reg, v Word) { f.binImm(vm.OpSnei, d, a, v) }

// --- memory ----------------------------------------------------------------

// Ld loads d = mem[base+off].
func (f *Func) Ld(d, base Reg, off Word) {
	f.emit(vm.Instr{Op: vm.OpLd, A: uint8(d), B: uint8(base), Imm: off})
}

// St stores mem[base+off] = src.
func (f *Func) St(base Reg, off Word, src Reg) {
	f.emit(vm.Instr{Op: vm.OpSt, A: uint8(src), B: uint8(base), Imm: off})
}

// Ldx loads d = mem[base+idx].
func (f *Func) Ldx(d, base, idx Reg) {
	f.emit(vm.Instr{Op: vm.OpLdx, A: uint8(d), B: uint8(base), C: uint8(idx)})
}

// Stx stores mem[base+idx] = src.
func (f *Func) Stx(base, idx, src Reg) {
	f.emit(vm.Instr{Op: vm.OpStx, A: uint8(src), B: uint8(base), C: uint8(idx)})
}

// --- synchronisation and threads -------------------------------------------

func (f *Func) LockR(id Reg)   { f.emit(vm.Instr{Op: vm.OpLock, A: uint8(id)}) }
func (f *Func) UnlockR(id Reg) { f.emit(vm.Instr{Op: vm.OpUnlock, A: uint8(id)}) }

// Barrier emits an arrive/wait pair: the thread announces arrival at
// barrier id, then blocks until count threads have arrived. A scratch
// register is allocated once per call site to carry the awaited generation.
func (f *Func) Barrier(id, count Reg) {
	gen := f.Reg()
	f.emit(vm.Instr{Op: vm.OpBarArrive, A: uint8(gen), B: uint8(id), C: uint8(count)})
	f.emit(vm.Instr{Op: vm.OpBarWait, A: uint8(gen), B: uint8(id)})
}

// Cas performs d = CAS(mem[addr], old, new).
func (f *Func) Cas(d, addr, old, new Reg) {
	f.emit(vm.Instr{Op: vm.OpCas, A: uint8(d), B: uint8(addr), C: uint8(old), D: uint8(new)})
}

// Fadd performs d = fetch-and-add(mem[addr], delta).
func (f *Func) Fadd(d, addr, delta Reg) {
	f.emit(vm.Instr{Op: vm.OpFadd, A: uint8(d), B: uint8(addr), C: uint8(delta)})
}

// Spawn starts fn in a new thread with its r1 = arg; d receives the tid.
func (f *Func) Spawn(d Reg, fn string, arg Reg) {
	idx := f.emit(vm.Instr{Op: vm.OpSpawn, A: uint8(d), B: uint8(arg)})
	f.cfix = append(f.cfix, callFixup{idx: idx, fn: fn})
}

// Join blocks until thread d exits; d receives its exit value.
func (f *Func) Join(d Reg) { f.emit(vm.Instr{Op: vm.OpJoin, A: uint8(d)}) }

// Tid sets d to the current thread id.
func (f *Func) Tid(d Reg) { f.emit(vm.Instr{Op: vm.OpTid, A: uint8(d)}) }

// SigHandler installs fn as this thread's asynchronous signal handler. The
// handler runs with the signal number in Arg(0) and returns with Ret; the
// interrupted context resumes exactly. Spawned children inherit the
// handler.
func (f *Func) SigHandler(fn string) {
	idx := f.emit(vm.Instr{Op: vm.OpSigH})
	f.cfix = append(f.cfix, callFixup{idx: idx, fn: fn})
}

// --- calls, syscalls, control ----------------------------------------------

// stage moves argument values into the staging registers the machine reads
// call and syscall arguments from. Caller registers r1..r6 are untouched.
func (f *Func) stage(args []Reg) {
	if len(args) > vm.MaxArgs {
		f.b.errf("asm: %s: too many arguments (%d)", f.name, len(args))
		return
	}
	for i, a := range args {
		f.Mov(Reg(stageBase+i), a)
	}
}

// Call invokes fn with the given arguments; the result is in r0 (RetReg).
func (f *Func) Call(fn string, args ...Reg) {
	f.stage(args)
	idx := f.emit(vm.Instr{Op: vm.OpCall})
	f.cfix = append(f.cfix, callFixup{idx: idx, fn: fn})
}

// Sys issues syscall num with the given arguments; the result is in r0.
func (f *Func) Sys(num Word, args ...Reg) {
	f.stage(args)
	f.emit(vm.Instr{Op: vm.OpSys, Imm: num})
}

// Ret returns r to the caller.
func (f *Func) Ret(r Reg) { f.emit(vm.Instr{Op: vm.OpRet, A: uint8(r)}) }

// RetImm returns a constant.
func (f *Func) RetImm(v Word) {
	f.Movi(Reg(stageBase), v)
	f.Ret(Reg(stageBase))
}

// Halt exits the thread with value r.
func (f *Func) Halt(r Reg) { f.emit(vm.Instr{Op: vm.OpHalt, A: uint8(r)}) }

// HaltImm exits the thread with a constant value.
func (f *Func) HaltImm(v Word) {
	f.Movi(Reg(stageBase), v)
	f.Halt(Reg(stageBase))
}

// Jump emits an unconditional jump to label.
func (f *Func) Jump(label string) {
	idx := f.emit(vm.Instr{Op: vm.OpJmp})
	f.lfix = append(f.lfix, labelFixup{idx: idx, label: label})
}

// Jz jumps to label when r == 0.
func (f *Func) Jz(r Reg, label string) {
	idx := f.emit(vm.Instr{Op: vm.OpJz, A: uint8(r)})
	f.lfix = append(f.lfix, labelFixup{idx: idx, label: label})
}

// Jnz jumps to label when r != 0.
func (f *Func) Jnz(r Reg, label string) {
	idx := f.emit(vm.Instr{Op: vm.OpJnz, A: uint8(r)})
	f.lfix = append(f.lfix, labelFixup{idx: idx, label: label})
}

// --- structured control flow ------------------------------------------------

// While runs body while the register returned by cond is non-zero. cond is
// re-emitted at the top of every iteration.
func (f *Func) While(cond func() Reg, body func()) {
	top, end := f.NewLabel(), f.NewLabel()
	f.Label(top)
	c := cond()
	f.Jz(c, end)
	body()
	f.Jump(top)
	f.Label(end)
}

// ForLt runs body while i < limit, incrementing i by 1 after each
// iteration. i must be initialised by the caller.
func (f *Func) ForLt(i, limit Reg, body func()) {
	top, end := f.NewLabel(), f.NewLabel()
	cmp := f.Reg()
	f.Label(top)
	f.Slt(cmp, i, limit)
	f.Jz(cmp, end)
	body()
	f.Addi(i, i, 1)
	f.Jump(top)
	f.Label(end)
}

// ForLtImm runs body for i from its current value while i < limit.
func (f *Func) ForLtImm(i Reg, limit Word, body func()) {
	top, end := f.NewLabel(), f.NewLabel()
	cmp := f.Reg()
	f.Label(top)
	f.Slti(cmp, i, limit)
	f.Jz(cmp, end)
	body()
	f.Addi(i, i, 1)
	f.Jump(top)
	f.Label(end)
}

// IfNz runs then when c != 0.
func (f *Func) IfNz(c Reg, then func()) {
	end := f.NewLabel()
	f.Jz(c, end)
	then()
	f.Label(end)
}

// IfZ runs then when c == 0.
func (f *Func) IfZ(c Reg, then func()) {
	end := f.NewLabel()
	f.Jnz(c, end)
	then()
	f.Label(end)
}

// IfElse branches on c.
func (f *Func) IfElse(c Reg, then, els func()) {
	elseL, end := f.NewLabel(), f.NewLabel()
	f.Jz(c, elseL)
	then()
	f.Jump(end)
	f.Label(elseL)
	els()
	f.Label(end)
}

// --- build -------------------------------------------------------------------

// Build lays out functions, resolves labels and call targets, and returns
// the executable program.
func (b *Builder) Build() (*vm.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.funcs) == 0 {
		return nil, fmt.Errorf("asm: program %q has no functions", b.name)
	}
	entryName := b.entry
	if entryName == "" {
		entryName = b.funcs[0].name
	}

	prog := &vm.Program{Name: b.name, Data: append([]Word(nil), b.data...), DataBase: b.dataBase}
	fnIndex := make(map[string]int, len(b.funcs))
	base := make([]int, len(b.funcs))
	for i, f := range b.funcs {
		fnIndex[f.name] = i
		base[i] = len(prog.Code)
		prog.Funcs = append(prog.Funcs, vm.FuncInfo{Name: f.name, Entry: len(prog.Code), NArgs: f.nargs})
		prog.Code = append(prog.Code, f.code...)
	}

	for i, f := range b.funcs {
		off := base[i]
		for _, fix := range f.lfix {
			target, ok := f.labels[fix.label]
			if !ok {
				return nil, fmt.Errorf("asm: %s: undefined label %q", f.name, fix.label)
			}
			prog.Code[off+fix.idx].Imm = Word(off + target)
		}
		for _, fix := range f.cfix {
			target, ok := fnIndex[fix.fn]
			if !ok {
				return nil, fmt.Errorf("asm: %s: call/spawn of undefined function %q", f.name, fix.fn)
			}
			prog.Code[off+fix.idx].Imm = Word(target)
		}
	}

	entry, ok := fnIndex[entryName]
	if !ok {
		return nil, fmt.Errorf("asm: entry function %q not defined", entryName)
	}
	prog.Entry = entry

	if b.verify {
		fs := analyze.Run(prog)
		for _, f := range fs.List {
			if f.Sev == analyze.SevError {
				return nil, fmt.Errorf("asm: verify %q: %s", b.name, f)
			}
		}
	}
	return prog, nil
}

// MustBuild builds or panics; intended for static workload definitions
// whose correctness is covered by tests.
func (b *Builder) MustBuild() *vm.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
