package dptrace

import (
	"bytes"
	"strings"
	"testing"

	"doubleplay/internal/trace"
)

// epochSpan builds one recording-style epoch span.
func epochSpan(idx int64, ts, dur int64, pid int64) trace.Event {
	return trace.Event{Name: "epoch", Ph: trace.PhaseComplete, Ts: ts, Dur: dur, Pid: pid,
		Args: map[string]any{"epoch": float64(idx), "syscalls": float64(2 + idx)}}
}

func TestStatsSynthetic(t *testing.T) {
	evs := []trace.Event{
		{Name: "process_name", Ph: trace.PhaseMeta, Pid: 1, Args: map[string]any{"name": "record x"}},
		{Name: "thread_name", Ph: trace.PhaseMeta, Pid: 1, Tid: 0, Args: map[string]any{"name": "epochs"}},
		epochSpan(0, 0, 100, 1),
		epochSpan(1, 100, 150, 1),
		{Name: "sync", Ph: trace.PhaseInstant, Ts: 42, Pid: 1, Tid: 0},
		{Name: "log.syscalls", Ph: trace.PhaseCounter, Ts: 100, Pid: 1, Tid: 0,
			Args: map[string]any{"value": float64(7)}},
		{Name: "slice", Ph: trace.PhaseComplete, Ts: 10, Dur: 20, Pid: 2, Tid: 3},
	}
	rep := Stats(evs)
	if rep.Events != len(evs) {
		t.Fatalf("Events = %d", rep.Events)
	}
	if len(rep.Tracks) != 2 {
		t.Fatalf("tracks = %d, want 2", len(rep.Tracks))
	}
	tr0 := rep.Tracks[0]
	if tr0.Pid != 1 || tr0.Process != "record x" || tr0.Thread != "epochs" {
		t.Fatalf("track 0 = %+v", tr0)
	}
	if tr0.Spans != 2 || tr0.SpanCycles != 250 || tr0.Instants != 1 || tr0.CounterSamp != 1 {
		t.Fatalf("track 0 counts = %+v", tr0)
	}
	if tr0.FirstTs != 0 || tr0.LastTs != 250 {
		t.Fatalf("track 0 span = %d..%d", tr0.FirstTs, tr0.LastTs)
	}
	if rep.NameCount["epoch"] != 2 || rep.NameCount["process_name"] != 0 {
		t.Fatalf("name counts = %v", rep.NameCount)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	for _, want := range []string{"events: 7", "record x", "epoch", "slice"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestEpochsExtraction(t *testing.T) {
	evs := []trace.Event{
		epochSpan(1, 100, 150, 1),
		epochSpan(0, 0, 100, 1),
		{Name: "divergence", Ph: trace.PhaseInstant, Ts: 260, Pid: 1,
			Args: map[string]any{"epoch": float64(1), "kind": "state"}},
		{Name: "sync", Ph: trace.PhaseInstant, Ts: 1, Pid: 2, Tid: 0}, // no epoch arg: ignored
	}
	eps := Epochs(evs)
	if len(eps) != 2 {
		t.Fatalf("epochs = %d", len(eps))
	}
	if eps[0].Index != 0 || eps[1].Index != 1 {
		t.Fatalf("not sorted by index: %+v", eps)
	}
	if eps[1].Cycles != 150 || eps[1].Divergences != 1 || eps[1].Syscalls != 3 {
		t.Fatalf("epoch 1 = %+v", eps[1])
	}
	if eps[0].Divergences != 0 {
		t.Fatalf("epoch 0 = %+v", eps[0])
	}
}

func TestDiffIdentical(t *testing.T) {
	a := []trace.Event{epochSpan(0, 0, 100, 1), epochSpan(1, 100, 150, 1)}
	rep := Diff("a", a, "b", a)
	if rep.FirstDivergent != -1 {
		t.Fatalf("identical traces diverge at %d", rep.FirstDivergent)
	}
	if rep.TotalA != 250 || rep.TotalB != 250 {
		t.Fatalf("totals %d %d", rep.TotalA, rep.TotalB)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "timelines agree") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

func TestDiffDivergentAndMissing(t *testing.T) {
	a := []trace.Event{epochSpan(0, 0, 100, 1), epochSpan(1, 100, 150, 1), epochSpan(2, 250, 80, 1)}
	b := []trace.Event{epochSpan(0, 0, 100, 1), epochSpan(1, 100, 170, 1)}
	rep := Diff("a", a, "b", b)
	if rep.FirstDivergent != 1 {
		t.Fatalf("first divergent = %d, want 1", rep.FirstDivergent)
	}
	if len(rep.Epochs) != 3 {
		t.Fatalf("epochs = %d", len(rep.Epochs))
	}
	d1 := rep.Epochs[1]
	if !d1.Divergent || d1.Delta != 20 {
		t.Fatalf("epoch 1 delta = %+v", d1)
	}
	d2 := rep.Epochs[2]
	if !d2.Divergent || d2.InB || !d2.InA {
		t.Fatalf("epoch 2 = %+v", d2)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "first divergent epoch: 1") || !strings.Contains(out, "<- first divergent epoch") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestPromlintAcceptsExporter feeds Promlint the real exporter's output.
func TestPromlintAcceptsExporter(t *testing.T) {
	reg := trace.NewRegistry()
	reg.Add("record.epochs", 5, trace.Label("workload", "pbzip"))
	reg.Set("record.completion_cycles", 12345, trace.Label("workload", "pbzip"))
	reg.Observe("epoch.cycles", 100, trace.Label("workload", "pbzip"))
	reg.Observe("epoch.cycles", 90000, trace.Label("workload", "pbzip"))
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := Promlint(buf.String()); len(problems) != 0 {
		t.Fatalf("exporter output fails lint:\n%s\n%v", buf.String(), problems)
	}
}

func TestPromlintCatchesProblems(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"duplicate type", "# TYPE x counter\n# TYPE x gauge\nx 1\n", "duplicate TYPE"},
		{"unknown type", "# TYPE x flum\nx 1\n", "unknown metric type"},
		{"bad name", "# TYPE ok counter\nok 1\n9bad 2\n", "invalid metric name"},
		{"no value", "# TYPE x counter\nx\n", "sample without value"},
		{"undeclared", "# TYPE x counter\nx 1\ny 2\n", "no TYPE declaration"},
		{"histogram incomplete", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 10\n", "missing h_count"},
	}
	for _, c := range cases {
		problems := Promlint(c.text)
		found := false
		for _, p := range problems {
			if strings.Contains(p, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want a %q problem, got %v", c.name, c.want, problems)
		}
	}
}

// lagTrace builds a synthetic recording timeline shaped like the F6
// worked example: boundaries arrive every 100 cycles, each verify takes
// 250 cycles on one of two pipeline slots, so commit lag climbs linearly
// and a drain tail follows the last boundary.
func lagTrace() []trace.Event {
	s := trace.NewSink()
	pid := s.AllocPid("record synth")
	s.NameThread(pid, 0, "epochs + recovery")
	s.NameThread(pid, 1, "pipeline slot 0")
	s.NameThread(pid, 2, "pipeline slot 1")
	const n = 6
	slotFree := [2]int64{0, 0}
	var lastCommit int64
	for i := 0; i < n; i++ {
		bStart := int64(i) * 100
		bEnd := bStart + 100
		s.Span("epoch", bStart, 100, pid, 0, map[string]any{"epoch": i})
		c := 0
		if slotFree[1] < slotFree[0] {
			c = 1
		}
		start := slotFree[c]
		if start < bStart {
			start = bStart
		}
		fin := start + 250
		if fin < bEnd {
			fin = bEnd
		}
		slotFree[c] = fin
		tid := int64(1 + c)
		s.Span("epoch.verify", start, fin-start, pid, tid, map[string]any{"epoch": i, "slot": c})
		s.Instant("epoch.commit", fin, pid, tid, map[string]any{"epoch": i, "lag": fin - bEnd})
		if fin > lastCommit {
			lastCommit = fin
		}
	}
	s.Instant("record.done", lastCommit, pid, 0, map[string]any{"epochs": n})
	return s.Events()
}

func TestLagFillingPipeline(t *testing.T) {
	reps := Lag(lagTrace())
	if len(reps) != 1 {
		t.Fatalf("got %d reports, want 1", len(reps))
	}
	r := reps[0]
	if r.Epochs != 6 || r.Commits != 6 {
		t.Fatalf("epochs=%d commits=%d, want 6/6", r.Epochs, r.Commits)
	}
	// Two slots each retire a verify every 250 cycles while boundaries
	// arrive every 100: lag grows by 250/2 - 100 = 25 cycles per epoch.
	if r.Slope < 20 || r.Slope > 30 {
		t.Fatalf("overall slope = %.1f, want ~25", r.Slope)
	}
	if r.LastTP != 600 {
		t.Fatalf("LastTP = %d, want 600", r.LastTP)
	}
	if r.Done <= r.LastTP || r.Drain != r.Done-r.LastTP {
		t.Fatalf("drain bookkeeping wrong: done=%d lastTP=%d drain=%d", r.Done, r.LastTP, r.Drain)
	}
	if len(r.Slots) != 2 {
		t.Fatalf("got %d slots, want 2", len(r.Slots))
	}
	for _, sl := range r.Slots {
		if sl.Verifies != 3 || sl.Commits != 3 {
			t.Fatalf("slot %d: verifies=%d commits=%d, want 3/3", sl.Tid, sl.Verifies, sl.Commits)
		}
		if sl.Busy != 750 {
			t.Fatalf("slot %d busy = %d, want 750", sl.Tid, sl.Busy)
		}
		if occ := sl.Occupancy(); occ <= 0.9 || occ > 1.0 {
			t.Fatalf("slot %d occupancy = %.2f, want near 1", sl.Tid, occ)
		}
		if sl.Thread == "" {
			t.Fatalf("slot %d missing thread name", sl.Tid)
		}
	}
	// The per-epoch series must be sorted and strictly increasing in lag.
	for i := 1; i < len(r.Lags); i++ {
		if r.Lags[i].Epoch != r.Lags[i-1].Epoch+1 {
			t.Fatalf("lag series not sorted by epoch: %+v", r.Lags)
		}
		if r.Lags[i].Lag < r.Lags[i-1].Lag {
			t.Fatalf("filling pipeline should have non-decreasing lag: %+v", r.Lags)
		}
	}
	if r.Lags[len(r.Lags)-1].Lag <= r.Lags[0].Lag {
		t.Fatalf("filling pipeline should grow lag overall: %+v", r.Lags)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "FILLS") {
		t.Fatalf("render verdict missing FILLS:\n%s", buf.String())
	}
}

func TestLagKeepingUpAndNoCommits(t *testing.T) {
	s := trace.NewSink()
	pid := s.AllocPid("record flat")
	for i := 0; i < 4; i++ {
		bStart := int64(i) * 100
		s.Span("epoch", bStart, 100, pid, 0, map[string]any{"epoch": i})
		s.Instant("epoch.commit", bStart+150, pid, 1, map[string]any{"epoch": i, "lag": 50})
	}
	reps := Lag(s.Events())
	if len(reps) != 1 {
		t.Fatalf("got %d reports, want 1", len(reps))
	}
	if reps[0].Slope != 0 {
		t.Fatalf("flat lag slope = %.2f, want 0", reps[0].Slope)
	}
	// record.done absent: Done falls back to the last commit.
	if reps[0].Done != 450 {
		t.Fatalf("Done = %d, want 450", reps[0].Done)
	}
	// A guest-only process (no commits) yields no report.
	g := trace.NewSink()
	gp := g.AllocPid("guest only")
	g.Span("run", 0, 10, gp, 0, nil)
	if got := Lag(g.Events()); len(got) != 0 {
		t.Fatalf("guest-only trace produced %d reports", len(got))
	}
}

func TestLagControllerNarration(t *testing.T) {
	s := trace.NewSink()
	pid := s.AllocPid("record adaptive")
	s.Instant("ctl.enable", 0, pid, 0, map[string]any{"min": 1, "max": 4, "active": 1})
	s.Counter("ctl.active", 0, pid, 1)
	for i := 0; i < 6; i++ {
		bStart := int64(i) * 100
		s.Span("epoch", bStart, 100, pid, 0, map[string]any{"epoch": i})
		s.Instant("epoch.commit", bStart+200, pid, 1, map[string]any{"epoch": i, "lag": 100})
	}
	s.Instant("ctl.grow", 500, pid, 0, map[string]any{"epoch": 3, "active": 2, "lag": 100})
	s.Counter("ctl.active", 500, pid, 2)
	s.Instant("ctl.shrink", 900, pid, 0, map[string]any{"epoch": 5, "active": 1, "lag": 40})
	s.Counter("ctl.active", 900, pid, 1)
	reps := Lag(s.Events())
	if len(reps) != 1 {
		t.Fatalf("got %d reports, want 1", len(reps))
	}
	r := reps[0]
	if !r.Adaptive {
		t.Fatal("ctl events present but Adaptive is false")
	}
	if r.CtlMin != 1 || r.CtlMax != 4 {
		t.Fatalf("bounds [%d..%d], want [1..4]", r.CtlMin, r.CtlMax)
	}
	if r.Grows != 1 || r.Shrinks != 1 {
		t.Fatalf("grows=%d shrinks=%d, want 1/1", r.Grows, r.Shrinks)
	}
	if r.ActiveSpares != 1 {
		t.Fatalf("final ActiveSpares = %d, want the last sample 1", r.ActiveSpares)
	}
	if len(r.Decisions) != 2 || !r.Decisions[0].Grow || r.Decisions[1].Grow {
		t.Fatalf("decisions wrong: %+v", r.Decisions)
	}
	if r.Decisions[0].Epoch != 3 || r.Decisions[0].Active != 2 || r.Decisions[0].Lag != 100 {
		t.Fatalf("grow decision args wrong: %+v", r.Decisions[0])
	}
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "controller: bounds [1..4]") ||
		!strings.Contains(out, "grow") || !strings.Contains(out, "shrink") {
		t.Fatalf("render missing controller narration:\n%s", out)
	}

	// A fixed-spares trace must not claim a controller.
	if fixed := Lag(lagTrace()); fixed[0].Adaptive {
		t.Fatal("fixed-spares trace reported Adaptive")
	}
}
