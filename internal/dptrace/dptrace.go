// Package dptrace analyzes traces written by the trace package (buffered or
// streamed): per-track summaries, epoch-aligned diffing of two runs, and a
// minimal linter for the Prometheus text exposition format. It backs the
// dptrace command.
package dptrace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"doubleplay/internal/trace"
)

// argInt extracts an integer-valued arg, tolerating the float64 that
// encoding/json produces for every JSON number.
func argInt(args map[string]any, key string) (int64, bool) {
	v, ok := args[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return int64(n), true
	case int64:
		return n, true
	case int:
		return int64(n), true
	case uint64:
		return int64(n), true
	}
	return 0, false
}

// TrackStats summarizes one (pid, tid) track.
type TrackStats struct {
	Pid, Tid    int64
	Process     string // from process_name metadata, if present
	Thread      string // from thread_name metadata, if present
	Spans       int
	SpanCycles  int64 // sum of span durations
	Instants    int
	CounterSamp int
	FirstTs     int64
	LastTs      int64 // max of Ts (+Dur for spans)
}

// key identifies a track.
type key struct{ pid, tid int64 }

// Report is the output of Stats: per-track summaries plus whole-trace
// name frequencies.
type Report struct {
	Events    int
	Tracks    []*TrackStats  // sorted by (pid, tid)
	NameCount map[string]int // events per name, metadata excluded
}

// Stats summarizes a parsed trace.
func Stats(events []trace.Event) *Report {
	rep := &Report{Events: len(events), NameCount: make(map[string]int)}
	tracks := make(map[key]*TrackStats)
	procName := make(map[int64]string)
	threadName := make(map[key]string)
	get := func(k key) *TrackStats {
		ts, ok := tracks[k]
		if !ok {
			ts = &TrackStats{Pid: k.pid, Tid: k.tid, FirstTs: -1}
			tracks[k] = ts
		}
		return ts
	}
	for _, ev := range events {
		if ev.Ph == trace.PhaseMeta {
			if name, ok := ev.Args["name"].(string); ok {
				switch ev.Name {
				case "process_name":
					procName[ev.Pid] = name
				case "thread_name":
					threadName[key{ev.Pid, ev.Tid}] = name
				}
			}
			continue
		}
		rep.NameCount[ev.Name]++
		ts := get(key{ev.Pid, ev.Tid})
		end := ev.Ts
		switch ev.Ph {
		case trace.PhaseComplete:
			ts.Spans++
			ts.SpanCycles += ev.Dur
			end += ev.Dur
		case trace.PhaseInstant:
			ts.Instants++
		case trace.PhaseCounter:
			ts.CounterSamp++
		}
		if ts.FirstTs < 0 || ev.Ts < ts.FirstTs {
			ts.FirstTs = ev.Ts
		}
		if end > ts.LastTs {
			ts.LastTs = end
		}
	}
	for k, ts := range tracks {
		ts.Process = procName[k.pid]
		ts.Thread = threadName[k]
		rep.Tracks = append(rep.Tracks, ts)
	}
	sort.Slice(rep.Tracks, func(i, j int) bool {
		a, b := rep.Tracks[i], rep.Tracks[j]
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		return a.Tid < b.Tid
	})
	return rep
}

// Render writes the report as aligned text.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "events: %d  tracks: %d\n\n", r.Events, len(r.Tracks))
	fmt.Fprintf(w, "%-6s %-6s %-28s %-24s %8s %14s %8s %8s %14s\n",
		"pid", "tid", "process", "thread", "spans", "span-cycles", "inst", "counter", "span")
	for _, ts := range r.Tracks {
		span := fmt.Sprintf("%d..%d", ts.FirstTs, ts.LastTs)
		fmt.Fprintf(w, "%-6d %-6d %-28s %-24s %8d %14d %8d %8d %14s\n",
			ts.Pid, ts.Tid, clip(ts.Process, 28), clip(ts.Thread, 24),
			ts.Spans, ts.SpanCycles, ts.Instants, ts.CounterSamp, span)
	}
	fmt.Fprintf(w, "\n%-24s %8s\n", "event name", "count")
	names := make([]string, 0, len(r.NameCount))
	for n := range r.NameCount {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-24s %8d\n", n, r.NameCount[n])
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// EpochInfo is one recording epoch extracted from a trace: the "epoch" span
// plus any divergence instants that name the same epoch index.
type EpochInfo struct {
	Index       int64
	Start       int64
	Cycles      int64 // span duration
	Syscalls    int64
	SyncOps     int64
	Divergences int
}

// Epochs extracts the recording's epoch timeline from a parsed trace, sorted
// by epoch index. Traces holding several recordings interleave their epochs;
// pass a single-run trace for a meaningful diff.
func Epochs(events []trace.Event) []EpochInfo {
	byIdx := make(map[int64]*EpochInfo)
	for _, ev := range events {
		idx, ok := argInt(ev.Args, "epoch")
		if !ok {
			continue
		}
		switch {
		case ev.Name == "epoch" && ev.Ph == trace.PhaseComplete:
			e, ok := byIdx[idx]
			if !ok {
				e = &EpochInfo{Index: idx}
				byIdx[idx] = e
			}
			e.Start = ev.Ts
			e.Cycles = ev.Dur
			if n, ok := argInt(ev.Args, "syscalls"); ok {
				e.Syscalls = n
			}
			if n, ok := argInt(ev.Args, "syncops"); ok {
				e.SyncOps = n
			}
		case ev.Name == "divergence" && ev.Ph == trace.PhaseInstant:
			e, ok := byIdx[idx]
			if !ok {
				e = &EpochInfo{Index: idx, Cycles: -1}
				byIdx[idx] = e
			}
			e.Divergences++
		}
	}
	out := make([]EpochInfo, 0, len(byIdx))
	for _, e := range byIdx {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// EpochDelta compares one epoch index across two traces. Missing epochs
// (present in only one trace) have InA/InB false.
type EpochDelta struct {
	Index      int64
	InA, InB   bool
	CyclesA    int64
	CyclesB    int64
	Delta      int64 // CyclesB - CyclesA, when both present
	DivergeA   int
	DivergeB   int
	SyscallsA  int64
	SyscallsB  int64
	Divergent  bool // cycle counts differ or epoch missing on one side
	DivergeHit bool // either side recorded a divergence event here
}

// DiffReport aligns two traces epoch by epoch.
type DiffReport struct {
	A, B           string // labels (file names)
	Epochs         []EpochDelta
	FirstDivergent int64 // epoch index, or -1 when the timelines agree
	TotalA, TotalB int64 // summed epoch cycles
}

// Diff aligns two parsed traces by epoch index and reports per-epoch cycle
// deltas and the first index at which the runs disagree (different epoch
// duration, or an epoch present on only one side). Identical runs yield
// FirstDivergent == -1.
func Diff(labelA string, a []trace.Event, labelB string, b []trace.Event) *DiffReport {
	ea, eb := Epochs(a), Epochs(b)
	byA := make(map[int64]EpochInfo, len(ea))
	for _, e := range ea {
		byA[e.Index] = e
	}
	byB := make(map[int64]EpochInfo, len(eb))
	for _, e := range eb {
		byB[e.Index] = e
	}
	idxSet := make(map[int64]struct{})
	for i := range byA {
		idxSet[i] = struct{}{}
	}
	for i := range byB {
		idxSet[i] = struct{}{}
	}
	idxs := make([]int64, 0, len(idxSet))
	for i := range idxSet {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	rep := &DiffReport{A: labelA, B: labelB, FirstDivergent: -1}
	for _, i := range idxs {
		va, inA := byA[i]
		vb, inB := byB[i]
		d := EpochDelta{Index: i, InA: inA, InB: inB}
		if inA {
			d.CyclesA = va.Cycles
			d.DivergeA = va.Divergences
			d.SyscallsA = va.Syscalls
			rep.TotalA += va.Cycles
		}
		if inB {
			d.CyclesB = vb.Cycles
			d.DivergeB = vb.Divergences
			d.SyscallsB = vb.Syscalls
			rep.TotalB += vb.Cycles
		}
		if inA && inB {
			d.Delta = d.CyclesB - d.CyclesA
			d.Divergent = d.CyclesA != d.CyclesB
		} else {
			d.Divergent = true
		}
		d.DivergeHit = d.DivergeA > 0 || d.DivergeB > 0
		if d.Divergent && rep.FirstDivergent < 0 {
			rep.FirstDivergent = i
		}
		rep.Epochs = append(rep.Epochs, d)
	}
	return rep
}

// Render writes the diff as aligned text, flagging the first divergence.
func (r *DiffReport) Render(w io.Writer) {
	fmt.Fprintf(w, "A: %s\nB: %s\n\n", r.A, r.B)
	fmt.Fprintf(w, "%-6s %14s %14s %12s %6s %6s\n", "epoch", "cycles A", "cycles B", "delta", "divA", "divB")
	for _, d := range r.Epochs {
		ca, cb, delta := "-", "-", "-"
		if d.InA {
			ca = fmt.Sprintf("%d", d.CyclesA)
		}
		if d.InB {
			cb = fmt.Sprintf("%d", d.CyclesB)
		}
		if d.InA && d.InB {
			delta = fmt.Sprintf("%+d", d.Delta)
		}
		mark := ""
		if d.Index == r.FirstDivergent {
			mark = "  <- first divergent epoch"
		} else if d.Divergent {
			mark = "  *"
		}
		fmt.Fprintf(w, "%-6d %14s %14s %12s %6d %6d%s\n", d.Index, ca, cb, delta, d.DivergeA, d.DivergeB, mark)
	}
	fmt.Fprintf(w, "\ntotal epoch cycles: A=%d B=%d (delta %+d)\n", r.TotalA, r.TotalB, r.TotalB-r.TotalA)
	if r.FirstDivergent < 0 {
		fmt.Fprintf(w, "timelines agree: no divergent epoch\n")
	} else {
		fmt.Fprintf(w, "first divergent epoch: %d\n", r.FirstDivergent)
	}
}

// Promlint checks text for gross violations of the Prometheus text
// exposition format (version 0.0.4): malformed lines, sample names that
// disagree with the preceding TYPE declaration, duplicate TYPE lines, and
// histograms missing their _sum/_count series. It returns one message per
// problem; an empty slice means the input passed.
func Promlint(text string) []string {
	var problems []string
	typeOf := make(map[string]string) // metric family -> kind
	samples := make(map[string]bool)  // sample names seen
	var order []string                // family declaration order
	lineNo := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		if line == "" || strings.HasPrefix(line, "# HELP") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				problems = append(problems, fmt.Sprintf("line %d: malformed TYPE line", lineNo))
				continue
			}
			name, kind := fields[2], fields[3]
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				problems = append(problems, fmt.Sprintf("line %d: unknown metric type %q", lineNo, kind))
			}
			if _, dup := typeOf[name]; dup {
				problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, name))
			}
			typeOf[name] = kind
			order = append(order, name)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		// Sample line: name{labels} value  or  name value.
		name := line
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if j := strings.LastIndexByte(line, '}'); j < i {
				problems = append(problems, fmt.Sprintf("line %d: unbalanced braces", lineNo))
				continue
			}
			name = name[:i]
		} else if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		if name == "" || !validMetricName(name) {
			problems = append(problems, fmt.Sprintf("line %d: invalid metric name %q", lineNo, name))
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			problems = append(problems, fmt.Sprintf("line %d: sample without value", lineNo))
			continue
		}
		samples[name] = true
		if family, ok := familyOf(name, typeOf); ok {
			_ = family
		} else if len(typeOf) > 0 {
			problems = append(problems, fmt.Sprintf("line %d: sample %s has no TYPE declaration", lineNo, name))
		}
	}
	for _, fam := range order {
		if typeOf[fam] != "histogram" {
			continue
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if !samples[fam+suffix] {
				problems = append(problems, fmt.Sprintf("histogram %s missing %s%s series", fam, fam, suffix))
			}
		}
	}
	return problems
}

// familyOf maps a sample name to its declared family, accepting histogram
// suffixes.
func familyOf(name string, typeOf map[string]string) (string, bool) {
	if _, ok := typeOf[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if kind, ok := typeOf[base]; ok && (kind == "histogram" || kind == "summary") {
				return base, true
			}
		}
	}
	return "", false
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(name) > 0
}

// CommitLag is one epoch's commit lag: how long after its thread-parallel
// boundary the epoch-parallel pipeline committed it (the "lag" argument
// the recorder attaches to every "epoch.commit" instant).
type CommitLag struct {
	Epoch int64
	Ts    int64 // commit time
	Lag   int64 // commit time - boundary time
	Tid   int64 // pipeline track the commit retired on
}

// SlotLag summarizes one pipeline track: its epoch.verify occupancy and
// the lag trend of the commits it retired.
type SlotLag struct {
	Tid      int64
	Thread   string // thread_name metadata, if present
	Verifies int
	Busy     int64 // Σ epoch.verify span cycles
	Span     int64 // first verify start .. last verify end
	Commits  int
	MaxLag   int64
	Slope    float64 // least-squares lag growth, cycles per epoch
}

// Occupancy is the track's busy fraction over its active span.
func (s *SlotLag) Occupancy() float64 {
	if s.Span <= 0 {
		return 0
	}
	return float64(s.Busy) / float64(s.Span)
}

// CtlDecision is one adaptive-controller decision parsed from a ctl.grow
// or ctl.shrink instant: at which epoch boundary the controller acted,
// the commit lag that triggered it, and the active slot count it moved to.
type CtlDecision struct {
	Ts     int64
	Epoch  int64
	Grow   bool
	Active int64 // active slots after the decision
	Lag    int64 // commit lag at the decision boundary
}

// LagReport quantifies the pipeline fill/drain behaviour of one recording
// process — the read-off docs/OBSERVABILITY.md's F6 worked example does
// by eye in Perfetto. A positive overall Slope means the pipeline cannot
// keep up with boundary arrival (fill); Drain is the tail between the
// last thread-parallel boundary and the last commit. When the recording
// ran with the adaptive controller, the ctl.* events it emitted are
// summarized too.
type LagReport struct {
	Pid     int64
	Process string
	Epochs  int   // "epoch" spans seen
	Commits int   // "epoch.commit" instants seen
	LastTP  int64 // end of the last thread-parallel epoch span
	Done    int64 // "record.done" timestamp (or last commit when absent)
	Drain   int64 // Done - LastTP, clamped at 0
	MeanLag float64
	MaxLag  int64
	Slope   float64 // least-squares lag growth across all epochs
	Slots   []SlotLag
	Lags    []CommitLag // per-epoch series, sorted by epoch index

	// Adaptive controller narration, from ctl.* events (zero when the
	// recording ran with fixed spares).
	Adaptive     bool  // a ctl.enable instant was present
	CtlMin       int64 // controller bounds, from ctl.enable
	CtlMax       int64
	Grows        int
	Shrinks      int
	ActiveSpares int64 // last ctl.active counter sample
	Decisions    []CtlDecision
}

// slope fits lag = a + b*epoch by least squares and returns b; fewer than
// two points have no trend.
func slope(pts []CommitLag) float64 {
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x, y := float64(p.Epoch), float64(p.Lag)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Lag extracts the pipeline-lag report for every recording process in a
// trace (a process with at least one "epoch.commit" instant), sorted by
// pid. Traces from dpbench sweeps hold many recordings; single-run traces
// yield one report.
func Lag(events []trace.Event) []*LagReport {
	type slotAcc struct {
		s        SlotLag
		lags     []CommitLag
		haveSpan bool
		first    int64
		last     int64
	}
	type acc struct {
		rep      LagReport
		slots    map[int64]*slotAcc
		activeTs int64 // timestamp of the ctl.active sample in ActiveSpares
	}
	procName := make(map[int64]string)
	threadName := make(map[key]string)
	byPid := make(map[int64]*acc)
	get := func(pid int64) *acc {
		a, ok := byPid[pid]
		if !ok {
			a = &acc{rep: LagReport{Pid: pid}, slots: make(map[int64]*slotAcc)}
			byPid[pid] = a
		}
		return a
	}
	slot := func(a *acc, tid int64) *slotAcc {
		sa, ok := a.slots[tid]
		if !ok {
			sa = &slotAcc{s: SlotLag{Tid: tid}}
			a.slots[tid] = sa
		}
		return sa
	}
	for _, ev := range events {
		switch {
		case ev.Ph == trace.PhaseMeta:
			if name, ok := ev.Args["name"].(string); ok {
				switch ev.Name {
				case "process_name":
					procName[ev.Pid] = name
				case "thread_name":
					threadName[key{ev.Pid, ev.Tid}] = name
				}
			}
		case ev.Name == "epoch" && ev.Ph == trace.PhaseComplete:
			a := get(ev.Pid)
			a.rep.Epochs++
			if end := ev.Ts + ev.Dur; end > a.rep.LastTP {
				a.rep.LastTP = end
			}
		case ev.Name == "epoch.verify" && ev.Ph == trace.PhaseComplete:
			a := get(ev.Pid)
			sa := slot(a, ev.Tid)
			sa.s.Verifies++
			sa.s.Busy += ev.Dur
			if !sa.haveSpan || ev.Ts < sa.first {
				sa.first = ev.Ts
			}
			if end := ev.Ts + ev.Dur; end > sa.last {
				sa.last = end
			}
			sa.haveSpan = true
		case ev.Name == "epoch.commit" && ev.Ph == trace.PhaseInstant:
			idx, okIdx := argInt(ev.Args, "epoch")
			lag, okLag := argInt(ev.Args, "lag")
			if !okIdx || !okLag {
				continue
			}
			a := get(ev.Pid)
			cl := CommitLag{Epoch: idx, Ts: ev.Ts, Lag: lag, Tid: ev.Tid}
			a.rep.Lags = append(a.rep.Lags, cl)
			slot(a, ev.Tid).lags = append(slot(a, ev.Tid).lags, cl)
		case ev.Name == "record.done" && ev.Ph == trace.PhaseInstant:
			get(ev.Pid).rep.Done = ev.Ts
		case ev.Name == "ctl.enable" && ev.Ph == trace.PhaseInstant:
			a := get(ev.Pid)
			a.rep.Adaptive = true
			if n, ok := argInt(ev.Args, "min"); ok {
				a.rep.CtlMin = n
			}
			if n, ok := argInt(ev.Args, "max"); ok {
				a.rep.CtlMax = n
			}
		case (ev.Name == "ctl.grow" || ev.Name == "ctl.shrink") && ev.Ph == trace.PhaseInstant:
			a := get(ev.Pid)
			a.rep.Adaptive = true
			d := CtlDecision{Ts: ev.Ts, Grow: ev.Name == "ctl.grow"}
			d.Epoch, _ = argInt(ev.Args, "epoch")
			d.Active, _ = argInt(ev.Args, "active")
			d.Lag, _ = argInt(ev.Args, "lag")
			if d.Grow {
				a.rep.Grows++
			} else {
				a.rep.Shrinks++
			}
			a.rep.Decisions = append(a.rep.Decisions, d)
		case ev.Name == "ctl.active" && ev.Ph == trace.PhaseCounter:
			a := get(ev.Pid)
			a.rep.Adaptive = true
			if n, ok := argInt(ev.Args, "value"); ok && ev.Ts >= a.activeTs {
				a.rep.ActiveSpares = n
				a.activeTs = ev.Ts
			}
		}
	}

	var out []*LagReport
	for pid, a := range byPid {
		rep := a.rep
		rep.Commits = len(rep.Lags)
		if rep.Commits == 0 {
			continue // not a recording process
		}
		rep.Process = procName[pid]
		sort.Slice(rep.Lags, func(i, j int) bool { return rep.Lags[i].Epoch < rep.Lags[j].Epoch })
		sort.Slice(rep.Decisions, func(i, j int) bool { return rep.Decisions[i].Ts < rep.Decisions[j].Ts })
		var sum, lastCommit int64
		for _, l := range rep.Lags {
			sum += l.Lag
			if l.Lag > rep.MaxLag {
				rep.MaxLag = l.Lag
			}
			if l.Ts > lastCommit {
				lastCommit = l.Ts
			}
		}
		if rep.Done == 0 {
			rep.Done = lastCommit
		}
		rep.MeanLag = float64(sum) / float64(rep.Commits)
		rep.Slope = slope(rep.Lags)
		if rep.Drain = rep.Done - rep.LastTP; rep.Drain < 0 {
			rep.Drain = 0
		}
		for tid, sa := range a.slots {
			sa.s.Thread = threadName[key{pid, tid}]
			sa.s.Commits = len(sa.lags)
			sa.s.Span = sa.last - sa.first
			sa.s.Slope = slope(sa.lags)
			for _, l := range sa.lags {
				if l.Lag > sa.s.MaxLag {
					sa.s.MaxLag = l.Lag
				}
			}
			rep.Slots = append(rep.Slots, sa.s)
		}
		sort.Slice(rep.Slots, func(i, j int) bool { return rep.Slots[i].Tid < rep.Slots[j].Tid })
		out = append(out, &rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pid < out[j].Pid })
	return out
}

// Render writes the lag report as aligned text with a fill/drain verdict.
func (r *LagReport) Render(w io.Writer) {
	fmt.Fprintf(w, "process %d  %s\n", r.Pid, r.Process)
	fmt.Fprintf(w, "epochs: %d  commits: %d  mean lag: %.0f  max lag: %d\n",
		r.Epochs, r.Commits, r.MeanLag, r.MaxLag)
	fmt.Fprintf(w, "lag slope: %+.1f cycles/epoch  last boundary: %d  done: %d  drain: %d cycles\n",
		r.Slope, r.LastTP, r.Done, r.Drain)
	switch {
	case r.Slope > 1:
		fmt.Fprintf(w, "verdict: pipeline FILLS — verification retires slower than boundaries arrive\n")
	case r.Drain > 0 && r.Epochs > 0 && float64(r.Drain) > r.MeanLag:
		fmt.Fprintf(w, "verdict: pipeline drains a tail after the guest finishes\n")
	default:
		fmt.Fprintf(w, "verdict: pipeline keeps up — lag is flat\n")
	}
	if r.Adaptive {
		fmt.Fprintf(w, "controller: bounds [%d..%d]  grows: %d  shrinks: %d  final active: %d\n",
			r.CtlMin, r.CtlMax, r.Grows, r.Shrinks, r.ActiveSpares)
		for _, d := range r.Decisions {
			verb := "grow"
			if !d.Grow {
				verb = "shrink"
			}
			fmt.Fprintf(w, "  epoch %-4d %-6s -> %d active (lag %d at cycle %d)\n",
				d.Epoch, verb, d.Active, d.Lag, d.Ts)
		}
	}
	if len(r.Slots) > 0 {
		fmt.Fprintf(w, "\n%-6s %-26s %8s %12s %10s %8s %12s %12s\n",
			"tid", "track", "verifies", "busy-cycles", "occupancy", "commits", "max-lag", "slope")
		for _, s := range r.Slots {
			fmt.Fprintf(w, "%-6d %-26s %8d %12d %9.0f%% %8d %12d %+12.1f\n",
				s.Tid, clip(s.Thread, 26), s.Verifies, s.Busy, 100*s.Occupancy(), s.Commits, s.MaxLag, s.Slope)
		}
	}
	fmt.Fprintf(w, "\n%-6s %14s %14s\n", "epoch", "commit-ts", "lag")
	for _, l := range r.Lags {
		fmt.Fprintf(w, "%-6d %14d %14d\n", l.Epoch, l.Ts, l.Lag)
	}
}
