package race_test

import (
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/race"
	"doubleplay/internal/sched"
	"doubleplay/internal/vm"
)

// detect runs a program uniprocessor under the detector.
func detect(t *testing.T, prog *vm.Program) *race.Detector {
	t.Helper()
	det := race.NewDetector(0)
	m := vm.NewMachine(prog, nil, nil)
	m.Hooks.OnSync = det.OnSync
	m.Hooks.OnMemAccess = det.OnMemAccess
	u := sched.NewUni(m)
	u.Quantum = 37 // small quantum to interleave aggressively
	if err := u.Run(); err != nil {
		t.Fatal(err)
	}
	if m.FaultCount() != 0 {
		t.Fatalf("faults: %v", m.Faults())
	}
	return det
}

// twoWorkers builds a program with two workers running body.
func twoWorkers(body func(w *asm.Func, b *asm.Builder)) func() *vm.Program {
	return func() *vm.Program {
		b := asm.NewBuilder("race-test")
		w := b.Func("worker", 1)
		body(w, b)
		m := b.Func("main", 0)
		t1, t2, a := m.Reg(), m.Reg(), m.Reg()
		m.Movi(a, 0)
		m.Spawn(t1, "worker", a)
		m.Spawn(t2, "worker", a)
		m.Join(t1)
		m.Join(t2)
		m.HaltImm(0)
		b.SetEntry("main")
		return b.MustBuild()
	}
}

var sharedCell vm.Word

func TestUnlockedCounterFlagged(t *testing.T) {
	var cell vm.Word
	build := func() *vm.Program {
		b := asm.NewBuilder("t")
		cell = b.Words(0)
		w := b.Func("worker", 1)
		base, v, i := w.Const(cell), w.Reg(), w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, 50, func() {
			w.Ld(v, base, 0)
			w.Addi(v, v, 1)
			w.St(base, 0, v)
		})
		w.HaltImm(0)
		m := b.Func("main", 0)
		t1, t2, a := m.Reg(), m.Reg(), m.Reg()
		m.Movi(a, 0)
		m.Spawn(t1, "worker", a)
		m.Spawn(t2, "worker", a)
		m.Join(t1)
		m.Join(t2)
		m.HaltImm(0)
		b.SetEntry("main")
		return b.MustBuild()
	}
	det := detect(t, build())
	if det.Count() == 0 {
		t.Fatal("unlocked counter not flagged")
	}
	found := false
	for _, r := range det.Races() {
		if r.Addr == cell {
			found = true
		}
	}
	if !found {
		t.Fatalf("races %v do not include the counter cell %d", det.Races(), cell)
	}
}

func TestLockedCounterClean(t *testing.T) {
	build := twoWorkers(func(w *asm.Func, b *asm.Builder) {
		cell := b.Words(0)
		lk, base, v, i := w.Const(5), w.Const(cell), w.Reg(), w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, 50, func() {
			w.LockR(lk)
			w.Ld(v, base, 0)
			w.Addi(v, v, 1)
			w.St(base, 0, v)
			w.UnlockR(lk)
		})
		w.HaltImm(0)
	})
	det := detect(t, build())
	if det.Count() != 0 {
		t.Fatalf("false positives on locked counter: %v", det.Races())
	}
}

func TestAtomicCounterClean(t *testing.T) {
	build := twoWorkers(func(w *asm.Func, b *asm.Builder) {
		cell := b.Words(0)
		base, one, v, i := w.Const(cell), w.Const(1), w.Reg(), w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, 50, func() {
			w.Fadd(v, base, one)
		})
		w.HaltImm(0)
	})
	det := detect(t, build())
	if det.Count() != 0 {
		t.Fatalf("false positives on atomic counter: %v", det.Races())
	}
}

func TestAtomicPublishClean(t *testing.T) {
	// Message passing through an atomic flag: writer stores data, then CAS
	// sets the flag; reader spins on the flag (via fadd 0) then reads data.
	b := asm.NewBuilder("t")
	data := b.Words(0)
	flag := b.Words(0)
	wr := b.Func("writer", 1)
	{
		d, fl, v, zero, one, ok := wr.Const(data), wr.Const(flag), wr.Reg(), wr.Const(0), wr.Const(1), wr.Reg()
		wr.Movi(v, 99)
		wr.St(d, 0, v)
		wr.Cas(ok, fl, zero, one)
		wr.HaltImm(0)
	}
	rd := b.Func("reader", 1)
	{
		d, fl, v, zero, c := rd.Const(data), rd.Const(flag), rd.Reg(), rd.Const(0), rd.Reg()
		rd.While(func() asm.Reg {
			rd.Fadd(v, fl, zero)
			rd.Seqi(c, v, 0)
			return c
		}, func() {})
		rd.Ld(v, d, 0)
		rd.Halt(v)
	}
	m := b.Func("main", 0)
	{
		t1, t2, a := m.Reg(), m.Reg(), m.Reg()
		m.Movi(a, 0)
		m.Spawn(t1, "writer", a)
		m.Spawn(t2, "reader", a)
		m.Join(t1)
		m.Join(t2)
		m.HaltImm(0)
	}
	b.SetEntry("main")
	det := detect(t, b.MustBuild())
	if det.Count() != 0 {
		t.Fatalf("false positive on atomic publish: %v", det.Races())
	}
}

func TestBarrierSeparatedPhasesClean(t *testing.T) {
	// Phase 1: worker 0 writes; barrier; phase 2: worker 1 reads.
	b := asm.NewBuilder("t")
	cell := b.Words(0)
	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		bar, two, base, v, c := w.Const(3), w.Const(2), w.Const(cell), w.Reg(), w.Reg()
		w.Seqi(c, k, 0)
		w.IfNz(c, func() {
			w.Movi(v, 7)
			w.St(base, 0, v)
		})
		w.Barrier(bar, two)
		w.Seqi(c, k, 1)
		w.IfNz(c, func() {
			w.Ld(v, base, 0)
		})
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	{
		t1, t2, a := m.Reg(), m.Reg(), m.Reg()
		m.Movi(a, 0)
		m.Spawn(t1, "worker", a)
		m.Movi(a, 1)
		m.Spawn(t2, "worker", a)
		m.Join(t1)
		m.Join(t2)
		m.HaltImm(0)
	}
	b.SetEntry("main")
	det := detect(t, b.MustBuild())
	if det.Count() != 0 {
		t.Fatalf("false positive across barrier: %v", det.Races())
	}
}

func TestSpawnJoinHappensBefore(t *testing.T) {
	// Parent writes before spawn; child reads. Child writes before exit;
	// parent reads after join. No races.
	b := asm.NewBuilder("t")
	cell := b.Words(0)
	child := b.Func("child", 1)
	{
		base, v := child.Const(cell), child.Reg()
		child.Ld(v, base, 0)
		child.Addi(v, v, 1)
		child.St(base, 0, v)
		child.HaltImm(0)
	}
	m := b.Func("main", 0)
	{
		base, v, t1 := m.Const(cell), m.Reg(), m.Reg()
		m.Movi(v, 41)
		m.St(base, 0, v)
		m.Spawn(t1, "child", v)
		m.Join(t1)
		m.Ld(v, base, 0)
		m.Halt(v)
	}
	b.SetEntry("main")
	det := detect(t, b.MustBuild())
	if det.Count() != 0 {
		t.Fatalf("false positive across spawn/join: %v", det.Races())
	}
}

func TestMaxRaceCap(t *testing.T) {
	det := race.NewDetector(2)
	// Three distinct addresses raced by construction through raw events.
	for addr := vm.Word(0); addr < 3; addr++ {
		det.OnMemAccess(0, addr, true)
		det.OnMemAccess(1, addr, true)
	}
	if det.Count() != 2 {
		t.Fatalf("cap not applied: %d", det.Count())
	}
}

func TestReportString(t *testing.T) {
	r := race.Report{Addr: 5, First: 1, Second: 2, Kind: "write-write"}
	if s := r.String(); s == "" {
		t.Fatal("empty report string")
	}
}
