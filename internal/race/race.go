// Package race implements a vector-clock happens-before data-race detector
// that runs over a uniprocessor (epoch-parallel or baseline) execution's
// event stream. DoublePlay's divergences are caused exactly by data races;
// the detector names the racing addresses, which is how the divergence
// experiments attribute rollbacks and how the system's "replay, then find
// the race" debugging story (the paper's motivating use case) works.
package race

import (
	"fmt"
	"sort"

	"doubleplay/internal/vm"
)

// VC is a vector clock indexed by thread id.
type VC []uint64

func (v VC) get(i int) uint64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

func (v *VC) set(i int, val uint64) {
	for len(*v) <= i {
		*v = append(*v, 0)
	}
	(*v)[i] = val
}

// join folds other into v element-wise (pointwise max).
func (v *VC) join(other VC) {
	for i, c := range other {
		if c > v.get(i) {
			v.set(i, c)
		}
	}
}

// hb reports whether the epoch (tid, clk) happened before the clock v.
func hb(tid int, clk uint64, v VC) bool { return clk <= v.get(tid) }

// access is the shadow state of one memory word.
type access struct {
	writeTid int
	writeClk uint64
	readVC   VC
}

// Report is one detected race.
type Report struct {
	Addr   vm.Word
	First  int // tid of the earlier access
	Second int // tid of the racing access
	Kind   string
}

func (r Report) String() string {
	return fmt.Sprintf("race on %d: %s between tid %d and tid %d", r.Addr, r.Kind, r.First, r.Second)
}

// Detector accumulates happens-before state over one execution. Attach its
// OnSync and OnMemAccess methods as machine hooks (or epoch.RunSpec
// observers). It assumes events arrive in a single total order, which holds
// for any uniprocessor execution.
type Detector struct {
	threads map[int]*VC
	objs    map[vm.SyncObj]*VC
	exits   map[int]VC
	shadow  map[vm.Word]*access

	races   map[vm.Word]Report
	maxRace int
}

// NewDetector returns an empty detector. maxRaces caps distinct reported
// addresses (0 means 1024).
func NewDetector(maxRaces int) *Detector {
	if maxRaces <= 0 {
		maxRaces = 1024
	}
	return &Detector{
		threads: make(map[int]*VC),
		objs:    make(map[vm.SyncObj]*VC),
		exits:   make(map[int]VC),
		shadow:  make(map[vm.Word]*access),
		races:   make(map[vm.Word]Report),
		maxRace: maxRaces,
	}
}

func (d *Detector) clock(tid int) *VC {
	c := d.threads[tid]
	if c == nil {
		c = &VC{}
		c.set(tid, 1)
		d.threads[tid] = c
	}
	return c
}

func (d *Detector) objClock(obj vm.SyncObj) *VC {
	c := d.objs[obj]
	if c == nil {
		c = &VC{}
		d.objs[obj] = c
	}
	return c
}

func (d *Detector) tick(tid int) {
	c := d.clock(tid)
	c.set(tid, c.get(tid)+1)
}

// OnSync processes a synchronisation event.
func (d *Detector) OnSync(ev vm.SyncEvent) {
	t := d.clock(ev.Tid)
	switch ev.Kind {
	case vm.SyncAcquire:
		t.join(*d.objClock(ev.Obj))
	case vm.SyncRelease:
		d.objClock(ev.Obj).join(*t)
		d.tick(ev.Tid)
	case vm.SyncAtomic:
		o := d.objClock(ev.Obj)
		t.join(*o)
		o.join(*t)
		d.tick(ev.Tid)
	case vm.SyncSpawn:
		child := d.clock(ev.Child)
		child.join(*t)
		d.tick(ev.Tid)
	case vm.SyncExit:
		d.exits[ev.Tid] = append(VC(nil), (*t)...)
	case vm.SyncJoin:
		if exit, ok := d.exits[ev.Child]; ok {
			t.join(exit)
		}
	case vm.SyncBarArrive:
		d.objClock(ev.Obj).join(*t)
		d.tick(ev.Tid)
	case vm.SyncBarPass:
		// Conservative: join the barrier's accumulated clock, which may
		// include arrivals from the next generation (extra happens-before
		// edges can hide races but never fabricate one).
		t.join(*d.objClock(ev.Obj))
	}
}

// OnMemAccess processes a data memory access.
func (d *Detector) OnMemAccess(tid int, addr vm.Word, write bool) {
	t := d.clock(tid)
	s := d.shadow[addr]
	if s == nil {
		s = &access{writeTid: -1}
		d.shadow[addr] = s
	}
	if write {
		if s.writeTid >= 0 && s.writeTid != tid && !hb(s.writeTid, s.writeClk, *t) {
			d.report(addr, s.writeTid, tid, "write-write")
		}
		for rt, rc := range s.readVC {
			if rt != tid && rc > 0 && !hb(rt, rc, *t) {
				d.report(addr, rt, tid, "read-write")
			}
		}
		s.writeTid = tid
		s.writeClk = t.get(tid)
		s.readVC = nil
		return
	}
	if s.writeTid >= 0 && s.writeTid != tid && !hb(s.writeTid, s.writeClk, *t) {
		d.report(addr, s.writeTid, tid, "write-read")
	}
	s.readVC.set(tid, t.get(tid))
}

func (d *Detector) report(addr vm.Word, first, second int, kind string) {
	if _, seen := d.races[addr]; seen || len(d.races) >= d.maxRace {
		return
	}
	d.races[addr] = Report{Addr: addr, First: first, Second: second, Kind: kind}
}

// Races returns the detected races sorted by address.
func (d *Detector) Races() []Report {
	out := make([]Report, 0, len(d.races))
	for _, r := range d.races {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Count returns the number of distinct racy addresses found.
func (d *Detector) Count() int { return len(d.races) }
