package debug_test

import (
	"fmt"
	"reflect"
	"testing"

	"doubleplay/internal/core"
	"doubleplay/internal/debug"
	"doubleplay/internal/dplog"
	"doubleplay/internal/replay"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

// record produces a recording of a builtin workload.
func record(t *testing.T, name string, workers int, seed int64) (*workloads.Built, *dplog.Recording) {
	t.Helper()
	wl := workloads.Get(name)
	if wl == nil {
		t.Fatalf("no workload %s", name)
	}
	bt := wl.Build(workloads.Params{Workers: workers, Seed: seed})
	res, err := core.Record(bt.Prog, bt.World, core.Options{
		Workers: workers, SpareCPUs: workers, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.ReleaseCheckpoints()
	return bt, res.Recording
}

// open builds a session over the decoded recording or, via the v6 wire
// bytes, over a seekable reader — the two byte sources a debugger can
// be pointed at.
func open(t *testing.T, bt *workloads.Built, rec *dplog.Recording, viaReader bool) *debug.Session {
	t.Helper()
	src := replay.FromRecording(rec)
	if viaReader {
		rd, err := dplog.OpenReaderBytes(dplog.MarshalBytes(rec))
		if err != nil {
			t.Fatal(err)
		}
		src = replay.FromReader(rd)
	}
	s, err := debug.New(bt.Prog, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// watchAll arms every intentionally racy cell of the workload.
func watchAll(s *debug.Session, bt *workloads.Built) {
	for _, a := range bt.RacyAddrs {
		s.AddWatch(vm.Word(a))
	}
}

// continueAll collects every watch hit from the current position to the
// end of the recording by repeated Continue.
func continueAll(t *testing.T, s *debug.Session) []debug.Hit {
	t.Helper()
	var out []debug.Hit
	for {
		hits, err := s.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if hits == nil {
			return out
		}
		out = append(out, hits...)
	}
}

// scanAll collects the same hits epoch by epoch from independently
// restored checkpoints — the epoch-parallel materialization order.
func scanAll(t *testing.T, s *debug.Session) []debug.Hit {
	t.Helper()
	var out []debug.Hit
	for e := 0; e < s.NumEpochs(); e++ {
		hits, err := s.ScanEpoch(e)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, hits...)
	}
	return out
}

// TestWatchpointDeterminism: the watchpoint stop points of a racy
// workload are a property of the recording, not of how the debugger
// materializes state: sequential stepping over the decoded recording,
// sequential stepping over the seekable reader, and independent
// per-epoch scans from restored checkpoints all report the identical
// hit sequence. Covers all racy workloads at both paper thread counts.
func TestWatchpointDeterminism(t *testing.T) {
	for _, name := range []string{"racey", "webserve-racy"} {
		for _, workers := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/%d", name, workers), func(t *testing.T) {
				bt, rec := record(t, name, workers, 17)

				rs := open(t, bt, rec, false) // decoded recording, sequential continue
				watchAll(rs, bt)
				seq := continueAll(t, rs)

				dr := open(t, bt, rec, true) // reader-backed, sequential continue
				watchAll(dr, bt)
				rdr := continueAll(t, dr)

				ps := open(t, bt, rec, true) // reader-backed, epoch-parallel scan order
				watchAll(ps, bt)
				par := scanAll(t, ps)

				if len(seq) == 0 {
					t.Fatalf("racy workload produced no watch hits")
				}
				if !reflect.DeepEqual(seq, rdr) {
					t.Fatalf("reader-backed hits differ from recording-backed:\n%v\nvs\n%v", rdr, seq)
				}
				if !reflect.DeepEqual(seq, par) {
					t.Fatalf("per-epoch scan hits differ from sequential:\n%v\nvs\n%v", par, seq)
				}
			})
		}
	}
}

// TestReverseStepRoundTrip: reverse-step then step returns to the
// identical position and architectural state, at every watch stop of a
// racy recording.
func TestReverseStepRoundTrip(t *testing.T) {
	bt, rec := record(t, "racey", 2, 17)
	s := open(t, bt, rec, true)
	watchAll(s, bt)
	stops := 0
	for {
		hits, err := s.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if hits == nil {
			break
		}
		stops++
		pos, hash := s.Position(), s.StateHash()
		if err := s.ReverseStep(); err != nil {
			t.Fatalf("reverse-step at %v: %v", pos, err)
		}
		back := s.Position()
		if !back.Before(pos) {
			t.Fatalf("reverse-step did not move back: %v -> %v", pos, back)
		}
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if s.Position() != pos {
			t.Fatalf("round trip position %v != %v", s.Position(), pos)
		}
		if h := s.StateHash(); h != hash {
			t.Fatalf("round trip state %016x != %016x at %v", h, hash, pos)
		}
		if stops > 24 {
			break // bounded: round-trip cost is quadratic in prefix length
		}
	}
	if stops == 0 {
		t.Fatal("no watch stops reached")
	}
}

// TestReverseContinue: running backwards from the end visits exactly
// the forward stop points, in reverse order.
func TestReverseContinue(t *testing.T) {
	bt, rec := record(t, "racey", 2, 17)
	s := open(t, bt, rec, true)
	watchAll(s, bt)

	var fwd []debug.Position
	for {
		hits, err := s.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if hits == nil {
			break
		}
		fwd = append(fwd, s.Position())
	}
	if len(fwd) == 0 {
		t.Fatal("no forward stops")
	}

	// s now sits at the end; walk back.
	var rev []debug.Position
	for {
		hits, err := s.ReverseContinue()
		if err != nil {
			t.Fatal(err)
		}
		if hits == nil {
			if got := s.Position(); got != (debug.Position{}) {
				t.Fatalf("reverse-continue past all hits stopped at %v, want start", got)
			}
			break
		}
		rev = append(rev, s.Position())
	}
	if len(rev) != len(fwd) {
		t.Fatalf("reverse visited %d stops, forward %d", len(rev), len(fwd))
	}
	for i := range rev {
		if rev[i] != fwd[len(fwd)-1-i] {
			t.Fatalf("stop %d: reverse %v != forward %v", i, rev[i], fwd[len(fwd)-1-i])
		}
	}
}

// TestStepAndInspect exercises positioning and state inspection:
// run-to-epoch, run-to-cycle, step, step-over, registers, memory,
// stacks.
func TestStepAndInspect(t *testing.T) {
	bt, rec := record(t, "fft", 2, 17)
	s := open(t, bt, rec, true)
	n := s.NumEpochs()
	if n < 2 {
		t.Skipf("recording too short (%d epochs)", n)
	}

	if err := s.RunToEpoch(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Position(); got.Epoch != 1 || got.Step != 0 {
		t.Fatalf("run-to-epoch landed at %v", got)
	}
	ev, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if s.FuncName(ev.PC) == "" {
		t.Fatal("unnamed pc")
	}
	stack, err := s.Stack(ev.Tid)
	if err != nil {
		t.Fatal(err)
	}
	if len(stack) == 0 {
		t.Fatal("empty stack for running thread")
	}
	if regs := s.Thread(ev.Tid).Regs; len(regs) != vm.NumRegs {
		t.Fatal("register file wrong size")
	}
	if words := s.ReadMemory(vm.Word(bt.Prog.DataBase), 4); len(words) != 4 {
		t.Fatal("memory read wrong size")
	}

	// Step-over returns to the same frame depth of the stepped thread.
	for i := 0; i < 200 && !s.AtEnd(); i++ {
		tid, ok := s.NextTid()
		if !ok {
			break
		}
		th := s.Thread(tid)
		if th.PC < len(bt.Prog.Code) && bt.Prog.Code[th.PC].Op == vm.OpCall {
			d0 := len(th.Frames)
			if _, err := s.StepOver(); err != nil {
				t.Fatal(err)
			}
			if !s.AtEnd() && len(th.Frames) > d0 {
				t.Fatalf("step-over left thread %d at depth %d, started at %d", tid, len(th.Frames), d0)
			}
			break
		}
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// Run-to-cycle positions monotonically and agrees with the clock.
	mid := s.Cycles() + 1000
	if err := s.RunToCycle(mid); err != nil {
		t.Fatal(err)
	}
	if !s.AtEnd() && s.Cycles() < mid {
		t.Fatalf("run-to-cycle stopped at %d, wanted >= %d", s.Cycles(), mid)
	}
}

// TestBisectDeterministic: two recordings of a racy workload under
// different seeds share their initial state and diverge at one
// deterministic epoch — the same answer whether the sessions read
// decoded recordings or seekable logs, and the same bracket invariant
// (previous boundary agrees) every time.
func TestBisectDeterministic(t *testing.T) {
	bta, reca := record(t, "racey", 2, 11)
	btb, recb := record(t, "racey", 2, 12)

	var want int
	for round, viaReader := range []bool{false, true} {
		sa := open(t, bta, reca, viaReader)
		sb := open(t, btb, recb, viaReader)
		res, err := debug.Bisect(sa, sb)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Diverged {
			t.Fatal("different seeds did not diverge")
		}
		if res.Epoch == 0 {
			t.Fatal("racy recordings must share their initial state")
		}
		if round == 0 {
			want = res.Epoch
		} else if res.Epoch != want {
			t.Fatalf("bisect over reader found epoch %d, over recording %d", res.Epoch, want)
		}
		ha, err := sa.BoundaryHash(res.Epoch - 1)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := sb.BoundaryHash(res.Epoch - 1)
		if err != nil {
			t.Fatal(err)
		}
		if ha != hb {
			t.Fatalf("bracket broken: boundary %d differs", res.Epoch-1)
		}
		if res.Diff == nil || res.Diff.Equal {
			t.Fatal("divergent bisect carries no state diff")
		}
		if res.Diff.WordsDiffer == 0 && len(res.Diff.Threads) == 0 {
			t.Fatal("state diff is empty despite hash mismatch")
		}
	}

	// Same recording against itself: no divergence.
	sa := open(t, bta, reca, true)
	sb := open(t, bta, reca, false)
	res, err := debug.Bisect(sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("identical recordings reported divergent at %d", res.Epoch)
	}
}
