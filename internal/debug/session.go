// Package debug is the time-travel debugger built on deterministic
// replay: because a recording pins every scheduling decision, syscall
// result, and signal delivery, any point of the execution is reachable —
// and re-reachable, bit-identically — as "epoch-start checkpoint + k
// single-stepped instructions". A Session owns that arithmetic: it
// materializes epoch checkpoints lazily from a replay.Source (decoded
// recording or seekable dplog reader, the debugger cannot tell which),
// steps forward at guest-instruction granularity, and implements reverse
// execution as seek-to-nearest-prior-checkpoint plus bounded re-execute,
// the scheme rr popularized. Data watchpoints ride the vm.Hooks.OnMemWrite
// hook; divergence forensics between two recordings live in diff.go.
package debug

import (
	"context"
	"errors"
	"fmt"

	"doubleplay/internal/epoch"
	"doubleplay/internal/profile"
	"doubleplay/internal/replay"
	"doubleplay/internal/vm"
)

// ErrAtStart reports a reverse motion attempted at the very first
// instruction of the recording.
var ErrAtStart = errors.New("debug: already at the start of the recording")

// ErrAtEnd reports a forward motion attempted past the recording's end.
var ErrAtEnd = errors.New("debug: already at the end of the recording")

// Position is a point between instructions: Step instructions have
// retired inside epoch Epoch. The end of epoch e and the start of epoch
// e+1 are the same state; positions are normalized to the latter, so
// every machine state of the replayed execution has exactly one
// Position and positions order totally. The recording's end is
// (NumEpochs, 0).
type Position struct {
	Epoch int    `json:"epoch"`
	Step  uint64 `json:"step"`
}

// Before reports strict ordering.
func (p Position) Before(q Position) bool {
	return p.Epoch < q.Epoch || (p.Epoch == q.Epoch && p.Step < q.Step)
}

func (p Position) String() string { return fmt.Sprintf("epoch %d step %d", p.Epoch, p.Step) }

// Hit is one watchpoint trigger: the instruction that retired at PC on
// thread Tid changed the watched word at Addr from Old to New. Pos is
// the stop point — the position just after that instruction, where the
// session halts.
type Hit struct {
	Pos  Position `json:"pos"`
	Tid  int      `json:"tid"`
	PC   int      `json:"pc"`
	Addr vm.Word  `json:"addr"`
	Old  vm.Word  `json:"old"`
	New  vm.Word  `json:"new"`
}

// Session is a time-travel debugging session over one recording. It is
// not safe for concurrent use. All motion commands leave the session at
// a well-defined Position with a live machine to inspect; any error from
// the replay layer (hash mismatch, schedule divergence) is a debug
// assertion failure — the recording and program disagree — and poisons
// the session.
type Session struct {
	prog    *vm.Program
	src     replay.Source
	costs   *vm.CostModel
	quantum int64
	n       int // epochs in the recording
	ctx     context.Context

	// bounds[i] is the verified start boundary of epoch i (bounds[n] the
	// final state); grown lazily, always a prefix.
	bounds []*epoch.Boundary

	m       *vm.Machine
	stepper *replay.Stepper // nil exactly when pos.Epoch == n
	pos     Position

	watches   map[vm.Word]bool
	recording bool // watch hits are being collected into hits
	hits      []Hit
	resolver  *profile.StackResolver
}

// New opens a session positioned at the start of the recording. prog
// must be the program the recording was made from; the mismatch is
// detected immediately against the first epoch's start hash.
func New(prog *vm.Program, src replay.Source, costs *vm.CostModel) (*Session, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	s := &Session{
		prog:     prog,
		src:      src,
		costs:    costs,
		quantum:  src.Quantum(),
		n:        src.NumEpochs(),
		watches:  make(map[vm.Word]bool),
		resolver: profile.NewStackResolver(prog),
	}
	m := vm.NewMachine(prog, nil, costs)
	h := m.StateHash()
	if s.n > 0 {
		ep, err := src.EpochAt(0)
		if err != nil {
			return nil, err
		}
		if h != ep.StartHash {
			return nil, fmt.Errorf("debug: program state %016x does not match recording's first epoch start %016x — wrong program or parameters", h, ep.StartHash)
		}
	}
	s.bounds = []*epoch.Boundary{{
		Index:       0,
		CP:          m.Checkpoint(),
		Hash:        h,
		MappedPages: m.Mem.PageCount(),
	}}
	return s, s.restoreAt(0)
}

// SetContext installs a cancellation context consulted during long
// re-execution (materialize, seek, continue); a nil context never
// cancels.
func (s *Session) SetContext(ctx context.Context) { s.ctx = ctx }

func (s *Session) canceled() error {
	if s.ctx == nil {
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("debug: canceled at %s: %w", s.pos, err)
	}
	return nil
}

// NumEpochs returns the recording's epoch count.
func (s *Session) NumEpochs() int { return s.n }

// Program returns the recording's program name.
func (s *Session) Program() string { return s.src.Program() }

// Position returns the current stop point.
func (s *Session) Position() Position { return s.pos }

// AtEnd reports whether the session sits at the recording's final state.
func (s *Session) AtEnd() bool { return s.pos.Epoch >= s.n }

// Cycles returns the modelled cycle clock at the current position:
// the epoch boundary's committed cycle count plus the stepped-so-far
// cost inside the current epoch.
func (s *Session) Cycles() int64 {
	c := s.bounds[s.pos.Epoch].Cycle
	if s.stepper != nil {
		c += s.stepper.Cycles()
	}
	return c
}

// StateHash returns the architectural hash of the current state.
func (s *Session) StateHash() uint64 { return s.m.StateHash() }

// BoundaryHash returns the recorded state hash at boundary i (the state
// before epoch i; i == NumEpochs is the final state). This reads the
// log only — no execution — so it is identical however the recording is
// replayed.
func (s *Session) BoundaryHash(i int) (uint64, error) {
	switch {
	case i < 0 || i > s.n:
		return 0, fmt.Errorf("debug: boundary %d out of range 0..%d", i, s.n)
	case i == s.n:
		return s.src.FinalHash(), nil
	default:
		ep, err := s.src.EpochAt(i)
		if err != nil {
			return 0, err
		}
		return ep.StartHash, nil
	}
}

// Threads returns the live machine's threads for inspection. Mutating
// them corrupts the session.
func (s *Session) Threads() []*vm.Thread { return s.m.Threads }

// Thread returns thread tid, or nil.
func (s *Session) Thread(tid int) *vm.Thread { return s.m.Thread(tid) }

// ReadMemory returns n words of guest memory at addr, without touching
// the machine's access statistics.
func (s *Session) ReadMemory(addr vm.Word, n int) []vm.Word {
	out := make([]vm.Word, n)
	for i := range out {
		out[i] = s.m.Mem.Peek(addr + vm.Word(i))
	}
	return out
}

// Stack returns thread tid's guest call stack, outermost frame first,
// using the profiler's shadow-stack reconstruction.
func (s *Session) Stack(tid int) ([]string, error) {
	t := s.m.Thread(tid)
	if t == nil {
		return nil, fmt.Errorf("debug: no thread %d", tid)
	}
	return s.resolver.Stack(t), nil
}

// FuncName names the function containing pc.
func (s *Session) FuncName(pc int) string { return s.resolver.FuncName(pc) }

// NextTid reports the thread the schedule will run next, when known.
func (s *Session) NextTid() (int, bool) {
	if s.stepper == nil {
		return 0, false
	}
	return s.stepper.NextTid()
}

// AddWatch arms a data watchpoint on the guest word at addr.
func (s *Session) AddWatch(addr vm.Word) { s.watches[addr] = true }

// RemoveWatch disarms a watchpoint; it reports whether one was armed.
func (s *Session) RemoveWatch(addr vm.Word) bool {
	ok := s.watches[addr]
	delete(s.watches, addr)
	return ok
}

// Watches returns the armed watchpoint addresses in ascending order.
func (s *Session) Watches() []vm.Word {
	out := make([]vm.Word, 0, len(s.watches))
	for a := range s.watches {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// LastHits returns the watch hits of the most recent stop (nil when the
// last motion stopped for another reason).
func (s *Session) LastHits() []Hit { return s.hits }

// attachWatch installs the watchpoint hook on m. The hook observes
// every guest memory write (data, atomic, and syscall) and records a
// hit when an armed word actually changes.
func (s *Session) attachWatch(m *vm.Machine) {
	m.Hooks.OnMemWrite = func(tid int, addr, old, val vm.Word) {
		if !s.recording || old == val || !s.watches[addr] {
			return
		}
		t := m.Threads[tid]
		s.hits = append(s.hits, Hit{Tid: tid, PC: t.PC, Addr: addr, Old: old, New: val})
	}
}

// materialize grows the boundary prefix through index upTo by restoring
// the last known boundary and replaying whole epochs at full speed —
// the same runEpoch pass replay.CheckpointsFrom makes, done
// incrementally and cached for the life of the session.
func (s *Session) materialize(upTo int) error {
	if upTo > s.n {
		return fmt.Errorf("debug: epoch %d out of range 0..%d", upTo, s.n)
	}
	for len(s.bounds) <= upTo {
		if err := s.canceled(); err != nil {
			return err
		}
		e := len(s.bounds) - 1
		ep, err := s.src.EpochAt(e)
		if err != nil {
			return err
		}
		if s.bounds[e].Hash != ep.StartHash {
			return fmt.Errorf("debug: epoch %d checkpoint hash %016x != recorded start %016x",
				e, s.bounds[e].Hash, ep.StartHash)
		}
		m := s.bounds[e].CP.Restore(s.prog, nil, s.costs)
		c, err := replay.RunOneEpoch(m, ep, s.quantum, s.costs)
		if err != nil {
			return err
		}
		s.bounds = append(s.bounds, &epoch.Boundary{
			Index:       e + 1,
			Cycle:       s.bounds[e].Cycle + c,
			CP:          m.Checkpoint(),
			Hash:        ep.EndHash,
			MappedPages: m.Mem.PageCount(),
		})
	}
	return nil
}

// restoreAt rebuilds the live machine at boundary e (which must be
// materialized) and arms it for stepping through epoch e.
func (s *Session) restoreAt(e int) error {
	s.m = s.bounds[e].CP.Restore(s.prog, nil, s.costs)
	s.attachWatch(s.m)
	s.pos = Position{Epoch: e}
	s.stepper = nil
	if e == s.n {
		return nil
	}
	ep, err := s.src.EpochAt(e)
	if err != nil {
		return err
	}
	st, err := replay.NewStepper(s.m, ep, s.quantum, s.costs)
	if err != nil {
		return err
	}
	s.stepper = st
	// An epoch with nothing to retire is already complete; normalize
	// forward so the position stays canonical.
	for s.stepper != nil && s.stepper.Done() {
		if err := s.advanceEpoch(); err != nil {
			return err
		}
	}
	return nil
}

// advanceEpoch moves the session from the end of epoch pos.Epoch to the
// start of the next one, capturing the boundary checkpoint from the
// live machine if this is the first time the session has reached it.
func (s *Session) advanceEpoch() error {
	e := s.pos.Epoch
	if len(s.bounds) == e+1 {
		s.bounds = append(s.bounds, &epoch.Boundary{
			Index:       e + 1,
			Cycle:       s.bounds[e].Cycle + s.stepper.Cycles(),
			CP:          s.m.Checkpoint(),
			Hash:        s.stepper.Epoch().EndHash,
			MappedPages: s.m.Mem.PageCount(),
		})
	}
	s.pos = Position{Epoch: e + 1}
	s.stepper = nil
	if e+1 == s.n {
		return nil
	}
	ep, err := s.src.EpochAt(e + 1)
	if err != nil {
		return err
	}
	st, err := replay.NewStepper(s.m, ep, s.quantum, s.costs)
	if err != nil {
		return err
	}
	s.stepper = st
	return nil
}

// Step retires exactly one guest instruction and returns what retired.
// Watch hits produced by the instruction are in LastHits afterwards.
func (s *Session) Step() (replay.StepEvent, error) {
	if s.stepper == nil {
		return replay.StepEvent{}, ErrAtEnd
	}
	s.hits = s.hits[:0]
	s.recording = true
	ev, err := s.stepper.Step()
	s.recording = false
	if err != nil {
		return ev, err
	}
	s.pos.Step++
	for s.stepper != nil && s.stepper.Done() {
		if err := s.advanceEpoch(); err != nil {
			return ev, err
		}
	}
	for i := range s.hits {
		s.hits[i].Pos = s.pos
	}
	return ev, nil
}

// StepOver is Step that, when the next instruction is a call, keeps
// executing until the calling thread returns to its current frame depth
// — other threads interleave exactly as the recording says. It stops
// early on a watch hit or at the recording's end.
func (s *Session) StepOver() (replay.StepEvent, error) {
	tid, ok := s.NextTid()
	if !ok {
		return s.Step()
	}
	t := s.m.Thread(tid)
	isCall := t != nil && t.PC >= 0 && t.PC < len(s.prog.Code) && s.prog.Code[t.PC].Op == vm.OpCall
	d0 := len(t.Frames)
	ev, err := s.Step()
	if err != nil || !isCall {
		return ev, err
	}
	for s.stepper != nil && len(s.hits) == 0 && !(ev.Tid == tid && len(t.Frames) <= d0) {
		if err := s.canceled(); err != nil {
			return ev, err
		}
		if ev, err = s.Step(); err != nil {
			return ev, err
		}
	}
	return ev, nil
}

// seek repositions the session at p without recording watch hits:
// restore the nearest prior checkpoint and re-execute. Positioning
// never triggers watchpoints — only Continue-family motion does.
func (s *Session) seek(p Position) error {
	if err := s.materialize(p.Epoch); err != nil {
		return err
	}
	if err := s.restoreAt(p.Epoch); err != nil {
		return err
	}
	for i := uint64(0); i < p.Step; i++ {
		if i%4096 == 0 {
			if err := s.canceled(); err != nil {
				return err
			}
		}
		if _, err := s.Step(); err != nil {
			return err
		}
	}
	s.hits = s.hits[:0]
	return nil
}

// RunToEpoch positions the session at the start of epoch e (e ==
// NumEpochs is the final state). Watchpoints do not fire during
// positioning.
func (s *Session) RunToEpoch(e int) error {
	if e < 0 || e > s.n {
		return fmt.Errorf("debug: epoch %d out of range 0..%d", e, s.n)
	}
	return s.seek(Position{Epoch: e})
}

// RunToCycle positions the session at the first stop point whose cycle
// clock is >= c (or the recording's end). Watchpoints do not fire
// during positioning.
func (s *Session) RunToCycle(c int64) error {
	// Materialize boundaries forward until one passes c, then step
	// within the preceding epoch.
	e := 0
	for e < s.n {
		if err := s.materialize(e + 1); err != nil {
			return err
		}
		if s.bounds[e+1].Cycle > c {
			break
		}
		e++
	}
	if err := s.seek(Position{Epoch: e}); err != nil {
		return err
	}
	for s.stepper != nil && s.Cycles() < c {
		if _, err := s.Step(); err != nil {
			return err
		}
	}
	s.hits = s.hits[:0]
	return nil
}

// totalSteps returns how many instructions retire inside epoch e:
// the recorded targets minus the boundary's already-retired counts.
func (s *Session) totalSteps(e int) (uint64, error) {
	if err := s.materialize(e); err != nil {
		return 0, err
	}
	ep, err := s.src.EpochAt(e)
	if err != nil {
		return 0, err
	}
	var tot uint64
	for _, w := range ep.Targets {
		tot += w
	}
	for _, t := range s.bounds[e].CP.Threads {
		tot -= t.Retired
	}
	return tot, nil
}

// ReverseStep moves one instruction backwards: restore the epoch's
// start checkpoint and re-execute all but the last step. Deterministic
// replay makes this exact — the state reached is bit-identical to the
// one the forward execution passed through.
func (s *Session) ReverseStep() error {
	p := s.pos
	if p.Step > 0 {
		return s.seek(Position{Epoch: p.Epoch, Step: p.Step - 1})
	}
	for e := p.Epoch - 1; e >= 0; e-- {
		tot, err := s.totalSteps(e)
		if err != nil {
			return err
		}
		if tot > 0 {
			return s.seek(Position{Epoch: e, Step: tot - 1})
		}
	}
	return ErrAtStart
}

// Continue runs forward until a watched word changes, returning the
// hits of the stopping instruction, or nil when the recording ends
// first.
func (s *Session) Continue() ([]Hit, error) {
	for s.stepper != nil {
		if err := s.canceled(); err != nil {
			return nil, err
		}
		if _, err := s.Step(); err != nil {
			return nil, err
		}
		if len(s.hits) > 0 {
			return s.hits, nil
		}
	}
	return nil, nil
}

// ScanEpoch replays epoch e from its boundary on a scratch machine and
// returns every watch hit inside it, with stop-point positions. The
// session's own position is untouched. This is the epoch-local scan
// reverse-continue builds on; because each epoch scans independently
// from its checkpoint, the hit list for an epoch is the same whether
// the epochs are walked sequentially or in parallel.
func (s *Session) ScanEpoch(e int) ([]Hit, error) {
	if e < 0 || e >= s.n {
		return nil, fmt.Errorf("debug: epoch %d out of range 0..%d", e, s.n-1)
	}
	if err := s.materialize(e); err != nil {
		return nil, err
	}
	ep, err := s.src.EpochAt(e)
	if err != nil {
		return nil, err
	}
	mm := s.bounds[e].CP.Restore(s.prog, nil, s.costs)
	var hits []Hit
	var pending int
	mm.Hooks.OnMemWrite = func(tid int, addr, old, val vm.Word) {
		if old == val || !s.watches[addr] {
			return
		}
		t := mm.Threads[tid]
		hits = append(hits, Hit{Tid: tid, PC: t.PC, Addr: addr, Old: old, New: val})
		pending++
	}
	st, err := replay.NewStepper(mm, ep, s.quantum, s.costs)
	if err != nil {
		return nil, err
	}
	tot, err := s.totalSteps(e)
	if err != nil {
		return nil, err
	}
	for k := uint64(0); !st.Done(); k++ {
		if k%4096 == 0 {
			if err := s.canceled(); err != nil {
				return nil, err
			}
		}
		if _, err := st.Step(); err != nil {
			return nil, err
		}
		for ; pending > 0; pending-- {
			p := Position{Epoch: e, Step: k + 1}
			if k+1 == tot {
				p = Position{Epoch: e + 1}
			}
			hits[len(hits)-pending].Pos = p
		}
	}
	return hits, nil
}

// ReverseContinue runs backwards until a watched word changes: the
// session stops at the latest watch stop point strictly before the
// current position, or at the recording's start when there is none. It
// returns the hits of the stopping instruction (nil at the start).
func (s *Session) ReverseContinue() ([]Hit, error) {
	cur := s.pos
	e := cur.Epoch
	if e >= s.n {
		e = s.n - 1
	}
	for ; e >= 0; e-- {
		hits, err := s.ScanEpoch(e)
		if err != nil {
			return nil, err
		}
		best := -1
		for i, h := range hits {
			if h.Pos.Before(cur) {
				best = i
			}
		}
		if best < 0 {
			continue
		}
		stop := hits[best].Pos
		var at []Hit
		for _, h := range hits {
			if h.Pos == stop {
				at = append(at, h)
			}
		}
		if err := s.seek(stop); err != nil {
			return nil, err
		}
		s.hits = append(s.hits[:0], at...)
		return at, nil
	}
	if err := s.seek(Position{}); err != nil {
		return nil, err
	}
	return nil, nil
}
