// Divergence forensics: diff the guest states of two recordings of the
// same program at an epoch boundary, and bisect for the first boundary
// at which they differ. Racy programs recorded under different seeds
// start from identical initial states and drift apart the first time a
// race resolves differently; the recorded per-epoch state hashes pin
// down exactly where, without executing anything — execution is only
// needed to materialize the two states for the word-level diff.

package debug

import (
	"fmt"

	"doubleplay/internal/mem"
	"doubleplay/internal/vm"
)

// maxDiffWords bounds the word-level diff detail in a StateDiff;
// WordsDiffer always carries the full count.
const maxDiffWords = 64

// WordDiff is one guest memory word that differs between the states.
type WordDiff struct {
	Addr vm.Word `json:"addr"`
	A    vm.Word `json:"a"`
	B    vm.Word `json:"b"`
}

// ThreadDiff describes one thread that differs between the states.
// Fields are reported pairwise (A = first recording, B = second).
type ThreadDiff struct {
	Tid        int    `json:"tid"`
	OnlyIn     string `json:"only_in,omitempty"` // "a" or "b" when the other lacks the thread
	PCA        int    `json:"pc_a"`
	PCB        int    `json:"pc_b"`
	FuncA      string `json:"func_a,omitempty"`
	FuncB      string `json:"func_b,omitempty"`
	RetiredA   uint64 `json:"retired_a"`
	RetiredB   uint64 `json:"retired_b"`
	StatusA    string `json:"status_a,omitempty"`
	StatusB    string `json:"status_b,omitempty"`
	RegsDiffer []int  `json:"regs_differ,omitempty"`
}

// StateDiff is the guest-state delta between two recordings at one
// epoch boundary. Equal means the architectural hashes match (and the
// remaining fields are empty).
type StateDiff struct {
	Epoch       int          `json:"epoch"`
	Equal       bool         `json:"equal"`
	HashA       string       `json:"hash_a"`
	HashB       string       `json:"hash_b"`
	ThreadsA    int          `json:"threads_a"`
	ThreadsB    int          `json:"threads_b"`
	Threads     []ThreadDiff `json:"threads,omitempty"`
	PagesDiffer int          `json:"pages_differ"`
	WordsDiffer int          `json:"words_differ"`
	Words       []WordDiff   `json:"words,omitempty"` // first maxDiffWords of them
}

// BisectResult reports where two recordings first diverge.
type BisectResult struct {
	Diverged bool `json:"diverged"`
	// Epoch is the first boundary at which the recorded state hashes
	// differ: the states before epoch Epoch disagree, the states before
	// Epoch-1 agree, so the divergence happened inside epoch Epoch-1.
	Epoch int `json:"epoch,omitempty"`
	// Tail marks divergence by length only: every common boundary
	// agrees but one recording has more epochs.
	Tail    bool       `json:"tail,omitempty"`
	EpochsA int        `json:"epochs_a"`
	EpochsB int        `json:"epochs_b"`
	HashA   string     `json:"hash_a,omitempty"`
	HashB   string     `json:"hash_b,omitempty"`
	Diff    *StateDiff `json:"diff,omitempty"`
}

// DiffAt replays both sessions to boundary e and diffs their guest
// states: threads (pc, retired, status, registers) and memory words.
// Both sessions must be over recordings of the same program.
func DiffAt(a, b *Session, e int) (*StateDiff, error) {
	ha, err := a.BoundaryHash(e)
	if err != nil {
		return nil, fmt.Errorf("debug: recording A: %w", err)
	}
	hb, err := b.BoundaryHash(e)
	if err != nil {
		return nil, fmt.Errorf("debug: recording B: %w", err)
	}
	d := &StateDiff{
		Epoch: e,
		Equal: ha == hb,
		HashA: fmt.Sprintf("%016x", ha),
		HashB: fmt.Sprintf("%016x", hb),
	}
	if err := a.RunToEpoch(e); err != nil {
		return nil, fmt.Errorf("debug: recording A: %w", err)
	}
	if err := b.RunToEpoch(e); err != nil {
		return nil, fmt.Errorf("debug: recording B: %w", err)
	}
	d.ThreadsA = len(a.m.Threads)
	d.ThreadsB = len(b.m.Threads)
	if d.Equal {
		return d, nil
	}

	n := max(d.ThreadsA, d.ThreadsB)
	for tid := 0; tid < n; tid++ {
		ta, tb := a.m.Thread(tid), b.m.Thread(tid)
		switch {
		case tb == nil:
			d.Threads = append(d.Threads, ThreadDiff{
				Tid: tid, OnlyIn: "a", PCA: ta.PC, FuncA: a.FuncName(ta.PC),
				RetiredA: ta.Retired, StatusA: ta.Status.String(),
			})
		case ta == nil:
			d.Threads = append(d.Threads, ThreadDiff{
				Tid: tid, OnlyIn: "b", PCB: tb.PC, FuncB: b.FuncName(tb.PC),
				RetiredB: tb.Retired, StatusB: tb.Status.String(),
			})
		default:
			td := ThreadDiff{
				Tid: tid,
				PCA: ta.PC, PCB: tb.PC,
				RetiredA: ta.Retired, RetiredB: tb.Retired,
				StatusA: ta.Status.String(), StatusB: tb.Status.String(),
			}
			for r := 0; r < vm.NumRegs; r++ {
				if ta.Regs[r] != tb.Regs[r] {
					td.RegsDiffer = append(td.RegsDiffer, r)
				}
			}
			if ta.PC != tb.PC || ta.Retired != tb.Retired || ta.Status != tb.Status ||
				len(td.RegsDiffer) > 0 || len(ta.Frames) != len(tb.Frames) {
				td.FuncA, td.FuncB = a.FuncName(ta.PC), b.FuncName(tb.PC)
				d.Threads = append(d.Threads, td)
			}
		}
	}

	pageSize := vm.Word(1) << mem.PageShift
	for _, pg := range a.m.Mem.DiffPages(b.m.Mem) {
		base := pg * pageSize
		differed := false
		for off := vm.Word(0); off < pageSize; off++ {
			av, bv := a.m.Mem.Peek(base+off), b.m.Mem.Peek(base+off)
			if av == bv {
				continue
			}
			differed = true
			d.WordsDiffer++
			if len(d.Words) < maxDiffWords {
				d.Words = append(d.Words, WordDiff{Addr: base + off, A: av, B: bv})
			}
		}
		if differed {
			d.PagesDiffer++
		}
	}
	return d, nil
}

// Bisect finds the first epoch boundary at which two recordings'
// states diverge. The search runs over the *recorded* per-boundary
// state hashes — pure log reads, so the answer is identical whatever
// replay strategy or byte source backs each session — and only the
// final word-level diff replays anything. The returned Epoch always
// satisfies: boundary Epoch-1 hashes agree, boundary Epoch hashes
// differ (a racy execution that diverged and later reconverged would
// report the first divergent boundary of some divergent interval,
// which binary search still finds deterministically).
func Bisect(a, b *Session) (*BisectResult, error) {
	res := &BisectResult{EpochsA: a.NumEpochs(), EpochsB: b.NumEpochs()}
	differs := func(i int) (bool, uint64, uint64, error) {
		ha, err := a.BoundaryHash(i)
		if err != nil {
			return false, 0, 0, fmt.Errorf("debug: recording A: %w", err)
		}
		hb, err := b.BoundaryHash(i)
		if err != nil {
			return false, 0, 0, fmt.Errorf("debug: recording B: %w", err)
		}
		return ha != hb, ha, hb, err
	}

	d0, ha, hb, err := differs(0)
	if err != nil {
		return nil, err
	}
	if d0 {
		// Different initial states: not two recordings of the same
		// program build, so "first divergent epoch" is the very start.
		res.Diverged, res.Epoch = true, 0
		res.HashA, res.HashB = fmt.Sprintf("%016x", ha), fmt.Sprintf("%016x", hb)
		diff, err := DiffAt(a, b, 0)
		if err != nil {
			return nil, err
		}
		res.Diff = diff
		return res, nil
	}

	hi := min(res.EpochsA, res.EpochsB)
	dHi, ha, hb, err := differs(hi)
	if err != nil {
		return nil, err
	}
	if !dHi {
		if res.EpochsA == res.EpochsB {
			return res, nil // identical executions, boundary for boundary
		}
		// Common prefix agrees completely; one recording simply ran on.
		res.Diverged, res.Tail, res.Epoch = true, true, hi
		res.HashA, res.HashB = fmt.Sprintf("%016x", ha), fmt.Sprintf("%016x", hb)
		return res, nil
	}

	lo := 0 // invariant: boundary lo agrees, boundary hi differs
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		d, _, _, err := differs(mid)
		if err != nil {
			return nil, err
		}
		if d {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.Diverged, res.Epoch = true, hi
	diff, err := DiffAt(a, b, hi)
	if err != nil {
		return nil, err
	}
	res.HashA, res.HashB = diff.HashA, diff.HashB
	res.Diff = diff
	return res, nil
}
