package dplog

// Chunk enumeration: the store's dedup layer splits a v6 recording on
// section boundaries, and — for uncompressed sections — on the encoded
// group boundaries *inside* each section payload. Epoch boundary hashes
// and schedules entangle the seed into every epoch, so whole sections of
// same-program/different-seed runs almost never match byte for byte; the
// syscall and sync-order groups, in contrast, are driven by the program
// and frequently do. Splitting the payload at those group boundaries is
// what lets a content-addressed chunk store share them.
//
// The enumeration is a pure function of the file bytes: every chunk is a
// verbatim [Offset, Offset+Len) span, the spans are contiguous, and they
// cover the file exactly, so concatenating chunk contents reproduces the
// recording bit for bit.

import (
	"errors"
	"fmt"
	"sort"
)

// ChunkKind classifies a chunk span for stats and fsck narration; the
// byte content is what identifies it in the store.
type ChunkKind uint8

const (
	// ChunkHeader is the fixed file header, [0, bodyOff).
	ChunkHeader ChunkKind = iota
	// ChunkEpochMeta is a section's frame head plus the epoch metadata
	// group (index, flags, boundary hashes, targets, schedule) — the
	// seed-entangled part of an epoch.
	ChunkEpochMeta
	// ChunkSyscalls is a section's syscall group (count + records).
	ChunkSyscalls
	// ChunkSync is a section's trailing signal + sync-order groups.
	ChunkSync
	// ChunkSection is a whole section frame kept as one chunk (compressed
	// sections, whose payload bytes expose no group boundaries).
	ChunkSection
	// ChunkIndex is the trailing section index plus footer.
	ChunkIndex
)

// String names a chunk kind for reports.
func (k ChunkKind) String() string {
	switch k {
	case ChunkHeader:
		return "header"
	case ChunkEpochMeta:
		return "epoch-meta"
	case ChunkSyscalls:
		return "syscalls"
	case ChunkSync:
		return "sync"
	case ChunkSection:
		return "section"
	case ChunkIndex:
		return "index"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Chunk is one verbatim byte span of an encoded recording.
type Chunk struct {
	Kind   ChunkKind
	Epoch  int // epoch id the span belongs to; -1 for header and index
	Offset int64
	Len    int64
}

// ErrNoChunks reports a file whose layout cannot be enumerated as
// verbatim chunk spans (legacy v4/v5 streams and recovered logs, which
// have no intact index).
var ErrNoChunks = errors.New("dplog: no chunkable section layout")

// minSubChunk folds sub-section groups smaller than this into the
// preceding span: a two-byte chunk costs more to track than it can ever
// save. The fold depends only on the section's own bytes, so two
// identical sections always split identically.
const minSubChunk = 16

// Chunks enumerates the file as contiguous verbatim spans covering it
// exactly: the header, per-section spans (split at the epoch-metadata /
// syscall / sync group boundaries when the section is stored
// uncompressed, whole otherwise), and the trailing index + footer.
func (r *Reader) Chunks() ([]Chunk, error) {
	if r.legacy != nil || r.recovered || r.idxOff == 0 {
		return nil, ErrNoChunks
	}
	secs := make([]SectionInfo, len(r.index))
	copy(secs, r.index)
	sort.Slice(secs, func(i, j int) bool { return secs[i].Offset < secs[j].Offset })

	chunks := make([]Chunk, 0, 3*len(secs)+2)
	chunks = append(chunks, Chunk{Kind: ChunkHeader, Epoch: -1, Offset: 0, Len: r.bodyOff})
	next := r.bodyOff
	for _, info := range secs {
		if info.Offset != next {
			return nil, fmt.Errorf("dplog: section for epoch %d at offset %d, expected %d", info.Epoch, info.Offset, next)
		}
		sub, err := r.sectionChunks(info)
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, sub...)
		next = sub[len(sub)-1].Offset + sub[len(sub)-1].Len
	}
	if next != r.idxOff {
		return nil, fmt.Errorf("dplog: sections end at offset %d, index starts at %d", next, r.idxOff)
	}
	chunks = append(chunks, Chunk{Kind: ChunkIndex, Epoch: -1, Offset: r.idxOff, Len: r.size - r.idxOff})
	return chunks, nil
}

// sectionChunks splits one section frame into verbatim spans. The frame
// head is re-parsed from the file (rather than re-encoded) so the split
// is correct even for non-canonical varints.
func (r *Reader) sectionChunks(info SectionInfo) ([]Chunk, error) {
	br := newBreader(r.src, r.size, info.Offset)
	marker, err := br.ReadByte()
	if err != nil || marker != sectionMarker {
		return nil, fmt.Errorf("dplog: epoch %d: no section frame at offset %d", info.Epoch, info.Offset)
	}
	d := &decoder{r: br}
	got, payload, err := d.sectionHead(info.Offset)
	if err != nil {
		return nil, fmt.Errorf("dplog: epoch %d: %w", info.Epoch, err)
	}
	if got != info {
		return nil, fmt.Errorf("dplog: epoch %d: section frame disagrees with index", info.Epoch)
	}
	end := br.pos
	payloadStart := end - info.Stored
	whole := Chunk{Kind: ChunkSection, Epoch: info.Epoch, Offset: info.Offset, Len: end - info.Offset}
	if info.Compressed() {
		return []Chunk{whole}, nil
	}
	metaLen, sysLen, err := epochGroupBounds(payload)
	if err != nil {
		return nil, fmt.Errorf("dplog: epoch %d: %w", info.Epoch, err)
	}
	out := []Chunk{{Kind: ChunkEpochMeta, Epoch: info.Epoch, Offset: info.Offset, Len: payloadStart - info.Offset + int64(metaLen)}}
	push := func(kind ChunkKind, n int64) {
		if n == 0 {
			return
		}
		if n < minSubChunk {
			out[len(out)-1].Len += n
			return
		}
		last := out[len(out)-1]
		out = append(out, Chunk{Kind: kind, Epoch: info.Epoch, Offset: last.Offset + last.Len, Len: n})
	}
	push(ChunkSyscalls, int64(sysLen-metaLen))
	push(ChunkSync, int64(len(payload)-sysLen))
	return out, nil
}

// epochGroupBounds parses an uncompressed section payload (the v6 epoch
// body layout) and returns the byte offsets at which the epoch-metadata
// group ends (after the schedule) and the syscall group ends (before
// signals). The whole body is decoded, so a payload that would not
// decode is rejected here rather than split wrong.
func epochGroupBounds(body []byte) (metaEnd, sysEnd int, err error) {
	sc := newPayloadScanner(body)
	d := &decoder{r: sc}
	if _, err = d.u(); err != nil { // index
		return 0, 0, err
	}
	if _, err = d.u(); err != nil { // flags
		return 0, 0, err
	}
	for i := 0; i < 3; i++ { // start/end/commit hashes
		if _, err = d.u(); err != nil {
			return 0, 0, err
		}
	}
	nt, err := d.u()
	if err != nil {
		return 0, 0, err
	}
	if nt > 1<<20 {
		return 0, 0, fmt.Errorf("target count %d too large", nt)
	}
	for i := uint64(0); i < nt; i++ {
		if _, err = d.u(); err != nil {
			return 0, 0, err
		}
	}
	ns, err := d.u()
	if err != nil {
		return 0, 0, err
	}
	if ns > 1<<28 {
		return 0, 0, fmt.Errorf("slice count %d too large", ns)
	}
	for i := uint64(0); i < ns; i++ {
		if _, err = d.u(); err != nil {
			return 0, 0, err
		}
		if _, err = d.u(); err != nil {
			return 0, 0, err
		}
	}
	metaEnd = sc.pos()
	nsys, err := d.u()
	if err != nil {
		return 0, 0, err
	}
	if nsys > 1<<28 {
		return 0, 0, fmt.Errorf("syscall count %d too large", nsys)
	}
	var sr SyscallRecord
	for i := uint64(0); i < nsys; i++ {
		if err = d.syscall(&sr); err != nil {
			return 0, 0, err
		}
	}
	sysEnd = sc.pos()
	// Parse the remainder (signals + sync order) too, so a payload that
	// would not decode never gets split.
	nsig, err := d.u()
	if err != nil {
		return 0, 0, err
	}
	if nsig > 1<<28 {
		return 0, 0, fmt.Errorf("signal count %d too large", nsig)
	}
	for i := uint64(0); i < nsig; i++ {
		if _, err = d.u(); err != nil {
			return 0, 0, err
		}
		if _, err = d.u(); err != nil {
			return 0, 0, err
		}
		if _, err = d.i(); err != nil {
			return 0, 0, err
		}
	}
	nsync, err := d.u()
	if err != nil {
		return 0, 0, err
	}
	if nsync > 1<<28 {
		return 0, 0, fmt.Errorf("sync count %d too large", nsync)
	}
	for i := uint64(0); i < nsync; i++ {
		if _, err = d.u(); err != nil {
			return 0, 0, err
		}
		if _, err = d.u(); err != nil {
			return 0, 0, err
		}
		if _, err = d.i(); err != nil {
			return 0, 0, err
		}
	}
	if sc.pos() != len(body) {
		return 0, 0, fmt.Errorf("trailing bytes after epoch body")
	}
	return metaEnd, sysEnd, nil
}

// payloadScanner is a byteScanner over a slice that exposes its position.
type payloadScanner struct {
	b []byte
	n int
}

func newPayloadScanner(b []byte) *payloadScanner { return &payloadScanner{b: b} }

func (s *payloadScanner) pos() int { return s.n }

func (s *payloadScanner) ReadByte() (byte, error) {
	if s.n >= len(s.b) {
		return 0, errTruncatedPayload
	}
	c := s.b[s.n]
	s.n++
	return c, nil
}

func (s *payloadScanner) Read(p []byte) (int, error) {
	if s.n >= len(s.b) {
		return 0, errTruncatedPayload
	}
	n := copy(p, s.b[s.n:])
	s.n += n
	return n, nil
}

var errTruncatedPayload = errors.New("dplog: truncated section payload")
