package dplog

import (
	"bytes"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"doubleplay/internal/vm"
)

// -update regenerates the committed testdata fixtures from the current
// encoder. Golden tests then pin the on-disk bytes against docs/FORMAT.md.
var update = flag.Bool("update", false, "rewrite testdata golden fixtures")

// fixtureRecording is the hand-built deterministic recording every golden
// and fixture test encodes. Values are explicit (no PRNG) so the fixtures
// never depend on math/rand stream stability across Go releases.
func fixtureRecording() *Recording {
	sys := SyscallRecord{Tid: 1, Num: 7, Ret: -1}
	sys.Args = [6]vm.Word{1, 2, 3, 4, 5, 6}
	sys.Writes = []vm.MemWrite{{Addr: 4096, Data: []vm.Word{11, -22, 33}}}
	// A repetitive schedule long enough that epoch 0's section compresses;
	// the other epochs stay tiny, so they are stored raw — the fixtures
	// cover both flag states.
	var sched []Slice
	for i := 0; i < 64; i++ {
		sched = append(sched, Slice{Tid: i % 2, N: 250})
	}
	return &Recording{
		Program:    "fixture",
		Workers:    3,
		Seed:       -42,
		FinalHash:  0xfeedc0de,
		OutputHash: 0x0ddba11,
		Quantum:    250,
		Epochs: []*EpochLog{
			{
				Index:      0,
				StartHash:  0x100,
				EndHash:    0x101,
				CommitHash: 0x102,
				Targets:    []uint64{500, 750},
				Schedule:   sched,
				Syscalls:   []SyscallRecord{sys},
				SyncOrder:  []SyncRecord{{Tid: 0, Kind: vm.ObjLock, ID: 9}, {Tid: 1, Kind: vm.ObjLock, ID: 9}},
			},
			{
				Index:      1,
				Certified:  true,
				StartHash:  0x101,
				EndHash:    0x103,
				CommitHash: 0x104,
				Targets:    []uint64{1000},
				SyncOrder:  []SyncRecord{{Tid: 1, Kind: vm.ObjLock, ID: 9}, {Tid: 0, Kind: vm.ObjLock, ID: 9}},
			},
			{
				Index:      2,
				StartHash:  0x103,
				EndHash:    0x105,
				CommitHash: 0x106,
				Targets:    []uint64{1250},
				Schedule:   []Slice{{Tid: 1, N: 250}},
				Signals:    []SignalRecord{{Tid: 0, Retired: 1100, Sig: 15}},
			},
		},
	}
}

// encodeLegacy renders rec in one of the retired flat layouts (v4 or v5),
// exactly as the old encoders wrote them, for backward-decode fixtures.
func encodeLegacy(rec *Recording, ver int) []byte {
	var buf bytes.Buffer
	e := newEncoder(&buf)
	buf.WriteString(magic)
	e.u(uint64(ver))
	e.str(rec.Program)
	e.u(uint64(rec.Workers))
	e.i(rec.Seed)
	e.u(uint64(len(rec.Epochs)))
	e.u(rec.FinalHash)
	e.u(rec.OutputHash)
	if ver >= 5 {
		e.i(rec.Quantum)
	}
	for _, ep := range rec.Epochs {
		if ver >= 5 {
			e.epochReplayPart(ep)
		} else {
			// v4: no per-epoch flags varint.
			e.u(uint64(ep.Index))
			e.u(ep.StartHash)
			e.u(ep.EndHash)
			e.u(ep.CommitHash)
			e.u(uint64(len(ep.Targets)))
			for _, t := range ep.Targets {
				e.u(t)
			}
			e.u(uint64(len(ep.Schedule)))
			for _, s := range ep.Schedule {
				e.u(uint64(s.Tid))
				e.u(s.N)
			}
			e.u(uint64(len(ep.Syscalls)))
			for i := range ep.Syscalls {
				e.syscall(&ep.Syscalls[i])
			}
			e.u(uint64(len(ep.Signals)))
			for _, s := range ep.Signals {
				e.u(uint64(s.Tid))
				e.u(s.Retired)
				e.i(s.Sig)
			}
		}
		e.epochSyncPart(ep)
	}
	return buf.Bytes()
}

// legacyFixture is fixtureRecording as a v4 or v5 stream would have
// carried it: v4 predates certification, so its expected decode has the
// certified flag cleared, and both predate nothing else relevant; v4 also
// has no quantum.
func legacyFixture(ver int) *Recording {
	rec := fixtureRecording()
	if ver < 5 {
		rec.Quantum = 0
		for _, ep := range rec.Epochs {
			ep.Certified = false
		}
	}
	return rec
}

func goldenPath(name string) string { return filepath.Join("testdata", name) }

// golden compares data against the committed fixture, rewriting it under
// -update.
func golden(t *testing.T, name string, data []byte) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/dplog -run %s -update` to create it)", err, t.Name())
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("%s: encoding drifted from the committed golden bytes (%d vs %d bytes); if the format change is intentional, update docs/FORMAT.md and regenerate with -update", name, len(data), len(want))
	}
}

// TestGoldenV6Raw pins the uncompressed v6 encoding byte-for-byte: every
// byte of this fixture is described by docs/FORMAT.md.
func TestGoldenV6Raw(t *testing.T) {
	data := MarshalBytesWith(fixtureRecording(), EncodeOptions{})
	golden(t, "v6_raw.dplog", data)
	got, err := UnmarshalBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(fixtureRecording())) {
		t.Fatal("golden v6 raw fixture does not decode to the fixture recording")
	}
}

// TestGoldenV6Compressed pins that a committed compressed log decodes
// correctly. DEFLATE output may differ across Go releases, so this golden
// asserts decode equivalence, not byte-identical re-encoding.
func TestGoldenV6Compressed(t *testing.T) {
	if *update {
		golden(t, "v6_comp.dplog", MarshalBytes(fixtureRecording()))
	}
	data, err := os.ReadFile(goldenPath("v6_comp.dplog"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(fixtureRecording())) {
		t.Fatal("golden v6 compressed fixture does not decode to the fixture recording")
	}
	rd, err := OpenReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Legacy() || rd.Recovered() {
		t.Fatalf("compressed fixture: legacy=%v recovered=%v", rd.Legacy(), rd.Recovered())
	}
	compressed := 0
	for _, s := range rd.Sections() {
		if s.Compressed() {
			compressed++
		}
	}
	if compressed == 0 {
		t.Fatal("compressed fixture has no compressed sections")
	}
}

// TestLegacyFixturesDecode pins that committed v4/v5 files decode
// bit-identically to their expected recordings, through both Unmarshal
// and the Reader.
func TestLegacyFixturesDecode(t *testing.T) {
	for _, ver := range []int{4, 5} {
		name := map[int]string{4: "v4.dplog", 5: "v5.dplog"}[ver]
		if *update {
			golden(t, name, encodeLegacy(legacyFixture(ver), ver))
		}
		data, err := os.ReadFile(goldenPath(name))
		if err != nil {
			t.Fatal(err)
		}
		want := normalize(legacyFixture(ver))
		got, err := UnmarshalBytes(data)
		if err != nil {
			t.Fatalf("v%d: %v", ver, err)
		}
		if !reflect.DeepEqual(normalize(got), want) {
			t.Fatalf("v%d fixture decode mismatch", ver)
		}
		rd, err := OpenReaderBytes(data)
		if err != nil {
			t.Fatalf("v%d: %v", ver, err)
		}
		if !rd.Legacy() || rd.Header().Version != ver {
			t.Fatalf("v%d reader: legacy=%v version=%d", ver, rd.Legacy(), rd.Header().Version)
		}
		full, err := rd.Recording()
		if err != nil {
			t.Fatalf("v%d: %v", ver, err)
		}
		if !reflect.DeepEqual(normalize(full), want) {
			t.Fatalf("v%d reader decode mismatch", ver)
		}
		if ep, err := rd.Seek(1); err != nil || ep.Index != 1 {
			t.Fatalf("v%d Seek(1): %v %v", ver, ep, err)
		}
	}
}

// countingReaderAt counts the bytes actually requested from the
// underlying storage — the deterministic stand-in for seek latency.
type countingReaderAt struct {
	data []byte
	n    int64
}

func (c *countingReaderAt) ReadAt(p []byte, off int64) (int, error) {
	n, err := bytes.NewReader(c.data).ReadAt(p, off)
	c.n += int64(n)
	return n, err
}

// bigRecording synthesises a recording with many non-trivial epochs.
func bigRecording(t *testing.T, epochs int) *Recording {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	rec := randomRecording(rng)
	rec.Epochs = rec.Epochs[:0]
	for i := 0; i < epochs; i++ {
		ep := &EpochLog{Index: i, StartHash: uint64(i), EndHash: uint64(i + 1)}
		for s := 0; s < 40; s++ {
			ep.Schedule = append(ep.Schedule, Slice{Tid: rng.Intn(4), N: uint64(rng.Intn(1000))})
			ep.SyncOrder = append(ep.SyncOrder, SyncRecord{Tid: rng.Intn(4), Kind: vm.ObjLock, ID: vm.Word(rng.Intn(8))})
		}
		rec.Epochs = append(rec.Epochs, ep)
	}
	return rec
}

// TestSeekReadsOnlyOneSection is the acceptance check for random access:
// seeking one epoch out of many touches the header, footer, index, and
// exactly one section — a small fraction of the file.
func TestSeekReadsOnlyOneSection(t *testing.T) {
	rec := bigRecording(t, 64)
	data := MarshalBytes(rec)
	src := &countingReaderAt{data: data}
	rd, err := OpenReader(src, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Legacy() || rd.Recovered() {
		t.Fatal("expected an intact v6 reader")
	}
	openCost := src.n
	ep, err := rd.Seek(63)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeEpoch(ep), normalizeEpoch(rec.Epochs[63])) {
		t.Fatal("seeked epoch differs from the recorded one")
	}
	seekCost := src.n - openCost
	if max := int64(len(data)) / 4; openCost+seekCost >= max {
		t.Fatalf("seek touched %d+%d bytes of a %d-byte log; want < %d", openCost, seekCost, len(data), max)
	}
	if _, err := rd.Seek(64); !errors.Is(err, ErrNoEpoch) {
		t.Fatalf("Seek(64) = %v, want ErrNoEpoch", err)
	}
}

func normalizeEpoch(ep *EpochLog) *EpochLog {
	r := &Recording{Epochs: []*EpochLog{ep}}
	return normalize(r).Epochs[0]
}

// TestReaderMatchesUnmarshal pins that the random-access path and the
// sequential decoder agree on every epoch, compressed and raw.
func TestReaderMatchesUnmarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		rec := randomRecording(rng)
		for _, opt := range []EncodeOptions{{}, {Compress: true}} {
			data := MarshalBytesWith(rec, opt)
			seq, err := UnmarshalBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			rd, err := OpenReaderBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			full, err := rd.Recording()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalize(full), normalize(seq)) {
				t.Fatalf("trial %d compress=%v: reader and sequential decode disagree", trial, opt.Compress)
			}
			for _, ep := range rec.Epochs {
				got, err := rd.Seek(ep.Index)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(normalizeEpoch(got), normalizeEpoch(ep)) {
					t.Fatalf("trial %d: Seek(%d) mismatch", trial, ep.Index)
				}
			}
		}
	}
}

// TestIndexRecovery truncates a log mid-section and checks the reader
// recovers every section before the cut.
func TestIndexRecovery(t *testing.T) {
	rec := bigRecording(t, 16)
	data := MarshalBytes(rec)
	rd, err := OpenReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside section 9: everything before it must survive.
	cut := rd.Sections()[9].Offset + 3
	trunc, err := OpenReaderBytes(data[:cut])
	if err != nil {
		t.Fatal(err)
	}
	if !trunc.Recovered() {
		t.Fatal("truncated log did not trigger a recovery scan")
	}
	if got := trunc.NumSections(); got != 9 {
		t.Fatalf("recovered %d sections, want 9", got)
	}
	for i := 0; i < 9; i++ {
		ep, err := trunc.EpochAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeEpoch(ep), normalizeEpoch(rec.Epochs[i])) {
			t.Fatalf("recovered epoch %d differs", i)
		}
	}
	// Flipping a payload byte of a middle section stops recovery there.
	bad := append([]byte(nil), data[:cut]...)
	bad[rd.Sections()[4].Offset+8] ^= 0xff
	dam, err := OpenReaderBytes(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !dam.Recovered() || dam.NumSections() >= 9 {
		t.Fatalf("damaged log: recovered=%v sections=%d", dam.Recovered(), dam.NumSections())
	}
}

// TestWriteRange pins the epoch-range extraction: the subset file is a
// standalone v6 log whose sections are byte-identical to the source's.
func TestWriteRange(t *testing.T) {
	rec := bigRecording(t, 12)
	data := MarshalBytes(rec)
	rd, err := OpenReaderBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rd.WriteRange(&buf, 3, 5); err != nil {
		t.Fatal(err)
	}
	sub, err := OpenReaderBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sub.Legacy() || sub.Recovered() {
		t.Fatal("subset log should be an intact v6 file")
	}
	if got := sub.NumSections(); got != 3 {
		t.Fatalf("subset has %d sections, want 3", got)
	}
	for i, want := range rd.Sections()[3:6] {
		got := sub.Sections()[i]
		if got.Epoch != want.Epoch || got.Stored != want.Stored || got.Raw != want.Raw ||
			got.Flags != want.Flags || got.CRC != want.CRC {
			t.Fatalf("subset section %d metadata differs: %+v vs %+v", i, got, want)
		}
		ep, err := sub.Seek(want.Epoch)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeEpoch(ep), normalizeEpoch(rec.Epochs[want.Epoch])) {
			t.Fatalf("subset epoch %d differs", want.Epoch)
		}
	}
	if sub.Header().Program != rec.Program || sub.Header().Quantum != rec.Quantum {
		t.Fatal("subset header lost the source metadata")
	}
	if err := rd.WriteRange(&bytes.Buffer{}, 10, 14); !errors.Is(err, ErrNoEpoch) {
		t.Fatalf("out-of-range WriteRange = %v, want ErrNoEpoch", err)
	}
}

// TestUpgrade pins the migration path: legacy and damaged logs rewrite to
// intact v6; current logs pass through untouched.
func TestUpgrade(t *testing.T) {
	rec := fixtureRecording()
	legacy := encodeLegacy(legacyFixture(5), 5)
	up, changed, err := Upgrade(legacy)
	if err != nil || !changed {
		t.Fatalf("Upgrade(v5): changed=%v err=%v", changed, err)
	}
	got, err := UnmarshalBytes(up)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(got), normalize(rec)) {
		t.Fatal("upgraded v5 log decodes differently")
	}
	same, changed, err := Upgrade(up)
	if err != nil || changed {
		t.Fatalf("Upgrade(v6): changed=%v err=%v", changed, err)
	}
	if !bytes.Equal(same, up) {
		t.Fatal("Upgrade of an intact v6 log must pass bytes through")
	}
	// A truncated v6 log upgrades to an intact file holding the survivors.
	big := MarshalBytes(bigRecording(t, 8))
	rd, _ := OpenReaderBytes(big)
	cut := rd.Sections()[5].Offset
	repaired, changed, err := Upgrade(big[:cut])
	if err != nil || !changed {
		t.Fatalf("Upgrade(truncated): changed=%v err=%v", changed, err)
	}
	fixed, err := OpenReaderBytes(repaired)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Recovered() || fixed.NumSections() != 5 {
		t.Fatalf("repaired log: recovered=%v sections=%d", fixed.Recovered(), fixed.NumSections())
	}
}

func TestParseEpochRange(t *testing.T) {
	cases := []struct {
		in     string
		lo, hi int
		ok     bool
	}{
		{"0", 0, 0, true},
		{"7", 7, 7, true},
		{"2..5", 2, 5, true},
		{"3..3", 3, 3, true},
		{"", 0, 0, false},
		{"5..2", 0, 0, false},
		{"..4", 0, 0, false},
		{"4..", 0, 0, false},
		{"1..2..3", 0, 0, false},
		{"-1", 0, 0, false},
		{"x", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := ParseEpochRange(c.in)
		if c.ok != (err == nil) || (c.ok && (lo != c.lo || hi != c.hi)) {
			t.Fatalf("ParseEpochRange(%q) = %d,%d,%v; want %d,%d ok=%v", c.in, lo, hi, err, c.lo, c.hi, c.ok)
		}
	}
}
