package dplog

// Reader gives random access to a recording on storage: it loads only the
// fixed header and the trailing section index, then decodes individual
// epoch sections on demand. Legacy v4/v5 flat streams open through the
// same API (fully decoded up front, since they have no index), so callers
// never need to version-sniff themselves.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// breader is a positioned sequential reader over an io.ReaderAt with a
// small internal buffer, so varint-by-varint frame parsing does not issue
// one ReadAt per byte. Its position is exact: pos is always the file
// offset of the next byte it will deliver.
type breader struct {
	src    io.ReaderAt
	size   int64
	pos    int64
	buf    [512]byte
	bufOff int64 // file offset of buf[0]; -1 when the buffer is empty
	bufLen int
}

func newBreader(src io.ReaderAt, size, off int64) *breader {
	return &breader{src: src, size: size, pos: off, bufOff: -1}
}

func (b *breader) fill() error {
	n := int64(len(b.buf))
	if rest := b.size - b.pos; rest < n {
		n = rest
	}
	if n <= 0 {
		return io.EOF
	}
	m, err := b.src.ReadAt(b.buf[:n], b.pos)
	if m == 0 {
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	b.bufOff, b.bufLen = b.pos, m
	return nil
}

func (b *breader) buffered() []byte {
	if b.bufOff < 0 || b.pos < b.bufOff || b.pos >= b.bufOff+int64(b.bufLen) {
		return nil
	}
	return b.buf[b.pos-b.bufOff : b.bufLen]
}

func (b *breader) ReadByte() (byte, error) {
	w := b.buffered()
	if w == nil {
		if err := b.fill(); err != nil {
			return 0, err
		}
		w = b.buffered()
	}
	b.pos++
	return w[0], nil
}

func (b *breader) Read(p []byte) (int, error) {
	if w := b.buffered(); w != nil {
		n := copy(p, w)
		b.pos += int64(n)
		return n, nil
	}
	if b.pos >= b.size {
		return 0, io.EOF
	}
	if rest := b.size - b.pos; int64(len(p)) > rest {
		p = p[:rest]
	}
	n, err := b.src.ReadAt(p, b.pos)
	b.pos += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

// Reader is a seekable view of an encoded recording.
type Reader struct {
	src  io.ReaderAt
	size int64
	hdr  Header
	// bodyOff is the file offset of the first section: where the fixed
	// header ends, and where an index-recovery scan starts.
	bodyOff int64
	// idxOff is the file offset of the section index (the first byte of
	// the DPIX magic); zero for legacy and recovered files, where no
	// intact index was located.
	idxOff    int64
	index     []SectionInfo
	byID      map[int]int // epoch id -> position in index
	recovered bool
	legacy    []*EpochLog // decoded epochs when the file is v4/v5
}

// OpenReader opens an encoded recording of the given size for random
// access. For v6 files it reads the header, footer, and section index;
// if the footer or index is unreadable (a truncated or corrupted log) it
// falls back to a forward recovery scan over intact sections and marks
// the reader Recovered. Legacy v4/v5 files are decoded in full.
//
// The returned Reader is safe for concurrent use as long as src's ReadAt
// is (bytes.Reader and os.File both qualify).
func OpenReader(src io.ReaderAt, size int64) (*Reader, error) {
	br := newBreader(src, size, 0)
	d := &decoder{r: br}
	h, err := d.header()
	if err != nil {
		return nil, err
	}
	r := &Reader{src: src, size: size, hdr: h, bodyOff: br.pos}
	if h.Version < 6 {
		r.legacy = make([]*EpochLog, h.Sections)
		for i := range r.legacy {
			ep, err := d.epoch(uint64(h.Version))
			if err != nil {
				return nil, fmt.Errorf("dplog: epoch %d: %w", i, err)
			}
			r.legacy[i] = ep
		}
		return r, nil
	}
	if err := r.loadIndex(); err != nil {
		r.recoverScan()
		r.recovered = true
	}
	r.byID = make(map[int]int, len(r.index))
	for i, s := range r.index {
		r.byID[s.Epoch] = i
	}
	return r, nil
}

// OpenReaderBytes opens an in-memory encoded recording for random access.
func OpenReaderBytes(b []byte) (*Reader, error) {
	return OpenReader(bytes.NewReader(b), int64(len(b)))
}

// loadIndex reads the footer and section index from the tail of the file
// and validates both.
func (r *Reader) loadIndex() error {
	if r.size < r.bodyOff+footerLen {
		return fmt.Errorf("dplog: file too short for a footer")
	}
	var foot [footerLen]byte
	if _, err := r.src.ReadAt(foot[:], r.size-footerLen); err != nil {
		return err
	}
	if string(foot[12:16]) != trailerMagic {
		return fmt.Errorf("dplog: bad trailer magic")
	}
	idxOff := int64(binary.LittleEndian.Uint64(foot[0:8]))
	if idxOff < r.bodyOff || idxOff > r.size-footerLen {
		return fmt.Errorf("dplog: footer index offset %d out of range", idxOff)
	}
	idx := make([]byte, r.size-footerLen-idxOff)
	if _, err := r.src.ReadAt(idx, idxOff); err != nil {
		return err
	}
	if got := crc32.ChecksumIEEE(idx); got != binary.LittleEndian.Uint32(foot[8:12]) {
		return fmt.Errorf("dplog: index CRC mismatch")
	}
	if len(idx) < len(indexMagic) || string(idx[:len(indexMagic)]) != indexMagic {
		return fmt.Errorf("dplog: bad index magic")
	}
	d := &decoder{r: newBytesScanner(idx[len(indexMagic):])}
	entries, err := d.indexEntries()
	if err != nil {
		return err
	}
	if len(entries) != r.hdr.Sections {
		return fmt.Errorf("dplog: index has %d entries, header declares %d", len(entries), r.hdr.Sections)
	}
	seen := make(map[int]bool, len(entries))
	for i, s := range entries {
		if s.Offset < r.bodyOff || s.Offset >= idxOff {
			return fmt.Errorf("dplog: index entry %d offset %d out of range", i, s.Offset)
		}
		if seen[s.Epoch] {
			return fmt.Errorf("dplog: index lists epoch %d twice", s.Epoch)
		}
		seen[s.Epoch] = true
	}
	r.index = entries
	r.idxOff = idxOff
	return nil
}

// recoverScan rebuilds the section index by walking frames forward from
// the end of the header, keeping every section whose frame parses and
// whose payload CRC checks, and stopping at the first damage. This is
// the truncated-log path: everything up to the cut survives.
func (r *Reader) recoverScan() {
	r.index = r.index[:0]
	br := newBreader(r.src, r.size, r.bodyOff)
	d := &decoder{r: br}
	for {
		off := br.pos
		marker, err := br.ReadByte()
		if err != nil || marker != sectionMarker {
			return
		}
		info, _, err := d.sectionHead(off)
		if err != nil {
			return
		}
		r.index = append(r.index, info)
	}
}

// newBytesScanner adapts a byte slice to the decoder's reader surface.
func newBytesScanner(b []byte) byteScanner { return bytes.NewReader(b) }

// Header returns the file's decoded fixed header.
func (r *Reader) Header() Header { return r.hdr }

// Size returns the encoded recording's byte length.
func (r *Reader) Size() int64 { return r.size }

// Legacy reports whether the file predates the sectioned format (v4/v5).
func (r *Reader) Legacy() bool { return r.legacy != nil }

// Recovered reports whether the section index was rebuilt by a recovery
// scan because the footer or index was unreadable. A recovered reader
// may expose fewer sections than the header declares.
func (r *Reader) Recovered() bool { return r.recovered }

// NumSections returns the number of readable epoch sections.
func (r *Reader) NumSections() int {
	if r.legacy != nil {
		return len(r.legacy)
	}
	return len(r.index)
}

// Sections returns the section index in file order. It is empty for
// legacy files, which have no index. The returned slice is shared; treat
// it as read-only.
func (r *Reader) Sections() []SectionInfo { return r.index }

// EpochAt decodes the section at position pos in file order, reading
// only that section's bytes.
func (r *Reader) EpochAt(pos int) (*EpochLog, error) {
	if pos < 0 || pos >= r.NumSections() {
		return nil, fmt.Errorf("%w: section position %d of %d", ErrNoEpoch, pos, r.NumSections())
	}
	if r.legacy != nil {
		return r.legacy[pos], nil
	}
	return r.decodeSection(r.index[pos])
}

// Seek decodes the section for the given epoch id without touching any
// other section, returning ErrNoEpoch if the log does not contain it.
func (r *Reader) Seek(epoch int) (*EpochLog, error) {
	if r.legacy != nil {
		for _, ep := range r.legacy {
			if ep.Index == epoch {
				return ep, nil
			}
		}
		return nil, fmt.Errorf("%w: epoch %d", ErrNoEpoch, epoch)
	}
	pos, ok := r.byID[epoch]
	if !ok {
		return nil, fmt.Errorf("%w: epoch %d", ErrNoEpoch, epoch)
	}
	return r.decodeSection(r.index[pos])
}

// decodeSection reads and decodes exactly one section frame, verifying
// that the frame on disk matches the index entry.
func (r *Reader) decodeSection(info SectionInfo) (*EpochLog, error) {
	br := newBreader(r.src, r.size, info.Offset)
	marker, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("dplog: epoch %d: %w", info.Epoch, err)
	}
	if marker != sectionMarker {
		return nil, fmt.Errorf("dplog: epoch %d: no section frame at offset %d", info.Epoch, info.Offset)
	}
	d := &decoder{r: br}
	got, ep, err := d.sectionFrame(info.Offset)
	if err != nil {
		return nil, fmt.Errorf("dplog: epoch %d: %w", info.Epoch, err)
	}
	if got != info {
		return nil, fmt.Errorf("dplog: epoch %d: section frame disagrees with index", info.Epoch)
	}
	return ep, nil
}

// sectionBytes returns the complete encoded frame (marker, frame fields,
// stored payload) for an index entry, verbatim from the file.
func (r *Reader) sectionBytes(info SectionInfo) ([]byte, SectionInfo, error) {
	br := newBreader(r.src, r.size, info.Offset)
	marker, err := br.ReadByte()
	if err != nil || marker != sectionMarker {
		return nil, info, fmt.Errorf("dplog: epoch %d: no section frame at offset %d", info.Epoch, info.Offset)
	}
	d := &decoder{r: br}
	got, _, err := d.sectionHead(info.Offset)
	if err != nil {
		return nil, info, fmt.Errorf("dplog: epoch %d: %w", info.Epoch, err)
	}
	if got != info {
		return nil, info, fmt.Errorf("dplog: epoch %d: section frame disagrees with index", info.Epoch)
	}
	frame := make([]byte, br.pos-info.Offset)
	if _, err := r.src.ReadAt(frame, info.Offset); err != nil {
		return nil, info, err
	}
	return frame, got, nil
}

// Range decodes epochs lo..hi inclusive by id, seeking to each.
func (r *Reader) Range(lo, hi int) ([]*EpochLog, error) {
	if lo > hi {
		return nil, fmt.Errorf("dplog: bad epoch range %d..%d", lo, hi)
	}
	eps := make([]*EpochLog, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		ep, err := r.Seek(id)
		if err != nil {
			return nil, err
		}
		eps = append(eps, ep)
	}
	return eps, nil
}

// Recording decodes every readable section and returns the full
// recording. For an intact v6 file this is identical to UnmarshalBytes
// on the same data; for a recovered file it returns the surviving
// prefix.
func (r *Reader) Recording() (*Recording, error) {
	rec := recordingOf(r.hdr)
	n := r.NumSections()
	rec.Epochs = make([]*EpochLog, 0, n)
	for pos := 0; pos < n; pos++ {
		ep, err := r.EpochAt(pos)
		if err != nil {
			return nil, err
		}
		rec.Epochs = append(rec.Epochs, ep)
	}
	return rec, nil
}

// WriteRange writes a standalone v6 log containing exactly epochs lo..hi
// inclusive (by id), reusing the source header's metadata. Sections of a
// v6 source are copied verbatim — same bytes, same flags, same CRC —
// so a remote replayer gets exactly what the recorder wrote; legacy
// epochs are re-encoded as fresh sections.
func (r *Reader) WriteRange(w io.Writer, lo, hi int) error {
	if lo > hi {
		return fmt.Errorf("dplog: bad epoch range %d..%d", lo, hi)
	}
	type part struct {
		frame []byte // verbatim v6 frame, nil for legacy epochs
		info  SectionInfo
		ep    *EpochLog
	}
	parts := make([]part, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		if r.legacy != nil {
			ep, err := r.Seek(id)
			if err != nil {
				return err
			}
			parts = append(parts, part{ep: ep})
			continue
		}
		pos, ok := r.byID[id]
		if !ok {
			return fmt.Errorf("%w: epoch %d", ErrNoEpoch, id)
		}
		frame, info, err := r.sectionBytes(r.index[pos])
		if err != nil {
			return err
		}
		parts = append(parts, part{frame: frame, info: info})
	}
	ow := &offsetWriter{w: w}
	enc := newEncoder(ow)
	enc.header(r.hdr, len(parts))
	entries := make([]SectionInfo, 0, len(parts))
	for _, p := range parts {
		if p.frame != nil {
			entries = append(entries, enc.copySection(p.frame, p.info, ow.n))
		} else {
			entries = append(entries, enc.section(p.ep, ow.n, true))
		}
	}
	enc.indexAndFooter(ow.n, entries)
	return nil
}

// Upgrade rewrites any decodable log as the current sectioned format.
// It returns the (possibly unchanged) encoding and whether a rewrite
// happened: current-format intact logs pass through verbatim, legacy
// logs are re-encoded, and recovered logs are rewritten with only their
// surviving sections (repairing the index).
func Upgrade(data []byte) ([]byte, bool, error) {
	rd, err := OpenReaderBytes(data)
	if err != nil {
		return nil, false, err
	}
	if !rd.Legacy() && !rd.Recovered() {
		return data, false, nil
	}
	rec, err := rd.Recording()
	if err != nil {
		return nil, false, err
	}
	return MarshalBytes(rec), true, nil
}

// ParseEpochRange parses an epoch range argument: either a single epoch
// id "n" or an inclusive range "n..m".
func ParseEpochRange(s string) (lo, hi int, err error) {
	parse := func(t string) (int, error) {
		if t == "" {
			return 0, fmt.Errorf("empty epoch id")
		}
		n := 0
		for _, c := range t {
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("bad epoch id %q", t)
			}
			n = n*10 + int(c-'0')
			if n > maxEpochs {
				return 0, fmt.Errorf("epoch id %q too large", t)
			}
		}
		return n, nil
	}
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '.' && s[i+1] == '.' {
			if lo, err = parse(s[:i]); err != nil {
				return 0, 0, err
			}
			if hi, err = parse(s[i+2:]); err != nil {
				return 0, 0, err
			}
			if lo > hi {
				return 0, 0, fmt.Errorf("bad epoch range %q: %d > %d", s, lo, hi)
			}
			return lo, hi, nil
		}
	}
	if lo, err = parse(s); err != nil {
		return 0, 0, err
	}
	return lo, lo, nil
}
