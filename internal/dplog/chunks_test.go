package dplog

import (
	"bytes"
	"errors"
	"testing"
)

// checkCoverage asserts the chunk list is contiguous, covers the file
// exactly, and reassembles it bit for bit.
func checkCoverage(t *testing.T, data []byte, chunks []Chunk) {
	t.Helper()
	var next int64
	var out bytes.Buffer
	for i, c := range chunks {
		if c.Offset != next {
			t.Fatalf("chunk %d (%s) starts at %d, want %d", i, c.Kind, c.Offset, next)
		}
		if c.Len <= 0 {
			t.Fatalf("chunk %d (%s) has length %d", i, c.Kind, c.Len)
		}
		out.Write(data[c.Offset : c.Offset+c.Len])
		next = c.Offset + c.Len
	}
	if next != int64(len(data)) {
		t.Fatalf("chunks end at %d, file has %d bytes", next, len(data))
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatalf("reassembled chunks differ from the file")
	}
}

func TestChunksCoverFile(t *testing.T) {
	rec := fixtureRecording()
	for _, tc := range []struct {
		name     string
		compress bool
	}{{"uncompressed", false}, {"compressed", true}} {
		t.Run(tc.name, func(t *testing.T) {
			data := MarshalBytesWith(rec, EncodeOptions{Compress: tc.compress})
			rd, err := OpenReaderBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			chunks, err := rd.Chunks()
			if err != nil {
				t.Fatal(err)
			}
			checkCoverage(t, data, chunks)
			if chunks[0].Kind != ChunkHeader || chunks[0].Epoch != -1 {
				t.Fatalf("first chunk = %+v, want header", chunks[0])
			}
			last := chunks[len(chunks)-1]
			if last.Kind != ChunkIndex || last.Epoch != -1 {
				t.Fatalf("last chunk = %+v, want index", last)
			}
			// Every section contributes at least one span carrying its
			// epoch id.
			seen := map[int]bool{}
			for _, c := range chunks {
				if c.Epoch >= 0 {
					seen[c.Epoch] = true
				}
			}
			for _, ep := range rec.Epochs {
				if !seen[ep.Index] {
					t.Fatalf("no chunk carries epoch %d", ep.Index)
				}
			}
		})
	}
}

// TestChunksSplitUncompressedSections pins the dedup-critical property:
// an uncompressed section with a sizeable syscall group is split at the
// group boundary, and two recordings that differ only in their
// seed-entangled metadata share the syscall span byte for byte.
func TestChunksSplitUncompressedSections(t *testing.T) {
	build := func(hash uint64) *Recording {
		rec := fixtureRecording()
		for _, ep := range rec.Epochs {
			ep.StartHash += hash
			ep.EndHash += hash
			ep.CommitHash += hash
		}
		rec.FinalHash += hash
		return rec
	}
	span := func(t *testing.T, rec *Recording) []byte {
		t.Helper()
		data := MarshalBytesWith(rec, EncodeOptions{Compress: false})
		rd, err := OpenReaderBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		chunks, err := rd.Chunks()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range chunks {
			if c.Kind == ChunkSyscalls && c.Epoch == 0 {
				return data[c.Offset : c.Offset+c.Len]
			}
		}
		t.Fatalf("no syscall chunk for epoch 0 in %v", chunks)
		return nil
	}
	a := span(t, build(0))
	b := span(t, build(0x9999))
	if !bytes.Equal(a, b) {
		t.Fatalf("syscall spans differ across seed-perturbed recordings:\n%x\n%x", a, b)
	}
}

func TestChunksRefusesLegacyAndRecovered(t *testing.T) {
	legacy := encodeLegacy(legacyFixture(5), 5)
	rd, err := OpenReaderBytes(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Chunks(); !errors.Is(err, ErrNoChunks) {
		t.Fatalf("legacy Chunks() err = %v, want ErrNoChunks", err)
	}

	// Truncate a v6 log mid-index: the reader recovers, but chunk
	// enumeration must refuse (no intact index span to reproduce).
	data := MarshalBytes(fixtureRecording())
	trunc := data[:len(data)-footerLen-2]
	rd, err = OpenReaderBytes(trunc)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Recovered() {
		t.Fatal("truncated log did not enter recovery")
	}
	if _, err := rd.Chunks(); !errors.Is(err, ErrNoChunks) {
		t.Fatalf("recovered Chunks() err = %v, want ErrNoChunks", err)
	}
}
