package dplog

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzUnmarshal drives the section decoder with arbitrary bytes: it must
// never panic, and whenever a mutated input still decodes, the recording
// must survive a re-encode round trip through both the sequential decoder
// and the random-access reader.
func FuzzUnmarshal(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4; i++ {
		rec := randomRecording(rng)
		f.Add(MarshalBytes(rec))
		f.Add(MarshalBytesWith(rec, EncodeOptions{}))
	}
	f.Add(encodeLegacy(legacyFixture(4), 4))
	f.Add(encodeLegacy(legacyFixture(5), 5))
	f.Add([]byte(magic))
	f.Add([]byte("DPLG\x06"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := UnmarshalBytes(data)
		if err == nil {
			again, err := UnmarshalBytes(MarshalBytes(rec))
			if err != nil {
				t.Fatalf("re-encode of a decodable input failed: %v", err)
			}
			if !reflect.DeepEqual(normalize(again), normalize(rec)) {
				t.Fatal("re-encode round trip changed the recording")
			}
		}
		// The reader must tolerate the same input: open errors are fine,
		// panics and section/sequential disagreement are not.
		rd, err := OpenReaderBytes(data)
		if err != nil {
			return
		}
		full, err := rd.Recording()
		if err != nil {
			return
		}
		if rec != nil && !rd.Recovered() {
			if !reflect.DeepEqual(normalize(full), normalize(rec)) {
				t.Fatal("reader and sequential decoder disagree on the same bytes")
			}
		}
		var buf bytes.Buffer
		if rd.NumSections() > 0 {
			first := full.Epochs[0].Index
			if err := rd.WriteRange(&buf, first, first); err == nil {
				if _, err := OpenReaderBytes(buf.Bytes()); err != nil {
					t.Fatalf("WriteRange emitted an unreadable log: %v", err)
				}
			}
		}
	})
}
