package dplog

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"doubleplay/internal/vm"
)

// randomRecording synthesises a structurally valid recording.
func randomRecording(rng *rand.Rand) *Recording {
	rec := &Recording{
		Program:    "prog-" + string(rune('a'+rng.Intn(26))),
		Workers:    rng.Intn(8),
		Seed:       rng.Int63() - rng.Int63(),
		FinalHash:  rng.Uint64(),
		OutputHash: rng.Uint64(),
		Quantum:    int64(rng.Intn(5000)),
	}
	for e := 0; e < rng.Intn(5); e++ {
		ep := &EpochLog{
			Index:     e,
			StartHash: rng.Uint64(),
			EndHash:   rng.Uint64(),
			Certified: rng.Intn(3) == 0,
		}
		for i := 0; i < rng.Intn(6); i++ {
			ep.Targets = append(ep.Targets, rng.Uint64()>>16)
		}
		for i := 0; i < rng.Intn(10); i++ {
			ep.Schedule = append(ep.Schedule, Slice{Tid: rng.Intn(8), N: uint64(rng.Intn(10000))})
		}
		for i := 0; i < rng.Intn(5); i++ {
			sr := SyscallRecord{
				Tid: rng.Intn(8),
				Num: vm.Word(rng.Intn(20)),
				Ret: vm.Word(rng.Int63() - rng.Int63()),
			}
			for a := range sr.Args {
				sr.Args[a] = vm.Word(rng.Intn(1000) - 500)
			}
			for wi := 0; wi < rng.Intn(3); wi++ {
				data := make([]vm.Word, rng.Intn(6))
				for d := range data {
					data[d] = vm.Word(rng.Int63() - rng.Int63())
				}
				sr.Writes = append(sr.Writes, vm.MemWrite{Addr: vm.Word(rng.Intn(1 << 20)), Data: data})
			}
			ep.Syscalls = append(ep.Syscalls, sr)
		}
		for i := 0; i < rng.Intn(8); i++ {
			ep.SyncOrder = append(ep.SyncOrder, SyncRecord{
				Tid:  rng.Intn(8),
				Kind: vm.ObjKind(rng.Intn(3)),
				ID:   vm.Word(rng.Intn(100) - 50),
			})
		}
		for i := 0; i < rng.Intn(4); i++ {
			ep.Signals = append(ep.Signals, SignalRecord{
				Tid:     rng.Intn(8),
				Retired: rng.Uint64() >> 20,
				Sig:     vm.Word(1 + rng.Intn(30)),
			})
		}
		ep.CommitHash = rng.Uint64()
		rec.Epochs = append(rec.Epochs, ep)
	}
	return rec
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rec := randomRecording(rng)
		data := MarshalBytes(rec)
		got, err := UnmarshalBytes(data)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		return reflect.DeepEqual(normalize(rec), normalize(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps nil and empty slices to a canonical form for DeepEqual.
func normalize(r *Recording) *Recording {
	c := *r
	c.Epochs = make([]*EpochLog, len(r.Epochs))
	for i, ep := range r.Epochs {
		e := *ep
		if len(e.Targets) == 0 {
			e.Targets = nil
		}
		if len(e.Schedule) == 0 {
			e.Schedule = nil
		}
		if len(e.Syscalls) == 0 {
			e.Syscalls = nil
		}
		if len(e.SyncOrder) == 0 {
			e.SyncOrder = nil
		}
		if len(e.Signals) == 0 {
			e.Signals = nil
		}
		for j := range e.Syscalls {
			if len(e.Syscalls[j].Writes) == 0 {
				e.Syscalls[j].Writes = nil
			} else {
				for k := range e.Syscalls[j].Writes {
					if len(e.Syscalls[j].Writes[k].Data) == 0 {
						e.Syscalls[j].Writes[k].Data = nil
					}
				}
			}
		}
		c.Epochs[i] = &e
	}
	return &c
}

func TestBadMagicRejected(t *testing.T) {
	_, err := UnmarshalBytes([]byte("NOPE1234"))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadVersionRejected(t *testing.T) {
	data := MarshalBytes(&Recording{Program: "x"})
	data[4] = 99 // version varint follows the 4-byte magic
	_, err := UnmarshalBytes(data)
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var rec *Recording
	for {
		rec = randomRecording(rng)
		if len(rec.Epochs) > 0 && len(rec.Epochs[0].Schedule) > 0 {
			break
		}
	}
	data := MarshalBytes(rec)
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := UnmarshalBytes(data[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(data))
		}
	}
}

func TestSizesAndCounts(t *testing.T) {
	rec := &Recording{
		Program: "sizes",
		Epochs: []*EpochLog{
			{
				Targets:   []uint64{10, 20},
				Schedule:  []Slice{{Tid: 0, N: 10}, {Tid: 1, N: 20}},
				Syscalls:  []SyscallRecord{{Tid: 0, Num: 3, Ret: 1}},
				SyncOrder: []SyncRecord{{Tid: 0, Kind: vm.ObjLock, ID: 7}},
			},
			{
				Schedule: []Slice{{Tid: 1, N: 5}},
			},
		},
	}
	if rec.Slices() != 3 || rec.SyscallCount() != 1 || rec.SyncOps() != 1 {
		t.Fatalf("counts: %d %d %d", rec.Slices(), rec.SyscallCount(), rec.SyncOps())
	}
	replaySize := rec.ReplaySize()
	fullSize := rec.FullSize()
	if replaySize <= 0 || fullSize <= replaySize {
		t.Fatalf("sizes: replay=%d full=%d", replaySize, fullSize)
	}
	// FullSize is flat framing-free accounting; the v6 container adds
	// section frames, the index, and the footer on top of it. An
	// uncompressed encoding is therefore strictly larger than FullSize,
	// and never by less than the fixed footer.
	if got := len(MarshalBytesWith(rec, EncodeOptions{})); got <= fullSize+footerLen {
		t.Fatalf("raw v6 encoding = %d bytes, want > FullSize %d + footer", got, fullSize)
	}
	// Certifying an epoch moves its sync order into the replay state.
	rec.Epochs[0].Certified = true
	if grown := rec.ReplaySize(); grown <= replaySize {
		t.Fatalf("certified ReplaySize=%d, want > uncertified %d", grown, replaySize)
	}
	if rec.FullSize() != fullSize {
		t.Fatalf("FullSize changed with certification: %d vs %d", rec.FullSize(), fullSize)
	}
}

// TestV4StreamDecodes pins backward compatibility: a pre-certification
// v4 stream (no header quantum, no per-epoch flags) must still load,
// with Quantum zero and no epoch certified.
func TestV4StreamDecodes(t *testing.T) {
	var buf bytes.Buffer
	e := newEncoder(&buf)
	buf.WriteString(magic)
	e.u(4)
	e.str("legacy")
	e.u(2)     // workers
	e.i(7)     // seed
	e.u(1)     // epochs
	e.u(0xabc) // final hash
	e.u(0xdef) // output hash
	e.u(3)     // epoch index (no flags varint in v4)
	e.u(0x11)  // start hash
	e.u(0x22)  // end hash
	e.u(0x33)  // commit hash
	e.u(1)     // targets
	e.u(40)    //   target[0]
	e.u(1)     // slices
	e.u(0)     //   tid
	e.u(40)    //   n
	e.u(0)     // syscalls
	e.u(0)     // signals
	e.u(1)     // sync ops
	e.u(1)     //   tid
	e.u(0)     //   kind
	e.i(9)     //   id
	rec, err := UnmarshalBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Program != "legacy" || rec.Quantum != 0 {
		t.Fatalf("header: %+v", rec)
	}
	ep := rec.Epochs[0]
	if ep.Certified || ep.Index != 3 || ep.StartHash != 0x11 || len(ep.SyncOrder) != 1 {
		t.Fatalf("epoch: %+v", ep)
	}
	// And a version below the window is rejected.
	old := MarshalBytes(&Recording{Program: "x"})
	old[4] = 3
	if _, err := UnmarshalBytes(old); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("v3 accepted: %v", err)
	}
}

func TestSyscallRecordMatches(t *testing.T) {
	r := &SyscallRecord{Tid: 1, Num: 5, Args: [6]vm.Word{1, 2, 3, 4, 5, 6}}
	if !r.Matches(1, 5, [6]vm.Word{1, 2, 3, 4, 5, 6}) {
		t.Fatal("exact match failed")
	}
	if r.Matches(2, 5, r.Args) || r.Matches(1, 6, r.Args) || r.Matches(1, 5, [6]vm.Word{9}) {
		t.Fatal("mismatch accepted")
	}
}

func TestRecordingString(t *testing.T) {
	rec := &Recording{Program: "x"}
	if s := rec.String(); !strings.Contains(s, "x") || !strings.Contains(s, "0 epochs") {
		t.Fatalf("String() = %q", s)
	}
}

func TestMarshalToWriter(t *testing.T) {
	rec := randomRecording(rand.New(rand.NewSource(9)))
	var buf bytes.Buffer
	if err := Marshal(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != rec.Program || len(got.Epochs) != len(rec.Epochs) {
		t.Fatal("writer round trip mismatch")
	}
}
