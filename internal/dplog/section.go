package dplog

// The v6 sectioned layer: each epoch is stored as one framed,
// self-contained, optionally DEFLATE-compressed section, followed by an
// offset index and a fixed-size footer that locates it. The framing is
// deliberately minimal — a marker byte, five varints, payload — in the
// compact style of mpack-like binary codecs: every field is either
// fixed-width or length-prefixed, so a decoder never scans for
// delimiters. docs/FORMAT.md is the normative byte-level spec.

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// sectionMarker opens every section frame.
	sectionMarker = 'S'
	// indexMagic opens the section index; its first byte ('D') is what
	// tells a sequential decoder the sections have ended.
	indexMagic = "DPIX"
	// trailerMagic closes the file.
	trailerMagic = "DPLX"

	// footerLen is the fixed footer size: a little-endian uint64 index
	// offset, a little-endian uint32 CRC-32 (IEEE) of the index bytes,
	// and the 4-byte trailer magic.
	footerLen = 16

	// maxSectionLen bounds stored and raw payload sizes against hostile
	// frames.
	maxSectionLen = 1 << 30
)

// Section flags, stored in each section frame and echoed in the index.
const (
	// SectionCompressed marks a payload stored as a raw DEFLATE stream.
	SectionCompressed = 1 << 0
	// SectionCertified marks an epoch that was committed without
	// verification (mirrors the epoch's certified flag, so tooling can
	// tell without decompressing).
	SectionCertified = 1 << 1
)

// SectionInfo is one entry of the section index: where an epoch's
// section lives and how to validate it.
type SectionInfo struct {
	Epoch  int    // epoch id the section carries
	Offset int64  // file offset of the section's 'S' marker byte
	Stored int64  // payload length as stored in the file
	Raw    int64  // payload length after decompression
	Flags  uint64 // SectionCompressed | SectionCertified
	CRC    uint32 // CRC-32 (IEEE) of the stored payload bytes
}

// Compressed reports whether the section payload is DEFLATE-compressed.
func (s SectionInfo) Compressed() bool { return s.Flags&SectionCompressed != 0 }

// Certified reports whether the section's epoch was certified.
func (s SectionInfo) Certified() bool { return s.Flags&SectionCertified != 0 }

// readN reads exactly n bytes, growing the buffer only as the stream
// actually delivers data, so a hostile length prefix cannot force a huge
// up-front allocation.
func readN(r io.Reader, n int64) ([]byte, error) {
	var buf bytes.Buffer
	if n < 1<<16 {
		buf.Grow(int(n))
	}
	if _, err := io.CopyN(&buf, r, n); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf.Bytes(), nil
}

// deflate compresses b at the default level, returning nil when
// compression would not shrink it.
func deflate(b []byte) []byte {
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil
	}
	if _, err := zw.Write(b); err != nil {
		return nil
	}
	if err := zw.Close(); err != nil {
		return nil
	}
	if buf.Len() >= len(b) {
		return nil
	}
	return buf.Bytes()
}

// inflate decompresses a section payload, enforcing the frame's declared
// raw length exactly.
func inflate(b []byte, rawLen int64) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(b))
	defer zr.Close()
	out, err := io.ReadAll(io.LimitReader(zr, rawLen+1))
	if err != nil {
		return nil, fmt.Errorf("inflate: %w", err)
	}
	if int64(len(out)) != rawLen {
		return nil, fmt.Errorf("inflate: raw length %d, frame declared %d", len(out), rawLen)
	}
	return out, nil
}

// section writes ep as one section frame starting at file offset off and
// returns its index entry.
func (e *encoder) section(ep *EpochLog, off int64, compress bool) SectionInfo {
	body := encodeEpochBody(ep)
	stored := body
	var flags uint64
	if ep.Certified {
		flags |= SectionCertified
	}
	if compress {
		if z := deflate(body); z != nil {
			stored = z
			flags |= SectionCompressed
		}
	}
	crc := crc32.ChecksumIEEE(stored)
	e.byte(sectionMarker)
	e.u(uint64(ep.Index))
	e.u(flags)
	e.u(uint64(len(body)))
	e.u(uint64(len(stored)))
	e.u(uint64(crc))
	e.w.Write(stored)
	return SectionInfo{
		Epoch:  ep.Index,
		Offset: off,
		Stored: int64(len(stored)),
		Raw:    int64(len(body)),
		Flags:  flags,
		CRC:    crc,
	}
}

// copySection writes a previously encoded section frame verbatim at file
// offset off, returning the entry for the new index.
func (e *encoder) copySection(frame []byte, info SectionInfo, off int64) SectionInfo {
	e.w.Write(frame)
	info.Offset = off
	return info
}

// encodeIndex renders the section index (magic, count, entries).
func encodeIndex(entries []SectionInfo) []byte {
	var buf bytes.Buffer
	ie := newEncoder(&buf)
	buf.WriteString(indexMagic)
	ie.u(uint64(len(entries)))
	for _, s := range entries {
		ie.u(uint64(s.Epoch))
		ie.u(uint64(s.Offset))
		ie.u(uint64(s.Stored))
		ie.u(uint64(s.Raw))
		ie.u(s.Flags)
		ie.u(uint64(s.CRC))
	}
	return buf.Bytes()
}

// indexAndFooter writes the section index (which starts at file offset
// indexOff) and the fixed footer locating it.
func (e *encoder) indexAndFooter(indexOff int64, entries []SectionInfo) {
	idx := encodeIndex(entries)
	e.w.Write(idx)
	var foot [footerLen]byte
	binary.LittleEndian.PutUint64(foot[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint32(foot[8:12], crc32.ChecksumIEEE(idx))
	copy(foot[12:16], trailerMagic)
	e.w.Write(foot[:])
}

// sectionFrame decodes one section frame (the marker byte already
// consumed) whose frame starts at file offset off, returning its index
// entry and decoded epoch.
func (d *decoder) sectionFrame(off int64) (SectionInfo, *EpochLog, error) {
	info, payload, err := d.sectionHead(off)
	if err != nil {
		return SectionInfo{}, nil, err
	}
	ep, err := decodeSectionPayload(info, payload)
	if err != nil {
		return SectionInfo{}, nil, err
	}
	return info, ep, nil
}

// sectionHead decodes a section frame's fields and stored payload (the
// marker byte already consumed) and validates the payload CRC, without
// decompressing or decoding the epoch body.
func (d *decoder) sectionHead(off int64) (SectionInfo, []byte, error) {
	epochID, err := d.u()
	if err != nil {
		return SectionInfo{}, nil, err
	}
	flags, err := d.u()
	if err != nil {
		return SectionInfo{}, nil, err
	}
	rawLen, err := d.u()
	if err != nil {
		return SectionInfo{}, nil, err
	}
	storedLen, err := d.u()
	if err != nil {
		return SectionInfo{}, nil, err
	}
	crc, err := d.u()
	if err != nil {
		return SectionInfo{}, nil, err
	}
	if epochID > maxEpochs {
		return SectionInfo{}, nil, fmt.Errorf("epoch id %d too large", epochID)
	}
	if rawLen > maxSectionLen || storedLen > maxSectionLen {
		return SectionInfo{}, nil, fmt.Errorf("section length %d/%d too large", storedLen, rawLen)
	}
	if crc > 1<<32-1 {
		return SectionInfo{}, nil, fmt.Errorf("section CRC %#x does not fit 32 bits", crc)
	}
	if flags&SectionCompressed == 0 && rawLen != storedLen {
		return SectionInfo{}, nil, fmt.Errorf("raw section with stored length %d != raw length %d", storedLen, rawLen)
	}
	payload, err := readN(d.r, int64(storedLen))
	if err != nil {
		return SectionInfo{}, nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != uint32(crc) {
		return SectionInfo{}, nil, fmt.Errorf("section payload CRC %#08x, frame declared %#08x", got, uint32(crc))
	}
	return SectionInfo{
		Epoch:  int(epochID),
		Offset: off,
		Stored: int64(storedLen),
		Raw:    int64(rawLen),
		Flags:  flags,
		CRC:    uint32(crc),
	}, payload, nil
}

// decodeSectionPayload turns a CRC-validated stored payload into its
// epoch, inflating if the section is compressed and cross-checking the
// frame fields against the body.
func decodeSectionPayload(info SectionInfo, payload []byte) (*EpochLog, error) {
	body := payload
	if info.Compressed() {
		var err error
		if body, err = inflate(payload, info.Raw); err != nil {
			return nil, err
		}
	}
	sub := &decoder{r: bufio.NewReader(bytes.NewReader(body))}
	ep, err := sub.epoch(formatVersion)
	if err != nil {
		return nil, err
	}
	if _, err := sub.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trailing bytes after epoch body")
	}
	if ep.Index != info.Epoch {
		return nil, fmt.Errorf("section carries epoch %d, frame declared %d", ep.Index, info.Epoch)
	}
	if ep.Certified != info.Certified() {
		return nil, fmt.Errorf("section certified flag disagrees with epoch body")
	}
	return ep, nil
}

// indexEntries decodes the index body (magic already consumed).
func (d *decoder) indexEntries() ([]SectionInfo, error) {
	count, err := d.u()
	if err != nil {
		return nil, err
	}
	if count > maxEpochs {
		return nil, fmt.Errorf("index entry count %d too large", count)
	}
	entries := make([]SectionInfo, 0, capHint(count))
	for i := uint64(0); i < count; i++ {
		epoch, err := d.u()
		if err != nil {
			return nil, err
		}
		off, err := d.u()
		if err != nil {
			return nil, err
		}
		stored, err := d.u()
		if err != nil {
			return nil, err
		}
		raw, err := d.u()
		if err != nil {
			return nil, err
		}
		flags, err := d.u()
		if err != nil {
			return nil, err
		}
		crc, err := d.u()
		if err != nil {
			return nil, err
		}
		entries = append(entries, SectionInfo{
			Epoch:  int(epoch),
			Offset: int64(off),
			Stored: int64(stored),
			Raw:    int64(raw),
			Flags:  flags,
			CRC:    uint32(crc),
		})
	}
	return entries, nil
}

// sectioned decodes the v6 body sequentially: sections until the index
// magic, then the index (cross-checked against the sections streamed
// past) and the footer.
func (d *decoder) sectioned(rec *Recording, nsec int, pos func() int64) error {
	var got []SectionInfo
	var indexOff int64
	for {
		off := pos()
		marker, err := d.r.ReadByte()
		if err != nil {
			return fmt.Errorf("dplog: truncated before section index: %w", err)
		}
		if marker == sectionMarker {
			info, ep, err := d.sectionFrame(off)
			if err != nil {
				return fmt.Errorf("dplog: section %d: %w", len(got), err)
			}
			rec.Epochs = append(rec.Epochs, ep)
			got = append(got, info)
			continue
		}
		rest := make([]byte, len(indexMagic)-1)
		if _, err := io.ReadFull(d.r, rest); err != nil || string(marker)+string(rest) != indexMagic {
			return fmt.Errorf("dplog: expected section or index at offset %d", off)
		}
		indexOff = off
		break
	}
	if len(got) != nsec {
		return fmt.Errorf("dplog: header declares %d sections, stream has %d", nsec, len(got))
	}
	entries, err := d.indexEntries()
	if err != nil {
		return fmt.Errorf("dplog: section index: %w", err)
	}
	if len(entries) != len(got) {
		return fmt.Errorf("dplog: index has %d entries for %d sections", len(entries), len(got))
	}
	for i := range entries {
		if entries[i] != got[i] {
			return fmt.Errorf("dplog: index entry %d disagrees with its section", i)
		}
	}
	var foot [footerLen]byte
	if _, err := io.ReadFull(d.r, foot[:]); err != nil {
		return fmt.Errorf("dplog: truncated footer: %w", err)
	}
	if string(foot[12:16]) != trailerMagic {
		return fmt.Errorf("dplog: bad trailer magic")
	}
	if off := int64(binary.LittleEndian.Uint64(foot[0:8])); off != indexOff {
		return fmt.Errorf("dplog: footer index offset %d, index found at %d", off, indexOff)
	}
	return nil
}
