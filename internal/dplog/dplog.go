// Package dplog defines the log formats DoublePlay records and replays:
// per-epoch timeslice schedules, syscall results, and sync-operation order,
// plus a compact binary codec used both for persistence and for the
// log-size comparisons in the evaluation.
//
// On disk a recording is a seekable, sectioned, optionally compressed
// container (format v6): one self-contained section per epoch behind a
// trailing offset index, so Reader.Seek(epoch) decodes epoch N without
// touching epochs 0..N-1, and a truncated log recovers every intact
// section. docs/FORMAT.md is the normative byte-level specification;
// legacy v4/v5 flat streams still decode (version-sniffed).
//
// The central point of the paper is visible in these types: because every
// epoch executes on a single processor, the information needed to replay it
// is only the timeslice schedule ([]Slice) and the syscall results — there
// is no shared-memory access-order log at all. Compare with the CREW
// page-ownership log in internal/baseline, which is what a conventional
// multiprocessor replay system must record.
package dplog

import (
	"fmt"

	"doubleplay/internal/vm"
)

// Slice is one timeslice of the uniprocessor schedule: thread Tid ran and
// retired N instructions before the scheduler switched away.
type Slice struct {
	Tid int
	N   uint64
}

// SyscallRecord captures one retired syscall: identity for mismatch
// detection, the result value, and every guest-memory write the syscall
// performed, so replay can inject the effect without a simulated OS.
type SyscallRecord struct {
	Tid    int
	Num    vm.Word
	Args   [6]vm.Word
	Ret    vm.Word
	Writes []vm.MemWrite
}

// Matches reports whether a syscall attempt has the same identity as the
// recorded one. A mismatch means the executing run has diverged from the
// recorded run before this syscall.
func (r *SyscallRecord) Matches(tid int, num vm.Word, args [6]vm.Word) bool {
	return r.Tid == tid && r.Num == num && r.Args == args
}

// SyncRecord is one gated synchronisation operation (lock acquire, atomic
// op, or spawn) in global retirement order. The epoch-parallel execution
// enforces, per object, the thread order these records dictate.
type SyncRecord struct {
	Tid  int
	Kind vm.ObjKind
	ID   vm.Word
}

// SignalRecord pinpoints one asynchronous signal delivery: signal Sig was
// delivered to thread Tid when it had retired exactly Retired
// instructions. Replay re-delivers at that precise point.
type SignalRecord struct {
	Tid     int
	Retired uint64
	Sig     vm.Word
}

// EpochLog is everything recorded about one epoch.
type EpochLog struct {
	Index int

	// Targets give, for every thread id that exists by the end of the
	// epoch, its retired-instruction count at the epoch boundary. They
	// define where the epoch ends in every execution.
	Targets []uint64

	// SyncOrder is the gated sync-op order observed by the thread-parallel
	// run within this epoch. It is consumed by the epoch-parallel logging
	// run (to constrain it) and is not needed for replay — except for
	// certified epochs, where it IS the replay log (see Certified).
	SyncOrder []SyncRecord

	// Syscalls are the syscall results retired within this epoch, in global
	// retirement order (per-thread order is preserved, which is all
	// injection requires).
	Syscalls []SyscallRecord

	// Signals are the asynchronous deliveries within this epoch, each
	// pinned to a retired-instruction count.
	Signals []SignalRecord

	// Schedule is the epoch-parallel uniprocessor timeslice log — together
	// with Syscalls and Signals, the complete replay log for this epoch.
	// Nil for certified epochs, which never ran epoch-parallel.
	Schedule []Slice

	// Certified marks an epoch committed without the epoch-parallel
	// verification pass, on the strength of a race-free static certificate
	// (analyze.Certificate). Such an epoch has no Schedule; replay instead
	// free-runs under the SyncOrder gate, which the certificate proves
	// sufficient to reproduce EndHash. A hash mismatch replaying a
	// certified epoch is a soundness bug, not a divergence.
	Certified bool

	// StartHash and EndHash are the architectural state hashes at the
	// epoch's boundaries, recorded for replay verification.
	StartHash uint64
	EndHash   uint64

	// CommitHash is the running hash of all external output at the epoch's
	// end boundary: the output that may be released to the outside world
	// once this epoch verifies. It makes the paper's deferred output commit
	// visible in the log — output beyond the last verified epoch is still
	// speculative.
	CommitHash uint64
}

// Recording is the complete replay log of one program execution.
type Recording struct {
	Program string
	Workers int
	Seed    int64
	Epochs  []*EpochLog

	// FinalHash is the architectural state hash at termination.
	FinalHash uint64

	// OutputHash summarises the external output the guest produced, so
	// replayed runs can be checked against recorded output commits.
	OutputHash uint64

	// Quantum is the uniprocessor scheduling quantum the recorder would
	// have used for the epoch-parallel run. Certified epochs carry no
	// Schedule, so replay needs it to reconstruct the free-run timeslicing
	// deterministically. Zero means the scheduler default.
	Quantum int64
}

// Slices returns the total number of timeslice records.
func (r *Recording) Slices() int {
	n := 0
	for _, e := range r.Epochs {
		n += len(e.Schedule)
	}
	return n
}

// SyscallCount returns the total number of recorded syscalls.
func (r *Recording) SyscallCount() int {
	n := 0
	for _, e := range r.Epochs {
		n += len(e.Syscalls)
	}
	return n
}

// SyncOps returns the total number of recorded gated sync operations.
func (r *Recording) SyncOps() int {
	n := 0
	for _, e := range r.Epochs {
		n += len(e.SyncOrder)
	}
	return n
}

// SignalCount returns the total number of recorded signal deliveries.
func (r *Recording) SignalCount() int {
	n := 0
	for _, e := range r.Epochs {
		n += len(e.Signals)
	}
	return n
}

// ReplaySize reports the encoded size in bytes of the information required
// to replay the execution: schedules, syscall records, and epoch targets.
// For ordinary epochs the sync-order log is excluded — it exists only to
// steer the epoch-parallel run during recording and is discarded
// afterwards, exactly as in the paper. A certified epoch has no schedule
// and replays from its sync order instead, so there the sync part IS
// replay state and counts.
//
// This is flat information accounting — header plus bare epoch bodies,
// no section framing, index, or compression — so it is the stable
// apples-to-apples metric the paper's log-size experiment reports,
// independent of how the v6 container lays the bytes out on disk.
func (r *Recording) ReplaySize() int {
	var w countWriter
	enc := newEncoder(&w)
	enc.header(headerOf(r), len(r.Epochs))
	for _, e := range r.Epochs {
		enc.epochReplayPart(e)
		if e.Certified {
			enc.epochSyncPart(e)
		}
	}
	return w.n
}

// FullSize reports the encoded size including the transient sync-order
// log, under the same flat framing-free accounting as ReplaySize.
func (r *Recording) FullSize() int {
	var w countWriter
	enc := newEncoder(&w)
	enc.header(headerOf(r), len(r.Epochs))
	for _, e := range r.Epochs {
		enc.epochReplayPart(e)
		enc.epochSyncPart(e)
	}
	return w.n
}

// String summarises the recording.
func (r *Recording) String() string {
	return fmt.Sprintf("Recording(%s, %d epochs, %d slices, %d syscalls, %d sync ops, %d replay bytes)",
		r.Program, len(r.Epochs), r.Slices(), r.SyscallCount(), r.SyncOps(), r.ReplaySize())
}

// countWriter counts bytes without storing them; used for size accounting.
type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
