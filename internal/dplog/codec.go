package dplog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"doubleplay/internal/vm"
)

// The on-disk format is a magic header followed by varint-encoded sections.
// Varints keep the log-size experiment honest: a timeslice record costs a
// couple of bytes, as it would in any careful implementation.

// Version history: v4 is the pre-certification format; v5 adds the
// recording's scheduling quantum to the header and a per-epoch flags
// varint (bit 0: certified). The decoder accepts both; the encoder
// always writes v5.
const (
	magic         = "DPLG"
	formatVersion = 5
	minVersion    = 4

	epochFlagCertified = 1 << 0
)

var (
	// ErrBadMagic reports a stream that is not a DoublePlay recording.
	ErrBadMagic = errors.New("dplog: bad magic")
	// ErrBadVersion reports an unsupported format version.
	ErrBadVersion = errors.New("dplog: unsupported format version")
)

type encoder struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
}

func newEncoder(w io.Writer) *encoder { return &encoder{w: w} }

func (e *encoder) u(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.w.Write(e.buf[:n])
}

func (e *encoder) i(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.u(uint64(len(s)))
	io.WriteString(e.w, s)
}

func (e *encoder) header(r *Recording) {
	io.WriteString(e.w, magic)
	e.u(formatVersion)
	e.str(r.Program)
	e.u(uint64(r.Workers))
	e.i(r.Seed)
	e.u(uint64(len(r.Epochs)))
	e.u(r.FinalHash)
	e.u(r.OutputHash)
	e.i(r.Quantum)
}

// epochReplayPart encodes the sections needed for replay.
func (e *encoder) epochReplayPart(ep *EpochLog) {
	e.u(uint64(ep.Index))
	var flags uint64
	if ep.Certified {
		flags |= epochFlagCertified
	}
	e.u(flags)
	e.u(ep.StartHash)
	e.u(ep.EndHash)
	e.u(ep.CommitHash)
	e.u(uint64(len(ep.Targets)))
	for _, t := range ep.Targets {
		e.u(t)
	}
	e.u(uint64(len(ep.Schedule)))
	for _, s := range ep.Schedule {
		e.u(uint64(s.Tid))
		e.u(s.N)
	}
	e.u(uint64(len(ep.Syscalls)))
	for i := range ep.Syscalls {
		e.syscall(&ep.Syscalls[i])
	}
	e.u(uint64(len(ep.Signals)))
	for _, s := range ep.Signals {
		e.u(uint64(s.Tid))
		e.u(s.Retired)
		e.i(s.Sig)
	}
}

// epochSyncPart encodes the transient sync-order section.
func (e *encoder) epochSyncPart(ep *EpochLog) {
	e.u(uint64(len(ep.SyncOrder)))
	for _, s := range ep.SyncOrder {
		e.u(uint64(s.Tid))
		e.u(uint64(s.Kind))
		e.i(s.ID)
	}
}

func (e *encoder) syscall(r *SyscallRecord) {
	e.u(uint64(r.Tid))
	e.i(r.Num)
	for _, a := range r.Args {
		e.i(a)
	}
	e.i(r.Ret)
	e.u(uint64(len(r.Writes)))
	for _, w := range r.Writes {
		e.i(w.Addr)
		e.u(uint64(len(w.Data)))
		for _, d := range w.Data {
			e.i(d)
		}
	}
}

// Marshal encodes the full recording (replay sections plus sync-order
// sections) to w.
func Marshal(w io.Writer, r *Recording) error {
	bw := bufio.NewWriter(w)
	enc := newEncoder(bw)
	enc.header(r)
	for _, ep := range r.Epochs {
		enc.epochReplayPart(ep)
		enc.epochSyncPart(ep)
	}
	return bw.Flush()
}

// MarshalBytes encodes the recording into a byte slice.
func MarshalBytes(r *Recording) []byte {
	var buf bytes.Buffer
	Marshal(&buf, r)
	return buf.Bytes()
}

type decoder struct {
	r *bufio.Reader
}

func (d *decoder) u() (uint64, error) { return binary.ReadUvarint(d.r) }
func (d *decoder) i() (int64, error)  { return binary.ReadVarint(d.r) }

func (d *decoder) str() (string, error) {
	n, err := d.u()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("dplog: string length %d too large", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// Unmarshal decodes a recording from r.
func Unmarshal(rd io.Reader) (*Recording, error) {
	d := &decoder{r: bufio.NewReader(rd)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(d.r, head); err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	ver, err := d.u()
	if err != nil {
		return nil, err
	}
	if ver < minVersion || ver > formatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	rec := &Recording{}
	if rec.Program, err = d.str(); err != nil {
		return nil, err
	}
	workers, err := d.u()
	if err != nil {
		return nil, err
	}
	rec.Workers = int(workers)
	if rec.Seed, err = d.i(); err != nil {
		return nil, err
	}
	nep, err := d.u()
	if err != nil {
		return nil, err
	}
	if nep > 1<<24 {
		return nil, fmt.Errorf("dplog: epoch count %d too large", nep)
	}
	if rec.FinalHash, err = d.u(); err != nil {
		return nil, err
	}
	if rec.OutputHash, err = d.u(); err != nil {
		return nil, err
	}
	if ver >= 5 {
		if rec.Quantum, err = d.i(); err != nil {
			return nil, err
		}
	}
	rec.Epochs = make([]*EpochLog, nep)
	for i := range rec.Epochs {
		ep, err := d.epoch(ver)
		if err != nil {
			return nil, fmt.Errorf("dplog: epoch %d: %w", i, err)
		}
		rec.Epochs[i] = ep
	}
	return rec, nil
}

// UnmarshalBytes decodes a recording from a byte slice.
func UnmarshalBytes(b []byte) (*Recording, error) {
	return Unmarshal(bytes.NewReader(b))
}

func (d *decoder) epoch(ver uint64) (*EpochLog, error) {
	ep := &EpochLog{}
	idx, err := d.u()
	if err != nil {
		return nil, err
	}
	ep.Index = int(idx)
	if ver >= 5 {
		flags, err := d.u()
		if err != nil {
			return nil, err
		}
		ep.Certified = flags&epochFlagCertified != 0
	}
	if ep.StartHash, err = d.u(); err != nil {
		return nil, err
	}
	if ep.EndHash, err = d.u(); err != nil {
		return nil, err
	}
	if ep.CommitHash, err = d.u(); err != nil {
		return nil, err
	}
	nt, err := d.u()
	if err != nil {
		return nil, err
	}
	if nt > 1<<20 {
		return nil, fmt.Errorf("target count %d too large", nt)
	}
	ep.Targets = make([]uint64, nt)
	for i := range ep.Targets {
		if ep.Targets[i], err = d.u(); err != nil {
			return nil, err
		}
	}
	ns, err := d.u()
	if err != nil {
		return nil, err
	}
	if ns > 1<<28 {
		return nil, fmt.Errorf("slice count %d too large", ns)
	}
	ep.Schedule = make([]Slice, ns)
	for i := range ep.Schedule {
		tid, err := d.u()
		if err != nil {
			return nil, err
		}
		n, err := d.u()
		if err != nil {
			return nil, err
		}
		ep.Schedule[i] = Slice{Tid: int(tid), N: n}
	}
	nsys, err := d.u()
	if err != nil {
		return nil, err
	}
	if nsys > 1<<28 {
		return nil, fmt.Errorf("syscall count %d too large", nsys)
	}
	ep.Syscalls = make([]SyscallRecord, nsys)
	for i := range ep.Syscalls {
		if err := d.syscall(&ep.Syscalls[i]); err != nil {
			return nil, err
		}
	}
	nsig, err := d.u()
	if err != nil {
		return nil, err
	}
	if nsig > 1<<28 {
		return nil, fmt.Errorf("signal count %d too large", nsig)
	}
	if nsig > 0 {
		ep.Signals = make([]SignalRecord, nsig)
	}
	for i := range ep.Signals {
		tid, err := d.u()
		if err != nil {
			return nil, err
		}
		ret, err := d.u()
		if err != nil {
			return nil, err
		}
		sig, err := d.i()
		if err != nil {
			return nil, err
		}
		ep.Signals[i] = SignalRecord{Tid: int(tid), Retired: ret, Sig: sig}
	}
	nsync, err := d.u()
	if err != nil {
		return nil, err
	}
	if nsync > 1<<28 {
		return nil, fmt.Errorf("sync count %d too large", nsync)
	}
	ep.SyncOrder = make([]SyncRecord, nsync)
	for i := range ep.SyncOrder {
		tid, err := d.u()
		if err != nil {
			return nil, err
		}
		kind, err := d.u()
		if err != nil {
			return nil, err
		}
		id, err := d.i()
		if err != nil {
			return nil, err
		}
		ep.SyncOrder[i] = SyncRecord{Tid: int(tid), Kind: vm.ObjKind(kind), ID: id}
	}
	return ep, nil
}

func (d *decoder) syscall(r *SyscallRecord) error {
	tid, err := d.u()
	if err != nil {
		return err
	}
	r.Tid = int(tid)
	if r.Num, err = d.i(); err != nil {
		return err
	}
	for i := range r.Args {
		if r.Args[i], err = d.i(); err != nil {
			return err
		}
	}
	if r.Ret, err = d.i(); err != nil {
		return err
	}
	nw, err := d.u()
	if err != nil {
		return err
	}
	if nw > 1<<20 {
		return fmt.Errorf("write count %d too large", nw)
	}
	if nw > 0 {
		r.Writes = make([]vm.MemWrite, nw)
	}
	for i := range r.Writes {
		addr, err := d.i()
		if err != nil {
			return err
		}
		nd, err := d.u()
		if err != nil {
			return err
		}
		if nd > 1<<24 {
			return fmt.Errorf("write data length %d too large", nd)
		}
		data := make([]vm.Word, nd)
		for j := range data {
			if data[j], err = d.i(); err != nil {
				return err
			}
		}
		r.Writes[i] = vm.MemWrite{Addr: addr, Data: data}
	}
	return nil
}
