package dplog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"doubleplay/internal/vm"
)

// The on-disk format is a fixed header followed by format-version-specific
// content. Since v6 that content is one self-contained section per epoch,
// a trailing offset index, and a fixed footer locating the index, so a
// reader can fetch epoch N without decoding epochs 0..N-1; see section.go
// for the sectioned layer and docs/FORMAT.md for the normative byte-level
// specification. Varints keep the log-size experiment honest: a timeslice
// record costs a couple of bytes, as it would in any careful
// implementation.

// Version history: v4 is the pre-certification format; v5 adds the
// recording's scheduling quantum to the header and a per-epoch flags
// varint (bit 0: certified); v6 wraps each epoch in a framed, optionally
// DEFLATE-compressed section behind an offset index. The decoder accepts
// v4..v6 (version-sniffed); the encoder always writes v6. The appendix of
// docs/FORMAT.md specifies the retired layouts.

// FormatVersion is the log format version the encoder writes.
const FormatVersion = formatVersion

const (
	magic         = "DPLG"
	formatVersion = 6
	minVersion    = 4

	epochFlagCertified = 1 << 0

	// maxEpochs bounds the per-file section count (and the legacy epoch
	// count) against hostile headers.
	maxEpochs = 1 << 24
)

var (
	// ErrBadMagic reports a stream that is not a DoublePlay recording.
	ErrBadMagic = errors.New("dplog: bad magic")
	// ErrBadVersion reports an unsupported format version.
	ErrBadVersion = errors.New("dplog: unsupported format version")
	// ErrNoEpoch reports a Seek or range request for an epoch the log does
	// not contain.
	ErrNoEpoch = errors.New("dplog: no such epoch")
)

// Header is the decoded fixed header of a dplog file. It is identical
// across v4..v6 except that v4 has no Quantum field (decoded as zero).
type Header struct {
	Version    int
	Program    string
	Workers    int
	Seed       int64
	Sections   int // number of epoch sections stored in this file
	FinalHash  uint64
	OutputHash uint64
	Quantum    int64
}

// headerOf derives the header a full encoding of r carries.
func headerOf(r *Recording) Header {
	return Header{
		Version:    formatVersion,
		Program:    r.Program,
		Workers:    r.Workers,
		Seed:       r.Seed,
		Sections:   len(r.Epochs),
		FinalHash:  r.FinalHash,
		OutputHash: r.OutputHash,
		Quantum:    r.Quantum,
	}
}

// recordingOf builds the epoch-less Recording shell a header describes.
func recordingOf(h Header) *Recording {
	return &Recording{
		Program:    h.Program,
		Workers:    h.Workers,
		Seed:       h.Seed,
		FinalHash:  h.FinalHash,
		OutputHash: h.OutputHash,
		Quantum:    h.Quantum,
	}
}

type encoder struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
}

func newEncoder(w io.Writer) *encoder { return &encoder{w: w} }

func (e *encoder) u(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.w.Write(e.buf[:n])
}

func (e *encoder) i(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.w.Write(e.buf[:n])
}

func (e *encoder) str(s string) {
	e.u(uint64(len(s)))
	io.WriteString(e.w, s)
}

func (e *encoder) byte(b byte) {
	e.buf[0] = b
	e.w.Write(e.buf[:1])
}

// header writes the fixed header. The section count is passed separately
// so a range extraction (Reader.WriteRange) can write a subset file that
// reuses the original recording's metadata.
func (e *encoder) header(h Header, sections int) {
	io.WriteString(e.w, magic)
	e.u(formatVersion)
	e.str(h.Program)
	e.u(uint64(h.Workers))
	e.i(h.Seed)
	e.u(uint64(sections))
	e.u(h.FinalHash)
	e.u(h.OutputHash)
	e.i(h.Quantum)
}

// epochReplayPart encodes the sections needed for replay.
func (e *encoder) epochReplayPart(ep *EpochLog) {
	e.u(uint64(ep.Index))
	var flags uint64
	if ep.Certified {
		flags |= epochFlagCertified
	}
	e.u(flags)
	e.u(ep.StartHash)
	e.u(ep.EndHash)
	e.u(ep.CommitHash)
	e.u(uint64(len(ep.Targets)))
	for _, t := range ep.Targets {
		e.u(t)
	}
	e.u(uint64(len(ep.Schedule)))
	for _, s := range ep.Schedule {
		e.u(uint64(s.Tid))
		e.u(s.N)
	}
	e.u(uint64(len(ep.Syscalls)))
	for i := range ep.Syscalls {
		e.syscall(&ep.Syscalls[i])
	}
	e.u(uint64(len(ep.Signals)))
	for _, s := range ep.Signals {
		e.u(uint64(s.Tid))
		e.u(s.Retired)
		e.i(s.Sig)
	}
}

// epochSyncPart encodes the transient sync-order section.
func (e *encoder) epochSyncPart(ep *EpochLog) {
	e.u(uint64(len(ep.SyncOrder)))
	for _, s := range ep.SyncOrder {
		e.u(uint64(s.Tid))
		e.u(uint64(s.Kind))
		e.i(s.ID)
	}
}

func (e *encoder) syscall(r *SyscallRecord) {
	e.u(uint64(r.Tid))
	e.i(r.Num)
	for _, a := range r.Args {
		e.i(a)
	}
	e.i(r.Ret)
	e.u(uint64(len(r.Writes)))
	for _, w := range r.Writes {
		e.i(w.Addr)
		e.u(uint64(len(w.Data)))
		for _, d := range w.Data {
			e.i(d)
		}
	}
}

// encodeEpochBody encodes one epoch's complete section payload: the
// replay part followed by the sync-order part, exactly the v5 per-epoch
// layout.
func encodeEpochBody(ep *EpochLog) []byte {
	var buf bytes.Buffer
	e := newEncoder(&buf)
	e.epochReplayPart(ep)
	e.epochSyncPart(ep)
	return buf.Bytes()
}

// EncodeOptions tune the v6 encoder.
type EncodeOptions struct {
	// Compress enables per-section DEFLATE: each section is compressed
	// independently and kept compressed only when that shrinks it, so
	// tiny sections stay raw. Marshal uses Compress: true.
	Compress bool
}

// Marshal encodes the full recording (replay sections plus sync-order
// sections) to w in the current sectioned format with per-section
// compression.
func Marshal(w io.Writer, r *Recording) error {
	return MarshalWith(w, r, EncodeOptions{Compress: true})
}

// MarshalWith is Marshal with explicit encoding options.
func MarshalWith(w io.Writer, r *Recording, opt EncodeOptions) error {
	bw := bufio.NewWriter(w)
	ow := &offsetWriter{w: bw}
	enc := newEncoder(ow)
	enc.header(headerOf(r), len(r.Epochs))
	entries := make([]SectionInfo, 0, len(r.Epochs))
	for _, ep := range r.Epochs {
		entries = append(entries, enc.section(ep, ow.n, opt.Compress))
	}
	enc.indexAndFooter(ow.n, entries)
	return bw.Flush()
}

// MarshalBytes encodes the recording into a byte slice.
func MarshalBytes(r *Recording) []byte {
	var buf bytes.Buffer
	Marshal(&buf, r)
	return buf.Bytes()
}

// MarshalBytesWith encodes the recording into a byte slice with explicit
// encoding options.
func MarshalBytesWith(r *Recording, opt EncodeOptions) []byte {
	var buf bytes.Buffer
	MarshalWith(&buf, r, opt)
	return buf.Bytes()
}

// offsetWriter tracks the file offset of everything written through it,
// so the encoder can build the section index as it goes.
type offsetWriter struct {
	w io.Writer
	n int64
}

func (ow *offsetWriter) Write(p []byte) (int, error) {
	n, err := ow.w.Write(p)
	ow.n += int64(n)
	return n, err
}

// byteScanner is the reader surface the decoder needs: sequential reads
// plus single bytes (for varints). Both bufio.Reader and the positioned
// breader satisfy it.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

type decoder struct {
	r byteScanner
}

func (d *decoder) u() (uint64, error) { return binary.ReadUvarint(d.r) }
func (d *decoder) i() (int64, error)  { return binary.ReadVarint(d.r) }

func (d *decoder) str() (string, error) {
	n, err := d.u()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("dplog: string length %d too large", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// header decodes the magic, version, and fixed header fields.
func (d *decoder) header() (Header, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(d.r, head); err != nil {
		return Header{}, err
	}
	if string(head) != magic {
		return Header{}, ErrBadMagic
	}
	ver, err := d.u()
	if err != nil {
		return Header{}, err
	}
	if ver < minVersion || ver > formatVersion {
		return Header{}, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	h := Header{Version: int(ver)}
	if h.Program, err = d.str(); err != nil {
		return Header{}, err
	}
	workers, err := d.u()
	if err != nil {
		return Header{}, err
	}
	h.Workers = int(workers)
	if h.Seed, err = d.i(); err != nil {
		return Header{}, err
	}
	nsec, err := d.u()
	if err != nil {
		return Header{}, err
	}
	if nsec > maxEpochs {
		return Header{}, fmt.Errorf("dplog: epoch count %d too large", nsec)
	}
	h.Sections = int(nsec)
	if h.FinalHash, err = d.u(); err != nil {
		return Header{}, err
	}
	if h.OutputHash, err = d.u(); err != nil {
		return Header{}, err
	}
	if ver >= 5 {
		if h.Quantum, err = d.i(); err != nil {
			return Header{}, err
		}
	}
	return h, nil
}

// Unmarshal decodes a recording from r, sniffing the format version:
// current v6 sectioned streams and legacy v4/v5 flat streams both load.
func Unmarshal(rd io.Reader) (*Recording, error) {
	cr := &countReader{r: rd}
	br := bufio.NewReader(cr)
	d := &decoder{r: br}
	h, err := d.header()
	if err != nil {
		return nil, err
	}
	rec := recordingOf(h)
	if h.Version < 6 {
		rec.Epochs = make([]*EpochLog, 0, capHint(uint64(h.Sections)))
		for i := 0; i < h.Sections; i++ {
			ep, err := d.epoch(uint64(h.Version))
			if err != nil {
				return nil, fmt.Errorf("dplog: epoch %d: %w", i, err)
			}
			rec.Epochs = append(rec.Epochs, ep)
		}
		return rec, nil
	}
	// v6: sections, index, footer. The exact stream position (bytes
	// consumed from the source minus what bufio still buffers) lets the
	// sequential decoder cross-check the index offsets it streams past.
	pos := func() int64 { return cr.n - int64(br.Buffered()) }
	if err := d.sectioned(rec, h.Sections, pos); err != nil {
		return nil, err
	}
	return rec, nil
}

// UnmarshalBytes decodes a recording from a byte slice.
func UnmarshalBytes(b []byte) (*Recording, error) {
	return Unmarshal(bytes.NewReader(b))
}

// capHint bounds eager slice preallocation for attacker-controlled
// counts: decode loops append, so a hostile length prefix can only cost
// memory proportional to the bytes its stream actually delivers.
func capHint(n uint64) int {
	const max = 1 << 12
	if n > max {
		return max
	}
	return int(n)
}

// countReader counts the bytes its underlying reader delivered.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// epoch decodes one epoch body: the layout shared by the legacy flat
// formats (ver 4/5) and the v6 section payload (ver 6, identical to 5).
func (d *decoder) epoch(ver uint64) (*EpochLog, error) {
	ep := &EpochLog{}
	idx, err := d.u()
	if err != nil {
		return nil, err
	}
	ep.Index = int(idx)
	if ver >= 5 {
		flags, err := d.u()
		if err != nil {
			return nil, err
		}
		ep.Certified = flags&epochFlagCertified != 0
	}
	if ep.StartHash, err = d.u(); err != nil {
		return nil, err
	}
	if ep.EndHash, err = d.u(); err != nil {
		return nil, err
	}
	if ep.CommitHash, err = d.u(); err != nil {
		return nil, err
	}
	nt, err := d.u()
	if err != nil {
		return nil, err
	}
	if nt > 1<<20 {
		return nil, fmt.Errorf("target count %d too large", nt)
	}
	ep.Targets = make([]uint64, 0, capHint(nt))
	for i := uint64(0); i < nt; i++ {
		t, err := d.u()
		if err != nil {
			return nil, err
		}
		ep.Targets = append(ep.Targets, t)
	}
	ns, err := d.u()
	if err != nil {
		return nil, err
	}
	if ns > 1<<28 {
		return nil, fmt.Errorf("slice count %d too large", ns)
	}
	ep.Schedule = make([]Slice, 0, capHint(ns))
	for i := uint64(0); i < ns; i++ {
		tid, err := d.u()
		if err != nil {
			return nil, err
		}
		n, err := d.u()
		if err != nil {
			return nil, err
		}
		ep.Schedule = append(ep.Schedule, Slice{Tid: int(tid), N: n})
	}
	nsys, err := d.u()
	if err != nil {
		return nil, err
	}
	if nsys > 1<<28 {
		return nil, fmt.Errorf("syscall count %d too large", nsys)
	}
	ep.Syscalls = make([]SyscallRecord, 0, capHint(nsys))
	for i := uint64(0); i < nsys; i++ {
		var sr SyscallRecord
		if err := d.syscall(&sr); err != nil {
			return nil, err
		}
		ep.Syscalls = append(ep.Syscalls, sr)
	}
	nsig, err := d.u()
	if err != nil {
		return nil, err
	}
	if nsig > 1<<28 {
		return nil, fmt.Errorf("signal count %d too large", nsig)
	}
	if nsig > 0 {
		ep.Signals = make([]SignalRecord, 0, capHint(nsig))
	}
	for i := uint64(0); i < nsig; i++ {
		tid, err := d.u()
		if err != nil {
			return nil, err
		}
		ret, err := d.u()
		if err != nil {
			return nil, err
		}
		sig, err := d.i()
		if err != nil {
			return nil, err
		}
		ep.Signals = append(ep.Signals, SignalRecord{Tid: int(tid), Retired: ret, Sig: sig})
	}
	nsync, err := d.u()
	if err != nil {
		return nil, err
	}
	if nsync > 1<<28 {
		return nil, fmt.Errorf("sync count %d too large", nsync)
	}
	ep.SyncOrder = make([]SyncRecord, 0, capHint(nsync))
	for i := uint64(0); i < nsync; i++ {
		tid, err := d.u()
		if err != nil {
			return nil, err
		}
		kind, err := d.u()
		if err != nil {
			return nil, err
		}
		id, err := d.i()
		if err != nil {
			return nil, err
		}
		ep.SyncOrder = append(ep.SyncOrder, SyncRecord{Tid: int(tid), Kind: vm.ObjKind(kind), ID: id})
	}
	return ep, nil
}

func (d *decoder) syscall(r *SyscallRecord) error {
	tid, err := d.u()
	if err != nil {
		return err
	}
	r.Tid = int(tid)
	if r.Num, err = d.i(); err != nil {
		return err
	}
	for i := range r.Args {
		if r.Args[i], err = d.i(); err != nil {
			return err
		}
	}
	if r.Ret, err = d.i(); err != nil {
		return err
	}
	nw, err := d.u()
	if err != nil {
		return err
	}
	if nw > 1<<20 {
		return fmt.Errorf("write count %d too large", nw)
	}
	if nw > 0 {
		r.Writes = make([]vm.MemWrite, 0, capHint(nw))
	}
	for i := uint64(0); i < nw; i++ {
		addr, err := d.i()
		if err != nil {
			return err
		}
		nd, err := d.u()
		if err != nil {
			return err
		}
		if nd > 1<<24 {
			return fmt.Errorf("write data length %d too large", nd)
		}
		data := make([]vm.Word, 0, capHint(nd))
		for j := uint64(0); j < nd; j++ {
			w, err := d.i()
			if err != nil {
				return err
			}
			data = append(data, w)
		}
		r.Writes = append(r.Writes, vm.MemWrite{Addr: addr, Data: data})
	}
	return nil
}
