package baseline_test

import (
	"testing"

	"doubleplay/internal/baseline"
	"doubleplay/internal/core"
	"doubleplay/internal/workloads"
)

func build(t *testing.T, name string, workers int) *workloads.Built {
	t.Helper()
	wl := workloads.Get(name)
	if wl == nil {
		t.Fatalf("no workload %s", name)
	}
	return wl.Build(workloads.Params{Workers: workers, Seed: 23})
}

func TestCrewCountsSharing(t *testing.T) {
	// ocean shares grid pages across workers heavily; its transition count
	// must dwarf aget's, whose workers touch disjoint ranges.
	bt := build(t, "ocean", 4)
	ocean, err := baseline.RunCREW(bt.Prog, bt.World, 4, 23, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bt = build(t, "aget", 4)
	aget, err := baseline.RunCREW(bt.Prog, bt.World, 4, 23, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ocean.Faults) != 0 || len(aget.Faults) != 0 {
		t.Fatal("guest faults under CREW")
	}
	if ocean.Transitions < 10*aget.Transitions {
		t.Fatalf("sharing not visible: ocean %d vs aget %d transitions",
			ocean.Transitions, aget.Transitions)
	}
	if ocean.Cycles <= ocean.BaseCycles {
		t.Fatal("CREW fault penalty not charged")
	}
	if ocean.OrderBytes <= 0 || ocean.LogBytes != ocean.OrderBytes+ocean.InputBytes {
		t.Fatalf("log accounting wrong: %+v", ocean)
	}
}

func TestCrewDoesNotPerturbExecution(t *testing.T) {
	// CREW instrumentation observes; the guest result must be unchanged.
	bt := build(t, "lu", 2)
	res, err := baseline.RunCREW(bt.Prog, bt.World, 2, 23, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 0 {
		t.Fatalf("faults: %v", res.Faults)
	}
	if res.Retired == 0 {
		t.Fatal("nothing retired")
	}
}

func TestUniprocessorSlowdownAndDeterminism(t *testing.T) {
	bt := build(t, "fft", 4)
	nat, err := core.RunNative(bt.Prog, build(t, "fft", 4).World, 4, 23, nil)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := baseline.RunUniprocessor(bt.Prog, bt.World, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.Faults) != 0 {
		t.Fatalf("faults: %v", uni.Faults)
	}
	// Serialized execution of a 4-way parallel kernel: expect ~2.5x+.
	if float64(uni.Cycles) < 2.0*float64(nat.Cycles) {
		t.Fatalf("uniprocessor not slower: %d vs native %d", uni.Cycles, nat.Cycles)
	}
	if uni.Slices == 0 || uni.LogBytes == 0 {
		t.Fatal("no log produced")
	}

	// Deterministic: a second run produces the identical final state.
	uni2, err := baseline.RunUniprocessor(bt.Prog, build(t, "fft", 4).World, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if uni2.FinalHash != uni.FinalHash {
		t.Fatal("uniprocessor baseline nondeterministic")
	}
}

func TestUniprocessorLogSmallerThanCrewOnSharingHeavy(t *testing.T) {
	bt := build(t, "radix", 4)
	crew, err := baseline.RunCREW(bt.Prog, bt.World, 4, 23, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := baseline.RunUniprocessor(build(t, "radix", 4).Prog, build(t, "radix", 4).World, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if uni.LogBytes*10 > crew.LogBytes {
		t.Fatalf("expected order-of-magnitude gap: uni %d vs crew %d", uni.LogBytes, crew.LogBytes)
	}
}
