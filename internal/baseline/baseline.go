// Package baseline implements the comparison systems the evaluation needs:
//
//   - A CREW page-ownership recorder in the style of SMP-ReVirt: the
//     thread-parallel execution runs unmodified, but every transition of a
//     page between owners/modes must be logged (and, on real hardware, paid
//     for with a page fault). Its log grows with cross-thread sharing.
//   - A pure uniprocessor recorder: the whole program timesliced on one
//     CPU for its entire run — minimal log, but no parallel speedup at all.
//
// DoublePlay sits between them: uniprocessor-quality logs at (almost)
// multiprocessor speed.
package baseline

import (
	"fmt"

	"doubleplay/internal/dplog"
	"doubleplay/internal/sched"
	"doubleplay/internal/simos"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
)

// CrewFaultCost is the simulated cost of one CREW ownership fault (a
// hardware page-protection fault plus kernel bookkeeping).
const CrewFaultCost = 2500

// crewMode is a page's sharing mode.
type crewMode uint8

const (
	crewExclusive crewMode = iota
	crewShared
)

type crewPage struct {
	mode    crewMode
	owner   int
	readers uint64 // bitset over tids < 64
}

// CrewResult reports a CREW-logged execution.
type CrewResult struct {
	Cycles      int64 // execution time including fault penalties
	BaseCycles  int64 // execution time without penalties
	Transitions int64 // logged ownership transitions
	Retired     int64
	OrderBytes  int // encoded size of the ownership-transition log
	InputBytes  int // encoded size of the syscall/input log (needed for replay)
	LogBytes    int // total replay log: order + input
	Faults      []string
}

// RunCREW executes prog thread-parallel on cpus cores while logging every
// CREW page-ownership transition, returning the overhead and log size a
// shared-memory-order recorder would pay for this execution.
//
// tr, when enabled, receives the baseline timeline: one "baseline.crew.run"
// span per thread-CPU binding, a "crew.fault" instant and a
// "crew.transitions" counter sample per logged ownership transition, and a
// closing "baseline.crew.done" instant. Tracing only reads the simulated
// clocks; traced and untraced runs produce bit-identical results.
func RunCREW(prog *vm.Program, world *simos.World, cpus int, seed int64, costs *vm.CostModel, tr trace.Recorder) (*CrewResult, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	traced := trace.Enabled(tr)
	var pid int64
	if traced {
		pid = tr.AllocPid(fmt.Sprintf("baseline crew %s cpus=%d", prog.Name, cpus))
	}
	// Like any replay system, CREW must also log external inputs.
	ros := &uniRecordOS{inner: simos.NewOS(world)}
	m := vm.NewMachine(prog, ros, costs)

	pages := make(map[vm.Word]*crewPage)
	var transitions int64
	var logBytes int64
	logTransition := func(page vm.Word, tid int, write bool) {
		transitions++
		// Honest size estimate: varint page delta (~3B), tid (1B), mode+seq
		// delta (~2B).
		logBytes += 6
		if traced {
			tr.Instant("crew.fault", m.Now, pid, int64(tid),
				map[string]any{"page": int64(page), "write": write})
			tr.Counter("crew.transitions", m.Now, pid, transitions)
		}
	}

	access := func(tid int, addr vm.Word, write bool) {
		const pageShift = 10
		pg := addr >> pageShift
		p := pages[pg]
		if p == nil {
			p = &crewPage{mode: crewExclusive, owner: tid}
			pages[pg] = p
			return // first touch: assigned silently, as a fresh mapping
		}
		bit := uint64(1) << (uint(tid) & 63)
		if write {
			if p.mode == crewExclusive && p.owner == tid {
				return
			}
			logTransition(pg, tid, true)
			p.mode = crewExclusive
			p.owner = tid
			p.readers = 0
			return
		}
		switch p.mode {
		case crewExclusive:
			if p.owner == tid {
				return
			}
			logTransition(pg, tid, false)
			p.mode = crewShared
			p.readers = (uint64(1) << (uint(p.owner) & 63)) | bit
		case crewShared:
			if p.readers&bit != 0 {
				return
			}
			logTransition(pg, tid, false)
			p.readers |= bit
		}
	}

	m.Hooks.OnMemAccess = access
	m.Hooks.OnSync = func(ev vm.SyncEvent) {
		if ev.Obj.Kind == vm.ObjAtomic {
			access(ev.Tid, ev.Obj.ID, true)
		}
	}

	par := sched.NewParallel(m, cpus, seed)
	if traced {
		par.Trace = tr
		par.TracePid = pid
		par.TraceSpan = "baseline.crew.run"
	}
	if err := par.Run(); err != nil {
		return nil, err
	}
	if traced {
		for _, t := range m.Threads {
			tr.NameThread(pid, int64(t.ID), fmt.Sprintf("thread %d", t.ID))
		}
		tr.Instant("baseline.crew.done", par.WallTime(), pid, 0,
			map[string]any{"transitions": transitions, "retired": par.Retired()})
	}
	inputBytes := (&dplog.Recording{Epochs: []*dplog.EpochLog{{Syscalls: ros.log}}}).ReplaySize()
	return &CrewResult{
		Cycles:      par.WallTime() + transitions*CrewFaultCost/int64(cpus),
		BaseCycles:  par.WallTime(),
		Transitions: transitions,
		Retired:     par.Retired(),
		OrderBytes:  int(logBytes),
		InputBytes:  inputBytes,
		LogBytes:    int(logBytes) + inputBytes,
		Faults:      m.Faults(),
	}, nil
}

// UniResult reports a pure uniprocessor record/replay execution.
type UniResult struct {
	Cycles    int64
	Retired   int64
	Slices    int
	Syscalls  int
	LogBytes  int // replay log: schedule + syscalls
	FinalHash uint64
	Faults    []string
}

// uniRecordOS logs syscalls for the uniprocessor baseline.
type uniRecordOS struct {
	inner vm.SyscallHandler
	log   []dplog.SyscallRecord
}

func (r *uniRecordOS) Syscall(m *vm.Machine, t *vm.Thread, num vm.Word, args [6]vm.Word) vm.SysResult {
	res := r.inner.Syscall(m, t, num, args)
	if !res.Block && res.Fault == "" {
		r.log = append(r.log, dplog.SyscallRecord{Tid: t.ID, Num: num, Args: args, Ret: res.Ret, Writes: res.Writes})
	}
	return res
}

// RunUniprocessor records prog with classic single-CPU timeslicing for the
// whole execution — the paper's "what everyone did before multiprocessors"
// baseline. Its log is one giant epoch.
//
// tr, when enabled, receives one "baseline.uni.slice" span per executed
// timeslice on a single "cpu0" track plus a closing "baseline.uni.done"
// instant. Tracing only reads the scheduler clock; traced and untraced runs
// produce bit-identical results.
func RunUniprocessor(prog *vm.Program, world *simos.World, costs *vm.CostModel, tr trace.Recorder) (*UniResult, error) {
	if costs == nil {
		costs = vm.DefaultCosts()
	}
	traced := trace.Enabled(tr)
	var pid int64
	if traced {
		pid = tr.AllocPid("baseline uni " + prog.Name)
		tr.NameThread(pid, 0, "cpu0")
	}
	ros := &uniRecordOS{inner: simos.NewOS(world)}
	m := vm.NewMachine(prog, ros, costs)
	var sigs []dplog.SignalRecord
	m.Hooks.PendingSignal = func(t *vm.Thread) (vm.Word, bool) {
		sig, ok := world.NextSignal(t.ID, m.Now)
		if ok {
			sigs = append(sigs, dplog.SignalRecord{Tid: t.ID, Retired: t.Retired, Sig: sig})
		}
		return sig, ok
	}
	uni := sched.NewUni(m)
	uni.LogSchedule = true
	if traced {
		uni.Trace = tr
		uni.TracePid = pid
		uni.TraceSpan = "baseline.uni.slice"
	}
	if err := uni.Run(); err != nil {
		return nil, err
	}
	if traced {
		tr.Instant("baseline.uni.done", uni.Cycles, pid, 0,
			map[string]any{"slices": len(uni.Log), "syscalls": len(ros.log)})
	}

	var total uint64
	for _, t := range m.Threads {
		total += t.Retired
	}
	targets := make([]uint64, len(m.Threads))
	for i, t := range m.Threads {
		targets[i] = t.Retired
	}
	rec := &dplog.Recording{
		Program: prog.Name,
		Epochs: []*dplog.EpochLog{{
			Targets:  targets,
			Schedule: uni.Log,
			Syscalls: ros.log,
			Signals:  sigs,
		}},
	}
	return &UniResult{
		Cycles:    uni.Cycles,
		Retired:   int64(total),
		Slices:    len(uni.Log),
		Syscalls:  len(ros.log),
		LogBytes:  rec.ReplaySize(),
		FinalHash: m.StateHash(),
		Faults:    m.Faults(),
	}, nil
}
