package baseline_test

import (
	"reflect"
	"testing"

	"doubleplay/internal/baseline"
	"doubleplay/internal/trace"
	"doubleplay/internal/workloads"
)

func rebuild(t *testing.T, name string, workers int) *workloads.Built {
	t.Helper()
	wl := workloads.Get(name)
	if wl == nil {
		t.Fatalf("unknown workload %s", name)
	}
	return wl.Build(workloads.Params{Workers: workers, Scale: 1, Seed: 11})
}

// TestCrewTracingBitIdentical extends the recorder's traced-vs-untraced
// guard to the CREW baseline: tracing only reads clocks, so every reported
// number must be bit-identical with and without a live sink.
func TestCrewTracingBitIdentical(t *testing.T) {
	bt := rebuild(t, "ocean", 4)
	plain, err := baseline.RunCREW(bt.Prog, bt.World, 4, 23, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewSink()
	bt2 := rebuild(t, "ocean", 4)
	traced, err := baseline.RunCREW(bt2.Prog, bt2.World, 4, 23, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracing perturbed the CREW baseline:\nplain  %+v\ntraced %+v", plain, traced)
	}
	if sink.Len() == 0 {
		t.Fatal("traced run produced no events")
	}
	names := map[string]int{}
	for _, ev := range sink.Events() {
		names[ev.Name]++
	}
	for _, want := range []string{"baseline.crew.run", "crew.fault", "crew.transitions", "baseline.crew.done"} {
		if names[want] == 0 {
			t.Errorf("no %q events; saw %v", want, names)
		}
	}
	if int64(names["crew.fault"]) != traced.Transitions {
		t.Errorf("%d crew.fault instants for %d transitions", names["crew.fault"], traced.Transitions)
	}
}

// TestUniprocessorTracingBitIdentical is the same guard for the
// uniprocessor baseline.
func TestUniprocessorTracingBitIdentical(t *testing.T) {
	bt := rebuild(t, "fft", 4)
	plain, err := baseline.RunUniprocessor(bt.Prog, bt.World, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewSink()
	bt2 := rebuild(t, "fft", 4)
	traced, err := baseline.RunUniprocessor(bt2.Prog, bt2.World, nil, sink)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracing perturbed the uniprocessor baseline:\nplain  %+v\ntraced %+v", plain, traced)
	}
	names := map[string]int{}
	for _, ev := range sink.Events() {
		names[ev.Name]++
	}
	if names["baseline.uni.slice"] == 0 || names["baseline.uni.done"] != 1 {
		t.Fatalf("unexpected uni trace vocabulary: %v", names)
	}
}

// TestBaselinesStreamable runs both baselines against a StreamSink, checking
// the Recorder interface end to end outside the recorder proper.
func TestBaselinesStreamable(t *testing.T) {
	var buf writeCounter
	stream := trace.NewStreamSink(&buf, 32)
	bt := rebuild(t, "radix", 2)
	if _, err := baseline.RunCREW(bt.Prog, bt.World, 2, 23, nil, stream); err != nil {
		t.Fatal(err)
	}
	bt2 := rebuild(t, "radix", 2)
	if _, err := baseline.RunUniprocessor(bt2.Prog, bt2.World, nil, stream); err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	if got := stream.MaxBuffered(); got > 32 {
		t.Fatalf("live buffer reached %d events, window 32", got)
	}
	if stream.Written() == 0 || buf.n == 0 {
		t.Fatal("nothing streamed")
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
