package epoch_test

import (
	"strings"
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/dplog"
	"doubleplay/internal/epoch"
	"doubleplay/internal/sched"
	"doubleplay/internal/simos"
	"doubleplay/internal/vm"
)

func TestGateEnforcesRecordedOrder(t *testing.T) {
	lock := vm.SyncObj{Kind: vm.ObjLock, ID: 7}
	atom := vm.SyncObj{Kind: vm.ObjAtomic, ID: 100}
	g := epoch.NewGate([]dplog.SyncRecord{
		{Tid: 1, Kind: vm.ObjLock, ID: 7},
		{Tid: 0, Kind: vm.ObjLock, ID: 7},
		{Tid: 2, Kind: vm.ObjAtomic, ID: 100},
	})
	if g.MayAcquire(lock, 0) {
		t.Fatal("tid 0 allowed ahead of tid 1")
	}
	if !g.MayAcquire(lock, 1) {
		t.Fatal("tid 1 refused its own turn")
	}
	// Objects are independent: the atomic's head is available immediately.
	if !g.MayAcquire(atom, 2) {
		t.Fatal("atomic gated behind an unrelated lock")
	}
	g.OnSync(vm.SyncEvent{Tid: 1, Obj: lock, Kind: vm.SyncAcquire})
	if !g.MayAcquire(lock, 0) {
		t.Fatal("tid 0 refused after tid 1 went")
	}
	g.OnSync(vm.SyncEvent{Tid: 0, Obj: lock, Kind: vm.SyncAcquire})
	g.OnSync(vm.SyncEvent{Tid: 2, Obj: atom, Kind: vm.SyncAtomic})
	if g.Remaining() != 0 || g.Used() != 3 {
		t.Fatalf("remaining=%d used=%d", g.Remaining(), g.Used())
	}
	// An unrecorded operation is never allowed.
	if g.MayAcquire(lock, 1) {
		t.Fatal("exhausted queue still allows acquires")
	}
	// Ungated events pass through without consuming anything.
	g.OnSync(vm.SyncEvent{Tid: 1, Obj: lock, Kind: vm.SyncRelease})
	if g.Err() != "" {
		t.Fatalf("release consumed gate state: %s", g.Err())
	}
}

func TestGateRecordsViolationWhenUnenforced(t *testing.T) {
	lock := vm.SyncObj{Kind: vm.ObjLock, ID: 7}
	g := epoch.NewGate([]dplog.SyncRecord{{Tid: 1, Kind: vm.ObjLock, ID: 7}})
	// Simulates the ablation: the event fires without MayAcquire approval.
	g.OnSync(vm.SyncEvent{Tid: 0, Obj: lock, Kind: vm.SyncAcquire})
	if g.Err() == "" {
		t.Fatal("out-of-order acquire not recorded")
	}
}

func TestInjectOSReplaysAndDetectsMismatch(t *testing.T) {
	recs := []dplog.SyscallRecord{
		{Tid: 0, Num: 3, Args: [6]vm.Word{1}, Ret: 42,
			Writes: []vm.MemWrite{{Addr: 10, Data: []vm.Word{7, 8}}}},
		{Tid: 0, Num: 3, Args: [6]vm.Word{2}, Ret: 43},
	}
	inj := epoch.NewInjectOS(recs)
	m := &vm.Machine{} // only the Diverged field is touched

	res := inj.Syscall(m, &vm.Thread{ID: 0}, 3, [6]vm.Word{1})
	if res.Ret != 42 || len(res.Writes) != 1 || m.Diverged != "" {
		t.Fatalf("first injection wrong: %+v (diverged %q)", res, m.Diverged)
	}
	// Arg mismatch on the second call.
	res = inj.Syscall(m, &vm.Thread{ID: 0}, 3, [6]vm.Word{99})
	if !res.Block || m.Diverged == "" {
		t.Fatal("mismatched syscall injected")
	}
	if !strings.Contains(m.Diverged, "mismatch") {
		t.Fatalf("diverged = %q", m.Diverged)
	}
}

func TestInjectOSExtraSyscallDiverges(t *testing.T) {
	inj := epoch.NewInjectOS(nil)
	m := &vm.Machine{}
	res := inj.Syscall(m, &vm.Thread{ID: 1}, 5, [6]vm.Word{})
	if !res.Block || m.Diverged == "" {
		t.Fatal("extra syscall not flagged")
	}
	if inj.Remaining() != 0 {
		t.Fatal("remaining wrong")
	}
}

// buildEpochProgram constructs a two-worker locked-counter program and its
// world.
func buildEpochProgram(iters int) *vm.Program {
	b := asm.NewBuilder("ep")
	cell := b.Words(0)
	w := b.Func("worker", 1)
	{
		lk, base, v, i := w.Const(2), w.Const(cell), w.Reg(), w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, vm.Word(iters), func() {
			w.LockR(lk)
			w.Ld(v, base, 0)
			w.Addi(v, v, 1)
			w.St(base, 0, v)
			w.UnlockR(lk)
			w.Sys(simos.SysTime)
		})
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	{
		t1, t2, a := m.Reg(), m.Reg(), m.Reg()
		m.Movi(a, 0)
		m.Spawn(t1, "worker", a)
		m.Spawn(t2, "worker", a)
		m.Join(t1)
		m.Join(t2)
		m.HaltImm(0)
	}
	b.SetEntry("main")
	return b.MustBuild()
}

// recordOneEpoch runs the thread-parallel pass for a while and returns the
// pieces an epoch run needs.
func recordOneEpoch(t *testing.T, prog *vm.Program, until int64) (*epoch.Boundary, *epoch.Boundary, []dplog.SyncRecord, []dplog.SyscallRecord) {
	t.Helper()
	world := simos.NewWorld(1)
	var sync []dplog.SyncRecord
	var sys []dplog.SyscallRecord
	os := simos.NewOS(world)
	m := vm.NewMachine(prog, sysRecorder{os, &sys}, nil)
	m.Hooks.OnSync = func(ev vm.SyncEvent) {
		if ev.Gated() {
			sync = append(sync, dplog.SyncRecord{Tid: ev.Tid, Kind: ev.Obj.Kind, ID: ev.Obj.ID})
		}
	}
	par := sched.NewParallel(m, 2, 1)
	start := epoch.Capture(0, 0, m, world)
	if err := par.RunUntil(until); err != nil {
		t.Fatal(err)
	}
	end := epoch.Capture(1, par.Now(), m, world)
	return start, end, sync, sys
}

type sysRecorder struct {
	inner vm.SyscallHandler
	out   *[]dplog.SyscallRecord
}

func (r sysRecorder) Syscall(m *vm.Machine, th *vm.Thread, num vm.Word, args [6]vm.Word) vm.SysResult {
	res := r.inner.Syscall(m, th, num, args)
	if !res.Block && res.Fault == "" {
		*r.out = append(*r.out, dplog.SyscallRecord{Tid: th.ID, Num: num, Args: args, Ret: res.Ret, Writes: res.Writes})
	}
	return res
}

func TestRunEpochMatchesThreadParallelState(t *testing.T) {
	prog := buildEpochProgram(300)
	start, end, sync, sys := recordOneEpoch(t, prog, 8000)

	res, err := epoch.Run(epoch.RunSpec{
		Prog:      prog,
		Start:     start,
		Targets:   end.Targets(),
		SyncOrder: sync,
		Syscalls:  sys,
		Costs:     vm.DefaultCosts(),
	})
	if err != nil {
		t.Fatalf("epoch run: %v", err)
	}
	if res.EndHash != end.Hash {
		t.Fatalf("race-free epoch diverged: %016x vs %016x", res.EndHash, end.Hash)
	}
	if len(res.Schedule) == 0 {
		t.Fatal("no schedule produced")
	}
	if res.Injected != len(sys) {
		t.Fatalf("injected %d of %d syscalls", res.Injected, len(sys))
	}
	if res.Enforced != len(sync) {
		t.Fatalf("enforced %d of %d sync ops", res.Enforced, len(sync))
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles accounted")
	}
}

func TestRunEpochDetectsMissingSyncOps(t *testing.T) {
	prog := buildEpochProgram(300)
	start, end, sync, sys := recordOneEpoch(t, prog, 8000)

	// Append a phantom recorded acquire that the execution will never
	// perform: the run must be declared divergent.
	phantom := append(append([]dplog.SyncRecord(nil), sync...),
		dplog.SyncRecord{Tid: 1, Kind: vm.ObjLock, ID: 999})
	_, err := epoch.Run(epoch.RunSpec{
		Prog:      prog,
		Start:     start,
		Targets:   end.Targets(),
		SyncOrder: phantom,
		Syscalls:  sys,
		Costs:     vm.DefaultCosts(),
	})
	if err == nil || !epoch.IsDivergence(err) {
		t.Fatalf("err = %v, want divergence", err)
	}
}

func TestBoundaryTargets(t *testing.T) {
	prog := buildEpochProgram(50)
	start, end, _, _ := recordOneEpoch(t, prog, 3000)
	if got := start.Targets(); len(got) == 0 || got[0] != 0 {
		t.Fatalf("start targets = %v", got)
	}
	sum := uint64(0)
	for _, v := range end.Targets() {
		sum += v
	}
	if sum == 0 {
		t.Fatal("end targets empty")
	}
	if start.Hash == end.Hash {
		t.Fatal("progress did not change the state hash")
	}
}
