package epoch_test

import (
	"testing"

	"doubleplay/internal/dplog"
	"doubleplay/internal/epoch"
	"doubleplay/internal/vm"
)

func TestInjectSignalsExactPoints(t *testing.T) {
	inj := epoch.NewInjectSignals([]dplog.SignalRecord{
		{Tid: 1, Retired: 10, Sig: 3},
		{Tid: 1, Retired: 25, Sig: 4},
		{Tid: 2, Retired: 10, Sig: 5},
	})
	th1 := &vm.Thread{ID: 1, Retired: 9}
	if _, ok := inj.Pending(th1); ok {
		t.Fatal("delivered early")
	}
	th1.Retired = 10
	sig, ok := inj.Pending(th1)
	if !ok || sig != 3 {
		t.Fatalf("delivery = (%d,%v), want (3,true)", sig, ok)
	}
	// Not redelivered at the same point.
	if _, ok := inj.Pending(th1); ok {
		t.Fatal("redelivered")
	}
	th2 := &vm.Thread{ID: 2, Retired: 10}
	if sig, ok := inj.Pending(th2); !ok || sig != 5 {
		t.Fatal("per-thread queues entangled")
	}
	if inj.Remaining() != 1 || inj.Injected != 2 {
		t.Fatalf("remaining=%d injected=%d", inj.Remaining(), inj.Injected)
	}
}

func TestRunEpochDetectsUndeliverableSignal(t *testing.T) {
	prog := buildEpochProgram(200)
	start, end, sync, sys := recordOneEpoch(t, prog, 6000)
	// A phantom signal pinned past any thread's target can never be
	// delivered: the run must be declared divergent.
	_, err := epoch.Run(epoch.RunSpec{
		Prog:      prog,
		Start:     start,
		Targets:   end.Targets(),
		SyncOrder: sync,
		Syscalls:  sys,
		Signals:   []dplog.SignalRecord{{Tid: 1, Retired: 1 << 40, Sig: 9}},
		Costs:     vm.DefaultCosts(),
	})
	if err == nil || !epoch.IsDivergence(err) {
		t.Fatalf("err = %v, want divergence", err)
	}
}
