package epoch

import (
	"errors"
	"fmt"

	"doubleplay/internal/dplog"
	"doubleplay/internal/profile"
	"doubleplay/internal/sched"
	"doubleplay/internal/simos"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
)

// ErrDiverged wraps sched.ErrDiverged for callers of this package.
var ErrDiverged = sched.ErrDiverged

// Boundary is one epoch boundary captured from the thread-parallel run: an
// architectural checkpoint, a frozen snapshot of the simulated world, and
// the simulated time at which the checkpoint was taken.
type Boundary struct {
	Index int
	Cycle int64
	CP    *vm.Checkpoint
	World *simos.World
	Hash  uint64

	// MappedPages is the checkpoint's memory footprint, used by the cost
	// model to price taking the checkpoint.
	MappedPages int
}

// Targets returns the per-thread retired-instruction counts at this
// boundary, which define where the preceding epoch ends.
func (b *Boundary) Targets() []uint64 {
	out := make([]uint64, len(b.CP.Threads))
	for i, t := range b.CP.Threads {
		out[i] = t.Retired
	}
	return out
}

// Capture snapshots a running machine and its world into a boundary.
func Capture(index int, cycle int64, m *vm.Machine, w *simos.World) *Boundary {
	cp := m.Checkpoint()
	return &Boundary{
		Index:       index,
		Cycle:       cycle,
		CP:          cp,
		World:       w.Clone(),
		Hash:        cp.Hash(),
		MappedPages: m.Mem.PageCount(),
	}
}

// RunSpec describes one epoch-parallel execution: start from Start, run all
// threads timesliced on one CPU to the per-thread Targets, constrained by
// the recorded sync order and fed by recorded syscall results.
type RunSpec struct {
	Prog      *vm.Program
	Start     *Boundary
	Targets   []uint64
	SyncOrder []dplog.SyncRecord
	Syscalls  []dplog.SyscallRecord
	Signals   []dplog.SignalRecord
	Quantum   int64
	Costs     *vm.CostModel

	// DisableEnforcement turns off the sync-order gate (the ablation
	// configuration): lock-order differences then surface as divergences.
	DisableEnforcement bool

	// Observers, if set, are chained after the gate's own hooks; the race
	// detector attaches here.
	OnSync      func(vm.SyncEvent)
	OnMemAccess func(tid int, addr vm.Word, write bool)

	// Trace, when set, receives one "slice" span per executed timeslice
	// with epoch-local timestamps (cycle 0 = epoch start on the virtual
	// CPU). Callers splice the buffer to the epoch's pipeline-assigned
	// position; see trace.Sink.Splice.
	Trace trace.Recorder

	// Profile, when set, is attached to the epoch's machine and observes
	// every retired instruction; callers snapshot it after the run.
	Profile *profile.Profiler
}

// RunResult is the outcome of an epoch-parallel execution.
type RunResult struct {
	M        *vm.Machine   // final machine state
	Schedule []dplog.Slice // the uniprocessor timeslice log — the replay log
	Cycles   int64         // serialized execution time on the single CPU
	Injected int           // syscalls injected
	Enforced int           // gated sync ops consumed
	EndHash  uint64
}

// Run executes one epoch. A nil error means the epoch ran to its targets
// under the recorded constraints; the caller still must compare EndHash
// against the next boundary to detect data-race divergence.
func Run(spec RunSpec) (*RunResult, error) {
	if spec.Quantum <= 0 {
		spec.Quantum = sched.DefaultQuantum
	}
	inj := NewInjectOS(spec.Syscalls)
	m := spec.Start.CP.Restore(spec.Prog, inj, spec.Costs)
	sigs := NewInjectSignals(spec.Signals)
	m.Hooks.PendingSignal = sigs.Pending

	gate := NewGate(spec.SyncOrder)
	if !spec.DisableEnforcement {
		m.Hooks.MayAcquire = gate.MayAcquire
	}
	m.Hooks.OnSync = func(ev vm.SyncEvent) {
		gate.OnSync(ev)
		if spec.OnSync != nil {
			spec.OnSync(ev)
		}
	}
	m.Hooks.OnMemAccess = spec.OnMemAccess
	if spec.Profile != nil {
		spec.Profile.Attach(m)
	}

	uni := sched.NewUni(m)
	uni.Quantum = spec.Quantum
	uni.Targets = spec.Targets
	uni.LogSchedule = true
	uni.Trace = spec.Trace

	err := uni.Run()
	res := &RunResult{
		M:        m,
		Schedule: uni.Log,
		Injected: inj.Injected,
		Enforced: gate.Used(),
	}
	res.Cycles = uni.Cycles +
		int64(inj.Injected)*spec.Costs.InjectSysEvent +
		int64(gate.Used())*spec.Costs.EnforceSyncEvent
	if err != nil {
		return res, err
	}
	// The run reached its targets; cross-check that it consumed exactly the
	// recorded constraint streams. Leftovers mean the execution took a
	// different path even though per-thread retirement counts lined up.
	if r := gate.Remaining(); r != 0 {
		return res, fmt.Errorf("%w: %d recorded sync ops never performed", ErrDiverged, r)
	}
	if gateErr := gate.Err(); gateErr != "" {
		return res, fmt.Errorf("%w: %s", ErrDiverged, gateErr)
	}
	if r := inj.Remaining(); r != 0 {
		return res, fmt.Errorf("%w: %d recorded syscalls never issued", ErrDiverged, r)
	}
	if r := sigs.Remaining(); r != 0 {
		return res, fmt.Errorf("%w: %d recorded signals never delivered", ErrDiverged, r)
	}
	if len(m.Threads) != len(spec.Targets) {
		return res, fmt.Errorf("%w: thread count %d differs from recorded %d",
			ErrDiverged, len(m.Threads), len(spec.Targets))
	}
	res.EndHash = m.StateHash()
	return res, nil
}

// IsDivergence reports whether err indicates the execution departed from
// the recording (as opposed to an internal failure).
func IsDivergence(err error) bool {
	return errors.Is(err, sched.ErrDiverged)
}
