// Package epoch implements DoublePlay's epoch machinery: boundary capture
// (checkpoint + world snapshot), sync-order enforcement, syscall injection,
// and the epoch-parallel runner that executes one epoch of the program with
// all threads timesliced on a single simulated CPU.
//
// The runner optionally narrates its timeslices into a trace.Sink
// (RunSpec.Trace) with epoch-local timestamps; the recorder splices that
// buffer to the epoch's pipeline-assigned position once known, so the
// Perfetto timeline shows epoch work where it actually ran.
package epoch

import (
	"fmt"

	"doubleplay/internal/dplog"
	"doubleplay/internal/vm"
)

// Gate enforces, per synchronisation object, the thread order in which
// gated operations (lock acquires, atomics, spawns) retired during the
// thread-parallel run. With the gate in place, lock-acquisition races
// resolve identically in the epoch-parallel execution, so only true data
// races can make the two executions diverge — the property DoublePlay's
// divergence rate depends on.
type Gate struct {
	queues map[vm.SyncObj][]int
	used   int
	err    string
}

// NewGate builds a gate from an epoch's recorded sync order.
func NewGate(order []dplog.SyncRecord) *Gate {
	g := &Gate{queues: make(map[vm.SyncObj][]int)}
	for _, r := range order {
		obj := vm.SyncObj{Kind: r.Kind, ID: r.ID}
		g.queues[obj] = append(g.queues[obj], r.Tid)
	}
	return g
}

// MayAcquire reports whether tid is next in the recorded order for obj.
// An operation with no recorded counterpart is refused forever; the runner
// detects the resulting stall as a divergence.
func (g *Gate) MayAcquire(obj vm.SyncObj, tid int) bool {
	q := g.queues[obj]
	return len(q) > 0 && q[0] == tid
}

// OnSync consumes the head of the object's queue when a gated operation
// retires. It must be installed as the machine's OnSync hook.
func (g *Gate) OnSync(ev vm.SyncEvent) {
	if !ev.Gated() {
		return
	}
	q := g.queues[ev.Obj]
	if len(q) == 0 || q[0] != ev.Tid {
		// MayAcquire prevents this unless enforcement is disabled (the
		// ablation configuration); record it so Remaining()/Err() report it.
		g.err = fmt.Sprintf("sync op %s by tid %d not next in recorded order", ev.Obj, ev.Tid)
		return
	}
	g.queues[ev.Obj] = q[1:]
	g.used++
}

// Remaining returns the number of recorded operations not yet performed.
func (g *Gate) Remaining() int {
	n := 0
	for _, q := range g.queues {
		n += len(q)
	}
	return n
}

// Used returns the number of enforced operations consumed.
func (g *Gate) Used() int { return g.used }

// Err returns a non-empty string if the observed order contradicted the
// recording (possible only when enforcement is disabled).
func (g *Gate) Err() string { return g.err }

// InjectOS replays recorded syscall results instead of executing a
// simulated OS. Any identity mismatch — wrong thread, number, or arguments
// — marks the machine diverged.
type InjectOS struct {
	queues   map[int][]dplog.SyscallRecord
	Injected int
}

// NewInjectOS builds an injector from an epoch's syscall records. Records
// arrive in global retirement order; per-thread order, which is what
// injection requires, is preserved by the per-tid split.
func NewInjectOS(records []dplog.SyscallRecord) *InjectOS {
	o := &InjectOS{queues: make(map[int][]dplog.SyscallRecord)}
	for _, r := range records {
		o.queues[r.Tid] = append(o.queues[r.Tid], r)
	}
	return o
}

// Syscall implements vm.SyscallHandler by injection.
func (o *InjectOS) Syscall(m *vm.Machine, t *vm.Thread, num vm.Word, args [6]vm.Word) vm.SysResult {
	q := o.queues[t.ID]
	if len(q) == 0 {
		m.Diverged = fmt.Sprintf("tid %d issued syscall %d with no recorded counterpart", t.ID, num)
		return vm.SysResult{Block: true}
	}
	rec := q[0]
	if !rec.Matches(t.ID, num, args) {
		m.Diverged = fmt.Sprintf("tid %d syscall mismatch: got num=%d args=%v, recorded num=%d args=%v",
			t.ID, num, args, rec.Num, rec.Args)
		return vm.SysResult{Block: true}
	}
	o.queues[t.ID] = q[1:]
	o.Injected++
	return vm.SysResult{Ret: rec.Ret, Writes: rec.Writes}
}

// Remaining returns the number of recorded syscalls not yet injected.
func (o *InjectOS) Remaining() int {
	n := 0
	for _, q := range o.queues {
		n += len(q)
	}
	return n
}

// InjectSignals re-delivers recorded asynchronous signals at the exact
// retired-instruction counts the recording pinned them to.
type InjectSignals struct {
	queues   map[int][]dplog.SignalRecord
	Injected int
}

// NewInjectSignals builds an injector from an epoch's signal records.
func NewInjectSignals(recs []dplog.SignalRecord) *InjectSignals {
	s := &InjectSignals{queues: make(map[int][]dplog.SignalRecord)}
	for _, r := range recs {
		s.queues[r.Tid] = append(s.queues[r.Tid], r)
	}
	return s
}

// Pending implements the machine's PendingSignal hook.
func (s *InjectSignals) Pending(t *vm.Thread) (vm.Word, bool) {
	q := s.queues[t.ID]
	if len(q) > 0 && q[0].Retired == t.Retired {
		s.queues[t.ID] = q[1:]
		s.Injected++
		return q[0].Sig, true
	}
	return 0, false
}

// Remaining returns the number of recorded signals not yet delivered.
func (s *InjectSignals) Remaining() int {
	n := 0
	for _, q := range s.queues {
		n += len(q)
	}
	return n
}
