// Tests live in an external package so they can drive the analyzer
// through internal/asm, which itself imports analyze for its opt-in
// verify step.
package analyze_test

import (
	"testing"

	"doubleplay/internal/analyze"
	"doubleplay/internal/asm"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

func kinds(fs *analyze.Findings) map[analyze.Kind]int {
	out := map[analyze.Kind]int{}
	for _, f := range fs.List {
		out[f.Kind]++
	}
	return out
}

// spawnTwo emits main spawning two workers and joining both.
func spawnTwo(m *asm.Func, distinctArgs bool) {
	t1, t2, arg := m.Reg(), m.Reg(), m.Reg()
	m.Movi(arg, 0)
	m.Spawn(t1, "worker", arg)
	if distinctArgs {
		m.Movi(arg, 1)
	}
	m.Spawn(t2, "worker", arg)
	m.Join(t1)
	m.Join(t2)
}

// TestLints drives each dataflow and structural check over a small
// hand-built program that should trip exactly it.
func TestLints(t *testing.T) {
	cases := []struct {
		name    string
		build   func(b *asm.Builder)
		want    analyze.Kind
		wantSev analyze.Severity
	}{
		{
			name: "uninit register",
			build: func(b *asm.Builder) {
				f := b.Func("main", 0)
				d, a := f.Reg(), f.Reg()
				_ = d
				f.Addi(a, a, 1) // a read before any write
				f.HaltImm(0)
			},
			want: analyze.UninitRegister, wantSev: analyze.SevWarning,
		},
		{
			name: "unlock never held",
			build: func(b *asm.Builder) {
				f := b.Func("main", 0)
				f.UnlockR(f.Const(3))
				f.HaltImm(0)
			},
			want: analyze.UnbalancedLock, wantSev: analyze.SevError,
		},
		{
			name: "recursive lock",
			build: func(b *asm.Builder) {
				f := b.Func("main", 0)
				lk := f.Const(3)
				f.LockR(lk)
				f.LockR(lk)
				f.UnlockR(lk)
				f.HaltImm(0)
			},
			want: analyze.RecursiveLock, wantSev: analyze.SevError,
		},
		{
			name: "lock held at thread exit",
			build: func(b *asm.Builder) {
				f := b.Func("main", 0)
				f.LockR(f.Const(3))
				f.HaltImm(0)
			},
			want: analyze.LockAtExit, wantSev: analyze.SevWarning,
		},
		{
			name: "dead block",
			build: func(b *asm.Builder) {
				f := b.Func("main", 0)
				r := f.Reg()
				done := f.NewLabel()
				f.Jump(done)
				f.Movi(r, 1) // unreachable
				f.Label(done)
				f.HaltImm(0)
			},
			want: analyze.DeadBlock, wantSev: analyze.SevWarning,
		},
		{
			name: "dead store",
			build: func(b *asm.Builder) {
				f := b.Func("main", 0)
				r := f.Reg()
				f.Movi(r, 1) // overwritten before any read
				f.Movi(r, 2)
				f.Halt(r)
			},
			want: analyze.DeadStore, wantSev: analyze.SevWarning,
		},
		{
			name: "fall off function end",
			build: func(b *asm.Builder) {
				f := b.Func("main", 0)
				r := f.Reg()
				f.Movi(r, 1) // no halt or ret follows
			},
			want: analyze.FallOffEnd, wantSev: analyze.SevError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := asm.NewBuilder("t")
			tc.build(b)
			prog, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			fs := analyze.Run(prog)
			got := fs.ByKind(tc.want)
			if len(got) == 0 {
				t.Fatalf("no %s finding; got %v", tc.want, fs.List)
			}
			if got[0].Sev != tc.wantSev {
				t.Fatalf("%s severity = %s, want %s", tc.want, got[0].Sev, tc.wantSev)
			}
		})
	}
}

func TestInvalidProgramFinding(t *testing.T) {
	p := &vm.Program{Name: "broken"}
	fs := analyze.Run(p)
	if len(fs.ByKind(analyze.InvalidProgram)) != 1 || fs.Errors() != 1 {
		t.Fatalf("want a single invalid-program error, got %v", fs.List)
	}
}

// buildCounterRace builds two workers doing a read-modify-write on one
// shared cell, optionally under a consistent lock.
func buildCounterRace(t *testing.T, locked bool) (*vm.Program, vm.Word) {
	t.Helper()
	b := asm.NewBuilder("t")
	cell := b.Words(0)
	w := b.Func("worker", 1)
	{
		cellA := w.Const(cell)
		lk := w.Const(9)
		tmp := w.Reg()
		if locked {
			w.LockR(lk)
		}
		w.Ld(tmp, cellA, 0)
		w.Addi(tmp, tmp, 1)
		w.St(cellA, 0, tmp)
		if locked {
			w.UnlockR(lk)
		}
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	spawnTwo(m, false) // identical spawn args: one context, two instances
	m.HaltImm(0)
	b.SetEntry("main")
	return b.MustBuild(), cell
}

func TestInconsistentLocksetFlagged(t *testing.T) {
	prog, cell := buildCounterRace(t, false)
	fs := analyze.Run(prog)
	if len(fs.Races()) == 0 {
		t.Fatalf("unlocked shared counter not flagged: %v", fs.List)
	}
	if !fs.Covers(cell) {
		t.Fatalf("candidates %v do not cover cell %d", fs.Races(), cell)
	}
}

func TestConsistentLocksetClean(t *testing.T) {
	prog, _ := buildCounterRace(t, true)
	fs := analyze.Run(prog)
	if n := len(fs.Races()); n != 0 {
		t.Fatalf("lock-protected counter flagged %d candidates: %v", n, fs.Races())
	}
}

// TestPerInstanceAddressNoSelfRace pins the radix-style pattern: each
// worker derives a private exact address from its spawn argument, so the
// per-context constant sites must not be paired against themselves.
func TestPerInstanceAddressNoSelfRace(t *testing.T) {
	b := asm.NewBuilder("t")
	arr := b.Zeros(4)
	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		mine, tmp := w.Reg(), w.Reg()
		w.Addi(mine, k, arr) // &arr[k]: disjoint per instance
		w.Ld(tmp, mine, 0)
		w.Addi(tmp, tmp, 1)
		w.St(mine, 0, tmp)
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	spawnTwo(m, true) // args 0 and 1: two specialized contexts
	m.HaltImm(0)
	b.SetEntry("main")
	fs := analyze.Run(b.MustBuild())
	if n := len(fs.Races()); n != 0 {
		t.Fatalf("per-instance addresses flagged %d candidates: %v", n, fs.Races())
	}
}

// TestMainOnlyAccessClean pins the pre-spawn/post-join suppression: the
// initial thread touching shared data while no children are live is not
// concurrent with anything.
func TestMainOnlyAccessClean(t *testing.T) {
	b := asm.NewBuilder("t")
	cell := b.Words(0)
	w := b.Func("worker", 1)
	w.HaltImm(0)
	m := b.Func("main", 0)
	{
		cellA := m.Const(cell)
		tmp := m.Reg()
		m.Ld(tmp, cellA, 0) // pre-spawn
		spawnTwo(m, true)
		m.Addi(tmp, tmp, 1)
		m.St(cellA, 0, tmp) // post-join
		m.HaltImm(0)
	}
	b.SetEntry("main")
	fs := analyze.Run(b.MustBuild())
	if n := len(fs.Races()); n != 0 {
		t.Fatalf("join-ordered accesses flagged %d candidates: %v", n, fs.Races())
	}
}

// TestWorkloadScreen cross-validates the screen against the suite's
// ground truth: every racy workload is flagged on its known cells, every
// race-free workload comes back with zero candidates, and nothing in the
// suite trips an error-severity finding.
func TestWorkloadScreen(t *testing.T) {
	for _, wl := range workloads.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			bt := wl.Build(workloads.Params{Workers: 2})
			fs := analyze.Run(bt.Prog)
			if n := fs.Errors(); n != 0 {
				t.Fatalf("%d error findings: %v", n, fs.List)
			}
			races := fs.Races()
			if wl.Racy && len(races) == 0 {
				t.Fatalf("racy workload not flagged: %v", fs.List)
			}
			if !wl.Racy && len(races) != 0 {
				t.Fatalf("race-free workload flagged: %v", races)
			}
			for _, addr := range bt.RacyAddrs {
				if !fs.Covers(addr) {
					t.Errorf("known racy cell %d not covered by %v", addr, races)
				}
			}
		})
	}
}

// TestWorkloadScreenMoreWorkers guards against the screen degrading at a
// different spawn count (more contexts per worker function).
func TestWorkloadScreenMoreWorkers(t *testing.T) {
	for _, name := range []string{"radix", "racey", "kvdb"} {
		wl := workloads.Get(name)
		bt := wl.Build(workloads.Params{Workers: 4})
		fs := analyze.Run(bt.Prog)
		if wl.Racy != (len(fs.Races()) > 0) {
			t.Errorf("%s with 4 workers: racy=%t but %d candidates", name, wl.Racy, len(fs.Races()))
		}
	}
}

func TestSummaryAndKindsAccessors(t *testing.T) {
	prog, _ := buildCounterRace(t, false)
	fs := analyze.Run(prog)
	if fs.Summary() == "" {
		t.Fatal("empty summary")
	}
	if got := kinds(fs)[analyze.RaceCandidate]; got != len(fs.Races()) {
		t.Fatalf("ByKind/Races disagree: %d vs %d", got, len(fs.Races()))
	}
	if fs.Warnings() < len(fs.Races()) {
		t.Fatal("race candidates must count as warnings")
	}
}
