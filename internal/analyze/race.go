package analyze

import (
	"fmt"
	"sort"

	"doubleplay/internal/vm"
)

// site is one statically-resolvable data memory access observed during
// the interprocedural scan. Sites whose address cannot be pinned to a
// known word (exact) or a known array base (region) are not recorded:
// with no static name there is nothing to pair, and in this ISA such
// addresses come from SysAlloc results or loaded pointers that the
// dynamic detector must own anyway.
type site struct {
	fn    int
	pc    int
	write bool
	exact bool    // exact single word vs. region [addr, dataEnd)
	addr  vm.Word // exact address or region base

	class string   // thread class executing the access
	multi bool     // class can have >= 2 concurrently live instances
	conc  bool     // may overlap another thread (pre-spawn/post-join excluded)
	ctxs  []string // keys of the contexts that recorded this site
	locks []vm.Word
	// Known constant stored value, for the benign same-value-store
	// suppression (concurrent stores of the same constant cannot change
	// the final state whichever order they land in).
	valKnown bool
	val      vm.Word
}

func (s *site) where(a *analysis) string {
	kind := "read"
	if s.write {
		kind = "write"
	}
	loc := fmt.Sprintf("[%d]", s.addr)
	if !s.exact {
		loc = fmt.Sprintf("[%d+i]", s.addr)
	}
	return fmt.Sprintf("%s %s at %s@%d (%s, locks {%s})", kind, loc, a.fname(s.fn), s.pc, s.class, lockset{must: s.locks})
}

// recordSite classifies a Ld/St/Ldx/Stx address and records it when it
// has a static name. base+off both constant -> exact word; constant base
// with unknown index -> region; a TidLike index into a constant base is a
// per-thread slot and deliberately not recorded (each thread owns its
// cell by construction, as in the tally arrays of the signal workloads).
func (a *analysis) recordSite(c *context, st *absState, pc int, base, idx aval, write bool, val aval) {
	conc := a.concAt(c, st)
	var s site
	switch {
	case base.k == vConst && idx.k == vConst:
		s = site{exact: true, addr: base.c + idx.c}
	case base.k == vConst && idx.k == vTid:
		return // per-thread slot
	case base.k == vConst:
		s = site{exact: false, addr: base.c}
	default:
		// Dynamically allocated or loaded pointer: nothing to pair, so no
		// site — but while other threads are live the access could touch
		// any word, which the screen cannot rule a race, so a certificate
		// cannot call the program race-free.
		if conc {
			a.unsound(c.fn, pc, "concurrent access through an address the constant dataflow cannot bound")
		}
		return
	}
	// Regions inside barrier-synchronized functions are index-partitioned
	// phase arrays in this suite; the barrier orders the phases, and the
	// per-index disjointness that makes the sharing safe is beyond a
	// lockset analysis. Documented under-approximation (see DESIGN.md) —
	// fine for a screen, but a certificate must degrade on it.
	if !s.exact && a.hasBarrier[c.fn] {
		if conc {
			a.unsound(c.fn, pc, "concurrent region access skipped under the barrier-partitioning assumption")
		}
		return
	}
	s.fn, s.pc, s.write = c.fn, pc, write
	s.class = c.class
	s.conc = conc
	if !s.conc {
		return
	}
	s.locks = st.lk.must
	switch {
	case c.class == "main":
		s.multi = false
	case len(c.class) > 3 && c.class[:3] == "go:":
		// The class root (after "go:") is the spawned function; a helper
		// inherits its caller's class, so multi comes from the root.
		s.multi = a.spawnMultiByName(c.class[3:])
	default: // signal handlers: every live thread can run one
		s.multi = true
	}
	if write && val.k == vConst {
		s.valKnown, s.val = true, val.c
	}
	key := fmt.Sprintf("site|%d|%s|%t|%v|%v|%t|%d", pc, s.class, s.exact, s.addr, s.locks, s.valKnown, s.val)
	if prev := a.siteByKey[key]; prev != nil {
		// Recorded again from another context (each context replays a pc
		// at most once): remember it for the coexisting-instance count.
		prev.ctxs = append(prev.ctxs, c.key())
		return
	}
	s.ctxs = []string{c.key()}
	a.siteByKey[key] = &s
	a.sites = append(a.sites, &s)
}

// coInstances counts the thread instances that can be live at once across
// the contexts that recorded x and y, saturating at 2. Two same-class
// sites race only when that count reaches 2: a context specialized on a
// constant spawn argument (a per-worker address, say) has exactly one
// instance, so a site it alone recorded cannot overlap itself.
func (a *analysis) coInstances(x, y *site) int {
	n := 0
	seen := map[string]bool{}
	for _, keys := range [2][]string{x.ctxs, y.ctxs} {
		for _, k := range keys {
			if seen[k] {
				continue
			}
			seen[k] = true
			n += max(a.ctxInst[k], 1)
			if n >= 2 {
				return 2
			}
		}
	}
	return n
}

// spawnMultiByName resolves multi-instance status for a class whose
// sites live in helper functions called from the spawned root.
func (a *analysis) spawnMultiByName(name string) bool {
	for i, f := range a.prog.Funcs {
		if f.Name == name {
			return a.spawnMulti[i]
		}
	}
	return false
}

// raceable reports whether two sites can execute on distinct threads.
func raceable(x, y *site) bool {
	if x.class != y.class {
		return true
	}
	return x.multi
}

// overlap reports whether two sites can touch the same word. Regions
// extend to the end of the static data segment; two different region
// bases are distinct arrays laid out contiguously, so region/region
// pairs only collide when rooted at the same base, while an exact word
// at or after a region's base may be any element of it.
func (a *analysis) overlap(x, y *site) bool {
	switch {
	case x.exact && y.exact:
		return x.addr == y.addr
	case x.exact != y.exact:
		ex, rg := x, y
		if !ex.exact {
			ex, rg = y, x
		}
		end := a.dataEnd
		if rg.addr >= end {
			end = rg.addr + 1
		}
		return ex.addr >= rg.addr && ex.addr < end
	default:
		return x.addr == y.addr
	}
}

// screenRaces pairs the recorded sites: two concurrent accesses to
// overlapping locations, at least one a write, from threads that can
// actually coexist, with no common must-held lock, form a race
// candidate. Candidates are grouped per location.
func (a *analysis) screenRaces() {
	type group struct {
		exact bool
		addr  vm.Word
		sites map[*site]bool
	}
	groups := map[string]*group{}
	for i, x := range a.sites {
		for j := i; j < len(a.sites); j++ {
			y := a.sites[j]
			if i == j && !(x.write && x.multi) {
				continue // a site races itself only across instances of its class
			}
			if !x.write && !y.write {
				continue
			}
			if !raceable(x, y) || !a.overlap(x, y) {
				continue
			}
			if x.class == y.class && a.coInstances(x, y) < 2 {
				continue // every recording context folds to one live instance
			}
			if x.write && y.write && x.valKnown && y.valKnown && x.val == y.val {
				continue // same-constant stores are order-insensitive
			}
			if len(intersectWords(x.locks, y.locks)) > 0 {
				continue // consistently protected
			}
			// Group under the narrower location name.
			g := x
			if !g.exact && y.exact {
				g = y
			}
			key := fmt.Sprintf("%t|%d", g.exact, g.addr)
			grp := groups[key]
			if grp == nil {
				grp = &group{exact: g.exact, addr: g.addr, sites: map[*site]bool{}}
				groups[key] = grp
			}
			grp.sites[x] = true
			grp.sites[y] = true
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		members := make([]*site, 0, len(g.sites))
		for s := range g.sites {
			members = append(members, s)
		}
		sort.Slice(members, func(i, j int) bool {
			if members[i].pc != members[j].pc {
				return members[i].pc < members[j].pc
			}
			return members[i].class < members[j].class
		})
		size := vm.Word(1)
		loc := fmt.Sprintf("word %d", g.addr)
		if !g.exact {
			end := a.dataEnd
			if g.addr >= end {
				end = g.addr + 1
			}
			size = end - g.addr
			loc = fmt.Sprintf("words [%d, %d)", g.addr, end)
		}
		msg := fmt.Sprintf("race candidate on %s: ", loc)
		for i, s := range members {
			if i > 0 {
				msg += "; "
			}
			msg += s.where(a)
			if i == 3 && len(members) > 4 {
				msg += fmt.Sprintf("; +%d more sites", len(members)-4)
				break
			}
		}
		f := Finding{
			Kind: RaceCandidate, Sev: SevWarning,
			Func: a.fname(members[0].fn), PC: members[0].pc,
			Addr: g.addr, Size: size, Msg: msg,
		}
		a.fs.add(f)
		for _, s := range members {
			a.racyFns[s.fn] = true
		}
	}
}
