package analyze

import (
	"fmt"

	"doubleplay/internal/vm"
)

// regUses appends to buf the registers instruction in reads. With
// liveness set, the implicit staging-window reads of Call and Sys are
// included (they keep argument-staging moves live); the initialization
// check excludes them because unstaged slots are defined ABI zeros.
func regUses(in vm.Instr, liveness bool, buf []uint8) []uint8 {
	switch in.Op {
	case vm.OpNop, vm.OpMovi, vm.OpJmp, vm.OpTid, vm.OpSigH:
	case vm.OpMov, vm.OpNeg, vm.OpNot:
		buf = append(buf, in.B)
	case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod, vm.OpAnd, vm.OpOr,
		vm.OpXor, vm.OpShl, vm.OpShr, vm.OpSlt, vm.OpSle, vm.OpSeq, vm.OpSne:
		buf = append(buf, in.B, in.C)
	case vm.OpAddi, vm.OpMuli, vm.OpDivi, vm.OpModi, vm.OpAndi, vm.OpOri,
		vm.OpXori, vm.OpShli, vm.OpShri, vm.OpSlti, vm.OpSlei, vm.OpSeqi, vm.OpSnei:
		buf = append(buf, in.B)
	case vm.OpJz, vm.OpJnz, vm.OpRet, vm.OpLock, vm.OpUnlock, vm.OpJoin, vm.OpHalt:
		buf = append(buf, in.A)
	case vm.OpLd:
		buf = append(buf, in.B)
	case vm.OpSt:
		buf = append(buf, in.A, in.B)
	case vm.OpLdx:
		buf = append(buf, in.B, in.C)
	case vm.OpStx:
		buf = append(buf, in.A, in.B, in.C)
	case vm.OpBarArrive:
		buf = append(buf, in.B, in.C)
	case vm.OpBarWait:
		buf = append(buf, in.A, in.B)
	case vm.OpCas:
		buf = append(buf, in.B, in.C, in.D)
	case vm.OpFadd:
		buf = append(buf, in.B, in.C)
	case vm.OpSpawn:
		buf = append(buf, in.B)
	case vm.OpCall, vm.OpSys:
		if liveness {
			for i := 0; i < vm.MaxArgs; i++ {
				buf = append(buf, uint8(vm.ArgStageBase+i))
			}
		}
	}
	return buf
}

// regDef returns the register instruction in writes, if any.
func regDef(in vm.Instr) (uint8, bool) {
	switch in.Op {
	case vm.OpMovi, vm.OpMov, vm.OpNeg, vm.OpNot, vm.OpTid,
		vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod, vm.OpAnd, vm.OpOr,
		vm.OpXor, vm.OpShl, vm.OpShr, vm.OpSlt, vm.OpSle, vm.OpSeq, vm.OpSne,
		vm.OpAddi, vm.OpMuli, vm.OpDivi, vm.OpModi, vm.OpAndi, vm.OpOri,
		vm.OpXori, vm.OpShli, vm.OpShri, vm.OpSlti, vm.OpSlei, vm.OpSeqi, vm.OpSnei,
		vm.OpLd, vm.OpLdx, vm.OpBarArrive, vm.OpCas, vm.OpFadd, vm.OpSpawn, vm.OpJoin:
		return in.A, true
	case vm.OpCall, vm.OpSys:
		return 0, true // result register
	}
	return 0, false
}

// pureDef reports whether in's only effect is writing its destination
// register — the candidates for dead-store warnings.
func pureDef(op vm.Opcode) bool {
	switch op {
	case vm.OpMovi, vm.OpMov, vm.OpNeg, vm.OpNot,
		vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod, vm.OpAnd, vm.OpOr,
		vm.OpXor, vm.OpShl, vm.OpShr, vm.OpSlt, vm.OpSle, vm.OpSeq, vm.OpSne,
		vm.OpAddi, vm.OpMuli, vm.OpDivi, vm.OpModi, vm.OpAndi, vm.OpOri,
		vm.OpXori, vm.OpShli, vm.OpShri, vm.OpSlti, vm.OpSlei, vm.OpSeqi, vm.OpSnei:
		return true
	}
	return false
}

// structural verifies per-function invariants that need no dataflow:
// branch targets inside the owning function, callee indices inside the
// function table, no reachable path off the end of a function, barrier
// arrive/wait pairing, immediate divisions by zero, and unreachable
// blocks.
func (a *analysis) structural() {
	for fi := range a.prog.Funcs {
		sp := a.spans[fi]
		name := a.fname(fi)
		g := a.cfgs[fi]
		if sp.start >= sp.end {
			a.report(fmt.Sprintf("empty|%d", fi), Finding{
				Kind: FallOffEnd, Sev: SevError, Func: name, PC: sp.start,
				Msg: fmt.Sprintf("function %q has no instructions; executing it runs into the next function", name),
			})
			continue
		}
		// Span-sharing aliases would duplicate every report.
		if dup := a.spanOwner(fi); dup != fi {
			continue
		}
		for pc := sp.start; pc < sp.end; pc++ {
			in := a.prog.Code[pc]
			switch in.Op {
			case vm.OpJmp, vm.OpJz, vm.OpJnz:
				if t := int(in.Imm); t < sp.start || t >= sp.end {
					a.fs.add(Finding{
						Kind: BadBranch, Sev: SevError, Func: name, PC: pc,
						Msg: fmt.Sprintf("branch target %d is outside %q [%d, %d)", t, name, sp.start, sp.end),
					})
				}
			case vm.OpCall, vm.OpSpawn, vm.OpSigH:
				if t := int(in.Imm); t < 0 || t >= len(a.prog.Funcs) {
					a.fs.add(Finding{
						Kind: BadCallee, Sev: SevError, Func: name, PC: pc,
						Msg: fmt.Sprintf("%s of function index %d; the table has %d entries", in.Op, t, len(a.prog.Funcs)),
					})
				}
			case vm.OpDivi, vm.OpModi:
				if in.Imm == 0 && a.blockReachable(g, pc) {
					a.fs.add(Finding{
						Kind: DivByZeroImm, Sev: SevError, Func: name, PC: pc,
						Msg: fmt.Sprintf("%s by immediate zero always faults", in.Op),
					})
				}
			case vm.OpBarArrive:
				ok := pc+1 < sp.end && a.prog.Code[pc+1].Op == vm.OpBarWait &&
					a.prog.Code[pc+1].A == in.A && a.prog.Code[pc+1].B == in.B
				if !ok {
					a.fs.add(Finding{
						Kind: BarrierPairing, Sev: SevWarning, Func: name, PC: pc,
						Msg: "bar.arrive is not immediately followed by a matching bar.wait; a checkpoint here strands the generation register",
					})
				}
			case vm.OpBarWait:
				ok := pc-1 >= sp.start && a.prog.Code[pc-1].Op == vm.OpBarArrive &&
					a.prog.Code[pc-1].A == in.A && a.prog.Code[pc-1].B == in.B
				if !ok {
					a.fs.add(Finding{
						Kind: BarrierPairing, Sev: SevWarning, Func: name, PC: pc,
						Msg: "bar.wait is not immediately preceded by a matching bar.arrive",
					})
				}
			}
		}
		for bi := range g.blocks {
			b := &g.blocks[bi]
			if !b.reach {
				a.fs.add(Finding{
					Kind: DeadBlock, Sev: SevWarning, Func: name, PC: b.start,
					Msg: fmt.Sprintf("unreachable code at [%d, %d)", b.start, b.end),
				})
				continue
			}
			last := a.prog.Code[b.end-1]
			fallsOut := b.end == sp.end && !isTerminator(last.Op)
			if fallsOut {
				a.fs.add(Finding{
					Kind: FallOffEnd, Sev: SevError, Func: name, PC: b.end - 1,
					Msg: fmt.Sprintf("execution can fall off the end of %q without ret or halt", name),
				})
			}
		}
	}
}

// spanOwner returns the lowest function index sharing fi's span.
func (a *analysis) spanOwner(fi int) int {
	for j := 0; j < fi; j++ {
		if a.spans[j].start == a.spans[fi].start {
			return j
		}
	}
	return fi
}

func (a *analysis) blockReachable(g *cfg, pc int) bool {
	for bi := range g.blocks {
		b := &g.blocks[bi]
		if pc >= b.start && pc < b.end {
			return b.reach
		}
	}
	return false
}

// checkInit warns about registers read before any write in their
// function. Architecturally such reads see zero (fresh register files
// are zeroed), so this is a warning, not an error — but a read of r3 in
// a 2-argument function is a contract violation the caller can't see.
// Entry-initialized registers: r0 (the call-result slot) and the
// declared arguments r1..rN.
func (a *analysis) checkInit() {
	for fi, f := range a.prog.Funcs {
		if a.spanOwner(fi) != fi {
			continue
		}
		g := a.cfgs[fi]
		if len(g.blocks) == 0 {
			continue
		}
		entry := uint64(1) // r0
		for i := 1; i <= f.NArgs && i < vm.NumRegs; i++ {
			entry |= 1 << uint(i)
		}
		in := make([]uint64, len(g.blocks))
		have := make([]bool, len(g.blocks))
		in[0], have[0] = entry, true
		work := []int{0}
		for len(work) > 0 {
			bi := work[0]
			work = work[1:]
			mask := in[bi]
			for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
				if d, ok := regDef(a.prog.Code[pc]); ok {
					mask |= 1 << uint(d)
				}
			}
			for _, s := range g.blocks[bi].succs {
				next := mask
				if have[s] {
					next &= in[s] // must-initialized: intersect over predecessors
				}
				if !have[s] || next != in[s] {
					in[s], have[s] = next, true
					work = append(work, s)
				}
			}
		}
		var buf []uint8
		for bi := range g.blocks {
			if !have[bi] {
				continue
			}
			mask := in[bi]
			for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
				instr := a.prog.Code[pc]
				buf = regUses(instr, false, buf[:0])
				for _, u := range buf {
					if mask&(1<<uint(u)) == 0 {
						a.report(fmt.Sprintf("init|%d|%d|%d", fi, pc, u), Finding{
							Kind: UninitRegister, Sev: SevWarning, Func: f.Name, PC: pc,
							Msg: fmt.Sprintf("r%d is read before any write in %q (always zero; declared args are r1..r%d)", u, f.Name, f.NArgs),
						})
					}
				}
				if d, ok := regDef(instr); ok {
					mask |= 1 << uint(d)
				}
			}
		}
	}
}

// checkLiveness runs a backward liveness pass per function and warns
// about side-effect-free register writes whose value is never read.
func (a *analysis) checkLiveness() {
	for fi, f := range a.prog.Funcs {
		if a.spanOwner(fi) != fi {
			continue
		}
		g := a.cfgs[fi]
		if len(g.blocks) == 0 {
			continue
		}
		preds := make([][]int, len(g.blocks))
		for bi := range g.blocks {
			for _, s := range g.blocks[bi].succs {
				preds[s] = append(preds[s], bi)
			}
		}
		liveIn := make([]uint64, len(g.blocks))
		liveOut := make([]uint64, len(g.blocks))
		var buf []uint8
		transfer := func(bi int) uint64 {
			live := liveOut[bi]
			for pc := g.blocks[bi].end - 1; pc >= g.blocks[bi].start; pc-- {
				instr := a.prog.Code[pc]
				if d, ok := regDef(instr); ok {
					live &^= 1 << uint(d)
				}
				buf = regUses(instr, true, buf[:0])
				for _, u := range buf {
					live |= 1 << uint(u)
				}
			}
			return live
		}
		work := make([]int, 0, len(g.blocks))
		inWork := make([]bool, len(g.blocks))
		for bi := len(g.blocks) - 1; bi >= 0; bi-- {
			work = append(work, bi)
			inWork[bi] = true
		}
		for len(work) > 0 {
			bi := work[len(work)-1]
			work = work[:len(work)-1]
			inWork[bi] = false
			out := uint64(0)
			for _, s := range g.blocks[bi].succs {
				out |= liveIn[s]
			}
			liveOut[bi] = out
			if newIn := transfer(bi); newIn != liveIn[bi] {
				liveIn[bi] = newIn
				for _, p := range preds[bi] {
					if !inWork[p] {
						inWork[p] = true
						work = append(work, p)
					}
				}
			}
		}
		for bi := range g.blocks {
			if !g.blocks[bi].reach {
				continue
			}
			live := liveOut[bi]
			// Walk backward so each point sees liveness *after* it.
			type deadAt struct {
				pc int
				d  uint8
			}
			var dead []deadAt
			for pc := g.blocks[bi].end - 1; pc >= g.blocks[bi].start; pc-- {
				instr := a.prog.Code[pc]
				if d, ok := regDef(instr); ok {
					if pureDef(instr.Op) && live&(1<<uint(d)) == 0 {
						dead = append(dead, deadAt{pc, d})
					}
					live &^= 1 << uint(d)
				}
				buf = regUses(instr, true, buf[:0])
				for _, u := range buf {
					live |= 1 << uint(u)
				}
			}
			for _, da := range dead {
				a.report(fmt.Sprintf("dead|%d|%d", fi, da.pc), Finding{
					Kind: DeadStore, Sev: SevWarning, Func: f.Name, PC: da.pc,
					Msg: fmt.Sprintf("value written to r%d is never read", da.d),
				})
			}
		}
	}
}
