package analyze

import "doubleplay/internal/vm"

// span is one function's code range [start, end): from its entry to the
// next distinct function entry, or the end of the code segment.
type span struct {
	fn    int // index into Program.Funcs
	start int
	end   int
}

// funcSpans computes every function's body range. Functions sharing an
// entry (possible in hand-built programs) get identical spans.
func funcSpans(p *vm.Program) []span {
	spans := make([]span, len(p.Funcs))
	for i, f := range p.Funcs {
		end := len(p.Code)
		for _, g := range p.Funcs {
			if g.Entry > f.Entry && g.Entry < end {
				end = g.Entry
			}
		}
		spans[i] = span{fn: i, start: f.Entry, end: end}
	}
	return spans
}

// block is one basic block: a maximal straight-line instruction run.
type block struct {
	start, end int // code range [start, end)
	succs      []int
	reach      bool // reachable from the function entry
}

// cfg is one function's control-flow graph. Block 0 is the entry block.
type cfg struct {
	span   span
	blocks []block
	blkAt  map[int]int // leader pc -> block index
}

// isBranch reports whether op transfers control within the function.
func isBranch(op vm.Opcode) bool {
	return op == vm.OpJmp || op == vm.OpJz || op == vm.OpJnz
}

// isTerminator reports whether op never falls through to pc+1.
func isTerminator(op vm.Opcode) bool {
	return op == vm.OpJmp || op == vm.OpRet || op == vm.OpHalt
}

// buildCFG splits a function span into basic blocks and wires successor
// edges. Branch targets outside the span contribute no edge; the
// structural checks report them separately.
func buildCFG(p *vm.Program, sp span) *cfg {
	g := &cfg{span: sp, blkAt: make(map[int]int)}
	if sp.start >= sp.end {
		return g
	}
	leader := make(map[int]bool, 8)
	leader[sp.start] = true
	for pc := sp.start; pc < sp.end; pc++ {
		in := p.Code[pc]
		if isBranch(in.Op) {
			if t := int(in.Imm); t >= sp.start && t < sp.end {
				leader[t] = true
			}
		}
		if (isBranch(in.Op) || isTerminator(in.Op)) && pc+1 < sp.end {
			leader[pc+1] = true
		}
	}
	for pc := sp.start; pc < sp.end; pc++ {
		if !leader[pc] {
			continue
		}
		end := pc + 1
		for end < sp.end && !leader[end] {
			end++
		}
		g.blkAt[pc] = len(g.blocks)
		g.blocks = append(g.blocks, block{start: pc, end: end})
	}
	for i := range g.blocks {
		b := &g.blocks[i]
		last := p.Code[b.end-1]
		addSucc := func(pc int) {
			if j, ok := g.blkAt[pc]; ok {
				b.succs = append(b.succs, j)
			}
		}
		switch last.Op {
		case vm.OpJmp:
			addSucc(int(last.Imm))
		case vm.OpJz, vm.OpJnz:
			addSucc(int(last.Imm))
			if b.end < sp.end {
				addSucc(b.end)
			}
		case vm.OpRet, vm.OpHalt:
			// no successors
		default:
			if b.end < sp.end {
				addSucc(b.end)
			}
		}
	}
	g.markReachable()
	return g
}

func (g *cfg) markReachable() {
	if len(g.blocks) == 0 {
		return
	}
	stack := []int{0}
	g.blocks[0].reach = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.blocks[i].succs {
			if !g.blocks[s].reach {
				g.blocks[s].reach = true
				stack = append(stack, s)
			}
		}
	}
}

// onCycle reports whether block i can reach itself — used to decide
// whether a spawn site may execute more than once.
func (g *cfg) onCycle(i int) bool {
	seen := make([]bool, len(g.blocks))
	stack := append([]int(nil), g.blocks[i].succs...)
	for len(stack) > 0 {
		j := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if j == i {
			return true
		}
		if seen[j] {
			continue
		}
		seen[j] = true
		stack = append(stack, g.blocks[j].succs...)
	}
	return false
}
