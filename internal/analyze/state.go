package analyze

import (
	"fmt"
	"sort"
	"strings"

	"doubleplay/internal/vm"
)

// vkind classifies an abstract register value.
type vkind uint8

const (
	vConst vkind = iota // a single known word
	vTid                // the current thread id (from OpTid)
	vUnknown
)

// aval is an abstract register value. Registers are architecturally
// zeroed, so the bottom of the lattice is Const(0), not "uninitialized";
// the separate init check reports reads of never-written registers.
type aval struct {
	k vkind
	c vm.Word
}

func konst(c vm.Word) aval { return aval{k: vConst, c: c} }

var unknown = aval{k: vUnknown}

func meetVal(a, b aval) aval {
	if a == b {
		return a
	}
	return unknown
}

// foldBin evaluates a register-register ALU or comparison op when both
// inputs are known constants, mirroring Machine.Step exactly. Anything
// else (including faulting divisions) degrades to unknown.
func foldBin(op vm.Opcode, b, c aval) aval {
	if b.k != vConst || c.k != vConst {
		return unknown
	}
	x, y := b.c, c.c
	switch op {
	case vm.OpAdd:
		return konst(x + y)
	case vm.OpSub:
		return konst(x - y)
	case vm.OpMul:
		return konst(x * y)
	case vm.OpDiv:
		if y == 0 {
			return unknown
		}
		return konst(x / y)
	case vm.OpMod:
		if y == 0 {
			return unknown
		}
		return konst(x % y)
	case vm.OpAnd:
		return konst(x & y)
	case vm.OpOr:
		return konst(x | y)
	case vm.OpXor:
		return konst(x ^ y)
	case vm.OpShl:
		return konst(x << (uint64(y) & 63))
	case vm.OpShr:
		return konst(x >> (uint64(y) & 63))
	case vm.OpSlt:
		return konst(b2w(x < y))
	case vm.OpSle:
		return konst(b2w(x <= y))
	case vm.OpSeq:
		return konst(b2w(x == y))
	case vm.OpSne:
		return konst(b2w(x != y))
	}
	return unknown
}

// foldImm evaluates a register-immediate op on a known constant.
func foldImm(op vm.Opcode, b aval, imm vm.Word) aval {
	if b.k != vConst {
		return unknown
	}
	x := b.c
	switch op {
	case vm.OpAddi:
		return konst(x + imm)
	case vm.OpMuli:
		return konst(x * imm)
	case vm.OpDivi:
		if imm == 0 {
			return unknown
		}
		return konst(x / imm)
	case vm.OpModi:
		if imm == 0 {
			return unknown
		}
		return konst(x % imm)
	case vm.OpAndi:
		return konst(x & imm)
	case vm.OpOri:
		return konst(x | imm)
	case vm.OpXori:
		return konst(x ^ imm)
	case vm.OpShli:
		return konst(x << (uint64(imm) & 63))
	case vm.OpShri:
		return konst(x >> (uint64(imm) & 63))
	case vm.OpSlti:
		return konst(b2w(x < imm))
	case vm.OpSlei:
		return konst(b2w(x <= imm))
	case vm.OpSeqi:
		return konst(b2w(x == imm))
	case vm.OpSnei:
		return konst(b2w(x != imm))
	}
	return unknown
}

func b2w(b bool) vm.Word {
	if b {
		return 1
	}
	return 0
}

// lockCap bounds the unknown-lock counters so loop fixpoints converge.
const lockCap = 64

// lockset abstracts the locks a thread holds: a must-held and a may-held
// set of statically known lock ids, plus counters for locks acquired
// under non-constant ids. Only must-held known ids count as protection
// in the race screen; the may side exists to keep unlock-balance
// diagnostics honest on paths that merge.
type lockset struct {
	must   []vm.Word // sorted known ids held on every path
	may    []vm.Word // sorted known ids held on some path (superset of must)
	unk    int       // unknown-id locks held on every path
	mayUnk int       // unknown-id locks held on some path
}

func insertWord(s []vm.Word, v vm.Word) []vm.Word {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	out := make([]vm.Word, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, v)
	return append(out, s[i:]...)
}

func removeWord(s []vm.Word, v vm.Word) []vm.Word {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i >= len(s) || s[i] != v {
		return s
	}
	out := make([]vm.Word, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

func containsWord(s []vm.Word, v vm.Word) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func intersectWords(a, b []vm.Word) []vm.Word {
	var out []vm.Word
	for _, v := range a {
		if containsWord(b, v) {
			out = append(out, v)
		}
	}
	return out
}

func unionWords(a, b []vm.Word) []vm.Word {
	out := append([]vm.Word(nil), a...)
	for _, v := range b {
		out = insertWord(out, v)
	}
	return out
}

func wordsEqual(a, b []vm.Word) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func meetLocks(a, b lockset) lockset {
	return lockset{
		must:   intersectWords(a.must, b.must),
		may:    unionWords(a.may, b.may),
		unk:    min(a.unk, b.unk),
		mayUnk: max(a.mayUnk, b.mayUnk),
	}
}

func (l lockset) equal(o lockset) bool {
	return l.unk == o.unk && l.mayUnk == o.mayUnk &&
		wordsEqual(l.must, o.must) && wordsEqual(l.may, o.may)
}

// sameHeld compares only what is definitely held — the part that matters
// for entry/exit balance.
func (l lockset) sameHeld(o lockset) bool {
	return l.unk == o.unk && wordsEqual(l.must, o.must)
}

func (l lockset) empty() bool {
	return len(l.must) == 0 && len(l.may) == 0 && l.unk == 0 && l.mayUnk == 0
}

func (l lockset) String() string {
	if len(l.must) == 0 && l.unk == 0 {
		return "none"
	}
	parts := make([]string, 0, len(l.must)+1)
	for _, id := range l.must {
		parts = append(parts, fmt.Sprint(id))
	}
	if l.unk > 0 {
		parts = append(parts, fmt.Sprintf("+%d dynamic", l.unk))
	}
	return strings.Join(parts, ",")
}

// kidsCap saturates the live-children counter so spawn loops converge.
const kidsCap = 64

// absState is the abstract machine state at one program point within one
// analysis context: register values, held locks, and (for the initial
// thread) an upper bound on concurrently live children.
type absState struct {
	valid bool
	regs  [vm.NumRegs]aval
	lk    lockset
	kids  int
}

// meetInto merges src into dst at a control-flow join, reporting whether
// dst changed. Lockset slices are never mutated in place, so the shallow
// struct copy is safe.
func meetInto(dst, src *absState) bool {
	if !src.valid {
		return false
	}
	if !dst.valid {
		*dst = *src
		return true
	}
	changed := false
	for i := range dst.regs {
		if m := meetVal(dst.regs[i], src.regs[i]); m != dst.regs[i] {
			dst.regs[i] = m
			changed = true
		}
	}
	if m := meetLocks(dst.lk, src.lk); !m.equal(dst.lk) {
		dst.lk = m
		changed = true
	}
	if src.kids > dst.kids {
		dst.kids = src.kids
		changed = true
	}
	return changed
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
