package analyze

import (
	"fmt"

	"doubleplay/internal/vm"
)

// exec advances the abstract state st over the instruction at pc. With
// rec set (the post-fixpoint recording pass) it additionally emits
// findings, memory-access sites, and callee contexts; the fixpoint pass
// runs with rec unset so nothing is reported from intermediate states.
func (a *analysis) exec(c *context, st *absState, pc int, rec bool) {
	a.steps++
	if a.budget > 0 && a.steps > a.budget {
		a.budgetHit = true
	}
	in := a.prog.Code[pc]
	r := &st.regs
	switch in.Op {
	case vm.OpNop, vm.OpJmp, vm.OpJz, vm.OpJnz:
		// Branching is handled by CFG edges; no state change.
	case vm.OpMovi:
		r[in.A] = konst(in.Imm)
	case vm.OpMov:
		r[in.A] = r[in.B]
	case vm.OpAdd, vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod, vm.OpAnd, vm.OpOr,
		vm.OpXor, vm.OpShl, vm.OpShr, vm.OpSlt, vm.OpSle, vm.OpSeq, vm.OpSne:
		r[in.A] = foldBin(in.Op, r[in.B], r[in.C])
	case vm.OpAddi, vm.OpMuli, vm.OpDivi, vm.OpModi, vm.OpAndi, vm.OpOri,
		vm.OpXori, vm.OpShli, vm.OpShri, vm.OpSlti, vm.OpSlei, vm.OpSeqi, vm.OpSnei:
		r[in.A] = foldImm(in.Op, r[in.B], in.Imm)
	case vm.OpNeg:
		if v := r[in.B]; v.k == vConst {
			r[in.A] = konst(-v.c)
		} else {
			r[in.A] = unknown
		}
	case vm.OpNot:
		if v := r[in.B]; v.k == vConst {
			r[in.A] = konst(^v.c)
		} else {
			r[in.A] = unknown
		}
	case vm.OpTid:
		r[in.A] = aval{k: vTid}

	case vm.OpLd:
		if rec {
			a.recordSite(c, st, pc, r[in.B], konst(in.Imm), false, unknown)
		}
		r[in.A] = unknown
	case vm.OpSt:
		if rec {
			a.recordSite(c, st, pc, r[in.B], konst(in.Imm), true, r[in.A])
		}
	case vm.OpLdx:
		if rec {
			a.recordSite(c, st, pc, r[in.B], r[in.C], false, unknown)
		}
		r[in.A] = unknown
	case vm.OpStx:
		if rec {
			a.recordSite(c, st, pc, r[in.B], r[in.C], true, r[in.A])
		}

	case vm.OpLock:
		st.lk = a.execLock(c, st.lk, r[in.A], pc, rec)
	case vm.OpUnlock:
		st.lk = a.execUnlock(c, st.lk, r[in.A], pc, rec)
	case vm.OpBarArrive:
		r[in.A] = unknown
	case vm.OpBarWait:
		// blocking only
	case vm.OpCas:
		// Atomics synchronize; they are deliberately not access sites.
		r[in.A] = unknown
	case vm.OpFadd:
		r[in.A] = unknown

	case vm.OpCall:
		fn := int(in.Imm)
		if fn >= 0 && fn < len(a.prog.Funcs) && rec {
			if c.class == "main" && a.maySpawn[fn] {
				// The initial thread tracks its live children (st.kids) to
				// prove pre-spawn/post-join accesses non-concurrent, but a
				// spawn buried inside a callee is invisible to the caller's
				// count — accesses after this call could wrongly look
				// single-threaded. No suite workload spawns from a helper;
				// if a guest does, the proof is void.
				a.unsound(c.fn, pc, fmt.Sprintf("call to %q, which may spawn threads the caller's concurrency tracking cannot see", a.fname(fn)))
			}
			callee := &context{fn: fn, lk: st.lk, class: c.class, conc: a.concAt(c, st)}
			for i := 0; i < vm.MaxArgs; i++ {
				callee.args[i] = st.regs[vm.ArgStageBase+i]
			}
			a.bumpInst(callee.key(), a.instOf(c))
			a.enqueue(callee)
		}
		r[0] = unknown
	case vm.OpSys:
		if rec && a.concAt(c, st) {
			// A syscall's memory write-backs (reads into buffers, alloc
			// bookkeeping) are not access sites the lockset screen models;
			// while other threads are live they can overlap guest accesses
			// unordered by any lock.
			a.unsound(c.fn, pc, "syscall issued while other threads are live; its memory effects are outside the lockset model")
		}
		r[0] = unknown
	case vm.OpRet:
		if rec && !st.lk.sameHeld(c.lk) {
			a.report(fmt.Sprintf("retlk|%d|%d", c.fn, pc), Finding{
				Kind: LockAtExit, Sev: SevWarning, Func: a.fname(c.fn), PC: pc,
				Msg: fmt.Sprintf("%q returns holding locks {%s} but was entered holding {%s}",
					a.fname(c.fn), st.lk, c.lk),
			})
		}
	case vm.OpHalt:
		if rec && (len(st.lk.must) > 0 || st.lk.unk > 0) {
			a.report(fmt.Sprintf("haltlk|%d|%d", c.fn, pc), Finding{
				Kind: LockAtExit, Sev: SevWarning, Func: a.fname(c.fn), PC: pc,
				Msg: fmt.Sprintf("thread exits holding locks {%s}; waiters block forever", st.lk),
			})
		}

	case vm.OpSpawn:
		fn := int(in.Imm)
		if fn >= 0 && fn < len(a.prog.Funcs) && rec {
			child := &context{fn: fn, class: "go:" + a.fname(fn), conc: true}
			child.args[0] = st.regs[in.B]
			for i := 1; i < vm.MaxArgs; i++ {
				child.args[i] = konst(0)
			}
			n := 1
			if a.spawnCycle[pc] {
				n = 2 // a looped spawn site can start this context repeatedly
			}
			a.bumpInst(child.key(), n)
			a.enqueue(child)
		}
		r[in.A] = unknown
		if c.class == "main" {
			st.kids = min(st.kids+1, kidsCap)
		}
	case vm.OpJoin:
		r[in.A] = unknown
		if c.class == "main" {
			st.kids = max(st.kids-1, 0)
		}
	case vm.OpSigH:
		fn := int(in.Imm)
		if fn >= 0 && fn < len(a.prog.Funcs) && rec {
			h := &context{fn: fn, class: "sig:" + a.fname(fn), conc: a.anySpawn}
			h.args[0] = unknown // the signal number
			for i := 1; i < vm.MaxArgs; i++ {
				h.args[i] = konst(0)
			}
			a.bumpInst(h.key(), 2) // every live thread can run a handler instance
			a.enqueue(h)
		}
	}
}

func (a *analysis) execRecord(c *context, st *absState, pc int) {
	a.exec(c, st, pc, true)
}

// concAt reports whether execution at this point may overlap another
// thread: spawned threads and (installed-while-threaded) signal handlers
// always may; the initial thread only while it has un-joined children.
func (a *analysis) concAt(c *context, st *absState) bool {
	if c.class == "main" {
		return st.kids > 0
	}
	return c.conc
}

// execLock models OpLock. Acquiring a known id the thread must already
// hold is a certain runtime fault (the machine faults recursive locks).
func (a *analysis) execLock(c *context, lk lockset, id aval, pc int, rec bool) lockset {
	if id.k != vConst {
		lk.unk = min(lk.unk+1, lockCap)
		lk.mayUnk = min(lk.mayUnk+1, lockCap)
		return lk
	}
	if containsWord(lk.must, id.c) {
		if rec {
			a.report(fmt.Sprintf("reclk|%d|%d", c.fn, pc), Finding{
				Kind: RecursiveLock, Sev: SevError, Func: a.fname(c.fn), PC: pc,
				Msg: fmt.Sprintf("lock %d is already held here; re-acquiring faults the thread", id.c),
			})
		}
		return lk
	}
	lk.must = insertWord(lk.must, id.c)
	lk.may = insertWord(lk.may, id.c)
	return lk
}

// execUnlock models OpUnlock. Releasing a known id that is not even
// possibly held is a certain runtime fault; releasing one only held on
// some paths is a balance warning.
func (a *analysis) execUnlock(c *context, lk lockset, id aval, pc int, rec bool) lockset {
	if id.k != vConst {
		switch {
		case lk.unk > 0:
			lk.unk--
			lk.mayUnk = max(lk.mayUnk-1, 0)
		case len(lk.must) == 1 && len(lk.may) == 1 && lk.mayUnk == 0:
			// The single held lock must be the one being released.
			lk.may = removeWord(lk.may, lk.must[0])
			lk.must = nil
		case lk.empty():
			if rec {
				a.report(fmt.Sprintf("unlk|%d|%d", c.fn, pc), Finding{
					Kind: UnbalancedLock, Sev: SevError, Func: a.fname(c.fn), PC: pc,
					Msg: "unlock with no lock held on any path; faults the thread",
				})
			}
		default:
			// Several candidates; cannot tell which is released.
			if lk.mayUnk > 0 {
				lk.mayUnk--
			}
		}
		return lk
	}
	switch {
	case containsWord(lk.must, id.c):
		lk.must = removeWord(lk.must, id.c)
		lk.may = removeWord(lk.may, id.c)
	case containsWord(lk.may, id.c):
		if rec {
			a.report(fmt.Sprintf("maylk|%d|%d", c.fn, pc), Finding{
				Kind: UnbalancedLock, Sev: SevWarning, Func: a.fname(c.fn), PC: pc,
				Msg: fmt.Sprintf("lock %d is released here but only acquired on some paths; faults the others", id.c),
			})
		}
		lk.may = removeWord(lk.may, id.c)
	case lk.unk > 0 || lk.mayUnk > 0:
		// May match a lock acquired under a dynamically-computed id;
		// nothing provable either way.
	default:
		if rec {
			a.report(fmt.Sprintf("unlk|%d|%d", c.fn, pc), Finding{
				Kind: UnbalancedLock, Sev: SevError, Func: a.fname(c.fn), PC: pc,
				Msg: fmt.Sprintf("lock %d is released here but never acquired on any path; faults the thread", id.c),
			})
		}
	}
	return lk
}
