package analyze

import (
	"fmt"
	"sort"
)

// CertStatus classifies a program (or one function) for the recorder's
// skip-verification policy.
type CertStatus string

const (
	// CertRaceFree: the analysis completed with no unsoundness source and
	// found no race candidate. Every shared access is protected, per-thread,
	// atomic, or provably non-concurrent, so any sync-order-respecting
	// execution of the program reaches the same state — the property that
	// lets core.Record commit epochs without the verification pass.
	CertRaceFree CertStatus = "race-free"
	// CertPossiblyRacy: the screen reported at least one race candidate.
	// The program may diverge; recording must verify every epoch.
	CertPossiblyRacy CertStatus = "possibly-racy"
	// CertIncomplete: the analysis could not cover the program — indirect
	// addressing it cannot bound, syscalls issued while threads overlap,
	// barrier-partitioned sharing, context or instruction budget
	// exhaustion, or error findings. Absence of candidates proves nothing
	// here, so recording must verify every epoch.
	CertIncomplete CertStatus = "incomplete"
)

// FuncCert is one function's classification within a certificate.
type FuncCert struct {
	Func   string     `json:"func"`
	Status CertStatus `json:"status"`
	Reason string     `json:"reason,omitempty"`
}

// Certificate is the soundness verdict [Run] derives from an analysis: a
// program-level classification plus per-function detail. Only a race-free
// status is load-bearing — it asserts that the epoch-parallel verification
// pass cannot disagree with the thread-parallel run, so the recorder may
// skip it (core.VerifyCertified). The other two statuses merely say why
// that proof is unavailable.
type Certificate struct {
	Program    string     `json:"program"`
	Status     CertStatus `json:"status"`
	Reasons    []string   `json:"reasons,omitempty"`
	Candidates int        `json:"candidates"`
	Funcs      []FuncCert `json:"funcs,omitempty"`

	// Steps counts the abstract instructions the interprocedural scan
	// interpreted; Budget is the cap it ran under (see RunBudget).
	Steps  int `json:"steps"`
	Budget int `json:"budget"`
}

// RaceFree reports whether this certificate licenses skipping epoch
// verification.
func (c *Certificate) RaceFree() bool {
	return c != nil && c.Status == CertRaceFree
}

// String renders a one-line account.
func (c *Certificate) String() string {
	if c == nil {
		return "certificate(nil)"
	}
	extra := ""
	if len(c.Reasons) > 0 {
		extra = ": " + c.Reasons[0]
		if len(c.Reasons) > 1 {
			extra += fmt.Sprintf(" (+%d more)", len(c.Reasons)-1)
		}
	}
	return fmt.Sprintf("%s: %s (%d candidates, %d/%d steps)%s",
		c.Program, c.Status, c.Candidates, c.Steps, c.Budget, extra)
}

// unsound records one source of analysis incompleteness: an access or
// effect the screen cannot cover. Each site is reported once as an
// Incomplete finding, and the owning function (and the whole program)
// degrade to CertIncomplete.
func (a *analysis) unsound(fn, pc int, why string) {
	a.incompleteFns[fn] = true
	a.report(fmt.Sprintf("inc|%d|%d", fn, pc), Finding{
		Kind: Incomplete, Sev: SevInfo, Func: a.fname(fn), PC: pc,
		Msg: why,
	})
}

// certificate derives the program's verdict after every pass has run.
func (a *analysis) certificate() *Certificate {
	c := &Certificate{
		Program:    a.prog.Name,
		Candidates: len(a.fs.Races()),
		Steps:      a.steps,
		Budget:     a.budget,
	}

	reasons := map[string]bool{}
	addReason := func(s string) { reasons[s] = true }

	if a.fs.Errors() > 0 {
		addReason(fmt.Sprintf("%d error finding(s); execution may fault before any proof applies", a.fs.Errors()))
	}
	if a.budgetHit {
		addReason(fmt.Sprintf("instruction budget exhausted after %d abstract steps; coverage is partial", a.steps))
	}
	for _, f := range a.fs.ByKind(Incomplete) {
		addReason(f.Msg)
	}

	incomplete := len(reasons) > 0
	for fn := range a.prog.Funcs {
		fc := FuncCert{Func: a.fname(fn)}
		switch {
		case a.racyFns[fn]:
			fc.Status = CertPossiblyRacy
			fc.Reason = "race candidate involves an access in this function"
		case a.budgetHit:
			fc.Status = CertIncomplete
			fc.Reason = "instruction budget exhausted before coverage completed"
		case a.incompleteFns[fn]:
			fc.Status = CertIncomplete
			fc.Reason = "contains accesses or effects the screen cannot bound"
		case a.capped[fn]:
			fc.Status = CertIncomplete
			fc.Reason = "context budget exhausted; some call sites analyzed imprecisely"
		case a.valveTripped[fn]:
			fc.Status = CertIncomplete
			fc.Reason = "dataflow fixpoint did not converge within bounds"
		case !a.analyzed[fn] && fn != a.prog.Entry:
			fc.Status = CertRaceFree
			fc.Reason = "never called, spawned, or installed; no execution reaches it"
		default:
			fc.Status = CertRaceFree
		}
		if fc.Status == CertIncomplete {
			incomplete = true
		}
		c.Funcs = append(c.Funcs, fc)
	}
	// Context-budget exhaustion already surfaces as Incomplete findings
	// (folded in above); the fixpoint valve has no finding of its own.
	for fn, tripped := range a.valveTripped {
		if tripped {
			addReason(fmt.Sprintf("dataflow fixpoint for %q did not converge within bounds", a.fname(fn)))
		}
	}

	switch {
	case c.Candidates > 0:
		c.Status = CertPossiblyRacy
		addReason(fmt.Sprintf("%d race candidate(s) reported by the lockset screen", c.Candidates))
	case incomplete || len(reasons) > 0:
		c.Status = CertIncomplete
	default:
		c.Status = CertRaceFree
	}

	c.Reasons = make([]string, 0, len(reasons))
	for r := range reasons {
		c.Reasons = append(c.Reasons, r)
	}
	sort.Strings(c.Reasons)
	return c
}
