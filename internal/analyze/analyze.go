// Package analyze statically checks guest programs before a single
// instruction runs. It builds per-function control-flow graphs over
// vm.Program code, runs dataflow analyses (register initialization,
// liveness, constant and lockset propagation), verifies structural
// invariants (branch targets, callee indices, lock balance, barrier
// pairing, falling off a function end), and screens for data-race
// candidates with an interprocedural static lockset discipline over every
// Spawn-reachable function.
//
// DoublePlay itself only discovers races dynamically, when the
// epoch-parallel and thread-parallel executions disagree at an epoch
// boundary. The lockset screen is the complementary static side: it
// over-approximates that divergence signal (every address the dynamic
// detector can implicate is covered by some candidate) so recording
// policy and test triage know up front which workloads can diverge.
package analyze

import (
	"fmt"
	"sort"

	"doubleplay/internal/vm"
)

// Severity ranks findings.
type Severity uint8

const (
	// SevInfo findings are observations (unreachable helper functions).
	SevInfo Severity = iota
	// SevWarning findings are likely bugs that cannot fault the machine
	// by themselves (race candidates, dead stores, lock imbalance on
	// some path).
	SevWarning
	// SevError findings fault or corrupt any execution that reaches them
	// (bad branch targets, unlocking a never-held lock, running off the
	// end of a function).
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// Kind identifies a class of finding.
type Kind string

const (
	InvalidProgram  Kind = "invalid-program"
	BadBranch       Kind = "bad-branch"
	BadCallee       Kind = "bad-callee"
	FallOffEnd      Kind = "fall-off-end"
	DivByZeroImm    Kind = "div-by-zero"
	RecursiveLock   Kind = "recursive-lock"
	UnbalancedLock  Kind = "unbalanced-lock"
	LockAtExit      Kind = "lock-at-exit"
	BarrierPairing  Kind = "barrier-pairing"
	UninitRegister  Kind = "uninit-register"
	DeadStore       Kind = "dead-store"
	DeadBlock       Kind = "dead-block"
	UnreachableFunc Kind = "unreachable-func"
	RaceCandidate   Kind = "race-candidate"
	// Incomplete marks a spot the analysis could not cover soundly: an
	// address it cannot bound, an effect it does not model while threads
	// overlap, or an exhausted analysis budget. Incomplete findings never
	// indicate a bug by themselves — they indicate the absence of race
	// candidates proves nothing, so the program's Certificate degrades
	// from race-free to incomplete.
	Incomplete Kind = "incomplete"
)

// Finding is one analyzer result.
type Finding struct {
	Kind Kind
	Sev  Severity
	Func string  // owning function name, if any
	PC   int     // code index the finding anchors to; -1 if none
	Addr vm.Word // race candidates: first address of the flagged location
	Size vm.Word // race candidates: extent of the location in words
	Msg  string
}

func (f Finding) String() string {
	loc := ""
	if f.Func != "" {
		loc = f.Func
		if f.PC >= 0 {
			loc += fmt.Sprintf("@%d", f.PC)
		}
		loc = " " + loc
	} else if f.PC >= 0 {
		loc = fmt.Sprintf(" @%d", f.PC)
	}
	return fmt.Sprintf("%s [%s]%s: %s", f.Sev, f.Kind, loc, f.Msg)
}

// Findings is the result of analyzing one program.
type Findings struct {
	Prog *vm.Program
	List []Finding
	// Cert is the race-freedom certificate derived from this analysis;
	// see Certificate for what each status licenses.
	Cert *Certificate
}

func (fs *Findings) add(f Finding) { fs.List = append(fs.List, f) }

// ByKind returns the findings of one kind, in report order.
func (fs *Findings) ByKind(k Kind) []Finding {
	var out []Finding
	for _, f := range fs.List {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// Races returns the race-candidate findings.
func (fs *Findings) Races() []Finding { return fs.ByKind(RaceCandidate) }

// Errors counts error-severity findings.
func (fs *Findings) Errors() int {
	n := 0
	for _, f := range fs.List {
		if f.Sev == SevError {
			n++
		}
	}
	return n
}

// Warnings counts warning-severity findings.
func (fs *Findings) Warnings() int {
	n := 0
	for _, f := range fs.List {
		if f.Sev == SevWarning {
			n++
		}
	}
	return n
}

// Covers reports whether addr lies inside any race candidate's location —
// the property that makes the static screen a sound filter for the
// dynamic detector's reports.
func (fs *Findings) Covers(addr vm.Word) bool {
	for _, f := range fs.List {
		if f.Kind != RaceCandidate {
			continue
		}
		if addr >= f.Addr && addr < f.Addr+f.Size {
			return true
		}
	}
	return false
}

// Summary renders a one-line account of the analysis.
func (fs *Findings) Summary() string {
	return fmt.Sprintf("%d findings (%d errors, %d warnings, %d race candidates)",
		len(fs.List), fs.Errors(), fs.Warnings(), len(fs.Races()))
}

func (fs *Findings) sort() {
	sort.SliceStable(fs.List, func(i, j int) bool {
		a, b := fs.List[i], fs.List[j]
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Msg < b.Msg
	})
}

// DefaultBudget bounds the abstract instructions the interprocedural
// scan may interpret. It is far above what any suite workload needs; a
// guest program that exhausts it degrades to an incomplete certificate
// instead of unbounded analysis time.
const DefaultBudget = 2_000_000

// Run analyzes prog under DefaultBudget and returns every finding, most
// severe first, plus the program's race-freedom certificate in
// Findings.Cert. It never executes guest code and is safe on malformed
// programs: images that fail vm.Validate yield a single invalid-program
// error and an incomplete certificate.
func Run(prog *vm.Program) *Findings { return RunBudget(prog, DefaultBudget) }

// RunBudget is Run with an explicit abstract-instruction budget.
// A budget <= 0 means unlimited.
func RunBudget(prog *vm.Program, budget int) *Findings {
	fs := &Findings{Prog: prog}
	if err := prog.Validate(); err != nil {
		fs.add(Finding{Kind: InvalidProgram, Sev: SevError, PC: -1, Msg: err.Error()})
		fs.Cert = &Certificate{
			Program: prog.Name,
			Status:  CertIncomplete,
			Reasons: []string{"program failed validation: " + err.Error()},
			Budget:  budget,
		}
		return fs
	}
	a := newAnalysis(prog, fs)
	a.budget = budget
	a.structural()
	a.checkInit()
	a.checkLiveness()
	a.scanAll()
	a.screenRaces()
	a.reportUnreachableFuncs()
	fs.sort()
	fs.Cert = a.certificate()
	return fs
}

// ctxCap bounds distinct analysis contexts per function; beyond it the
// analyzer stops specializing (recursion on distinct constants would
// otherwise enumerate forever).
const ctxCap = 24

// threadClass identifies which kind of thread executes a context: the
// initial thread ("main"), a spawned thread ("go:fn"), or a signal
// handler ("sig:fn"). Two sites can race only across distinct classes, or
// within one class that can have multiple live instances.
type context struct {
	fn    int
	args  [vm.MaxArgs]aval
	lk    lockset
	class string
	conc  bool // may execute while other threads are live
}

func (c *context) key() string {
	return fmt.Sprintf("%d|%v|%v|%d|%s|%t", c.fn, c.args, c.lk.must, c.lk.unk, c.class, c.conc)
}

type analysis struct {
	prog  *vm.Program
	fs    *Findings
	spans []span
	cfgs  []*cfg

	queue    []*context
	seen     map[string]bool
	perFn    []int // contexts analyzed per function
	capped   []bool
	analyzed []bool // function appeared in some context

	sites     []*site
	siteByKey map[string]*site
	once      map[string]bool // finding dedup across contexts

	anySpawn   bool
	spawnMulti []bool       // target can have >= 2 concurrently live instances
	spawnCycle map[int]bool // spawn pcs whose block lies on a CFG cycle
	hasBarrier []bool       // function contains barrier instructions
	maySpawn   []bool       // function contains or transitively calls a Spawn
	dataEnd    vm.Word

	// Certification state. budget caps the abstract instructions exec may
	// interpret (steps counts them); incompleteFns, valveTripped, and
	// racyFns carry per-function degradation into the certificate.
	budget        int
	steps         int
	budgetHit     bool
	incompleteFns map[int]bool
	valveTripped  map[int]bool
	racyFns       map[int]bool

	// ctxInst counts, per context key, how many thread instances can be
	// live with that context at once: a spawn site contributes one (two if
	// it sits on a loop), and a Call forwards its caller's count. A site
	// can race against itself only when the contexts that recorded it sum
	// to at least two instances — a worker whose addresses specialize on
	// its spawn argument exists exactly once per address and cannot.
	ctxInst map[string]int
}

func newAnalysis(prog *vm.Program, fs *Findings) *analysis {
	a := &analysis{
		prog:       prog,
		fs:         fs,
		spans:      funcSpans(prog),
		cfgs:       make([]*cfg, len(prog.Funcs)),
		seen:       make(map[string]bool),
		perFn:      make([]int, len(prog.Funcs)),
		capped:     make([]bool, len(prog.Funcs)),
		analyzed:   make([]bool, len(prog.Funcs)),
		siteByKey:  make(map[string]*site),
		once:       make(map[string]bool),
		spawnMulti: make([]bool, len(prog.Funcs)),
		spawnCycle: make(map[int]bool),
		hasBarrier: make([]bool, len(prog.Funcs)),
		maySpawn:   make([]bool, len(prog.Funcs)),
		dataEnd:    prog.DataBase + vm.Word(len(prog.Data)),
		ctxInst:    make(map[string]int),

		incompleteFns: make(map[int]bool),
		valveTripped:  make(map[int]bool),
		racyFns:       make(map[int]bool),
	}
	for i := range a.spans {
		a.cfgs[i] = buildCFG(prog, a.spans[i])
	}
	a.surveySpawnsAndBarriers()
	return a
}

// surveySpawnsAndBarriers counts static spawn sites per target (a target
// spawned from two sites, or from a site on a CFG cycle, can have two
// live instances and therefore race against itself) and records which
// functions contain barrier instructions.
func (a *analysis) surveySpawnsAndBarriers() {
	counts := make([]int, len(a.prog.Funcs))
	calls := make([][]int, len(a.prog.Funcs)) // caller -> callees
	for fi, g := range a.cfgs {
		for bi := range g.blocks {
			b := &g.blocks[bi]
			for pc := b.start; pc < b.end; pc++ {
				in := a.prog.Code[pc]
				switch in.Op {
				case vm.OpSpawn:
					a.anySpawn = true
					a.maySpawn[fi] = true
					if t := int(in.Imm); t >= 0 && t < len(counts) {
						counts[t]++
						if g.onCycle(bi) {
							counts[t] += ctxCap // force multi
							a.spawnCycle[pc] = true
						}
					}
				case vm.OpCall:
					if t := int(in.Imm); t >= 0 && t < len(calls) {
						calls[fi] = append(calls[fi], t)
					}
				case vm.OpBarArrive, vm.OpBarWait:
					a.hasBarrier[fi] = true
				}
			}
		}
	}
	for i, n := range counts {
		a.spawnMulti[i] = n >= 2
	}
	// Propagate maySpawn over the call graph to a fixpoint: a function
	// that calls a spawning function may itself create concurrency.
	for changed := true; changed; {
		changed = false
		for fi, callees := range calls {
			if a.maySpawn[fi] {
				continue
			}
			for _, t := range callees {
				if a.maySpawn[t] {
					a.maySpawn[fi] = true
					changed = true
					break
				}
			}
		}
	}
}

func (a *analysis) fname(fn int) string {
	if fn >= 0 && fn < len(a.prog.Funcs) {
		return a.prog.Funcs[fn].Name
	}
	return fmt.Sprintf("fn%d", fn)
}

// report adds a finding once per dedup key (the same function is
// re-scanned under many contexts).
func (a *analysis) report(key string, f Finding) {
	if a.once[key] {
		return
	}
	a.once[key] = true
	a.fs.add(f)
}

// bumpInst credits key with n more live instances. Counts saturate at 2:
// the screen only distinguishes "at most one" from "several".
func (a *analysis) bumpInst(key string, n int) {
	a.ctxInst[key] = min(a.ctxInst[key]+n, 2)
}

// instOf returns the live-instance count of a context (at least 1: the
// context was reached, so something executes it).
func (a *analysis) instOf(c *context) int {
	return max(a.ctxInst[c.key()], 1)
}

// enqueue registers a context for scanning if it is new and the target
// function still has specialization budget.
func (a *analysis) enqueue(c *context) {
	if c.fn < 0 || c.fn >= len(a.prog.Funcs) {
		return
	}
	k := c.key()
	if a.seen[k] {
		return
	}
	if a.perFn[c.fn] >= ctxCap {
		a.capped[c.fn] = true
		return
	}
	a.seen[k] = true
	a.perFn[c.fn]++
	a.analyzed[c.fn] = true
	a.queue = append(a.queue, c)
}

// scanAll drives the interprocedural pass: starting from the entry
// function on the initial thread, every Call, Spawn, and SigH reachable
// from it contributes further contexts until the queue drains.
func (a *analysis) scanAll() {
	root := &context{fn: a.prog.Entry, class: "main"}
	for i := range root.args {
		root.args[i] = konst(0)
	}
	a.bumpInst(root.key(), 1)
	a.enqueue(root)
	for len(a.queue) > 0 && !a.budgetHit {
		c := a.queue[0]
		a.queue = a.queue[1:]
		a.scanContext(c)
	}
	if a.budgetHit {
		a.report("budget", Finding{
			Kind: Incomplete, Sev: SevInfo, PC: -1,
			Msg: fmt.Sprintf("instruction budget exhausted after %d abstract steps; coverage is partial", a.steps),
		})
	}
	for fn, capped := range a.capped {
		if capped {
			a.report(fmt.Sprintf("cap|%d", fn), Finding{
				Kind: Incomplete, Sev: SevInfo, Func: a.fname(fn), PC: a.prog.Funcs[fn].Entry,
				Msg: fmt.Sprintf("context budget exhausted for %q; some call sites analyzed imprecisely", a.fname(fn)),
			})
		}
	}
}

// entryState models the architectural guarantee that a fresh register
// file is zeroed and r1..r6 carry the caller's staged arguments.
func (a *analysis) entryState(c *context) absState {
	st := absState{valid: true}
	for i := range st.regs {
		st.regs[i] = konst(0)
	}
	for i := 0; i < vm.MaxArgs; i++ {
		st.regs[1+i] = c.args[i]
	}
	st.lk = c.lk
	if c.class == "main" && c.conc {
		st.kids = 1
	}
	return st
}

// scanContext runs the abstract interpreter over one function context to
// a fixpoint, then replays each reachable block once more in recording
// mode to emit findings, access sites, and callee contexts.
func (a *analysis) scanContext(c *context) {
	g := a.cfgs[c.fn]
	if len(g.blocks) == 0 || a.budgetHit {
		return
	}
	in := make([]absState, len(g.blocks))
	in[0] = a.entryState(c)
	work := []int{0}
	queued := make([]bool, len(g.blocks))
	queued[0] = true
	for steps := 0; len(work) > 0; steps++ {
		if steps > 200*len(g.blocks)+10000 {
			// Fixpoint safety valve; lattices are finite so this should not
			// trigger — if it does, coverage is partial and the certificate
			// must degrade.
			a.valveTripped[c.fn] = true
			break
		}
		if a.budgetHit {
			break
		}
		bi := work[0]
		work = work[1:]
		queued[bi] = false
		st := in[bi]
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			a.exec(c, &st, pc, false)
		}
		for _, s := range g.blocks[bi].succs {
			if meetInto(&in[s], &st) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	for bi := range g.blocks {
		if !in[bi].valid {
			continue
		}
		st := in[bi]
		for pc := g.blocks[bi].start; pc < g.blocks[bi].end; pc++ {
			a.execRecord(c, &st, pc)
		}
	}
}

// reportUnreachableFuncs flags functions no analyzed context ever
// reached — typically library functions linked in but never called.
func (a *analysis) reportUnreachableFuncs() {
	for fn := range a.prog.Funcs {
		if a.analyzed[fn] || fn == a.prog.Entry {
			continue
		}
		// Functions sharing an entry with an analyzed one are aliases.
		alias := false
		for j := range a.prog.Funcs {
			if j != fn && a.analyzed[j] && a.prog.Funcs[j].Entry == a.prog.Funcs[fn].Entry {
				alias = true
				break
			}
		}
		if alias {
			continue
		}
		a.report(fmt.Sprintf("unreach|%d", fn), Finding{
			Kind: UnreachableFunc, Sev: SevInfo, Func: a.fname(fn), PC: a.prog.Funcs[fn].Entry,
			Msg: fmt.Sprintf("function %q is never called, spawned, or installed as a handler", a.fname(fn)),
		})
	}
}
