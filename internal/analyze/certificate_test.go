package analyze_test

import (
	"strings"
	"testing"

	"doubleplay/internal/analyze"
	"doubleplay/internal/asm"
	"doubleplay/internal/vm"
	"doubleplay/internal/workloads"
)

// TestCertWorkloadCrossValidation is the soundness gate against the
// suite's ground truth: no workload with intentional races may ever be
// certified race-free (a single false race-free certificate would make
// VerifyCertified silently commit divergent epochs), and the certified
// set must be non-empty so the skip-verification path has coverage.
func TestCertWorkloadCrossValidation(t *testing.T) {
	certified := 0
	for _, wl := range workloads.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			bt := wl.Build(workloads.Params{Workers: 2})
			fs := analyze.Run(bt.Prog)
			cert := fs.Cert
			if cert == nil {
				t.Fatal("no certificate computed")
			}
			if wl.Racy && cert.Status == analyze.CertRaceFree {
				t.Fatalf("racy workload certified race-free: %s", cert)
			}
			if wl.Racy && cert.Status != analyze.CertPossiblyRacy {
				t.Errorf("racy workload not flagged possibly-racy: %s", cert)
			}
			if cert.Status != analyze.CertRaceFree && len(cert.Reasons) == 0 {
				t.Errorf("degraded certificate carries no reasons: %s", cert)
			}
			if cert.Status == analyze.CertRaceFree {
				certified++
				if len(fs.Races()) != 0 || len(fs.ByKind(analyze.Incomplete)) != 0 {
					t.Fatalf("race-free certificate alongside disqualifying findings: %v", fs.List)
				}
				for _, fc := range cert.Funcs {
					if fc.Status != analyze.CertRaceFree {
						t.Errorf("program race-free but %q is %s (%s)", fc.Func, fc.Status, fc.Reason)
					}
				}
			}
		})
	}
	if certified == 0 {
		t.Fatal("no workload certifies race-free; the VerifyCertified path has no coverage")
	}
}

// TestCertSigpingRaceFree pins the suite's certified workload: per-thread
// tally slots, an atomic sink, and post-join reads leave nothing for the
// screen to flag and no source of incompleteness.
func TestCertSigpingRaceFree(t *testing.T) {
	bt := workloads.Get("sigping").Build(workloads.Params{Workers: 2})
	fs := analyze.Run(bt.Prog)
	if !fs.Cert.RaceFree() {
		t.Fatalf("sigping not certified: %s", fs.Cert)
	}
}

// TestCertLockedCounterRaceFree: a counter consistently protected by one
// lock is exactly what the lockset discipline proves; the certificate
// must be race-free, and dropping the lock must flip it to possibly-racy
// with the worker marked at function granularity.
func TestCertLockedCounterRaceFree(t *testing.T) {
	prog, _ := buildCounterRace(t, true)
	fs := analyze.Run(prog)
	if !fs.Cert.RaceFree() {
		t.Fatalf("locked counter not certified: %s", fs.Cert)
	}

	prog, _ = buildCounterRace(t, false)
	fs = analyze.Run(prog)
	if fs.Cert.Status != analyze.CertPossiblyRacy {
		t.Fatalf("unlocked counter certificate = %s, want possibly-racy", fs.Cert)
	}
	found := false
	for _, fc := range fs.Cert.Funcs {
		if fc.Func == "worker" && fc.Status == analyze.CertPossiblyRacy {
			found = true
		}
	}
	if !found {
		t.Fatalf("worker not marked possibly-racy: %+v", fs.Cert.Funcs)
	}
}

// TestCertBudgetPath exercises the instruction-budget satellite: a tiny
// budget must stop the scan, emit an Incomplete finding, and degrade the
// certificate — never panic or spin.
func TestCertBudgetPath(t *testing.T) {
	bt := workloads.Get("fft").Build(workloads.Params{Workers: 2})

	full := analyze.Run(bt.Prog)
	if full.Cert.Steps >= analyze.DefaultBudget {
		t.Fatalf("suite workload consumed the default budget (%d steps)", full.Cert.Steps)
	}

	fs := analyze.RunBudget(bt.Prog, 10)
	cert := fs.Cert
	if cert.Status != analyze.CertIncomplete {
		t.Fatalf("budget-starved certificate = %s, want incomplete", cert)
	}
	if cert.Budget != 10 {
		t.Fatalf("cert.Budget = %d, want 10", cert.Budget)
	}
	inc := fs.ByKind(analyze.Incomplete)
	foundBudget := false
	for _, f := range inc {
		if strings.Contains(f.Msg, "instruction budget exhausted") {
			foundBudget = true
		}
	}
	if !foundBudget {
		t.Fatalf("no budget-exhaustion finding: %v", fs.List)
	}
	for _, fc := range cert.Funcs {
		if fc.Status == analyze.CertRaceFree && fc.Reason == "" {
			t.Fatalf("budget-starved run still proves %q race-free", fc.Func)
		}
	}
}

// TestCertEmptyProgram: an empty image fails validation and must come
// back incomplete (with the validation error as the reason), not clean.
func TestCertEmptyProgram(t *testing.T) {
	fs := analyze.Run(&vm.Program{Name: "empty"})
	if len(fs.ByKind(analyze.InvalidProgram)) != 1 {
		t.Fatalf("want one invalid-program finding, got %v", fs.List)
	}
	if fs.Cert == nil || fs.Cert.Status != analyze.CertIncomplete {
		t.Fatalf("empty program certificate = %v, want incomplete", fs.Cert)
	}
	if len(fs.Cert.Reasons) == 0 {
		t.Fatal("incomplete certificate with no reason")
	}
}

// TestCertSpawnUndefined: spawning a function index outside the table is
// a structural error; the certificate must degrade on it.
func TestCertSpawnUndefined(t *testing.T) {
	prog := &vm.Program{
		Name: "badspawn",
		Code: []vm.Instr{
			{Op: vm.OpSpawn, A: 1, B: 2, Imm: 5}, // only function 0 exists
			{Op: vm.OpHalt},
		},
		Funcs: []vm.FuncInfo{{Name: "main", Entry: 0}},
	}
	fs := analyze.Run(prog)
	if len(fs.ByKind(analyze.BadCallee)) == 0 {
		t.Fatalf("undefined spawn target not flagged: %v", fs.List)
	}
	if fs.Cert.Status == analyze.CertRaceFree {
		t.Fatalf("program with error findings certified race-free: %s", fs.Cert)
	}
}

// TestCertBarrierOnlySync: workers sharing a region ordered only by a
// barrier draw zero candidates (the screen's documented partitioning
// assumption) but must NOT certify — the disjointness is unproven.
func TestCertBarrierOnlySync(t *testing.T) {
	b := asm.NewBuilder("barrier-only")
	arr := b.Zeros(8)
	w := b.Func("worker", 1)
	{
		bar := w.Const(1)
		n := w.Const(2)
		idx, v := w.Reg(), w.Reg()
		w.Barrier(bar, n)
		w.Mov(idx, unknownReg(w))
		w.Movi(v, 7)
		w.Stx(w.Const(arr), idx, v) // region write under barrier only
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	spawnTwo(m, true)
	m.HaltImm(0)
	b.SetEntry("main")
	fs := analyze.Run(b.MustBuild())
	if n := len(fs.Races()); n != 0 {
		t.Fatalf("barrier-partitioned region drew %d candidates: %v", n, fs.Races())
	}
	if fs.Cert.Status != analyze.CertIncomplete {
		t.Fatalf("barrier-only sharing certificate = %s, want incomplete", fs.Cert)
	}
	foundBarrier := false
	for _, r := range fs.Cert.Reasons {
		if strings.Contains(r, "barrier") {
			foundBarrier = true
		}
	}
	if !foundBarrier {
		t.Fatalf("no barrier reason on the certificate: %v", fs.Cert.Reasons)
	}
}

// unknownReg returns a register the constant dataflow cannot pin: Cas
// results are unknown and atomics are deliberately not access sites, so
// this introduces no site and no unsoundness of its own.
func unknownReg(f *asm.Func) asm.Reg {
	d := f.Reg()
	addr := f.Const(0)
	zero := f.Const(0)
	f.Cas(d, addr, zero, zero)
	return d
}

// TestCertSpawnInHelper: a spawn buried inside a function the initial
// thread calls is invisible to main's child tracking; the certificate
// must degrade even though the screen records nothing wrong.
func TestCertSpawnInHelper(t *testing.T) {
	b := asm.NewBuilder("helper-spawn")
	cell := b.Words(0)
	w := b.Func("worker", 1)
	{
		c := w.Const(cell)
		v := w.Const(3)
		w.St(c, 0, v)
		w.HaltImm(0)
	}
	h := b.Func("helper", 0)
	{
		tid, arg := h.Reg(), h.Reg()
		h.Movi(arg, 0)
		h.Spawn(tid, "worker", arg)
		h.Join(tid)
		h.Ret(arg)
	}
	m := b.Func("main", 0)
	{
		tmp := m.Reg()
		m.Call("helper")
		c := m.Const(cell)
		m.Ld(tmp, c, 0)
		m.Halt(tmp)
	}
	b.SetEntry("main")
	fs := analyze.Run(b.MustBuild())
	if fs.Cert.Status == analyze.CertRaceFree {
		t.Fatalf("helper-spawn program certified race-free: %s", fs.Cert)
	}
	foundCall := false
	for _, r := range fs.Cert.Reasons {
		if strings.Contains(r, "may spawn") {
			foundCall = true
		}
	}
	if !foundCall {
		t.Fatalf("no helper-spawn reason on the certificate: %v", fs.Cert.Reasons)
	}
}

// TestCoversOutOfRange: Covers must answer false, not fault, for
// addresses far outside any candidate and on a findings set with no
// candidates at all.
func TestCoversOutOfRange(t *testing.T) {
	prog, cell := buildCounterRace(t, false)
	fs := analyze.Run(prog)
	if !fs.Covers(cell) {
		t.Fatalf("candidate cell %d not covered", cell)
	}
	for _, addr := range []vm.Word{-1, 1 << 40, cell + 1<<20} {
		if fs.Covers(addr) {
			t.Errorf("out-of-range address %d reported covered", addr)
		}
	}
	clean := analyze.Run(buildCounterRaceLocked(t))
	if clean.Covers(cell) || clean.Covers(0) {
		t.Error("findings with no candidates reported coverage")
	}
}

func buildCounterRaceLocked(t *testing.T) *vm.Program {
	t.Helper()
	prog, _ := buildCounterRace(t, true)
	return prog
}
