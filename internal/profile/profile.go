// Package profile implements a deterministic guest-program profiler.
//
// The profiler rides the vm.Hooks.OnRetire observation point: every retired
// instruction is attributed to the guest function executing it and to the
// full call stack leading there, weighted by the instruction's *static*
// per-opcode cycle charge from the cost model. Attribution is therefore a
// pure function of each thread's retired-instruction stream — the very
// stream DoublePlay records and replays — so the profile captured while
// recording is bit-identical to the profile captured while replaying the
// recording, for every replay strategy. That is the whole point: profiles
// of production runs can be regenerated offline, exactly, from the log.
//
// Two deliberate exclusions keep the determinism contract honest:
//
//   - Dynamic syscall surcharges (data movement of SysRead/SysWrite results)
//     are not attributed: the live simulated OS charges them but the replay
//     injector does not, so including them would break record/replay
//     bit-identity. They remain visible in the cycle totals of the trace
//     and metrics pipelines.
//   - Runtime charges (checkpoints, log appends, timeslice switches) belong
//     to DoublePlay itself, not the guest, and are likewise excluded. Use
//     the host pprof plumbing to profile the runtime.
//
// A Profiler is bound to one vm.Machine (single-goroutine, like the machine
// itself). Snapshot() extracts a Profile — a mergeable, serialisable value —
// so per-epoch or per-segment profilers can be combined: merging is
// commutative addition over canonical stack keys, and both exporters emit in
// sorted key order, making the output independent of epoch interleaving.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"doubleplay/internal/vm"
)

// node is one call-trie entry: the stack of functions from the root to this
// node, with the cycles and instructions retired while it was the leaf.
type node struct {
	parent   *node
	fn       int32 // index into Program.Funcs; -1 = unresolvable pc
	children map[int32]*node
	cycles   int64
	instrs   int64
}

// threadState is the profiler's cursor for one guest thread.
type threadState struct {
	cur   *node
	depth int // len(t.Frames) the cursor corresponds to
}

// Profiler attributes retired cycles to guest call stacks on one machine.
type Profiler struct {
	prog   *vm.Program
	funcOf []int32 // pc -> function index, -1 outside every body
	root   *node
	states []*threadState // indexed by tid
}

// New builds a profiler for prog. Attach it to a machine running prog.
func New(prog *vm.Program) *Profiler {
	return &Profiler{prog: prog, funcOf: funcTable(prog), root: &node{fn: -2}}
}

// funcTable flattens Program.FuncAt into a per-pc array: each pc maps to the
// function with the greatest entry at or below it (first index on shared
// entries, matching FuncAt's tie-break).
func funcTable(prog *vm.Program) []int32 {
	tab := make([]int32, len(prog.Code))
	idxs := make([]int, len(prog.Funcs))
	for i := range idxs {
		idxs[i] = i
	}
	sort.SliceStable(idxs, func(a, b int) bool {
		return prog.Funcs[idxs[a]].Entry < prog.Funcs[idxs[b]].Entry
	})
	cur, curEntry := int32(-1), -1
	j := 0
	for pc := range tab {
		for j < len(idxs) && prog.Funcs[idxs[j]].Entry == pc {
			if curEntry != pc {
				cur, curEntry = int32(idxs[j]), pc
			}
			j++
		}
		tab[pc] = cur
	}
	return tab
}

func (p *Profiler) funcAt(pc int) int32 {
	if pc < 0 || pc >= len(p.funcOf) {
		return -1
	}
	return p.funcOf[pc]
}

func (p *Profiler) fnName(fn int32) string {
	if fn < 0 || int(fn) >= len(p.prog.Funcs) {
		return "?"
	}
	return p.prog.Funcs[fn].Name
}

func (p *Profiler) child(n *node, fn int32) *node {
	c, ok := n.children[fn]
	if !ok {
		c = &node{parent: n, fn: fn}
		if n.children == nil {
			n.children = make(map[int32]*node)
		}
		n.children[fn] = c
	}
	return c
}

func (p *Profiler) state(tid int) *threadState {
	for tid >= len(p.states) {
		p.states = append(p.states, nil)
	}
	st := p.states[tid]
	if st == nil {
		st = &threadState{}
		p.states[tid] = st
	}
	return st
}

// stackNode rebuilds the trie node for t's current architectural stack: a
// normal frame's caller is the function containing the call (RetPC-1), a
// signal frame resumes at the interrupted pc itself, and the leaf is the
// function containing t.PC.
func (p *Profiler) stackNode(t *vm.Thread) *node {
	n := p.root
	for _, f := range t.Frames {
		if f.Signal {
			n = p.child(n, p.funcAt(f.RetPC))
		} else {
			n = p.child(n, p.funcAt(f.RetPC-1))
		}
	}
	return p.child(n, p.funcAt(t.PC))
}

// Attach starts profiling m. Threads that already exist (a machine restored
// from a mid-program checkpoint) have their stacks reconstructed from their
// frames; threads spawned later initialise lazily at their first retired
// instruction, which always happens with an empty call stack.
func (p *Profiler) Attach(m *vm.Machine) {
	for _, t := range m.Threads {
		if !t.Status.Live() {
			continue
		}
		st := p.state(t.ID)
		st.cur = p.stackNode(t)
		st.depth = len(t.Frames)
	}
	m.Hooks.OnRetire = p.onRetire
}

// onRetire charges the function the instruction retired in (the stack
// *before* any call/return/signal transition — a call instruction belongs to
// the caller, a return to the callee, a delivered signal to the function it
// interrupted), then follows the stack-depth delta to the new leaf.
func (p *Profiler) onRetire(t *vm.Thread, pc int, cost int64) {
	st := p.state(t.ID)
	if st.cur == nil {
		st.cur = p.child(p.root, p.funcAt(pc))
		st.depth = 0
	}
	st.cur.cycles += cost
	st.cur.instrs++
	d := len(t.Frames)
	switch {
	case d == st.depth:
		// Straight-line code, or a signal absorbed without a handler.
	case d == st.depth+1:
		// Call or signal delivery: the new leaf is the function at t.PC.
		st.cur = p.child(st.cur, p.funcAt(t.PC))
	case d == st.depth-1 && st.cur.parent != p.root && st.cur.parent != nil:
		st.cur = st.cur.parent
	default:
		// The stack moved in a way the cursor cannot follow (cannot happen
		// under the call/ret discipline); resynchronise architecturally.
		st.cur = p.stackNode(t)
	}
	st.depth = d
}

// Snapshot extracts the accumulated profile. The profiler keeps counting;
// snapshots are cumulative.
func (p *Profiler) Snapshot() *Profile {
	prof := NewProfile(p.prog.Name)
	var walk func(n *node, stack []string)
	walk = func(n *node, stack []string) {
		if n != p.root {
			stack = append(stack, p.fnName(n.fn))
			if n.instrs > 0 {
				prof.add(stack, n.cycles, n.instrs)
			}
		}
		for _, c := range n.children {
			walk(c, stack)
		}
	}
	walk(p.root, nil)
	return prof
}

// ---------------------------------------------------------------------------
// Profile: the mergeable, serialisable result

// Sample is the charge accumulated by one distinct call stack.
type Sample struct {
	Stack  []string // root-first function names
	Cycles int64
	Instrs int64
}

// Profile is a set of stack samples keyed canonically by the ";"-joined
// root-first stack, plus the program name. Merging is commutative, and both
// exporters emit sorted by key, so a profile's serialised form is
// independent of the order its pieces were gathered in.
type Profile struct {
	Name    string
	samples map[string]*Sample
}

// NewProfile returns an empty profile for the named program.
func NewProfile(name string) *Profile {
	return &Profile{Name: name, samples: make(map[string]*Sample)}
}

func (p *Profile) add(stack []string, cycles, instrs int64) {
	key := strings.Join(stack, ";")
	s := p.samples[key]
	if s == nil {
		s = &Sample{Stack: append([]string(nil), stack...)}
		p.samples[key] = s
	}
	s.Cycles += cycles
	s.Instrs += instrs
}

// Merge folds q into p by canonical stack key.
func (p *Profile) Merge(q *Profile) {
	if q == nil {
		return
	}
	if p.Name == "" {
		p.Name = q.Name
	}
	for _, s := range q.samples {
		p.add(s.Stack, s.Cycles, s.Instrs)
	}
}

// Samples returns the samples sorted by canonical stack key.
func (p *Profile) Samples() []*Sample {
	keys := make([]string, 0, len(p.samples))
	for k := range p.samples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Sample, len(keys))
	for i, k := range keys {
		out[i] = p.samples[k]
	}
	return out
}

// NumSamples reports the number of distinct stacks.
func (p *Profile) NumSamples() int { return len(p.samples) }

// TotalCycles sums the attributed cycles over every stack.
func (p *Profile) TotalCycles() int64 {
	var n int64
	for _, s := range p.samples {
		n += s.Cycles
	}
	return n
}

// TotalInstrs sums the attributed retired instructions over every stack.
func (p *Profile) TotalInstrs() int64 {
	var n int64
	for _, s := range p.samples {
		n += s.Instrs
	}
	return n
}

// WriteFolded writes the profile in Brendan Gregg's folded-stack format
// (one "root;...;leaf cycles" line per stack, sorted), the input format of
// flamegraph.pl and every inferno-style renderer.
func (p *Profile) WriteFolded(w io.Writer) error {
	for _, s := range p.Samples() {
		if _, err := fmt.Fprintf(w, "%s %d\n", strings.Join(s.Stack, ";"), s.Cycles); err != nil {
			return err
		}
	}
	return nil
}

// TopRow is one function's aggregate in a Top report.
type TopRow struct {
	Func   string
	Self   int64 // cycles retired with Func as the leaf
	Cum    int64 // cycles of every stack containing Func
	Instrs int64 // instructions retired with Func as the leaf
}

// Top aggregates per-function self and cumulative cycles, sorted by self
// cycles descending (name ascending on ties). n <= 0 returns every row.
func (p *Profile) Top(n int) []TopRow {
	agg := make(map[string]*TopRow)
	row := func(fn string) *TopRow {
		r := agg[fn]
		if r == nil {
			r = &TopRow{Func: fn}
			agg[fn] = r
		}
		return r
	}
	for _, s := range p.samples {
		leaf := row(s.Stack[len(s.Stack)-1])
		leaf.Self += s.Cycles
		leaf.Instrs += s.Instrs
		seen := make(map[string]bool, len(s.Stack))
		for _, fn := range s.Stack {
			if !seen[fn] {
				seen[fn] = true
				row(fn).Cum += s.Cycles
			}
		}
	}
	rows := make([]TopRow, 0, len(agg))
	for _, r := range agg {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Self != rows[j].Self {
			return rows[i].Self > rows[j].Self
		}
		return rows[i].Func < rows[j].Func
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// RenderTop writes a human-readable top-n table with per-function shares of
// the profile's total cycles.
func (p *Profile) RenderTop(w io.Writer, n int) error {
	total := p.TotalCycles()
	if _, err := fmt.Fprintf(w, "program %s: %d cycles, %d instructions, %d stacks\n",
		p.Name, total, p.TotalInstrs(), p.NumSamples()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %12s %6s %12s %6s  %s\n",
		"self(cyc)", "self%", "cum(cyc)", "cum%", "function"); err != nil {
		return err
	}
	pct := func(v int64) float64 {
		if total == 0 {
			return 0
		}
		return float64(v) / float64(total) * 100
	}
	for _, r := range p.Top(n) {
		if _, err := fmt.Fprintf(w, "  %12d %5.1f%% %12d %5.1f%%  %s\n",
			r.Self, pct(r.Self), r.Cum, pct(r.Cum), r.Func); err != nil {
			return err
		}
	}
	return nil
}
