package profile

// Host-side profiling plumbing: runtime/pprof phase labels for the
// recorder/replayer control loops, and the -cpuprofile/-memprofile flag
// lifecycle shared by the CLIs. Guest profiles (Profiler/Profile in this
// package) measure the simulated program in simulated cycles; these helpers
// measure the simulator itself in host CPU time.

import (
	"context"
	"os"
	"runtime"
	"runtime/pprof"
)

// WithPhase runs f with the pprof label dp.phase=phase attached to the
// goroutine, so host CPU profiles of the simulator split by pipeline phase
// (record, verify, commit, replay). Free when no host profile is active.
func WithPhase(ctx context.Context, phase string, f func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	pprof.Do(ctx, pprof.Labels("dp.phase", phase), func(context.Context) { f() })
}

// HostProfiles owns the files behind the CLI -cpuprofile/-memprofile flags.
type HostProfiles struct {
	cpu     *os.File
	memPath string
}

// StartHostProfiles starts a CPU profile into cpuPath (when non-empty) and
// arranges for Stop to write a heap profile to memPath (when non-empty).
// Either path may be empty; Stop on the returned value is always safe.
func StartHostProfiles(cpuPath, memPath string) (*HostProfiles, error) {
	h := &HostProfiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		h.cpu = f
	}
	return h, nil
}

// Stop flushes the CPU profile and writes the heap profile, returning the
// first error so callers can normalise it into their exit-code convention.
// Safe on nil and safe to call more than once.
func (h *HostProfiles) Stop() error {
	if h == nil {
		return nil
	}
	var first error
	if h.cpu != nil {
		pprof.StopCPUProfile()
		if err := h.cpu.Close(); err != nil {
			first = err
		}
		h.cpu = nil
	}
	if h.memPath != "" {
		path := h.memPath
		h.memPath = ""
		f, err := os.Create(path)
		if err != nil {
			if first == nil {
				first = err
			}
			return first
		}
		runtime.GC() // materialise up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
			first = err
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
