package profile

import "doubleplay/internal/vm"

// StackResolver maps architectural thread state to guest function names:
// the same shadow-stack reconstruction Profiler.stackNode performs when
// attaching to a checkpoint-restored machine, exported for consumers
// that want a readable call stack for an arbitrary stopped thread (the
// debug session's `stack` command).
type StackResolver struct {
	prog   *vm.Program
	funcOf []int32
}

// NewStackResolver builds a resolver for prog.
func NewStackResolver(prog *vm.Program) *StackResolver {
	return &StackResolver{prog: prog, funcOf: funcTable(prog)}
}

// FuncName names the function containing pc, "?" outside every body.
func (r *StackResolver) FuncName(pc int) string {
	return r.name(r.at(pc))
}

// Stack returns t's call stack as function names, outermost caller
// first. Frame attribution follows the profiler's convention: a normal
// frame's caller is the function containing the call (RetPC-1), a
// signal frame belongs to the function at the interrupted pc, and the
// leaf is the function containing t.PC.
func (r *StackResolver) Stack(t *vm.Thread) []string {
	out := make([]string, 0, len(t.Frames)+1)
	for _, f := range t.Frames {
		if f.Signal {
			out = append(out, r.name(r.at(f.RetPC)))
		} else {
			out = append(out, r.name(r.at(f.RetPC-1)))
		}
	}
	return append(out, r.name(r.at(t.PC)))
}

func (r *StackResolver) at(pc int) int32 {
	if pc < 0 || pc >= len(r.funcOf) {
		return -1
	}
	return r.funcOf[pc]
}

func (r *StackResolver) name(fn int32) string {
	if fn < 0 || int(fn) >= len(r.prog.Funcs) {
		return "?"
	}
	return r.prog.Funcs[fn].Name
}
