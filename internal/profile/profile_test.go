package profile_test

import (
	"bytes"
	"strings"
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/profile"
	"doubleplay/internal/vm"
)

// run drives a machine round-robin until every thread terminates.
func run(t *testing.T, m *vm.Machine) {
	t.Helper()
	for steps := 0; !m.Done(); steps++ {
		if steps > 5_000_000 {
			t.Fatalf("livelock:\n%s", m.DescribeState())
		}
		for _, th := range m.Threads {
			if th.Status.Live() {
				m.Step(th)
			}
		}
	}
}

// buildCallers builds a program whose shape the attribution tests know:
// main spins a little itself, then calls inner directly and via outer.
func buildCallers(t *testing.T) *vm.Program {
	t.Helper()
	b := asm.NewBuilder("callers")

	inner := b.Func("inner", 1)
	{
		n, one := inner.Reg(), inner.Reg()
		inner.Mov(n, asm.Reg(1))
		inner.Movi(one, 1)
		inner.Label("loop")
		inner.Sub(n, n, one)
		inner.Jnz(n, "loop")
		inner.RetImm(0)
	}

	outer := b.Func("outer", 1)
	{
		a := outer.Reg()
		outer.Mov(a, asm.Reg(1))
		outer.Call("inner", a)
		outer.RetImm(0)
	}

	f := b.Func("main", 0)
	{
		n, one, arg := f.Reg(), f.Reg(), f.Reg()
		f.Movi(n, 8)
		f.Movi(one, 1)
		f.Label("spin")
		f.Sub(n, n, one)
		f.Jnz(n, "spin")
		f.Movi(arg, 16)
		f.Call("inner", arg)
		f.Movi(arg, 32)
		f.Call("outer", arg)
		f.HaltImm(0)
	}
	b.SetEntry("main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// profileCallers runs the callers program under a fresh profiler.
func profileCallers(t *testing.T) *profile.Profile {
	t.Helper()
	prog := buildCallers(t)
	m := vm.NewMachine(prog, nil, nil)
	p := profile.New(prog)
	p.Attach(m)
	run(t, m)
	return p.Snapshot()
}

func keys(m map[string]*profile.Sample) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func stacks(p *profile.Profile) map[string]*profile.Sample {
	out := make(map[string]*profile.Sample)
	for _, s := range p.Samples() {
		out[strings.Join(s.Stack, ";")] = s
	}
	return out
}

func TestAttributionFollowsCallStack(t *testing.T) {
	byStack := stacks(profileCallers(t))
	for _, want := range []string{"main", "main;inner", "main;outer", "main;outer;inner"} {
		s := byStack[want]
		if s == nil {
			t.Fatalf("no sample for stack %q (have %v)", want, keys(byStack))
		}
		if s.Cycles <= 0 || s.Instrs <= 0 {
			t.Fatalf("stack %q has empty charge: %+v", want, s)
		}
	}
	if len(byStack) != 4 {
		t.Fatalf("got %d stacks, want 4: %v", len(byStack), keys(byStack))
	}
	// inner(32) under outer retires twice the loop iterations of inner(16)
	// under main, so it must cost strictly more.
	if byStack["main;outer;inner"].Cycles <= byStack["main;inner"].Cycles {
		t.Fatalf("inner(32) not costlier than inner(16): %d vs %d",
			byStack["main;outer;inner"].Cycles, byStack["main;inner"].Cycles)
	}
}

func TestProfileTotalsMatchMachineWork(t *testing.T) {
	prog := buildCallers(t)
	m := vm.NewMachine(prog, nil, nil)
	p := profile.New(prog)
	p.Attach(m)
	run(t, m)
	prof := p.Snapshot()
	// Every retired instruction is charged somewhere, exactly once.
	if got, want := prof.TotalInstrs(), int64(m.Threads[0].Retired); got != want {
		t.Fatalf("profiled %d instructions, machine retired %d", got, want)
	}
}

func TestSnapshotIsCumulativeAndIsolated(t *testing.T) {
	prog := buildCallers(t)
	m := vm.NewMachine(prog, nil, nil)
	p := profile.New(prog)
	p.Attach(m)
	run(t, m)
	a, b := p.Snapshot(), p.Snapshot()
	if !bytes.Equal(a.MarshalPprof(), b.MarshalPprof()) {
		t.Fatal("two snapshots of an idle profiler differ")
	}
	// Mutating one snapshot must not leak into the other.
	a.Merge(a)
	if bytes.Equal(a.MarshalPprof(), b.MarshalPprof()) {
		t.Fatal("snapshots share state")
	}
}

func TestMergeOrderIndependence(t *testing.T) {
	mk := func() *profile.Profile {
		p := profile.NewProfile("callers")
		p2 := profileCallers(t)
		p.Merge(p2)
		return p
	}
	a, b := mk(), mk()

	x := profile.NewProfile("")
	x.Merge(a)
	x.Merge(b)
	y := profile.NewProfile("")
	y.Merge(b)
	y.Merge(a)
	if !bytes.Equal(x.MarshalPprof(), y.MarshalPprof()) {
		t.Fatal("merge order changed the serialised profile")
	}
	if x.TotalCycles() != 2*a.TotalCycles() {
		t.Fatalf("merged cycles %d, want %d", x.TotalCycles(), 2*a.TotalCycles())
	}
}

func TestFoldedOutputSortedAndParseable(t *testing.T) {
	prof := profileCallers(t)
	var buf bytes.Buffer
	if err := prof.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != prof.NumSamples() {
		t.Fatalf("%d folded lines for %d stacks", len(lines), prof.NumSamples())
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("folded output not sorted: %q then %q", lines[i-1], lines[i])
		}
	}
	for _, ln := range lines {
		if !strings.Contains(ln, " ") || !strings.HasPrefix(ln, "main") {
			t.Fatalf("malformed folded line %q", ln)
		}
	}
}

func TestPprofRoundTrip(t *testing.T) {
	prof := profileCallers(t)
	prof.Name = "callers"
	data := prof.MarshalPprof()

	back, err := profile.ParsePprof(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "callers" {
		t.Fatalf("program name %q after round trip", back.Name)
	}
	if !bytes.Equal(back.MarshalPprof(), data) {
		t.Fatal("re-marshalled profile differs from original bytes")
	}
	want, got := stacks(prof), stacks(back)
	if len(want) != len(got) {
		t.Fatalf("%d stacks after round trip, want %d", len(got), len(want))
	}
	for k, s := range want {
		g := got[k]
		if g == nil || g.Cycles != s.Cycles || g.Instrs != s.Instrs {
			t.Fatalf("stack %q: got %+v, want %+v", k, g, s)
		}
	}
}

func TestParsePprofRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		[]byte("not a protobuf"),
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	} {
		if _, err := profile.ParsePprof(data); err == nil {
			t.Fatalf("ParsePprof(%q) accepted garbage", data)
		}
	}
}

func TestTopAggregatesSelfAndCumulative(t *testing.T) {
	prof := profileCallers(t)
	rows := prof.Top(0)
	byFn := make(map[string]profile.TopRow)
	var selfSum int64
	for _, r := range rows {
		byFn[r.Func] = r
		selfSum += r.Self
	}
	if selfSum != prof.TotalCycles() {
		t.Fatalf("self cycles sum %d, total %d", selfSum, prof.TotalCycles())
	}
	// main appears in every stack, so its cumulative share is everything.
	if byFn["main"].Cum != prof.TotalCycles() {
		t.Fatalf("main cum %d, want total %d", byFn["main"].Cum, prof.TotalCycles())
	}
	// inner is a leaf in two stacks; its cum equals its self charge.
	if in := byFn["inner"]; in.Cum != in.Self || in.Self <= 0 {
		t.Fatalf("inner rows: %+v", in)
	}
	if top1 := prof.Top(1); len(top1) != 1 {
		t.Fatalf("Top(1) returned %d rows", len(top1))
	}

	var buf bytes.Buffer
	if err := prof.RenderTop(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "function") || !strings.Contains(buf.String(), "main") {
		t.Fatalf("RenderTop output missing expected rows:\n%s", buf.String())
	}
}
