package profile

// Hand-rolled pprof profile.proto encoding and decoding. The repo takes no
// module dependencies, so the wire format is produced and consumed directly:
// profile.proto uses only varint scalars, packed repeated varints, and
// length-delimited submessages, all trivial to emit by hand.
//
// The encoder is canonical: given equal Profiles (same samples, same name)
// it produces identical bytes. Strings are interned in a fixed order (the
// sample-type vocabulary, then sorted function names, then the program name
// as the filename), functions and locations are numbered by sorted-name
// position, samples are emitted in canonical key order with leaf-first
// location ids (the pprof convention), and no wall-clock metadata is
// stamped. Record/replay bit-identity tests compare these bytes directly.

import (
	"fmt"
	"io"
	"sort"
)

// profile.proto field numbers.
const (
	profSampleType  = 1
	profSample      = 2
	profLocation    = 4
	profFunction    = 5
	profStringTable = 6

	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2

	locID   = 1
	locLine = 4

	lineFunctionID = 1

	funcID       = 1
	funcName     = 2
	funcSysName  = 3
	funcFilename = 4
)

type protoBuf struct{ b []byte }

func (w *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		w.b = append(w.b, byte(v)|0x80)
		v >>= 7
	}
	w.b = append(w.b, byte(v))
}

func (w *protoBuf) tag(field, wire int) { w.varint(uint64(field)<<3 | uint64(wire)) }

// intField emits a varint field, omitting proto3 zero defaults.
func (w *protoBuf) intField(field int, v uint64) {
	if v == 0 {
		return
	}
	w.tag(field, 0)
	w.varint(v)
}

func (w *protoBuf) bytesField(field int, data []byte) {
	w.tag(field, 2)
	w.varint(uint64(len(data)))
	w.b = append(w.b, data...)
}

func (w *protoBuf) packed(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var body protoBuf
	for _, v := range vs {
		body.varint(v)
	}
	w.bytesField(field, body.b)
}

// MarshalPprof encodes the profile as a canonical pprof profile.proto
// message with two sample values per stack: [cycles, instructions].
func (p *Profile) MarshalPprof() []byte {
	strtab := []string{""}
	strIdx := map[string]uint64{"": 0}
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(strtab))
		strtab = append(strtab, s)
		strIdx[s] = i
		return i
	}
	cyclesIdx := intern("cycles")
	countIdx := intern("count")
	instrsIdx := intern("instructions")

	samples := p.Samples()
	fnID := make(map[string]uint64)
	var fnNames []string
	for _, s := range samples {
		for _, fn := range s.Stack {
			if _, ok := fnID[fn]; !ok {
				fnID[fn] = 0
				fnNames = append(fnNames, fn)
			}
		}
	}
	sort.Strings(fnNames)
	for i, fn := range fnNames {
		fnID[fn] = uint64(i + 1)
		intern(fn)
	}
	fileIdx := intern(p.Name)

	var out protoBuf
	for _, vt := range [][2]uint64{{cyclesIdx, countIdx}, {instrsIdx, countIdx}} {
		var m protoBuf
		m.intField(vtType, vt[0])
		m.intField(vtUnit, vt[1])
		out.bytesField(profSampleType, m.b)
	}
	for _, s := range samples {
		var m protoBuf
		locs := make([]uint64, len(s.Stack))
		for i, fn := range s.Stack {
			locs[len(s.Stack)-1-i] = fnID[fn] // leaf first
		}
		m.packed(sampleLocationID, locs)
		m.packed(sampleValue, []uint64{uint64(s.Cycles), uint64(s.Instrs)})
		out.bytesField(profSample, m.b)
	}
	for i := range fnNames {
		var m protoBuf
		m.intField(locID, uint64(i+1))
		var ln protoBuf
		ln.intField(lineFunctionID, uint64(i+1))
		m.bytesField(locLine, ln.b)
		out.bytesField(profLocation, m.b)
	}
	for i, fn := range fnNames {
		var m protoBuf
		m.intField(funcID, uint64(i+1))
		m.intField(funcName, strIdx[fn])
		m.intField(funcSysName, strIdx[fn])
		m.intField(funcFilename, fileIdx)
		out.bytesField(profFunction, m.b)
	}
	for _, s := range strtab {
		out.bytesField(profStringTable, []byte(s))
	}
	return out.b
}

// WritePprof writes MarshalPprof's bytes to w.
func (p *Profile) WritePprof(w io.Writer) error {
	_, err := w.Write(p.MarshalPprof())
	return err
}

// ---------------------------------------------------------------------------
// Decoding

type protoReader struct {
	b   []byte
	pos int
}

func (r *protoReader) done() bool { return r.pos >= len(r.b) }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		if r.pos >= len(r.b) {
			return 0, fmt.Errorf("pprof: truncated varint")
		}
		if shift >= 64 {
			return 0, fmt.Errorf("pprof: varint overflow")
		}
		c := r.b[r.pos]
		r.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
}

func (r *protoReader) field() (num, wire int, err error) {
	k, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(k >> 3), int(k & 7), nil
}

func (r *protoReader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, fmt.Errorf("pprof: truncated bytes field")
	}
	out := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

func (r *protoReader) skip(wire int) error {
	switch wire {
	case 0:
		_, err := r.varint()
		return err
	case 1:
		if len(r.b)-r.pos < 8 {
			return fmt.Errorf("pprof: truncated fixed64")
		}
		r.pos += 8
		return nil
	case 2:
		_, err := r.bytes()
		return err
	case 5:
		if len(r.b)-r.pos < 4 {
			return fmt.Errorf("pprof: truncated fixed32")
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("pprof: unsupported wire type %d", wire)
	}
}

// varints reads one repeated-varint field occurrence: packed (wire 2) or a
// single unpacked element (wire 0).
func (r *protoReader) varints(wire int, into []uint64) ([]uint64, error) {
	if wire == 0 {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return append(into, v), nil
	}
	body, err := r.bytes()
	if err != nil {
		return nil, err
	}
	sub := protoReader{b: body}
	for !sub.done() {
		v, err := sub.varint()
		if err != nil {
			return nil, err
		}
		into = append(into, v)
	}
	return into, nil
}

// ParsePprof decodes a pprof profile.proto message back into a Profile.
// It understands any encoder's output (packed or unpacked repeats, fields in
// any order), not just MarshalPprof's: sample values are matched to the
// "cycles" and "instructions" sample types by name, stacks are symbolised
// through location -> line -> function -> string table, and the program name
// is recovered from the functions' filename.
func ParsePprof(data []byte) (*Profile, error) {
	type rawSample struct {
		locs []uint64
		vals []uint64
	}
	var (
		sampleTypes [][2]uint64 // (type, unit) string indices
		rawSamples  []rawSample
		locFn       = make(map[uint64]uint64) // location id -> function id
		fnNameIdx   = make(map[uint64]uint64) // function id -> name string index
		fnFileIdx   uint64
		strtab      []string
	)
	r := protoReader{b: data}
	for !r.done() {
		num, wire, err := r.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case profSampleType:
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			var vt [2]uint64
			sub := protoReader{b: body}
			for !sub.done() {
				n, w, err := sub.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case vtType, vtUnit:
					v, err := sub.varint()
					if err != nil {
						return nil, err
					}
					vt[n-1] = v
				default:
					if err := sub.skip(w); err != nil {
						return nil, err
					}
				}
			}
			sampleTypes = append(sampleTypes, vt)
		case profSample:
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			var s rawSample
			sub := protoReader{b: body}
			for !sub.done() {
				n, w, err := sub.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case sampleLocationID:
					if s.locs, err = sub.varints(w, s.locs); err != nil {
						return nil, err
					}
				case sampleValue:
					if s.vals, err = sub.varints(w, s.vals); err != nil {
						return nil, err
					}
				default:
					if err := sub.skip(w); err != nil {
						return nil, err
					}
				}
			}
			rawSamples = append(rawSamples, s)
		case profLocation:
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			var id, fn uint64
			sub := protoReader{b: body}
			for !sub.done() {
				n, w, err := sub.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case locID:
					if id, err = sub.varint(); err != nil {
						return nil, err
					}
				case locLine:
					line, err := sub.bytes()
					if err != nil {
						return nil, err
					}
					ls := protoReader{b: line}
					for !ls.done() {
						ln, lw, err := ls.field()
						if err != nil {
							return nil, err
						}
						if ln == lineFunctionID && fn == 0 {
							if fn, err = ls.varint(); err != nil {
								return nil, err
							}
						} else if err := ls.skip(lw); err != nil {
							return nil, err
						}
					}
				default:
					if err := sub.skip(w); err != nil {
						return nil, err
					}
				}
			}
			locFn[id] = fn
		case profFunction:
			body, err := r.bytes()
			if err != nil {
				return nil, err
			}
			var id, name uint64
			sub := protoReader{b: body}
			for !sub.done() {
				n, w, err := sub.field()
				if err != nil {
					return nil, err
				}
				switch n {
				case funcID:
					if id, err = sub.varint(); err != nil {
						return nil, err
					}
				case funcName:
					if name, err = sub.varint(); err != nil {
						return nil, err
					}
				case funcFilename:
					if fnFileIdx, err = sub.varint(); err != nil {
						return nil, err
					}
				default:
					if err := sub.skip(w); err != nil {
						return nil, err
					}
				}
			}
			fnNameIdx[id] = name
		case profStringTable:
			s, err := r.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(s))
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	cyclesAt, instrsAt := -1, -1
	for i, vt := range sampleTypes {
		switch str(vt[0]) {
		case "cycles":
			cyclesAt = i
		case "instructions":
			instrsAt = i
		}
	}
	if cyclesAt < 0 && len(sampleTypes) > 0 {
		cyclesAt = 0
	}
	prof := NewProfile(str(fnFileIdx))
	for _, s := range rawSamples {
		stack := make([]string, len(s.locs))
		for i, loc := range s.locs { // leaf first on the wire
			stack[len(s.locs)-1-i] = str(fnNameIdx[locFn[loc]])
		}
		var cycles, instrs int64
		if cyclesAt >= 0 && cyclesAt < len(s.vals) {
			cycles = int64(s.vals[cyclesAt])
		}
		if instrsAt >= 0 && instrsAt < len(s.vals) {
			instrs = int64(s.vals[instrsAt])
		}
		prof.add(stack, cycles, instrs)
	}
	return prof, nil
}
