package workloads

import (
	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
)

func init() {
	register(&Workload{
		Name:  "racey",
		Kind:  "micro",
		Racy:  true,
		Desc:  "intentional data races: unlocked read-modify-write on hot counters and scattered array cells, mixed with locked work",
		Build: buildRacey,
	})
}

// buildRacey hammers shared state without synchronisation so that the
// thread-parallel and epoch-parallel executions frequently disagree —
// the workload behind the divergence/forward-recovery experiments. It has
// no meaningful self-check (the result is inherently nondeterministic);
// the OK cell reports only that all threads finished.
func buildRacey(p Params) *Built {
	p = p.norm()
	iters := 2500 * p.Scale
	const cells = 64

	b := asm.NewBuilder("racey")
	okCell := b.Words(0)
	counter := b.Words(0)
	lockedCounter := b.Words(0)
	arr := b.Zeros(cells)
	doneCtr := b.Words(0)

	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		one := w.Const(1)
		lk := w.Const(3)
		ctrA := w.Const(counter)
		lctrA := w.Const(lockedCounter)
		arrA := w.Const(arr)
		doneA := w.Const(doneCtr)
		i, t, x, idx, c := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()

		// Per-worker LCG for cell selection.
		w.Muli(x, k, 2_654_435_761)
		w.Addi(x, x, 40_503)

		w.Movi(i, 0)
		w.ForLtImm(i, Word(iters), func() {
			// Racy increment of the hot counter.
			w.Ld(t, ctrA, 0)
			w.Addi(t, t, 1)
			w.St(ctrA, 0, t)

			// Racy read-modify-write of a pseudorandom cell.
			w.Muli(x, x, 6364136223846793005)
			w.Addi(x, x, 1442695040888963407)
			w.Shri(idx, x, 33)
			w.Andi(idx, idx, cells-1)
			w.Ldx(t, arrA, idx)
			w.Add(t, t, x)
			w.Stx(arrA, idx, t)

			// Locked work interleaved, every 8th iteration.
			w.Andi(c, i, 7)
			w.Seqi(c, c, 0)
			w.IfNz(c, func() {
				w.LockR(lk)
				w.Ld(t, lctrA, 0)
				w.Addi(t, t, 1)
				w.St(lctrA, 0, t)
				w.UnlockR(lk)
			})
		})
		w.Fadd(t, doneA, one)
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		got, c := m.Reg(), m.Reg()
		doneA := m.Const(doneCtr)
		m.Ld(got, doneA, 0)
		m.Seqi(c, got, Word(p.Workers))
		okA := m.Const(okCell)
		m.St(okA, 0, c)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{
		Prog:      b.MustBuild(),
		World:     simos.NewWorld(p.Seed),
		OK:        okCell,
		RacyAddrs: []Word{counter, arr, arr + cells - 1},
	}
}
