package workloads

import (
	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
)

func init() {
	register(&Workload{
		Name:  "fft",
		Kind:  "scientific",
		Desc:  "SPLASH-style FFT: parallel iterative number-theoretic transform with a barrier per stage; exact self-inverse check",
		Build: buildFFT,
	})
}

// NTT parameters: p = 998244353 = 119*2^23 + 1, primitive root 3.
const (
	nttMod  = 998244353
	nttRoot = 3
)

func modpow(b, e, m int64) int64 {
	r := int64(1)
	b %= m
	for e > 0 {
		if e&1 == 1 {
			r = r * b % m
		}
		b = b * b % m
		e >>= 1
	}
	return r
}

// buildFFT runs the transform twice: NTT(NTT(a))[k] == n * a[(n-k) mod n],
// an exact identity over the ring, so the guest can verify its own result
// with no floating point and no host mirror.
func buildFFT(p Params) *Built {
	p = p.norm()
	logn := 11 + (p.Scale-1)%3 // n = 2048 by default
	n := 1 << logn

	rng := newRNG(p.Seed + 31)
	orig := make([]Word, n)
	for i := range orig {
		orig[i] = rng.word(nttMod)
	}

	// Host-precomputed tables: bit-reversal permutation and per-stage
	// twiddle factors laid out stage-major.
	rev := make([]Word, n)
	for i := 0; i < n; i++ {
		r := 0
		for bit := 0; bit < logn; bit++ {
			if i&(1<<bit) != 0 {
				r |= 1 << (logn - 1 - bit)
			}
		}
		rev[i] = Word(r)
	}
	// tw[s*?]: for stage s (len = 2<<s), twiddles w^j for j < len/2.
	var tw []Word
	twOff := make([]Word, logn)
	for s := 0; s < logn; s++ {
		length := 2 << s
		wl := modpow(nttRoot, (nttMod-1)/int64(length), nttMod)
		twOff[s] = Word(len(tw))
		w := int64(1)
		for j := 0; j < length/2; j++ {
			tw = append(tw, Word(w))
			w = w * wl % nttMod
		}
	}
	ninv := Word(modpow(int64(n), nttMod-2, nttMod))

	b := asm.NewBuilder("fft")
	failCell := b.Words(0)
	okCell := b.Words(0)
	origBase := b.Words(orig...)
	workBase := b.Words(orig...) // working copy, transformed in place
	revBase := b.Words(rev...)
	twBase := b.Words(tw...)
	twOffBase := b.Words(twOff...)
	W := Word(p.Workers)
	const barID = 77

	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		one := w.Const(1)
		nths := w.Const(W)
		bar := w.Const(barID)
		workA := w.Const(workBase)
		revA := w.Const(revBase)
		twA := w.Const(twBase)
		twOffA := w.Const(twOffBase)
		failA := w.Const(failCell)
		origA := w.Const(origBase)

		lo, hi, i, j, t, c := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		u, v, wreg, i1, i2, half, block := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		base, stage := w.Reg(), w.Reg()

		// Range helper: this worker owns indices [lo, hi) of a total-sized
		// iteration space.
		span := func(total Word) {
			w.Muli(t, k, total)
			w.Divi(lo, t, W)
			w.Addi(t, k, 1)
			w.Muli(t, t, total)
			w.Divi(hi, t, W)
		}

		pass := func() {
			// Bit-reversal permutation: swap i <-> rev[i] for i < rev[i],
			// split by index range.
			span(Word(n))
			w.Mov(i, lo)
			w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
				w.Ldx(j, revA, i)
				w.Slt(c, i, j)
				w.IfNz(c, func() {
					w.Ldx(u, workA, i)
					w.Ldx(v, workA, j)
					w.Stx(workA, i, v)
					w.Stx(workA, j, u)
				})
				w.Addi(i, i, 1)
			})
			w.Barrier(bar, nths)

			// Stages: n/2 butterflies each, split by butterfly index.
			w.Movi(stage, 0)
			w.ForLtImm(stage, Word(logn), func() {
				// half = 1 << stage
				w.Movi(half, 1)
				w.Shl(half, half, stage)
				w.Ldx(base, twOffA, stage)
				span(Word(n / 2))
				w.Mov(i, lo)
				w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
					// block = i / half ; j = i % half
					w.Div(block, i, half)
					w.Mod(j, i, half)
					// i1 = block*2*half + j ; i2 = i1 + half
					w.Mul(t, block, half)
					w.Muli(t, t, 2)
					w.Add(i1, t, j)
					w.Add(i2, i1, half)
					w.Add(t, base, j)
					w.Ldx(wreg, twA, t)
					w.Ldx(u, workA, i1)
					w.Ldx(v, workA, i2)
					w.Mul(v, v, wreg)
					w.Modi(v, v, nttMod)
					// work[i1] = (u+v) mod p ; work[i2] = (u-v+p) mod p
					w.Add(t, u, v)
					w.Modi(t, t, nttMod)
					w.Stx(workA, i1, t)
					w.Sub(t, u, v)
					w.Addi(t, t, nttMod)
					w.Modi(t, t, nttMod)
					w.Stx(workA, i2, t)
					w.Addi(i, i, 1)
				})
				w.Barrier(bar, nths)
			})
		}

		pass()
		pass()

		// Verify: work[m] * ninv == orig[(n-m) mod n] over this worker's range.
		span(Word(n))
		w.Mov(i, lo)
		w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
			w.Ldx(u, workA, i)
			w.Muli(u, u, ninv)
			w.Modi(u, u, nttMod)
			// j = (n - i) mod n
			w.Movi(t, Word(n))
			w.Sub(j, t, i)
			w.Modi(j, j, Word(n))
			w.Ldx(v, origA, j)
			w.Sne(c, u, v)
			w.IfNz(c, func() { w.St(failA, 0, one) })
			w.Addi(i, i, 1)
		})
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		f, ok := m.Reg(), m.Reg()
		failA := m.Const(failCell)
		m.Ld(f, failA, 0)
		m.Seqi(ok, f, 0)
		okA := m.Const(okCell)
		m.St(okA, 0, ok)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: simos.NewWorld(p.Seed), OK: okCell}
}
