package workloads

import (
	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
)

func init() {
	register(&Workload{
		Name:  "radix",
		Kind:  "scientific",
		Desc:  "SPLASH-style radix sort: per-worker histograms, serial prefix phase, parallel scatter, barrier-synchronised passes",
		Build: buildRadix,
	})
}

// buildRadix sorts nElems 24-bit keys with three 8-bit passes. Each pass:
// per-worker histogram over its input segment; worker 0 computes global
// (digit, worker) offsets; workers scatter their segments stably. The guest
// verifies sortedness and a permutation checksum.
func buildRadix(p Params) *Built {
	p = p.norm()
	nElems := 10000 * p.Scale
	const radix = 256
	const passes = 3

	rng := newRNG(p.Seed + 51)
	input := make([]Word, nElems)
	var checksum Word
	for i := range input {
		input[i] = rng.word(1 << 24)
		checksum += input[i] ^ (input[i] >> 7)
	}

	b := asm.NewBuilder("radix")
	failCell := b.Words(0)
	okCell := b.Words(0)
	bufA := b.Words(input...)
	bufB := b.Zeros(nElems)
	// hist[w][d]: per-worker digit counts; off[w][d]: scatter cursors.
	histBase := b.Zeros(p.Workers * radix)
	offBase := b.Zeros(p.Workers * radix)
	W := Word(p.Workers)
	const barID = 66

	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		one := w.Const(1)
		nths := w.Const(W)
		bar := w.Const(barID)
		aA := w.Const(bufA)
		bA := w.Const(bufB)
		histA := w.Const(histBase)
		offA := w.Const(offBase)
		failA := w.Const(failCell)
		src, dst, tmp := w.Reg(), w.Reg(), w.Reg()
		lo, hi, i, c, t, v, d := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		myHist, myOff, pass, shift := w.Reg(), w.Reg(), w.Reg(), w.Reg()
		wi, di, run := w.Reg(), w.Reg(), w.Reg()

		// lo/hi = this worker's element range.
		w.Muli(t, k, Word(nElems))
		w.Divi(lo, t, W)
		w.Addi(t, k, 1)
		w.Muli(t, t, Word(nElems))
		w.Divi(hi, t, W)
		w.Muli(myHist, k, radix)
		w.Add(myHist, myHist, histA)
		w.Muli(myOff, k, radix)
		w.Add(myOff, myOff, offA)

		w.Mov(src, aA)
		w.Mov(dst, bA)

		w.Movi(pass, 0)
		w.ForLtImm(pass, passes, func() {
			w.Muli(shift, pass, 8)

			// Clear my histogram.
			w.Movi(i, 0)
			w.ForLtImm(i, radix, func() {
				t0 := w.Reg()
				w.Movi(t0, 0)
				w.Stx(myHist, i, t0)
			})
			// Count digits over my segment.
			w.Mov(i, lo)
			w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
				w.Ldx(v, src, i)
				w.Shr(d, v, shift)
				w.Andi(d, d, radix-1)
				w.Ldx(t, myHist, d)
				w.Addi(t, t, 1)
				w.Stx(myHist, d, t)
				w.Addi(i, i, 1)
			})
			w.Barrier(bar, nths)

			// Worker 0 computes global offsets: for digit d ascending, for
			// worker wi ascending, off[wi][d] = running total.
			w.Seqi(c, k, 0)
			w.IfNz(c, func() {
				w.Movi(run, 0)
				w.Movi(di, 0)
				w.ForLtImm(di, radix, func() {
					w.Movi(wi, 0)
					w.ForLtImm(wi, W, func() {
						w.Muli(t, wi, radix)
						w.Add(t, t, di)
						w.Ldx(v, histA, t)
						w.Stx(offA, t, run)
						w.Add(run, run, v)
					})
				})
			})
			w.Barrier(bar, nths)

			// Stable scatter of my segment using my offset cursors.
			w.Mov(i, lo)
			w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
				w.Ldx(v, src, i)
				w.Shr(d, v, shift)
				w.Andi(d, d, radix-1)
				w.Ldx(t, myOff, d)
				w.Stx(dst, t, v)
				w.Addi(t, t, 1)
				w.Stx(myOff, d, t)
				w.Addi(i, i, 1)
			})
			w.Barrier(bar, nths)

			// Swap src/dst for the next pass.
			w.Mov(tmp, src)
			w.Mov(src, dst)
			w.Mov(dst, tmp)
		})

		// Verification over my range of the final array (odd pass count
		// means the result lives in src after the last swap): adjacent
		// order plus the permutation checksum.
		sum := w.Reg()
		w.Movi(sum, 0)
		w.Mov(i, lo)
		w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
			w.Ldx(v, src, i)
			w.Shri(t, v, 7)
			w.Xor(t, v, t)
			w.Add(sum, sum, t)
			w.Slti(c, i, Word(nElems-1))
			w.IfNz(c, func() {
				w.Addi(t, i, 1)
				w.Ldx(d, src, t)
				w.Slt(c, d, v)
				w.IfNz(c, func() { w.St(failA, 0, one) })
			})
			w.Addi(i, i, 1)
		})
		// Publish partial checksum into hist[k][0] (reused as scratch).
		w.St(myHist, 0, sum)
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		sum, i, v, c, t, f := m.Reg(), m.Reg(), m.Reg(), m.Reg(), m.Reg(), m.Reg()
		histA := m.Const(histBase)
		m.Movi(sum, 0)
		m.Movi(i, 0)
		m.ForLtImm(i, W, func() {
			m.Muli(t, i, radix)
			m.Ldx(v, histA, t)
			m.Add(sum, sum, v)
		})
		m.Movi(c, 0)
		m.Seqi(c, sum, checksum)
		failA := m.Const(failCell)
		m.Ld(f, failA, 0)
		m.IfNz(f, func() { m.Movi(c, 0) })
		okA := m.Const(okCell)
		m.St(okA, 0, c)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: simos.NewWorld(p.Seed), OK: okCell}
}
