package workloads

import (
	"fmt"

	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
)

func init() {
	register(&Workload{
		Name:  "pbzip",
		Kind:  "client",
		Desc:  "parallel block compressor: work-queue of blocks, RLE compress, verify by decompression, commit output",
		Build: buildPbzip,
	})
	register(&Workload{
		Name:  "pfscan",
		Kind:  "client",
		Desc:  "parallel file scanner: work-queue of files read through the VFS, counting pattern occurrences",
		Build: buildPfscan,
	})
	register(&Workload{
		Name:  "aget",
		Kind:  "client",
		Desc:  "parallel range downloader: workers fetch disjoint ranges of a remote resource over a latency-bound link",
		Build: buildAget,
	})
}

// --- pbzip -------------------------------------------------------------------

func buildPbzip(p Params) *Built {
	p = p.norm()
	nblocks := 80 + 80*p.Scale
	const blockW = 480
	slotW := 2*blockW + 1 // [len, (value,run)...] worst case 2x expansion

	// Input with runs so RLE has work to do.
	rng := newRNG(p.Seed)
	input := make([]Word, 0, nblocks*blockW)
	for len(input) < nblocks*blockW {
		v := rng.word(8)
		run := 1 + rng.intn(20)
		for r := 0; r < run && len(input) < nblocks*blockW; r++ {
			input = append(input, v)
		}
	}

	b := asm.NewBuilder("pbzip")
	next := b.Words(0)
	fail := b.Words(0)
	okCell := b.Words(0)
	inBase := b.Words(input...)
	outBase := b.Zeros(nblocks * slotW)

	w := b.Func("worker", 1)
	{
		blk := w.Reg()
		one := w.Const(1)
		nextA := w.Const(next)
		failA := w.Const(fail)
		zero := w.Const(0)
		inPtr, outPtr, slotPtr := w.Reg(), w.Reg(), w.Reg()
		i, n, v, run, t, u, c := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		j, i2, k := w.Reg(), w.Reg(), w.Reg()

		loop, done := w.NewLabel(), w.NewLabel()
		w.Label(loop)
		w.Fadd(blk, nextA, one)
		w.Slti(c, blk, Word(nblocks))
		w.Jz(c, done)

		w.Muli(t, blk, blockW)
		w.Addi(inPtr, t, inBase)
		w.Muli(t, blk, Word(slotW))
		w.Addi(slotPtr, t, outBase)
		w.Addi(outPtr, slotPtr, 1)

		// RLE compress the block.
		w.Movi(i, 0)
		w.Movi(n, 0)
		w.While(func() asm.Reg { w.Slti(c, i, blockW); return c }, func() {
			w.Ldx(v, inPtr, i)
			w.Movi(run, 1)
			w.While(func() asm.Reg {
				w.Add(t, i, run)
				w.Slti(c, t, blockW)
				w.IfNz(c, func() {
					w.Ldx(u, inPtr, t)
					w.Seq(c, u, v)
					w.IfNz(c, func() { w.Slti(c, run, 255) })
				})
				return c
			}, func() {
				w.Addi(run, run, 1)
			})
			w.Stx(outPtr, n, v)
			w.Addi(t, n, 1)
			w.Stx(outPtr, t, run)
			w.Addi(n, n, 2)
			w.Add(i, i, run)
		})
		w.St(slotPtr, 0, n)

		// Verify: decompress and compare against the input block.
		w.Movi(j, 0)
		w.Movi(i2, 0)
		w.While(func() asm.Reg { w.Slt(c, j, n); return c }, func() {
			w.Ldx(v, outPtr, j)
			w.Addi(t, j, 1)
			w.Ldx(run, outPtr, t)
			w.Movi(k, 0)
			w.ForLt(k, run, func() {
				w.Add(t, i2, k)
				w.Ldx(u, inPtr, t)
				w.Sne(c, u, v)
				w.IfNz(c, func() { w.St(failA, 0, one) })
			})
			w.Add(i2, i2, run)
			w.Addi(j, j, 2)
		})
		w.Snei(c, i2, blockW)
		w.IfNz(c, func() { w.St(failA, 0, one) })

		// Commit the compressed block externally.
		w.Sys(simos.SysWrite, zero, outPtr, n)
		w.Jump(loop)

		w.Label(done)
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		allok := m.Const(1)
		c := m.Reg()
		t := m.Reg()
		failA := m.Const(fail)
		m.Ld(c, failA, 0)
		m.IfNz(c, func() { m.Movi(allok, 0) })
		// Every slot must have been produced (length >= 2).
		blk := m.Reg()
		outA := m.Const(outBase)
		ln := m.Reg()
		m.Movi(blk, 0)
		m.ForLtImm(blk, Word(nblocks), func() {
			m.Muli(t, blk, Word(slotW))
			m.Ldx(ln, outA, t)
			m.Slti(c, ln, 2)
			m.IfNz(c, func() { m.Movi(allok, 0) })
		})
		okA := m.Const(okCell)
		m.St(okA, 0, allok)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: simos.NewWorld(p.Seed), OK: okCell}
}

// --- pfscan ------------------------------------------------------------------

func buildPfscan(p Params) *Built {
	p = p.norm()
	nfiles := 32 + 32*p.Scale
	fileW := 2400
	const pattern = 42
	const chunk = 200

	rng := newRNG(p.Seed + 7)
	world := simos.NewWorld(p.Seed)
	expected := 0
	names := make([]string, nfiles)
	for fi := 0; fi < nfiles; fi++ {
		data := make([]Word, fileW)
		for i := range data {
			data[i] = rng.word(64)
			if data[i] == pattern {
				expected++
			}
		}
		names[fi] = fmt.Sprintf("f%03d", fi)
		world.AddFile(names[fi], data)
	}

	b := asm.NewBuilder("pfscan")
	next := b.Words(0)
	total := b.Words(0)
	fail := b.Words(0)
	okCell := b.Words(0)
	// Name table: (addr, len) pairs.
	nameRefs := make([]Word, 0, 2*nfiles)
	for _, nm := range names {
		addr, ln := b.Str(nm)
		nameRefs = append(nameRefs, addr, ln)
	}
	nameTab := b.Words(nameRefs...)

	w := b.Func("worker", 1)
	{
		fi, c, t := w.Reg(), w.Reg(), w.Reg()
		one := w.Const(1)
		nextA := w.Const(next)
		failA := w.Const(fail)
		totalA := w.Const(total)
		tabA := w.Const(nameTab)
		buf := w.Reg()
		nbuf := w.Const(chunk)
		nameAddr, nameLen, fd, n, i, u, cnt := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()

		w.Sys(simos.SysAlloc, nbuf)
		w.Mov(buf, asm.RetReg)

		loop, done := w.NewLabel(), w.NewLabel()
		w.Label(loop)
		w.Fadd(fi, nextA, one)
		w.Slti(c, fi, Word(nfiles))
		w.Jz(c, done)

		w.Muli(t, fi, 2)
		w.Ldx(nameAddr, tabA, t)
		w.Addi(t, t, 1)
		w.Ldx(nameLen, tabA, t)
		w.Sys(simos.SysOpen, nameAddr, nameLen)
		w.Mov(fd, asm.RetReg)
		w.Slti(c, fd, 0)
		w.IfNz(c, func() { w.St(failA, 0, one) })

		w.Movi(cnt, 0)
		w.While(func() asm.Reg {
			w.Sys(simos.SysRead, fd, buf, nbuf)
			w.Mov(n, asm.RetReg)
			w.Snei(c, n, 0)
			return c
		}, func() {
			w.Movi(i, 0)
			w.ForLt(i, n, func() {
				w.Ldx(u, buf, i)
				w.Seqi(c, u, pattern)
				w.IfNz(c, func() { w.Addi(cnt, cnt, 1) })
			})
		})
		w.Sys(simos.SysClose, fd)
		w.Fadd(t, totalA, cnt)
		w.Jump(loop)

		w.Label(done)
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		got, c, f := m.Reg(), m.Reg(), m.Reg()
		totalA := m.Const(total)
		failA := m.Const(fail)
		m.Ld(got, totalA, 0)
		m.Seqi(c, got, Word(expected))
		m.Ld(f, failA, 0)
		m.IfNz(f, func() { m.Movi(c, 0) })
		okA := m.Const(okCell)
		m.St(okA, 0, c)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: world, OK: okCell}
}

// --- aget --------------------------------------------------------------------

func buildAget(p Params) *Built {
	p = p.norm()
	srcW := 60000 * p.Scale
	const chunk = 160
	const latency = 250

	rng := newRNG(p.Seed + 13)
	src := make([]Word, srcW)
	var expect Word
	for i := range src {
		src[i] = rng.word(1 << 20)
		expect += src[i] * Word(i%97+1)
	}
	world := simos.NewWorld(p.Seed)
	world.SetFetchSource(src, latency)

	b := asm.NewBuilder("aget")
	dstCell := b.Words(0)
	fail := b.Words(0)
	okCell := b.Words(0)
	workers := Word(p.Workers)

	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		ln, lo, hi, i, n, c, t, dst := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		one := w.Const(1)
		failA := w.Const(fail)
		dstA := w.Const(dstCell)

		w.Ld(dst, dstA, 0)
		w.Sys(simos.SysFetchLen)
		w.Mov(ln, asm.RetReg)
		// lo = k*len/W ; hi = (k+1)*len/W
		w.Mul(t, k, ln)
		w.Divi(lo, t, workers)
		w.Addi(t, k, 1)
		w.Mul(t, t, ln)
		w.Divi(hi, t, workers)

		w.Mov(i, lo)
		w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
			// n = min(chunk, hi-i)
			w.Sub(n, hi, i)
			w.Slti(c, n, chunk)
			w.IfZ(c, func() { w.Movi(n, chunk) })
			w.Add(t, dst, i)
			w.Sys(simos.SysFetch, i, n, t)
			w.Seq(c, asm.RetReg, n)
			w.IfZ(c, func() { w.St(failA, 0, one) })
			w.Add(i, i, n)
		})
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		dst, t := m.Reg(), m.Reg()
		n := m.Const(Word(srcW))
		m.Sys(simos.SysAlloc, n)
		m.Mov(dst, asm.RetReg)
		dstA := m.Const(dstCell)
		m.St(dstA, 0, dst)

		spawnJoin(m, p.Workers, "worker")

		// checksum = Σ dst[i] * (i%97+1)
		sum, i, v := m.Reg(), m.Reg(), m.Reg()
		m.Movi(sum, 0)
		m.Movi(i, 0)
		m.ForLtImm(i, Word(srcW), func() {
			m.Ldx(v, dst, i)
			m.Modi(t, i, 97)
			m.Addi(t, t, 1)
			m.Mul(v, v, t)
			m.Add(sum, sum, v)
		})
		ok := m.Reg()
		m.Seqi(ok, sum, expect)
		f := m.Reg()
		failA := m.Const(fail)
		m.Ld(f, failA, 0)
		m.IfNz(f, func() { m.Movi(ok, 0) })
		okA := m.Const(okCell)
		m.St(okA, 0, ok)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: world, OK: okCell}
}
