package workloads

import (
	"fmt"

	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
)

func init() {
	register(&Workload{
		Name:  "webserve",
		Kind:  "server",
		Desc:  "threaded web server: worker pool accepts scripted connections, serves files from the VFS, lock-protected stats",
		Build: func(p Params) *Built { return buildWebserve(p, false) },
	})
	register(&Workload{
		Name:  "webserve-racy",
		Kind:  "micro",
		Racy:  true,
		Desc:  "webserve with an unsynchronised hit counter: a low-rate data race on a hot cell",
		Build: func(p Params) *Built { return buildWebserve(p, true) },
	})
	register(&Workload{
		Name:  "kvdb",
		Kind:  "server",
		Desc:  "transactional KV store: lock-striped hash table, per-thread transaction mix, batched WAL commits",
		Build: buildKvdb,
	})
}

// --- webserve ----------------------------------------------------------------

func buildWebserve(p Params, racy bool) *Built {
	p = p.norm()
	nfiles := 8
	nconns := 40 + 40*p.Scale
	reqsPerConn := 6
	totalReqs := nconns * reqsPerConn

	rng := newRNG(p.Seed + 21)
	world := simos.NewWorld(p.Seed)
	names := make([]string, nfiles)
	sizes := make([]int, nfiles)
	for fi := 0; fi < nfiles; fi++ {
		sz := 80 + rng.intn(240)
		data := make([]Word, sz)
		for i := range data {
			data[i] = rng.word(1 << 16)
		}
		names[fi] = fmt.Sprintf("doc%d", fi)
		sizes[fi] = sz
		world.AddFile(names[fi], data)
	}
	// Scripted clients: staggered arrivals, each issuing several requests
	// with think time between them.
	at := int64(400)
	for c := 0; c < nconns; c++ {
		reqs := make([]simos.Request, reqsPerConn)
		rt := at
		for r := range reqs {
			reqs[r] = simos.Request{AvailAt: rt, Data: []Word{Word(rng.intn(nfiles))}}
			rt += int64(150 + rng.intn(250))
		}
		world.AddConn(at, reqs)
		at += int64(150 + rng.intn(300))
	}

	b := asm.NewBuilder("webserve")
	if racy {
		b = asm.NewBuilder("webserve-racy")
	}
	served := b.Words(0)
	bytesServed := b.Words(0)
	racyHits := b.Words(0)
	fail := b.Words(0)
	okCell := b.Words(0)
	nameRefs := make([]Word, 0, 2*nfiles)
	for _, nm := range names {
		addr, ln := b.Str(nm)
		nameRefs = append(nameRefs, addr, ln)
	}
	nameTab := b.Words(nameRefs...)
	const statsLock = 5

	w := b.Func("worker", 1)
	{
		one := w.Const(1)
		lfd := w.Const(0)
		lk := w.Const(statsLock)
		failA := w.Const(fail)
		servedA := w.Const(served)
		bytesA := w.Const(bytesServed)
		racyA := w.Const(racyHits)
		tabA := w.Const(nameTab)
		cfd, n, fi, fd, size, off, r, c, t := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		nameAddr, nameLen := w.Reg(), w.Reg()
		reqBuf, buf := w.Reg(), w.Reg()
		chunk := w.Const(96)

		w.Sys(simos.SysAlloc, w.Const(4))
		w.Mov(reqBuf, asm.RetReg)
		w.Sys(simos.SysAlloc, w.Const(400))
		w.Mov(buf, asm.RetReg)

		w.Sys(simos.SysListen)

		acceptLoop, done := w.NewLabel(), w.NewLabel()
		w.Label(acceptLoop)
		w.Sys(simos.SysAccept, lfd)
		w.Mov(cfd, asm.RetReg)
		w.Slti(c, cfd, 0)
		w.Jnz(c, done)

		// Serve every request on this connection.
		w.While(func() asm.Reg {
			w.Sys(simos.SysRecv, cfd, reqBuf, one)
			w.Mov(n, asm.RetReg)
			w.Snei(c, n, 0)
			return c
		}, func() {
			w.Ld(fi, reqBuf, 0)
			w.Muli(t, fi, 2)
			w.Ldx(nameAddr, tabA, t)
			w.Addi(t, t, 1)
			w.Ldx(nameLen, tabA, t)
			w.Sys(simos.SysOpen, nameAddr, nameLen)
			w.Mov(fd, asm.RetReg)
			w.Slti(c, fd, 0)
			w.IfNz(c, func() { w.St(failA, 0, one) })
			w.Sys(simos.SysFileSize, fd)
			w.Mov(size, asm.RetReg)
			// Read the whole file into buf.
			w.Movi(off, 0)
			w.While(func() asm.Reg {
				w.Add(t, buf, off)
				w.Sys(simos.SysRead, fd, t, chunk)
				w.Mov(r, asm.RetReg)
				w.Add(off, off, r)
				w.Snei(c, r, 0)
				return c
			}, func() {})
			w.Sys(simos.SysClose, fd)
			w.Sne(c, off, size)
			w.IfNz(c, func() { w.St(failA, 0, one) })
			// Build the response: checksum the body (models header
			// generation, encoding, etc.) before sending it.
			sum := w.Reg()
			i := w.Reg()
			v := w.Reg()
			w.Movi(sum, 0)
			w.Movi(i, 0)
			w.ForLt(i, size, func() {
				w.Ldx(v, buf, i)
				w.Xor(sum, sum, v)
				w.Shli(v, v, 3)
				w.Add(sum, sum, v)
			})
			w.Stx(buf, size, sum) // not sent; keeps the checksum live
			w.Sys(simos.SysSend, cfd, buf, size)

			if racy {
				// Intentional race: read-modify-write without the lock.
				w.Ld(t, racyA, 0)
				w.Addi(t, t, 1)
				w.St(racyA, 0, t)
			}
			w.LockR(lk)
			w.Ld(t, servedA, 0)
			w.Addi(t, t, 1)
			w.St(servedA, 0, t)
			w.Ld(t, bytesA, 0)
			w.Add(t, t, size)
			w.St(bytesA, 0, t)
			w.UnlockR(lk)
		})
		w.Jump(acceptLoop)

		w.Label(done)
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		got, c, f := m.Reg(), m.Reg(), m.Reg()
		servedA := m.Const(served)
		failA := m.Const(fail)
		m.Ld(got, servedA, 0)
		m.Seqi(c, got, Word(totalReqs))
		m.Ld(f, failA, 0)
		m.IfNz(f, func() { m.Movi(c, 0) })
		okA := m.Const(okCell)
		m.St(okA, 0, c)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	bt := &Built{Prog: b.MustBuild(), World: world, OK: okCell}
	if racy {
		bt.RacyAddrs = []Word{racyHits}
	}
	return bt
}

// --- kvdb --------------------------------------------------------------------

func buildKvdb(p Params) *Built {
	p = p.norm()
	const (
		buckets  = 24
		slots    = 24
		keyspace = 192
		lockBase = 1000
		walCap   = 16
	)
	opsPerWorker := 2400 * p.Scale / p.Workers

	b := asm.NewBuilder("kvdb")
	expectedSum := b.Words(0)
	fail := b.Words(0)
	okCell := b.Words(0)
	table := b.Zeros(buckets * slots * 2)

	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		one := w.Const(1)
		failA := w.Const(fail)
		expA := w.Const(expectedSum)
		tabA := w.Const(table)
		x, key, delta, bkt, lockID, base := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		s, kk, found, c, t, localSum := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		wal, walN := w.Reg(), w.Reg()
		op := w.Reg()
		walSink := w.Const(1)

		w.Sys(simos.SysAlloc, w.Const(walCap+2))
		w.Mov(wal, asm.RetReg)
		w.Movi(walN, 0)
		w.Movi(localSum, 0)

		// Per-worker LCG seed.
		w.Muli(x, k, 1_234_567)
		w.Addi(x, x, 987_653)

		lcg := func() {
			w.Muli(x, x, 6364136223846793005)
			w.Addi(x, x, 1442695040888963407)
		}

		w.Movi(op, 0)
		w.ForLtImm(op, Word(opsPerWorker), func() {
			lcg()
			w.Shri(t, x, 17)
			w.Andi(t, t, 0x7fffffff)
			w.Modi(key, t, keyspace)
			lcg()
			w.Andi(t, x, 0xffff)
			w.Modi(delta, t, 100)
			w.Addi(delta, delta, 1)

			w.Modi(bkt, key, buckets)
			w.Addi(lockID, bkt, lockBase)
			w.Muli(base, bkt, slots*2)
			w.Add(base, base, tabA)

			w.LockR(lockID)
			// Update existing key or insert into the first empty slot.
			w.Movi(found, 0)
			w.Movi(s, 0)
			w.ForLtImm(s, slots, func() {
				w.IfZ(found, func() {
					w.Muli(t, s, 2)
					w.Ldx(kk, base, t)
					w.Addi(c, key, 1)
					w.Seq(c, kk, c)
					w.IfNz(c, func() {
						w.Muli(t, s, 2)
						w.Addi(t, t, 1)
						w.Ldx(kk, base, t)
						w.Add(kk, kk, delta)
						w.Stx(base, t, kk)
						w.Movi(found, 1)
					})
				})
			})
			w.IfZ(found, func() {
				w.Movi(s, 0)
				w.ForLtImm(s, slots, func() {
					w.IfZ(found, func() {
						w.Muli(t, s, 2)
						w.Ldx(kk, base, t)
						w.Seqi(c, kk, 0)
						w.IfNz(c, func() {
							w.Addi(kk, key, 1)
							w.Stx(base, t, kk)
							w.Addi(t, t, 1)
							w.Stx(base, t, delta)
							w.Movi(found, 1)
						})
					})
				})
			})
			w.IfZ(found, func() { w.St(failA, 0, one) })
			w.UnlockR(lockID)

			w.Add(localSum, localSum, delta)

			// WAL append; commit the batch when full.
			w.Stx(wal, walN, key)
			w.Addi(walN, walN, 1)
			w.Stx(wal, walN, delta)
			w.Addi(walN, walN, 1)
			w.Slti(c, walN, walCap)
			w.IfZ(c, func() {
				w.Sys(simos.SysWrite, walSink, wal, walN)
				w.Movi(walN, 0)
			})
		})
		// Flush the WAL tail and publish this worker's contribution.
		w.Slti(c, walN, 1)
		w.IfZ(c, func() { w.Sys(simos.SysWrite, walSink, wal, walN) })
		w.Fadd(t, expA, localSum)
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		sum, i, v, c, t := m.Reg(), m.Reg(), m.Reg(), m.Reg(), m.Reg()
		tabA := m.Const(table)
		m.Movi(sum, 0)
		m.Movi(i, 0)
		m.ForLtImm(i, buckets*slots, func() {
			m.Muli(t, i, 2)
			m.Addi(t, t, 1)
			m.Ldx(v, tabA, t)
			m.Add(sum, sum, v)
		})
		want, f := m.Reg(), m.Reg()
		expA := m.Const(expectedSum)
		m.Ld(want, expA, 0)
		m.Seq(c, sum, want)
		failA := m.Const(fail)
		m.Ld(f, failA, 0)
		m.IfNz(f, func() { m.Movi(c, 0) })
		okA := m.Const(okCell)
		m.St(okA, 0, c)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: simos.NewWorld(p.Seed), OK: okCell}
}
