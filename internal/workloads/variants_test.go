package workloads

import (
	"bytes"
	"testing"

	"doubleplay/internal/core"
	"doubleplay/internal/dplog"
)

func TestRegistryMetadata(t *testing.T) {
	if len(All()) < 12 {
		t.Fatalf("suite too small: %d", len(All()))
	}
	kinds := map[string]int{}
	for _, w := range All() {
		if w.Desc == "" || w.Kind == "" || w.Build == nil {
			t.Fatalf("incomplete workload %q", w.Name)
		}
		kinds[w.Kind]++
		if Get(w.Name) != w {
			t.Fatalf("Get(%q) broken", w.Name)
		}
	}
	if kinds["client"] < 3 || kinds["server"] < 2 || kinds["scientific"] < 5 {
		t.Fatalf("paper mix missing: %v", kinds)
	}
	for _, w := range RaceFree() {
		if w.Racy {
			t.Fatalf("RaceFree returned racy %q", w.Name)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

// TestOddWorkerCounts exercises worker counts the evaluation doesn't use;
// work distribution and self-checks must hold for any count.
func TestOddWorkerCounts(t *testing.T) {
	for _, name := range []string{"pbzip", "fft", "kvdb", "radix", "water"} {
		for _, workers := range []int{1, 3, 6} {
			name, workers := name, workers
			t.Run(name+"/w"+string(rune('0'+workers)), func(t *testing.T) {
				t.Parallel()
				bt := Get(name).Build(Params{Workers: workers, Seed: 31})
				res, err := core.Record(bt.Prog, bt.World, core.Options{
					Workers: workers, SpareCPUs: workers, Seed: 31,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.GuestFaults != 0 || res.Stats.Divergences != 0 {
					t.Fatalf("faults=%d div=%d", res.Stats.GuestFaults, res.Stats.Divergences)
				}
				last := res.Boundaries[len(res.Boundaries)-1]
				if err := bt.CheckOK(last.CP.MemSnap.Peek); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestScaleTwo exercises the size multiplier on a kernel and a server.
func TestScaleTwo(t *testing.T) {
	for _, name := range []string{"ocean", "kvdb"} {
		small := Get(name).Build(Params{Workers: 2, Scale: 1, Seed: 31})
		big := Get(name).Build(Params{Workers: 2, Scale: 2, Seed: 31})
		ns, err := core.RunNative(small.Prog, small.World, 2, 31, nil)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := core.RunNative(big.Prog, big.World, 2, 31, nil)
		if err != nil {
			t.Fatal(err)
		}
		if nb.Cycles <= ns.Cycles {
			t.Fatalf("%s: scale 2 not larger: %d vs %d", name, nb.Cycles, ns.Cycles)
		}
	}
}

// TestRecordingBitwiseDeterministic: the same workload, seed, and options
// must produce a byte-identical recording across runs — the property that
// makes recordings diffable artifacts.
func TestRecordingBitwiseDeterministic(t *testing.T) {
	recordBytes := func() []byte {
		bt := Get("kvdb").Build(Params{Workers: 4, Seed: 77})
		res, err := core.Record(bt.Prog, bt.World, core.Options{
			Workers: 4, SpareCPUs: 4, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		return dplog.MarshalBytes(res.Recording)
	}
	a, b := recordBytes(), recordBytes()
	if !bytes.Equal(a, b) {
		t.Fatal("recording is not bitwise deterministic")
	}
}

// TestDifferentSeedsDifferentInputs: the input generators must actually
// respond to the seed.
func TestDifferentSeedsDifferentInputs(t *testing.T) {
	a := Get("pfscan").Build(Params{Workers: 2, Seed: 1})
	b := Get("pfscan").Build(Params{Workers: 2, Seed: 2})
	ra, err := core.RunNative(a.Prog, a.World, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.RunNative(b.Prog, b.World, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra.FinalHash == rb.FinalHash {
		t.Fatal("different seeds produced identical final states")
	}
}

// TestWorkloadsAreFreshPerBuild: two builds of the same workload must not
// share mutable state (worlds or data segments).
func TestWorkloadsAreFreshPerBuild(t *testing.T) {
	w1 := Get("webserve").Build(Params{Workers: 2, Seed: 9})
	w2 := Get("webserve").Build(Params{Workers: 2, Seed: 9})
	if w1.World == w2.World {
		t.Fatal("worlds shared across builds")
	}
	// Consume w1 fully, then w2 must still run identically.
	r1, err := core.RunNative(w1.Prog, w1.World, 2, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.RunNative(w2.Prog, w2.World, 2, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalHash != r2.FinalHash {
		t.Fatal("same-seed builds diverge")
	}
}
