package workloads

import (
	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
)

func init() {
	register(&Workload{
		Name:  "water",
		Kind:  "scientific",
		Desc:  "SPLASH-style water: O(n^2) pairwise force evaluation and integration over particles, two barriers per timestep; checked against a host-mirrored result",
		Build: buildWater,
	})
}

// buildWater simulates n particles on a 1-D ring with integer linear
// "spring" forces. Positions and velocities stay exact integers (shifts and
// masks only), so the host mirrors the computation and embeds the expected
// checksum.
func buildWater(p Params) *Built {
	p = p.norm()
	n := 48 + 48*p.Scale
	steps := 10
	const mask = (1 << 24) - 1

	rng := newRNG(p.Seed + 71)
	pos := make([]Word, n)
	vel := make([]Word, n)
	for i := range pos {
		pos[i] = rng.word(1 << 24)
		vel[i] = rng.word(256) - 128
	}

	// Host mirror.
	hp := append([]Word(nil), pos...)
	hv := append([]Word(nil), vel...)
	hf := make([]Word, n)
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			var f Word
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				f += (hp[j] - hp[i]) >> 12
			}
			hf[i] = f
		}
		for i := 0; i < n; i++ {
			hv[i] += hf[i] >> 4
			hp[i] = (hp[i] + hv[i]) & mask
		}
	}
	var expect Word
	for i := 0; i < n; i++ {
		expect += hp[i]*Word(i%13+1) + hv[i]
	}

	b := asm.NewBuilder("water")
	okCell := b.Words(0)
	posBase := b.Words(pos...)
	velBase := b.Words(vel...)
	forceBase := b.Zeros(n)
	W := Word(p.Workers)
	const barID = 44

	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		nths := w.Const(W)
		bar := w.Const(barID)
		posA := w.Const(posBase)
		velA := w.Const(velBase)
		forA := w.Const(forceBase)
		lo, hi, i, j, c, t, f, xi, xj, v, st := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()

		w.Muli(t, k, Word(n))
		w.Divi(lo, t, W)
		w.Addi(t, k, 1)
		w.Muli(t, t, Word(n))
		w.Divi(hi, t, W)

		w.Movi(st, 0)
		w.ForLtImm(st, Word(steps), func() {
			// Force phase: read all positions, write own force slots.
			w.Mov(i, lo)
			w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
				w.Movi(f, 0)
				w.Ldx(xi, posA, i)
				w.Movi(j, 0)
				w.ForLtImm(j, Word(n), func() {
					w.Sne(c, j, i)
					w.IfNz(c, func() {
						w.Ldx(xj, posA, j)
						w.Sub(t, xj, xi)
						w.Shri(t, t, 12)
						w.Add(f, f, t)
					})
				})
				w.Stx(forA, i, f)
				w.Addi(i, i, 1)
			})
			w.Barrier(bar, nths)

			// Integration phase: update own positions and velocities.
			w.Mov(i, lo)
			w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
				w.Ldx(f, forA, i)
				w.Shri(f, f, 4)
				w.Ldx(v, velA, i)
				w.Add(v, v, f)
				w.Stx(velA, i, v)
				w.Ldx(xi, posA, i)
				w.Add(xi, xi, v)
				w.Andi(xi, xi, mask)
				w.Stx(posA, i, xi)
				w.Addi(i, i, 1)
			})
			w.Barrier(bar, nths)
		})
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		sum, i, v, t, c := m.Reg(), m.Reg(), m.Reg(), m.Reg(), m.Reg()
		posA := m.Const(posBase)
		velA := m.Const(velBase)
		m.Movi(sum, 0)
		m.Movi(i, 0)
		m.ForLtImm(i, Word(n), func() {
			m.Ldx(v, posA, i)
			m.Modi(t, i, 13)
			m.Addi(t, t, 1)
			m.Mul(v, v, t)
			m.Add(sum, sum, v)
			m.Ldx(v, velA, i)
			m.Add(sum, sum, v)
		})
		m.Seqi(c, sum, expect)
		okA := m.Const(okCell)
		m.St(okA, 0, c)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: simos.NewWorld(p.Seed), OK: okCell}
}
