// Package workloads defines the guest benchmark suite, mirroring the
// paper's evaluation mix: client programs (pbzip, pfscan, aget), server
// programs (webserve, kvdb), SPLASH-2-style scientific kernels (fft, lu,
// radix, ocean, water), and racy microbenchmarks for the divergence
// experiments. Every workload is a guest program built with internal/asm
// plus a simulated world, and every race-free workload self-checks its
// result: the guest stores 1 into its OK cell only if the computation's
// output is correct.
package workloads

import (
	"fmt"
	"sort"

	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
	"doubleplay/internal/vm"
)

// Word aliases the guest word type.
type Word = vm.Word

// Params size a workload build.
type Params struct {
	Workers int   // worker thread count (the paper evaluates 2 and 4)
	Scale   int   // problem size multiplier; 1 is the default size
	Seed    int64 // drives input generation
}

func (p Params) norm() Params {
	if p.Workers <= 0 {
		p.Workers = 2
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Built is a ready-to-run workload instance.
type Built struct {
	Prog  *vm.Program
	World *simos.World
	// OK is the guest address of the self-check cell: 1 after a verified
	// run, 0 otherwise. Zero means the workload has no self-check.
	OK Word
	// RacyAddrs lists guest addresses of the intentionally racy cells in
	// workloads marked Racy — ground truth for cross-validating the
	// static race screen and the dynamic detector. Empty when race-free.
	RacyAddrs []Word
}

// CheckOK inspects a final checkpoint's memory for the self-check verdict.
func (bt *Built) CheckOK(peek func(Word) Word) error {
	if bt.OK == 0 {
		return nil
	}
	if got := peek(bt.OK); got != 1 {
		return fmt.Errorf("workload %s self-check failed (ok cell = %d)", bt.Prog.Name, got)
	}
	return nil
}

// Workload is one registered benchmark.
type Workload struct {
	Name  string
	Kind  string // "client", "server", "scientific", "micro"
	Desc  string
	Racy  bool // contains intentional data races
	Build func(p Params) *Built
}

var registry = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// Get returns the named workload, or nil.
func Get(name string) *Workload { return registry[name] }

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all workloads in a stable order: the paper's presentation
// order (clients, servers, scientific), then micros.
func All() []*Workload {
	order := []string{"pbzip", "pfscan", "aget", "webserve", "kvdb", "fft", "lu", "radix", "ocean", "water", "racey", "webserve-racy"}
	var out []*Workload
	for _, n := range order {
		if w := registry[n]; w != nil {
			out = append(out, w)
		}
	}
	for _, n := range Names() {
		found := false
		for _, o := range order {
			if o == n {
				found = true
				break
			}
		}
		if !found {
			out = append(out, registry[n])
		}
	}
	return out
}

// RaceFree returns the workloads with no intentional races — the set every
// fidelity test must pass without divergence.
func RaceFree() []*Workload {
	var out []*Workload
	for _, w := range All() {
		if !w.Racy {
			out = append(out, w)
		}
	}
	return out
}

// spawnJoin emits the standard fork/join skeleton: spawn workers threads
// running fn with their index as the argument, then join them all.
func spawnJoin(m *asm.Func, workers int, fn string) {
	tids := m.Regs(workers)
	arg := m.Reg()
	for k := 0; k < workers; k++ {
		m.Movi(arg, Word(k))
		m.Spawn(tids[k], fn, arg)
	}
	for k := 0; k < workers; k++ {
		m.Join(tids[k])
	}
}

// hostRNG is a small deterministic generator for host-side input synthesis.
type hostRNG struct{ s uint64 }

func newRNG(seed int64) *hostRNG { return &hostRNG{s: uint64(seed)*0x9e3779b97f4a7c15 + 0x1234567} }

func (r *hostRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// intn returns a value in [0, n).
func (r *hostRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// word returns a non-negative word below bound.
func (r *hostRNG) word(bound int64) Word { return Word(r.next() % uint64(bound)) }
