package workloads

import (
	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
)

func init() {
	register(&Workload{
		Name:  "sigping",
		Kind:  "micro",
		Desc:  "asynchronous signals interrupt compute workers: handlers bill per-signal work against a known script; exercises signal logging and exact-point redelivery",
		Build: buildSigping,
	})
}

// buildSigping runs compute workers that are periodically interrupted by
// scripted signals. Each delivery runs a handler that adds the signal
// number into a per-thread tally (lock-free: one cell per thread). The
// self-check requires every scripted signal to have been delivered and
// billed exactly once — which only holds if recording and replay agree on
// delivery points.
func buildSigping(p Params) *Built {
	p = p.norm()
	iters := 40_000 * p.Scale
	const sigsPerWorker = 12

	world := simos.NewWorld(p.Seed)
	var expect Word
	for k := 0; k < p.Workers; k++ {
		tid := k + 1 // spawn order: workers get tids 1..W
		at := int64(900 + 400*k)
		for s := 0; s < sigsPerWorker; s++ {
			sig := Word(1 + (k+s)%7)
			world.AddSignal(at, tid, sig)
			expect += sig
			at += int64(1100 + 230*s)
		}
	}

	b := asm.NewBuilder("sigping")
	okCell := b.Words(0)
	tally := b.Zeros(p.Workers + 1) // indexed by tid
	sink := b.Words(0)

	h := b.Func("handler", 1)
	{
		sig := h.Arg(0)
		tid, t := h.Reg(), h.Reg()
		tallyA := h.Const(tally)
		h.Tid(tid)
		h.Ldx(t, tallyA, tid)
		h.Add(t, t, sig)
		h.Stx(tallyA, tid, t)
		h.RetImm(0)
	}

	w := b.Func("worker", 1)
	{
		i, acc := w.Reg(), w.Reg()
		w.SigHandler("handler")
		w.Movi(acc, 1)
		w.Movi(i, 0)
		// Compute loop the signals interrupt: a running product the
		// handler must not disturb.
		w.ForLtImm(i, Word(iters), func() {
			w.Muli(acc, acc, 1_103_515_245)
			w.Addi(acc, acc, 12_345)
		})
		// Publish the compute result so corruption would be caught.
		sinkA := w.Const(sink)
		t := w.Reg()
		w.Fadd(t, sinkA, acc)
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		sum, i, v, c := m.Reg(), m.Reg(), m.Reg(), m.Reg()
		tallyA := m.Const(tally)
		m.Movi(sum, 0)
		m.Movi(i, 0)
		m.ForLtImm(i, Word(p.Workers+1), func() {
			m.Ldx(v, tallyA, i)
			m.Add(sum, sum, v)
		})
		m.Seqi(c, sum, expect)
		okA := m.Const(okCell)
		m.St(okA, 0, c)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: world, OK: okCell}
}
