package workloads

import (
	"testing"

	"doubleplay/internal/core"
	"doubleplay/internal/replay"
)

// TestNativeSelfChecks runs every workload natively and asserts the guest's
// own verification passed.
func TestNativeSelfChecks(t *testing.T) {
	for _, wl := range All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			bt := wl.Build(Params{Workers: 2, Seed: 3})
			nat, err := core.RunNative(bt.Prog, bt.World, 3, 3, nil)
			if err != nil {
				t.Fatalf("native run: %v", err)
			}
			if len(nat.Faults) != 0 {
				t.Fatalf("guest faults: %v", nat.Faults)
			}
			// Native final state carries the OK verdict in memory; check it
			// through a record-free machine run instead of a checkpoint.
			// RunNative does not expose memory, so re-run through Record.
			res, err := core.Record(bt.Prog, wl.Build(Params{Workers: 2, Seed: 3}).World, core.Options{
				Workers: 2, SpareCPUs: 4, Seed: 3,
			})
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			last := res.Boundaries[len(res.Boundaries)-1]
			if err := bt.CheckOK(last.CP.MemSnap.Peek); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecordReplayFidelity records every workload at both paper thread
// counts and checks: race-free workloads never diverge, self-checks hold,
// and both sequential and epoch-parallel replay reproduce the recording.
func TestRecordReplayFidelity(t *testing.T) {
	for _, wl := range All() {
		for _, workers := range []int{2, 4} {
			wl, workers := wl, workers
			t.Run(wl.Name+sizeSuffix(workers), func(t *testing.T) {
				t.Parallel()
				bt := wl.Build(Params{Workers: workers, Seed: 11})
				res, err := core.Record(bt.Prog, bt.World, core.Options{
					Workers: workers, SpareCPUs: 2 * workers, Seed: 11,
				})
				if err != nil {
					t.Fatalf("record: %v", err)
				}
				if res.Stats.GuestFaults != 0 {
					t.Fatalf("guest faults during record")
				}
				if !wl.Racy && res.Stats.Divergences != 0 {
					t.Fatalf("race-free workload diverged %d times", res.Stats.Divergences)
				}
				last := res.Boundaries[len(res.Boundaries)-1]
				if err := bt.CheckOK(last.CP.MemSnap.Peek); err != nil {
					t.Fatal(err)
				}

				seq, err := replay.Sequential(bt.Prog, res.Recording, nil, nil)
				if err != nil {
					t.Fatalf("sequential replay: %v", err)
				}
				if seq.FinalHash != res.FinalHash {
					t.Fatal("sequential replay final hash mismatch")
				}
				if _, err := replay.Parallel(bt.Prog, res.Recording, res.Boundaries, workers, nil, nil); err != nil {
					t.Fatalf("parallel replay: %v", err)
				}
			})
		}
	}
}

func sizeSuffix(workers int) string {
	if workers == 2 {
		return "/w2"
	}
	return "/w4"
}
