package workloads

import (
	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
)

func init() {
	register(&Workload{
		Name:  "ocean",
		Kind:  "scientific",
		Desc:  "SPLASH-style ocean: Jacobi relaxation over a 2-D grid, rows split across workers, one barrier per sweep; checked against a host-mirrored result",
		Build: buildOcean,
	})
}

// buildOcean iterates new[i][j] = (up + down + left + right) / 4 over the
// grid interior with double buffering. Integer division makes the
// computation exact, so the host mirrors it and embeds the expected
// checksum for the guest's self-check.
func buildOcean(p Params) *Built {
	p = p.norm()
	g := 40 + 8*p.Scale // grid side
	iters := 24

	rng := newRNG(p.Seed + 61)
	grid := make([]Word, g*g)
	for i := range grid {
		grid[i] = rng.word(1 << 20)
	}

	// Host mirror of the exact computation.
	cur := append([]Word(nil), grid...)
	nxt := make([]Word, g*g)
	for it := 0; it < iters; it++ {
		copy(nxt, cur) // borders carry over
		for i := 1; i < g-1; i++ {
			for j := 1; j < g-1; j++ {
				nxt[i*g+j] = (cur[(i-1)*g+j] + cur[(i+1)*g+j] + cur[i*g+j-1] + cur[i*g+j+1]) / 4
			}
		}
		cur, nxt = nxt, cur
	}
	var expect Word
	for i, v := range cur {
		expect += v * Word(i%31+1)
	}

	b := asm.NewBuilder("ocean")
	failCell := b.Words(0)
	okCell := b.Words(0)
	bufA := b.Words(grid...)
	bufB := b.Words(grid...) // borders pre-seeded so carry-over is free
	W := Word(p.Workers)
	const barID = 55

	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		nths := w.Const(W)
		bar := w.Const(barID)
		aA := w.Const(bufA)
		bA := w.Const(bufB)
		src, dst, tmp := w.Reg(), w.Reg(), w.Reg()
		lo, hi, i, j, c, t, s, row := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		it := w.Reg()

		// Interior rows [1, g-1) split across workers.
		interior := Word(g - 2)
		w.Muli(t, k, interior)
		w.Divi(lo, t, W)
		w.Addi(lo, lo, 1)
		w.Addi(t, k, 1)
		w.Muli(t, t, interior)
		w.Divi(hi, t, W)
		w.Addi(hi, hi, 1)

		w.Mov(src, aA)
		w.Mov(dst, bA)

		w.Movi(it, 0)
		w.ForLtImm(it, Word(iters), func() {
			w.Mov(i, lo)
			w.While(func() asm.Reg { w.Slt(c, i, hi); return c }, func() {
				w.Muli(row, i, Word(g))
				w.Movi(j, 1)
				w.ForLtImm(j, Word(g-1), func() {
					// s = up + down + left + right
					w.Add(t, row, j)
					w.Addi(t, t, -Word(g))
					w.Ldx(s, src, t)
					w.Add(t, row, j)
					w.Addi(t, t, Word(g))
					w.Ldx(c, src, t)
					w.Add(s, s, c)
					w.Add(t, row, j)
					w.Addi(t, t, -1)
					w.Ldx(c, src, t)
					w.Add(s, s, c)
					w.Add(t, row, j)
					w.Addi(t, t, 1)
					w.Ldx(c, src, t)
					w.Add(s, s, c)
					w.Divi(s, s, 4)
					w.Add(t, row, j)
					w.Stx(dst, t, s)
				})
				w.Addi(i, i, 1)
			})
			w.Barrier(bar, nths)
			w.Mov(tmp, src)
			w.Mov(src, dst)
			w.Mov(dst, tmp)
		})
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		// After an even iteration count the final state is in bufA.
		final := bufA
		if iters%2 == 1 {
			final = bufB
		}
		sum, i, v, t, c := m.Reg(), m.Reg(), m.Reg(), m.Reg(), m.Reg()
		fA := m.Const(final)
		m.Movi(sum, 0)
		m.Movi(i, 0)
		m.ForLtImm(i, Word(g*g), func() {
			m.Ldx(v, fA, i)
			m.Modi(t, i, 31)
			m.Addi(t, t, 1)
			m.Mul(v, v, t)
			m.Add(sum, sum, v)
		})
		m.Seqi(c, sum, expect)
		f := m.Reg()
		failA := m.Const(failCell)
		m.Ld(f, failA, 0)
		m.IfNz(f, func() { m.Movi(c, 0) })
		okA := m.Const(okCell)
		m.St(okA, 0, c)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: simos.NewWorld(p.Seed), OK: okCell}
}
