package workloads

import (
	"doubleplay/internal/asm"
	"doubleplay/internal/simos"
)

func init() {
	register(&Workload{
		Name:  "lu",
		Kind:  "scientific",
		Desc:  "SPLASH-style LU: in-place factorisation over GF(p) with row-interleaved workers, a barrier per pivot, and exact L*U reconstruction check",
		Build: buildLU,
	})
}

// buildLU factors an n x n matrix mod p in place (no pivoting — a random
// matrix over a large prime field is nonsingular with overwhelming
// probability) and verifies by reconstructing A = L*U exactly.
func buildLU(p Params) *Built {
	p = p.norm()
	n := 40 + 4*p.Scale

	rng := newRNG(p.Seed + 41)
	a := make([]Word, n*n)
	for i := range a {
		a[i] = 1 + rng.word(nttMod-1) // nonzero entries
	}

	b := asm.NewBuilder("lu")
	failCell := b.Words(0)
	okCell := b.Words(0)
	matBase := b.Words(a...)  // factored in place
	origBase := b.Words(a...) // pristine copy for verification
	W := Word(p.Workers)
	const barID = 88

	// modpow(base, exp) mod p — used for pivot inversion (exp = p-2).
	mp := b.Func("modpow", 2)
	{
		base, exp := mp.Arg(0), mp.Arg(1)
		r, c := mp.Reg(), mp.Reg()
		mp.Movi(r, 1)
		mp.Modi(base, base, nttMod)
		mp.While(func() asm.Reg { mp.Slti(c, exp, 1); mp.Seqi(c, c, 0); return c }, func() {
			mp.Andi(c, exp, 1)
			mp.IfNz(c, func() {
				mp.Mul(r, r, base)
				mp.Modi(r, r, nttMod)
			})
			mp.Mul(base, base, base)
			mp.Modi(base, base, nttMod)
			mp.Shri(exp, exp, 1)
		})
		mp.Ret(r)
	}

	w := b.Func("worker", 1)
	{
		kw := w.Arg(0)
		one := w.Const(1)
		nths := w.Const(W)
		bar := w.Const(barID)
		matA := w.Const(matBase)
		origA := w.Const(origBase)
		failA := w.Const(failCell)
		kcol, i, j, c, t, piv, inv, l, rowI, rowK := w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg(), w.Reg()
		u, v := w.Reg(), w.Reg()

		// Factorisation: for each pivot column k, workers eliminate the
		// rows i > k they own (round-robin by i mod W).
		w.Movi(kcol, 0)
		w.ForLtImm(kcol, Word(n-1), func() {
			// piv = mat[k][k]; inv = piv^(p-2)
			w.Muli(t, kcol, Word(n))
			w.Add(t, t, kcol)
			w.Ldx(piv, matA, t)
			w.Seqi(c, piv, 0)
			w.IfNz(c, func() { w.St(failA, 0, one) })
			exp := w.Reg()
			w.Movi(exp, nttMod-2)
			w.Call("modpow", piv, exp)
			w.Mov(inv, asm.RetReg)

			w.Addi(i, kcol, 1)
			w.ForLtImm(i, Word(n), func() {
				w.Modi(c, i, Word(p.Workers))
				w.Seq(c, c, kw)
				w.IfNz(c, func() {
					w.Muli(rowI, i, Word(n))
					w.Muli(rowK, kcol, Word(n))
					// l = mat[i][k] * inv mod p
					w.Add(t, rowI, kcol)
					w.Ldx(l, matA, t)
					w.Mul(l, l, inv)
					w.Modi(l, l, nttMod)
					w.Stx(matA, t, l)
					// row update for j > k
					w.Addi(j, kcol, 1)
					w.ForLtImm(j, Word(n), func() {
						w.Add(t, rowK, j)
						w.Ldx(u, matA, t)
						w.Mul(u, u, l)
						w.Modi(u, u, nttMod)
						w.Add(t, rowI, j)
						w.Ldx(v, matA, t)
						w.Sub(v, v, u)
						w.Addi(v, v, nttMod)
						w.Modi(v, v, nttMod)
						w.Stx(matA, t, v)
					})
				})
			})
			w.Barrier(bar, nths)
		})

		// Verification: (L*U)[i][j] == orig[i][j] for the rows this worker
		// owns. L has unit diagonal and lives below it; U on and above.
		sum, d, lim := w.Reg(), w.Reg(), w.Reg()
		w.Movi(i, 0)
		w.ForLtImm(i, Word(n), func() {
			w.Modi(c, i, Word(p.Workers))
			w.Seq(c, c, kw)
			w.IfNz(c, func() {
				w.Muli(rowI, i, Word(n))
				w.Movi(j, 0)
				w.ForLtImm(j, Word(n), func() {
					// lim = min(i, j); sum = Σ_{d<lim} L[i][d]*U[d][j], then
					// + (d==i ? U[i][j] : L[i][d]*U[d][j] at d=lim if lim==i)
					w.Slt(c, i, j)
					w.IfElse(c,
						func() { w.Mov(lim, i) },
						func() { w.Mov(lim, j) },
					)
					w.Movi(sum, 0)
					w.Movi(d, 0)
					w.ForLt(d, lim, func() {
						w.Add(t, rowI, d)
						w.Ldx(u, matA, t)
						w.Muli(t, d, Word(n))
						w.Add(t, t, j)
						w.Ldx(v, matA, t)
						w.Mul(u, u, v)
						w.Modi(u, u, nttMod)
						w.Add(sum, sum, u)
						w.Modi(sum, sum, nttMod)
					})
					// Diagonal term: if i <= j, L[i][i] = 1 so add U[i][j];
					// else add L[i][j] * U[j][j].
					w.Sle(c, i, j)
					w.IfElse(c,
						func() {
							w.Add(t, rowI, j)
							w.Ldx(u, matA, t)
							w.Add(sum, sum, u)
							w.Modi(sum, sum, nttMod)
						},
						func() {
							w.Add(t, rowI, j)
							w.Ldx(u, matA, t)
							w.Muli(t, j, Word(n))
							w.Add(t, t, j)
							w.Ldx(v, matA, t)
							w.Mul(u, u, v)
							w.Modi(u, u, nttMod)
							w.Add(sum, sum, u)
							w.Modi(sum, sum, nttMod)
						},
					)
					w.Add(t, rowI, j)
					w.Ldx(v, origA, t)
					w.Sne(c, sum, v)
					w.IfNz(c, func() { w.St(failA, 0, one) })
				})
			})
		})
		w.HaltImm(0)
	}

	m := b.Func("main", 0)
	{
		spawnJoin(m, p.Workers, "worker")
		f, ok := m.Reg(), m.Reg()
		failA := m.Const(failCell)
		m.Ld(f, failA, 0)
		m.Seqi(ok, f, 0)
		okA := m.Const(okCell)
		m.St(okA, 0, ok)
		m.HaltImm(0)
	}
	b.SetEntry("main")

	return &Built{Prog: b.MustBuild(), World: simos.NewWorld(p.Seed), OK: okCell}
}
