package sched

import (
	"errors"
	"fmt"

	"doubleplay/internal/dplog"
	"doubleplay/internal/trace"
	"doubleplay/internal/vm"
)

// ErrDiverged reports that an epoch-parallel or replay execution departed
// from the recorded execution (sync-order deadlock, syscall mismatch, or a
// thread overshooting/undershooting its epoch target).
var ErrDiverged = errors.New("sched: execution diverged from recording")

// ErrLogExhausted reports a replay that consumed the schedule log without
// reaching the recorded end state.
var ErrLogExhausted = errors.New("sched: schedule log exhausted before targets met")

// Uni timeslices all live threads of a machine on a single simulated CPU.
//
// In logging mode (Follow == nil) it round-robins runnable threads with a
// fixed quantum and appends every timeslice to Log — this is the entire
// shared-memory ordering record DoublePlay needs, the paper's key saving.
// In replay mode (Follow != nil) it reproduces a logged schedule exactly.
//
// Targets, when set, give each thread's retired-instruction count at the
// epoch boundary; threads stop there and the run ends when all reach them.
type Uni struct {
	M       *vm.Machine
	Quantum int64

	// Targets[tid] is the epoch-end retired count; nil means run to
	// completion.
	Targets []uint64

	// Follow, when non-nil, is a recorded schedule to reproduce.
	Follow []dplog.Slice

	// TotalBudget, when positive, ends a free run once the machine as a
	// whole has retired this many further instructions; used by forward
	// recovery to re-execute roughly one epoch's worth of work.
	TotalBudget uint64

	// LogSchedule enables appending timeslices to Log.
	LogSchedule bool
	Log         []dplog.Slice

	// Trace, when set, receives one span per executed timeslice (named
	// TraceSpan, default "slice"), stamped with this scheduler's local
	// Cycles clock and homed on (TracePid, TraceTid). Callers that know
	// the run's global position splice a buffer instead (see
	// trace.Sink.Splice). Tracing never alters Cycles.
	Trace     trace.Recorder
	TracePid  int64
	TraceTid  int64
	TraceSpan string

	// Cycles is the simulated time consumed on this CPU, including
	// context-switch and schedule-logging charges.
	Cycles int64

	// Switches counts context switches (slices executed).
	Switches int64

	cursor int // round-robin position for logging mode
}

// NewUni builds a uniprocessor scheduler over m.
func NewUni(m *vm.Machine) *Uni {
	return &Uni{M: m, Quantum: DefaultQuantum}
}

// sliceSpan returns the trace span name for one timeslice.
func (u *Uni) sliceSpan() string {
	if u.TraceSpan != "" {
		return u.TraceSpan
	}
	return "slice"
}

// belowTarget reports whether t still has instructions to retire this run.
func (u *Uni) belowTarget(t *vm.Thread) bool {
	if !t.Status.Live() {
		return false
	}
	if u.Targets == nil {
		return true
	}
	if t.ID >= len(u.Targets) {
		// A thread the recording never saw: the execution has diverged.
		return false
	}
	return t.Retired < u.Targets[t.ID]
}

// targetsMet reports whether the run is complete.
func (u *Uni) targetsMet() (bool, error) {
	if u.Targets == nil {
		return u.M.Done(), nil
	}
	for _, t := range u.M.Threads {
		if t.ID >= len(u.Targets) {
			return false, fmt.Errorf("%w: thread %d not present in recording", ErrDiverged, t.ID)
		}
		want := u.Targets[t.ID]
		switch {
		case t.Retired == want:
		case t.Retired < want:
			if !t.Status.Live() {
				return false, fmt.Errorf("%w: thread %d died at %d retired, target %d",
					ErrDiverged, t.ID, t.Retired, want)
			}
			return false, nil
		default:
			return false, fmt.Errorf("%w: thread %d overshot target %d (retired %d)",
				ErrDiverged, t.ID, want, t.Retired)
		}
	}
	return true, nil
}

// Run executes until targets are met (or the machine terminates, when
// Targets is nil).
func (u *Uni) Run() error {
	if u.Follow != nil {
		return u.runFollow()
	}
	return u.runFree()
}

// totalRetired sums retired instructions across all threads.
func (u *Uni) totalRetired() uint64 {
	var n uint64
	for _, t := range u.M.Threads {
		n += t.Retired
	}
	return n
}

// runFree is logging mode: round-robin with quantum, appending slices.
func (u *Uni) runFree() error {
	startRetired := u.totalRetired()
	for {
		if u.TotalBudget > 0 && u.totalRetired()-startRetired >= u.TotalBudget {
			return nil
		}
		done, err := u.targetsMet()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		t := u.pickNext()
		if t == nil {
			if u.pollBlockedSys() {
				continue
			}
			return fmt.Errorf("%w\n%s", u.stuckErr(), u.M.DescribeState())
		}
		retired, err := u.runSlice(t, u.Quantum)
		if err != nil {
			return err
		}
		if retired > 0 {
			u.appendSlice(t.ID, retired)
		}
	}
}

// stuckErr classifies a no-runnable-thread state: under enforcement or
// targets it is a divergence; otherwise a guest deadlock.
func (u *Uni) stuckErr() error {
	if u.Targets != nil || u.M.Hooks.MayAcquire != nil {
		return fmt.Errorf("%w: no runnable thread before targets met", ErrDiverged)
	}
	return ErrDeadlock
}

// pickNext scans round-robin for a runnable thread below target.
func (u *Uni) pickNext() *vm.Thread {
	threads := u.M.Threads
	n := len(threads)
	for k := 0; k < n; k++ {
		t := threads[(u.cursor+k)%n]
		if t.Status == vm.Runnable && u.belowTarget(t) {
			u.cursor = (u.cursor + k + 1) % n
			return t
		}
	}
	return nil
}

// pollBlockedSys advances time and re-attempts syscall-blocked threads; it
// returns true if any thread became runnable or retired. This path is used
// by the uniprocessor baseline, where the real simulated OS can block; in
// epoch-parallel and replay modes injected syscalls never block.
func (u *Uni) pollBlockedSys() bool {
	any := false
	for _, t := range u.M.Threads {
		if t.Status == vm.BlockedSys && u.belowTarget(t) {
			any = true
		}
	}
	if !any {
		return false
	}
	u.Cycles += sysPollInterval
	u.M.Now = u.Cycles
	progressed := false
	for _, t := range u.M.Threads {
		if t.Status != vm.BlockedSys || !u.belowTarget(t) {
			continue
		}
		res := u.M.Step(t)
		if res.Retired {
			u.Cycles += res.Cost
			progressed = true
			if t.Status == vm.Runnable {
				// Let the round-robin loop schedule it normally from here.
				continue
			}
		}
	}
	// Even with no retirement, time moved forward; the caller loops and the
	// livelock guard is the simulated clock itself (world events are finite).
	_ = progressed
	return true
}

// runSlice runs t until quantum retirements, a block, its target, or
// machine/thread termination. It returns the number retired.
func (u *Uni) runSlice(t *vm.Thread, quantum int64) (uint64, error) {
	u.Switches++
	u.Cycles += u.M.Cost.TimesliceSwitch
	sliceStart := u.Cycles
	var retired uint64
	for int64(retired) < quantum {
		if !t.Status.Live() || t.Status.Blocked() {
			break
		}
		if u.Targets != nil && !u.belowTarget(t) {
			break
		}
		u.M.Now = u.Cycles
		res := u.M.Step(t)
		if u.M.Diverged != "" {
			return retired, fmt.Errorf("%w: %s", ErrDiverged, u.M.Diverged)
		}
		if !res.Retired {
			break
		}
		u.Cycles += res.Cost
		retired++
	}
	if trace.Enabled(u.Trace) && retired > 0 {
		u.Trace.Span(u.sliceSpan(), sliceStart, u.Cycles-sliceStart, u.TracePid, u.TraceTid,
			map[string]any{"tid": t.ID, "retired": retired})
	}
	// A guest fault ends the thread like an exit; whether that is a guest
	// bug (native/baseline runs) or a divergence (target runs, where the
	// dead thread stops short of its target) is the caller's judgement.
	return retired, nil
}

// appendSlice records a timeslice, merging with the previous entry when the
// same thread continues (quantum expiry without an intervening switch).
func (u *Uni) appendSlice(tid int, n uint64) {
	if !u.LogSchedule {
		return
	}
	if k := len(u.Log); k > 0 && u.Log[k-1].Tid == tid {
		u.Log[k-1].N += n
		return
	}
	u.Log = append(u.Log, dplog.Slice{Tid: tid, N: n})
	u.Cycles += u.M.Cost.SchedLogEvent
}

// runFollow is replay mode: reproduce the logged schedule exactly.
func (u *Uni) runFollow() error {
	for i, s := range u.Follow {
		if s.Tid < 0 || s.Tid >= len(u.M.Threads) {
			return fmt.Errorf("%w: slice %d names unknown thread %d", ErrDiverged, i, s.Tid)
		}
		t := u.M.Threads[s.Tid]
		sliceStart := u.Cycles
		var retired uint64
		for retired < s.N {
			if !t.Status.Live() {
				return fmt.Errorf("%w: slice %d: thread %d dead after %d/%d",
					ErrDiverged, i, s.Tid, retired, s.N)
			}
			if t.Status.Blocked() {
				return fmt.Errorf("%w: slice %d: thread %d blocked (%s) after %d/%d",
					ErrDiverged, i, s.Tid, t.Status, retired, s.N)
			}
			before := t.Retired
			u.M.Now = u.Cycles
			res := u.M.Step(t)
			if u.M.Diverged != "" {
				return fmt.Errorf("%w: %s", ErrDiverged, u.M.Diverged)
			}
			if !res.Retired {
				continue // re-attempt resolved by barrier/lock side effects
			}
			u.Cycles += res.Cost
			retired += t.Retired - before
		}
		if retired != s.N {
			return fmt.Errorf("%w: slice %d: thread %d retired %d, slice says %d",
				ErrDiverged, i, s.Tid, retired, s.N)
		}
		if trace.Enabled(u.Trace) {
			u.Trace.Span(u.sliceSpan(), sliceStart, u.Cycles-sliceStart, u.TracePid, u.TraceTid,
				map[string]any{"tid": s.Tid, "retired": retired})
		}
		u.Switches++
		u.Cycles += u.M.Cost.TimesliceSwitch
	}
	done, err := u.targetsMet()
	if err != nil {
		return err
	}
	if !done {
		return ErrLogExhausted
	}
	return nil
}
