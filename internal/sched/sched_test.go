package sched_test

import (
	"errors"
	"testing"

	"doubleplay/internal/asm"
	"doubleplay/internal/sched"
	"doubleplay/internal/vm"
)

// counterProg builds a program with workers incrementing a shared counter
// (locked when locked is true) iters times each.
func counterProg(workers, iters int, locked bool) *vm.Program {
	b := asm.NewBuilder("counter")
	cell := b.Words(0)
	w := b.Func("worker", 1)
	{
		base, v, i := w.Const(cell), w.Reg(), w.Reg()
		lk := w.Const(3)
		w.Movi(i, 0)
		w.ForLtImm(i, vm.Word(iters), func() {
			if locked {
				w.LockR(lk)
			}
			w.Ld(v, base, 0)
			w.Addi(v, v, 1)
			w.St(base, 0, v)
			if locked {
				w.UnlockR(lk)
			}
		})
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	{
		ts := m.Regs(workers)
		a := m.Reg()
		m.Movi(a, 0)
		for k := 0; k < workers; k++ {
			m.Spawn(ts[k], "worker", a)
		}
		for k := 0; k < workers; k++ {
			m.Join(ts[k])
		}
		got := m.Reg()
		base := m.Const(cell)
		m.Ld(got, base, 0)
		m.Halt(got)
	}
	b.SetEntry("main")
	return b.MustBuild()
}

func TestParallelDeterministicPerSeed(t *testing.T) {
	prog := counterProg(3, 500, false) // racy: outcome depends on interleaving
	runOnce := func(seed int64) (uint64, int64) {
		m := vm.NewMachine(prog, nil, nil)
		p := sched.NewParallel(m, 3, seed)
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return m.StateHash(), p.WallTime()
	}
	h1, w1 := runOnce(42)
	h2, w2 := runOnce(42)
	if h1 != h2 || w1 != w2 {
		t.Fatal("same seed produced different executions")
	}
	// Racy program under different seeds should (almost certainly) differ.
	diff := false
	for s := int64(0); s < 8; s++ {
		if h, _ := runOnce(s); h != h1 {
			diff = true
			break
		}
	}
	if !diff {
		t.Log("note: racy program produced identical results across seeds")
	}
}

func TestParallelCorrectWithLocks(t *testing.T) {
	prog := counterProg(4, 300, true)
	m := vm.NewMachine(prog, nil, nil)
	p := sched.NewParallel(m, 4, 7)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Threads[0].ExitVal; got != 1200 {
		t.Fatalf("locked counter = %d, want 1200", got)
	}
	if p.Retired() == 0 || p.WallTime() == 0 {
		t.Fatal("no work accounted")
	}
}

func TestParallelSpeedup(t *testing.T) {
	prog := counterProg(4, 400, true)
	wall := func(cpus int) int64 {
		m := vm.NewMachine(prog, nil, nil)
		p := sched.NewParallel(m, cpus, 7)
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		return p.WallTime()
	}
	w1, w4 := wall(1), wall(4)
	if w4 >= w1 {
		t.Fatalf("no speedup: 1 cpu %d cycles, 4 cpus %d cycles", w1, w4)
	}
}

func TestParallelDeadlockDetected(t *testing.T) {
	// Classic ABBA deadlock.
	b := asm.NewBuilder("abba")
	w := b.Func("worker", 1)
	{
		k := w.Arg(0)
		l1, l2, c := w.Reg(), w.Reg(), w.Reg()
		spin := w.Reg()
		w.Seqi(c, k, 0)
		w.IfElse(c,
			func() { w.Movi(l1, 1); w.Movi(l2, 2) },
			func() { w.Movi(l1, 2); w.Movi(l2, 1) },
		)
		w.LockR(l1)
		// Spin long enough that both threads hold their first lock.
		w.Movi(spin, 0)
		w.ForLtImm(spin, 500, func() {})
		w.LockR(l2)
		w.UnlockR(l2)
		w.UnlockR(l1)
		w.HaltImm(0)
	}
	m := b.Func("main", 0)
	{
		t1, t2, a := m.Reg(), m.Reg(), m.Reg()
		m.Movi(a, 0)
		m.Spawn(t1, "worker", a)
		m.Movi(a, 1)
		m.Spawn(t2, "worker", a)
		m.Join(t1)
		m.Join(t2)
		m.HaltImm(0)
	}
	b.SetEntry("main")
	mach := vm.NewMachine(b.MustBuild(), nil, nil)
	p := sched.NewParallel(mach, 2, 1)
	err := p.Run()
	if !errors.Is(err, sched.ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestParallelRunUntilStopsAtLimit(t *testing.T) {
	prog := counterProg(2, 2000, true)
	m := vm.NewMachine(prog, nil, nil)
	p := sched.NewParallel(m, 2, 1)
	if err := p.RunUntil(5000); err != nil {
		t.Fatal(err)
	}
	if m.Done() {
		t.Fatal("program finished within the limit; enlarge it")
	}
	if now := p.Now(); now < 5000 || now > 7000 {
		t.Fatalf("frontier = %d, want just past 5000", now)
	}
	// Resume to completion.
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Threads[0].ExitVal; got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
}

func TestParallelAddCostAndBaseClock(t *testing.T) {
	prog := counterProg(2, 100, true)
	m := vm.NewMachine(prog, nil, nil)
	p := sched.NewParallel(m, 2, 1)
	p.AddCost(10_000)
	if p.Now() < 10_000 {
		t.Fatal("AddCost did not advance clocks")
	}
	p.SetBaseClock(50_000)
	if p.Now() < 50_000 {
		t.Fatal("SetBaseClock did not advance clocks")
	}
	p.SetBaseClock(1) // must never move clocks backwards
	if p.Now() < 50_000 {
		t.Fatal("SetBaseClock moved clocks backwards")
	}
}

func TestUniScheduleLogReplays(t *testing.T) {
	prog := counterProg(3, 400, false) // even racy programs replay exactly
	m1 := vm.NewMachine(prog, nil, nil)
	u1 := sched.NewUni(m1)
	u1.LogSchedule = true
	if err := u1.Run(); err != nil {
		t.Fatal(err)
	}
	h1 := m1.StateHash()
	if len(u1.Log) == 0 {
		t.Fatal("no schedule logged")
	}

	m2 := vm.NewMachine(prog, nil, nil)
	u2 := sched.NewUni(m2)
	u2.Follow = u1.Log
	if err := u2.Run(); err != nil {
		t.Fatal(err)
	}
	if m2.StateHash() != h1 {
		t.Fatal("schedule replay produced a different state")
	}
}

func TestUniQuantumBoundsSlices(t *testing.T) {
	prog := counterProg(2, 500, false)
	m := vm.NewMachine(prog, nil, nil)
	u := sched.NewUni(m)
	u.Quantum = 100
	u.LogSchedule = true
	if err := u.Run(); err != nil {
		t.Fatal(err)
	}
	for i, s := range u.Log {
		// Merged slices of the same thread can exceed one quantum only when
		// no other thread was runnable; bound generously.
		if s.N == 0 {
			t.Fatalf("slice %d is empty", i)
		}
	}
	if u.Switches < 5 {
		t.Fatalf("too few switches: %d", u.Switches)
	}
}

func TestUniTargetsStopExactly(t *testing.T) {
	prog := counterProg(2, 300, true)
	// Targets must name a consistent execution point; derive them from a
	// real mid-run snapshot rather than arbitrary per-thread cuts.
	mHalf := vm.NewMachine(prog, nil, nil)
	uHalf := sched.NewUni(mHalf)
	uHalf.TotalBudget = 1500
	if err := uHalf.Run(); err != nil {
		t.Fatal(err)
	}
	if mHalf.Done() {
		t.Fatal("budget run finished; enlarge the program")
	}
	targets := make([]uint64, len(mHalf.Threads))
	for i, th := range mHalf.Threads {
		targets[i] = th.Retired
	}
	m := vm.NewMachine(prog, nil, nil)
	u := sched.NewUni(m)
	u.Targets = targets
	if err := u.Run(); err != nil {
		t.Fatal(err)
	}
	for i, th := range m.Threads {
		if th.Retired != targets[i] {
			t.Fatalf("thread %d retired %d, target %d", i, th.Retired, targets[i])
		}
	}
}

func TestUniCorruptLogDetected(t *testing.T) {
	prog := counterProg(2, 200, true)
	m1 := vm.NewMachine(prog, nil, nil)
	u1 := sched.NewUni(m1)
	u1.LogSchedule = true
	if err := u1.Run(); err != nil {
		t.Fatal(err)
	}

	corrupt := append([]sched.Slice(nil), u1.Log...)
	corrupt[len(corrupt)/2].N += 3 // claim extra instructions mid-log

	m2 := vm.NewMachine(prog, nil, nil)
	u2 := sched.NewUni(m2)
	u2.Follow = corrupt
	err := u2.Run()
	if err == nil {
		t.Fatal("corrupted schedule replayed cleanly")
	}
}

func TestUniTotalBudget(t *testing.T) {
	prog := counterProg(2, 5000, true)
	m := vm.NewMachine(prog, nil, nil)
	u := sched.NewUni(m)
	u.TotalBudget = 1000
	if err := u.Run(); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, th := range m.Threads {
		total += th.Retired
	}
	if total < 1000 || total > 1000+uint64(u.Quantum) {
		t.Fatalf("retired %d, want ~1000", total)
	}
}

func TestUniGuestDeadlockReported(t *testing.T) {
	b := asm.NewBuilder("selfjoin")
	mn := b.Func("main", 0)
	lk := mn.Const(1)
	mn.LockR(lk)
	mn.LockR(lk) // recursive lock faults the only thread...
	mn.HaltImm(0)
	b.SetEntry("main")
	m := vm.NewMachine(b.MustBuild(), nil, nil)
	u := sched.NewUni(m)
	// Faulted-out machine simply finishes (Done) — no error, one fault.
	if err := u.Run(); err != nil {
		t.Fatal(err)
	}
	if m.FaultCount() != 1 {
		t.Fatal("expected a fault")
	}
}
